// Package doxmeter is a from-scratch Go reproduction of "Fifteen Minutes of
// Unwanted Fame: Detecting and Characterizing Doxing" (Snyder, Doerfler,
// Kanich, McCoy — IMC 2017): the first quantitative, large-scale
// measurement of doxing.
//
// The system comprises a five-stage measurement pipeline — text-sharing
// site crawlers, an html2text normalizer, a TF-IDF + SGD dox classifier, a
// social-account extractor, account-set de-duplication, and a scheduled
// account monitor — plus the paper's analyses (content labeling, doxer
// network cliques, validation studies, anti-abuse filter effects) and its
// proposed mitigations (a dox-notification service, an anti-SWATing
// watchlist, and a threat-exchange feed).
//
// Because the paper's substrate was the 2016 live internet, every external
// dependency is replaced by a calibrated simulation (see DESIGN.md): the
// pipeline itself only ever sees crawled text and HTTP responses, and the
// benchmark harness in bench_test.go regenerates every table and figure in
// the paper's evaluation, printing paper-vs-measured values side by side.
//
// Entry points:
//
//	cmd/doxpipeline  — run the full study end to end
//	cmd/doxbench     — regenerate all tables and figures
//	cmd/doxdetect    — train/classify from the command line
//	cmd/doxsites     — stand up the simulated services interactively
//	cmd/doxnotify    — run the mitigation services
//	examples/        — four runnable walkthroughs of the public pipeline
package doxmeter
