module doxmeter

go 1.22
