// Command doxsites stands up the simulated text-sharing sites and social
// networks on local ports for interactive exploration: the same services
// the pipeline crawls, plus an admin endpoint that advances the virtual
// clock so you can watch posts appear and doxed accounts lock down.
//
// Usage:
//
//	doxsites [-scale 0.01] [-seed 42] [-addr 127.0.0.1:8420] [-faults off]
//
// Endpoints (all under one address):
//
//	/pastebin/api_scraping.php?since=0&limit=50
//	/pastebin/api_scrape_item.php?i=<key>
//	/4chan/{b,pol}/catalog.json            /4chan/{b,pol}/thread/<no>.json
//	/8ch/{pol,baphomet}/catalog.json       ...
//	/osn/{network}/{username}              /osn/instagram/id/<n>
//	/admin/clock                           — current virtual time
//	/admin/advance?days=7                  — move the clock forward
//	/admin/faults                          — fault-injection counters per service
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"doxmeter/internal/faults"
	"doxmeter/internal/osn"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
	"doxmeter/internal/sites"
	"doxmeter/internal/textgen"
)

func main() {
	var (
		scale      = flag.Float64("scale", 0.01, "corpus scale factor")
		seed       = flag.Int64("seed", 42, "world seed")
		addr       = flag.String("addr", "127.0.0.1:8420", "listen address")
		faultsName = flag.String("faults", "off", "fault-injection profile for the served sites: off, mild, heavy or outage")
	)
	flag.Parse()

	profile, err := faults.Preset(*faultsName, *seed+5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doxsites:", err)
		os.Exit(1)
	}

	world := sim.NewWorld(sim.Default(*seed, *scale))
	gen := textgen.New(world)
	corpus := gen.Corpus()
	clock := simclock.NewClock(simclock.Period1.Start)

	pastebin := sites.NewPastebin(clock, corpus.Streams[textgen.SitePastebin], sites.DefaultDeletionModel(), *seed+1)
	fourchan := sites.NewBoardSite(clock, map[string][]textgen.Doc{
		"b":   corpus.Streams[textgen.SiteFourchanB],
		"pol": corpus.Streams[textgen.SiteFourchanPol],
	}, *seed+2)
	eightch := sites.NewBoardSite(clock, map[string][]textgen.Doc{
		"pol":      corpus.Streams[textgen.SiteEightchPol],
		"baphomet": corpus.Streams[textgen.SiteEightchBapho],
	}, *seed+3)
	universe := osn.NewUniverse(clock, world, *seed+4)

	// Optionally wrap each service in a deterministic fault injector, the
	// same way the pipeline's chaos runs do.
	injectors := map[string]*faults.Injector{}
	wrap := func(name string, h http.Handler) http.Handler {
		if profile == nil {
			return h
		}
		in := faults.NewInjector(profile.ForService(name), clock, h)
		injectors[name] = in
		return in
	}

	mux := http.NewServeMux()
	mux.Handle("/pastebin/", http.StripPrefix("/pastebin", wrap("pastebin", pastebin.Handler())))
	mux.Handle("/4chan/", http.StripPrefix("/4chan", wrap("fourchan", fourchan.Handler())))
	mux.Handle("/8ch/", http.StripPrefix("/8ch", wrap("eightch", eightch.Handler())))
	mux.Handle("/osn/", http.StripPrefix("/osn", wrap("osn", universe.Handler())))
	mux.HandleFunc("/admin/clock", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, clock.Now().Format(time.RFC3339))
	})
	mux.HandleFunc("/admin/advance", func(w http.ResponseWriter, req *http.Request) {
		days := 1
		if s := req.URL.Query().Get("days"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 || v > 3650 {
				http.Error(w, "bad days", http.StatusBadRequest)
				return
			}
			days = v
		}
		now := clock.Advance(time.Duration(days) * simclock.Day)
		fmt.Fprintln(w, now.Format(time.RFC3339))
	})
	mux.HandleFunc("/admin/faults", func(w http.ResponseWriter, _ *http.Request) {
		if profile == nil {
			fmt.Fprintln(w, "fault injection off (start with -faults mild|heavy|outage)")
			return
		}
		for _, name := range []string{"pastebin", "fourchan", "eightch", "osn"} {
			fmt.Fprintf(w, "%-8s %+v\n", name, injectors[name].Counters())
		}
	})

	fmt.Printf("doxsites serving %d documents and %d social accounts on http://%s\n",
		corpus.TotalDocs(), len(universe.Accounts()), *addr)
	fmt.Printf("virtual clock starts at %s; advance with /admin/advance?days=N\n",
		clock.Now().Format("2006-01-02"))
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "doxsites:", err)
		os.Exit(1)
	}
}
