// Command doxsites stands up the simulated text-sharing sites and social
// networks on local ports for interactive exploration: the same services
// the pipeline crawls, plus an admin endpoint that advances the virtual
// clock so you can watch posts appear and doxed accounts lock down.
//
// Usage:
//
//	doxsites [-scale 0.01] [-seed 42] [-addr 127.0.0.1:8420] [-faults off] [-admin addr]
//
// Endpoints (all under one address):
//
//	/pastebin/api_scraping.php?since=0&limit=50
//	/pastebin/api_scrape_item.php?i=<key>
//	/4chan/{b,pol}/catalog.json            /4chan/{b,pol}/thread/<no>.json
//	/8ch/{pol,baphomet}/catalog.json       ...
//	/osn/{network}/{username}              /osn/instagram/id/<n>
//	/admin/clock                           — current virtual time
//	/admin/advance?days=7                  — move the clock forward
//	/admin/faults                          — fault-injection counters per service
//	/admin/accounts?limit=500              — account list for load generators
//
// With -admin set, a telemetry bundle (/metrics in Prometheus text format,
// /debug/traces, /debug/pprof) is served on that second address, carrying
// per-route request counters and latency histograms for every service plus
// the fault injectors' doxmeter_fault_* series.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"doxmeter/internal/faults"
	"doxmeter/internal/stack"
	"doxmeter/internal/telemetry"
)

func main() {
	var (
		scale      = flag.Float64("scale", 0.01, "corpus scale factor")
		seed       = flag.Int64("seed", 42, "world seed")
		addr       = flag.String("addr", "127.0.0.1:8420", "listen address")
		adminAddr  = flag.String("admin", "", "serve /metrics, /debug/traces and /debug/pprof on this second address (empty = off)")
		faultsName = flag.String("faults", "off", "fault-injection profile for the served sites: off, mild, heavy or outage")
	)
	flag.Parse()

	profile, err := faults.Preset(*faultsName, *seed+5)
	if err != nil {
		fatal(err)
	}

	hub := telemetry.NewHub(0, nil)
	st := stack.New(stack.Config{Seed: *seed, Scale: *scale, Faults: profile, Telemetry: hub})
	hub.Tracer.VirtualNow = st.Clock.Now

	if *adminAddr != "" {
		go func() {
			if err := http.ListenAndServe(*adminAddr, hub.Handler()); err != nil {
				fatal(fmt.Errorf("admin listener: %w", err))
			}
		}()
		fmt.Printf("telemetry on http://%s/metrics (traces at /debug/traces, profiles at /debug/pprof)\n", *adminAddr)
	}

	fmt.Printf("doxsites serving %d documents and %d social accounts on http://%s\n",
		st.Corpus.TotalDocs(), len(st.Universe.Accounts()), *addr)
	fmt.Printf("virtual clock starts at %s; advance with /admin/advance?days=N\n",
		st.Clock.Now().Format("2006-01-02"))
	if err := http.ListenAndServe(*addr, st.Mux); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doxsites:", err)
	os.Exit(1)
}
