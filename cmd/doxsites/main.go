// Command doxsites stands up the simulated text-sharing sites and social
// networks on local ports for interactive exploration: the same services
// the pipeline crawls, plus an admin endpoint that advances the virtual
// clock so you can watch posts appear and doxed accounts lock down.
//
// Usage:
//
//	doxsites [-scale 0.01] [-seed 42] [-addr 127.0.0.1:8420]
//
// Endpoints (all under one address):
//
//	/pastebin/api_scraping.php?since=0&limit=50
//	/pastebin/api_scrape_item.php?i=<key>
//	/4chan/{b,pol}/catalog.json            /4chan/{b,pol}/thread/<no>.json
//	/8ch/{pol,baphomet}/catalog.json       ...
//	/osn/{network}/{username}              /osn/instagram/id/<n>
//	/admin/clock                           — current virtual time
//	/admin/advance?days=7                  — move the clock forward
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"doxmeter/internal/osn"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
	"doxmeter/internal/sites"
	"doxmeter/internal/textgen"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.01, "corpus scale factor")
		seed  = flag.Int64("seed", 42, "world seed")
		addr  = flag.String("addr", "127.0.0.1:8420", "listen address")
	)
	flag.Parse()

	world := sim.NewWorld(sim.Default(*seed, *scale))
	gen := textgen.New(world)
	corpus := gen.Corpus()
	clock := simclock.NewClock(simclock.Period1.Start)

	pastebin := sites.NewPastebin(clock, corpus.Streams[textgen.SitePastebin], sites.DefaultDeletionModel(), *seed+1)
	fourchan := sites.NewBoardSite(clock, map[string][]textgen.Doc{
		"b":   corpus.Streams[textgen.SiteFourchanB],
		"pol": corpus.Streams[textgen.SiteFourchanPol],
	}, *seed+2)
	eightch := sites.NewBoardSite(clock, map[string][]textgen.Doc{
		"pol":      corpus.Streams[textgen.SiteEightchPol],
		"baphomet": corpus.Streams[textgen.SiteEightchBapho],
	}, *seed+3)
	universe := osn.NewUniverse(clock, world, *seed+4)

	mux := http.NewServeMux()
	mux.Handle("/pastebin/", http.StripPrefix("/pastebin", pastebin.Handler()))
	mux.Handle("/4chan/", http.StripPrefix("/4chan", fourchan.Handler()))
	mux.Handle("/8ch/", http.StripPrefix("/8ch", eightch.Handler()))
	mux.Handle("/osn/", http.StripPrefix("/osn", universe.Handler()))
	mux.HandleFunc("/admin/clock", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, clock.Now().Format(time.RFC3339))
	})
	mux.HandleFunc("/admin/advance", func(w http.ResponseWriter, req *http.Request) {
		days := 1
		if s := req.URL.Query().Get("days"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 || v > 3650 {
				http.Error(w, "bad days", http.StatusBadRequest)
				return
			}
			days = v
		}
		now := clock.Advance(time.Duration(days) * simclock.Day)
		fmt.Fprintln(w, now.Format(time.RFC3339))
	})

	fmt.Printf("doxsites serving %d documents and %d social accounts on http://%s\n",
		corpus.TotalDocs(), len(universe.Accounts()), *addr)
	fmt.Printf("virtual clock starts at %s; advance with /admin/advance?days=N\n",
		clock.Now().Format("2006-01-02"))
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "doxsites:", err)
		os.Exit(1)
	}
}
