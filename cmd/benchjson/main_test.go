package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: doxmeter
cpu: Test CPU @ 2.40GHz
BenchmarkFigure1-8   	       3	 410123456 ns/op	 1234567 B/op	    4321 allocs/op
BenchmarkFetch   	    1000	      9876 ns/op	  52.5 MB/s
PASS
ok  	doxmeter	12.345s
`
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "doxmeter" {
		t.Errorf("context = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkFigure1" || r.Procs != 8 || r.Iterations != 3 ||
		r.NsPerOp != 410123456 || r.BytesPerOp != 1234567 || r.AllocsOp != 4321 {
		t.Errorf("first result parsed wrong: %+v", r)
	}
	r = rep.Results[1]
	if r.Name != "BenchmarkFetch" || r.Procs != 1 || r.NsPerOp != 9876 {
		t.Errorf("second result parsed wrong: %+v", r)
	}
	if r.Extra["MB/s"] != 52.5 {
		t.Errorf("MB/s = %v, want 52.5", r.Extra["MB/s"])
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",
		"BenchmarkFoo-8 notanumber 5 ns/op",
		"BenchmarkFoo-8 100 5 B/op", // no ns/op pair
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted", line)
		}
	}
}
