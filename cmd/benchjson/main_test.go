package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: doxmeter
cpu: Test CPU @ 2.40GHz
BenchmarkFigure1-8   	       3	 410123456 ns/op	 1234567 B/op	    4321 allocs/op
BenchmarkFetch   	    1000	      9876 ns/op	  52.5 MB/s
PASS
ok  	doxmeter	12.345s
`
	rep, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "doxmeter" {
		t.Errorf("context = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkFigure1" || r.Procs != 8 || r.Iterations != 3 ||
		r.NsPerOp != 410123456 || r.BytesPerOp != 1234567 || r.AllocsOp != 4321 {
		t.Errorf("first result parsed wrong: %+v", r)
	}
	r = rep.Results[1]
	if r.Name != "BenchmarkFetch" || r.Procs != 1 || r.NsPerOp != 9876 {
		t.Errorf("second result parsed wrong: %+v", r)
	}
	if r.Extra["MB/s"] != 52.5 {
		t.Errorf("MB/s = %v, want 52.5", r.Extra["MB/s"])
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo",
		"BenchmarkFoo-8 notanumber 5 ns/op",
		"BenchmarkFoo-8 100 5 B/op", // no ns/op pair
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted", line)
		}
	}
}

func TestParseTolerance(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		err  bool
	}{
		{"10%", 0.10, false},
		{"0.1", 0.1, false},
		{" 25% ", 0.25, false},
		{"0", 0, false},
		{"-5%", 0, true},
		{"abc", 0, true},
		{"%", 0, true},
	}
	for _, c := range cases {
		got, err := parseTolerance(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseTolerance(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("parseTolerance(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkOnlyInBaseline", NsPerOp: 5},
	}}
	cur := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 105},  // +5%: within 10%
		{Name: "BenchmarkB", NsPerOp: 1300}, // +30%: regression
		{Name: "BenchmarkNew", NsPerOp: 7},  // no baseline: skipped
	}}
	regs, compared := compare(base, cur, 0.10)
	if compared != 2 {
		t.Errorf("compared = %d, want 2", compared)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkB" {
		t.Fatalf("regs = %+v, want just BenchmarkB", regs)
	}
	if r := regs[0]; r.Base != 1000 || r.Current != 1300 || r.Delta < 0.29 || r.Delta > 0.31 {
		t.Errorf("regression detail wrong: %+v", r)
	}

	// Improvements are never regressions.
	fast := &Report{Results: []Result{{Name: "BenchmarkA", NsPerOp: 10}}}
	if regs, _ := compare(base, fast, 0); len(regs) != 0 {
		t.Errorf("improvement reported as regression: %+v", regs)
	}
}

func TestCompareCalibration(t *testing.T) {
	// The whole machine is running 1.5x slower than when the baseline was
	// recorded (calibration 100 -> 150). BenchmarkA merely rode the slow
	// machine (+50% raw, unchanged after normalization); BenchmarkB
	// genuinely regressed on top of it (+95% raw, +30% normalized).
	base := &Report{Results: []Result{
		{Name: calibrationName, NsPerOp: 100},
		{Name: "BenchmarkA", NsPerOp: 200},
		{Name: "BenchmarkB", NsPerOp: 1000},
	}}
	cur := &Report{Results: []Result{
		{Name: calibrationName, NsPerOp: 150},
		{Name: "BenchmarkA", NsPerOp: 300},
		{Name: "BenchmarkB", NsPerOp: 1950},
	}}
	regs, compared := compare(base, cur, 0.10)
	if compared != 2 {
		t.Errorf("compared = %d, want 2 (calibration must not be compared)", compared)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkB" {
		t.Fatalf("regs = %+v, want just BenchmarkB", regs)
	}
	if d := regs[0].Delta; d < 0.29 || d > 0.31 {
		t.Errorf("normalized delta = %v, want ~0.30", d)
	}

	// Calibration only excuses, it never indicts: a faster calibration
	// read (machine claims 1.25x faster) must NOT inflate current results
	// — +5% raw stays +5%, not ~+31% — because the small calibration loop
	// can anti-correlate with the cache-heavy real benchmarks on a shared
	// host.
	fastCur := &Report{Results: []Result{
		{Name: calibrationName, NsPerOp: 80},
		{Name: "BenchmarkA", NsPerOp: 210},
	}}
	if regs, _ := compare(base, fastCur, 0.10); len(regs) != 0 {
		t.Errorf("fast calibration read indicted a raw-clean run: %+v", regs)
	}
	// A raw regression on a faster-reading machine is still caught raw.
	fastCur.Results[1].NsPerOp = 240
	if regs, _ := compare(base, fastCur, 0.10); len(regs) != 1 || regs[0].Delta < 0.19 || regs[0].Delta > 0.21 {
		t.Errorf("raw regression on fast-reading machine missed: %+v", regs)
	}

	// An implausible >2x swing is clamped, not trusted.
	wild := &Report{Results: []Result{
		{Name: calibrationName, NsPerOp: 1000}, // claims 10x slower
		{Name: "BenchmarkA", NsPerOp: 2000},    // 10x raw
	}}
	if regs, _ := compare(base, wild, 0.10); len(regs) != 1 {
		t.Errorf("clamp failed, 10x slowdown excused: %+v", regs)
	}
}

func TestCompareMinOfN(t *testing.T) {
	// With -count=N duplicates, each side should be judged on its fastest
	// sample, so one noisy slow run does not fail the gate.
	base := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkA", NsPerOp: 95},
	}}
	cur := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 160}, // noisy sample
		{Name: "BenchmarkA", NsPerOp: 98},  // real speed: within 10% of 95
	}}
	regs, compared := compare(base, cur, 0.10)
	if compared != 1 || len(regs) != 0 {
		t.Fatalf("min-of-N compare: compared=%d regs=%+v", compared, regs)
	}
}

func TestCompareMem(t *testing.T) {
	base := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 1000, AllocsOp: 10, HasMem: true},
		{Name: "BenchmarkZero", NsPerOp: 50, BytesPerOp: 0, AllocsOp: 0, HasMem: true},
		{Name: "BenchmarkNoMem", NsPerOp: 10}, // baseline without -benchmem
	}}
	cur := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 1050, AllocsOp: 14, HasMem: true}, // bytes +5% ok, allocs +40% regress
		{Name: "BenchmarkZero", NsPerOp: 50, BytesPerOp: 16, AllocsOp: 1, HasMem: true},  // zero-alloc contract broken
		{Name: "BenchmarkNoMem", NsPerOp: 10, BytesPerOp: 99, AllocsOp: 9, HasMem: true}, // no baseline mem: skipped
	}}
	regs, compared := compareMem(base, cur, 0.10)
	if compared != 2 {
		t.Errorf("compared = %d, want 2", compared)
	}
	var got []string
	for _, r := range regs {
		got = append(got, r.Name+" "+r.Metric)
	}
	want := []string{"BenchmarkA allocs/op", "BenchmarkZero allocs/op", "BenchmarkZero B/op"}
	if len(got) != len(want) {
		t.Fatalf("regs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("regs = %v, want %v", got, want)
		}
	}
	// The zero-baseline gate admits exactly zero growth but no more.
	if r := regs[1]; r.Base != 0 || r.Current != 1 || r.Limit != 0 {
		t.Errorf("zero-alloc regression detail wrong: %+v", r)
	}
}

func TestCompareMemMinOfN(t *testing.T) {
	// -count=N duplicates: each side judged on its smallest sample per
	// metric, so one warmup-polluted sample does not fail the gate.
	base := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 1000, AllocsOp: 10, HasMem: true},
	}}
	cur := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 4000, AllocsOp: 25, HasMem: true},
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 1010, AllocsOp: 10, HasMem: true},
	}}
	regs, compared := compareMem(base, cur, 0.10)
	if compared != 1 || len(regs) != 0 {
		t.Fatalf("min-of-N mem compare: compared=%d regs=%+v", compared, regs)
	}
}

func TestCompareMemImprovement(t *testing.T) {
	base := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 1000, AllocsOp: 10, HasMem: true},
	}}
	cur := &Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 0, AllocsOp: 0, HasMem: true},
	}}
	if regs, _ := compareMem(base, cur, 0); len(regs) != 0 {
		t.Errorf("improvement to zero reported as regression: %+v", regs)
	}
}
