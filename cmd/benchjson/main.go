// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout (or -out file), so benchmark runs can be stored,
// diffed and plotted without re-parsing the text format downstream.
//
// Usage:
//
//	go test -bench=. -benchmem -run NONE . | benchjson -out BENCH_results.json
//
// Each "BenchmarkName-P  N  X ns/op [Y B/op  Z allocs/op]" line becomes one
// record; goos/goarch/pkg/cpu context lines are captured into the header.
// Non-benchmark lines (PASS, ok, test logs) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
	// Extra holds any further "value unit" pairs (e.g. custom b.ReportMetric
	// units or MB/s), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full document: run context plus every benchmark.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(rep.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Results), *out)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one benchmark result line. Returns ok=false for lines
// that merely start with "Benchmark" but are not results (e.g. a bare name
// echoed before its timing line).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = n
	// The remainder is "value unit" pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp, sawNs = v, true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, sawNs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
