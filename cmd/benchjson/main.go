// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout (or -out file), so benchmark runs can be stored,
// diffed and plotted without re-parsing the text format downstream.
//
// Usage:
//
//	go test -bench=. -benchmem -run NONE . | benchjson -out BENCH_results.json
//
// Each "BenchmarkName-P  N  X ns/op [Y B/op  Z allocs/op]" line becomes one
// record; goos/goarch/pkg/cpu context lines are captured into the header.
// Non-benchmark lines (PASS, ok, test logs) are ignored.
//
// With -baseline, the parsed run is additionally compared against a stored
// report and the command exits 1 if any shared benchmark regressed in ns/op
// by more than -max-regress (a fraction like "0.1" or a percentage like
// "10%"), or grew in B/op or allocs/op by more than -max-alloc-regress:
//
//	go test -bench=... . | benchjson -baseline BENCH_results.json -max-regress 10% -out /dev/null
//
// When both reports contain the BenchmarkCalibrate machine-speed reference
// and the current machine reads slower than at baseline time, the ns/op
// comparison first normalizes the current run down by the calibration
// ratio, cancelling CPU-frequency and noisy-neighbor drift between the two
// runs; a faster calibration read is ignored rather than used to inflate
// current results (see compare). Memory gates are never calibration-scaled
// — allocation counts are machine-independent — and a baseline of exactly
// 0 allocs/op is enforced exactly: any allocation on a recorded zero-alloc
// path fails the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
	// HasMem records that the line carried -benchmem columns, so a stored
	// 0 B/op / 0 allocs/op means "measured zero" — the signal the
	// exact-zero allocation gate keys on — rather than "not measured".
	HasMem bool `json:"benchmem,omitempty"`
	// Extra holds any further "value unit" pairs (e.g. custom b.ReportMetric
	// units or MB/s), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full document: run context plus every benchmark.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	baseline := flag.String("baseline", "", "compare ns/op against this stored report and fail on regression")
	maxRegress := flag.String("max-regress", "10%", "allowed ns/op slowdown vs -baseline (fraction or percentage)")
	maxAllocRegress := flag.String("max-alloc-regress", "10%", "allowed B/op and allocs/op growth vs -baseline (fraction or percentage); baselines of exactly 0 allocs/op admit no growth at all")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(rep.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	if *out != "/dev/null" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Results), *out)
		}
	}

	if *baseline != "" {
		tol, err := parseTolerance(*maxRegress)
		if err != nil {
			fatal(err)
		}
		allocTol, err := parseTolerance(*maxAllocRegress)
		if err != nil {
			fatal(err)
		}
		base, err := loadReport(*baseline)
		if err != nil {
			fatal(err)
		}
		regs, compared := compare(base, rep, tol)
		memRegs, memCompared := compareMem(base, rep, allocTol)
		regs = append(regs, memRegs...)
		if compared == 0 {
			fatal(fmt.Errorf("no benchmarks in common with baseline %s", *baseline))
		}
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.1f %s -> %.1f %s (%+.1f%%, limit %+.1f%%)\n",
				r.Name, r.Base, r.Metric, r.Current, r.Metric, 100*r.Delta, 100*r.Limit)
		}
		if len(regs) > 0 {
			fatal(fmt.Errorf("%d regressions across %d timed and %d memory comparisons", len(regs), compared, memCompared))
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %s of baseline ns/op; %d within %s of baseline B/op and allocs/op\n",
			compared, *maxRegress, memCompared, *maxAllocRegress)
	}
}

// Regression is one benchmark metric that degraded beyond tolerance.
type Regression struct {
	Name          string
	Metric        string  // "ns/op", "B/op" or "allocs/op"
	Base, Current float64 // value per op in Metric units
	Delta         float64 // fractional growth, e.g. 0.25 = 25% worse
	Limit         float64 // the tolerance this metric was held to
}

// calibrationName is the machine-speed reference benchmark. When both the
// baseline and the current run contain it and the current machine reads
// slower, every current ns/op is divided by the ratio of calibration times
// before comparison. The calibration workload is fixed pure CPU, so the
// ratio estimates how fast the machine is running right now versus when
// the baseline was recorded — CPU frequency scaling and noisy-neighbor
// steal on shared VMs swing whole runs by 30% or more, which would
// otherwise drown the gate. The ratio is clamped at 2x (a larger swing is
// not plausible speed drift) and floored at 1: it excuses slowdowns but
// never scales current results up (see compare).
const calibrationName = "BenchmarkCalibrate"

// parseTolerance accepts "10%" or "0.1".
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid -max-regress %q (want a fraction like 0.1 or a percentage like 10%%)", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &rep, nil
}

// compare matches current results to baseline by name and returns every
// benchmark whose ns/op grew by more than tol, plus how many were compared.
// Benchmarks present on only one side are skipped: the baseline is allowed
// to be a superset (full bench run) of a quick regression-check subset.
// When a name appears several times (go test -count=N), each side uses its
// fastest sample — min-vs-min is robust to scheduler noise, which only ever
// slows a run down. If both sides carry the calibration benchmark and it
// reports the machine running slower than at baseline time, current values
// are normalized down by the machine-speed ratio first (see
// calibrationName); the calibration entry itself is never compared.
//
// Calibration only ever EXCUSES a slowdown, it never indicts: when the
// calibration loop reads faster than at baseline time the ratio is ignored
// and raw values are compared. The calibration workload is a small
// fixed-footprint loop, and on shared VMs its speed can anti-correlate
// with the real benchmarks' (a co-tenant hammering the LLC and memory
// bandwidth slows the cache-heavy pipeline benchmarks while leaving the
// mostly-ALU calibration loop untouched, or vice versa). Scaling current
// results UP because the calibration loop happened to catch a fast window
// turns that proxy error into phantom regressions, so the gate refuses to
// do it — the cost is that a real code regression exactly masked by a
// genuinely faster machine is missed, which the next baseline refresh
// catches.
func compare(base, cur *Report, tol float64) ([]Regression, int) {
	baseNs := minNsByName(base)
	curNs := minNsByName(cur)
	scale := 1.0
	if b, c := baseNs[calibrationName], curNs[calibrationName]; b > 0 && c > 0 {
		scale = c / b
		if scale > 2 {
			scale = 2
		}
		if scale > 1 {
			fmt.Fprintf(os.Stderr,
				"benchjson: calibration %.0f -> %.0f ns/op; normalizing current results by 1/%.3f\n",
				b, c, scale)
		} else {
			if scale < 1 {
				fmt.Fprintf(os.Stderr,
					"benchjson: calibration %.0f -> %.0f ns/op; machine not slower, comparing raw\n",
					b, c)
			}
			scale = 1
		}
		delete(curNs, calibrationName)
	}
	names := make([]string, 0, len(curNs))
	for name := range curNs {
		names = append(names, name)
	}
	sort.Strings(names)
	var regs []Regression
	compared := 0
	for _, name := range names {
		b, ok := baseNs[name]
		if !ok || b <= 0 {
			continue
		}
		compared++
		ns := curNs[name] / scale
		delta := ns/b - 1
		if delta > tol {
			regs = append(regs, Regression{Name: name, Metric: "ns/op", Base: b, Current: ns, Delta: delta, Limit: tol})
		}
	}
	return regs, compared
}

// memStats is one benchmark's best (minimum) -benchmem sample.
type memStats struct {
	bytes, allocs int64
}

// compareMem gates B/op and allocs/op growth against the baseline. Memory
// counts are deterministic properties of the code, not of the machine, so
// unlike ns/op they are never calibration-scaled: a byte allocated here is
// a byte allocated on any host. Benchmarks whose baseline allocs/op is
// exactly zero get the strict gate — zero-alloc is a contract some hot
// kernels advertise (tokenize, extract), and "one alloc per op" on a
// formerly allocation-free path is a real leak no percentage tolerance
// should wave through. Only entries carrying -benchmem data on both sides
// are compared; min-of-N per name filters warmup noise the same way the
// timed gate does.
func compareMem(base, cur *Report, tol float64) ([]Regression, int) {
	baseMem := minMemByName(base)
	curMem := minMemByName(cur)
	names := make([]string, 0, len(curMem))
	for name := range curMem {
		names = append(names, name)
	}
	sort.Strings(names)
	var regs []Regression
	compared := 0
	for _, name := range names {
		b, ok := baseMem[name]
		if !ok {
			continue
		}
		compared++
		c := curMem[name]
		regs = gateMetric(regs, name, "allocs/op", b.allocs, c.allocs, tol)
		regs = gateMetric(regs, name, "B/op", b.bytes, c.bytes, tol)
	}
	return regs, compared
}

// gateMetric appends a Regression when cur exceeds base by more than tol.
// A zero baseline tolerates nothing: any growth from 0 is flagged with the
// full delta reported as +Inf-free absolute growth (Delta is left as the
// ratio against 1 unit so the message stays finite).
func gateMetric(regs []Regression, name, metric string, base, cur int64, tol float64) []Regression {
	if base == 0 {
		if cur > 0 {
			regs = append(regs, Regression{Name: name, Metric: metric, Base: 0, Current: float64(cur), Delta: float64(cur), Limit: 0})
		}
		return regs
	}
	delta := float64(cur)/float64(base) - 1
	if delta > tol {
		regs = append(regs, Regression{Name: name, Metric: metric, Base: float64(base), Current: float64(cur), Delta: delta, Limit: tol})
	}
	return regs
}

// minMemByName keeps each name's smallest -benchmem sample; entries without
// memory columns are skipped entirely.
func minMemByName(rep *Report) map[string]memStats {
	out := make(map[string]memStats, len(rep.Results))
	for _, r := range rep.Results {
		if !r.HasMem {
			continue
		}
		m := memStats{bytes: r.BytesPerOp, allocs: r.AllocsOp}
		if prev, ok := out[r.Name]; ok {
			if prev.bytes < m.bytes {
				m.bytes = prev.bytes
			}
			if prev.allocs < m.allocs {
				m.allocs = prev.allocs
			}
		}
		out[r.Name] = m
	}
	return out
}

func minNsByName(rep *Report) map[string]float64 {
	out := make(map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		if prev, ok := out[r.Name]; !ok || r.NsPerOp < prev {
			out[r.Name] = r.NsPerOp
		}
	}
	return out
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one benchmark result line. Returns ok=false for lines
// that merely start with "Benchmark" but are not results (e.g. a bare name
// echoed before its timing line).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = n
	// The remainder is "value unit" pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp, sawNs = v, true
		case "B/op":
			r.BytesPerOp, r.HasMem = int64(v), true
		case "allocs/op":
			r.AllocsOp, r.HasMem = int64(v), true
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, sawNs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
