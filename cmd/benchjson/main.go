// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout (or -out file), so benchmark runs can be stored,
// diffed and plotted without re-parsing the text format downstream.
//
// Usage:
//
//	go test -bench=. -benchmem -run NONE . | benchjson -out BENCH_results.json
//
// Each "BenchmarkName-P  N  X ns/op [Y B/op  Z allocs/op]" line becomes one
// record; goos/goarch/pkg/cpu context lines are captured into the header.
// Non-benchmark lines (PASS, ok, test logs) are ignored.
//
// With -baseline, the parsed run is additionally compared against a stored
// report and the command exits 1 if any shared benchmark regressed in ns/op
// by more than -max-regress (a fraction like "0.1" or a percentage like
// "10%"):
//
//	go test -bench=... . | benchjson -baseline BENCH_results.json -max-regress 10% -out /dev/null
//
// When both reports contain the BenchmarkCalibrate machine-speed reference,
// the comparison first normalizes the current run by the calibration ratio,
// cancelling CPU-frequency and noisy-neighbor drift between the two runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
	// Extra holds any further "value unit" pairs (e.g. custom b.ReportMetric
	// units or MB/s), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full document: run context plus every benchmark.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	baseline := flag.String("baseline", "", "compare ns/op against this stored report and fail on regression")
	maxRegress := flag.String("max-regress", "10%", "allowed ns/op slowdown vs -baseline (fraction or percentage)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(rep.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	if *out != "/dev/null" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Results), *out)
		}
	}

	if *baseline != "" {
		tol, err := parseTolerance(*maxRegress)
		if err != nil {
			fatal(err)
		}
		base, err := loadReport(*baseline)
		if err != nil {
			fatal(err)
		}
		regs, compared := compare(base, rep, tol)
		if compared == 0 {
			fatal(fmt.Errorf("no benchmarks in common with baseline %s", *baseline))
		}
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.1f ns/op -> %.1f ns/op (%+.1f%%, limit %+.1f%%)\n",
				r.Name, r.Base, r.Current, 100*r.Delta, 100*tol)
		}
		if len(regs) > 0 {
			fatal(fmt.Errorf("%d of %d benchmarks regressed beyond %s", len(regs), compared, *maxRegress))
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %s of baseline\n", compared, *maxRegress)
	}
}

// Regression is one benchmark that slowed beyond tolerance.
type Regression struct {
	Name          string
	Base, Current float64 // ns/op
	Delta         float64 // fractional slowdown, e.g. 0.25 = 25% slower
}

// calibrationName is the machine-speed reference benchmark. When both the
// baseline and the current run contain it, every current ns/op is divided
// by the ratio of calibration times before comparison. The calibration
// workload is fixed pure CPU, so the ratio measures how fast the machine
// is running right now versus when the baseline was recorded — CPU
// frequency scaling and noisy-neighbor steal on shared VMs swing whole
// runs by 30% or more, which would otherwise drown a 10% gate. The
// ratio is clamped: a swing beyond 2x either way is not plausible speed
// drift and is left for the per-benchmark limits to catch.
const calibrationName = "BenchmarkCalibrate"

// parseTolerance accepts "10%" or "0.1".
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid -max-regress %q (want a fraction like 0.1 or a percentage like 10%%)", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &rep, nil
}

// compare matches current results to baseline by name and returns every
// benchmark whose ns/op grew by more than tol, plus how many were compared.
// Benchmarks present on only one side are skipped: the baseline is allowed
// to be a superset (full bench run) of a quick regression-check subset.
// When a name appears several times (go test -count=N), each side uses its
// fastest sample — min-vs-min is robust to scheduler noise, which only ever
// slows a run down. If both sides carry the calibration benchmark, current
// values are normalized by the machine-speed ratio first (see
// calibrationName); the calibration entry itself is never compared.
func compare(base, cur *Report, tol float64) ([]Regression, int) {
	baseNs := minNsByName(base)
	curNs := minNsByName(cur)
	scale := 1.0
	if b, c := baseNs[calibrationName], curNs[calibrationName]; b > 0 && c > 0 {
		scale = c / b
		if scale < 0.5 {
			scale = 0.5
		} else if scale > 2 {
			scale = 2
		}
		if scale != 1 {
			fmt.Fprintf(os.Stderr,
				"benchjson: calibration %.0f -> %.0f ns/op; normalizing current results by 1/%.3f\n",
				b, c, scale)
		}
		delete(curNs, calibrationName)
	}
	names := make([]string, 0, len(curNs))
	for name := range curNs {
		names = append(names, name)
	}
	sort.Strings(names)
	var regs []Regression
	compared := 0
	for _, name := range names {
		b, ok := baseNs[name]
		if !ok || b <= 0 {
			continue
		}
		compared++
		ns := curNs[name] / scale
		delta := ns/b - 1
		if delta > tol {
			regs = append(regs, Regression{Name: name, Base: b, Current: ns, Delta: delta})
		}
	}
	return regs, compared
}

func minNsByName(rep *Report) map[string]float64 {
	out := make(map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		if prev, ok := out[r.Name]; !ok || r.NsPerOp < prev {
			out[r.Name] = r.NsPerOp
		}
	}
	return out
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one benchmark result line. Returns ok=false for lines
// that merely start with "Benchmark" but are not results (e.g. a bare name
// echoed before its timing line).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = n
	// The remainder is "value unit" pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp, sawNs = v, true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, sawNs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
