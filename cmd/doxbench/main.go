// Command doxbench runs the full study and regenerates every table and
// figure from the paper's evaluation section, printing paper-vs-measured
// values side by side.
//
// Usage:
//
//	doxbench [-scale 0.25] [-seed 1709] [-parallelism 0] [-progress] [-dot figure2.dot]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"doxmeter/internal/classifier"
	"doxmeter/internal/core"
	"doxmeter/internal/experiments"
	"doxmeter/internal/netid"
)

func main() {
	var (
		scale       = flag.Float64("scale", 0.25, "corpus scale factor (1.0 = the paper's 1.74M documents)")
		seed        = flag.Int64("seed", 1709, "world seed")
		parallelism = flag.Int("parallelism", 0, "pipeline worker-pool size (0 = GOMAXPROCS, 1 = sequential); any value yields identical results")
		progress    = flag.Bool("progress", false, "print per-day study progress to stderr")
		dotPath     = flag.String("dot", "", "write the Figure 2 clique graph as Graphviz DOT to this file")
		classifyN   = flag.Int("classify-bench", 0, "instead of the full study, time N classifications through the fused kernel and the reference path, then exit")
	)
	flag.Parse()

	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}
	start := time.Now()
	s, err := core.NewStudy(core.StudyConfig{Seed: *seed, Scale: *scale, Parallelism: *parallelism, Progress: progressW})
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	if *classifyN > 0 {
		classifyBench(s, *classifyN)
		return
	}
	fmt.Fprintf(os.Stderr, "world + classifier ready in %v; running two collection periods...\n", time.Since(start).Round(time.Millisecond))
	if err := s.Run(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "study complete in %v\n\n", time.Since(start).Round(time.Millisecond))

	agg, _ := s.LabelSample(s.Cfg.LabelSample)

	fmt.Println(experiments.Table1(s))
	fmt.Println(experiments.Table2(experiments.MeasureTable2(s, 125)))
	fmt.Println(experiments.Table3(s))
	fmt.Println(experiments.Table4(s))
	fmt.Println(experiments.Table5(agg))
	fmt.Println(experiments.Table6(agg))
	fmt.Println(experiments.Table7(agg))
	fmt.Println(experiments.Table8(agg))
	fmt.Println(experiments.Table9(s))
	fmt.Println(experiments.Table10(s))
	fmt.Println(experiments.Figure1(s))

	fig2, dot := experiments.Figure2(s)
	fmt.Println(fig2)
	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(dot), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("(Figure 2 DOT written to %s)\n\n", *dotPath)
	}

	for _, network := range []netid.Network{netid.Facebook, netid.Instagram} {
		pre, post, summary := experiments.Figure3(s, network)
		fmt.Println(summary)
		fmt.Println(pre)
		fmt.Println(post)
	}
	fmt.Println(experiments.Section63(s))
	fmt.Println(experiments.Section532(s))
	fmt.Println(experiments.SectionAbuse(s))
	fmt.Println(experiments.SectionActivity(s))
	fmt.Println(experiments.SectionCompromise(s))
	fmt.Println(experiments.Section41(s))
	if mirrors, err := experiments.SectionMirrors(s); err == nil {
		fmt.Println(mirrors)
	} else {
		fmt.Fprintln(os.Stderr, "mirror analysis failed:", err)
	}

	store := s.BuildStore("doxbench-salt")
	fmt.Printf("privacy store: %d sanitized records (categories + salted digests only; §3.3)\n", store.Len())
}

// classifyBench times N classifications of one rendered dox document through
// the fused kernel and through the reference Transform+Decision path, prints
// both rates, and cross-checks that every margin matched bit for bit.
func classifyBench(s *core.Study, n int) {
	r := rand.New(rand.NewSource(5))
	doc := s.Gen.Dox(r, s.World.TrainVictims[0]).Body

	var res classifier.Result
	s.Classifier.ScoreInto(doc, &res) // warm pooled scratch
	mismatches := 0

	start := time.Now()
	for i := 0; i < n; i++ {
		s.Classifier.ScoreInto(doc, &res)
	}
	fused := time.Since(start)

	start = time.Now()
	for i := 0; i < n; i++ {
		if s.Classifier.ScoreReference(doc) != res.Score {
			mismatches++
		}
	}
	ref := time.Since(start)

	perOp := func(d time.Duration) string {
		return fmt.Sprintf("%8.0f ns/op (%7.0f docs/s)",
			float64(d.Nanoseconds())/float64(n), float64(n)/d.Seconds())
	}
	fmt.Printf("classify bench: %d iterations over a %d-byte dox render\n", n, len(doc))
	fmt.Printf("  fused kernel:   %s\n", perOp(fused))
	fmt.Printf("  reference path: %s\n", perOp(ref))
	if ref > 0 && fused > 0 {
		fmt.Printf("  speedup:        %.1fx\n", float64(ref)/float64(fused))
	}
	if mismatches > 0 {
		fatal(fmt.Errorf("%d/%d margins diverged between kernels", mismatches, n))
	}
	fmt.Println("  margins bit-identical across both paths")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doxbench:", err)
	os.Exit(1)
}
