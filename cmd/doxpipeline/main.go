// Command doxpipeline runs the paper's five-stage measurement pipeline end
// to end against the simulated text-sharing sites and social networks, and
// prints the Figure 1 funnel plus a study summary.
//
// Usage:
//
//	doxpipeline [-scale 0.05] [-seed 42] [-parallelism 0] [-faults off] [-progress] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"doxmeter/internal/core"
	"doxmeter/internal/experiments"
	"doxmeter/internal/faults"
	"doxmeter/internal/monitor"
)

func main() {
	var (
		scale       = flag.Float64("scale", 0.05, "corpus scale factor")
		seed        = flag.Int64("seed", 42, "world seed")
		parallelism = flag.Int("parallelism", 0, "pipeline worker-pool size (0 = GOMAXPROCS, 1 = sequential); any value yields identical results")
		progress    = flag.Bool("progress", false, "print per-day progress to stderr")
		asJSON      = flag.Bool("json", false, "emit a machine-readable summary instead of tables")
		storePath   = flag.String("store", "", "write the §3.3 privacy-preserving datastore (JSON lines) to this file")
		storeSalt   = flag.String("store-salt", "doxmeter-store", "salt for account digests in the datastore")
		faultsName  = flag.String("faults", "off", "fault-injection profile for the simulated services: off, mild, heavy or outage")
	)
	flag.Parse()

	profile, err := faults.Preset(*faultsName, *seed+5)
	if err != nil {
		fatal(err)
	}

	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}
	start := time.Now()
	s, err := core.NewStudy(core.StudyConfig{Seed: *seed, Scale: *scale, Parallelism: *parallelism, Progress: progressW, Faults: profile})
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	if err := s.Run(context.Background()); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if profile != nil {
		fc := s.FaultCounters()
		fs := s.FetchStats()
		fmt.Fprintf(os.Stderr,
			"faults (%s): injected %d of %d requests (500s=%d 503s=%d 429s=%d resets=%d stalls=%d truncated=%d corrupted=%d outage=%d)\n",
			*faultsName, fc.Injected(), fc.Requests, fc.Status500, fc.Status503,
			fc.RateLimited, fc.Resets, fc.Stalls, fc.Truncated, fc.Corrupted, fc.OutageRejected)
		fmt.Fprintf(os.Stderr,
			"fetch: %d requests, %d retries, %d rate-limited, %d truncated, %d corrupt, %d quarantined, breaker opened %d times; %d poll failures, %d monitor failures\n",
			fs.Requests, fs.Retries, fs.RateLimited, fs.Truncated, fs.Corrupt,
			fs.Quarantined, fs.BreakerOpens, sumValues(s.PollFailures), s.MonitorFailures)
	}

	if *storePath != "" {
		store := s.BuildStore(*storeSalt)
		f, err := os.Create(*storePath)
		if err != nil {
			fatal(err)
		}
		if err := store.Export(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d sanitized records to %s (category indicators + salted digests only)\n",
			store.Len(), *storePath)
	}

	if *asJSON {
		verified, nonexistent := monitor.VerifiedCount(s.Monitor.Histories())
		stats := s.Deduper.Stats()
		out := map[string]any{
			"scale":               *scale,
			"seed":                *seed,
			"elapsed_ms":          elapsed.Milliseconds(),
			"collected":           s.Collected,
			"collected_by_site":   s.CollectedBySite,
			"flagged_pre_filter":  s.FlaggedByPeriod[1],
			"flagged_post_filter": s.FlaggedByPeriod[2],
			"duplicates_exact":    stats.ExactDups,
			"duplicates_account":  stats.AccntDups,
			"unique_doxes":        len(s.Doxes),
			"accounts_verified":   verified,
			"accounts_dropped":    nonexistent,
		}
		if profile != nil {
			fs := s.FetchStats()
			out["faults_profile"] = *faultsName
			out["faults_injected"] = s.FaultCounters().Injected()
			out["fetch_retries"] = fs.Retries
			out["breaker_opens"] = fs.BreakerOpens
			out["poll_failures"] = sumValues(s.PollFailures)
			out["monitor_failures"] = s.MonitorFailures
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println(experiments.Figure1(s))
	fmt.Println(experiments.Table1(s))
	fmt.Printf("classifier vocabulary: %d terms\n", s.Classifier.VocabSize())
	fmt.Printf("study wall time: %v at scale %.3f (%d documents)\n",
		elapsed.Round(time.Millisecond), *scale, s.Collected)
}

func sumValues(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doxpipeline:", err)
	os.Exit(1)
}
