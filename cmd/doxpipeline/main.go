// Command doxpipeline runs the paper's five-stage measurement pipeline end
// to end against the simulated text-sharing sites and social networks, and
// prints the Figure 1 funnel plus a study summary.
//
// Usage:
//
//	doxpipeline [-scale 0.05] [-seed 42] [-parallelism 0] [-faults off] [-progress] [-json]
//	            [-stream] [-shards 4]
//	            [-state-dir dir] [-checkpoint-every 1] [-checkpoint-mode full|delta]
//	            [-compact-every 8] [-checkpoint-compress] [-resume]
//	            [-admin addr] [-traces out.jsonl]
//
// With -stream the collection loop runs on the always-on streaming engine
// (internal/stream): polls fan out, prepare work is sharded by document
// key, and a sequencer commits each virtual day in the batch order, so
// the funnel, tables and durable run digest are bit-identical to the
// default batch mode — the queue/backpressure/latency series on /metrics
// are the only observable difference.
//
// With -shards N > 1 the batch day loop runs as N pipeline worker groups
// that partition the day's work through a leased work queue
// (internal/lease): source polls, prepare partitions and monitor sweep
// shards are acquired, executed and released item by item, and a worker
// that dies mid-day forfeits its leases to the survivors. Results are
// bit-identical to -shards 1 for any N, faults on or off, and a state
// dir checkpointed at one shard count resumes cleanly at another.
//
// With -state-dir the study is durable: every -checkpoint-every study days
// (and at period ends) the pipeline state is checkpointed into the
// directory. -checkpoint-mode=full writes a complete snapshot each cut;
// -checkpoint-mode=delta writes compact incremental diffs against the
// previous cut, with a full compaction snapshot every -compact-every deltas
// bounding the recovery chain. SIGINT/SIGTERM stops the run at the next day
// boundary after a final checkpoint; a second signal aborts immediately,
// losing at most the day in flight. -resume continues a killed run from its
// last checkpoint — replaying the delta chain when present — producing
// output bit-identical to an uninterrupted run. Both modes read each
// other's state dirs.
//
// The study is always instrumented on a telemetry hub; the exit-time
// counters in the stderr summary and the -json output are read from that
// same registry, so they can never disagree with what GET /metrics served
// mid-run (enable it with -admin).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"doxmeter/internal/core"
	"doxmeter/internal/experiments"
	"doxmeter/internal/faults"
	"doxmeter/internal/monitor"
	"doxmeter/internal/stack"
	"doxmeter/internal/telemetry"
)

func main() {
	var (
		scale       = flag.Float64("scale", 0.05, "corpus scale factor")
		seed        = flag.Int64("seed", 42, "world seed")
		parallelism = flag.Int("parallelism", 0, "pipeline worker-pool size (0 = GOMAXPROCS, 1 = sequential); any value yields identical results")
		progress    = flag.Bool("progress", false, "print per-day progress to stderr")
		asJSON      = flag.Bool("json", false, "emit a machine-readable summary instead of tables")
		storePath   = flag.String("store", "", "write the §3.3 privacy-preserving datastore (JSON lines) to this file")
		storeSalt   = flag.String("store-salt", "doxmeter-store", "salt for account digests in the datastore")
		faultsName  = flag.String("faults", "off", "fault-injection profile for the simulated services: off, mild, heavy or outage")
		adminAddr   = flag.String("admin", "", "serve /metrics, /debug/traces and /debug/pprof on this address during the run (empty = off)")
		tracesPath  = flag.String("traces", "", "write the study's spans as JSON Lines to this file on exit")
		streamMode  = flag.Bool("stream", false, "run the always-on streaming pipeline (internal/stream) instead of the batch day loop; results are bit-identical")
		shards      = flag.Int("shards", 1, "batch-mode pipeline worker groups partitioning the day's work through leased items; results are bit-identical for any N")
	)
	var dur stack.Durability
	dur.RegisterFlags(flag.CommandLine, true)
	flag.Parse()
	if err := dur.Validate(); err != nil {
		fatal(err)
	}

	profile, err := faults.Preset(*faultsName, *seed+5)
	if err != nil {
		fatal(err)
	}

	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}
	hub := telemetry.NewHub(0, nil)
	if *adminAddr != "" {
		go func() {
			if err := http.ListenAndServe(*adminAddr, hub.Handler()); err != nil {
				fatal(fmt.Errorf("admin listener: %w", err))
			}
		}()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", *adminAddr)
	}
	fileStore, ckpt, err := dur.Open()
	if err != nil {
		fatal(err)
	}
	if fileStore != nil {
		defer fileStore.Close()
	}

	var streamCfg *core.StreamConfig
	if *streamMode {
		streamCfg = &core.StreamConfig{}
	}

	start := time.Now()
	s, err := core.NewStudy(core.StudyConfig{Seed: *seed, Scale: *scale, Shards: *shards, Parallelism: *parallelism, Progress: progressW, Faults: profile, Checkpoint: ckpt, Telemetry: hub, Stream: streamCfg})
	if err != nil {
		fatal(err)
	}
	defer s.Close()

	var info core.ResumeInfo
	if dur.Resume {
		info, err = s.Resume()
		if err != nil {
			fatal(err)
		}
		if info.Resumed {
			fmt.Fprintf(os.Stderr, "doxpipeline: resumed at period %d day %d (virtual %s, snapshot seq %d)\n",
				info.Period, info.Day, info.VirtualTime.Format("2006-01-02"), info.Seq)
		} else {
			fmt.Fprintln(os.Stderr, "doxpipeline: no checkpoint found in state dir; starting fresh")
		}
	}

	// First SIGINT/SIGTERM: finish the day in flight, flush a final
	// checkpoint, exit cleanly. Second signal: abort via context, losing at
	// most the uncheckpointed day.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "doxpipeline: stopping at the next day boundary (signal again to abort)")
		s.RequestStop()
		<-sigCh
		fmt.Fprintln(os.Stderr, "doxpipeline: aborting")
		cancel()
	}()

	stopped := false
	if err := s.Run(ctx); err != nil {
		if !errors.Is(err, core.ErrStopped) {
			fatal(err)
		}
		stopped = true
		if dur.Durable() {
			fmt.Fprintf(os.Stderr, "doxpipeline: stopped after a final checkpoint; continue with -state-dir %s -resume\n", dur.StateDir)
		} else {
			fmt.Fprintln(os.Stderr, "doxpipeline: stopped (no -state-dir, nothing persisted)")
		}
	}
	elapsed := time.Since(start)
	reg := hub.Registry

	if *tracesPath != "" {
		f, err := os.Create(*tracesPath)
		if err != nil {
			fatal(err)
		}
		if err := hub.Tracer.WriteJSONL(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s (%d dropped by the ring buffer)\n",
			len(hub.Tracer.Spans()), *tracesPath, hub.Tracer.Dropped())
	}

	if profile != nil {
		// FaultCounters and FetchStats are snapshots of the telemetry
		// registry's atomics — the same series /metrics serves.
		fc := s.FaultCounters()
		fs := s.FetchStats()
		fmt.Fprintf(os.Stderr,
			"faults (%s): injected %d of %d requests (500s=%d 503s=%d 429s=%d resets=%d stalls=%d truncated=%d corrupted=%d outage=%d)\n",
			*faultsName, fc.Injected(), fc.Requests, fc.Status500, fc.Status503,
			fc.RateLimited, fc.Resets, fc.Stalls, fc.Truncated, fc.Corrupted, fc.OutageRejected)
		fmt.Fprintf(os.Stderr,
			"fetch: %d requests, %d retries, %d rate-limited, %d truncated, %d corrupt, %d quarantined, breaker opened %d times; %d poll failures, %d monitor failures\n",
			fs.Requests, fs.Retries, fs.RateLimited, fs.Truncated, fs.Corrupt,
			fs.Quarantined, fs.BreakerOpens,
			int(reg.Sum("doxmeter_poll_failures_total")),
			int(reg.Sum("doxmeter_monitor_sweep_failures_total")))
	}

	if *storePath != "" {
		store := s.BuildStore(*storeSalt)
		f, err := os.Create(*storePath)
		if err != nil {
			fatal(err)
		}
		if err := store.Export(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d sanitized records to %s (category indicators + salted digests only)\n",
			store.Len(), *storePath)
	}

	if *asJSON {
		verified, nonexistent := monitor.VerifiedCount(s.Monitor.Histories())
		// Every count below is read from the telemetry registry — the same
		// atomics GET /metrics serves — so this summary, the stderr lines
		// and a mid-run scrape can never disagree.
		flagged := reg.SumBy("doxmeter_docs_flagged_total", "period")
		dups := reg.SumBy("doxmeter_docs_duplicate_total", "verdict")
		collectedBySite := map[string]int{}
		for site, n := range reg.SumBy("doxmeter_docs_collected_total", "site") {
			collectedBySite[site] = int(n)
		}
		out := map[string]any{
			"scale":               *scale,
			"seed":                *seed,
			"elapsed_ms":          elapsed.Milliseconds(),
			"collected":           int(reg.Sum("doxmeter_docs_collected_total")),
			"collected_by_site":   collectedBySite,
			"flagged_pre_filter":  int(flagged["1"]),
			"flagged_post_filter": int(flagged["2"]),
			"duplicates_exact":    int(dups["exact-duplicate"]),
			"duplicates_account":  int(dups["account-duplicate"]),
			"unique_doxes":        int(reg.Sum("doxmeter_doxes_unique_total")),
			"accounts_verified":   verified,
			"accounts_dropped":    nonexistent,
			"resumed":             info.Resumed,
			"stopped":             stopped,
			"stream":              *streamMode,
		}
		if *streamMode {
			out["stream_epochs"] = int(reg.Sum("doxmeter_stream_epochs_total"))
			out["stream_backpressure"] = int(reg.Sum("doxmeter_stream_backpressure_total"))
		}
		if *shards > 1 {
			out["shards"] = *shards
			out["lease_steals"] = s.LeaseSteals()
		}
		if dur.Durable() {
			out["state_dir"] = dur.StateDir
			out["checkpoints_written"] = s.CheckpointsWritten
			out["checkpoint_mode"] = dur.Mode
			if dur.DeltaMode() {
				out["checkpoint_chain_length"] = int(reg.Sum("doxmeter_checkpoint_chain_length"))
			}
			if info.Resumed {
				out["resumed_from_period"] = info.Period
				out["resumed_from_day"] = info.Day
			}
		}
		if profile != nil {
			out["faults_profile"] = *faultsName
			out["faults_injected"] = int(reg.Sum("doxmeter_fault_injected_total"))
			out["fetch_retries"] = int(reg.Sum("doxmeter_fetch_retries_total"))
			out["breaker_opens"] = int(reg.Sum("doxmeter_fetch_breaker_opens_total"))
			out["poll_failures"] = int(reg.Sum("doxmeter_poll_failures_total"))
			out["monitor_failures"] = int(reg.Sum("doxmeter_monitor_sweep_failures_total"))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println(experiments.Figure1(s))
	fmt.Println(experiments.Table1(s))
	fmt.Printf("classifier vocabulary: %d terms\n", s.Classifier.VocabSize())
	fmt.Printf("study wall time: %v at scale %.3f (%d documents)\n",
		elapsed.Round(time.Millisecond), *scale, s.Collected)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doxpipeline:", err)
	os.Exit(1)
}
