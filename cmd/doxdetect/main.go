// Command doxdetect trains the paper's dox classifier and classifies files
// from the command line or stdin. Models can be persisted and reloaded, so
// a deployment trains once and classifies cheaply.
//
// Usage:
//
//	doxdetect -train -model dox.model [-seed 1] [-scale 0.01]
//	doxdetect -model dox.model file.txt [file2.txt ...]
//	cat paste.txt | doxdetect -model dox.model
//
// Output: one line per input, "DOX <score> <name>" or "ok <score> <name>".
// With -extract, detected doxes also print the extracted accounts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"doxmeter/internal/classifier"
	"doxmeter/internal/extract"
	"doxmeter/internal/htmltext"
	"doxmeter/internal/randutil"
	"doxmeter/internal/sim"
	"doxmeter/internal/textgen"
)

func main() {
	var (
		train     = flag.Bool("train", false, "train a new model on the synthetic labeled corpus and save it")
		modelPath = flag.String("model", "dox.model", "model file path")
		seed      = flag.Int64("seed", 1, "training seed")
		scale     = flag.Float64("scale", 0.01, "world scale used when training")
		doExtract = flag.Bool("extract", false, "print extracted accounts for detected doxes")
	)
	flag.Parse()

	if *train {
		if err := trainModel(*modelPath, *seed, *scale); err != nil {
			fatal(err)
		}
		return
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(fmt.Errorf("open model (train one with -train): %w", err))
	}
	clf, err := classifier.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	if flag.NArg() == 0 {
		body, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		classify(clf, "<stdin>", string(body), *doExtract)
		return
	}
	for _, path := range flag.Args() {
		body, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		classify(clf, path, string(body), *doExtract)
	}
}

func trainModel(path string, seed int64, scale float64) error {
	g := textgen.New(sim.NewWorld(sim.Default(seed, scale)))
	var docs []string
	var labels []bool
	for _, ex := range g.TrainingSet() {
		docs = append(docs, ex.Body)
		labels = append(labels, ex.IsDox)
	}
	clf, err := classifier.Train(randutil.New(seed), docs, labels, classifier.Options{})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := clf.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained on %d labeled documents (%d-term vocabulary), saved to %s\n",
		len(docs), clf.VocabSize(), path)
	return nil
}

func classify(clf *classifier.Classifier, name, body string, doExtract bool) {
	text := body
	if htmltext.IsProbablyHTML(text) {
		text = htmltext.Convert(text)
	}
	score := clf.Score(text)
	if score >= 0 {
		fmt.Printf("DOX %+.3f %s\n", score, name)
		if doExtract {
			ex := extract.Extract(text)
			for _, ref := range ex.AccountRefs() {
				fmt.Printf("  account: %s\n", ref)
			}
			for _, e := range ex.Emails {
				fmt.Printf("  email:   %s\n", e)
			}
			for _, p := range ex.Phones {
				fmt.Printf("  phone:   %s\n", p)
			}
			for _, ip := range ex.IPs {
				fmt.Printf("  ip:      %s\n", ip)
			}
		}
	} else {
		fmt.Printf("ok  %+.3f %s\n", score, name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doxdetect:", err)
	os.Exit(1)
}
