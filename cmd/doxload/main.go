// Command doxload is a loadgen-style traffic generator for the simulated
// serving stack. It drives a doxsites instance — an external one via
// -target, or a self-hosted in-process stack — at a configurable request
// rate and concurrency for a fixed duration, optionally behind a fault
// profile, and reports p50/p95/p99 latency (computed from its telemetry
// histograms), achieved request rate and per-route breakdowns.
//
// Usage:
//
//	doxload [-target http://127.0.0.1:8420] [-rate 200] [-concurrency 8]
//	        [-duration 5s] [-faults off] [-seed 42] [-scale 0.01] [-days 30]
//	        [-min-success 0] [-traces out.jsonl] [-admin addr] [-json]
//
// With no -target, doxload stands up its own stack on a loopback port
// (seed/scale/faults flags apply) and advances its virtual clock -days days
// so the sites have content to serve. Target URLs are harvested live from
// the stack itself: the pastebin scraping API, the board catalogs and the
// /admin/accounts listing.
//
// Exit status is 1 when the 2xx fraction falls below -min-success, making
// `make loadtest` a one-line smoke check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"doxmeter/internal/faults"
	"doxmeter/internal/simclock"
	"doxmeter/internal/stack"
	"doxmeter/internal/telemetry"
)

type target struct{ route, url string }

func main() {
	var (
		targetURL   = flag.String("target", "", "base URL of a running doxsites (empty = self-host an in-process stack)")
		rate        = flag.Float64("rate", 200, "target request rate per second (0 = unthrottled)")
		concurrency = flag.Int("concurrency", 8, "concurrent request workers")
		duration    = flag.Duration("duration", 5*time.Second, "how long to generate load")
		faultsName  = flag.String("faults", "off", "fault profile for the self-hosted stack: off, mild, heavy or outage")
		seed        = flag.Int64("seed", 42, "world seed (self-host) and request-mix seed")
		scale       = flag.Float64("scale", 0.01, "corpus scale for the self-hosted stack")
		days        = flag.Int("days", 30, "virtual days to advance the self-hosted clock before harvesting targets")
		minSuccess  = flag.Float64("min-success", 0, "exit 1 if the 2xx fraction is below this")
		tracesPath  = flag.String("traces", "", "write per-request spans as JSON Lines to this file")
		adminAddr   = flag.String("admin", "", "serve /metrics, /debug/traces and /debug/pprof on this address during the run")
		asJSON      = flag.Bool("json", false, "emit a machine-readable summary")
	)
	flag.Parse()
	if *concurrency < 1 {
		*concurrency = 1
	}
	if *rate < 0 {
		fatal(fmt.Errorf("-rate must be >= 0, got %v", *rate))
	}
	if *duration <= 0 {
		fatal(fmt.Errorf("-duration must be positive, got %v", *duration))
	}
	if *days < 0 {
		fatal(fmt.Errorf("-days must be >= 0, got %d", *days))
	}

	hub := telemetry.NewHub(16384, nil)
	base := *targetURL
	if base == "" {
		profile, err := faults.Preset(*faultsName, *seed+5)
		if err != nil {
			fatal(err)
		}
		if profile != nil {
			if err := profile.Validate(); err != nil {
				fatal(err)
			}
		}
		st := stack.New(stack.Config{Seed: *seed, Scale: *scale, Faults: profile, Telemetry: hub})
		hub.Tracer.VirtualNow = st.Clock.Now
		if *days > 0 {
			st.Clock.Advance(time.Duration(*days) * simclock.Day)
		}
		url, shutdown, err := st.ServeLocal()
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		base = url
		fmt.Fprintf(os.Stderr, "doxload: self-hosted stack on %s (clock at %s, faults %s)\n",
			base, st.Clock.Now().Format("2006-01-02"), *faultsName)
	} else if *faultsName != "off" {
		fatal(fmt.Errorf("-faults applies only to the self-hosted stack; configure faults on the external doxsites instead"))
	}

	if *adminAddr != "" {
		go func() {
			if err := http.ListenAndServe(*adminAddr, hub.Handler()); err != nil {
				fatal(fmt.Errorf("admin listener: %w", err))
			}
		}()
	}

	client := &http.Client{Timeout: 10 * time.Second}
	pool, err := harvest(client, base)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "doxload: harvested %d target URLs across %d routes\n", len(pool), countRoutes(pool))

	reg := hub.Registry
	overall := reg.NewHistogram("doxload_request_seconds",
		"Client-observed latency of every generated request.", nil).With()
	perRoute := reg.NewHistogram("doxload_route_seconds",
		"Client-observed latency by route.", nil, "route")
	requests := reg.NewCounter("doxload_requests_total",
		"Generated requests by route and outcome (2xx/3xx/4xx/5xx/error).",
		"route", "outcome")

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	tokens := make(chan struct{}, *concurrency)
	go pace(ctx, *rate, tokens)

	tracing := *tracesPath != ""
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed ^ int64(w)<<32))
			for range tokens {
				t := pool[rng.Intn(len(pool))]
				var span *telemetry.Span
				if tracing {
					_, span = hub.Tracer.StartSpan(context.Background(), "request")
					span.SetAttr("route", t.route)
				}
				reqStart := time.Now()
				outcome := do(client, t.url)
				sec := time.Since(reqStart).Seconds()
				overall.Observe(sec)
				perRoute.With(t.route).Observe(sec)
				requests.With(t.route, outcome).Inc()
				span.SetAttr("outcome", outcome)
				span.End()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if *tracesPath != "" {
		f, err := os.Create(*tracesPath)
		if err != nil {
			fatal(err)
		}
		if err := hub.Tracer.WriteJSONL(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "doxload: wrote %d spans to %s (%d dropped by the ring buffer)\n",
			len(hub.Tracer.Spans()), *tracesPath, hub.Tracer.Dropped())
	}

	total := reg.Sum("doxload_requests_total")
	byOutcome := reg.SumBy("doxload_requests_total", "outcome")
	success := 0.0
	if total > 0 {
		success = byOutcome["2xx"] / total
	}
	achieved := total / elapsed.Seconds()

	if *asJSON {
		out := map[string]any{
			"requests":     int64(total),
			"elapsed_ms":   elapsed.Milliseconds(),
			"achieved_rps": achieved,
			"target_rps":   *rate,
			"success":      success,
			"by_outcome":   byOutcome,
			"p50_ms":       overall.Quantile(0.50) * 1000,
			"p95_ms":       overall.Quantile(0.95) * 1000,
			"p99_ms":       overall.Quantile(0.99) * 1000,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("doxload: %d requests in %v (%.1f rps achieved, target %.0f), %.1f%% success\n",
			int64(total), elapsed.Round(time.Millisecond), achieved, *rate, success*100)
		fmt.Printf("latency: p50=%.2fms p95=%.2fms p99=%.2fms\n",
			overall.Quantile(0.50)*1000, overall.Quantile(0.95)*1000, overall.Quantile(0.99)*1000)
		byRoute := reg.SumBy("doxload_requests_total", "route")
		routes := make([]string, 0, len(byRoute))
		for r := range byRoute {
			routes = append(routes, r)
		}
		sort.Strings(routes)
		fmt.Printf("%-38s %9s %9s %9s %9s\n", "route", "requests", "p50ms", "p95ms", "p99ms")
		for _, r := range routes {
			h := perRoute.With(r)
			fmt.Printf("%-38s %9d %9.2f %9.2f %9.2f\n", r, int64(byRoute[r]),
				h.Quantile(0.50)*1000, h.Quantile(0.95)*1000, h.Quantile(0.99)*1000)
		}
	}

	if success < *minSuccess {
		fmt.Fprintf(os.Stderr, "doxload: success fraction %.3f below -min-success %.3f\n", success, *minSuccess)
		os.Exit(1)
	}
}

// pace feeds tokens at the target rate until ctx expires, then closes the
// channel to stop the workers. Tokens that find the buffer full are dropped:
// an unachievable rate shows up as achieved < target, never as a backlog
// burst after a stall.
func pace(ctx context.Context, rate float64, tokens chan<- struct{}) {
	defer close(tokens)
	if rate <= 0 {
		for {
			select {
			case <-ctx.Done():
				return
			case tokens <- struct{}{}:
			}
		}
	}
	const step = 10 * time.Millisecond
	tick := time.NewTicker(step)
	defer tick.Stop()
	carry := 0.0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			carry += rate * step.Seconds()
			for ; carry >= 1; carry-- {
				select {
				case tokens <- struct{}{}:
				default:
				}
			}
		}
	}
}

// do issues one GET, drains the body, and classifies the outcome.
func do(client *http.Client, url string) string {
	resp, err := client.Get(url)
	if err != nil {
		return "error"
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if copyErr != nil {
		// Injected resets/truncations surface here as read errors.
		return "error"
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return "2xx"
	case resp.StatusCode < 400:
		return "3xx"
	case resp.StatusCode < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// harvest builds the target pool from the stack's own discovery surfaces.
// Each source is retried a few times (the stack may be behind a fault
// injector) and tolerated if it stays down; only an empty pool is fatal.
func harvest(client *http.Client, base string) ([]target, error) {
	var pool []target

	var metas []struct {
		Key string `json:"key"`
	}
	listURL := base + "/pastebin/api_scraping.php?since=0&limit=100"
	if err := getJSON(client, listURL, &metas); err == nil {
		pool = append(pool, target{"/pastebin/api_scraping.php", listURL})
		for _, m := range metas {
			pool = append(pool, target{"/pastebin/api_scrape_item.php",
				base + "/pastebin/api_scrape_item.php?i=" + m.Key})
		}
	}

	for _, b := range []struct{ prefix, board string }{
		{"/4chan", "b"}, {"/4chan", "pol"}, {"/8ch", "pol"}, {"/8ch", "baphomet"},
	} {
		var pages []struct {
			Threads []struct {
				No int64 `json:"no"`
			} `json:"threads"`
		}
		catURL := base + b.prefix + "/" + b.board + "/catalog.json"
		if err := getJSON(client, catURL, &pages); err != nil {
			continue
		}
		pool = append(pool, target{b.prefix + "/" + b.board + "/catalog.json", catURL})
		for _, pg := range pages {
			for _, th := range pg.Threads {
				pool = append(pool, target{b.prefix + "/" + b.board + "/thread/:n.json",
					fmt.Sprintf("%s%s/%s/thread/%d.json", base, b.prefix, b.board, th.No)})
			}
		}
	}

	if body, err := get(client, base+"/admin/accounts?limit=200"); err == nil {
		for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			if network, _, ok := strings.Cut(line, "/"); ok {
				pool = append(pool, target{"/osn/" + network + "/:user", base + "/osn/" + line})
			}
		}
	}

	if len(pool) == 0 {
		return nil, fmt.Errorf("no targets harvested from %s — is the stack serving, and has its clock advanced past day 0?", base)
	}
	return pool, nil
}

// get fetches a URL with a small retry budget so harvesting survives a
// fault-injected stack.
func get(client *http.Client, url string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		resp, err := client.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
			continue
		}
		return body, nil
	}
	return nil, lastErr
}

func getJSON(client *http.Client, url string, v any) error {
	body, err := get(client, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

func countRoutes(pool []target) int {
	seen := map[string]bool{}
	for _, t := range pool {
		seen[t.route] = true
	}
	return len(seen)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doxload:", err)
	os.Exit(1)
}
