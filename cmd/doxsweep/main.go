// Command doxsweep quantifies run-to-run variance: it executes the full
// study across several seeds (and optionally scales) and reports mean and
// spread for the headline metrics, so readers can tell which digits of
// EXPERIMENTS.md are signal and which are sampling noise.
//
// Usage:
//
//	doxsweep [-seeds 5] [-scale 0.02] [-scales 0.01,0.02,0.05]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"doxmeter/internal/core"
	"doxmeter/internal/monitor"
	"doxmeter/internal/netid"
	"doxmeter/internal/report"
	"doxmeter/internal/simclock"
)

// runMetrics are the headline numbers extracted from one study run.
type runMetrics struct {
	flaggedRate   float64 // flagged / collected
	dupFraction   float64 // duplicates / flagged
	doxPrecision  float64 // Table 1 dox precision
	doxRecall     float64 // Table 1 dox recall
	fbPreMorePriv float64 // Table 10 Facebook pre-filter more-private
	ctrlAnyChange float64 // Table 10 control any-change
}

func main() {
	var (
		seeds  = flag.Int("seeds", 5, "number of seeds per scale")
		scale  = flag.Float64("scale", 0.02, "scale when -scales is not given")
		scales = flag.String("scales", "", "comma-separated list of scales to sweep")
	)
	flag.Parse()

	var scaleList []float64
	if *scales != "" {
		for _, s := range strings.Split(*scales, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v <= 0 {
				fatal(fmt.Errorf("bad scale %q", s))
			}
			scaleList = append(scaleList, v)
		}
	} else {
		scaleList = []float64{*scale}
	}

	t := report.NewTable("Seed sweep: mean ± stddev over seeds (paper values for reference)",
		"Scale", "Seeds", "Flagged rate %", "Dup fraction %", "Dox P", "Dox R", "FB pre more-priv %", "Control change %")
	for _, sc := range scaleList {
		var runs []runMetrics
		for i := 0; i < *seeds; i++ {
			m, err := runOnce(int64(1000+i*37), sc)
			if err != nil {
				fatal(err)
			}
			runs = append(runs, m)
			fmt.Fprintf(os.Stderr, "scale %.3f seed %d done\n", sc, 1000+i*37)
		}
		t.AddRowF(
			fmt.Sprintf("%.3f", sc),
			fmt.Sprint(len(runs)),
			meanSD(runs, func(m runMetrics) float64 { return 100 * m.flaggedRate }),
			meanSD(runs, func(m runMetrics) float64 { return 100 * m.dupFraction }),
			meanSD(runs, func(m runMetrics) float64 { return m.doxPrecision }),
			meanSD(runs, func(m runMetrics) float64 { return m.doxRecall }),
			meanSD(runs, func(m runMetrics) float64 { return 100 * m.fbPreMorePriv }),
			meanSD(runs, func(m runMetrics) float64 { return 100 * m.ctrlAnyChange }),
		)
	}
	t.AddNote("paper: flagged 0.32%%, dup 18.1%%, dox P/R .81/.89, FB pre more-private 22.0%%, control 0.2%%")
	fmt.Println(t)
}

func runOnce(seed int64, scale float64) (runMetrics, error) {
	start := time.Now()
	s, err := core.NewStudy(core.StudyConfig{Seed: seed, Scale: scale})
	if err != nil {
		return runMetrics{}, err
	}
	defer s.Close()
	if err := s.Run(context.Background()); err != nil {
		return runMetrics{}, err
	}
	_ = start
	flagged := s.FlaggedByPeriod[1] + s.FlaggedByPeriod[2]
	stats := s.Deduper.Stats()
	hist := s.Monitor.Histories()
	fb := monitor.Changes(hist, monitor.DoxedDuring(simclock.Period1, netid.Facebook))
	ctrl := monitor.Changes(hist, monitor.Controls())
	m := runMetrics{
		doxPrecision:  s.ClfEval.Report[0].Precision,
		doxRecall:     s.ClfEval.Report[0].Recall,
		fbPreMorePriv: fb.MorePrivateRate(),
		ctrlAnyChange: ctrl.AnyChangeRate(),
	}
	if s.Collected > 0 {
		m.flaggedRate = float64(flagged) / float64(s.Collected)
	}
	if stats.Total() > 0 {
		m.dupFraction = float64(stats.TotalDups()) / float64(stats.Total())
	}
	return m, nil
}

// meanSD formats "mean±sd" for a metric across runs.
func meanSD(runs []runMetrics, get func(runMetrics) float64) string {
	var sum float64
	for _, r := range runs {
		sum += get(r)
	}
	mean := sum / float64(len(runs))
	var varSum float64
	for _, r := range runs {
		d := get(r) - mean
		varSum += d * d
	}
	sd := 0.0
	if len(runs) > 1 {
		sd = math.Sqrt(varSum / float64(len(runs)-1))
	}
	return fmt.Sprintf("%.2f±%.2f", mean, sd)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doxsweep:", err)
	os.Exit(1)
}
