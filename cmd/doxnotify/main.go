// Command doxnotify runs the paper's proposed mitigation services (§7):
// the Have-I-Been-Doxed notification registry, the anti-SWATing watchlist,
// and the threat-exchange feed.
//
// Usage:
//
//	doxnotify [-scale 0.02] [-seed 42] [-addr 127.0.0.1:8421] [-salt s] [-admin addr]
//	          [-stream] [-faults off] [-progress]
//	          [-state-dir dir] [-checkpoint-every 1] [-resume]
//
// By default it runs a small batch study to seed the services with
// detections, then serves all three. With -stream it instead runs the
// always-on streaming pipeline (internal/stream): the three services are
// live from the first virtual day — every committed detection fans out to
// them as it happens, with backpressure and alert latency on /metrics —
// and the HTTP API serves throughout the run. A first SIGINT/SIGTERM
// stops at the next day boundary after a final checkpoint; a second
// aborts. With -state-dir the run is durable and -resume continues a
// killed service — including the notification registry, watchlist and
// feed state — from its last checkpoint (keep -salt identical across
// restarts: digests are salted and the salt is never persisted).
//
// Endpoints:
//
//	/notify/subscribe /notify/unsubscribe /notify/notifications /notify/stats
//	/watchlist/check?address=...|phone=...
//	/feed/events?cursor=0[&wait=5s]
//
// With -admin set, the telemetry bundle (/metrics, /debug/traces,
// /debug/pprof) is served on that second address: the pipeline metrics
// (queue depths, backpressure, paste-seen→alert latency in -stream mode)
// plus per-route request counters for the three services.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"doxmeter/internal/core"
	"doxmeter/internal/faults"
	"doxmeter/internal/feed"
	"doxmeter/internal/notify"
	"doxmeter/internal/stack"
	"doxmeter/internal/stream"
	"doxmeter/internal/telemetry"
	"doxmeter/internal/watchlist"
)

func main() {
	var (
		scale      = flag.Float64("scale", 0.02, "corpus scale for the study")
		seed       = flag.Int64("seed", 42, "world seed")
		addr       = flag.String("addr", "127.0.0.1:8421", "listen address")
		adminAddr  = flag.String("admin", "", "serve /metrics, /debug/traces and /debug/pprof on this second address (empty = off)")
		salt       = flag.String("salt", "doxmeter-demo-salt", "registry salt (keep identical across -resume restarts)")
		streamMode = flag.Bool("stream", false, "run the always-on streaming pipeline with live fan-out instead of seed-then-serve")
		faultsName = flag.String("faults", "off", "fault-injection profile for the simulated services: off, mild, heavy or outage")
		progress   = flag.Bool("progress", false, "print per-day progress to stderr")
	)
	var dur stack.Durability
	dur.RegisterFlags(flag.CommandLine, false)
	flag.Parse()
	if err := dur.Validate(); err != nil {
		fatal(err)
	}

	profile, err := faults.Preset(*faultsName, *seed+5)
	if err != nil {
		fatal(err)
	}

	hub := telemetry.NewHub(0, nil)
	if *adminAddr != "" {
		go func() {
			if err := http.ListenAndServe(*adminAddr, hub.Handler()); err != nil {
				fatal(fmt.Errorf("admin listener: %w", err))
			}
		}()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", *adminAddr)
	}

	// The services exist before the study so the streaming pipeline can fan
	// out into them; the watchlist reads the study's virtual clock so its
	// TTL windows live in simulated time.
	notifySvc := notify.NewService(*salt)
	notifySvc.Instrument(hub.Registry)
	var s *core.Study
	wl := watchlist.New(0, func() time.Time {
		if s != nil {
			return s.Clock.Now()
		}
		return time.Now()
	})
	log := feed.NewLog()
	fan := &stream.Fanout{Notify: notifySvc, Watchlist: wl, Feed: log}

	cfg := core.StudyConfig{Seed: *seed, Scale: *scale, Faults: profile, Telemetry: hub}
	if *progress {
		cfg.Progress = os.Stderr
	}
	if *streamMode {
		cfg.Stream = &core.StreamConfig{Fanout: fan}
	}
	fileStore, ckpt, err := dur.Open()
	if err != nil {
		fatal(err)
	}
	if fileStore != nil {
		defer fileStore.Close()
	}
	cfg.Checkpoint = ckpt

	s, err = core.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	if dur.Resume {
		info, err := s.Resume()
		if err != nil {
			fatal(err)
		}
		if info.Resumed {
			fmt.Fprintf(os.Stderr, "doxnotify: resumed at period %d day %d (virtual %s); service state restored\n",
				info.Period, info.Day, info.VirtualTime.Format("2006-01-02"))
		} else {
			fmt.Fprintln(os.Stderr, "doxnotify: no checkpoint found in state dir; starting fresh")
		}
	}

	mux := http.NewServeMux()
	reg := hub.Registry
	mux.Handle("/notify/", http.StripPrefix("/notify", telemetry.HTTPMetrics(reg, "notify", nil, notifySvc.Handler())))
	mux.Handle("/watchlist/", http.StripPrefix("/watchlist", telemetry.HTTPMetrics(reg, "watchlist", nil, wl.Handler())))
	mux.Handle("/feed/", http.StripPrefix("/feed", telemetry.HTTPMetrics(reg, "feed", nil, log.Handler())))

	if *streamMode {
		runStreaming(s, mux, *addr, dur.StateDir)
		return
	}

	// Batch mode: run the study to completion, then seed the services with
	// every detection through the same fan-out the streaming mode uses live.
	fmt.Fprintln(os.Stderr, "running seeding study...")
	if err := s.Run(context.Background()); err != nil {
		fatal(err)
	}
	addresses, phones := 0, 0
	for _, d := range s.Doxes {
		det := stream.Detection{Site: d.Site, DocID: d.DocID, SeenAt: d.Posted, Extraction: d.Extraction}
		if d.Labels.Address {
			det.AddressLine = stream.AddressLine(d.Text)
		}
		if det.AddressLine != "" {
			addresses++
		}
		phones += len(d.Extraction.Phones)
		fan.Deliver(det)
	}

	fmt.Printf("doxnotify on http://%s — %d feed events, %d watchlisted addresses, %d phones\n",
		*addr, log.Len(), addresses, phones)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatal(err)
	}
}

// runStreaming serves the three services WHILE the streaming study runs:
// subscriptions registered mid-run catch doxes committed on later virtual
// days, the feed long-poll delivers events as epochs commit, and the
// watchlist answers dispatch checks against live state. After the study's
// two periods complete the services keep serving their final state.
func runStreaming(s *core.Study, mux *http.ServeMux, addr, stateDir string) {
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fatal(err)
		}
	}()
	fmt.Printf("doxnotify streaming on http://%s (services live from day 1)\n", addr)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "doxnotify: stopping at the next day boundary (signal again to abort)")
		s.RequestStop()
		<-sigCh
		fmt.Fprintln(os.Stderr, "doxnotify: aborting")
		cancel()
	}()

	if err := s.Run(ctx); err != nil {
		if !errors.Is(err, core.ErrStopped) {
			fatal(err)
		}
		if stateDir != "" {
			fmt.Fprintf(os.Stderr, "doxnotify: stopped after a final checkpoint; continue with -state-dir %s -resume\n", stateDir)
		}
		return
	}
	ids, ingested, notified := 0, 0, 0
	if svc := serviceOf(s); svc != nil {
		ids, ingested, notified = svc.Stats()
	}
	fmt.Fprintf(os.Stderr, "doxnotify: study complete — %d identifiers registered, %d doxes ingested, %d notifications; still serving\n",
		ids, ingested, notified)
	// The run is over; the stop/abort handler no longer applies. Keep
	// serving the final state until the next signal.
	signal.Stop(sigCh)
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, os.Interrupt, syscall.SIGTERM)
	<-quit
}

// serviceOf digs the notification service back out of the study's stream
// config for the completion summary.
func serviceOf(s *core.Study) *notify.Service {
	if s.Cfg.Stream == nil || s.Cfg.Stream.Fanout == nil {
		return nil
	}
	return s.Cfg.Stream.Fanout.Notify
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doxnotify:", err)
	os.Exit(1)
}
