// Command doxnotify runs the paper's proposed mitigation services (§7):
// the Have-I-Been-Doxed notification registry, the anti-SWATing watchlist,
// and the threat-exchange feed. It first runs a small study to seed the
// services with detections, then serves all three.
//
// Usage:
//
//	doxnotify [-scale 0.02] [-seed 42] [-addr 127.0.0.1:8421] [-salt s] [-admin addr]
//
// Endpoints:
//
//	/notify/subscribe /notify/unsubscribe /notify/notifications /notify/stats
//	/watchlist/check?address=...|phone=...
//	/feed/events?cursor=0[&wait=5s]
//
// With -admin set, the telemetry bundle (/metrics, /debug/traces,
// /debug/pprof) is served on that second address: the seeding study's
// pipeline metrics plus per-route request counters for the three services.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"

	"doxmeter/internal/core"
	"doxmeter/internal/feed"
	"doxmeter/internal/label"
	"doxmeter/internal/notify"
	"doxmeter/internal/telemetry"
	"doxmeter/internal/watchlist"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.02, "corpus scale for the seeding study")
		seed      = flag.Int64("seed", 42, "world seed")
		addr      = flag.String("addr", "127.0.0.1:8421", "listen address")
		adminAddr = flag.String("admin", "", "serve /metrics, /debug/traces and /debug/pprof on this second address (empty = off)")
		salt      = flag.String("salt", "doxmeter-demo-salt", "registry salt")
	)
	flag.Parse()

	hub := telemetry.NewHub(0, nil)
	if *adminAddr != "" {
		go func() {
			if err := http.ListenAndServe(*adminAddr, hub.Handler()); err != nil {
				fatal(fmt.Errorf("admin listener: %w", err))
			}
		}()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", *adminAddr)
	}

	fmt.Fprintln(os.Stderr, "running seeding study...")
	s, err := core.NewStudy(core.StudyConfig{Seed: *seed, Scale: *scale, Telemetry: hub})
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	if err := s.Run(context.Background()); err != nil {
		fatal(err)
	}

	notifySvc := notify.NewService(*salt)
	wl := watchlist.New(0, nil)
	log := feed.NewLog()

	// Ingest every detection into all three services, exactly as the
	// continuously operating pipeline of §7.1 would.
	addresses, phones := 0, 0
	for _, d := range s.Doxes {
		notifySvc.Ingest(d.Site, d.Posted, d.Extraction)
		log.Publish(d.Site, feed.URLFor(d.Site, d.DocID), d.Posted, d.Extraction.AccountRefs())
		l := label.Apply(d.Text)
		if l.Address {
			if line := firstAddressLine(d.Text); line != "" {
				wl.AddAddress(line, d.Site)
				addresses++
			}
		}
		for _, p := range d.Extraction.Phones {
			wl.AddPhone(p, d.Site)
			phones++
		}
	}

	mux := http.NewServeMux()
	reg := hub.Registry
	mux.Handle("/notify/", http.StripPrefix("/notify", telemetry.HTTPMetrics(reg, "notify", nil, notifySvc.Handler())))
	mux.Handle("/watchlist/", http.StripPrefix("/watchlist", telemetry.HTTPMetrics(reg, "watchlist", nil, wl.Handler())))
	mux.Handle("/feed/", http.StripPrefix("/feed", telemetry.HTTPMetrics(reg, "feed", nil, log.Handler())))

	fmt.Printf("doxnotify on http://%s — %d feed events, %d watchlisted addresses, %d phones\n",
		*addr, log.Len(), addresses, phones)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fatal(err)
	}
}

// firstAddressLine pulls the "Address:"/"Lives at:" line value from dox
// text for watchlisting.
func firstAddressLine(text string) string {
	for _, prefix := range []string{"Address: ", "Lives at: "} {
		if i := indexOf(text, prefix); i >= 0 {
			rest := text[i+len(prefix):]
			for j := 0; j < len(rest); j++ {
				if rest[j] == '\n' {
					return rest[:j]
				}
			}
			return rest
		}
	}
	return ""
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doxnotify:", err)
	os.Exit(1)
}
