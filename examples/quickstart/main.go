// Quickstart: train the dox classifier, detect a dox, and extract the
// referenced accounts — the minimal end-to-end use of the library.
package main

import (
	"fmt"

	"doxmeter/internal/classifier"
	"doxmeter/internal/extract"
	"doxmeter/internal/randutil"
	"doxmeter/internal/sim"
	"doxmeter/internal/textgen"
)

func main() {
	// 1. Build a small synthetic world and its labeled training corpus
	//    (749 dox-for-hire proof-of-work files + 4,220 benign pastes,
	//    matching the paper's §3.1.2).
	world := sim.NewWorld(sim.Default(42, 0.01))
	gen := textgen.New(world)

	var docs []string
	var labels []bool
	for _, ex := range gen.TrainingSet() {
		docs = append(docs, ex.Body)
		labels = append(labels, ex.IsDox)
	}

	// 2. Train the TF-IDF + SGD classifier (sklearn defaults, 20 epochs).
	clf, err := classifier.Train(randutil.New(1), docs, labels, classifier.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained on %d documents; vocabulary %d terms\n\n", len(docs), clf.VocabSize())

	// 3. Classify two fresh documents: one dox, one benign paste.
	r := randutil.New(2)
	victim := world.Victims[0]
	doxBody := gen.Dox(r, victim).Body
	_, benign := gen.BenignPaste(r)

	fmt.Printf("dox file    -> IsDox=%v (score %+.2f)\n", clf.IsDox(doxBody), clf.Score(doxBody))
	fmt.Printf("benign file -> IsDox=%v (score %+.2f)\n\n", clf.IsDox(benign), clf.Score(benign))

	// 4. Extract the accounts and fields the dox discloses.
	ex := extract.Extract(doxBody)
	fmt.Printf("extracted from the dox (victim %q):\n", victim.Alias)
	for _, ref := range ex.AccountRefs() {
		fmt.Printf("  account: %s\n", ref)
	}
	if ex.FirstName != "" {
		fmt.Printf("  name:    %s %s\n", ex.FirstName, ex.LastName)
	}
	if ex.Age > 0 {
		fmt.Printf("  age:     %d\n", ex.Age)
	}
	for _, p := range ex.Phones {
		fmt.Printf("  phone:   %s\n", p)
	}
	for _, ip := range ex.IPs {
		fmt.Printf("  ip:      %s\n", ip)
	}
	fmt.Printf("\naccount-set dedup key: %q\n", ex.AccountSetKey())
}
