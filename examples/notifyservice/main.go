// Notification-service walkthrough (§7.1): victims register their
// identifiers with the Have-I-Been-Doxed service, the detection pipeline
// streams in doxes, and registered victims get notified the moment their
// information appears — plus the anti-SWATing watchlist check (§7.2).
package main

import (
	"fmt"
	"time"

	"doxmeter/internal/extract"
	"doxmeter/internal/feed"
	"doxmeter/internal/netid"
	"doxmeter/internal/notify"
	"doxmeter/internal/randutil"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
	"doxmeter/internal/textgen"
	"doxmeter/internal/watchlist"
)

func main() {
	world := sim.NewWorld(sim.Default(23, 0.05))
	gen := textgen.New(world)
	r := randutil.New(9)

	svc := notify.NewService("example-salt")
	wl := watchlist.New(0, func() time.Time { return simclock.Period1.Start })
	log := feed.NewLog()

	// Three victims proactively register with the service (picking ones
	// whose eventual doxes disclose phone numbers, so the watchlist demo
	// below has something to find).
	var subscribers []*sim.Victim
	for _, v := range world.Victims {
		if v.Fields.Phone && len(v.OSN) > 0 {
			subscribers = append(subscribers, v)
			if len(subscribers) == 3 {
				break
			}
		}
	}
	for i, v := range subscribers {
		id := fmt.Sprintf("subscriber-%d", i)
		svc.Subscribe(id, notify.KindEmail, v.Email)
		svc.Subscribe(id, notify.KindPhone, v.Phone)
		for n, user := range v.OSN {
			svc.SubscribeAccount(id, netid.Ref{Network: n, Username: user})
		}
		fmt.Printf("%s registered email, phone and %d accounts\n", id, len(v.OSN))
	}
	fmt.Println()

	// The pipeline detects a stream of doxes: 40 random victims plus the
	// three subscribers.
	targets := append([]*sim.Victim{}, randutil.PickN(r, world.Victims[3:], 40)...)
	targets = append(targets, subscribers...)
	when := simclock.Period1.Start
	for _, v := range targets {
		body := gen.Dox(r, v).Body
		ex := extract.Extract(body)
		svc.Ingest("pastebin", when, ex)
		log.Publish("pastebin", feed.URLFor("pastebin", v.Alias), when, ex.AccountRefs())
		for _, p := range ex.Phones {
			wl.AddPhone(p, "pastebin")
		}
		when = when.Add(6 * time.Hour)
	}

	ids, ingested, notified := svc.Stats()
	fmt.Printf("service state: %d registered identifiers, %d doxes ingested, %d notifications\n\n",
		ids, ingested, notified)

	for i := range subscribers {
		id := fmt.Sprintf("subscriber-%d", i)
		notes := svc.Drain(id)
		fmt.Printf("%s: %d notifications\n", id, len(notes))
		for _, n := range notes {
			fmt.Printf("  your %s appeared in a dox on %s at %s\n", n.Kind, n.Site, n.SeenAt.Format("2006-01-02 15:04"))
		}
	}
	fmt.Println()

	// A police dispatcher checks an incoming violence report against the
	// watchlist before sending a SWAT team (§7.2). Extraction is lossy
	// (Table 2: phone accuracy 58.4%), so some victims' numbers were
	// never recovered — check all three.
	hit := false
	for _, victim := range subscribers {
		if entry, listed := wl.CheckPhone(victim.Phone); listed {
			fmt.Printf("dispatch check: report target IS on the dox watchlist (listed %s, %d hits) — treat with suspicion\n",
				entry.AddedAt.Format("2006-01-02"), entry.Hits)
			hit = true
			break
		}
	}
	if !hit {
		fmt.Println("dispatch check: no subscriber number extracted into the watchlist this run (extraction is lossy)")
	}
	if _, listed := wl.CheckPhone("555-000-0000"); !listed {
		fmt.Println("dispatch check: unrelated number not listed (as expected)")
	}

	first, _ := log.After(0, 1)
	fmt.Printf("\nthreat-exchange feed carries %d events; first event accounts: %v\n",
		log.Len(), first[0].Accounts)
}
