// Account-monitoring walkthrough: dox a set of Facebook accounts, scrape
// them on the paper's 0/1/2/3/7/weekly schedule over a virtual month, and
// print the Figure 3 style status strip — doxed users locking down in the
// first days after the drop.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"doxmeter/internal/monitor"
	"doxmeter/internal/netid"
	"doxmeter/internal/osn"
	"doxmeter/internal/report"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
)

func main() {
	world := sim.NewWorld(sim.Default(11, 0.3))
	clock := simclock.NewClock(simclock.Period1.Start)
	universe := osn.NewUniverse(clock, world, 11)

	// Serve the social networks over loopback HTTP — the monitor only
	// ever sees profile pages, never simulator internals.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := &http.Server{Handler: universe.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()

	mon := monitor.New(monitor.Config{Clock: clock, BaseURL: baseURL, EndAt: simclock.Period1.End})

	// A dox wave hits on day 1: every Facebook account in the world is
	// referenced; victims react per the pre-filter behaviour model.
	doxAt := clock.Now().Add(simclock.Day)
	tracked := 0
	for _, v := range world.Victims {
		user, ok := v.OSN[netid.Facebook]
		if !ok {
			continue
		}
		ref := netid.Ref{Network: netid.Facebook, Username: user}
		universe.RecordDox(ref, doxAt)
		universe.TriggerAbuse(ref, doxAt)
		mon.Track(ref, doxAt)
		tracked++
	}
	fmt.Printf("tracking %d doxed Facebook accounts from %s\n\n", tracked, doxAt.Format("2006-01-02"))

	// Run the study clock one day at a time for four weeks.
	ctx := context.Background()
	for clock.Now().Before(doxAt.Add(28 * simclock.Day)) {
		if err := mon.ProcessDue(ctx); err != nil {
			panic(err)
		}
		clock.Advance(simclock.Day)
	}

	hist := mon.Histories()
	stats := monitor.Changes(hist, monitor.ByNetwork(netid.Facebook))
	fmt.Printf("of %d verified accounts: %.1f%% ended more private, %.1f%% more public, %.1f%% changed at all\n",
		stats.Total, 100*stats.MorePrivateRate(), 100*stats.MorePublicRate(), 100*stats.AnyChangeRate())
	fmt.Println("(paper, Facebook pre-filter: 22.0% / 2.0% / 24.6%)")
	fmt.Println()

	tm := monitor.Timing(hist, monitor.ByNetwork(netid.Facebook))
	if tm.TotalMorePrivate > 0 {
		fmt.Printf("of %d lockdowns: %.1f%% within 24h, %.1f%% within 7 days (paper: 35.8%% / 90.6%%)\n\n",
			tm.TotalMorePrivate,
			100*float64(tm.Within1Day)/float64(tm.TotalMorePrivate),
			100*float64(tm.Within7Days)/float64(tm.TotalMorePrivate))
	}

	points := monitor.Strip(hist, monitor.ByNetwork(netid.Facebook))
	days := make([]report.StripDay, len(points))
	for i, p := range points {
		days[i] = report.StripDay{Day: p.Day, Public: p.Public, Private: p.Private, Inactive: p.Inactive}
	}
	fmt.Println(report.StripSeries{Title: "Status of accounts that changed within 14 days (Figure 3 style)", Days: days})

	cs := monitor.Commenters(hist)
	fmt.Printf("comments observed on public doxed accounts: %d from %d commenters (%d cross-account)\n",
		cs.Comments, cs.Commenters, cs.CrossAccountUsers)
}
