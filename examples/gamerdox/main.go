// Gamer-community doxing wave: the scenario the paper's intro motivates —
// gamers are the most doxed identifiable community (Table 7). This example
// generates a wave of doxes against gamer victims, labels them, and breaks
// down communities, motivations and disclosed categories.
package main

import (
	"fmt"

	"doxmeter/internal/label"
	"doxmeter/internal/randutil"
	"doxmeter/internal/report"
	"doxmeter/internal/sim"
	"doxmeter/internal/textgen"
)

func main() {
	world := sim.NewWorld(sim.Default(7, 0.1))
	gen := textgen.New(world)
	r := randutil.New(3)

	// Collect the gamer victims the world contains.
	var gamers []*sim.Victim
	for _, v := range world.Victims {
		if v.Community == sim.CommunityGamer {
			gamers = append(gamers, v)
		}
	}
	fmt.Printf("world has %d victims, %d of them gamers (paper: 11.4%%)\n\n", len(world.Victims), len(gamers))

	// Render and label each gamer's dox.
	var agg label.Aggregate
	motives := map[sim.Motive]int{}
	for _, v := range gamers {
		d := gen.Dox(r, v)
		l := label.Apply(d.Body)
		agg.Add(l)
		motives[l.Motive]++
	}

	t := report.NewTable("What gamer doxes disclose", "Category", "Count", "%")
	n := float64(agg.N)
	for _, row := range []struct {
		name  string
		count int
	}{
		{"Address", agg.Address},
		{"Phone", agg.Phone},
		{"IP address", agg.IP},
		{"Family members", agg.Family},
		{"Passwords", agg.Passwords},
	} {
		t.AddRowF(row.name, fmt.Sprint(row.count), report.Pct(float64(row.count)/n))
	}
	fmt.Println(t)

	m := report.NewTable("Stated motivations against gamers", "Motive", "Count")
	for _, motive := range []sim.Motive{sim.MotiveJustice, sim.MotiveRevenge, sim.MotiveCompetitive, sim.MotivePolitical, sim.MotiveNone} {
		m.AddRowF(motive.String(), fmt.Sprint(motives[motive]))
	}
	fmt.Println(m)

	// Show one rendered dox (redacted preview).
	d := gen.Dox(r, gamers[0])
	preview := d.Body
	if len(preview) > 400 {
		preview = preview[:400] + "\n  [...]"
	}
	fmt.Printf("sample dox (style=%s):\n%s\n", d.Style, preview)
}
