// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation section, plus ablations of the design choices DESIGN.md calls
// out. Each bench prints the regenerated artifact (paper-vs-measured) once
// and then measures the dominant computation as its op.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The shared study (scale 0.05 ≈ 87k documents) is built once per process.
package doxmeter

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"doxmeter/internal/abuse"
	"doxmeter/internal/classifier"
	"doxmeter/internal/core"
	"doxmeter/internal/crawler"
	"doxmeter/internal/dedup"
	"doxmeter/internal/experiments"
	"doxmeter/internal/extract"
	"doxmeter/internal/feed"
	"doxmeter/internal/htmltext"
	"doxmeter/internal/label"
	"doxmeter/internal/monitor"
	"doxmeter/internal/netid"
	"doxmeter/internal/notify"
	"doxmeter/internal/randutil"
	"doxmeter/internal/sgd"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
	"doxmeter/internal/store"
	"doxmeter/internal/stream"
	"doxmeter/internal/textgen"
	"doxmeter/internal/tfidf"
	"doxmeter/internal/watchlist"
)

// benchScale sizes the shared study. 0.4 ≈ 695k documents and ~1,800
// unique doxes — large enough that every Table 10 row carries tens of
// accounts (the paper's rows carry 87–361; the Instagram rows are the
// binding constraint) while a full bench run stays under ~15 minutes.
// Lower it for quick spot checks.
const benchScale = 0.4

var (
	studyOnce sync.Once
	benchS    *core.Study
	studyErr  error
)

// benchStudy builds the shared study on first use.
func benchStudy(b *testing.B) *core.Study {
	b.Helper()
	studyOnce.Do(func() {
		s, err := core.NewStudy(core.StudyConfig{Seed: 1709, Scale: benchScale})
		if err != nil {
			studyErr = err
			return
		}
		if err := s.Run(context.Background()); err != nil {
			studyErr = err
			return
		}
		benchS = s
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return benchS
}

// printOnce writes an artifact to stdout exactly once per bench.
var printed sync.Map

func printOnce(key, artifact string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Fprintf(os.Stdout, "\n%s\n", artifact)
	}
}

func BenchmarkTable1Classifier(b *testing.B) {
	s := benchStudy(b)
	printOnce("table1", experiments.Table1(s).String())
	doc := s.Doxes[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Classifier.IsDox(doc)
	}
}

func BenchmarkTable2Extractor(b *testing.B) {
	s := benchStudy(b)
	rows := experiments.MeasureTable2(s, 125)
	printOnce("table2", experiments.Table2(rows).String())
	doc := s.Doxes[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = extract.Extract(doc)
	}
}

func BenchmarkTable3Deletion(b *testing.B) {
	s := benchStudy(b)
	printOnce("table3", experiments.Table3(s).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.DeletionCheck()
	}
}

func BenchmarkTable4Collection(b *testing.B) {
	s := benchStudy(b)
	printOnce("table4", experiments.Table4(s).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.OSNCounts()
	}
}

func BenchmarkTable5Demographics(b *testing.B) {
	s := benchStudy(b)
	agg, _ := s.LabelSample(s.Cfg.LabelSample)
	printOnce("table5", experiments.Table5(agg).String())
	doc := s.Doxes[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = label.Apply(doc)
	}
}

func BenchmarkTable6Categories(b *testing.B) {
	s := benchStudy(b)
	agg, _ := s.LabelSample(s.Cfg.LabelSample)
	printOnce("table6", experiments.Table6(agg).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg2, _ := s.LabelSample(64)
		_ = agg2
	}
}

func BenchmarkTable7Communities(b *testing.B) {
	s := benchStudy(b)
	agg, _ := s.LabelSample(s.Cfg.LabelSample)
	printOnce("table7", experiments.Table7(agg).String())
	doc := s.Doxes[len(s.Doxes)/2].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = label.Apply(doc)
	}
}

func BenchmarkTable8Motivations(b *testing.B) {
	s := benchStudy(b)
	agg, _ := s.LabelSample(s.Cfg.LabelSample)
	printOnce("table8", experiments.Table8(agg).String())
	doc := s.Doxes[len(s.Doxes)/3].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = label.Apply(doc)
	}
}

func BenchmarkTable9OSNCounts(b *testing.B) {
	s := benchStudy(b)
	printOnce("table9", experiments.Table9(s).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.OSNCounts()
	}
}

func BenchmarkTable10StatusChanges(b *testing.B) {
	s := benchStudy(b)
	printOnce("table10", experiments.Table10(s).String())
	hist := s.Monitor.Histories()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = monitor.Changes(hist, monitor.ByNetwork(netid.Facebook))
	}
}

func BenchmarkFigure1Pipeline(b *testing.B) {
	s := benchStudy(b)
	printOnce("figure1", experiments.Figure1(s).String())
	// Op: one document through the per-document pipeline stages.
	g := textgen.New(sim.NewWorld(sim.Default(55, 0.01)))
	r := randutil.New(55)
	raw := g.BenignBoardPost(r)
	d := dedup.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text := htmltext.Convert(raw)
		if s.Classifier.IsDox(text) {
			ex := extract.Extract(text)
			d.Check(fmt.Sprint(i), text, ex.AccountSetKey())
		}
	}
}

func BenchmarkFigure2Cliques(b *testing.B) {
	s := benchStudy(b)
	tbl, dot := experiments.Figure2(s)
	printOnce("figure2", tbl.String()+fmt.Sprintf("\n(DOT output: %d bytes; render with graphviz)\n", len(dot)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.BuildDoxerNetwork(4)
	}
}

func BenchmarkFigure3StatusTimeline(b *testing.B) {
	s := benchStudy(b)
	for _, network := range []netid.Network{netid.Facebook, netid.Instagram} {
		pre, post, summary := experiments.Figure3(s, network)
		printOnce("figure3-"+network.Slug(), summary.String()+"\n"+pre.String()+"\n"+post.String())
	}
	hist := s.Monitor.Histories()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = monitor.Strip(hist, monitor.ByNetwork(netid.Facebook))
	}
}

func BenchmarkSection63Timing(b *testing.B) {
	s := benchStudy(b)
	printOnce("sec63", experiments.Section63(s).String())
	hist := s.Monitor.Histories()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = monitor.Timing(hist, func(h *monitor.History) bool { return !h.Control })
	}
}

func BenchmarkSection532Comments(b *testing.B) {
	s := benchStudy(b)
	printOnce("sec532", experiments.Section532(s).String())
	hist := s.Monitor.Histories()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = monitor.Commenters(hist)
	}
}

func BenchmarkSectionAbuseComments(b *testing.B) {
	s := benchStudy(b)
	printOnce("secabuse", experiments.SectionAbuse(s).String())
	comment := "we know where you live now, check pastebin"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = abuse.IsAbusive(comment)
	}
}

func BenchmarkSectionCompromise(b *testing.B) {
	s := benchStudy(b)
	printOnce("seccompromise", experiments.SectionCompromise(s).String())
	hist := s.Monitor.Histories()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = monitor.Compromises(hist, func(h *monitor.History) bool { return !h.Control })
	}
}

func BenchmarkSectionActivityMetric(b *testing.B) {
	s := benchStudy(b)
	printOnce("secactivity", experiments.SectionActivity(s).String())
	hist := s.Monitor.Histories()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = monitor.Changes(hist, monitor.Active(5, monitor.Controls()))
	}
}

func BenchmarkSection41GeoValidation(b *testing.B) {
	s := benchStudy(b)
	printOnce("sec41", experiments.Section41(s).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ValidateGeo(50)
	}
}

func BenchmarkSectionMirrors(b *testing.B) {
	s := benchStudy(b)
	tbl, err := experiments.SectionMirrors(s)
	if err != nil {
		b.Fatal(err)
	}
	printOnce("secmirrors", tbl.String())
	doc := s.Doxes[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := extract.Extract(doc)
		_, _ = s.Deduper.Peek(doc, ex.AccountSetKey())
	}
}

// --- Ablations (DESIGN.md §5) ---

// trainVariant trains a classifier variant on the shared study's labeled
// corpus and reports its dox-class metrics.
func trainVariant(b *testing.B, name string, opts classifier.Options) {
	s := benchStudy(b)
	examples := s.Gen.TrainingSet()
	exs := make([]classifier.Example, len(examples))
	for i, ex := range examples {
		exs[i] = classifier.Example{Body: ex.Body, IsDox: ex.IsDox}
	}
	_, res, err := classifier.TrainEval(rand.New(rand.NewSource(99)), exs, opts)
	if err != nil {
		b.Fatal(err)
	}
	dox := res.Report[0]
	printOnce("ablation-"+name, fmt.Sprintf("Ablation %-22s dox P=%.3f R=%.3f F1=%.3f (default: see Table 1)",
		name, dox.Precision, dox.Recall, dox.F1))
}

func BenchmarkAblationSublinearTF(b *testing.B) {
	trainVariant(b, "sublinear-tf", classifier.Options{TFIDF: tfidf.Options{SublinearTF: true}})
	b.ResetTimer()
	vz := tfidf.NewVectorizer(tfidf.Options{SublinearTF: true})
	vz.Fit([]string{"alpha beta gamma", "beta gamma delta"})
	for i := 0; i < b.N; i++ {
		_ = vz.Transform("alpha beta beta gamma gamma gamma")
	}
}

func BenchmarkAblationBigrams(b *testing.B) {
	trainVariant(b, "unigram+bigram", classifier.Options{TFIDF: tfidf.Options{Bigrams: true}})
	vz := tfidf.NewVectorizer(tfidf.Options{Bigrams: true})
	vz.Fit([]string{"alpha beta gamma", "beta gamma delta"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vz.Transform("alpha beta beta gamma gamma gamma")
	}
}

func BenchmarkAblationLogLoss(b *testing.B) {
	trainVariant(b, "log-loss", classifier.Options{SGD: sgd.Options{Loss: sgd.Log}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

func BenchmarkAblationEpochs1(b *testing.B) {
	trainVariant(b, "epochs=1", classifier.Options{SGD: sgd.Options{Epochs: 1}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

func BenchmarkAblationEpochs5(b *testing.B) {
	trainVariant(b, "epochs=5", classifier.Options{SGD: sgd.Options{Epochs: 5}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

// BenchmarkAblationDedupBodyOnly measures how many near-duplicates survive
// when de-duplication uses body hashes alone (no account sets) — the
// paper's §3.1.4 motivation for the account-set pass.
func BenchmarkAblationDedupBodyOnly(b *testing.B) {
	g := textgen.New(sim.NewWorld(sim.Default(77, 0.05)))
	corpus := g.Corpus()
	var doxBodies []string
	var keys []string
	for _, site := range textgen.AllSites() {
		for _, doc := range corpus.Streams[site] {
			if !doc.IsDox() {
				continue
			}
			text := doc.Body
			if doc.HTML {
				text = htmltext.Convert(text)
			}
			doxBodies = append(doxBodies, text)
			keys = append(keys, extract.Extract(text).AccountSetKey())
		}
	}
	run := func(useAccounts bool) dedup.Stats {
		d := dedup.New()
		for i, body := range doxBodies {
			key := ""
			if useAccounts {
				key = keys[i]
			}
			d.Check(fmt.Sprint(i), body, key)
		}
		return d.Stats()
	}
	full := run(true)
	bodyOnly := run(false)
	printOnce("ablation-dedup", fmt.Sprintf(
		"Ablation dedup: with account sets %d dups (%d exact + %d account); body-only %d dups — %d near-duplicates survive",
		full.TotalDups(), full.ExactDups, full.AccntDups, bodyOnly.TotalDups(), full.AccntDups))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run(true)
	}
}

// BenchmarkAblationScheduleCoverage measures what fraction of ground-truth
// status transitions the paper's 0/1/2/3/7/weekly schedule actually
// observed, versus a weekly-only schedule's theoretical coverage.
func BenchmarkAblationScheduleCoverage(b *testing.B) {
	s := benchStudy(b)
	hist := s.Monitor.Histories()
	var observed, truth int
	for _, h := range hist {
		if h.Control || !h.Verified || len(h.Obs) < 2 {
			continue
		}
		a, ok := s.Universe.Lookup(h.Ref)
		if !ok {
			continue
		}
		// Ground truth: did the account's status differ at any two of our
		// scheduled visit times? Compare against whether the account
		// changed at all inside the observation window.
		start, end := h.Obs[0].Time, h.Obs[len(h.Obs)-1].Time
		if a.StatusAt(start) != a.StatusAt(end) {
			truth++
			first, _ := h.FirstStatus()
			last, _ := h.LastStatus()
			if first != last {
				observed++
			}
		}
	}
	cov := 0.0
	if truth > 0 {
		cov = float64(observed) / float64(truth)
	}
	printOnce("ablation-schedule", fmt.Sprintf(
		"Ablation schedule: paper schedule observed %d/%d (%.0f%%) of end-to-end ground-truth status changes",
		observed, truth, cov*100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = monitor.Changes(hist, monitor.ByNetwork(netid.Instagram))
	}
}

// BenchmarkAblationExtractorGreedy compares the reference extractor's
// abstain-on-ambiguity policy against a greedy first-candidate policy on
// ambiguous account lines: greedy recovers more accounts but pollutes the
// dedup identity with wrong guesses (§3.1.3's motivation for conservatism).
func BenchmarkAblationExtractorGreedy(b *testing.B) {
	s := benchStudy(b)
	r := randutil.New(4242)
	victims := randutil.PickN(r, s.World.TrainVictims, 300)
	type score struct{ hit, wrong, total int }
	eval := func(opts extract.Options) score {
		rr := randutil.New(777)
		var sc score
		for _, v := range victims {
			render := s.Gen.Dox(rr, v)
			ex := extract.ExtractWith(render.Body, opts)
			for n, user := range v.OSN {
				sc.total++
				switch ex.Accounts[n] {
				case user:
					sc.hit++
				case "":
				default:
					sc.wrong++
				}
			}
		}
		return sc
	}
	ref := eval(extract.Options{})
	greedy := eval(extract.Options{Greedy: true})
	printOnce("ablation-extractor", fmt.Sprintf(
		"Ablation extractor: reference %d/%d correct, %d wrong; greedy %d/%d correct, %d wrong (wrong guesses corrupt dedup identity)",
		ref.hit, ref.total, ref.wrong, greedy.hit, greedy.total, greedy.wrong))
	doc := s.Doxes[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = extract.ExtractWith(doc, extract.Options{Greedy: true})
	}
}

// BenchmarkAblationThresholdSweep traces the classifier's precision/recall
// trade-off across decision thresholds — the curve on which the paper's
// Table 1 operating point sits.
func BenchmarkAblationThresholdSweep(b *testing.B) {
	s := benchStudy(b)
	examples := s.Gen.TrainingSet()
	exs := make([]classifier.Example, len(examples))
	for i, ex := range examples {
		exs[i] = classifier.Example{Body: ex.Body, IsDox: ex.IsDox}
	}
	var lines []string
	for _, th := range []float64{-0.4, -0.2, -0.05, 0.06, 0.2, 0.4, 0.8} {
		_, res, err := classifier.TrainEval(rand.New(rand.NewSource(31)), exs, classifier.Options{Threshold: th})
		if err != nil {
			b.Fatal(err)
		}
		dox := res.Report[0]
		lines = append(lines, fmt.Sprintf("  threshold %+5.2f: dox P=%.3f R=%.3f F1=%.3f", th, dox.Precision, dox.Recall, dox.F1))
	}
	printOnce("ablation-threshold", "Ablation threshold sweep (paper operating point: P=.81 R=.89):\n"+
		joinLines(lines))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// BenchmarkCheckpointRoundTrip measures one full durability cycle at the
// shared study's scale: snapshot every pipeline component, encode to the
// checkpoint wire format, decode it back. The bytes/op figure is the
// on-disk snapshot size a full-scale durable run pays per checkpoint.
func BenchmarkCheckpointRoundTrip(b *testing.B) {
	s := benchStudy(b)
	snap, err := s.Snapshot(2, 49)
	if err != nil {
		b.Fatal(err)
	}
	data, err := store.Encode(snap)
	if err != nil {
		b.Fatal(err)
	}
	printOnce("checkpoint", fmt.Sprintf(
		"Checkpoint: %d components, %d bytes encoded at scale %g", len(snap.Components), len(data), benchScale))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := s.Snapshot(2, 49)
		if err != nil {
			b.Fatal(err)
		}
		data, err := store.Encode(snap)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := store.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Incremental checkpointing (delta mode) ---

// deltaBench holds a second shared study, run once in delta-checkpoint
// mode against an in-memory DeltaStore so the finished chain — the last
// compaction full plus the deltas after it — is available to the delta
// benchmarks. The study itself is kept for the compaction bench.
var (
	deltaBenchOnce  sync.Once
	deltaBenchErr   error
	deltaBenchS     *core.Study
	deltaBenchBase  *store.Snapshot // the cut the measured delta applies to
	deltaBenchDelta *store.Delta    // one steady-state incremental day
)

func deltaBenchSetup(b *testing.B) {
	b.Helper()
	deltaBenchOnce.Do(func() {
		mem := store.NewMem()
		s, err := core.NewStudy(core.StudyConfig{Seed: 1709, Scale: benchScale,
			Checkpoint: &core.CheckpointConfig{Store: mem, EveryDays: 1, Mode: core.CheckpointDelta, CompactEvery: 8}})
		if err == nil {
			err = s.Run(context.Background())
		}
		if err != nil {
			deltaBenchErr = err
			return
		}
		base, deltas, err := mem.LoadChain()
		if err != nil {
			deltaBenchErr = err
			return
		}
		if len(deltas) == 0 {
			deltaBenchErr = fmt.Errorf("delta-mode run left no chain above full %d", base.Seq)
			return
		}
		// Walk the chain to the cut just below its tip so the benchmark
		// op applies exactly one incremental day.
		pre, err := core.ApplyDeltaChain(base, deltas[:len(deltas)-1])
		if err != nil {
			deltaBenchErr = err
			return
		}
		deltaBenchS, deltaBenchBase, deltaBenchDelta = s, pre, deltas[len(deltas)-1]
	})
	if deltaBenchErr != nil {
		b.Fatal(deltaBenchErr)
	}
}

// BenchmarkCheckpointDelta measures the per-day durability cost in delta
// mode at the shared study's scale: encode one steady-state incremental
// day to the delta wire format and decode it back — the write path a
// durable run pays every day between compactions. (Applying the delta is
// a resume-time cost; it rides on the full-snapshot decode measured by
// CheckpointRoundTrip.) The bytes/op figure is the on-disk cost of the
// incremental day; the benchmark fails outright if it exceeds the 5 MB
// delta budget, and setup verifies the delta still reproduces the next
// cut (a full snapshot at this scale is ~165 MB and ~759 ms).
func BenchmarkCheckpointDelta(b *testing.B) {
	deltaBenchSetup(b)
	base, d := deltaBenchBase, deltaBenchDelta
	enc, err := store.EncodeDelta(d)
	if err != nil {
		b.Fatal(err)
	}
	if len(enc) > 5<<20 {
		b.Fatalf("incremental day encoded to %d bytes, over the 5 MB budget", len(enc))
	}
	if _, err := core.ApplyDeltaChain(base, []*store.Delta{d}); err != nil {
		b.Fatalf("measured delta does not apply to its base: %v", err)
	}
	printOnce("delta", fmt.Sprintf(
		"Delta checkpoint: day %d←%d, %d components, %d bytes encoded at scale %g",
		d.Seq, d.BaseSeq, len(d.Components), len(enc), benchScale))
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := store.EncodeDelta(d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := store.DecodeDelta(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointCompaction measures what a delta chain pays every
// CompactEvery cuts: building and encoding the full snapshot that rebases
// the chain. Amortized over the cuts between fulls this bounds both
// recovery replay length and total state-dir growth.
func BenchmarkCheckpointCompaction(b *testing.B) {
	deltaBenchSetup(b)
	s := deltaBenchS
	snap, err := s.Snapshot(2, 49)
	if err != nil {
		b.Fatal(err)
	}
	data, err := store.Encode(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := s.Snapshot(2, 49)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := store.Encode(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyEndToEnd measures a complete miniature study per op.
func BenchmarkStudyEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.NewStudy(core.StudyConfig{Seed: int64(100 + i), Scale: 0.002, ControlSample: 200})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// --- Sharded execution (the leased multi-worker day loop) ---

// benchShardedStudy runs a small end-to-end study with N leased worker
// groups. Results are bit-identical across N (the keystone sharding test
// enforces it); this benchmark tracks what the lease scheduling rounds
// cost — 1 shard is the classic loop, 4 and 8 pay for acquire/release
// rounds and the partitioned prepare/sweep phases.
func benchShardedStudy(b *testing.B, shards int) {
	for i := 0; i < b.N; i++ {
		s, err := core.NewStudy(core.StudyConfig{Seed: 1311, Scale: 0.002, ControlSample: 200, Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

func BenchmarkShardedStudy1(b *testing.B) { benchShardedStudy(b, 1) }
func BenchmarkShardedStudy4(b *testing.B) { benchShardedStudy(b, 4) }
func BenchmarkShardedStudy8(b *testing.B) { benchShardedStudy(b, 8) }

// --- Parallelism (the concurrent pipeline's throughput knob) ---

// parBench holds a small study (classifier trained, no Run) plus a batch of
// raw documents shaped like one heavy collection day, shared by the
// parallelism benchmarks.
var (
	parBenchOnce sync.Once
	parBenchS    *core.Study
	parBenchDocs []crawler.Doc
	parBenchErr  error
)

func parallelBenchSetup(b *testing.B) (*core.Study, []crawler.Doc) {
	b.Helper()
	parBenchOnce.Do(func() {
		s, err := core.NewStudy(core.StudyConfig{Seed: 21, Scale: 0.01, ControlSample: 100})
		if err != nil {
			parBenchErr = err
			return
		}
		parBenchS = s
		corpus := s.Corpus()
		for _, site := range textgen.AllSites() {
			for i := range corpus.Streams[site] {
				d := &corpus.Streams[site][i]
				parBenchDocs = append(parBenchDocs, crawler.Doc{
					Site: string(site), ID: d.ID, Title: d.Title,
					Body: d.Body, HTML: d.HTML, Posted: d.Posted,
				})
				if len(parBenchDocs) >= 4000 {
					return
				}
			}
		}
	})
	if parBenchErr != nil {
		b.Fatal(parBenchErr)
	}
	return parBenchS, parBenchDocs
}

// benchPipelineParallelism pushes the shared batch through the CPU-hot
// pipeline stages (html→text → TF-IDF → classify → extract) with the given
// worker-pool size. The acceptance bar for the concurrency work is
// Parallelism=4 achieving >= 2x the docs/s of Parallelism=1 on a multi-core
// runner.
func benchPipelineParallelism(b *testing.B, workers int) {
	s, docs := parallelBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.PrepareBatch(docs, workers)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(docs))*float64(b.N)/secs, "docs/s")
	}
}

func BenchmarkPipelineParallelism1(b *testing.B) { benchPipelineParallelism(b, 1) }
func BenchmarkPipelineParallelism2(b *testing.B) { benchPipelineParallelism(b, 2) }
func BenchmarkPipelineParallelism4(b *testing.B) { benchPipelineParallelism(b, 4) }

// benchClassifierBatch isolates the classification stage's batch API.
func benchClassifierBatch(b *testing.B, workers int) {
	s, docs := parallelBenchSetup(b)
	texts := make([]string, 0, 1000)
	for i := 0; i < len(docs) && i < 1000; i++ {
		text := docs[i].Body
		if docs[i].HTML {
			text = htmltext.Convert(text)
		}
		texts = append(texts, text)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Classifier.IsDoxBatch(texts, workers)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(texts))*float64(b.N)/secs, "docs/s")
	}
}

func BenchmarkClassifierBatch1(b *testing.B) { benchClassifierBatch(b, 1) }
func BenchmarkClassifierBatch4(b *testing.B) { benchClassifierBatch(b, 4) }

// BenchmarkStudyEndToEndParallel is BenchmarkStudyEndToEnd with the
// pipeline's worker pools enabled at GOMAXPROCS.
func BenchmarkStudyEndToEndParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.NewStudy(core.StudyConfig{Seed: int64(100 + i), Scale: 0.002, ControlSample: 200, Parallelism: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// --- Fused classify kernel (the zero-allocation inference hot path) ---

// hotDoc renders one realistic dox document for the hot-path benchmarks.
func hotDoc(b *testing.B) (*core.Study, string) {
	s, _ := parallelBenchSetup(b)
	return s, s.Gen.Dox(randutil.New(5), s.World.TrainVictims[0]).Body
}

// BenchmarkClassifyHot measures the steady-state fused classify path: one
// pass over the document bytes producing margin, token count and verdict,
// with pooled scratch. The acceptance bar is >= 3x faster than
// BenchmarkClassifyReference and <= 5 allocs/op.
func BenchmarkClassifyHot(b *testing.B) {
	s, doc := hotDoc(b)
	var r classifier.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Classifier.ScoreInto(doc, &r)
	}
}

// BenchmarkClassifyReference is the same classification through the original
// sparse path (Transform into a materialized vector, Decision, Tokenize for
// the length floor) — the baseline the fused kernel is measured against.
func BenchmarkClassifyReference(b *testing.B) {
	s, doc := hotDoc(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Classifier.ScoreReference(doc)
		_ = len(tfidf.Tokenize(doc))
	}
}

// BenchmarkTokenizeZeroAlloc measures the scorer's allocation-free token
// counting against tfidf.Tokenize's materializing tokenizer (the 0 B/op
// column is the point).
func BenchmarkTokenizeZeroAlloc(b *testing.B) {
	_, doc := hotDoc(b)
	vz := tfidf.NewVectorizer(tfidf.Options{})
	vz.Fit([]string{"name address phone email"})
	sc := vz.NewScorer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.TokenCount(doc)
	}
}

// BenchmarkExtract measures the reference (regex) extractor on its two
// regimes: a dox document (every hint present, all regexes run) and a
// benign document (gates skip the regex engine — the crawl's dominant
// case). This is the baseline BenchmarkExtractFused is measured against.
func BenchmarkExtract(b *testing.B) {
	s, doc := hotDoc(b)
	r := randutil.New(6)
	_, benign := s.Gen.BenignPaste(r)
	ref := extract.Options{ReferenceKernel: true}
	b.Run("dox", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = extract.ExtractWith(doc, ref)
		}
	})
	b.Run("benign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = extract.ExtractWith(benign, ref)
		}
	})
}

// BenchmarkExtractFused measures the fused single-pass extract kernel: one
// Aho–Corasick scan over the folded document dispatching to hand-rolled
// matchers, with a pinned kernel and a reused Extraction. The acceptance
// bar is >= 3x faster than BenchmarkExtract/dox, >= 5x faster than
// BenchmarkExtract/benign, and 0 allocs/op at steady state.
func BenchmarkExtractFused(b *testing.B) {
	s, doc := hotDoc(b)
	r := randutil.New(6)
	_, benign := s.Gen.BenignPaste(r)
	k := extract.NewKernel()
	var e extract.Extraction
	b.Run("dox", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k.ExtractInto(doc, &e, extract.Options{})
		}
	})
	b.Run("benign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k.ExtractInto(benign, &e, extract.Options{})
		}
	})
}

// --- Streaming pipeline (the always-on service engine) ---

// BenchmarkStreamThroughput drives full epochs of the always-on pipeline
// (internal/stream): four sources fan the shared 4,000-document batch into
// the key-hash prepare shards (running the extractor), the sequencer seals
// and sorts the epoch, and every document commits in batch order on the
// driver goroutine. The op is one whole epoch; docs/s is reported as a
// custom metric.
func BenchmarkStreamThroughput(b *testing.B) {
	_, docs := parallelBenchSetup(b)
	const nSources = 4
	per := len(docs) / nSources
	sources := make([]stream.Source, nSources)
	for si := 0; si < nSources; si++ {
		batch := docs[si*per : (si+1)*per]
		sources[si] = stream.Source{
			Name: fmt.Sprintf("src%d", si),
			Poll: func(ctx context.Context) ([]crawler.Doc, error) { return batch, nil },
		}
	}
	p := stream.New(stream.Config[*extract.Extraction]{
		PollParallelism: nSources,
		Prepare:         func(d *crawler.Doc) *extract.Extraction { return extract.Extract(d.Body) },
	})
	defer p.Close()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		stats, err := p.RunEpoch(context.Background(), sources, func(doc *crawler.Doc, ex *extract.Extraction) {})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Committed != per*nSources {
			b.Fatalf("epoch committed %d docs, want %d", stats.Committed, per*nSources)
		}
	}
	b.ReportMetric(float64(b.N*per*nSources)/time.Since(start).Seconds(), "docs/s")
}

// BenchmarkAlertFanout measures one detection's §7 fan-out: salted-digest
// lookups against a 16-victim notification registry, a feed ring publish,
// and watchlist address+phone listing. This is the per-alert cost the
// streaming service mode adds on top of each commit.
func BenchmarkAlertFanout(b *testing.B) {
	s, _ := parallelBenchSetup(b)
	svc := notify.NewService("bench-salt")
	wl := watchlist.New(0, func() time.Time { return simclock.Period1.Start })
	flog := feed.NewLog()
	fan := &stream.Fanout{Notify: svc, Watchlist: wl, Feed: flog}
	victims := s.World.Victims
	for i := 0; i < 16 && i < len(victims); i++ {
		v := victims[i]
		id := fmt.Sprintf("victim-%d", i)
		svc.Subscribe(id, notify.KindEmail, v.Email)
		svc.Subscribe(id, notify.KindPhone, v.Phone)
		for n, user := range v.OSN {
			svc.SubscribeAccount(id, netid.Ref{Network: n, Username: user})
		}
	}
	r := randutil.New(17)
	dets := make([]stream.Detection, 64)
	for i := range dets {
		v := victims[i%len(victims)]
		text := s.Gen.Dox(r, v).Body
		dets[i] = stream.Detection{
			Site: "pastebin", DocID: fmt.Sprintf("d%03d", i), SeenAt: simclock.Period1.Start,
			Extraction: extract.Extract(text), AddressLine: stream.AddressLine(text),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fan.Deliver(dets[i%len(dets)])
	}
}

// calibrateSink defeats dead-code elimination of the calibration loop.
var calibrateSink uint64

// calibrateBuf is the calibration working set: 4 MB of fixed pseudo-random
// data, larger than L2 so the walk below exercises the shared cache and
// memory system, not just the core.
var calibrateBuf []uint64

// BenchmarkCalibrate is the machine-speed reference behind the bench-check
// gate: a fixed, zero-allocation workload that interleaves xorshift ALU
// work with a pseudo-random walk over a 4 MB buffer, so its ns/op moves
// with CPU frequency, scheduler steal AND cache/memory-bandwidth
// interference — the full weather a shared machine imposes on the real
// benchmarks — but with nothing in this repository. benchjson normalizes
// a gated run by the calibration ratio against the baseline, so the
// regression limit measures the code rather than the weather.
func BenchmarkCalibrate(b *testing.B) {
	if calibrateBuf == nil {
		calibrateBuf = make([]uint64, 1<<19)
		x := uint64(0x9e3779b97f4a7c15)
		for i := range calibrateBuf {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			calibrateBuf[i] = x
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	acc := uint64(1)
	idx := uint64(0)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 2048; j++ {
			idx = (idx*0x9e3779b97f4a7c15 + acc) & (1<<19 - 1)
			acc ^= calibrateBuf[idx]
			acc ^= acc << 13
			acc ^= acc >> 7
		}
	}
	calibrateSink = acc
}
