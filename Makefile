# doxmeter build targets. Everything is pure-stdlib Go; no network needed.

GO ?= go

.PHONY: all build vet test test-race check bench bench-quick examples run-pipeline clean

all: check

# The default verification path: build, vet, tests, and the race detector
# over the concurrent pipeline (crawler fan-out, worker pool, monitor sweep).
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Regenerate every table and figure (scale 0.25 shared study; ~3-5 min).
bench:
	$(GO) test -bench=. -benchmem -run NONE .

# Faster spot check of the headline artifacts.
bench-quick:
	$(GO) test -bench='Table1|Table10|Figure1' -benchtime=3x -run NONE .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/gamerdox
	$(GO) run ./examples/monitorosn
	$(GO) run ./examples/notifyservice

run-pipeline:
	$(GO) run ./cmd/doxpipeline -scale 0.05

# Artifacts required by the reproduction checklist.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f dox.model figure2.dot test_output.txt bench_output.txt
