# doxmeter build targets. Everything is pure-stdlib Go; no network needed.

GO ?= go

.PHONY: all build vet test test-race fuzz-smoke chaos resume-soak stream-soak shard-soak check bench bench-quick bench-json bench-check profile loadtest examples run-pipeline clean

all: check

# The default verification path: build, vet, tests, the race detector
# over the concurrent pipeline (crawler fan-out, worker pool, monitor
# sweep, chaos suite), a short fuzz smoke over every parser that eats
# network bytes, and the hot-path benchmark regression gate.
check: build vet test test-race fuzz-smoke bench-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Native fuzzing, 5s per target: every parser fed by the network (listing,
# catalog, thread, Retry-After header, profile HTML) plus the text-pipeline
# entry points. Each invocation names one target because go test allows
# only one -fuzz pattern per package run.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseListing -fuzztime=$(FUZZTIME) -run NONE ./internal/crawler
	$(GO) test -fuzz=FuzzParseCatalog -fuzztime=$(FUZZTIME) -run NONE ./internal/crawler
	$(GO) test -fuzz=FuzzParseThread -fuzztime=$(FUZZTIME) -run NONE ./internal/crawler
	$(GO) test -fuzz=FuzzParseRetryAfter -fuzztime=$(FUZZTIME) -run NONE ./internal/crawler
	$(GO) test -fuzz=FuzzParseProfile -fuzztime=$(FUZZTIME) -run NONE ./internal/monitor
	$(GO) test -fuzz=FuzzConvert -fuzztime=$(FUZZTIME) -run NONE ./internal/htmltext
	$(GO) test -fuzz=FuzzExtract$$ -fuzztime=$(FUZZTIME) -run NONE ./internal/extract
	$(GO) test -fuzz=FuzzExtractKernelEquivalence -fuzztime=$(FUZZTIME) -run NONE ./internal/extract
	$(GO) test -fuzz=FuzzTransform -fuzztime=$(FUZZTIME) -run NONE ./internal/tfidf
	$(GO) test -fuzz=FuzzNormalizeEquivalence -fuzztime=$(FUZZTIME) -run NONE ./internal/dedup
	$(GO) test -fuzz=FuzzScorerEquivalence -fuzztime=$(FUZZTIME) -run NONE ./internal/classifier
	$(GO) test -fuzz=FuzzDeltaCodecRoundTrip -fuzztime=$(FUZZTIME) -fuzzminimizetime=2s -run NONE ./internal/store

# Long chaos soak: the full chaos suites under the race detector, including
# the study-level heavy-profile soak (DOXMETER_CHAOS_SOAK gates it), the
# fused-vs-reference kernel equivalence study (sequential and parallel, with
# fault injection live), the batch-vs-stream keystone (streaming runs must
# be bit-identical to batch, faults on, across kill/resume), plus the
# randomized kill/resume and streaming soaks and a longer fuzz pass over
# the network-facing parsers.
chaos:
	DOXMETER_CHAOS_SOAK=1 $(GO) test -race -count=1 -timeout 30m \
		./internal/faults ./internal/crawler ./internal/monitor
	$(GO) test -count=1 -timeout 30m -run 'TestStudyKernelEquivalence' -v ./internal/core
	$(GO) test -count=1 -timeout 30m \
		-run 'TestStreamBitIdentical|TestStreamResumeBitIdentical|TestStreamDigestMatchesBatch|TestStreamServiceResume' \
		-v ./internal/core
	$(GO) test -count=1 -timeout 30m \
		-run 'TestShardedStudyBitIdentical|TestShardedLeaseAudit' \
		-v ./internal/core
	$(MAKE) resume-soak
	$(MAKE) stream-soak
	$(MAKE) shard-soak
	$(MAKE) fuzz-smoke FUZZTIME=30s

# Randomized kill/resume soak: durable studies killed at random day
# boundaries across parallelism and fault settings, resumed, and compared
# bit for bit against uninterrupted baselines. The soak logs its RNG seed
# so a failure replays exactly.
resume-soak:
	DOXMETER_RESUME_SOAK=1 $(GO) test -race -count=1 -timeout 30m \
		-run 'TestResumeSoak' -v ./internal/core

# Randomized streaming soak: always-on pipeline runs with random kill
# chains, parallelism, fault profiles and checkpoint modes, each compared
# bit for bit against the batch baseline. Seed logged for exact replay.
stream-soak:
	DOXMETER_STREAM_SOAK=1 $(GO) test -race -count=1 -timeout 30m \
		-run 'TestStreamSoak' -v ./internal/core

# Randomized sharded soak: multi-worker studies with random shard counts,
# worker-kill schedules and process kill/resume chains, each compared bit
# for bit (records, tables, run digest) against the single-worker
# baseline. Seed logged for exact replay.
shard-soak:
	DOXMETER_SHARD_SOAK=1 $(GO) test -race -count=1 -timeout 30m \
		-run 'TestShardSoak' -v ./internal/core

# Regenerate every table and figure (scale 0.25 shared study; ~3-5 min).
bench:
	$(GO) test -bench=. -benchmem -run NONE .

# The benchmarks behind the bench-check regression gate: the
# classify/tokenize/extract hot paths (cheap setup) plus the delta
# checkpoint pair, which share one delta-mode study built on first use —
# the setup run is a few minutes, the gate keeps the <50 ms/<5 MB
# incremental-day budget honest. Calibrate is the fixed machine-speed
# reference benchjson uses to normalize the gate against CPU-frequency
# and noisy-neighbor drift between the baseline run and the check run.
HOT_BENCH = Calibrate|ClassifyHot|ClassifyReference|TokenizeZeroAlloc|Extract$$|ExtractFused|CheckpointDelta|CheckpointCompaction|StreamThroughput|AlertFanout|ShardedStudy

# Faster spot check of the headline artifacts.
bench-quick:
	$(GO) test -bench='Table1|Table10|Figure1|CheckpointRoundTrip' -benchtime=3x -run NONE .
	$(GO) test -bench='$(HOT_BENCH)' -benchtime=0.3s -benchmem -run NONE .

# Machine-readable benchmarks: the bench-quick artifact set plus the
# hot-path set, parsed into BENCH_results.json (name, iterations, ns/op,
# B/op, allocs/op) so runs can be stored and diffed without scraping text.
bench-json:
	( $(GO) test -bench='Table1|Table10|Figure1|CheckpointRoundTrip' -benchtime=3x -benchmem -run NONE . && \
	  $(GO) test -bench='$(HOT_BENCH)' -benchtime=0.3s -count=3 -benchmem -run NONE . ) \
		| $(GO) run ./cmd/benchjson -out BENCH_results.json

# Benchmark regression gate: re-run the hot-path set and fail if any shared
# benchmark slowed more than MAX_REGRESS vs the committed BENCH_results.json,
# or grew its B/op / allocs/op beyond MAX_ALLOC_REGRESS. Both sides run
# -count=3 and the gate compares fastest-vs-fastest (smallest-vs-smallest
# for memory) samples, which filters scheduler noise (noise only ever slows
# a run down). The allocation gates are the tight contract: B/op and
# allocs/op are deterministic properties of the code, identical on any
# host, so 10% (and exactly-0 for the recorded zero-alloc kernels) is
# enforceable everywhere. Wall-clock is not: same-code hot-set runs on the
# shared reference VM measure ±30-80% raw swings between windows (hypervisor
# co-tenants moving LLC/memory-bandwidth pressure the in-guest calibration
# loop cannot fully track — calibration normalizes slow windows down but is
# excuse-only, see cmd/benchjson), so the timed tolerance sits above that
# measured weather and exists to catch order-of-magnitude breakage, not
# percent-level drift.
MAX_REGRESS ?= 100%
MAX_ALLOC_REGRESS ?= 10%
bench-check:
	$(GO) test -bench='$(HOT_BENCH)' -benchtime=0.3s -count=3 -benchmem -run NONE . \
		| $(GO) run ./cmd/benchjson -baseline BENCH_results.json -max-regress $(MAX_REGRESS) \
			-max-alloc-regress $(MAX_ALLOC_REGRESS) -out /dev/null

# CPU, heap and allocation profiles from the two pipeline-level benchmarks
# (the sharded end-to-end study and the streaming throughput run), written
# under profiles/ (gitignored). Read with `go tool pprof profiles/<name>`;
# -sample_index=alloc_objects on the .mem profiles shows allocation counts,
# which is what the zero-copy ingest work is budgeted in.
profile:
	mkdir -p profiles
	$(GO) test -bench='ShardedStudy1$$' -benchtime=3x -benchmem -run NONE \
		-cpuprofile profiles/sharded.cpu -memprofile profiles/sharded.mem -o profiles/doxmeter.test .
	$(GO) test -bench='StreamThroughput' -benchtime=10x -benchmem -run NONE \
		-cpuprofile profiles/stream.cpu -memprofile profiles/stream.mem -o profiles/doxmeter.test .
	@echo "profiles written; e.g.: go tool pprof -sample_index=alloc_objects profiles/doxmeter.test profiles/sharded.mem"

# Load-test smoke: doxload drives an in-process doxsites stack for a few
# seconds and exits nonzero unless at least 20% of requests succeed, so a
# broken serving or telemetry path fails the target.
loadtest:
	$(GO) run ./cmd/doxload -duration 3s -rate 300 -concurrency 8 \
		-scale 0.005 -days 30 -min-success 0.2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/gamerdox
	$(GO) run ./examples/monitorosn
	$(GO) run ./examples/notifyservice

run-pipeline:
	$(GO) run ./cmd/doxpipeline -scale 0.05

# Artifacts required by the reproduction checklist.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f dox.model figure2.dot test_output.txt bench_output.txt BENCH_results.json
