package faults_test

import (
	"context"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"doxmeter/internal/core"
	"doxmeter/internal/crawler"
	"doxmeter/internal/experiments"
	"doxmeter/internal/faults"
	"doxmeter/internal/simclock"
)

// The keystone chaos guarantee: a study run through a *healing* fault
// profile — every fault mode enabled, but each URL recovers within the
// crawler's retry budget — commits exactly the same documents and produces
// bit-identical paper tables as a fault-free run, at every Parallelism
// setting. Faults may cost wall-clock time; they may never cost data.

const (
	chaosSeed    = 23
	chaosScale   = 0.004
	chaosControl = 300
)

// chaosCrawl is the hardened fetch policy used by every chaos study run:
// retry budget above MaxFaultsPerURL, tight backoff so tests stay fast,
// aggressive breaker so open/probe cycles actually happen.
func chaosCrawl() crawler.Options {
	return crawler.Options{
		Retries:          6,
		Backoff:          time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
		MaxRetryAfter:    20 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Millisecond,
		RequestTimeout:   5 * time.Second,
	}
}

// healingProfile enables every non-outage fault mode with a per-URL budget
// below the crawler's retry budget, so every fault heals inside the sweep
// that hit it.
func healingProfile() *faults.Profile {
	return &faults.Profile{
		Seed: 101,
		P500: 0.05, P503: 0.02, P429: 0.02, PReset: 0.03,
		PStall: 0.01, PTruncate: 0.04, PCorrupt: 0.04,
		RetryAfter:      10 * time.Millisecond,
		StallFor:        10 * time.Millisecond,
		MaxFaultsPerURL: 2,
	}
}

func runChaosStudy(t *testing.T, parallelism int, fp *faults.Profile) *core.Study {
	t.Helper()
	s, err := core.NewStudy(core.StudyConfig{
		Seed:               chaosSeed,
		Scale:              chaosScale,
		ControlSample:      chaosControl,
		Parallelism:        parallelism,
		Crawl:              chaosCrawl(),
		Faults:             fp,
		RecordCollectedIDs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

// chaosBaseline runs the fault-free control study once per test binary.
var (
	baselineOnce  sync.Once
	baselineStudy *core.Study
)

func chaosBaseline(t *testing.T) *core.Study {
	t.Helper()
	baselineOnce.Do(func() {
		s, err := core.NewStudy(core.StudyConfig{
			Seed:               chaosSeed,
			Scale:              chaosScale,
			ControlSample:      chaosControl,
			Parallelism:        1,
			Crawl:              chaosCrawl(),
			RecordCollectedIDs: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		baselineStudy = s
	})
	if baselineStudy == nil {
		t.Fatal("chaos baseline failed to build")
	}
	return baselineStudy
}

// paperTables renders the doxbench table outputs that the acceptance
// criterion requires to be bit-identical under chaos.
func paperTables(s *core.Study) map[string]string {
	return map[string]string{
		"Table3":  experiments.Table3(s).String(),
		"Table4":  experiments.Table4(s).String(),
		"Table9":  experiments.Table9(s).String(),
		"Table10": experiments.Table10(s).String(),
		"Figure1": experiments.Figure1(s).String(),
	}
}

// requireIdentical asserts the full no-data-loss contract: same funnel
// counters, same dox records, same dedup stats, same monitor histories,
// same rendered tables.
func requireIdentical(t *testing.T, want, got *core.Study, label string) {
	t.Helper()
	if want.Collected != got.Collected {
		t.Errorf("%s: Collected %d, want %d", label, got.Collected, want.Collected)
	}
	if !reflect.DeepEqual(want.CollectedBySite, got.CollectedBySite) {
		t.Errorf("%s: CollectedBySite %v, want %v", label, got.CollectedBySite, want.CollectedBySite)
	}
	if want.FlaggedByPeriod != got.FlaggedByPeriod {
		t.Errorf("%s: FlaggedByPeriod %v, want %v", label, got.FlaggedByPeriod, want.FlaggedByPeriod)
	}
	if want.Deduper.Stats() != got.Deduper.Stats() {
		t.Errorf("%s: dedup stats %+v, want %+v", label, got.Deduper.Stats(), want.Deduper.Stats())
	}
	if len(want.Doxes) != len(got.Doxes) {
		t.Fatalf("%s: %d dox records, want %d", label, len(got.Doxes), len(want.Doxes))
	}
	for i := range want.Doxes {
		a, b := want.Doxes[i], got.Doxes[i]
		if a.DocID != b.DocID || a.Site != b.Site || !a.Posted.Equal(b.Posted) ||
			a.Period != b.Period || a.Text != b.Text {
			t.Fatalf("%s: dox %d diverged: %s/%s vs %s/%s", label, i, a.Site, a.DocID, b.Site, b.DocID)
		}
	}
	wantHist, gotHist := want.Monitor.Histories(), got.Monitor.Histories()
	if len(wantHist) != len(gotHist) {
		t.Fatalf("%s: %d histories, want %d", label, len(gotHist), len(wantHist))
	}
	for i := range wantHist {
		a, b := wantHist[i], gotHist[i]
		if a.Ref != b.Ref || a.Verified != b.Verified || a.Activity != b.Activity ||
			!a.DoxSeenAt.Equal(b.DoxSeenAt) || !reflect.DeepEqual(a.Obs, b.Obs) {
			t.Fatalf("%s: history %v diverged under faults", label, a.Ref)
		}
	}
	wantTab, gotTab := paperTables(want), paperTables(got)
	for name := range wantTab {
		if wantTab[name] != gotTab[name] {
			t.Errorf("%s: %s diverged under faults:\nwant:\n%s\ngot:\n%s",
				label, name, wantTab[name], gotTab[name])
		}
	}
}

// requireChaosActivity asserts the faults actually fired and the hardened
// fetchers actually worked for the identical result — guarding against a
// vacuously green bit-identity check.
func requireChaosActivity(t *testing.T, s *core.Study, label string) {
	t.Helper()
	fc := s.FaultCounters()
	if fc.Injected() == 0 {
		t.Fatalf("%s: injectors never fired (%+v)", label, fc)
	}
	if fc.Status500+fc.Status503 == 0 || fc.RateLimited == 0 || fc.Resets == 0 ||
		fc.Truncated == 0 || fc.Corrupted == 0 {
		t.Errorf("%s: some fault modes never fired: %+v", label, fc)
	}
	fs := s.FetchStats()
	if fs.Retries == 0 || fs.RateLimited == 0 || fs.Truncated == 0 || fs.Corrupt == 0 {
		t.Errorf("%s: hardened fetchers saw no chaos: %+v", label, fs)
	}
	for name, n := range s.PollFailures {
		if n != 0 {
			t.Errorf("%s: healing profile still failed %d polls on %s", label, n, name)
		}
	}
	if s.MonitorFailures != 0 {
		t.Errorf("%s: healing profile still failed %d monitor sweeps", label, s.MonitorFailures)
	}
}

func TestChaosStudyBitIdentical(t *testing.T) {
	base := chaosBaseline(t)
	for _, parallelism := range []int{1, 0} {
		faulted := runChaosStudy(t, parallelism, healingProfile())
		label := "parallelism=1"
		if parallelism == 0 {
			label = "parallelism=default"
		}
		requireIdentical(t, base, faulted, label)
		requireChaosActivity(t, faulted, label)
	}
}

// TestChaosOutageNoDataLoss schedules multi-day outage windows in both
// collection periods. Outages are not healing faults — polls during the
// window genuinely fail — so the guarantee is weaker than bit-identity:
// every document that is still retrievable when the service comes back is
// collected (late, not lost), and the only permissible losses are pastes
// that both appeared and were deleted while the crawler was down, checked
// against the site's own deletion model. Monitor histories legitimately
// differ (observation days shift), so they are not compared.
func TestChaosOutageNoDataLoss(t *testing.T) {
	base := chaosBaseline(t)
	outages := []faults.Outage{
		{Start: simclock.Period1.Start.Add(10 * simclock.Day), End: simclock.Period1.Start.Add(12 * simclock.Day)},
		{Start: simclock.Period2.Start.Add(15 * simclock.Day), End: simclock.Period2.Start.Add(17 * simclock.Day)},
	}
	s := runChaosStudy(t, 0, &faults.Profile{Seed: 7, Outages: outages})

	// The outage run can never see a document the fault-free run missed.
	for key := range s.CollectedIDs {
		if _, ok := base.CollectedIDs[key]; !ok {
			t.Errorf("outage run collected %s, which the fault-free run never saw", key)
		}
	}
	// Any document missing from the outage run must be a paste that was
	// posted after the last pre-outage poll and deleted before the
	// post-outage catch-up poll at the window's end — a loss no crawler
	// can avoid. Everything else is merely delayed and must be present.
	lost := 0
	for key, posted := range base.CollectedIDs {
		if _, ok := s.CollectedIDs[key]; ok {
			continue
		}
		lost++
		id, isPaste := strings.CutPrefix(key, "pastebin/")
		if !isPaste {
			t.Errorf("board document %s lost to the outage (boards do not expire)", key)
			continue
		}
		explained := false
		for _, w := range outages {
			// Polls are daily, so the vulnerable interval opens one day
			// before the window starts (the last successful poll).
			if posted.After(w.Start.Add(-simclock.Day)) && posted.Before(w.End) &&
				s.Pastebin.IsDeleted(id, w.End) {
				explained = true
				break
			}
		}
		if !explained {
			t.Errorf("paste %s (posted %v) lost but was still retrievable after the outage", id, posted)
		}
	}
	if got := base.Collected - s.Collected; got != lost {
		t.Errorf("collected deficit %d does not match %d missing documents", got, lost)
	}
	// Losing a handful of deleted-during-blackout pastes can shave the
	// flagged counts, but never by more than the documents lost.
	if d := (base.FlaggedByPeriod[1] + base.FlaggedByPeriod[2]) -
		(s.FlaggedByPeriod[1] + s.FlaggedByPeriod[2]); d < 0 || d > lost {
		t.Errorf("flagged deficit %d outside [0, %d]", d, lost)
	}

	fc := s.FaultCounters()
	if fc.OutageRejected == 0 {
		t.Fatalf("outage windows never rejected a request: %+v", fc)
	}
	failures := 0
	for _, n := range s.PollFailures {
		failures += n
	}
	if failures == 0 {
		t.Error("outage produced no recorded poll failures")
	}
	if fs := s.FetchStats(); fs.BreakerOpens == 0 {
		t.Errorf("breaker never opened during the outage: %+v", fs)
	}
}

// TestChaosSoak is the long-running chaos soak (make chaos): the heavy
// preset at both parallelism settings against the shared baseline.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("DOXMETER_CHAOS_SOAK") == "" {
		t.Skip("set DOXMETER_CHAOS_SOAK=1 (make chaos) to run the chaos soak")
	}
	base := chaosBaseline(t)
	heavy, err := faults.Preset("heavy", 101)
	if err != nil {
		t.Fatal(err)
	}
	// The preset's human-scale delays would dominate the soak; keep the
	// probabilities, tighten the clocks.
	heavy.RetryAfter = 10 * time.Millisecond
	heavy.StallFor = 10 * time.Millisecond
	for _, parallelism := range []int{1, 0} {
		s := runChaosStudy(t, parallelism, heavy)
		requireIdentical(t, base, s, "soak")
		if s.FaultCounters().Injected() == 0 {
			t.Fatal("soak: injectors never fired")
		}
	}
}
