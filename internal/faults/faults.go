// Package faults is a seeded, deterministic fault-injection layer for the
// simulated sites. An Injector wraps any of the services' http.Handlers
// (internal/sites, internal/osn) and replaces a configurable fraction of
// responses with the failure modes a thirteen-week live crawl actually
// meets: 500/503 errors, 429 rate limiting with Retry-After, abrupt
// connection resets, stalled and truncated bodies, corrupted payloads, and
// scheduled outage windows on the study's virtual clock.
//
// Determinism is the point: whether a given request is faulted, and how, is
// a pure function of (profile seed, request URL, per-URL attempt number) —
// never of wall-clock time, goroutine scheduling, or request interleaving.
// Replaying the same crawl against the same profile fires the same faults,
// at any pipeline parallelism, which is what lets the chaos suite assert
// that a faulted study commits bit-identical results to a fault-free one.
//
// A profile "heals": after MaxFaultsPerURL faulted responses for one URL,
// further requests for it pass through untouched (outage windows instead
// heal when the virtual clock leaves the window). Any healing profile whose
// per-URL fault budget is below the crawler's retry budget is therefore
// survivable without data loss, and the chaos tests prove it.
package faults

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"doxmeter/internal/simclock"
	"doxmeter/internal/telemetry"
)

// Mode identifies one failure mode.
type Mode string

// The failure modes an Injector can substitute for a real response.
const (
	ModeNone     Mode = "none"      // pass through to the wrapped handler
	Mode500      Mode = "status500" // HTTP 500 Internal Server Error
	Mode503      Mode = "status503" // HTTP 503 Service Unavailable
	Mode429      Mode = "ratelimit" // HTTP 429 with a Retry-After header
	ModeReset    Mode = "reset"     // abrupt connection close (TCP RST)
	ModeStall    Mode = "stall"     // partial body, a wall-clock hang, then abort
	ModeTruncate Mode = "truncate"  // full Content-Length, partial body, abort
	ModeCorrupt  Mode = "corrupt"   // HTTP 200 with a garbage payload
	ModeOutage   Mode = "outage"    // scheduled outage window (503)
)

// Outage is a scheduled downtime window [Start, End) on the virtual clock.
type Outage struct {
	Start, End time.Time
}

// Contains reports whether t falls inside the window.
func (o Outage) Contains(t time.Time) bool {
	return !t.Before(o.Start) && t.Before(o.End)
}

// Profile configures which faults fire and how often. Probabilities are
// evaluated per request in field order (P500, P503, P429, PReset, PStall,
// PTruncate, PCorrupt) against a single deterministic roll, so their sum
// must not exceed 1.
type Profile struct {
	// Seed drives every injection decision. Two injectors with equal
	// profiles fire identical fault sequences for identical request
	// sequences.
	Seed int64

	P500, P503, P429    float64
	PReset, PStall      float64
	PTruncate, PCorrupt float64

	// RetryAfter is the delay advertised on injected 429 responses.
	// Sub-second values are formatted as decimal seconds.
	RetryAfter time.Duration
	// StallFor is how long (wall clock) a stalled body hangs after its
	// partial write before the connection is aborted. Default 100ms.
	StallFor time.Duration
	// TruncateFrac is the fraction of the true body delivered by stall
	// and truncate faults. Default 0.5.
	TruncateFrac float64
	// MaxFaultsPerURL is the per-URL healing budget: after this many
	// faulted responses for one URL, requests for it pass through.
	// Zero means the default of 2; negative means never heal.
	MaxFaultsPerURL int
	// Outages are scheduled downtime windows on the virtual clock during
	// which every request is rejected with a 503, regardless of the
	// probability knobs or the healing budget.
	Outages []Outage
}

// defaultMaxFaults is the healing budget when MaxFaultsPerURL is zero.
const defaultMaxFaults = 2

// ErrInvalidProfile is the sentinel every Profile.Validate failure wraps,
// part of the uniform Validate() + withDefaults() contract shared with
// core.StudyConfig and crawler.Options.
var ErrInvalidProfile = errors.New("faults: invalid Profile")

// Validate rejects contradictory profiles before a run starts: out-of-
// range probabilities, a probability mass above 1 (the modes share one
// roll), negative delays, a truncation fraction that would deliver the
// whole body, or an inverted outage window. Zero values are always valid
// (they mean "use the default").
func (p Profile) Validate() error {
	sum := 0.0
	for _, c := range []struct {
		name string
		p    float64
	}{
		{"P500", p.P500}, {"P503", p.P503}, {"P429", p.P429},
		{"PReset", p.PReset}, {"PStall", p.PStall},
		{"PTruncate", p.PTruncate}, {"PCorrupt", p.PCorrupt},
	} {
		if c.p < 0 || c.p > 1 {
			return fmt.Errorf("%w: %s = %v, want [0, 1]", ErrInvalidProfile, c.name, c.p)
		}
		sum += c.p
	}
	if sum > 1 {
		return fmt.Errorf("%w: probabilities sum to %v, want <= 1 (modes share one roll)", ErrInvalidProfile, sum)
	}
	if p.RetryAfter < 0 {
		return fmt.Errorf("%w: RetryAfter = %v", ErrInvalidProfile, p.RetryAfter)
	}
	if p.StallFor < 0 {
		return fmt.Errorf("%w: StallFor = %v", ErrInvalidProfile, p.StallFor)
	}
	if p.TruncateFrac < 0 || p.TruncateFrac >= 1 {
		if p.TruncateFrac != 0 {
			return fmt.Errorf("%w: TruncateFrac = %v, want [0, 1)", ErrInvalidProfile, p.TruncateFrac)
		}
	}
	for i, o := range p.Outages {
		if !o.End.After(o.Start) {
			return fmt.Errorf("%w: Outages[%d] window [%v, %v) is empty or inverted", ErrInvalidProfile, i, o.Start, o.End)
		}
	}
	return nil
}

// withDefaults resolves the zero-means-default fields to their effective
// values. The per-field accessors (maxFaults, stallFor, truncateFrac)
// remain the source of truth; this materializes them so a defaulted
// profile can be inspected or compared directly.
func (p Profile) withDefaults() Profile {
	p.MaxFaultsPerURL = p.maxFaults()
	p.StallFor = p.stallFor()
	p.TruncateFrac = p.truncateFrac()
	return p
}

func (p Profile) maxFaults() int {
	switch {
	case p.MaxFaultsPerURL == 0:
		return defaultMaxFaults
	case p.MaxFaultsPerURL < 0:
		return -1
	}
	return p.MaxFaultsPerURL
}

func (p Profile) stallFor() time.Duration {
	if p.StallFor <= 0 {
		return 100 * time.Millisecond
	}
	return p.StallFor
}

func (p Profile) truncateFrac() float64 {
	if p.TruncateFrac <= 0 || p.TruncateFrac >= 1 {
		return 0.5
	}
	return p.TruncateFrac
}

// ForService derives a copy of the profile with a service-specific seed, so
// the pastebin, board and OSN injectors fire independent fault streams from
// one study-level profile.
func (p Profile) ForService(name string) Profile {
	q := p
	q.Seed = p.Seed ^ int64(hashString(name))
	return q
}

// InOutage reports whether t falls inside any scheduled outage window.
func (p Profile) InOutage(t time.Time) bool {
	for _, o := range p.Outages {
		if o.Contains(t) {
			return true
		}
	}
	return false
}

// Decide returns the fault mode for the attempt-th request (0-based) of the
// given URL key. It is a pure function of (Seed, key, attempt): request
// interleaving, parallelism and wall-clock time never change the outcome.
// Outage windows are not Decide's business — the Injector checks those
// against the virtual clock first.
func (p Profile) Decide(key string, attempt int) Mode {
	if max := p.maxFaults(); max >= 0 && attempt >= max {
		return ModeNone
	}
	u := p.roll(key, attempt)
	for _, c := range []struct {
		m Mode
		p float64
	}{
		{Mode500, p.P500},
		{Mode503, p.P503},
		{Mode429, p.P429},
		{ModeReset, p.PReset},
		{ModeStall, p.PStall},
		{ModeTruncate, p.PTruncate},
		{ModeCorrupt, p.PCorrupt},
	} {
		if c.p <= 0 {
			continue
		}
		u -= c.p
		if u < 0 {
			return c.m
		}
	}
	return ModeNone
}

// roll maps (Seed, key, attempt) to a uniform float in [0, 1) via FNV-1a.
func (p Profile) roll(key string, attempt int) float64 {
	h := hashString(key)
	h = hashUint64(h, uint64(p.Seed))
	h = hashUint64(h, uint64(attempt))
	return float64(h>>11) / float64(uint64(1)<<53)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashString(s string) uint64 {
	var h uint64 = fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// Preset returns a named fault profile, or nil for "off". The seed keeps
// the profile deterministic; outage windows in the "outage" preset are
// pinned to the paper's collection periods.
func Preset(name string, seed int64) (*Profile, error) {
	switch name {
	case "", "off":
		return nil, nil
	case "mild":
		return &Profile{
			Seed: seed,
			P500: 0.02, P503: 0.01, P429: 0.02, PReset: 0.01,
			PStall: 0.005, PTruncate: 0.01, PCorrupt: 0.01,
			RetryAfter:      time.Second,
			StallFor:        250 * time.Millisecond,
			MaxFaultsPerURL: 2,
		}, nil
	case "heavy":
		return &Profile{
			Seed: seed,
			P500: 0.08, P503: 0.04, P429: 0.05, PReset: 0.04,
			PStall: 0.02, PTruncate: 0.04, PCorrupt: 0.04,
			RetryAfter:      time.Second,
			StallFor:        500 * time.Millisecond,
			MaxFaultsPerURL: 4,
		}, nil
	case "outage":
		p, _ := Preset("mild", seed)
		p.Outages = []Outage{
			{Start: simclock.Period1.Start.Add(10 * simclock.Day), End: simclock.Period1.Start.Add(12 * simclock.Day)},
			{Start: simclock.Period2.Start.Add(15 * simclock.Day), End: simclock.Period2.Start.Add(17 * simclock.Day)},
		}
		return p, nil
	default:
		return nil, fmt.Errorf("faults: unknown profile %q (want off, mild, heavy or outage)", name)
	}
}

// Counters tallies what an Injector actually did.
type Counters struct {
	Requests int64 // every request seen
	Passed   int64 // requests served by the wrapped handler untouched

	Status500, Status503 int64
	RateLimited          int64 // injected 429s
	Resets               int64
	Stalls               int64
	Truncated            int64
	Corrupted            int64
	OutageRejected       int64
}

// Injected returns the total number of faulted responses.
func (c Counters) Injected() int64 {
	return c.Status500 + c.Status503 + c.RateLimited + c.Resets +
		c.Stalls + c.Truncated + c.Corrupted + c.OutageRejected
}

// Plus returns the field-wise sum of two counter sets.
func (c Counters) Plus(o Counters) Counters {
	c.Requests += o.Requests
	c.Passed += o.Passed
	c.Status500 += o.Status500
	c.Status503 += o.Status503
	c.RateLimited += o.RateLimited
	c.Resets += o.Resets
	c.Stalls += o.Stalls
	c.Truncated += o.Truncated
	c.Corrupted += o.Corrupted
	c.OutageRejected += o.OutageRejected
	return c
}

// allModes lists every injectable mode, for metric series pre-declaration.
var allModes = []Mode{Mode500, Mode503, Mode429, ModeReset, ModeStall, ModeTruncate, ModeCorrupt, ModeOutage}

// faultMetrics holds the injector's tallies as telemetry counters. The
// injector always counts through these — when not Instrument()ed onto a
// shared registry they live on a private one, so the code path (lock-free
// atomics) is identical and Counters() snapshots read the same values
// /metrics would export.
type faultMetrics struct {
	requests *telemetry.Counter
	passed   *telemetry.Counter
	injected map[Mode]*telemetry.Counter
}

func newFaultMetrics(reg *telemetry.Registry, service string) *faultMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if service == "" {
		service = "unknown"
	}
	inj := reg.NewCounter("doxmeter_fault_injected_total",
		"Faulted responses substituted by the injector, by failure mode.",
		"service", "mode")
	m := &faultMetrics{
		requests: reg.NewCounter("doxmeter_fault_requests_total",
			"Requests seen by the fault injector.", "service").With(service),
		passed: reg.NewCounter("doxmeter_fault_passed_total",
			"Requests served by the wrapped handler untouched.", "service").With(service),
		injected: make(map[Mode]*telemetry.Counter, len(allModes)),
	}
	for _, mode := range allModes {
		m.injected[mode] = inj.With(service, string(mode))
	}
	return m
}

// Injector wraps an http.Handler with deterministic fault injection. Safe
// for concurrent use.
type Injector struct {
	p     Profile
	clock *simclock.Clock // nil disables outage windows
	inner http.Handler

	mu       sync.Mutex
	attempts map[string]int
	m        *faultMetrics
}

// NewInjector wraps inner with the given profile. clock may be nil when
// the profile schedules no outages.
func NewInjector(p Profile, clock *simclock.Clock, inner http.Handler) *Injector {
	return &Injector{
		p: p.withDefaults(), clock: clock, inner: inner,
		attempts: make(map[string]int),
		m:        newFaultMetrics(nil, ""),
	}
}

// Instrument re-homes the injector's counters onto reg as
// doxmeter_fault_* series labeled by service. Call it before serving
// traffic: counts recorded earlier stay on the injector's private registry
// and are not migrated.
func (in *Injector) Instrument(reg *telemetry.Registry, service string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.m = newFaultMetrics(reg, service)
}

func (in *Injector) metrics() *faultMetrics {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.m
}

// Counters returns a snapshot of the injection tallies, read from the same
// registry instruments /metrics exports. Counters are independent atomics,
// so a snapshot taken while requests are in flight may be momentarily
// skewed — exactly like scraping /metrics.
func (in *Injector) Counters() Counters {
	m := in.metrics()
	return Counters{
		Requests:       int64(m.requests.Value()),
		Passed:         int64(m.passed.Value()),
		Status500:      int64(m.injected[Mode500].Value()),
		Status503:      int64(m.injected[Mode503].Value()),
		RateLimited:    int64(m.injected[Mode429].Value()),
		Resets:         int64(m.injected[ModeReset].Value()),
		Stalls:         int64(m.injected[ModeStall].Value()),
		Truncated:      int64(m.injected[ModeTruncate].Value()),
		Corrupted:      int64(m.injected[ModeCorrupt].Value()),
		OutageRejected: int64(m.injected[ModeOutage].Value()),
	}
}

// Profile returns the injector's (derived) profile.
func (in *Injector) Profile() Profile { return in.p }

func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Path
	if r.URL.RawQuery != "" {
		key += "?" + r.URL.RawQuery
	}
	in.mu.Lock()
	in.m.requests.Inc()
	attempt := in.attempts[key]
	in.attempts[key]++
	in.mu.Unlock()

	if in.clock != nil && in.p.InOutage(in.clock.Now()) {
		in.bump(ModeOutage)
		http.Error(w, "injected: scheduled outage", http.StatusServiceUnavailable)
		return
	}

	switch mode := in.p.Decide(key, attempt); mode {
	case Mode500:
		in.bump(mode)
		http.Error(w, "injected: internal error", http.StatusInternalServerError)
	case Mode503:
		in.bump(mode)
		http.Error(w, "injected: unavailable", http.StatusServiceUnavailable)
	case Mode429:
		in.bump(mode)
		w.Header().Set("Retry-After", formatSeconds(in.p.RetryAfter))
		http.Error(w, "injected: rate limited", http.StatusTooManyRequests)
	case ModeReset:
		in.bump(mode)
		in.reset(w)
	case ModeStall, ModeTruncate:
		in.partial(w, r, mode)
	case ModeCorrupt:
		in.corrupt(w, r, key, attempt)
	default:
		in.bumpPassed()
		in.inner.ServeHTTP(w, r)
	}
}

func (in *Injector) bump(m Mode) {
	in.metrics().injected[m].Inc()
}

func (in *Injector) bumpPassed() {
	in.metrics().passed.Inc()
}

// reset closes the client connection abruptly. SetLinger(0) forces a TCP
// RST instead of a graceful FIN, which is what an overloaded frontend or a
// mid-path middlebox produces.
func (in *Injector) reset(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			if tcp, ok := conn.(*net.TCPConn); ok {
				_ = tcp.SetLinger(0)
			}
			_ = conn.Close()
			return
		}
	}
	// No hijack support (e.g. HTTP/2): aborting the handler still kills
	// the response mid-flight.
	panic(http.ErrAbortHandler)
}

// partial serves the true response's headers (including the full
// Content-Length) but only a prefix of its body, then aborts — after a
// wall-clock hang for ModeStall. Clients observe an unexpected EOF with
// fewer bytes than advertised: exactly a flaky upstream cutting a transfer.
// Non-200 inner responses pass through unfaulted so error pages are not
// double-faulted.
func (in *Injector) partial(w http.ResponseWriter, r *http.Request, mode Mode) {
	rec := record(in.inner, r)
	if rec.code != http.StatusOK || len(rec.body) == 0 {
		in.bumpPassed()
		rec.replay(w)
		return
	}
	in.bump(mode)
	n := int(float64(len(rec.body)) * in.p.truncateFrac())
	if n >= len(rec.body) {
		n = len(rec.body) - 1
	}
	copyHeaders(w.Header(), rec.header)
	w.Header().Set("Content-Length", strconv.Itoa(len(rec.body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(rec.body[:n])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	if mode == ModeStall {
		select {
		case <-time.After(in.p.stallFor()):
		case <-r.Context().Done():
		}
	}
	panic(http.ErrAbortHandler)
}

// corrupt replaces the true 200 payload with deterministic garbage that no
// parser accepts: invalid as JSON and carrying no HTML marker, so every
// downstream consumer can detect (and must quarantine) it rather than
// silently ingesting mangled content. Only structured payloads (JSON, HTML)
// are corrupted: a mangled raw text body would be indistinguishable from a
// legitimate one, which no client could ever defend against.
func (in *Injector) corrupt(w http.ResponseWriter, r *http.Request, key string, attempt int) {
	rec := record(in.inner, r)
	ct := rec.header.Get("Content-Type")
	if rec.code != http.StatusOK || !(strings.Contains(ct, "json") || strings.Contains(ct, "html")) {
		in.bumpPassed()
		rec.replay(w)
		return
	}
	in.bump(ModeCorrupt)
	h := hashUint64(hashString(key), uint64(attempt))
	payload := fmt.Sprintf("\x00\x1finjected-corruption %016x {{{", h)
	copyHeaders(w.Header(), rec.header)
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprint(w, payload)
}

// recorded captures an inner handler's response for faults that need the
// true payload in hand before mangling it.
type recorded struct {
	code   int
	header http.Header
	body   []byte
}

func record(h http.Handler, r *http.Request) *recorded {
	rec := &recorded{code: http.StatusOK, header: make(http.Header)}
	h.ServeHTTP((*recordWriter)(rec), r)
	return rec
}

func (rec *recorded) replay(w http.ResponseWriter) {
	copyHeaders(w.Header(), rec.header)
	w.WriteHeader(rec.code)
	_, _ = w.Write(rec.body)
}

type recordWriter recorded

func (rw *recordWriter) Header() http.Header { return rw.header }

func (rw *recordWriter) WriteHeader(code int) { rw.code = code }

func (rw *recordWriter) Write(b []byte) (int, error) {
	rw.body = append(rw.body, b...)
	return len(b), nil
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if k == "Content-Length" {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// formatSeconds renders a Retry-After value: integer seconds when whole
// (per RFC 7231), decimal seconds otherwise (a lenient extension real
// servers use and our crawler parses, keeping tests fast).
func formatSeconds(d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	if d%time.Second == 0 {
		return strconv.Itoa(int(d / time.Second))
	}
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64)
}
