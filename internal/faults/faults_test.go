package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"doxmeter/internal/simclock"
)

// alwaysOK is a plain inner handler serving a fixed JSON payload.
func alwaysOK(t *testing.T, body string, contentType string) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentType)
		_, _ = io.WriteString(w, body)
	})
}

// oneMode returns a profile that fires exactly the given mode on every
// decision (until the healing budget runs out).
func oneMode(m Mode) Profile {
	p := Profile{Seed: 7, RetryAfter: 1500 * time.Millisecond, StallFor: 30 * time.Millisecond}
	switch m {
	case Mode500:
		p.P500 = 1
	case Mode503:
		p.P503 = 1
	case Mode429:
		p.P429 = 1
	case ModeReset:
		p.PReset = 1
	case ModeStall:
		p.PStall = 1
	case ModeTruncate:
		p.PTruncate = 1
	case ModeCorrupt:
		p.PCorrupt = 1
	}
	return p
}

// TestFaultModes drives every injectable mode through a real HTTP server
// and checks both the observable client-side failure and the counter that
// must record it.
func TestFaultModes(t *testing.T) {
	const payload = `{"ok": true, "n": 12345}`
	cases := []struct {
		mode  Mode
		check func(t *testing.T, resp *http.Response, body []byte, err error)
		count func(c Counters) int64
	}{
		{Mode500, func(t *testing.T, resp *http.Response, _ []byte, err error) {
			if err != nil || resp.StatusCode != http.StatusInternalServerError {
				t.Fatalf("want 500, got resp=%v err=%v", resp, err)
			}
		}, func(c Counters) int64 { return c.Status500 }},
		{Mode503, func(t *testing.T, resp *http.Response, _ []byte, err error) {
			if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("want 503, got resp=%v err=%v", resp, err)
			}
			if resp.Header.Get("Retry-After") != "" {
				t.Fatal("bare 503 must not advertise Retry-After")
			}
		}, func(c Counters) int64 { return c.Status503 }},
		{Mode429, func(t *testing.T, resp *http.Response, _ []byte, err error) {
			if err != nil || resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("want 429, got resp=%v err=%v", resp, err)
			}
			if got := resp.Header.Get("Retry-After"); got != "1.500" {
				t.Fatalf("Retry-After = %q, want 1.500", got)
			}
		}, func(c Counters) int64 { return c.RateLimited }},
		{ModeReset, func(t *testing.T, resp *http.Response, _ []byte, err error) {
			if err == nil {
				t.Fatalf("reset fault produced a clean response: %v", resp)
			}
		}, func(c Counters) int64 { return c.Resets }},
		{ModeStall, func(t *testing.T, resp *http.Response, body []byte, err error) {
			if err == nil && resp.StatusCode == http.StatusOK && string(body) == payload {
				t.Fatal("stall fault delivered the full payload")
			}
		}, func(c Counters) int64 { return c.Stalls }},
		{ModeTruncate, func(t *testing.T, resp *http.Response, body []byte, err error) {
			if err != nil {
				return // transport surfaced the truncation: fine
			}
			if resp.ContentLength != int64(len(payload)) {
				t.Fatalf("Content-Length = %d, want the true length %d", resp.ContentLength, len(payload))
			}
			if len(body) >= len(payload) {
				t.Fatalf("truncate fault delivered %d of %d bytes", len(body), len(payload))
			}
		}, func(c Counters) int64 { return c.Truncated }},
		{ModeCorrupt, func(t *testing.T, resp *http.Response, body []byte, err error) {
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("corrupt fault must stay a 200: resp=%v err=%v", resp, err)
			}
			if string(body) == payload || strings.Contains(string(body), `"ok"`) {
				t.Fatalf("corrupt fault delivered the true payload: %q", body)
			}
		}, func(c Counters) int64 { return c.Corrupted }},
	}
	for _, tc := range cases {
		t.Run(string(tc.mode), func(t *testing.T) {
			in := NewInjector(oneMode(tc.mode), nil, alwaysOK(t, payload, "application/json"))
			srv := httptest.NewServer(in)
			defer srv.Close()

			get := func() (*http.Response, []byte, error) {
				resp, err := http.Get(srv.URL + "/x")
				if err != nil {
					return nil, nil, err
				}
				defer resp.Body.Close()
				body, rerr := io.ReadAll(resp.Body)
				if rerr != nil {
					return resp, body, rerr
				}
				return resp, body, nil
			}

			// Attempts 0 and 1 fault (default healing budget of 2)...
			for i := 0; i < 2; i++ {
				resp, body, err := get()
				tc.check(t, resp, body, err)
			}
			if got := tc.count(in.Counters()); got != 2 {
				t.Fatalf("counter after 2 faulted attempts = %d, want 2", got)
			}
			// ...and attempt 2 heals: the true payload passes through.
			resp, body, err := get()
			if err != nil || resp.StatusCode != http.StatusOK || string(body) != payload {
				t.Fatalf("healed attempt: resp=%v body=%q err=%v", resp, body, err)
			}
			c := in.Counters()
			if c.Passed != 1 || c.Requests != 3 {
				t.Fatalf("counters after heal = %+v, want Passed=1 Requests=3", c)
			}
		})
	}
}

// TestCorruptSparesRawText: raw text bodies carry no structure a client
// could validate, so the corrupt mode must pass them through untouched.
func TestCorruptSparesRawText(t *testing.T) {
	const payload = "just some paste text"
	in := NewInjector(oneMode(ModeCorrupt), nil, alwaysOK(t, payload, "text/plain; charset=utf-8"))
	srv := httptest.NewServer(in)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/item")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != payload {
		t.Fatalf("text/plain body corrupted: %q", body)
	}
	if c := in.Counters(); c.Corrupted != 0 || c.Passed != 1 {
		t.Fatalf("counters = %+v, want Corrupted=0 Passed=1", c)
	}
}

// TestOutageWindow verifies scheduled outages reject with 503 exactly while
// the virtual clock is inside the window, regardless of probabilities or
// the healing budget.
func TestOutageWindow(t *testing.T) {
	start := simclock.Period1.Start.Add(5 * simclock.Day)
	clock := simclock.NewClock(simclock.Period1.Start)
	p := Profile{Seed: 3, Outages: []Outage{{Start: start, End: start.Add(2 * simclock.Day)}}}
	in := NewInjector(p, clock, alwaysOK(t, "ok", "text/plain"))
	srv := httptest.NewServer(in)
	defer srv.Close()

	status := func() int {
		resp, err := http.Get(srv.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status(); got != http.StatusOK {
		t.Fatalf("before outage: status %d", got)
	}
	clock.Set(start) // window start is inclusive
	for i := 0; i < 5; i++ {
		if got := status(); got != http.StatusServiceUnavailable {
			t.Fatalf("inside outage: status %d", got)
		}
	}
	clock.Set(start.Add(2 * simclock.Day)) // window end is exclusive
	if got := status(); got != http.StatusOK {
		t.Fatalf("after outage: status %d", got)
	}
	if c := in.Counters(); c.OutageRejected != 5 {
		t.Fatalf("OutageRejected = %d, want 5", c.OutageRejected)
	}
}

// TestDecideDeterministic pins the determinism contract: Decide is a pure
// function of (seed, key, attempt) — same inputs, same firing, independent
// of call order; different seeds give a different stream.
func TestDecideDeterministic(t *testing.T) {
	p := Profile{Seed: 99, P500: 0.1, P503: 0.1, P429: 0.1, PReset: 0.1, PStall: 0.1, PTruncate: 0.1, PCorrupt: 0.1, MaxFaultsPerURL: -1}
	keys := []string{"/a", "/b?x=1", "/thread/42.json", "/api_scraping.php?since=0"}

	first := map[string]Mode{}
	for _, k := range keys {
		for a := 0; a < 50; a++ {
			first[k+string(rune(a))] = p.Decide(k, a)
		}
	}
	// Replay in reverse order: every decision must match.
	for i := len(keys) - 1; i >= 0; i-- {
		for a := 49; a >= 0; a-- {
			if got := p.Decide(keys[i], a); got != first[keys[i]+string(rune(a))] {
				t.Fatalf("Decide(%q, %d) unstable: %v then %v", keys[i], a, first[keys[i]+string(rune(a))], got)
			}
		}
	}

	// A different seed must produce a different stream (statistically
	// certain over 200 decisions at these rates).
	q := p
	q.Seed = 100
	same := true
	for _, k := range keys {
		for a := 0; a < 50; a++ {
			if q.Decide(k, a) != first[k+string(rune(a))] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault streams")
	}

	// Rates must roughly add up: with 70% total fault probability, both
	// all-faults and no-faults are implausible over 200 draws.
	fired := 0
	for _, k := range keys {
		for a := 0; a < 50; a++ {
			if p.Decide(k, a) != ModeNone {
				fired++
			}
		}
	}
	if fired < 80 || fired > 200-20 {
		t.Fatalf("70%% fault profile fired %d/200 times", fired)
	}
}

// TestDecideHeals verifies the per-URL healing budget: at attempt >=
// MaxFaultsPerURL every decision is ModeNone.
func TestDecideHeals(t *testing.T) {
	p := Profile{Seed: 1, P500: 1, MaxFaultsPerURL: 3}
	for a := 0; a < 3; a++ {
		if got := p.Decide("/k", a); got != Mode500 {
			t.Fatalf("attempt %d: %v, want %v", a, got, Mode500)
		}
	}
	for a := 3; a < 10; a++ {
		if got := p.Decide("/k", a); got != ModeNone {
			t.Fatalf("attempt %d after budget: %v, want none", a, got)
		}
	}
	// Unlimited budget never heals.
	p.MaxFaultsPerURL = -1
	if got := p.Decide("/k", 1000); got != Mode500 {
		t.Fatalf("unlimited budget healed: %v", got)
	}
}

// TestForService derives independent but deterministic per-service streams.
func TestForService(t *testing.T) {
	p := Profile{Seed: 5, P500: 0.5, MaxFaultsPerURL: -1}
	a, b := p.ForService("pastebin"), p.ForService("osn")
	if a.Seed == b.Seed || a.Seed == p.Seed {
		t.Fatalf("service seeds not derived: base=%d a=%d b=%d", p.Seed, a.Seed, b.Seed)
	}
	if a.Seed != p.ForService("pastebin").Seed {
		t.Fatal("ForService not deterministic")
	}
	diverged := false
	for i := 0; i < 100; i++ {
		k := "/k" + string(rune('a'+i%26))
		if a.Decide(k, i) != b.Decide(k, i) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("per-service fault streams identical")
	}
}

func TestPresets(t *testing.T) {
	if p, err := Preset("off", 1); err != nil || p != nil {
		t.Fatalf("off: %v, %v", p, err)
	}
	for _, name := range []string{"mild", "heavy", "outage"} {
		p, err := Preset(name, 42)
		if err != nil || p == nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Seed != 42 {
			t.Fatalf("%s: seed %d not applied", name, p.Seed)
		}
		total := p.P500 + p.P503 + p.P429 + p.PReset + p.PStall + p.PTruncate + p.PCorrupt
		if total <= 0 || total > 1 {
			t.Fatalf("%s: probability mass %v out of range", name, total)
		}
		if (name == "outage") != (len(p.Outages) > 0) {
			t.Fatalf("%s: outage windows = %v", name, p.Outages)
		}
	}
	if _, err := Preset("bogus", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestCountersPlus checks the aggregate arithmetic used by the study's
// fault summary.
func TestCountersPlus(t *testing.T) {
	a := Counters{Requests: 10, Passed: 5, Status500: 2, RateLimited: 1, Truncated: 1, OutageRejected: 1}
	b := Counters{Requests: 4, Passed: 2, Status503: 1, Resets: 1}
	sum := a.Plus(b)
	if sum.Requests != 14 || sum.Passed != 7 || sum.Status500 != 2 || sum.Status503 != 1 {
		t.Fatalf("Plus = %+v", sum)
	}
	if got := sum.Injected(); got != 7 {
		t.Fatalf("Injected() = %d, want 7", got)
	}
}
