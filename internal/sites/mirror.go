package sites

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"doxmeter/internal/randutil"
	"doxmeter/internal/simclock"
	"doxmeter/internal/textgen"
)

// Mirror simulates the secondary dox-distribution venues the paper
// investigated before settling on its three sources (§3.1.1): onion sites,
// torrents of dox archives, and small anonymous text hosts. The paper found
// these "generally host copies of doxes already shared on pastebin.com,
// 4chan.org and 8ch.net" — which is what justified limiting collection to
// the big three. A Mirror therefore re-hosts a sample of doxes drawn from
// the primary corpus (with the usual repost mutations) plus a small novel
// remainder, and the SectionMirrors experiment re-derives the paper's
// redundancy claim by running the mirror's content through the study's
// de-duplicator.
//
// API:
//
//	GET /index.json        — [{"id","posted"}] of currently visible files
//	GET /file/{id}         — raw text
type Mirror struct {
	clock *simclock.Clock

	mu   sync.RWMutex
	docs []textgen.Doc // sorted by Posted
	byID map[string]int
}

// MirrorConfig sizes the mirror.
type MirrorConfig struct {
	// CopyFraction is the share of hosted files that are copies of
	// primary-corpus doxes (the paper's finding: nearly all). The rest
	// are novel doxes seen nowhere else.
	CopyFraction float64
	// Files is how many files the mirror hosts.
	Files int
}

// DefaultMirrorConfig matches the paper's qualitative finding.
func DefaultMirrorConfig(scale float64) MirrorConfig {
	files := int(400*scale + 0.5)
	if files < 30 {
		files = 30
	}
	return MirrorConfig{CopyFraction: 0.95, Files: files}
}

// NewMirror builds a mirror re-hosting doxes from the given corpus. gen
// supplies repost mutations and novel doxes.
func NewMirror(clock *simclock.Clock, corpus *textgen.Corpus, gen *textgen.Generator, cfg MirrorConfig, seed int64) *Mirror {
	r := randutil.New(seed)
	var primaries []textgen.Doc
	for _, site := range textgen.AllSites() {
		for _, d := range corpus.Streams[site] {
			if d.IsDox() && !d.HTML {
				primaries = append(primaries, d)
			}
		}
	}
	m := &Mirror{clock: clock, byID: make(map[string]int)}
	span := simclock.Period2.End.Sub(simclock.Period1.Start)
	for i := 0; i < cfg.Files && len(primaries) > 0; i++ {
		id := fmt.Sprintf("m%06d", i)
		var doc textgen.Doc
		if randutil.Bool(r, cfg.CopyFraction) {
			src := primaries[r.Intn(len(primaries))]
			body := src.Body
			if randutil.Bool(r, 0.5) {
				body = gen.NearDuplicate(r, body)
			}
			// Mirrors re-host after the original appears.
			lag := time.Duration(1+r.Intn(21)) * simclock.Day
			doc = textgen.Doc{
				ID: id, Site: "mirror", Body: body,
				Posted: src.Posted.Add(lag),
				Truth:  src.Truth,
			}
		} else {
			v := gen.World().ExampleVictim(r)
			render := gen.Dox(r, v)
			doc = textgen.Doc{
				ID: id, Site: "mirror", Body: render.Body,
				Posted: simclock.Period1.Start.Add(time.Duration(r.Int63n(int64(span)))),
				Truth:  &textgen.Truth{Victim: v, Render: render},
			}
		}
		m.docs = append(m.docs, doc)
	}
	sort.SliceStable(m.docs, func(i, j int) bool { return m.docs[i].Posted.Before(m.docs[j].Posted) })
	for i, d := range m.docs {
		m.byID[d.ID] = i
	}
	return m
}

// DocCount returns the number of hosted files.
func (m *Mirror) DocCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.docs)
}

// MirrorEntry is one index row.
type MirrorEntry struct {
	ID     string `json:"id"`
	Posted int64  `json:"posted"`
}

// Handler serves the mirror API.
func (m *Mirror) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/index.json", func(w http.ResponseWriter, req *http.Request) {
		now := m.clock.Now()
		m.mu.RLock()
		defer m.mu.RUnlock()
		out := make([]MirrorEntry, 0, len(m.docs))
		for _, d := range m.docs {
			if d.Posted.After(now) {
				break
			}
			out = append(out, MirrorEntry{ID: d.ID, Posted: d.Posted.Unix()})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/file/", func(w http.ResponseWriter, req *http.Request) {
		id := strings.TrimPrefix(req.URL.Path, "/file/")
		now := m.clock.Now()
		m.mu.RLock()
		idx, ok := m.byID[id]
		var doc textgen.Doc
		if ok {
			doc = m.docs[idx]
		}
		m.mu.RUnlock()
		if !ok || doc.Posted.After(now) {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, doc.Body)
	})
	return mux
}
