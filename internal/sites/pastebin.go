// Package sites simulates the three text-sharing services the paper
// crawled: pastebin.com (paid scraping API), 4chan.org and 8ch.net (public
// JSON board APIs). The services are real net/http handlers driven by the
// study's virtual clock — documents become visible at their post time and
// pastebin posts disappear when "deleted" — so the crawlers exercise the
// same code paths a live deployment would: HTTP, paging, cursors, rate
// limits, retries, and 404 handling.
package sites

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"doxmeter/internal/randutil"
	"doxmeter/internal/simclock"
	"doxmeter/internal/textgen"
)

// DeletionModel gives the probability a post is removed within 30 days of
// posting, by ground-truth class. The paper measured 12.8% for dox files
// versus 4.2% for everything else (Table 3) — doxes get abuse-reported.
type DeletionModel struct {
	DoxRate   float64
	OtherRate float64
}

// DefaultDeletionModel calibrates so the *measured* Table 3 rates land on
// the paper's: the pipeline's "Dox" bucket is classifier output and
// includes ~15-20% false positives deleted at the background rate, so the
// planted ground-truth rate sits slightly above the paper's 12.8%.
func DefaultDeletionModel() DeletionModel {
	return DeletionModel{DoxRate: 0.15, OtherRate: 0.042}
}

// Pastebin simulates pastebin.com's scraping API:
//
//	GET /api_scraping.php?since=<unix>&limit=<n>  — paste metadata, oldest
//	    first, strictly after the cursor; only pastes visible at the
//	    current virtual time appear.
//	GET /api_scrape_item.php?i=<key>              — raw paste body; 404 for
//	    unknown keys, not-yet-posted pastes, and deleted pastes.
//
// Safe for concurrent use.
type Pastebin struct {
	clock *simclock.Clock

	mu       sync.RWMutex
	docs     []textgen.Doc // sorted by Posted
	byID     map[string]int
	deleteAt map[string]time.Time

	requests int64
}

// NewPastebin builds the service. Deletion times are pre-drawn from the
// model: a condemned paste vanishes a uniform 1–30 days after posting.
func NewPastebin(clock *simclock.Clock, docs []textgen.Doc, model DeletionModel, seed int64) *Pastebin {
	p := &Pastebin{
		clock:    clock,
		docs:     make([]textgen.Doc, len(docs)),
		byID:     make(map[string]int, len(docs)),
		deleteAt: make(map[string]time.Time),
	}
	copy(p.docs, docs)
	sort.SliceStable(p.docs, func(i, j int) bool { return p.docs[i].Posted.Before(p.docs[j].Posted) })
	r := randutil.New(seed)
	for i, d := range p.docs {
		p.byID[d.ID] = i
		rate := model.OtherRate
		if d.IsDox() {
			rate = model.DoxRate
		}
		if randutil.Bool(r, rate) {
			p.deleteAt[d.ID] = d.Posted.Add(time.Duration(1+r.Intn(30)) * simclock.Day)
		}
	}
	return p
}

// PasteMeta is the scrape-listing entry.
type PasteMeta struct {
	Key   string `json:"key"`
	Title string `json:"title"`
	Date  int64  `json:"date"`
	Size  int    `json:"size"`
}

// Handler returns the HTTP interface.
func (p *Pastebin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api_scraping.php", p.handleScrape)
	mux.HandleFunc("/api_scrape_item.php", p.handleItem)
	return mux
}

// queryParam returns the first value for key in a raw query string. It
// replaces req.URL.Query().Get in the request handlers: Query() builds a
// url.Values map per call, which at one item fetch per crawled document
// is pure allocation churn. Escaped values fall back to QueryUnescape;
// the plain tokens the simulated clients emit return as sub-slices.
func queryParam(rawQuery, key string) string {
	for len(rawQuery) > 0 {
		part := rawQuery
		if i := strings.IndexByte(part, '&'); i >= 0 {
			part, rawQuery = part[:i], part[i+1:]
		} else {
			rawQuery = ""
		}
		if len(part) <= len(key) || part[len(key)] != '=' || part[:len(key)] != key {
			continue
		}
		v := part[len(key)+1:]
		if strings.ContainsAny(v, "%+") {
			if u, err := url.QueryUnescape(v); err == nil {
				return u
			}
		}
		return v
	}
	return ""
}

func (p *Pastebin) handleScrape(w http.ResponseWriter, req *http.Request) {
	p.bumpRequests()
	limit := 100
	if s := queryParam(req.URL.RawQuery, "limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 || v > 1000 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = v
	}
	var since int64
	if s := queryParam(req.URL.RawQuery, "since"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			http.Error(w, "bad since", http.StatusBadRequest)
			return
		}
		since = v
	}
	now := p.clock.Now()
	p.mu.RLock()
	defer p.mu.RUnlock()
	// Binary search to the first doc in the cursor second. The cursor is
	// *inclusive* at second granularity: the boundary second's pastes are
	// re-served on the next page and clients de-duplicate by key — the
	// exclusive alternative silently loses pastes that share the boundary
	// second, and a sub-second final paste would be re-served forever.
	start := sort.Search(len(p.docs), func(i int) bool { return p.docs[i].Posted.Unix() >= since })
	out := make([]PasteMeta, 0, limit)
	for i := start; i < len(p.docs) && len(out) < limit; i++ {
		d := p.docs[i]
		if d.Posted.After(now) {
			break
		}
		out = append(out, PasteMeta{Key: d.ID, Title: d.Title, Date: d.Posted.Unix(), Size: len(d.Body)})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (p *Pastebin) handleItem(w http.ResponseWriter, req *http.Request) {
	p.bumpRequests()
	key := queryParam(req.URL.RawQuery, "i")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	now := p.clock.Now()
	p.mu.RLock()
	idx, ok := p.byID[key]
	var doc textgen.Doc
	if ok {
		doc = p.docs[idx]
	}
	delAt, condemned := p.deleteAt[key]
	p.mu.RUnlock()
	if !ok || doc.Posted.After(now) || (condemned && !now.Before(delAt)) {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, doc.Body)
}

// IsDeleted reports whether the paste is gone at the given time (used by
// the Table 3 validation and by tests; the crawler only sees 404s).
func (p *Pastebin) IsDeleted(id string, at time.Time) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	delAt, ok := p.deleteAt[id]
	return ok && !at.Before(delAt)
}

// DocCount returns the total number of hosted documents.
func (p *Pastebin) DocCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.docs)
}

// Requests returns how many API requests the service has handled.
func (p *Pastebin) Requests() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.requests
}

func (p *Pastebin) bumpRequests() {
	p.mu.Lock()
	p.requests++
	p.mu.Unlock()
}
