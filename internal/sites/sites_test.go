package sites

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
	"doxmeter/internal/textgen"
)

func testDocs(t *testing.T) *textgen.Corpus {
	t.Helper()
	return textgen.New(sim.NewWorld(sim.Default(31, 0.002))).Corpus()
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestPastebinScrapePaging(t *testing.T) {
	corpus := testDocs(t)
	docs := corpus.Streams[textgen.SitePastebin]
	clock := simclock.NewClock(simclock.Period2.End) // everything visible
	pb := NewPastebin(clock, docs, DeletionModel{}, 1)
	srv := httptest.NewServer(pb.Handler())
	defer srv.Close()

	seen := map[string]bool{}
	dupes := 0
	since := int64(0)
	for {
		var page []PasteMeta
		getJSON(t, fmt.Sprintf("%s/api_scraping.php?since=%d&limit=250", srv.URL, since), &page)
		progressed := false
		for _, m := range page {
			if seen[m.Key] {
				// The inclusive cursor re-serves the boundary second's
				// pastes; clients de-duplicate by key.
				dupes++
			} else {
				seen[m.Key] = true
				progressed = true
			}
			if m.Date < since {
				t.Fatal("page not ordered by date")
			}
		}
		if !progressed {
			break // only boundary re-serves left: stream exhausted
		}
		since = page[len(page)-1].Date
	}
	if dupes > len(docs)/10 {
		t.Fatalf("%d boundary duplicates across %d pastes", dupes, len(docs))
	}
	// The inclusive cursor never skips: every paste must be seen.
	if len(seen) != len(docs) {
		t.Fatalf("paged %d of %d pastes", len(seen), len(docs))
	}
}

func TestPastebinVisibilityFollowsClock(t *testing.T) {
	corpus := testDocs(t)
	docs := corpus.Streams[textgen.SitePastebin]
	clock := simclock.NewClock(simclock.Period1.Start)
	pb := NewPastebin(clock, docs, DeletionModel{}, 2)
	srv := httptest.NewServer(pb.Handler())
	defer srv.Close()

	var atStart []PasteMeta
	getJSON(t, srv.URL+"/api_scraping.php?since=0&limit=1000", &atStart)
	clock.Advance(14 * simclock.Day)
	var later []PasteMeta
	getJSON(t, srv.URL+"/api_scraping.php?since=0&limit=1000", &later)
	if len(later) <= len(atStart) {
		t.Fatalf("advancing the clock did not reveal posts: %d -> %d", len(atStart), len(later))
	}
	for _, m := range later {
		if time.Unix(m.Date, 0).After(clock.Now()) {
			t.Fatal("future paste visible")
		}
	}
}

func TestPastebinItemFetch(t *testing.T) {
	corpus := testDocs(t)
	docs := corpus.Streams[textgen.SitePastebin]
	clock := simclock.NewClock(simclock.Period2.End)
	pb := NewPastebin(clock, docs, DeletionModel{}, 3)
	srv := httptest.NewServer(pb.Handler())
	defer srv.Close()

	doc := docs[0]
	resp, err := http.Get(srv.URL + "/api_scrape_item.php?i=" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != doc.Body {
		t.Fatal("fetched body differs from stored document")
	}
	// Unknown key: 404.
	resp, _ = http.Get(srv.URL + "/api_scrape_item.php?i=doesnotexist")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key status = %d", resp.StatusCode)
	}
	// Missing key: 400.
	resp, _ = http.Get(srv.URL + "/api_scrape_item.php")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing key status = %d", resp.StatusCode)
	}
}

func TestPastebinBadParams(t *testing.T) {
	clock := simclock.NewClock(simclock.Period1.Start)
	pb := NewPastebin(clock, nil, DeletionModel{}, 4)
	srv := httptest.NewServer(pb.Handler())
	defer srv.Close()
	for _, q := range []string{"limit=0", "limit=9999", "limit=abc", "since=notanumber"} {
		resp, _ := http.Get(srv.URL + "/api_scraping.php?" + q)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestDeletionModelRates(t *testing.T) {
	corpus := textgen.New(sim.NewWorld(sim.Default(33, 0.04))).Corpus()
	docs := corpus.Streams[textgen.SitePastebin]
	clock := simclock.NewClock(simclock.Period2.End.Add(40 * simclock.Day))
	pb := NewPastebin(clock, docs, DefaultDeletionModel(), 5)

	horizon := clock.Now()
	var doxDel, doxTotal, otherDel, otherTotal int
	for _, d := range docs {
		if d.IsDox() {
			doxTotal++
			if pb.IsDeleted(d.ID, horizon) {
				doxDel++
			}
		} else {
			otherTotal++
			if pb.IsDeleted(d.ID, horizon) {
				otherDel++
			}
		}
	}
	doxRate := float64(doxDel) / float64(doxTotal)
	otherRate := float64(otherDel) / float64(otherTotal)
	if math.Abs(doxRate-DefaultDeletionModel().DoxRate) > 0.04 {
		t.Errorf("dox deletion rate %.3f, want ~%.3f", doxRate, DefaultDeletionModel().DoxRate)
	}
	if math.Abs(otherRate-0.042) > 0.01 {
		t.Errorf("other deletion rate %.3f, want ~0.042 (Table 3)", otherRate)
	}
	if doxRate < 2.5*otherRate {
		t.Errorf("dox deletion (%.3f) should be >3x other (%.3f)", doxRate, otherRate)
	}
}

func TestDeletedPaste404s(t *testing.T) {
	corpus := testDocs(t)
	docs := corpus.Streams[textgen.SitePastebin]
	clock := simclock.NewClock(simclock.Period2.End.Add(60 * simclock.Day))
	// Delete everything: rate 1.0 for both classes.
	pb := NewPastebin(clock, docs, DeletionModel{DoxRate: 1, OtherRate: 1}, 6)
	srv := httptest.NewServer(pb.Handler())
	defer srv.Close()
	resp, _ := http.Get(srv.URL + "/api_scrape_item.php?i=" + docs[0].ID)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted paste status = %d, want 404", resp.StatusCode)
	}
}

func TestBoardCatalogAndThreads(t *testing.T) {
	corpus := testDocs(t)
	clock := simclock.NewClock(simclock.Period2.End)
	site := NewBoardSite(clock, map[string][]textgen.Doc{
		"b":   corpus.Streams[textgen.SiteFourchanB],
		"pol": corpus.Streams[textgen.SiteFourchanPol],
	}, 7)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	if got := site.Boards(); len(got) != 2 || got[0] != "b" || got[1] != "pol" {
		t.Fatalf("boards = %v", got)
	}
	var pages []CatalogPage
	getJSON(t, srv.URL+"/b/catalog.json", &pages)
	if len(pages) == 0 {
		t.Fatal("empty catalog")
	}
	totalPosts := 0
	for _, page := range pages {
		if len(page.Threads) > threadsPerPage {
			t.Fatalf("page has %d threads", len(page.Threads))
		}
		for _, th := range page.Threads {
			var tj struct {
				Posts []ThreadPost `json:"posts"`
			}
			getJSON(t, fmt.Sprintf("%s/b/thread/%d.json", srv.URL, th.No), &tj)
			if len(tj.Posts) != th.Replies+1 {
				t.Fatalf("thread %d: %d posts vs %d replies", th.No, len(tj.Posts), th.Replies)
			}
			if tj.Posts[0].No != th.No {
				t.Fatalf("thread OP number mismatch")
			}
			totalPosts += len(tj.Posts)
			for _, p := range tj.Posts {
				if p.Com == "" {
					t.Fatal("empty post body")
				}
			}
		}
	}
	if want := len(corpus.Streams[textgen.SiteFourchanB]); totalPosts != want {
		t.Fatalf("board /b/ serves %d posts, corpus has %d", totalPosts, want)
	}
}

func TestBoardVisibilityFollowsClock(t *testing.T) {
	corpus := testDocs(t)
	clock := simclock.NewClock(simclock.Period2.Start)
	site := NewBoardSite(clock, map[string][]textgen.Doc{"pol": corpus.Streams[textgen.SiteEightchPol]}, 8)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	count := func() int {
		var pages []CatalogPage
		getJSON(t, srv.URL+"/pol/catalog.json", &pages)
		n := 0
		for _, pg := range pages {
			for _, th := range pg.Threads {
				n += th.Replies + 1
			}
		}
		return n
	}
	before := count()
	clock.Advance(25 * simclock.Day)
	after := count()
	if after <= before {
		t.Fatalf("catalog did not grow with clock: %d -> %d", before, after)
	}
}

func TestBoardErrors(t *testing.T) {
	clock := simclock.NewClock(simclock.Period2.Start)
	site := NewBoardSite(clock, map[string][]textgen.Doc{"b": nil}, 9)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()
	for path, want := range map[string]int{
		"/nosuch/catalog.json":    http.StatusNotFound,
		"/b/thread/999.json":      http.StatusNotFound,
		"/b/thread/abc.json":      http.StatusBadRequest,
		"/b/random":               http.StatusNotFound,
		"/":                       http.StatusNotFound,
		"/b/thread/12/extra.json": http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestDocIDForPost(t *testing.T) {
	corpus := testDocs(t)
	clock := simclock.NewClock(simclock.Period2.End)
	docs := corpus.Streams[textgen.SiteEightchBapho]
	site := NewBoardSite(clock, map[string][]textgen.Doc{"baphomet": docs}, 10)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()
	var pages []CatalogPage
	getJSON(t, srv.URL+"/baphomet/catalog.json", &pages)
	no := pages[0].Threads[0].No
	id, ok := site.DocIDForPost("baphomet", no)
	if !ok || id == "" {
		t.Fatalf("DocIDForPost(%d) = %q,%v", no, id, ok)
	}
	if _, ok := site.DocIDForPost("baphomet", -1); ok {
		t.Fatal("bogus post number resolved")
	}
}
