package sites

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"doxmeter/internal/randutil"
	"doxmeter/internal/simclock"
	"doxmeter/internal/textgen"
)

// BoardSite simulates a 4chan/8ch-style imageboard JSON API:
//
//	GET /<board>/catalog.json        — pages of thread stubs with
//	    last_modified timestamps, newest activity first.
//	GET /<board>/thread/<no>.json    — the posts of one thread; post
//	    bodies are HTML in the "com" field, exactly as the real APIs
//	    serve them.
//
// Documents are grouped into threads at construction; posts become visible
// as the virtual clock passes their timestamps. Safe for concurrent use.
type BoardSite struct {
	clock  *simclock.Clock
	mu     sync.RWMutex
	boards map[string][]*thread
}

type thread struct {
	no    int64
	posts []boardPost // sorted by time
}

type boardPost struct {
	no     int64
	posted time.Time
	com    string
	docID  string
}

// CatalogThread is one stub in catalog.json.
type CatalogThread struct {
	No           int64 `json:"no"`
	LastModified int64 `json:"last_modified"`
	Replies      int   `json:"replies"`
}

// CatalogPage groups thread stubs.
type CatalogPage struct {
	Page    int             `json:"page"`
	Threads []CatalogThread `json:"threads"`
}

// ThreadPost is one post in thread JSON.
type ThreadPost struct {
	No   int64  `json:"no"`
	Time int64  `json:"time"`
	Name string `json:"name"`
	Com  string `json:"com"`
}

// NewBoardSite builds a site hosting the given per-board document streams.
// Documents are chunked chronologically into threads of 20–80 posts.
func NewBoardSite(clock *simclock.Clock, boards map[string][]textgen.Doc, seed int64) *BoardSite {
	s := &BoardSite{clock: clock, boards: make(map[string][]*thread, len(boards))}
	r := randutil.New(seed)
	postNo := int64(10_000_000)
	// Deterministic board order for post numbering.
	names := make([]string, 0, len(boards))
	for name := range boards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		docs := make([]textgen.Doc, len(boards[name]))
		copy(docs, boards[name])
		sort.SliceStable(docs, func(i, j int) bool { return docs[i].Posted.Before(docs[j].Posted) })
		var threads []*thread
		i := 0
		for i < len(docs) {
			size := 20 + r.Intn(61)
			if i+size > len(docs) {
				size = len(docs) - i
			}
			th := &thread{}
			for j := 0; j < size; j++ {
				postNo++
				if j == 0 {
					th.no = postNo
				}
				d := docs[i+j]
				th.posts = append(th.posts, boardPost{no: postNo, posted: d.Posted, com: d.Body, docID: d.ID})
			}
			threads = append(threads, th)
			i += size
		}
		s.boards[name] = threads
	}
	return s
}

// Boards lists the hosted board names, sorted.
func (s *BoardSite) Boards() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.boards))
	for n := range s.boards {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler returns the HTTP interface.
func (s *BoardSite) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		parts := strings.Split(strings.Trim(req.URL.Path, "/"), "/")
		switch {
		case len(parts) == 2 && parts[1] == "catalog.json":
			s.handleCatalog(w, req, parts[0])
		case len(parts) == 3 && parts[1] == "thread" && strings.HasSuffix(parts[2], ".json"):
			no, err := strconv.ParseInt(strings.TrimSuffix(parts[2], ".json"), 10, 64)
			if err != nil {
				http.Error(w, "bad thread number", http.StatusBadRequest)
				return
			}
			s.handleThread(w, req, parts[0], no)
		default:
			http.NotFound(w, req)
		}
	})
}

const threadsPerPage = 15

func (s *BoardSite) handleCatalog(w http.ResponseWriter, req *http.Request, board string) {
	s.mu.RLock()
	threads, ok := s.boards[board]
	s.mu.RUnlock()
	if !ok {
		http.NotFound(w, req)
		return
	}
	now := s.clock.Now()
	var stubs []CatalogThread
	for _, th := range threads {
		visible := th.visibleCount(now)
		if visible == 0 {
			continue
		}
		stubs = append(stubs, CatalogThread{
			No:           th.no,
			LastModified: th.posts[visible-1].posted.Unix(),
			Replies:      visible - 1,
		})
	}
	// Newest activity first, like real catalogs.
	sort.Slice(stubs, func(i, j int) bool { return stubs[i].LastModified > stubs[j].LastModified })
	pages := make([]CatalogPage, 0, len(stubs)/threadsPerPage+1)
	for i := 0; i < len(stubs); i += threadsPerPage {
		end := i + threadsPerPage
		if end > len(stubs) {
			end = len(stubs)
		}
		pages = append(pages, CatalogPage{Page: i/threadsPerPage + 1, Threads: stubs[i:end]})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(pages)
}

func (s *BoardSite) handleThread(w http.ResponseWriter, req *http.Request, board string, no int64) {
	s.mu.RLock()
	threads, ok := s.boards[board]
	s.mu.RUnlock()
	if !ok {
		http.NotFound(w, req)
		return
	}
	now := s.clock.Now()
	for _, th := range threads {
		if th.no != no {
			continue
		}
		visible := th.visibleCount(now)
		if visible == 0 {
			break
		}
		out := struct {
			Posts []ThreadPost `json:"posts"`
		}{}
		for _, p := range th.posts[:visible] {
			out.Posts = append(out.Posts, ThreadPost{No: p.no, Time: p.posted.Unix(), Name: "Anonymous", Com: p.com})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
		return
	}
	http.NotFound(w, req)
}

// visibleCount returns how many of the thread's time-sorted posts exist at
// the given instant.
func (th *thread) visibleCount(now time.Time) int {
	return sort.Search(len(th.posts), func(i int) bool { return th.posts[i].posted.After(now) })
}

// DocIDForPost maps a board post number back to its document ID (test and
// ground-truth plumbing; the crawler never uses it).
func (s *BoardSite) DocIDForPost(board string, no int64) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, th := range s.boards[board] {
		for _, p := range th.posts {
			if p.no == no {
				return p.docID, true
			}
		}
	}
	return "", false
}
