// Package randutil provides deterministic, seedable randomness helpers used
// throughout the simulation substrate. Every generator in this repository
// draws from an explicit *rand.Rand so that whole-study runs are exactly
// reproducible from a single seed.
package randutil

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
)

// New returns a rand.Rand seeded with the given seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// rngPool recycles rand.Rand instances for Get/Put. A math/rand source is
// ~5KB of state, so call paths that derive a short-lived RNG per item
// (synthetic control accounts, page renders) would otherwise allocate it
// over and over.
var rngPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(0)) }}

// Get returns a pooled rand.Rand reseeded to seed. Reseeding restores the
// exact state a fresh New(seed) would have, so the value stream is
// identical — without the per-call source allocation. Hand the RNG back
// with Put once no reference to it remains.
func Get(seed int64) *rand.Rand {
	r := rngPool.Get().(*rand.Rand)
	r.Seed(seed)
	return r
}

// Put returns a Get RNG to the pool.
func Put(r *rand.Rand) { rngPool.Put(r) }

// Derive returns a new RNG deterministically derived from a parent RNG and a
// label. It lets independent subsystems share one master seed without
// consuming interleaved values from a single stream (which would make the
// output of one subsystem depend on the call order of another).
func Derive(r *rand.Rand, label string) *rand.Rand {
	var h int64 = 1469598103934665603
	for _, c := range label {
		h ^= int64(c)
		h *= 1099511628211
	}
	return New(h ^ r.Int63())
}

// Bool returns true with probability p.
func Bool(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
func IntRange(r *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Pick returns a uniformly random element of items. It panics when items is
// empty, mirroring the contract of rand.Intn.
func Pick[T any](r *rand.Rand, items []T) T {
	return items[r.Intn(len(items))]
}

// PickN returns n distinct elements sampled without replacement. When
// n >= len(items) a shuffled copy of all items is returned.
func PickN[T any](r *rand.Rand, items []T, n int) []T {
	idx := r.Perm(len(items))
	if n > len(items) {
		n = len(items)
	}
	out := make([]T, 0, n)
	for _, i := range idx[:n] {
		out = append(out, items[i])
	}
	return out
}

// Shuffle permutes items in place.
func Shuffle[T any](r *rand.Rand, items []T) {
	r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
}

// Weighted selects an index according to the provided non-negative weights.
// A zero or negative total weight selects index 0.
func Weighted(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// WeightedString maps a weight table of label->weight onto a choice. Map
// iteration order is randomized by the runtime, so the table is flattened in
// sorted-key order first to keep selection deterministic.
func WeightedString(r *rand.Rand, table map[string]float64) string {
	keys := sortedKeys(table)
	weights := make([]float64, len(keys))
	for i, k := range keys {
		weights[i] = table[k]
	}
	return keys[Weighted(r, weights)]
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: tables are tiny and this avoids an import.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// NormalClamped draws from a normal distribution with the given mean and
// standard deviation, clamped to [lo, hi].
func NormalClamped(r *rand.Rand, mean, stddev, lo, hi float64) float64 {
	v := r.NormFloat64()*stddev + mean
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// SkewedAge samples an age distribution matching the paper's victim
// population: clustered in the late teens / early twenties (mean 21.7) with a
// long tail up to the seventies and a floor at 10.
func SkewedAge(r *rand.Rand) int {
	// Mixture: 85% young core, 15% broad tail.
	if r.Float64() < 0.85 {
		return int(NormalClamped(r, 20, 4.5, 10, 45))
	}
	return int(NormalClamped(r, 34, 14, 10, 74))
}

// Digits returns a string of n random decimal digits.
func Digits(r *rand.Rand, n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte('0' + r.Intn(10))
	}
	return string(buf)
}

// LowerWord returns a random lowercase ASCII word of length n.
func LowerWord(r *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = letters[r.Intn(len(letters))]
	}
	return string(buf)
}

// HexString returns n random lowercase hex characters.
func HexString(r *rand.Rand, n int) string {
	const hexdig = "0123456789abcdef"
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = hexdig[r.Intn(len(hexdig))]
	}
	return string(buf)
}

// Phone returns a plausible NANP-style phone number, in one of several
// formats doxers actually use.
func Phone(r *rand.Rand) string {
	return string(AppendPhone(r, nil))
}

// AppendDigits appends n random decimal digits to dst. Same draw sequence
// as Digits, without the intermediate buffer and string.
func AppendDigits(r *rand.Rand, dst []byte, n int) []byte {
	for i := 0; i < n; i++ {
		dst = append(dst, byte('0'+r.Intn(10)))
	}
	return dst
}

// AppendLowerWord appends a random lowercase ASCII word of length n to dst.
// Same draw sequence as LowerWord.
func AppendLowerWord(r *rand.Rand, dst []byte, n int) []byte {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i := 0; i < n; i++ {
		dst = append(dst, letters[r.Intn(len(letters))])
	}
	return dst
}

// AppendHexString appends n random lowercase hex characters to dst. Same
// draw sequence as HexString.
func AppendHexString(r *rand.Rand, dst []byte, n int) []byte {
	const hexdig = "0123456789abcdef"
	for i := 0; i < n; i++ {
		dst = append(dst, hexdig[r.Intn(len(hexdig))])
	}
	return dst
}

// AppendPad appends v zero-padded to at least width digits (fmt's %0*d for
// non-negative v) without going through the fmt machinery.
func AppendPad(dst []byte, v, width int) []byte {
	digits := 1
	for x := v; x >= 10; x /= 10 {
		digits++
	}
	for ; width > digits; width-- {
		dst = append(dst, '0')
	}
	return strconv.AppendInt(dst, int64(v), 10)
}

// AppendPhone appends a Phone-formatted number to dst, drawing the same
// RNG sequence as Phone (area, exchange, line, then the format selector).
func AppendPhone(r *rand.Rand, dst []byte) []byte {
	area := 201 + r.Intn(780)
	mid := 200 + r.Intn(799)
	last := r.Intn(10000)
	switch r.Intn(4) {
	case 0:
		dst = append(dst, '(')
		dst = AppendPad(dst, area, 3)
		dst = append(dst, ')', ' ')
		dst = AppendPad(dst, mid, 3)
		dst = append(dst, '-')
		return AppendPad(dst, last, 4)
	case 1:
		dst = AppendPad(dst, area, 3)
		dst = append(dst, '-')
		dst = AppendPad(dst, mid, 3)
		dst = append(dst, '-')
		return AppendPad(dst, last, 4)
	case 2:
		dst = append(dst, '+', '1')
		dst = AppendPad(dst, area, 3)
		dst = AppendPad(dst, mid, 3)
		return AppendPad(dst, last, 4)
	default:
		dst = AppendPad(dst, area, 3)
		dst = append(dst, '.')
		dst = AppendPad(dst, mid, 3)
		dst = append(dst, '.')
		return AppendPad(dst, last, 4)
	}
}

// Poisson draws from a Poisson distribution with the given mean using
// Knuth's method; adequate for the small means used in comment generation.
func Poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	target := math.Exp(-mean)
	l := 1.0
	k := 0
	for {
		l *= r.Float64()
		if l <= target {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}
