package randutil

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	a := Derive(parent, "alpha")
	parent2 := New(7)
	b := Derive(parent2, "alpha")
	for i := 0; i < 50; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("derived streams with same label diverged at %d", i)
		}
	}
	// Different labels must give different streams.
	c := Derive(New(7), "alpha")
	d := Derive(New(7), "beta")
	same := 0
	for i := 0; i < 20; i++ {
		if c.Int63() == d.Int63() {
			same++
		}
	}
	if same == 20 {
		t.Fatal("derive with different labels produced identical streams")
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if Bool(r, 0) {
			t.Fatal("Bool(0) returned true")
		}
		if !Bool(r, 1) {
			t.Fatal("Bool(1) returned false")
		}
		if Bool(r, -0.5) {
			t.Fatal("Bool(negative) returned true")
		}
		if !Bool(r, 1.5) {
			t.Fatal("Bool(>1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(2)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if Bool(r, 0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency = %.3f, want ~0.30", frac)
	}
}

func TestIntRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := IntRange(r, 5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d out of range", v)
		}
	}
	if got := IntRange(r, 4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d, want 4", got)
	}
	if got := IntRange(r, 9, 5); got != 9 {
		t.Fatalf("degenerate IntRange(9,5) = %d, want lo", got)
	}
}

func TestIntRangeProperty(t *testing.T) {
	r := New(11)
	f := func(lo int16, span uint8) bool {
		l := int(lo)
		h := l + int(span)
		v := IntRange(r, l, h)
		return v >= l && v <= h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPickAndPickN(t *testing.T) {
	r := New(4)
	items := []string{"a", "b", "c", "d"}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[Pick(r, items)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Pick over 200 draws hit %d of 4 items", len(seen))
	}
	sub := PickN(r, items, 2)
	if len(sub) != 2 {
		t.Fatalf("PickN(2) returned %d items", len(sub))
	}
	if sub[0] == sub[1] {
		t.Fatal("PickN returned duplicates")
	}
	all := PickN(r, items, 10)
	if len(all) != 4 {
		t.Fatalf("PickN(n>len) returned %d items, want all 4", len(all))
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(5)
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	Shuffle(r, items)
	for _, v := range items {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle changed multiset: sum=%d", sum)
	}
}

func TestWeighted(t *testing.T) {
	r := New(6)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[Weighted(r, []float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("weighted ordering violated: %v", counts)
	}
	frac2 := float64(counts[2]) / 30000
	if frac2 < 0.65 || frac2 > 0.75 {
		t.Fatalf("weight-7 frequency = %.3f, want ~0.70", frac2)
	}
	if got := Weighted(r, []float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights chose %d, want 0", got)
	}
	if got := Weighted(r, []float64{-1, 0, 3}); got != 2 {
		t.Fatalf("negative weights should be skipped, got %d", got)
	}
}

func TestWeightedStringDeterministicOverKeys(t *testing.T) {
	table := map[string]float64{"justice": 1, "revenge": 1, "political": 0, "competitive": 0}
	a := WeightedString(New(9), table)
	b := WeightedString(New(9), table)
	if a != b {
		t.Fatalf("WeightedString not deterministic: %q vs %q", a, b)
	}
	if table[a] == 0 {
		t.Fatalf("WeightedString chose zero-weight key %q", a)
	}
}

func TestNormalClamped(t *testing.T) {
	r := New(8)
	for i := 0; i < 5000; i++ {
		v := NormalClamped(r, 20, 30, 0, 40)
		if v < 0 || v > 40 {
			t.Fatalf("NormalClamped out of bounds: %f", v)
		}
	}
}

func TestSkewedAge(t *testing.T) {
	r := New(10)
	n := 20000
	sum := 0
	min, max := 200, 0
	for i := 0; i < n; i++ {
		a := SkewedAge(r)
		if a < 10 || a > 74 {
			t.Fatalf("age %d outside paper range [10,74]", a)
		}
		sum += a
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	mean := float64(sum) / float64(n)
	if mean < 19.5 || mean < 19 || mean > 24.5 {
		t.Fatalf("mean age = %.1f, want ~21.7 per paper Table 5", mean)
	}
	if min > 12 || max < 60 {
		t.Fatalf("age range [%d,%d] lacks the paper's spread", min, max)
	}
}

func TestDigitsAndWords(t *testing.T) {
	r := New(12)
	d := Digits(r, 9)
	if len(d) != 9 {
		t.Fatalf("Digits length %d", len(d))
	}
	for _, c := range d {
		if c < '0' || c > '9' {
			t.Fatalf("non-digit %q", c)
		}
	}
	w := LowerWord(r, 7)
	if len(w) != 7 || strings.ToLower(w) != w {
		t.Fatalf("LowerWord bad output %q", w)
	}
	h := HexString(r, 16)
	if len(h) != 16 {
		t.Fatalf("HexString length %d", len(h))
	}
	for _, c := range h {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("non-hex %q", c)
		}
	}
}

func TestPhoneFormats(t *testing.T) {
	r := New(13)
	for i := 0; i < 200; i++ {
		p := Phone(r)
		digits := 0
		for _, c := range p {
			if c >= '0' && c <= '9' {
				digits++
			}
		}
		if digits != 10 && digits != 11 {
			t.Fatalf("phone %q has %d digits", p, digits)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(14)
	n := 20000
	total := 0
	for i := 0; i < n; i++ {
		total += Poisson(r, 3.0)
	}
	mean := float64(total) / float64(n)
	if math.Abs(mean-3.0) > 0.15 {
		t.Fatalf("Poisson(3) sample mean = %.3f", mean)
	}
	if Poisson(r, 0) != 0 || Poisson(r, -1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}
