package sim

// Data banks for identity synthesis. Entries are generic and chosen for
// realism of *shape* (lengths, casing, token structure) — the extractor and
// classifier only ever see the rendered text, never these tables.

var maleFirstNames = []string{
	"James", "John", "Robert", "Michael", "William", "David", "Richard",
	"Joseph", "Thomas", "Charles", "Christopher", "Daniel", "Matthew",
	"Anthony", "Mark", "Donald", "Steven", "Paul", "Andrew", "Joshua",
	"Kenneth", "Kevin", "Brian", "George", "Timothy", "Ronald", "Jason",
	"Edward", "Jeffrey", "Ryan", "Jacob", "Gary", "Nicholas", "Eric",
	"Jonathan", "Stephen", "Larry", "Justin", "Scott", "Brandon", "Benjamin",
	"Samuel", "Gregory", "Alexander", "Patrick", "Frank", "Raymond", "Jack",
	"Dennis", "Jerry", "Tyler", "Aaron", "Jose", "Adam", "Nathan", "Henry",
	"Zachary", "Douglas", "Peter", "Kyle", "Noah", "Ethan", "Jeremy",
	"Christian", "Walter", "Keith", "Austin", "Roger", "Terry", "Sean",
	"Gerald", "Carl", "Dylan", "Harold", "Jordan", "Jesse", "Bryan",
	"Lawrence", "Arthur", "Gabriel", "Bruce", "Logan", "Billy", "Joe",
	"Alan", "Juan", "Elijah", "Willie", "Albert", "Wayne", "Randy",
	"Mason", "Vincent", "Liam", "Roy", "Bobby", "Caleb", "Bradley",
}

var femaleFirstNames = []string{
	"Mary", "Patricia", "Jennifer", "Linda", "Elizabeth", "Barbara", "Susan",
	"Jessica", "Sarah", "Karen", "Lisa", "Nancy", "Betty", "Sandra",
	"Margaret", "Ashley", "Kimberly", "Emily", "Donna", "Michelle", "Carol",
	"Amanda", "Melissa", "Deborah", "Stephanie", "Rebecca", "Sharon", "Laura",
	"Cynthia", "Dorothy", "Amy", "Kathleen", "Angela", "Shirley", "Emma",
	"Brenda", "Pamela", "Nicole", "Anna", "Samantha", "Katherine", "Christine",
	"Debra", "Rachel", "Carolyn", "Janet", "Maria", "Olivia", "Heather",
	"Helen", "Catherine", "Diane", "Julie", "Victoria", "Joyce", "Lauren",
	"Kelly", "Christina", "Ruth", "Joan", "Virginia", "Judith", "Evelyn",
	"Hannah", "Andrea", "Megan", "Cheryl", "Jacqueline", "Madison", "Teresa",
	"Abigail", "Sophia", "Martha", "Sara", "Gloria", "Janice", "Kathryn",
	"Ann", "Isabella", "Judy", "Charlotte", "Julia", "Grace", "Amber",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
	"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
	"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
	"Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
	"Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
	"Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
	"Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
	"Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
	"Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
	"Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
	"Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
}

var streetNames = []string{
	"Maple", "Oak", "Cedar", "Pine", "Elm", "Washington", "Lake", "Hill",
	"Walnut", "Spring", "North", "Ridge", "Church", "Willow", "Park",
	"Sunset", "Railroad", "Jackson", "Highland", "Mill", "Forest", "River",
	"Meadow", "Chestnut", "Franklin", "Jefferson", "Dogwood", "Hickory",
	"Valley", "Prospect", "Birch", "Cherry", "Lincoln", "Madison", "Grant",
}

var streetSuffixes = []string{"St", "Ave", "Dr", "Rd", "Ln", "Blvd", "Ct", "Way", "Pl"}

var ispNames = []string{
	"Comcast Cable", "Charter Communications", "AT&T U-verse", "Verizon Fios",
	"Time Warner Cable", "Cox Communications", "CenturyLink", "Frontier",
	"Optimum Online", "Windstream", "Mediacom", "Suddenlink", "WOW Internet",
	"RCN", "Cable One", "EarthLink", "Sonic.net", "Google Fiber",
	"British Telecom", "Virgin Media", "Rogers", "Bell Canada", "Telstra",
	"Deutsche Telekom", "Ziggo", "Telia", "Orange", "Vivo",
}

var emailDomains = []string{
	"gmail.com", "yahoo.com", "hotmail.com", "aol.com", "outlook.com",
	"icloud.com", "live.com", "mail.com", "protonmail.com", "yandex.com",
	"gmx.com", "zoho.com", "comcast.net", "verizon.net", "att.net",
}

var schoolNames = []string{
	"Lincoln High School", "Washington High School", "Roosevelt Middle School",
	"Jefferson High School", "Central High School", "East Side High School",
	"Riverside Community College", "Kennedy High School", "Franklin Academy",
	"Northview High School", "Westfield High School", "Oakwood High School",
	"State University", "City College", "Valley Technical Institute",
	"Hamilton High School", "Monroe High School", "Springfield High School",
}

// aliasAdjectives and aliasNouns build screen names.
var aliasAdjectives = []string{
	"dark", "shadow", "toxic", "silent", "frozen", "crimson", "savage",
	"ghost", "cyber", "neon", "lucid", "rogue", "void", "primal", "static",
	"feral", "grim", "hollow", "iron", "jaded", "killer", "lone", "mad",
	"nova", "omega", "phantom", "quick", "rabid", "slick", "turbo",
	"ultra", "venom", "wicked", "xeno", "zero", "blaze", "chaos", "drift",
}

var aliasNouns = []string{
	"wolf", "sniper", "reaper", "blade", "hawk", "viper", "storm", "raven",
	"dragon", "knight", "hunter", "demon", "angel", "ninja", "samurai",
	"wizard", "phoenix", "tiger", "cobra", "falcon", "ghost", "spectre",
	"rider", "slayer", "smoke", "spider", "titan", "widow", "wraith",
	"jester", "joker", "king", "lord", "master", "pilot", "punk", "rat",
}

// gamingSites deliberately excludes twitch.tv: Twitch is one of the six
// tracked OSNs, and a community line like "twitch.tv/alias" would collide
// with the OSN URL extractor.
var gamingSites = []string{
	"steamcommunity.com", "gamebattles.com", "minecraftforum.net", "speedrun.com",
	"osu.ppy.sh", "battlelog.battlefield.com", "op.gg", "xboxgamertag.com",
	"psnprofiles.com", "faceit.com", "esea.net", "smashboards.com",
	"curseforge.com", "roblox.com", "runescape.com",
}

var hackingSites = []string{
	"hackforums.net", "nulled.io", "raidforums.io", "exploit.in",
	"0x00sec.org", "greysec.net", "cracked.to", "leakforums.net",
	"binrev.com", "evilzone.org",
}

var celebrityRoles = []string{
	"twitch streamer with 2M followers", "presidential candidate",
	"hollywood actor", "CEO of a Fortune 500 company", "famous youtuber",
	"pro esports player", "reality TV personality", "platinum recording artist",
	"NBA player", "senator",
}

// crewNames label doxing teams; they appear in dox "credits" sections.
var crewNames = []string{
	"GhostSquad", "NullCrew", "DoxDivision", "TeamVoid", "CrewZero",
	"ShadowSyndicate", "BlackoutBrigade", "SpectreUnit", "KaosKlan",
	"VenomVault", "IronOrder", "GrimGuild", "EchoSect", "RogueLegion",
	"PhantomCell", "StaticStorm", "OmegaOutfit", "NovaNet", "FeralFaction",
	"LucidLords", "PrimalPack", "HollowHive", "JadedJackals", "WickedWing",
	"TurboTribe", "XenoXube", "DriftDen", "BlazeBattalion", "ChaosCartel",
	"MadMob",
}
