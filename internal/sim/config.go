package sim

import "doxmeter/internal/netid"

// Config calibrates the synthetic world to the paper's reported statistics.
// Every number here is traceable to a table or sentence in the paper; the
// experiments then *measure* these quantities back out through the real
// pipeline rather than echoing them.
type Config struct {
	Seed int64

	// Scale multiplies all corpus volumes. The paper processed 1,737,887
	// files; Scale=1 reproduces that, Scale=0.05 gives a laptop-scale run
	// (~87k files) whose percentages match. Victim and dox counts scale
	// with it; the doxer population does not (the paper's 251 credited
	// aliases are a property of the community, not of corpus size).
	Scale float64

	// Corpus volumes at Scale=1, per source and period (paper Figure 1 and
	// Table 4: 484,185 period-1 files, 1,253,702 period-2 files).
	PastebinP1   int
	PastebinP2   int
	FourchanB    int
	FourchanPol  int
	EightchPol   int
	EightchBapho int

	// Dox counts at Scale=1 (Table 4: 2,976 period-1 doxes, 2,554 period-2).
	DoxesP1 int
	DoxesP2 int

	// Duplicate structure (§3.1.4: 214 exact duplicates, 788 near
	// duplicates, 1,002 total of 5,530).
	ExactDupFraction float64 // fraction of dox posts that are exact reposts
	NearDupFraction  float64 // fraction that are near-duplicate reposts

	// Training-set sizes (§3.1.2: 749 positive, 4,220 negative).
	TrainPositives int
	TrainNegatives int

	// Demographics (Table 5).
	PFemale float64
	PMale   float64
	POther  float64
	PUSA    float64 // of victims with a listed address

	// Sensitive-category inclusion probabilities (Table 6, of 464 labeled).
	PAddress    float64
	PZip        float64 // conditional on address
	PPhone      float64
	PFamily     float64
	PEmail      float64
	PDOB        float64
	PSchool     float64
	PUsernames  float64
	PISP        float64
	PIP         float64
	PPasswords  float64
	PPhysical   float64
	PCriminal   float64
	PSSN        float64
	PCreditCard float64
	PFinancial  float64

	// Community membership (Table 7, of 464 labeled).
	PGamer     float64
	PHacker    float64
	PCelebrity float64

	// Stated motivation (Table 8, of 464 labeled).
	PMotiveCompetitive float64
	PMotiveRevenge     float64
	PMotiveJustice     float64
	PMotivePolitical   float64

	// OSN inclusion rates for wild doxes (Table 9) and for the richer
	// dox-for-hire proof-of-work files used as training data (Table 2).
	WildOSNRates map[netid.Network]float64
	RichOSNRates map[netid.Network]float64

	// Geo-validation mix (§4.1: of 36 doxes with both IP and postal
	// address — 4 exact, 28 same-region, 1 adjacent, 3 far).
	PGeoExact    float64
	PGeoSame     float64
	PGeoAdjacent float64

	// Doxer community (§5.3.2: 251 credited aliases, 213 with Twitter
	// handles, 34 of those private; crews sized so 61 doxers sit in
	// cliques of ≥4 with a maximum clique of 11).
	NumDoxers          int
	TwitterHandleRate  float64
	PrivateTwitterRate float64
	CrewSizes          []int
}

// Default returns the paper-calibrated configuration at the given scale.
func Default(seed int64, scale float64) Config {
	return Config{
		Seed:  seed,
		Scale: scale,

		PastebinP1:   484185,
		PastebinP2:   967800, // 1.45M pastebin total (Figure 1) minus period 1
		FourchanB:    138000,
		FourchanPol:  144000,
		EightchPol:   3400,
		EightchBapho: 512,

		DoxesP1: 2976,
		DoxesP2: 2554,

		ExactDupFraction: 214.0 / 5530.0,
		NearDupFraction:  788.0 / 5530.0,

		TrainPositives: 749,
		TrainNegatives: 4220,

		PFemale: 0.163,
		PMale:   0.822,
		POther:  0.004,
		PUSA:    0.645,

		PAddress:    0.901,
		PZip:        0.543, // 48.9% overall / 90.1% with address
		PPhone:      0.612,
		PFamily:     0.506,
		PEmail:      0.537,
		PDOB:        0.334,
		PSchool:     0.103,
		PUsernames:  0.401,
		PISP:        0.216,
		PIP:         0.403,
		PPasswords:  0.086,
		PPhysical:   0.026,
		PCriminal:   0.013,
		PSSN:        0.026,
		PCreditCard: 0.043,
		PFinancial:  0.088,

		PGamer:     0.114,
		PHacker:    0.037,
		PCelebrity: 0.011,

		PMotiveCompetitive: 0.015,
		PMotiveRevenge:     0.112,
		PMotiveJustice:     0.147,
		PMotivePolitical:   0.011,

		WildOSNRates: map[netid.Network]float64{
			netid.Facebook:   0.178,
			netid.GooglePlus: 0.073,
			netid.Twitter:    0.081,
			netid.Instagram:  0.075,
			netid.YouTube:    0.057,
			netid.Twitch:     0.033,
			netid.Skype:      0.12,
		},
		RichOSNRates: map[netid.Network]float64{
			netid.Facebook:   0.480,
			netid.GooglePlus: 0.184,
			netid.Twitter:    0.344,
			netid.Instagram:  0.112,
			netid.YouTube:    0.400,
			netid.Twitch:     0.096,
			netid.Skype:      0.552,
		},

		PGeoExact:    4.0 / 36.0,
		PGeoSame:     28.0 / 36.0,
		PGeoAdjacent: 1.0 / 36.0,

		NumDoxers:          251,
		TwitterHandleRate:  213.0 / 251.0,
		PrivateTwitterRate: 34.0 / 213.0,
		// 11+9+8+7+6+6+5+5+4 = 61 doxers in cliques of >=4 (Figure 2).
		CrewSizes: []int{11, 9, 8, 7, 6, 6, 5, 5, 4, 3, 3, 3, 2, 2, 2, 2},
	}
}

// ScaledPastebinP1 and friends return the per-source corpus volumes after
// applying Scale, with a floor of 1 so tiny scales still exercise every
// source.
func (c Config) ScaledPastebinP1() int   { return scaleCount(c.PastebinP1, c.Scale) }
func (c Config) ScaledPastebinP2() int   { return scaleCount(c.PastebinP2, c.Scale) }
func (c Config) ScaledFourchanB() int    { return scaleCount(c.FourchanB, c.Scale) }
func (c Config) ScaledFourchanPol() int  { return scaleCount(c.FourchanPol, c.Scale) }
func (c Config) ScaledEightchPol() int   { return scaleCount(c.EightchPol, c.Scale) }
func (c Config) ScaledEightchBapho() int { return scaleCount(c.EightchBapho, c.Scale) }
func (c Config) ScaledDoxesP1() int      { return scaleCount(c.DoxesP1, c.Scale) }
func (c Config) ScaledDoxesP2() int      { return scaleCount(c.DoxesP2, c.Scale) }

// ScaledTotalFiles is the expected total corpus size after scaling.
func (c Config) ScaledTotalFiles() int {
	return c.ScaledPastebinP1() + c.ScaledPastebinP2() + c.ScaledFourchanB() +
		c.ScaledFourchanPol() + c.ScaledEightchPol() + c.ScaledEightchBapho()
}

func scaleCount(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}
