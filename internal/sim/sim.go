// Package sim is the ground-truth world model behind the synthetic study.
//
// The paper measured real people doxed on real paste sites. We cannot (and
// must not) use real victim data, so this package synthesizes a population
// of victims with the demographic and content structure the paper reports,
// plus the doxer community that attacks them. Everything downstream — the
// corpus generator, the simulated sites and social networks, the pipeline,
// and the benchmarks — is derived from a World, making every experiment
// deterministic and every measured number checkable against known ground
// truth.
package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"doxmeter/internal/geo"
	"doxmeter/internal/netid"
	"doxmeter/internal/randutil"
)

// Gender is the victim gender recorded in dox files (Table 5).
type Gender int

// Genders, including Unstated for doxes with no gender marker.
const (
	GenderUnstated Gender = iota
	GenderMale
	GenderFemale
	GenderOther
)

// String implements fmt.Stringer.
func (g Gender) String() string {
	switch g {
	case GenderMale:
		return "Male"
	case GenderFemale:
		return "Female"
	case GenderOther:
		return "Other"
	default:
		return "Unstated"
	}
}

// Community classifies the victim per the paper's §5.2.3 rules.
type Community int

// Communities. None covers the 75%+ of victims the paper could not classify.
const (
	CommunityNone Community = iota
	CommunityGamer
	CommunityHacker
	CommunityCelebrity
)

// String implements fmt.Stringer.
func (c Community) String() string {
	switch c {
	case CommunityGamer:
		return "Gamer"
	case CommunityHacker:
		return "Hacker"
	case CommunityCelebrity:
		return "Celebrity"
	default:
		return "None"
	}
}

// Motive is the doxer's stated motivation (Table 8).
type Motive int

// Motives. None covers the ~72% of doxes with no stated motivation.
const (
	MotiveNone Motive = iota
	MotiveCompetitive
	MotiveRevenge
	MotiveJustice
	MotivePolitical
)

// String implements fmt.Stringer.
func (m Motive) String() string {
	switch m {
	case MotiveCompetitive:
		return "Competitive"
	case MotiveRevenge:
		return "Revenge"
	case MotiveJustice:
		return "Justice"
	case MotivePolitical:
		return "Political"
	default:
		return "None"
	}
}

// SensitiveFields records which categories of information a victim's dox
// discloses (Table 6). Decided once per victim so that reposted duplicates
// agree, as the paper observed.
type SensitiveFields struct {
	Address    bool
	Zip        bool
	Phone      bool
	Family     bool
	Email      bool
	DOB        bool
	School     bool
	Usernames  bool
	ISP        bool
	IP         bool
	Passwords  bool
	Physical   bool
	Criminal   bool
	SSN        bool
	CreditCard bool
	Financial  bool
}

// SiteAccount is a non-OSN web community account (gaming or hacking site)
// used for §5.2.3 community classification.
type SiteAccount struct {
	Site     string
	Username string
}

// Victim is one doxing target with full ground truth.
type Victim struct {
	ID        int
	FirstName string
	LastName  string
	Gender    Gender
	Age       int
	DOB       time.Time
	Alias     string // primary screen name

	Region  geo.Region
	City    string
	Street  string
	Zip     string
	Country string

	Email string
	Phone string
	IP    string
	ISP   string

	Fields    SensitiveFields
	Community Community
	Motive    Motive

	// OSN lists the social accounts the dox will reference. Key presence
	// == the dox includes that network.
	OSN map[netid.Network]string
	// CommunityAccounts are gaming/hacking site handles (>=2 triggers the
	// paper's community rule) or a celebrity descriptor.
	CommunityAccounts []SiteAccount
	CelebrityRole     string

	// GeoTruth records how the victim's listed IP relates to their postal
	// address, for the §4.1 validation.
	GeoTruth geo.Proximity

	// FamilyMembers are relatives named in the dox.
	FamilyMembers []string

	// Rich marks dox-for-hire proof-of-work victims (training set), whose
	// doxes carry the higher Table 2 OSN inclusion rates.
	Rich bool
}

// FullName returns "First Last".
func (v *Victim) FullName() string { return v.FirstName + " " + v.LastName }

// Doxer is a member of the doxing community, identified by alias.
type Doxer struct {
	ID             int
	Alias          string
	TwitterHandle  string // empty if none
	TwitterPrivate bool
	Crew           int // -1 for solo doxers
}

// World is the complete ground truth for one study run.
type World struct {
	Cfg     Config
	Geo     *geo.DB
	Victims []*Victim
	// TrainVictims back the positive training corpus (dox-for-hire
	// proof-of-work archives) and the extractor's hand-labeled sample.
	TrainVictims []*Victim
	Doxers       []*Doxer
	// Follows holds directed doxer Twitter follow edges as [from][to].
	Follows map[int]map[int]bool

	rng           *rand.Rand
	exampleSerial int
}

// NewWorld builds a world from the configuration.
func NewWorld(cfg Config) *World {
	root := randutil.New(cfg.Seed)
	w := &World{
		Cfg:     cfg,
		Geo:     geo.NewDB(),
		Follows: make(map[int]map[int]bool),
		rng:     root,
	}
	vr := randutil.Derive(root, "victims")
	nVictims := scaleCount(cfg.DoxesP1+cfg.DoxesP2, cfg.Scale)
	// Victims map 1:1 to non-duplicate doxes; duplicates re-target.
	nUnique := nVictims - int(float64(nVictims)*(cfg.ExactDupFraction+cfg.NearDupFraction))
	if nUnique < 1 {
		nUnique = 1
	}
	w.Victims = make([]*Victim, nUnique)
	for i := range w.Victims {
		w.Victims[i] = w.newVictim(vr, i, false)
	}
	tr := randutil.Derive(root, "trainvictims")
	w.TrainVictims = make([]*Victim, cfg.TrainPositives)
	for i := range w.TrainVictims {
		w.TrainVictims[i] = w.newVictim(tr, 1_000_000+i, true)
	}
	w.buildDoxers(randutil.Derive(root, "doxers"))
	return w
}

// newVictim synthesizes one victim. rich selects the dox-for-hire profile.
func (w *World) newVictim(r *rand.Rand, id int, rich bool) *Victim {
	cfg := w.Cfg
	v := &Victim{ID: id, Rich: rich, OSN: make(map[netid.Network]string)}

	// Demographics (Table 5).
	switch x := r.Float64(); {
	case x < cfg.PMale:
		v.Gender = GenderMale
		v.FirstName = randutil.Pick(r, maleFirstNames)
	case x < cfg.PMale+cfg.PFemale:
		v.Gender = GenderFemale
		v.FirstName = randutil.Pick(r, femaleFirstNames)
	case x < cfg.PMale+cfg.PFemale+cfg.POther:
		v.Gender = GenderOther
		v.FirstName = randutil.Pick(r, append(maleFirstNames[:20:20], femaleFirstNames[:20]...))
	default:
		v.Gender = GenderUnstated
		v.FirstName = randutil.Pick(r, maleFirstNames)
	}
	v.LastName = randutil.Pick(r, lastNames)
	v.Age = randutil.SkewedAge(r)
	birthYear := 2016 - v.Age
	v.DOB = time.Date(birthYear, time.Month(1+r.Intn(12)), 1+r.Intn(28), 0, 0, 0, 0, time.UTC)
	v.Alias = NewAlias(r)

	// Location: 64.5% USA among those with an address (Table 5).
	if randutil.Bool(r, cfg.PUSA) {
		v.Region = randutil.Pick(r, w.Geo.USStates())
		v.Country = "USA"
	} else {
		all := w.Geo.Regions()
		for {
			rg := randutil.Pick(r, all)
			if !rg.IsUSA() {
				v.Region = rg
				v.Country = rg.Country
				break
			}
		}
	}
	v.City = randutil.Pick(r, v.Region.Cities)
	v.Street = fmt.Sprintf("%d %s %s", 1+r.Intn(9899), randutil.Pick(r, streetNames), randutil.Pick(r, streetSuffixes))
	v.Zip = geo.ZipFor(r, w.Geo, v.Region.Code)

	// Contact details.
	v.Email = strings.ToLower(v.FirstName) + "." + strings.ToLower(v.LastName) + randutil.Digits(r, 2) + "@" + randutil.Pick(r, emailDomains)
	v.Phone = randutil.Phone(r)
	v.ISP = randutil.Pick(r, ispNames)

	// IP with §4.1 ground-truth proximity mix.
	switch x := r.Float64(); {
	case x < cfg.PGeoExact:
		v.GeoTruth = geo.ProximityExactCity
		v.IP = w.Geo.IPFor(r, v.Region.Code, v.City)
	case x < cfg.PGeoExact+cfg.PGeoSame:
		v.GeoTruth = geo.ProximitySame
		other := otherCity(r, v.Region, v.City)
		v.IP = w.Geo.IPFor(r, v.Region.Code, other)
		if other == v.City { // single-city regions collapse to exact
			v.GeoTruth = geo.ProximityExactCity
		}
	case x < cfg.PGeoExact+cfg.PGeoSame+cfg.PGeoAdjacent:
		adj := w.Geo.AdjacentTo(r, v.Region.Code)
		if adj.Code == v.Region.Code {
			// No land neighbours (islands, foreign countries): degrade to
			// a same-region mismatch, or exact for single-city regions.
			other := otherCity(r, v.Region, v.City)
			v.IP = w.Geo.IPFor(r, v.Region.Code, other)
			if other == v.City {
				v.GeoTruth = geo.ProximityExactCity
			} else {
				v.GeoTruth = geo.ProximitySame
			}
		} else {
			v.IP = w.Geo.IPFor(r, adj.Code, adj.Cities[r.Intn(len(adj.Cities))])
			v.GeoTruth = geo.ProximityAdjacent
		}
	default:
		far := w.Geo.FarFrom(r, v.Region.Code)
		v.IP = w.Geo.IPFor(r, far.Code, far.Cities[r.Intn(len(far.Cities))])
		v.GeoTruth = geo.ProximityFar
	}

	// Sensitive-category coin flips (Table 6).
	f := &v.Fields
	f.Address = randutil.Bool(r, cfg.PAddress)
	f.Zip = f.Address && randutil.Bool(r, cfg.PZip)
	f.Phone = randutil.Bool(r, cfg.PPhone)
	f.Family = randutil.Bool(r, cfg.PFamily)
	f.Email = randutil.Bool(r, cfg.PEmail)
	f.DOB = randutil.Bool(r, cfg.PDOB)
	f.School = randutil.Bool(r, cfg.PSchool)
	f.Usernames = randutil.Bool(r, cfg.PUsernames)
	f.ISP = randutil.Bool(r, cfg.PISP)
	f.IP = randutil.Bool(r, cfg.PIP)
	f.Passwords = randutil.Bool(r, cfg.PPasswords)
	f.Physical = randutil.Bool(r, cfg.PPhysical)
	f.Criminal = randutil.Bool(r, cfg.PCriminal)
	f.SSN = randutil.Bool(r, cfg.PSSN)
	f.CreditCard = randutil.Bool(r, cfg.PCreditCard)
	f.Financial = randutil.Bool(r, cfg.PFinancial)

	if f.Family {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			first := randutil.Pick(r, maleFirstNames)
			if r.Intn(2) == 0 {
				first = randutil.Pick(r, femaleFirstNames)
			}
			v.FamilyMembers = append(v.FamilyMembers, first+" "+v.LastName)
		}
	}

	// Community (Table 7) and its supporting accounts (>=3 so the paper's
	// "more than two" rule fires).
	switch x := r.Float64(); {
	case x < cfg.PGamer:
		v.Community = CommunityGamer
		for _, site := range randutil.PickN(r, gamingSites, 3+r.Intn(3)) {
			v.CommunityAccounts = append(v.CommunityAccounts, SiteAccount{Site: site, Username: v.Alias})
		}
	case x < cfg.PGamer+cfg.PHacker:
		v.Community = CommunityHacker
		for _, site := range randutil.PickN(r, hackingSites, 3+r.Intn(2)) {
			v.CommunityAccounts = append(v.CommunityAccounts, SiteAccount{Site: site, Username: v.Alias})
		}
	case x < cfg.PGamer+cfg.PHacker+cfg.PCelebrity:
		v.Community = CommunityCelebrity
		v.CelebrityRole = randutil.Pick(r, celebrityRoles)
	default:
		v.Community = CommunityNone
		// Some unclassifiable victims still have one stray community
		// account — below the "more than two" threshold.
		if randutil.Bool(r, 0.1) {
			v.CommunityAccounts = append(v.CommunityAccounts,
				SiteAccount{Site: randutil.Pick(r, gamingSites), Username: v.Alias})
		}
	}

	// Motivation (Table 8).
	switch x := r.Float64(); {
	case x < cfg.PMotiveJustice:
		v.Motive = MotiveJustice
	case x < cfg.PMotiveJustice+cfg.PMotiveRevenge:
		v.Motive = MotiveRevenge
	case x < cfg.PMotiveJustice+cfg.PMotiveRevenge+cfg.PMotiveCompetitive:
		v.Motive = MotiveCompetitive
	case x < cfg.PMotiveJustice+cfg.PMotiveRevenge+cfg.PMotiveCompetitive+cfg.PMotivePolitical:
		v.Motive = MotivePolitical
	default:
		v.Motive = MotiveNone
	}

	// OSN accounts (Table 9 wild / Table 2 rich rates).
	rates := cfg.WildOSNRates
	if rich {
		rates = cfg.RichOSNRates
	}
	for _, n := range netid.All() {
		if randutil.Bool(r, rates[n]) {
			v.OSN[n] = usernameFor(r, v, n)
		}
	}
	return v
}

// otherCity picks a city in the region different from exclude when possible.
func otherCity(r *rand.Rand, rg geo.Region, exclude string) string {
	if len(rg.Cities) == 1 {
		return rg.Cities[0]
	}
	for {
		c := rg.Cities[r.Intn(len(rg.Cities))]
		if c != exclude {
			return c
		}
	}
}

// ExampleVictim synthesizes a person who exists only on paper: joke doxes
// and dox-for-hire advertising templates describe such people. They draw
// from the same identity banks as real victims (so the text is
// indistinguishable) but are never registered with the simulated social
// networks — their accounts 404 when the monitor verifies them, exactly as
// the paper's "Social Network Account Verifier" stage would observe.
// Not safe for concurrent use with other generation.
func (w *World) ExampleVictim(r *rand.Rand) *Victim {
	w.exampleSerial++
	return w.newVictim(r, 2_000_000+w.exampleSerial, false)
}

// RandomFirstName draws a first name from the identity banks.
func RandomFirstName(r *rand.Rand) string {
	if r.Intn(2) == 0 {
		return randutil.Pick(r, maleFirstNames)
	}
	return randutil.Pick(r, femaleFirstNames)
}

// RandomLastName draws a last name from the identity banks.
func RandomLastName(r *rand.Rand) string { return randutil.Pick(r, lastNames) }

// RandomStreet draws a street address shaped like victim addresses.
func RandomStreet(r *rand.Rand) string {
	return fmt.Sprintf("%d %s %s", 1+r.Intn(9899), randutil.Pick(r, streetNames), randutil.Pick(r, streetSuffixes))
}

// NewAlias generates a plausible screen name.
func NewAlias(r *rand.Rand) string {
	adj := randutil.Pick(r, aliasAdjectives)
	noun := randutil.Pick(r, aliasNouns)
	switch r.Intn(5) {
	case 0:
		return adj + noun + randutil.Digits(r, 2)
	case 1:
		return strings.Title(adj) + strings.Title(noun)
	case 2:
		return "xX" + strings.Title(adj) + strings.Title(noun) + "Xx"
	case 3:
		return adj + "_" + noun
	default:
		return adj + noun
	}
}

// usernameFor derives a per-network username from the victim identity, with
// the mild variation real account sets show.
func usernameFor(r *rand.Rand, v *Victim, n netid.Network) string {
	base := strings.ToLower(v.Alias)
	switch r.Intn(4) {
	case 0:
		base = strings.ToLower(v.FirstName) + strings.ToLower(v.LastName)
	case 1:
		base = strings.ToLower(v.Alias) + randutil.Digits(r, 2)
	case 2:
		base = strings.ToLower(v.FirstName) + "." + strings.ToLower(v.LastName) + randutil.Digits(r, 1)
	}
	// Usernames must be unique per victim-network pair across the world;
	// suffix with the network initial and victim id fragment.
	return fmt.Sprintf("%s%s%d", base, n.Slug()[:2], v.ID%9973)
}

// buildDoxers creates the doxer population, crews, and Twitter follows.
func (w *World) buildDoxers(r *rand.Rand) {
	cfg := w.Cfg
	seen := map[string]bool{}
	w.Doxers = make([]*Doxer, cfg.NumDoxers)
	for i := range w.Doxers {
		var alias string
		for {
			alias = NewAlias(r)
			if !seen[alias] {
				seen[alias] = true
				break
			}
		}
		d := &Doxer{ID: i, Alias: alias, Crew: -1}
		if randutil.Bool(r, cfg.TwitterHandleRate) {
			d.TwitterHandle = strings.ToLower(alias)
			d.TwitterPrivate = randutil.Bool(r, cfg.PrivateTwitterRate)
		}
		w.Doxers[i] = d
	}
	// Assign crews front-to-back; remaining doxers are solo.
	idx := 0
	for crew, size := range cfg.CrewSizes {
		for j := 0; j < size && idx < len(w.Doxers); j++ {
			w.Doxers[idx].Crew = crew
			idx++
		}
	}
	// Twitter follows: crew members follow each other densely, so that
	// credit co-occurrence plus follow edges complete crew cliques
	// (Figure 2); a sprinkle of cross-crew follows adds realism without
	// merging cliques.
	for _, a := range w.Doxers {
		for _, b := range w.Doxers {
			if a.ID == b.ID || a.TwitterHandle == "" || b.TwitterHandle == "" {
				continue
			}
			p := 0.002
			if a.Crew >= 0 && a.Crew == b.Crew {
				p = 0.9
			}
			if randutil.Bool(r, p) {
				w.follow(a.ID, b.ID)
			}
		}
	}
}

func (w *World) follow(from, to int) {
	if w.Follows[from] == nil {
		w.Follows[from] = make(map[int]bool)
	}
	w.Follows[from][to] = true
}

// FollowsEachOther reports a mutual or one-way follow edge between doxers;
// the paper's Figure 2 graph is undirected.
func (w *World) FollowsEachOther(a, b int) bool {
	return w.Follows[a][b] || w.Follows[b][a]
}

// CrewMembers returns the doxers in the given crew.
func (w *World) CrewMembers(crew int) []*Doxer {
	var out []*Doxer
	for _, d := range w.Doxers {
		if d.Crew == crew {
			out = append(out, d)
		}
	}
	return out
}

// DoxerByAlias resolves an alias to a doxer.
func (w *World) DoxerByAlias(alias string) (*Doxer, bool) {
	for _, d := range w.Doxers {
		if d.Alias == alias {
			return d, true
		}
	}
	return nil, false
}
