package sim

import (
	"math"
	"strings"
	"testing"

	"doxmeter/internal/netid"
	"doxmeter/internal/randutil"
)

func testWorld(t *testing.T, scale float64) *World {
	t.Helper()
	return NewWorld(Default(42, scale))
}

func TestWorldDeterminism(t *testing.T) {
	a := NewWorld(Default(7, 0.02))
	b := NewWorld(Default(7, 0.02))
	if len(a.Victims) != len(b.Victims) {
		t.Fatalf("victim counts differ: %d vs %d", len(a.Victims), len(b.Victims))
	}
	for i := range a.Victims {
		if a.Victims[i].FullName() != b.Victims[i].FullName() ||
			a.Victims[i].IP != b.Victims[i].IP {
			t.Fatalf("victim %d differs between identically seeded worlds", i)
		}
	}
	if a.Doxers[10].Alias != b.Doxers[10].Alias {
		t.Fatal("doxer population differs between identically seeded worlds")
	}
}

func TestWorldScaling(t *testing.T) {
	small := NewWorld(Default(1, 0.01))
	big := NewWorld(Default(1, 0.05))
	if len(big.Victims) <= len(small.Victims) {
		t.Fatalf("scaling broken: %d victims at 0.05 vs %d at 0.01",
			len(big.Victims), len(small.Victims))
	}
	// Doxer community size is scale-invariant.
	if len(small.Doxers) != 251 || len(big.Doxers) != 251 {
		t.Fatalf("doxer counts = %d/%d, want 251 (paper §5.3.2)",
			len(small.Doxers), len(big.Doxers))
	}
}

func TestVictimDemographics(t *testing.T) {
	w := testWorld(t, 0.5) // ~2,765 victims for tight statistics
	var male, female, usa, withAddr int
	ageSum := 0
	for _, v := range w.Victims {
		switch v.Gender {
		case GenderMale:
			male++
		case GenderFemale:
			female++
		}
		ageSum += v.Age
		if v.Age < 10 || v.Age > 74 {
			t.Fatalf("victim age %d outside paper range", v.Age)
		}
		if v.Fields.Address {
			withAddr++
			if v.Country == "USA" {
				usa++
			}
		}
	}
	n := float64(len(w.Victims))
	if m := float64(male) / n; m < 0.78 || m > 0.86 {
		t.Errorf("male fraction %.3f, want ~0.822 (Table 5)", m)
	}
	if f := float64(female) / n; f < 0.12 || f > 0.21 {
		t.Errorf("female fraction %.3f, want ~0.163 (Table 5)", f)
	}
	if mean := float64(ageSum) / n; math.Abs(mean-21.7) > 2.5 {
		t.Errorf("mean age %.1f, want ~21.7 (Table 5)", mean)
	}
	if u := float64(usa) / float64(withAddr); u < 0.58 || u > 0.71 {
		t.Errorf("USA fraction %.3f, want ~0.645 (Table 5)", u)
	}
}

func TestSensitiveFieldRates(t *testing.T) {
	w := testWorld(t, 0.5)
	n := float64(len(w.Victims))
	count := func(f func(*Victim) bool) float64 {
		c := 0
		for _, v := range w.Victims {
			if f(v) {
				c++
			}
		}
		return float64(c) / n
	}
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"address", count(func(v *Victim) bool { return v.Fields.Address }), 0.901, 0.04},
		{"phone", count(func(v *Victim) bool { return v.Fields.Phone }), 0.612, 0.05},
		{"family", count(func(v *Victim) bool { return v.Fields.Family }), 0.506, 0.05},
		{"email", count(func(v *Victim) bool { return v.Fields.Email }), 0.537, 0.05},
		{"zip", count(func(v *Victim) bool { return v.Fields.Zip }), 0.489, 0.05},
		{"dob", count(func(v *Victim) bool { return v.Fields.DOB }), 0.334, 0.05},
		{"ip", count(func(v *Victim) bool { return v.Fields.IP }), 0.403, 0.05},
		{"ssn", count(func(v *Victim) bool { return v.Fields.SSN }), 0.026, 0.02},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s rate %.3f, want %.3f±%.3f (Table 6)", c.name, c.got, c.want, c.tol)
		}
	}
	// Zip implies address.
	for _, v := range w.Victims {
		if v.Fields.Zip && !v.Fields.Address {
			t.Fatal("zip disclosed without address")
		}
		if v.Fields.Family && len(v.FamilyMembers) == 0 {
			t.Fatal("family flagged but no members generated")
		}
	}
}

func TestCommunityRates(t *testing.T) {
	w := testWorld(t, 0.5)
	n := float64(len(w.Victims))
	var gamer, hacker, celeb int
	for _, v := range w.Victims {
		switch v.Community {
		case CommunityGamer:
			gamer++
			if len(v.CommunityAccounts) < 3 {
				t.Fatalf("gamer with only %d community accounts; need >2 for the paper's rule", len(v.CommunityAccounts))
			}
		case CommunityHacker:
			hacker++
			if len(v.CommunityAccounts) < 3 {
				t.Fatalf("hacker with only %d community accounts", len(v.CommunityAccounts))
			}
		case CommunityCelebrity:
			celeb++
			if v.CelebrityRole == "" {
				t.Fatal("celebrity without role")
			}
		case CommunityNone:
			if len(v.CommunityAccounts) > 2 {
				t.Fatal("unclassified victim has >2 community accounts; would misclassify")
			}
		}
	}
	if g := float64(gamer) / n; math.Abs(g-0.114) > 0.03 {
		t.Errorf("gamer rate %.3f, want ~0.114 (Table 7)", g)
	}
	if h := float64(hacker) / n; math.Abs(h-0.037) > 0.02 {
		t.Errorf("hacker rate %.3f, want ~0.037 (Table 7)", h)
	}
	if c := float64(celeb) / n; math.Abs(c-0.011) > 0.012 {
		t.Errorf("celebrity rate %.3f, want ~0.011 (Table 7)", c)
	}
}

func TestMotiveRates(t *testing.T) {
	w := testWorld(t, 0.5)
	n := float64(len(w.Victims))
	counts := map[Motive]int{}
	for _, v := range w.Victims {
		counts[v.Motive]++
	}
	if j := float64(counts[MotiveJustice]) / n; math.Abs(j-0.147) > 0.035 {
		t.Errorf("justice rate %.3f, want ~0.147 (Table 8)", j)
	}
	if r := float64(counts[MotiveRevenge]) / n; math.Abs(r-0.112) > 0.035 {
		t.Errorf("revenge rate %.3f, want ~0.112 (Table 8)", r)
	}
	if counts[MotiveJustice] <= counts[MotivePolitical] {
		t.Error("justice should dominate political (Table 8)")
	}
	stated := counts[MotiveJustice] + counts[MotiveRevenge] + counts[MotiveCompetitive] + counts[MotivePolitical]
	if s := float64(stated) / n; s < 0.22 || s > 0.36 {
		t.Errorf("stated-motive rate %.3f, want ~0.284 (Table 8)", s)
	}
}

func TestOSNRatesWildVsRich(t *testing.T) {
	w := testWorld(t, 0.5)
	frac := func(vs []*Victim, n netid.Network) float64 {
		c := 0
		for _, v := range vs {
			if _, ok := v.OSN[n]; ok {
				c++
			}
		}
		return float64(c) / float64(len(vs))
	}
	// Wild: Facebook most common at ~17.8% (Table 9).
	fb := frac(w.Victims, netid.Facebook)
	if math.Abs(fb-0.178) > 0.04 {
		t.Errorf("wild Facebook rate %.3f, want ~0.178 (Table 9)", fb)
	}
	for _, n := range []netid.Network{netid.GooglePlus, netid.Twitter, netid.Instagram, netid.YouTube, netid.Twitch} {
		if got := frac(w.Victims, n); got >= fb {
			t.Errorf("wild %v rate %.3f should be below Facebook %.3f (Table 9)", n, got, fb)
		}
	}
	// Rich (dox-for-hire): Skype most common at ~55.2% (Table 2).
	sk := frac(w.TrainVictims, netid.Skype)
	if math.Abs(sk-0.552) > 0.05 {
		t.Errorf("rich Skype rate %.3f, want ~0.552 (Table 2)", sk)
	}
	if rfb := frac(w.TrainVictims, netid.Facebook); rfb <= fb {
		t.Errorf("rich Facebook rate %.3f should exceed wild %.3f", rfb, fb)
	}
}

func TestGeoTruthMix(t *testing.T) {
	w := testWorld(t, 0.5)
	counts := map[string]int{}
	for _, v := range w.Victims {
		counts[v.GeoTruth.String()]++
		// The IP must actually geolocate consistently with the label.
		loc, ok := w.Geo.Lookup(v.IP)
		if !ok {
			t.Fatalf("victim IP %s does not geolocate", v.IP)
		}
		got := w.Geo.Compare(loc, v.Region.Code, v.City)
		if got != v.GeoTruth {
			t.Fatalf("victim %d GeoTruth=%v but Compare=%v (ip=%s region=%s city=%s)",
				v.ID, v.GeoTruth, got, v.IP, v.Region.Code, v.City)
		}
	}
	n := len(w.Victims)
	sameish := counts["same-region"] + counts["exact-city"]
	if f := float64(sameish) / float64(n); f < 0.82 || f > 0.95 {
		t.Errorf("same-region-or-better fraction %.3f, want ~0.89 (§4.1: 32/36)", f)
	}
	if f := float64(counts["far"]) / float64(n); f < 0.03 || f > 0.15 {
		t.Errorf("far fraction %.3f, want ~0.083 (§4.1: 3/36)", f)
	}
}

func TestDoxerCrews(t *testing.T) {
	w := testWorld(t, 0.05)
	// 61 doxers in crews of size >= 4, max crew 11 (Figure 2).
	crewSize := map[int]int{}
	withTwitter, private := 0, 0
	for _, d := range w.Doxers {
		if d.Crew >= 0 {
			crewSize[d.Crew]++
		}
		if d.TwitterHandle != "" {
			withTwitter++
			if d.TwitterPrivate {
				private++
			}
		}
	}
	inBig, maxSize := 0, 0
	for _, s := range crewSize {
		if s >= 4 {
			inBig += s
		}
		if s > maxSize {
			maxSize = s
		}
	}
	if inBig != 61 {
		t.Errorf("doxers in crews>=4 = %d, want 61 (Figure 2)", inBig)
	}
	if maxSize != 11 {
		t.Errorf("max crew size = %d, want 11 (Figure 2)", maxSize)
	}
	if withTwitter < 195 || withTwitter > 230 {
		t.Errorf("doxers with Twitter = %d, want ~213 (§5.3.2)", withTwitter)
	}
	if private < 15 || private > 55 {
		t.Errorf("private Twitter accounts = %d, want ~34 (§5.3.2)", private)
	}
	// Aliases are unique.
	seen := map[string]bool{}
	for _, d := range w.Doxers {
		if seen[d.Alias] {
			t.Fatalf("duplicate doxer alias %q", d.Alias)
		}
		seen[d.Alias] = true
	}
}

func TestCrewFollowDensity(t *testing.T) {
	w := testWorld(t, 0.05)
	crew := w.CrewMembers(0)
	if len(crew) != 11 {
		t.Fatalf("crew 0 size = %d, want 11", len(crew))
	}
	// Crew members with Twitter should mostly follow each other.
	pairs, linked := 0, 0
	for i, a := range crew {
		for _, b := range crew[i+1:] {
			if a.TwitterHandle == "" || b.TwitterHandle == "" {
				continue
			}
			pairs++
			if w.FollowsEachOther(a.ID, b.ID) {
				linked++
			}
		}
	}
	if pairs > 0 && float64(linked)/float64(pairs) < 0.9 {
		t.Errorf("crew follow density %.2f, want >0.9", float64(linked)/float64(pairs))
	}
}

func TestDoxerByAlias(t *testing.T) {
	w := testWorld(t, 0.02)
	d := w.Doxers[17]
	got, ok := w.DoxerByAlias(d.Alias)
	if !ok || got.ID != 17 {
		t.Fatalf("DoxerByAlias(%q) = %v,%v", d.Alias, got, ok)
	}
	if _, ok := w.DoxerByAlias("no-such-alias-here"); ok {
		t.Fatal("DoxerByAlias found a nonexistent alias")
	}
}

func TestAliasShapes(t *testing.T) {
	r := randutil.New(3)
	for i := 0; i < 200; i++ {
		a := NewAlias(r)
		if len(a) < 5 {
			t.Fatalf("alias %q too short", a)
		}
		if strings.ContainsAny(a, " \t\n") {
			t.Fatalf("alias %q contains whitespace", a)
		}
	}
}

func TestVictimOSNUsernamesDistinct(t *testing.T) {
	w := testWorld(t, 0.1)
	// Across the world, (network, username) pairs must not collide between
	// victims, or the monitor would conflate accounts.
	seen := map[string]int{}
	for _, v := range w.Victims {
		for n, u := range v.OSN {
			key := n.Slug() + ":" + u
			if prev, dup := seen[key]; dup {
				t.Fatalf("username collision %q between victims %d and %d", key, prev, v.ID)
			}
			seen[key] = v.ID
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if GenderMale.String() != "Male" || GenderUnstated.String() != "Unstated" {
		t.Error("gender strings wrong")
	}
	if CommunityGamer.String() != "Gamer" || CommunityNone.String() != "None" {
		t.Error("community strings wrong")
	}
	if MotiveJustice.String() != "Justice" || MotiveNone.String() != "None" {
		t.Error("motive strings wrong")
	}
}
