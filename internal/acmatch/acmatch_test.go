package acmatch

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// naive is the oracle: strings.Index over every pattern.
func naive(patterns []string, text string) []Hit {
	var hits []Hit
	for pi, p := range patterns {
		for off := 0; ; {
			i := strings.Index(text[off:], p)
			if i < 0 {
				break
			}
			hits = append(hits, Hit{Pattern: pi, End: off + i + len(p)})
			off += i + 1
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].End != hits[b].End {
			return hits[a].End < hits[b].End
		}
		return hits[a].Pattern < hits[b].Pattern
	})
	return hits
}

func sortHits(hits []Hit) {
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].End != hits[b].End {
			return hits[a].End < hits[b].End
		}
		return hits[a].Pattern < hits[b].Pattern
	})
}

func checkEqual(t *testing.T, patterns []string, text string) {
	t.Helper()
	m := New(patterns)
	got := m.ScanString(text, nil)
	sortHits(got)
	want := naive(patterns, text)
	if len(got) != len(want) {
		t.Fatalf("text %q: got %d hits %v, want %d %v", text, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("text %q: hit %d = %v, want %v", text, i, got[i], want[i])
		}
	}
}

func TestOverlappingPatterns(t *testing.T) {
	patterns := []string{"he", "she", "his", "hers", "s"}
	checkEqual(t, patterns, "ushers")
	checkEqual(t, patterns, "shehehishers")
	checkEqual(t, patterns, "")
	checkEqual(t, patterns, "xyz")
}

func TestSubstringPatterns(t *testing.T) {
	// "name" inside "first name", as in the extract kernel's anchor set.
	patterns := []string{"name", "first name", "age"}
	checkEqual(t, patterns, "first name: alice\nage: 30\nname: bob")
	checkEqual(t, patterns, "namename first namage")
}

func TestExtractAnchorSet(t *testing.T) {
	patterns := []string{
		"facebook.com/", "plus.google.com/", "twitter.com/",
		"instagram.com/", "youtube.com/", "twitch.tv/",
		"facebook", "fb", "face", "twitter", "tw", "instagram", "ig",
		"skype", "name", "first name", "age",
		"dropped by", "dox by", "credit:", "brought to you by",
	}
	doc := "dox by hunter1\nname: john doe\nage: 22\n" +
		"fb: johnd\nhttps://www.twitter.com/johnd22\ncredit: @twig"
	checkEqual(t, patterns, doc)
}

func TestRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := "abcab."
	for trial := 0; trial < 200; trial++ {
		var pats []string
		n := 1 + rng.Intn(5)
		seen := map[string]bool{}
		for len(pats) < n {
			l := 1 + rng.Intn(4)
			var sb strings.Builder
			for i := 0; i < l; i++ {
				sb.WriteByte(alpha[rng.Intn(len(alpha))])
			}
			if p := sb.String(); !seen[p] {
				seen[p] = true
				pats = append(pats, p)
			}
		}
		var tb strings.Builder
		for i := 0; i < rng.Intn(64); i++ {
			tb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		checkEqual(t, pats, tb.String())
	}
}

func TestScanByteStringAgree(t *testing.T) {
	m := New([]string{"ab", "babc", "c"})
	text := "ababcbabcc"
	a := m.Scan([]byte(text), nil)
	b := m.ScanString(text, nil)
	if len(a) != len(b) {
		t.Fatalf("byte/string scans disagree: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("byte/string scans disagree at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestScanReusesBuffer(t *testing.T) {
	m := New([]string{"ab"})
	buf := make([]Hit, 0, 16)
	hits := m.ScanString("abab", buf)
	if len(hits) != 2 || cap(hits) != 16 {
		t.Fatalf("expected reuse of caller buffer, got len=%d cap=%d", len(hits), cap(hits))
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		buf = m.ScanString("abab and more abs: ab", buf)
	})
	if allocs != 0 {
		t.Fatalf("ScanString into reusable buffer allocated %v times", allocs)
	}
}

func TestEmptyPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty pattern")
		}
	}()
	New([]string{"ok", ""})
}
