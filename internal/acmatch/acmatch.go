// Package acmatch implements a byte-level Aho–Corasick multi-pattern
// matcher, the anchor engine behind the fused extraction kernel
// (internal/extract). One automaton is built once from a fixed pattern set
// (profile-URL hosts, account-label aliases, field labels, credit-line
// leads) and then a single Scan pass over a case-folded document reports
// every occurrence of every pattern — replacing the per-pattern
// strings.Contains probes and per-regex scans the reference extractor pays.
//
// The automaton is a goto/fail trie flattened into dense arrays with the
// failure function pre-applied (a true DFA), so the scan loop is one table
// load per input byte with no branching on failure chains. Scan appends
// into a caller-owned hit slice, so steady-state scanning allocates
// nothing.
package acmatch

// Hit is one pattern occurrence: Pattern is the index into the pattern
// slice given to New, End is the byte offset one past the match (the match
// spans [End-len(pattern), End)).
type Hit struct {
	Pattern int
	End     int
}

// Matcher is an immutable multi-pattern automaton. Safe for concurrent
// Scan calls: scanning only reads the transition tables.
type Matcher struct {
	pats []string
	// delta is the DFA transition table: delta[state*256+b] is the next
	// state after reading byte b.
	delta []int32
	// out[state] indexes into outPat: the patterns ending at state are
	// outPat[out[state]:out[state+1]].
	out    []int32
	outPat []int32
}

// New builds the automaton for the given patterns. Patterns must be
// non-empty; they may contain arbitrary bytes, but callers matching
// case-insensitively should pre-fold both patterns and scan input.
func New(patterns []string) *Matcher {
	states := 1
	for _, p := range patterns {
		if p == "" {
			panic("acmatch: empty pattern")
		}
		states += len(p)
	}
	goto_ := make([]int32, states*256)
	for i := range goto_ {
		goto_[i] = -1
	}
	outSets := make([][]int32, states)
	next := int32(1)
	for pi, p := range patterns {
		s := int32(0)
		for i := 0; i < len(p); i++ {
			b := p[i]
			if t := goto_[s*256+int32(b)]; t >= 0 {
				s = t
			} else {
				goto_[s*256+int32(b)] = next
				s = next
				next++
			}
		}
		outSets[s] = append(outSets[s], int32(pi))
	}
	states = int(next)

	// BFS to compute failure links, merging output sets, then close the
	// goto function into a total DFA transition table.
	fail := make([]int32, states)
	queue := make([]int32, 0, states)
	for b := 0; b < 256; b++ {
		if t := goto_[b]; t >= 0 {
			fail[t] = 0
			queue = append(queue, t)
		} else {
			goto_[b] = 0
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		if f := fail[s]; len(outSets[f]) > 0 {
			outSets[s] = append(outSets[s], outSets[f]...)
		}
		for b := int32(0); b < 256; b++ {
			t := goto_[s*256+b]
			if t < 0 {
				goto_[s*256+b] = goto_[fail[s]*256+b]
				continue
			}
			fail[t] = goto_[fail[s]*256+b]
			queue = append(queue, t)
		}
	}

	m := &Matcher{
		pats:  append([]string(nil), patterns...),
		delta: goto_[:states*256],
		out:   make([]int32, states+1),
	}
	for s := 0; s < states; s++ {
		m.out[s+1] = m.out[s] + int32(len(outSets[s]))
		m.outPat = append(m.outPat, outSets[s]...)
	}
	return m
}

// Patterns returns the pattern set the automaton was built from, in index
// order (Hit.Pattern indexes it).
func (m *Matcher) Patterns() []string { return m.pats }

// Scan finds every occurrence of every pattern in text, appending to hits
// (pass hits[:0] of a reusable buffer for an allocation-free scan) and
// returning the extended slice. Hits are reported in increasing End order;
// several patterns ending at the same byte are reported in automaton
// output order.
func (m *Matcher) Scan(text []byte, hits []Hit) []Hit {
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = m.delta[s*256+int32(text[i])]
		if o, oEnd := m.out[s], m.out[s+1]; o < oEnd {
			for ; o < oEnd; o++ {
				hits = append(hits, Hit{Pattern: int(m.outPat[o]), End: i + 1})
			}
		}
	}
	return hits
}

// ScanString is Scan for string input.
func (m *Matcher) ScanString(text string, hits []Hit) []Hit {
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = m.delta[s*256+int32(text[i])]
		if o, oEnd := m.out[s], m.out[s+1]; o < oEnd {
			for ; o < oEnd; o++ {
				hits = append(hits, Hit{Pattern: int(m.outPat[o]), End: i + 1})
			}
		}
	}
	return hits
}
