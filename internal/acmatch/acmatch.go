// Package acmatch implements a byte-level Aho–Corasick multi-pattern
// matcher, the anchor engine behind the fused extraction kernel
// (internal/extract). One automaton is built once from a fixed pattern set
// (profile-URL hosts, account-label aliases, field labels, credit-line
// leads) and then a single Scan pass over a case-folded document reports
// every occurrence of every pattern — replacing the per-pattern
// strings.Contains probes and per-regex scans the reference extractor pays.
//
// The automaton is a goto/fail trie flattened into dense arrays with the
// failure function pre-applied (a true DFA), so the scan loop is one table
// load per input byte with no branching on failure chains. Scan appends
// into a caller-owned hit slice, so steady-state scanning allocates
// nothing.
package acmatch

// Hit is one pattern occurrence: Pattern is the index into the pattern
// slice given to New, End is the byte offset one past the match (the match
// spans [End-len(pattern), End)).
type Hit struct {
	Pattern int
	End     int
}

// Matcher is an immutable multi-pattern automaton. Safe for concurrent
// Scan calls: scanning only reads the transition tables.
//
// States are renumbered so every output state sits at the top of the ID
// range (>= firstOut): the scan loop then detects matches with a single
// register compare instead of two out-table loads per input byte.
type Matcher struct {
	pats []string
	// delta is the DFA transition table: delta[state*256+b] is the next
	// state after reading byte b.
	delta []int32
	// firstOut is the lowest output-state ID; states >= firstOut have at
	// least one pattern ending there.
	firstOut int32
	// out[s-firstOut] indexes into outPat: the patterns ending at output
	// state s are outPat[out[s-firstOut]:out[s-firstOut+1]].
	out    []int32
	outPat []int32
}

// New builds the automaton for the given patterns. Patterns must be
// non-empty; they may contain arbitrary bytes, but callers matching
// case-insensitively should pre-fold both patterns and scan input.
func New(patterns []string) *Matcher {
	states := 1
	for _, p := range patterns {
		if p == "" {
			panic("acmatch: empty pattern")
		}
		states += len(p)
	}
	goto_ := make([]int32, states*256)
	for i := range goto_ {
		goto_[i] = -1
	}
	outSets := make([][]int32, states)
	next := int32(1)
	for pi, p := range patterns {
		s := int32(0)
		for i := 0; i < len(p); i++ {
			b := p[i]
			if t := goto_[s*256+int32(b)]; t >= 0 {
				s = t
			} else {
				goto_[s*256+int32(b)] = next
				s = next
				next++
			}
		}
		outSets[s] = append(outSets[s], int32(pi))
	}
	states = int(next)

	// BFS to compute failure links, merging output sets, then close the
	// goto function into a total DFA transition table.
	fail := make([]int32, states)
	queue := make([]int32, 0, states)
	for b := 0; b < 256; b++ {
		if t := goto_[b]; t >= 0 {
			fail[t] = 0
			queue = append(queue, t)
		} else {
			goto_[b] = 0
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		if f := fail[s]; len(outSets[f]) > 0 {
			outSets[s] = append(outSets[s], outSets[f]...)
		}
		for b := int32(0); b < 256; b++ {
			t := goto_[s*256+b]
			if t < 0 {
				goto_[s*256+b] = goto_[fail[s]*256+b]
				continue
			}
			fail[t] = goto_[fail[s]*256+b]
			queue = append(queue, t)
		}
	}

	// Renumber states so output states occupy the top of the ID range:
	// non-output states keep low IDs (the root stays 0 — patterns are
	// non-empty, so it never carries output), output states follow. The
	// scan loop then spots matches with one `s >= firstOut` compare.
	nOut := 0
	for s := 0; s < states; s++ {
		if len(outSets[s]) > 0 {
			nOut++
		}
	}
	firstOut := int32(states - nOut)
	perm := make([]int32, states)
	lo, hi := int32(0), firstOut
	for s := 0; s < states; s++ {
		if len(outSets[s]) > 0 {
			perm[s] = hi
			hi++
		} else {
			perm[s] = lo
			lo++
		}
	}
	delta := make([]int32, states*256)
	for s := 0; s < states; s++ {
		ns := perm[s]
		for b := int32(0); b < 256; b++ {
			delta[ns*256+b] = perm[goto_[int32(s)*256+b]]
		}
	}
	m := &Matcher{
		pats:     append([]string(nil), patterns...),
		delta:    delta,
		firstOut: firstOut,
		out:      make([]int32, nOut+1),
	}
	for s := 0; s < states; s++ {
		if len(outSets[s]) == 0 {
			continue
		}
		oi := perm[s] - firstOut
		m.out[oi+1] = int32(len(outSets[s]))
	}
	for i := 1; i <= nOut; i++ {
		m.out[i] += m.out[i-1]
	}
	m.outPat = make([]int32, 0, m.out[nOut])
	order := make([]int32, nOut)
	for s := 0; s < states; s++ {
		if len(outSets[s]) > 0 {
			order[perm[s]-firstOut] = int32(s)
		}
	}
	for _, s := range order {
		m.outPat = append(m.outPat, outSets[s]...)
	}
	return m
}

// Patterns returns the pattern set the automaton was built from, in index
// order (Hit.Pattern indexes it).
func (m *Matcher) Patterns() []string { return m.pats }

// Scan finds every occurrence of every pattern in text, appending to hits
// (pass hits[:0] of a reusable buffer for an allocation-free scan) and
// returning the extended slice. Hits are reported in increasing End order;
// several patterns ending at the same byte are reported in automaton
// output order.
func (m *Matcher) Scan(text []byte, hits []Hit) []Hit {
	s, fo := int32(0), m.firstOut
	for i := 0; i < len(text); i++ {
		s = m.delta[s*256+int32(text[i])]
		if s >= fo {
			for o, oEnd := m.out[s-fo], m.out[s-fo+1]; o < oEnd; o++ {
				hits = append(hits, Hit{Pattern: int(m.outPat[o]), End: i + 1})
			}
		}
	}
	return hits
}

// DFA exposes the raw transition machinery for a caller that fuses the
// scan into its own byte loop (the extraction kernel folds and scans in
// one pass). delta is the dense table indexed state*256+int32(b) starting
// from state 0; it must not be modified. States >= firstOut have patterns
// ending there — pass them to Emit.
func (m *Matcher) DFA() (delta []int32, firstOut int32) { return m.delta, m.firstOut }

// Emit appends the hits for output state s (>= DFA's firstOut) ending at
// byte offset end, exactly as Scan would report them.
func (m *Matcher) Emit(s int32, end int, hits []Hit) []Hit {
	for o, oEnd := m.out[s-m.firstOut], m.out[s-m.firstOut+1]; o < oEnd; o++ {
		hits = append(hits, Hit{Pattern: int(m.outPat[o]), End: end})
	}
	return hits
}

// ScanString is Scan for string input.
func (m *Matcher) ScanString(text string, hits []Hit) []Hit {
	s, fo := int32(0), m.firstOut
	for i := 0; i < len(text); i++ {
		s = m.delta[s*256+int32(text[i])]
		if s >= fo {
			for o, oEnd := m.out[s-fo], m.out[s-fo+1]; o < oEnd; o++ {
				hits = append(hits, Hit{Pattern: int(m.outPat[o]), End: i + 1})
			}
		}
	}
	return hits
}
