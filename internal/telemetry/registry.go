package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent collection of metric families. All methods are
// safe for concurrent use; instrument handles (Counter, Gauge, Histogram)
// are resolved once and then updated lock-free with atomics, so hot paths
// never touch the registry's maps.
//
// Registering the same family twice returns the same family, so independent
// components (five crawlers, four fault injectors) can each declare the
// series they need against one shared registry and meet at export time.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed label-name set; series within it
// are keyed by their label values.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending; +Inf implicit

	mu     sync.RWMutex
	series map[string]metric
}

type metric interface {
	write(w io.Writer, f *family, labelVals []string)
}

// seriesKey joins label values with an unprintable separator so distinct
// value tuples can never collide.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

func splitKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\x1f")
}

// register finds or creates a family, enforcing that redeclarations agree on
// kind and label names — disagreement is a programming error and panics.
func (r *Registry) register(name, help string, k kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s redeclared with different kind or labels", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: %s redeclared with different labels", name))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, buckets: buckets,
		labels: append([]string(nil), labels...), series: make(map[string]metric)}
	r.families[name] = f
	return f
}

// with resolves one series handle, creating it on first use.
func (f *family) with(mk func() metric, values ...string) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok = f.series[key]; ok {
		return m
	}
	m = mk()
	f.series[key] = m
	return m
}

// Counter is a monotonically increasing float64. Nil-safe: every method on a
// nil receiver is a no-op.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative (not enforced; counters are
// internal instruments, not an API boundary).
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current total; 0 on a nil counter.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *Counter) write(w io.Writer, f *family, vals []string) {
	fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, vals), formatFloat(c.Value()))
}

// Gauge is an instantaneous float64 value. Nil-safe like Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v (negative allowed).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) write(w io.Writer, f *family, vals []string) {
	fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, vals), formatFloat(g.Value()))
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus an
// implicit +Inf bucket, a running sum, and quantile estimation by linear
// interpolation inside the winning bucket. Nil-safe like Counter.
type Histogram struct {
	bounds []float64       // ascending upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    Gauge           // float64 accumulator (atomic CAS add)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSeconds records a duration in seconds, the unit every latency
// histogram in this repo uses.
func (h *Histogram) ObserveSeconds(d float64) { h.Observe(d) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (0..1) from the bucket counts, linearly
// interpolating within the winning bucket (lower bound 0 for the first
// bucket, as Prometheus's histogram_quantile does). Values landing in the
// +Inf bucket report the largest finite bound. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		inBucketRank := rank - float64(cum-c)
		return lo + (hi-lo)*(inBucketRank/float64(c))
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) write(w io.Writer, f *family, vals []string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelStringWithLE(f.labels, vals, formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelStringWithLE(f.labels, vals, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, vals), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, vals), cum)
}

// CounterVec is a counter family; With resolves one labeled series.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family; With resolves one labeled series.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family; With resolves one labeled series.
type HistogramVec struct{ f *family }

// NewCounter declares (or finds) a counter family. A nil registry returns a
// zero vec whose With yields nil instruments, keeping call sites branch-free.
func (r *Registry) NewCounter(name, help string, labels ...string) CounterVec {
	if r == nil {
		return CounterVec{}
	}
	return CounterVec{f: r.register(name, help, counterKind, nil, labels)}
}

// NewGauge declares (or finds) a gauge family.
func (r *Registry) NewGauge(name, help string, labels ...string) GaugeVec {
	if r == nil {
		return GaugeVec{}
	}
	return GaugeVec{f: r.register(name, help, gaugeKind, nil, labels)}
}

// NewHistogram declares (or finds) a histogram family with the given
// ascending upper bounds (nil means DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) HistogramVec {
	if r == nil {
		return HistogramVec{}
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return HistogramVec{f: r.register(name, help, histogramKind, bs, labels)}
}

// DefBuckets are latency buckets in seconds, log-spaced from 0.5ms to 10s —
// wide enough for loopback microbenchmarks and injected stalls alike.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// With resolves the series for the given label values; nil on a zero vec.
func (v CounterVec) With(values ...string) *Counter {
	if v.f == nil {
		return nil
	}
	return v.f.with(func() metric { return &Counter{} }, values...).(*Counter)
}

// With resolves the series for the given label values; nil on a zero vec.
func (v GaugeVec) With(values ...string) *Gauge {
	if v.f == nil {
		return nil
	}
	return v.f.with(func() metric { return &Gauge{} }, values...).(*Gauge)
}

// With resolves the series for the given label values; nil on a zero vec.
func (v HistogramVec) With(values ...string) *Histogram {
	if v.f == nil {
		return nil
	}
	f := v.f
	return f.with(func() metric { return newHistogram(f.buckets) }, values...).(*Histogram)
}

// Sum adds up every series of a counter or gauge family (plus histogram
// sums); 0 when the family does not exist. This is what lets an exit
// summary and /metrics agree by construction — both read the same atomics.
func (r *Registry) Sum(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	var total float64
	for _, m := range f.series {
		switch m := m.(type) {
		case *Counter:
			total += m.Value()
		case *Gauge:
			total += m.Value()
		case *Histogram:
			total += m.Sum()
		}
	}
	return total
}

// SumBy returns per-label-value totals for one label of a counter family:
// SumBy("doxmeter_fault_injected_total", "mode") → {"status500": 3, ...}.
func (r *Registry) SumBy(name, label string) map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return out
	}
	idx := -1
	for i, l := range f.labels {
		if l == label {
			idx = i
		}
	}
	if idx < 0 {
		return out
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	for key, m := range f.series {
		vals := splitKey(key)
		var v float64
		switch m := m.(type) {
		case *Counter:
			v = m.Value()
		case *Gauge:
			v = m.Value()
		case *Histogram:
			v = m.Sum()
		}
		out[vals[idx]] += v
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), families and series in sorted order so output is
// stable for tests and diffing.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f.series[k].write(w, f, splitKey(k))
		}
		f.mu.RUnlock()
	}
}

// labelString renders {a="x",b="y"}, or "" with no labels.
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringWithLE is labelString plus the histogram "le" bound.
func labelStringWithLE(names, values []string, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: integers without
// a decimal point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
