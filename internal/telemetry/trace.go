package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCap bounds the in-memory buffer of finished spans when a
// tracer is built with capacity 0.
const DefaultTraceCap = 4096

// Tracer records spans into a bounded in-memory ring buffer. Span and trace
// IDs come from a tracer-local atomic counter — cheap, collision-free, and
// independent of every seeded RNG in the study, so tracing cannot perturb
// determinism. A nil *Tracer disables tracing: StartSpan returns a nil
// *Span whose every method is a no-op.
type Tracer struct {
	// VirtualNow, when non-nil, supplies the virtual-clock reading stamped
	// on spans alongside wall time (the study wires simclock.Clock.Now
	// here). Swappable until the first span starts.
	VirtualNow func() time.Time

	cap int
	ids atomic.Uint64

	mu      sync.Mutex
	ring    []SpanRecord
	next    int // ring insertion point once full
	full    bool
	dropped uint64
}

// NewTracer builds a tracer retaining up to capacity finished spans
// (0 means DefaultTraceCap). virtualNow may be nil.
func NewTracer(capacity int, virtualNow func() time.Time) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{VirtualNow: virtualNow, cap: capacity}
}

// Span is one in-flight operation. Created by Tracer.StartSpan, finished by
// End. Not safe for concurrent mutation — one span belongs to one
// goroutine, as in every tracing API; child spans are how concurrent work
// is modeled.
type Span struct {
	tr     *Tracer
	rec    SpanRecord
	closed bool
}

// SpanRecord is the immutable export form of a finished span.
type SpanRecord struct {
	TraceID  uint64            `json:"trace"`
	SpanID   uint64            `json:"span"`
	ParentID uint64            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Wall     time.Time         `json:"wall_start"`
	WallMS   float64           `json:"wall_ms"`
	Virtual  time.Time         `json:"virtual_start,omitempty"`
	VirtMS   float64           `json:"virtual_ms,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`

	endWall time.Time
	endVirt time.Time
}

type spanCtxKey struct{}

// StartSpan begins a span named name, parented to the span in ctx (if any),
// and returns a derived context carrying the new span. On a nil tracer it
// returns ctx unchanged and a nil span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{tr: t}
	s.rec.Name = name
	s.rec.SpanID = t.ids.Add(1)
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		s.rec.TraceID = parent.rec.TraceID
		s.rec.ParentID = parent.rec.SpanID
	} else {
		s.rec.TraceID = s.rec.SpanID
	}
	s.rec.Wall = time.Now()
	if t.VirtualNow != nil {
		s.rec.Virtual = t.VirtualNow()
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SetAttr attaches a key/value attribute. No-op on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[key] = value
}

// ID returns the span's ID (0 on nil), for tests and cross-referencing.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.SpanID
}

// End finishes the span, stamps durations, and commits it to the tracer's
// ring buffer. Ending twice is a no-op. No-op on a nil span.
func (s *Span) End() {
	if s == nil || s.closed {
		return
	}
	s.closed = true
	s.rec.endWall = time.Now()
	s.rec.WallMS = float64(s.rec.endWall.Sub(s.rec.Wall)) / float64(time.Millisecond)
	if s.tr.VirtualNow != nil {
		s.rec.endVirt = s.tr.VirtualNow()
		s.rec.VirtMS = float64(s.rec.endVirt.Sub(s.rec.Virtual)) / float64(time.Millisecond)
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, s.rec)
		return
	}
	t.full = true
	t.dropped++
	t.ring[t.next] = s.rec
	t.next = (t.next + 1) % t.cap
}

// Spans returns a snapshot of the buffered finished spans, oldest first
// (insertion order; concurrent spans interleave by End time).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Dropped reports how many finished spans the ring buffer has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL exports the buffered spans as JSON Lines, one span per line,
// sorted by (TraceID, SpanID) so parents precede children and output is
// stable across runs at any parallelism.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].TraceID != spans[j].TraceID {
			return spans[i].TraceID < spans[j].TraceID
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}
