package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "a counter", "site").With("pastebin")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter value %v, want 3.5", got)
	}
	g := reg.NewGauge("g", "a gauge").With()
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge value %v, want 5", got)
	}
	// Re-declaring an existing family returns the same series.
	c2 := reg.NewCounter("c_total", "a counter", "site").With("pastebin")
	if c2 != c {
		t.Error("redeclared counter did not resolve to the same series")
	}
	if got := reg.Sum("c_total"); got != 3.5 {
		t.Errorf("Sum = %v, want 3.5", got)
	}
}

func TestNilInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	c := r.NewCounter("x", "").With("a")
	g := r.NewGauge("x", "").With()
	h := r.NewHistogram("x", "", nil).With()
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments must observe nothing")
	}
	if r.Sum("x") != 0 || len(r.SumBy("x", "a")) != 0 {
		t.Error("nil registry queries must return zero values")
	}
	r.WritePrometheus(&strings.Builder{}) // must not panic
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lat", "latency", []float64{0.1, 0.2, 0.4, 0.8}).With()
	// 40 observations in [0, 0.1], 40 in (0.1, 0.2], 20 in (0.2, 0.4].
	for i := 0; i < 40; i++ {
		h.Observe(0.05)
		h.Observe(0.15)
	}
	for i := 0; i < 20; i++ {
		h.Observe(0.3)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count %d, want 100", got)
	}
	wantSum := 40*0.05 + 40*0.15 + 20*0.3
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-9 {
		t.Errorf("sum %v, want %v", got, wantSum)
	}
	// p50 rank = 50: 40 in the first bucket, so 10 of the second bucket's 40
	// → 0.1 + 0.1*(10/40) = 0.125.
	if got := h.Quantile(0.5); math.Abs(got-0.125) > 1e-9 {
		t.Errorf("p50 = %v, want 0.125", got)
	}
	// p95 rank = 95: 80 cumulative below 0.2, 15 of the third bucket's 20
	// → 0.2 + 0.2*(15/20) = 0.35.
	if got := h.Quantile(0.95); math.Abs(got-0.35) > 1e-9 {
		t.Errorf("p95 = %v, want 0.35", got)
	}
	// Quantile extremes clamp instead of exploding.
	if got := h.Quantile(0); got < 0 || got > 0.1 {
		t.Errorf("p0 = %v, want within first bucket", got)
	}
	if got := h.Quantile(1); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("p100 = %v, want 0.4 (upper bound of last non-empty bucket)", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lat", "", []float64{1, 2}).With()
	h.Observe(50) // +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want largest finite bound 2", got)
	}
	var out strings.Builder
	reg.WritePrometheus(&out)
	for _, want := range []string{
		`lat_bucket{le="1"} 0`,
		`lat_bucket{le="2"} 0`,
		`lat_bucket{le="+Inf"} 1`,
		`lat_sum 50`,
		`lat_count 1`,
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exposition missing %q in:\n%s", want, out.String())
		}
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lat", "", nil).With()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestPrometheusTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("doxmeter_fetch_requests_total", "HTTP attempts.", "site").With("pastebin").Add(12)
	reg.NewCounter("doxmeter_fetch_requests_total", "HTTP attempts.", "site").With("4chan/b").Add(3)
	reg.NewGauge("doxmeter_breaker_state", "breaker", "site").With("pastebin").Set(1)
	var out strings.Builder
	reg.WritePrometheus(&out)
	text := out.String()
	for _, want := range []string{
		"# HELP doxmeter_fetch_requests_total HTTP attempts.",
		"# TYPE doxmeter_fetch_requests_total counter",
		`doxmeter_fetch_requests_total{site="4chan/b"} 3`,
		`doxmeter_fetch_requests_total{site="pastebin"} 12`,
		"# TYPE doxmeter_breaker_state gauge",
		`doxmeter_breaker_state{site="pastebin"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Families are sorted; breaker_state must precede fetch_requests.
	if strings.Index(text, "doxmeter_breaker_state") > strings.Index(text, "doxmeter_fetch_requests_total") {
		t.Error("families not sorted by name")
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	hostile := "a\\b\"c\nd"
	reg.NewCounter("esc_total", "he\\lp\nline", "v").With(hostile).Inc()
	var out strings.Builder
	reg.WritePrometheus(&out)
	text := out.String()
	if want := `esc_total{v="a\\b\"c\nd"} 1`; !strings.Contains(text, want) {
		t.Errorf("escaped series %q missing in:\n%s", want, text)
	}
	if want := `# HELP esc_total he\\lp\nline`; !strings.Contains(text, want) {
		t.Errorf("escaped help %q missing in:\n%s", want, text)
	}
	if strings.Contains(text, "\nd\"") {
		t.Error("raw newline leaked into exposition output")
	}
}

func TestConcurrentInstrumentUpdates(t *testing.T) {
	reg := NewRegistry()
	vec := reg.NewCounter("conc_total", "", "worker")
	hist := reg.NewHistogram("conc_seconds", "", []float64{0.5, 1})
	var wg sync.WaitGroup
	const workers, perWorker = 16, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			label := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				vec.With(label).Inc()
				hist.With().Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := reg.Sum("conc_total"); got != workers*perWorker {
		t.Errorf("Sum = %v, want %d", got, workers*perWorker)
	}
	if got := hist.With().Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	by := reg.SumBy("conc_total", "worker")
	var total float64
	for _, v := range by {
		total += v
	}
	if total != workers*perWorker || len(by) != 4 {
		t.Errorf("SumBy total %v across %d series, want %d across 4", total, len(by), workers*perWorker)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().NewCounter("bench_total", "").With()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().NewHistogram("bench_seconds", "", nil).With()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkVecWithResolve(b *testing.B) {
	vec := NewRegistry().NewCounter("bench_total", "", "site")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vec.With("pastebin").Inc()
	}
}
