package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanParentChild(t *testing.T) {
	base := time.Date(2016, time.July, 20, 0, 0, 0, 0, time.UTC)
	virt := base
	tr := NewTracer(16, func() time.Time { return virt })

	ctx, root := tr.StartSpan(context.Background(), "day")
	ctx2, child := tr.StartSpan(ctx, "poll")
	_, grand := tr.StartSpan(ctx2, "fetch")
	grand.SetAttr("site", "pastebin")
	virt = virt.Add(24 * time.Hour)
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["poll"].ParentID != byName["day"].SpanID {
		t.Errorf("poll parent %d, want day %d", byName["poll"].ParentID, byName["day"].SpanID)
	}
	if byName["fetch"].ParentID != byName["poll"].SpanID {
		t.Errorf("fetch parent %d, want poll %d", byName["fetch"].ParentID, byName["poll"].SpanID)
	}
	for _, name := range []string{"day", "poll", "fetch"} {
		if byName[name].TraceID != byName["day"].SpanID {
			t.Errorf("%s trace %d, want root trace %d", name, byName[name].TraceID, byName["day"].SpanID)
		}
	}
	if byName["day"].ParentID != 0 {
		t.Errorf("root span has parent %d", byName["day"].ParentID)
	}
	// Virtual time advanced one day while the spans were open.
	if got := byName["day"].VirtMS; got != 24*3600*1000 {
		t.Errorf("root virtual duration %v ms, want one day", got)
	}
	if byName["fetch"].Attrs["site"] != "pastebin" {
		t.Errorf("attrs = %v", byName["fetch"].Attrs)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.StartSpan(context.Background(), "x")
	if span != nil {
		t.Fatal("nil tracer returned a span")
	}
	span.SetAttr("a", "b")
	span.End() // must not panic
	if ctx == nil {
		t.Fatal("nil tracer dropped the context")
	}
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer must report no spans")
	}
	if err := tr.WriteJSONL(&strings.Builder{}); err != nil {
		t.Errorf("nil tracer WriteJSONL: %v", err)
	}
}

// TestSpanIntegrityUnderConcurrentLoad spawns many goroutines each creating
// a root with children, and checks every recorded child points at its real
// parent and shares its trace — the guarantee the study's parallel stages
// rely on.
func TestSpanIntegrityUnderConcurrentLoad(t *testing.T) {
	tr := NewTracer(100_000, nil)
	const roots, children = 50, 20
	var wg sync.WaitGroup
	for i := 0; i < roots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, root := tr.StartSpan(context.Background(), "root")
			for j := 0; j < children; j++ {
				_, c := tr.StartSpan(ctx, "child")
				c.End()
			}
			root.End()
		}()
	}
	wg.Wait()

	spans := tr.Spans()
	if len(spans) != roots*(children+1) {
		t.Fatalf("got %d spans, want %d", len(spans), roots*(children+1))
	}
	rootByID := map[uint64]SpanRecord{}
	ids := map[uint64]bool{}
	for _, s := range spans {
		if ids[s.SpanID] {
			t.Fatalf("duplicate span ID %d", s.SpanID)
		}
		ids[s.SpanID] = true
		if s.Name == "root" {
			rootByID[s.SpanID] = s
		}
	}
	for _, s := range spans {
		if s.Name != "child" {
			continue
		}
		parent, ok := rootByID[s.ParentID]
		if !ok {
			t.Fatalf("child %d has unknown parent %d", s.SpanID, s.ParentID)
		}
		if s.TraceID != parent.TraceID {
			t.Fatalf("child %d trace %d != parent trace %d", s.SpanID, s.TraceID, parent.TraceID)
		}
	}
}

func TestTraceBufferBounded(t *testing.T) {
	tr := NewTracer(8, nil)
	for i := 0; i < 20; i++ {
		_, s := tr.StartSpan(context.Background(), "s")
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("buffer holds %d spans, want cap 8", len(spans))
	}
	if tr.Dropped() != 12 {
		t.Errorf("dropped %d, want 12", tr.Dropped())
	}
	// Oldest-first: the survivors are the last 8 spans created.
	for i, s := range spans {
		if want := uint64(13 + i); s.SpanID != want {
			t.Errorf("span %d has ID %d, want %d", i, s.SpanID, want)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(16, nil)
	ctx, root := tr.StartSpan(context.Background(), "outer")
	_, child := tr.StartSpan(ctx, "inner")
	child.SetAttr("k", "v")
	child.End()
	root.End()

	var out strings.Builder
	if err := tr.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	var lines []SpanRecord
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	// Sorted by (trace, span): parent precedes child.
	if lines[0].Name != "outer" || lines[1].Name != "inner" {
		t.Errorf("order = %s, %s; want outer, inner", lines[0].Name, lines[1].Name)
	}
	if lines[1].Attrs["k"] != "v" {
		t.Errorf("attrs did not round-trip: %v", lines[1].Attrs)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(1024, nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.StartSpan(ctx, "bench")
		s.End()
	}
}

func BenchmarkNilSpanStartEnd(b *testing.B) {
	var tr *Tracer
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.StartSpan(ctx, "bench")
		s.End()
	}
}
