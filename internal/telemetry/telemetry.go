// Package telemetry is the repository's observability layer: a concurrent
// metrics registry (counters, gauges, fixed-bucket histograms, all with
// labels) exposable in Prometheus text format, span-based tracing that
// records both wall time and the study's virtual time, and an HTTP handler
// bundle (/metrics, /debug/traces, net/http/pprof) for the admin ports of
// the long-running commands.
//
// Two properties are load-bearing for the rest of the repo:
//
//   - Zero cost when disabled. Every instrument and the tracer are nil-safe:
//     a nil *Counter, *Gauge, *Histogram, *Tracer or *Hub turns each call
//     into a pointer test and nothing else, so uninstrumented runs pay no
//     allocation, no atomic, no lock.
//
//   - Determinism is never perturbed. Instruments only observe — they never
//     feed back into control flow — and span/trace IDs come from a local
//     atomic counter, not from shared RNG state, so a study commits
//     bit-identical documents and tables with telemetry on or off at any
//     parallelism. internal/core's telemetry determinism test enforces this.
//
// The package is dependency-free (stdlib only): virtual time enters through
// the Tracer's VirtualNow func rather than an import of internal/simclock.
package telemetry

import "time"

// Hub bundles the two telemetry sinks a component needs. A nil *Hub (and
// the nil Registry/Tracer inside a zero Hub) disables everything.
type Hub struct {
	Registry *Registry
	Tracer   *Tracer
}

// NewHub builds a hub with a fresh registry and a tracer holding up to
// traceCap finished spans (0 means DefaultTraceCap). virtualNow, when
// non-nil, supplies the virtual clock reading stamped on spans.
func NewHub(traceCap int, virtualNow func() time.Time) *Hub {
	return &Hub{
		Registry: NewRegistry(),
		Tracer:   NewTracer(traceCap, virtualNow),
	}
}

// Reg returns the hub's registry, nil when the hub is nil.
func (h *Hub) Reg() *Registry {
	if h == nil {
		return nil
	}
	return h.Registry
}

// Trc returns the hub's tracer, nil when the hub is nil.
func (h *Hub) Trc() *Tracer {
	if h == nil {
		return nil
	}
	return h.Tracer
}
