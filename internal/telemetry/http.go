package telemetry

import (
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns the admin endpoint bundle every long-running command
// mounts:
//
//	GET /metrics        — the registry in Prometheus text format
//	GET /debug/traces   — the tracer's buffered spans as JSON Lines
//	GET /debug/pprof/*  — the standard net/http/pprof profiles
//
// A nil hub (or nil registry/tracer) serves empty bodies rather than 404s,
// so probes keep working when telemetry is off.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.Reg().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = h.Trc().WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// HTTPMetrics wraps an http.Handler with per-route request counting and
// latency histograms:
//
//	doxmeter_http_requests_total{service,route,code}
//	doxmeter_http_request_seconds{service,route}
//
// routeOf maps a request to a low-cardinality route label (nil falls back
// to NormalizePath). A nil registry returns next untouched — the zero-cost
// path.
//
// The wrapper deliberately does not recover panics: the fault injector's
// reset/stall modes abort responses via http.ErrAbortHandler and the
// net/http server must keep seeing that panic. Aborted requests are simply
// not counted, like a mid-flight connection loss in a real frontend.
func HTTPMetrics(reg *Registry, service string, routeOf func(*http.Request) string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	if routeOf == nil {
		routeOf = NormalizePath
	}
	requests := reg.NewCounter("doxmeter_http_requests_total",
		"HTTP requests served, by service, route and status code.",
		"service", "route", "code")
	latency := reg.NewHistogram("doxmeter_http_request_seconds",
		"HTTP request handling latency in seconds.", nil,
		"service", "route")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeOf(r)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		latency.With(service, route).Observe(time.Since(start).Seconds())
		requests.With(service, route, statusText(sw.code)).Inc()
	})
}

// statusText renders a status code label without fmt.
func statusText(code int) string {
	if code >= 100 && code < 600 {
		const digits = "0123456789"
		return string([]byte{digits[code/100], digits[code/10%10], digits[code%10]})
	}
	return "000"
}

// NormalizePath maps a URL path to a bounded-cardinality route label by
// replacing numeric path segments (and numeric .json stems) with ":n" and
// dropping the query string: /b/thread/1234.json → /b/thread/:n.json.
func NormalizePath(r *http.Request) string {
	segs := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	for i, s := range segs {
		stem, suffix := s, ""
		if j := strings.IndexByte(s, '.'); j >= 0 {
			stem, suffix = s[:j], s[j:]
		}
		if stem != "" && isDigits(stem) {
			segs[i] = ":n" + suffix
		}
	}
	return "/" + strings.Join(segs, "/")
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
