package telemetry

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerBundle(t *testing.T) {
	hub := NewHub(16, nil)
	hub.Registry.NewCounter("bundle_total", "").With().Add(5)
	_, s := hub.Tracer.StartSpan(context.Background(), "probe")
	s.End()

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "bundle_total 5") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body = get("/debug/traces")
	if code != http.StatusOK || !strings.Contains(body, `"name":"probe"`) {
		t.Errorf("/debug/traces = %d %q", code, body)
	}
	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

func TestHandlerBundleNilHub(t *testing.T) {
	var hub *Hub
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/traces"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s on nil hub = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestHTTPMetricsMiddleware(t *testing.T) {
	reg := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "missing") {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok"))
	})
	h := HTTPMetrics(reg, "board", nil, inner)
	for _, path := range []string{"/b/thread/123.json", "/b/thread/456.json", "/b/missing/7"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	var out strings.Builder
	reg.WritePrometheus(&out)
	text := out.String()
	for _, want := range []string{
		`doxmeter_http_requests_total{service="board",route="/b/thread/:n.json",code="200"} 2`,
		`doxmeter_http_requests_total{service="board",route="/b/missing/:n",code="404"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if got := reg.Sum("doxmeter_http_requests_total"); got != 3 {
		t.Errorf("request total %v, want 3", got)
	}
}

func TestHTTPMetricsNilRegistryPassThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(204) })
	h := HTTPMetrics(nil, "x", nil, inner)
	if _, ok := h.(http.HandlerFunc); !ok {
		// h must be exactly inner; calling it proves it still works either way.
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != 204 {
		t.Errorf("pass-through broke the handler: %d", rec.Code)
	}
}

func TestNormalizePath(t *testing.T) {
	for path, want := range map[string]string{
		"/b/thread/1234.json":        "/b/thread/:n.json",
		"/pol/catalog.json":          "/pol/catalog.json",
		"/api_scraping.php?since=9":  "/api_scraping.php",
		"/instagram/id/42":           "/instagram/id/:n",
		"/":                          "/",
		"/osn/twitter/user1234extra": "/osn/twitter/user1234extra", // mixed segment kept
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if got := NormalizePath(req); got != want {
			t.Errorf("NormalizePath(%s) = %s, want %s", path, got, want)
		}
	}
}
