// Package watchlist implements the paper's proposed anti-SWATing watchlist
// (§7.2): addresses and phone numbers that recently appeared in dox files,
// shareable with police departments so that a violence report against a
// listed address can be treated with appropriate suspicion. Entries expire:
// the elevated SWATing risk is concentrated in the weeks after a dox drops.
package watchlist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"
)

// DefaultTTL is how long an entry stays listed.
const DefaultTTL = 90 * 24 * time.Hour

// Entry is one listed identifier.
type Entry struct {
	AddedAt   time.Time
	ExpiresAt time.Time
	Source    string // site where the dox appeared
	Hits      int    // how many doxes listed it
}

// Watchlist stores normalized, hashed identifiers. Like the notification
// registry, it never stores raw addresses — a leaked watchlist must not be
// a dox archive. Safe for concurrent use.
type Watchlist struct {
	ttl time.Duration
	now func() time.Time

	mu      sync.RWMutex
	entries map[string]*Entry
}

// New creates a watchlist. now supplies current time (virtual clocks in the
// simulation; time.Now in production); ttl <= 0 uses DefaultTTL.
func New(ttl time.Duration, now func() time.Time) *Watchlist {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	if now == nil {
		now = time.Now
	}
	return &Watchlist{ttl: ttl, now: now, entries: make(map[string]*Entry)}
}

// normalizeAddress canonicalizes a street address: lowercase, collapse
// whitespace, strip punctuation.
func normalizeAddress(addr string) string {
	var b strings.Builder
	lastSpace := true
	for _, c := range strings.ToLower(strings.TrimSpace(addr)) {
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			b.WriteRune(c)
			lastSpace = false
		default:
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// normalizePhone reduces a phone number to digits (10-digit NANP form).
func normalizePhone(phone string) string {
	var b strings.Builder
	for _, c := range phone {
		if c >= '0' && c <= '9' {
			b.WriteRune(c)
		}
	}
	d := b.String()
	if len(d) == 11 && d[0] == '1' {
		d = d[1:]
	}
	return d
}

func hash(kind, norm string) string {
	sum := sha256.Sum256([]byte(kind + "\x00" + norm))
	return hex.EncodeToString(sum[:])
}

// AddAddress lists an address seen in a dox.
func (w *Watchlist) AddAddress(addr, source string) {
	w.add(hash("addr", normalizeAddress(addr)), source)
}

// AddPhone lists a phone number seen in a dox.
func (w *Watchlist) AddPhone(phone, source string) {
	norm := normalizePhone(phone)
	if len(norm) < 7 {
		return
	}
	w.add(hash("phone", norm), source)
}

func (w *Watchlist) add(key, source string) {
	now := w.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.entries[key]; ok && now.Before(e.ExpiresAt) {
		e.Hits++
		e.ExpiresAt = now.Add(w.ttl) // a repeat listing renews the window
		return
	}
	w.entries[key] = &Entry{AddedAt: now, ExpiresAt: now.Add(w.ttl), Source: source, Hits: 1}
}

// CheckAddress reports whether an address is currently listed.
func (w *Watchlist) CheckAddress(addr string) (Entry, bool) {
	return w.check(hash("addr", normalizeAddress(addr)))
}

// CheckPhone reports whether a phone number is currently listed.
func (w *Watchlist) CheckPhone(phone string) (Entry, bool) {
	return w.check(hash("phone", normalizePhone(phone)))
}

func (w *Watchlist) check(key string) (Entry, bool) {
	now := w.now()
	w.mu.RLock()
	defer w.mu.RUnlock()
	e, ok := w.entries[key]
	if !ok || !now.Before(e.ExpiresAt) {
		return Entry{}, false
	}
	return *e, true
}

// Purge removes expired entries and returns how many were dropped.
func (w *Watchlist) Purge() int {
	now := w.now()
	w.mu.Lock()
	defer w.mu.Unlock()
	dropped := 0
	for k, e := range w.entries {
		if !now.Before(e.ExpiresAt) {
			delete(w.entries, k)
			dropped++
		}
	}
	return dropped
}

// Size returns the number of stored entries (including not-yet-purged
// expired ones).
func (w *Watchlist) Size() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.entries)
}

// State is the watchlist's checkpoint form: hashed keys and listing
// windows only, never raw addresses or numbers (§3.3). TTL and the clock
// are construction-time config and are not persisted.
type State struct {
	Entries map[string]Entry `json:"entries"`
}

// Snapshot captures the listings for checkpointing (deep copy).
func (w *Watchlist) Snapshot() State {
	w.mu.RLock()
	defer w.mu.RUnlock()
	st := State{Entries: make(map[string]Entry, len(w.entries))}
	for k, e := range w.entries {
		st.Entries[k] = *e
	}
	return st
}

// Restore replaces the listings from a snapshot (deep copy).
func (w *Watchlist) Restore(st State) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.entries = make(map[string]*Entry, len(st.Entries))
	for k, e := range st.Entries {
		cp := e
		w.entries[k] = &cp
	}
	return nil
}

// Handler exposes the check API for dispatch integration:
//
//	GET /check?address=...   or   GET /check?phone=...
//
// responds {"listed":bool,"hits":n,"added":RFC3339}. Additions are not
// exposed over HTTP — only the detection pipeline writes.
func (w *Watchlist) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/check", func(rw http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var e Entry
		var ok bool
		switch {
		case q.Get("address") != "":
			e, ok = w.CheckAddress(q.Get("address"))
		case q.Get("phone") != "":
			e, ok = w.CheckPhone(q.Get("phone"))
		default:
			http.Error(rw, "address or phone required", http.StatusBadRequest)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		resp := map[string]any{"listed": ok}
		if ok {
			resp["hits"] = e.Hits
			resp["added"] = e.AddedAt.Format(time.RFC3339)
		}
		_ = json.NewEncoder(rw).Encode(resp)
	})
	return mux
}
