package watchlist

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock is a controllable now() source.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time { return f.t }

func newWL() (*Watchlist, *fakeClock) {
	fc := &fakeClock{t: time.Date(2016, 7, 20, 0, 0, 0, 0, time.UTC)}
	return New(30*24*time.Hour, fc.now), fc
}

func TestAddressNormalization(t *testing.T) {
	w, _ := newWL()
	w.AddAddress("42 Elm St, Chicago, IL 60601", "pastebin")
	variants := []string{
		"42 Elm St, Chicago, IL 60601",
		"42 elm st chicago il 60601",
		"42 Elm St., Chicago IL  60601",
		"  42 ELM ST CHICAGO IL 60601 ",
	}
	for _, v := range variants {
		if _, ok := w.CheckAddress(v); !ok {
			t.Errorf("variant %q not matched", v)
		}
	}
	if _, ok := w.CheckAddress("43 Elm St, Chicago, IL 60601"); ok {
		t.Error("different house number matched")
	}
}

func TestPhoneNormalization(t *testing.T) {
	w, _ := newWL()
	w.AddPhone("(312) 555-0142", "pastebin")
	for _, v := range []string{"312-555-0142", "+13125550142", "312.555.0142", "3125550142"} {
		if _, ok := w.CheckPhone(v); !ok {
			t.Errorf("variant %q not matched", v)
		}
	}
	if _, ok := w.CheckPhone("312-555-0143"); ok {
		t.Error("different number matched")
	}
	// Garbage numbers are not listed.
	w.AddPhone("12", "x")
	if w.Size() != 1 {
		t.Errorf("short phone was listed (size=%d)", w.Size())
	}
}

func TestExpiry(t *testing.T) {
	w, fc := newWL()
	w.AddAddress("1 Main St", "src")
	fc.t = fc.t.Add(29 * 24 * time.Hour)
	if _, ok := w.CheckAddress("1 Main St"); !ok {
		t.Fatal("entry expired early")
	}
	fc.t = fc.t.Add(2 * 24 * time.Hour)
	if _, ok := w.CheckAddress("1 Main St"); ok {
		t.Fatal("entry did not expire")
	}
	if dropped := w.Purge(); dropped != 1 {
		t.Fatalf("purge dropped %d, want 1", dropped)
	}
	if w.Size() != 0 {
		t.Fatal("purge left entries")
	}
}

func TestRepeatListingRenews(t *testing.T) {
	w, fc := newWL()
	w.AddAddress("1 Main St", "a")
	fc.t = fc.t.Add(20 * 24 * time.Hour)
	w.AddAddress("1 Main St", "b") // renews
	fc.t = fc.t.Add(20 * 24 * time.Hour)
	e, ok := w.CheckAddress("1 Main St")
	if !ok {
		t.Fatal("renewed entry expired")
	}
	if e.Hits != 2 {
		t.Fatalf("hits = %d, want 2", e.Hits)
	}
}

func TestDefaultTTL(t *testing.T) {
	w := New(0, nil)
	if w.ttl != DefaultTTL {
		t.Fatalf("ttl = %v", w.ttl)
	}
}

func TestHTTPCheck(t *testing.T) {
	w, _ := newWL()
	w.AddAddress("42 Elm St Chicago IL", "pastebin")
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	get := func(q string) map[string]any {
		resp, err := http.Get(srv.URL + "/check?" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d for %q", resp.StatusCode, q)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if out := get("address=42+Elm+St+Chicago+IL"); out["listed"] != true {
		t.Errorf("listed address reported %v", out)
	}
	if out := get("address=9+Nowhere+Ln"); out["listed"] != false {
		t.Errorf("unlisted address reported %v", out)
	}
	resp, _ := http.Get(srv.URL + "/check")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query = %d", resp.StatusCode)
	}
}

func TestSnapshotRestore(t *testing.T) {
	now := time.Unix(1000, 0).UTC()
	w := New(24*time.Hour, func() time.Time { return now })
	w.AddAddress("42 Elm St, Chicago IL", "pastebin")
	w.AddAddress("42 Elm St, Chicago IL", "4chan/b")
	w.AddPhone("312-555-0142", "pastebin")

	st := w.Snapshot()
	fresh := New(24*time.Hour, func() time.Time { return now })
	if err := fresh.Restore(st); err != nil {
		t.Fatal(err)
	}
	entry, listed := fresh.CheckAddress("42 elm st chicago il")
	if !listed || entry.Hits != 2 {
		t.Fatalf("restored address entry = %+v listed %v", entry, listed)
	}
	if _, listed := fresh.CheckPhone("(312) 555-0142"); !listed {
		t.Fatal("restored phone missing")
	}
	// Deep copy: purging the restored list leaves the original intact.
	now = now.Add(48 * time.Hour)
	if n := fresh.Purge(); n != 2 {
		t.Fatalf("purged = %d, want 2", n)
	}
	now = time.Unix(1000, 0).UTC()
	if _, listed := w.CheckPhone("312-555-0142"); !listed {
		t.Fatal("purge of restored copy bled into the original")
	}
}
