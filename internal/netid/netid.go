// Package netid defines the online social networks tracked by the study.
//
// The paper's extractor pulls references to six OSNs (Facebook, Google+,
// Twitter, Instagram, YouTube, Twitch) plus Skype handles out of dox files
// (Tables 2 and 9), and the scraper monitors four of them (Facebook,
// Instagram, Twitter, YouTube) for status changes (Table 10). This leaf
// package holds the shared enumeration so that the generator, extractor and
// the simulated networks agree on identity.
package netid

import "fmt"

// Network identifies an online social network or messaging service.
type Network int

// The tracked networks, in the order the paper's Table 9 reports them.
const (
	Facebook Network = iota
	GooglePlus
	Twitter
	Instagram
	YouTube
	Twitch
	Skype
	numNetworks
)

// All lists every tracked network.
func All() []Network {
	out := make([]Network, numNetworks)
	for i := range out {
		out[i] = Network(i)
	}
	return out
}

// Monitored lists the networks whose accounts the scraper revisits for
// status changes (paper §6.2.1). Skype, Google+ and Twitch are extracted but
// not monitored.
func Monitored() []Network {
	return []Network{Facebook, Instagram, Twitter, YouTube}
}

// String returns the display name used in tables.
func (n Network) String() string {
	switch n {
	case Facebook:
		return "Facebook"
	case GooglePlus:
		return "Google+"
	case Twitter:
		return "Twitter"
	case Instagram:
		return "Instagram"
	case YouTube:
		return "YouTube"
	case Twitch:
		return "Twitch"
	case Skype:
		return "Skype"
	default:
		return fmt.Sprintf("Network(%d)", int(n))
	}
}

// Slug returns the lowercase identifier used in URLs and storage keys.
func (n Network) Slug() string {
	switch n {
	case Facebook:
		return "facebook"
	case GooglePlus:
		return "googleplus"
	case Twitter:
		return "twitter"
	case Instagram:
		return "instagram"
	case YouTube:
		return "youtube"
	case Twitch:
		return "twitch"
	case Skype:
		return "skype"
	default:
		return "unknown"
	}
}

// FromSlug resolves a slug back to a Network.
func FromSlug(s string) (Network, bool) {
	for _, n := range All() {
		if n.Slug() == s {
			return n, true
		}
	}
	return 0, false
}

// Domain returns the primary web domain for networks reachable by URL.
// Skype has no public profile URL and returns "".
func (n Network) Domain() string {
	switch n {
	case Facebook:
		return "facebook.com"
	case GooglePlus:
		return "plus.google.com"
	case Twitter:
		return "twitter.com"
	case Instagram:
		return "instagram.com"
	case YouTube:
		return "youtube.com"
	case Twitch:
		return "twitch.tv"
	default:
		return ""
	}
}

// Ref is a reference to a specific account on a specific network.
type Ref struct {
	Network  Network
	Username string
}

// Key returns a canonical map key for the reference.
func (r Ref) Key() string { return r.Network.Slug() + ":" + r.Username }

// String implements fmt.Stringer.
func (r Ref) String() string { return r.Network.String() + "/" + r.Username }
