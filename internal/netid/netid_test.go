package netid

import "testing"

func TestAllCount(t *testing.T) {
	if got := len(All()); got != 7 {
		t.Fatalf("All() has %d networks, want 7", got)
	}
}

func TestMonitoredSubset(t *testing.T) {
	mon := Monitored()
	if len(mon) != 4 {
		t.Fatalf("Monitored() has %d networks, want 4 (paper §6.2.1)", len(mon))
	}
	for _, m := range mon {
		if m == Skype || m == GooglePlus || m == Twitch {
			t.Errorf("%v should not be monitored", m)
		}
	}
}

func TestSlugRoundTrip(t *testing.T) {
	for _, n := range All() {
		got, ok := FromSlug(n.Slug())
		if !ok || got != n {
			t.Errorf("FromSlug(%q) = %v,%v; want %v", n.Slug(), got, ok, n)
		}
	}
	if _, ok := FromSlug("myspace"); ok {
		t.Error("FromSlug accepted unknown network")
	}
}

func TestStringsUnique(t *testing.T) {
	names := map[string]bool{}
	slugs := map[string]bool{}
	for _, n := range All() {
		if names[n.String()] {
			t.Errorf("duplicate display name %q", n.String())
		}
		if slugs[n.Slug()] {
			t.Errorf("duplicate slug %q", n.Slug())
		}
		names[n.String()] = true
		slugs[n.Slug()] = true
	}
	if Network(99).String() != "Network(99)" {
		t.Errorf("out-of-range String() = %q", Network(99).String())
	}
	if Network(99).Slug() != "unknown" {
		t.Errorf("out-of-range Slug() = %q", Network(99).Slug())
	}
}

func TestDomains(t *testing.T) {
	if Skype.Domain() != "" {
		t.Error("Skype should have no profile domain")
	}
	for _, n := range []Network{Facebook, GooglePlus, Twitter, Instagram, YouTube, Twitch} {
		if n.Domain() == "" {
			t.Errorf("%v missing domain", n)
		}
	}
}

func TestRefKey(t *testing.T) {
	a := Ref{Network: Twitter, Username: "alice"}
	b := Ref{Network: Instagram, Username: "alice"}
	if a.Key() == b.Key() {
		t.Error("same username on different networks must have distinct keys")
	}
	if a.Key() != "twitter:alice" {
		t.Errorf("Key() = %q", a.Key())
	}
	if a.String() != "Twitter/alice" {
		t.Errorf("String() = %q", a.String())
	}
}
