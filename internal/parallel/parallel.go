// Package parallel provides the bounded-worker primitive shared by the
// pipeline's concurrent stages: the crawler's in-poll fetch fan-out, the
// classifier's batch scoring, the monitor's due-account sweep, and the
// study's per-document worker pool.
//
// The contract that keeps parallel runs bit-identical to sequential ones is
// deliberately narrow: ForEach promises nothing about execution order, so
// callers write result i into slot i of a pre-sized slice and then commit
// the slots in deterministic order on the calling goroutine. All shared
// mutation lives in the ordered commit, never in the workers.
package parallel

import "sync"

// ForEach invokes fn(i) for every i in [0, n), running at most workers
// calls concurrently. workers <= 1 (or n <= 1) degrades to a plain loop on
// the calling goroutine, guaranteeing behaviour identical to the
// pre-concurrency code path — which is why every Concurrency/Parallelism
// knob in this repo treats 1 as "fully sequential".
func ForEach(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
