// Package parallel provides the bounded-worker primitive shared by the
// pipeline's concurrent stages: the crawler's in-poll fetch fan-out, the
// classifier's batch scoring, the monitor's due-account sweep, and the
// study's per-document worker pool.
//
// The contract that keeps parallel runs bit-identical to sequential ones is
// deliberately narrow: ForEach promises nothing about execution order, so
// callers write result i into slot i of a pre-sized slice and then commit
// the slots in deterministic order on the calling goroutine. All shared
// mutation lives in the ordered commit, never in the workers.
package parallel

import "sync"

// ForEach invokes fn(i) for every i in [0, n), running at most workers
// calls concurrently. workers <= 1 (or n <= 1) degrades to a plain loop on
// the calling goroutine, guaranteeing behaviour identical to the
// pre-concurrency code path — which is why every Concurrency/Parallelism
// knob in this repo treats 1 as "fully sequential".
func ForEach(n, workers int, fn func(int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// Workers returns the effective worker count ForEach and ForEachWorker use
// for n items: workers clamped to n, with anything <= 1 meaning one
// (sequential). Callers sizing per-worker scratch allocate exactly this
// many slots.
func Workers(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return 1
	}
	return workers
}

// ForEachWorker is ForEach for callers that keep per-worker scratch state:
// fn receives a stable worker id in [0, Workers(n, workers)) alongside the
// item index, and no two concurrent calls share a worker id — so fn may
// freely reuse scratch[w] without locks. The sequential degradation rule is
// ForEach's: one worker, id 0, on the calling goroutine.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	workers = Workers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
