package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 4, 100} {
		const n = 257
		var hits [n]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	// workers <= 1 must be a plain in-order loop on the caller's goroutine.
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential ForEach visited %v", order)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak int32
	ForEach(64, workers, func(int) {
		a := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if a <= p || atomic.CompareAndSwapInt32(&peak, p, a) {
				break
			}
		}
		atomic.AddInt32(&active, -1)
	})
	if p := atomic.LoadInt32(&peak); p > workers {
		t.Fatalf("observed %d concurrent calls, limit %d", p, workers)
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called with n=0")
	}
}

func TestWorkers(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{10, 0, 1},
		{10, -3, 1},
		{10, 1, 1},
		{10, 4, 4},
		{3, 8, 3},
		{0, 8, 1},
	}
	for _, c := range cases {
		if got := Workers(c.n, c.workers); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

func TestForEachWorkerCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 4, 100} {
		const n = 257
		var hits [n]int32
		maxWorker := int32(-1)
		ForEachWorker(n, workers, func(w, i int) {
			atomic.AddInt32(&hits[i], 1)
			for {
				m := atomic.LoadInt32(&maxWorker)
				if int32(w) <= m || atomic.CompareAndSwapInt32(&maxWorker, m, int32(w)) {
					break
				}
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
		if limit := int32(Workers(n, workers)); atomic.LoadInt32(&maxWorker) >= limit {
			t.Fatalf("workers=%d: worker id %d out of range [0,%d)", workers, maxWorker, limit)
		}
	}
}

func TestForEachWorkerSequential(t *testing.T) {
	// workers <= 1 runs in order on the caller's goroutine with worker id 0.
	var order []int
	ForEachWorker(5, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("sequential worker id %d", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential ForEachWorker visited %v", order)
		}
	}
}

func TestForEachWorkerExclusiveIDs(t *testing.T) {
	// No two concurrent calls may share a worker id: worker-pinned scratch
	// relies on it. Flag any overlap with a per-worker busy bit.
	const workers = 4
	busy := make([]int32, workers)
	ForEachWorker(200, workers, func(w, _ int) {
		if !atomic.CompareAndSwapInt32(&busy[w], 0, 1) {
			t.Errorf("worker id %d used concurrently", w)
		}
		atomic.StoreInt32(&busy[w], 0)
	})
}
