package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 4, 100} {
		const n = 257
		var hits [n]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	// workers <= 1 must be a plain in-order loop on the caller's goroutine.
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential ForEach visited %v", order)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak int32
	ForEach(64, workers, func(int) {
		a := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if a <= p || atomic.CompareAndSwapInt32(&peak, p, a) {
				break
			}
		}
		atomic.AddInt32(&active, -1)
	})
	if p := atomic.LoadInt32(&peak); p > workers {
		t.Fatalf("observed %d concurrent calls, limit %d", p, workers)
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called with n=0")
	}
}
