package feed

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"doxmeter/internal/netid"
)

func TestPublishAndReplay(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		seq := l.Publish("pastebin", URLFor("pastebin", "abc"), time.Now(), []netid.Ref{
			{Network: netid.Facebook, Username: "user1"},
		})
		if seq != int64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d", l.Len())
	}
	all := l.After(0, 0)
	if len(all) != 5 {
		t.Fatalf("replay = %d events", len(all))
	}
	tail := l.After(3, 0)
	if len(tail) != 2 || tail[0].Seq != 4 {
		t.Fatalf("cursor replay = %v", tail)
	}
	if got := l.After(99, 0); got != nil {
		t.Fatalf("beyond-end replay = %v", got)
	}
	limited := l.After(0, 2)
	if len(limited) != 2 {
		t.Fatalf("limited replay = %d", len(limited))
	}
	if all[0].Accounts[0] != "facebook:user1" {
		t.Fatalf("account key = %q", all[0].Accounts[0])
	}
}

func TestHTTPReplay(t *testing.T) {
	l := NewLog()
	l.Publish("pastebin", "u1", time.Now(), nil)
	l.Publish("4chan/b", "u2", time.Now(), nil)
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events?cursor=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	if len(events) != 2 || events[1].Site != "4chan/b" {
		t.Fatalf("events = %v", events)
	}
}

func TestHTTPLongPoll(t *testing.T) {
	l := NewLog()
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	done := make(chan []Event, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/events?cursor=0&wait=5s")
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		var events []Event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e Event
			_ = json.Unmarshal(sc.Bytes(), &e)
			events = append(events, e)
		}
		done <- events
	}()
	time.Sleep(50 * time.Millisecond)
	l.Publish("pastebin", "late", time.Now(), nil)
	select {
	case events := <-done:
		if len(events) != 1 || events[0].URL != "late" {
			t.Fatalf("long poll got %v", events)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never returned")
	}
}

func TestHTTPLongPollTimeout(t *testing.T) {
	l := NewLog()
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()
	start := time.Now()
	resp, err := http.Get(srv.URL + "/events?cursor=0&wait=100ms")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond || elapsed > 3*time.Second {
		t.Fatalf("timeout poll took %v", elapsed)
	}
}

func TestHTTPBadParams(t *testing.T) {
	srv := httptest.NewServer(NewLog().Handler())
	defer srv.Close()
	for _, q := range []string{"cursor=-1", "cursor=abc", "limit=0", "limit=x", "wait=2h", "wait=bogus"} {
		resp, _ := http.Get(srv.URL + "/events?" + q)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestURLFor(t *testing.T) {
	if u := URLFor("pastebin", "k1"); !strings.Contains(u, "pastebin") || !strings.Contains(u, "k1") {
		t.Errorf("URLFor = %q", u)
	}
	if u := URLFor("4chan/b", "12"); !strings.Contains(u, "4chan") {
		t.Errorf("URLFor = %q", u)
	}
}
