package feed

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"doxmeter/internal/netid"
)

func TestPublishAndReplay(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		seq := l.Publish("pastebin", URLFor("pastebin", "abc"), time.Now(), []netid.Ref{
			{Network: netid.Facebook, Username: "user1"},
		})
		if seq != int64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d", l.Len())
	}
	all, err := l.After(0, 0)
	if err != nil || len(all) != 5 {
		t.Fatalf("replay = %d events, err %v", len(all), err)
	}
	tail, err := l.After(3, 0)
	if err != nil || len(tail) != 2 || tail[0].Seq != 4 {
		t.Fatalf("cursor replay = %v, err %v", tail, err)
	}
	if got, err := l.After(99, 0); err != nil || got != nil {
		t.Fatalf("beyond-end replay = %v, err %v", got, err)
	}
	limited, err := l.After(0, 2)
	if err != nil || len(limited) != 2 {
		t.Fatalf("limited replay = %d, err %v", len(limited), err)
	}
	if all[0].Accounts[0] != "facebook:user1" {
		t.Fatalf("account key = %q", all[0].Accounts[0])
	}
}

func TestHTTPReplay(t *testing.T) {
	l := NewLog()
	l.Publish("pastebin", "u1", time.Now(), nil)
	l.Publish("4chan/b", "u2", time.Now(), nil)
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events?cursor=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	if len(events) != 2 || events[1].Site != "4chan/b" {
		t.Fatalf("events = %v", events)
	}
}

func TestHTTPLongPoll(t *testing.T) {
	l := NewLog()
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	done := make(chan []Event, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/events?cursor=0&wait=5s")
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		var events []Event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e Event
			_ = json.Unmarshal(sc.Bytes(), &e)
			events = append(events, e)
		}
		done <- events
	}()
	time.Sleep(50 * time.Millisecond)
	l.Publish("pastebin", "late", time.Now(), nil)
	select {
	case events := <-done:
		if len(events) != 1 || events[0].URL != "late" {
			t.Fatalf("long poll got %v", events)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never returned")
	}
}

func TestHTTPLongPollTimeout(t *testing.T) {
	l := NewLog()
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()
	start := time.Now()
	resp, err := http.Get(srv.URL + "/events?cursor=0&wait=100ms")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond || elapsed > 3*time.Second {
		t.Fatalf("timeout poll took %v", elapsed)
	}
}

func TestHTTPBadParams(t *testing.T) {
	srv := httptest.NewServer(NewLog().Handler())
	defer srv.Close()
	for _, q := range []string{"cursor=-1", "cursor=abc", "limit=0", "limit=x", "wait=2h", "wait=bogus"} {
		resp, _ := http.Get(srv.URL + "/events?" + q)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestRingRetention(t *testing.T) {
	l := NewLogRetention(4)
	for i := 0; i < 10; i++ {
		l.Publish("pastebin", URLFor("pastebin", "k"), time.Now(), nil)
	}
	if l.Len() != 4 {
		t.Fatalf("retained = %d, want 4", l.Len())
	}
	if l.FirstSeq() != 7 || l.LastSeq() != 10 {
		t.Fatalf("window = [%d,%d], want [7,10]", l.FirstSeq(), l.LastSeq())
	}
	// Cursor 6 asks for events starting at seq 7 — still retained.
	evs, err := l.After(6, 0)
	if err != nil || len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("After(6) = %v, err %v", evs, err)
	}
	// Cursor 5 would need seq 6, which the ring has overwritten.
	if _, err := l.After(5, 0); err != ErrCursorExpired {
		t.Fatalf("After(5) err = %v, want ErrCursorExpired", err)
	}
	if _, err := l.After(0, 0); err != ErrCursorExpired {
		t.Fatalf("After(0) err = %v, want ErrCursorExpired", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	l := NewLogRetention(8)
	for i := 0; i < 12; i++ {
		l.Publish("pastebin", URLFor("pastebin", "k"), time.Unix(int64(i), 0).UTC(), []netid.Ref{
			{Network: netid.Twitter, Username: "u"},
		})
	}
	st := l.Snapshot()
	if st.NextSeq != 13 || len(st.Events) != 8 {
		t.Fatalf("snapshot = next %d, %d events", st.NextSeq, len(st.Events))
	}

	fresh := NewLogRetention(8)
	if err := fresh.Restore(st); err != nil {
		t.Fatal(err)
	}
	if fresh.FirstSeq() != l.FirstSeq() || fresh.LastSeq() != l.LastSeq() {
		t.Fatalf("restored window = [%d,%d], want [%d,%d]",
			fresh.FirstSeq(), fresh.LastSeq(), l.FirstSeq(), l.LastSeq())
	}
	want, _ := l.After(6, 0)
	got, err := fresh.After(6, 0)
	if err != nil || len(got) != len(want) {
		t.Fatalf("restored After = %v, err %v", got, err)
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].URL != want[i].URL {
			t.Fatalf("restored event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Publishing continues from the restored sequence.
	if seq := fresh.Publish("pastebin", "u", time.Now(), nil); seq != 13 {
		t.Fatalf("post-restore seq = %d, want 13", seq)
	}

	// Restoring into a smaller ring clips to the newest events.
	small := NewLogRetention(3)
	if err := small.Restore(st); err != nil {
		t.Fatal(err)
	}
	if small.Len() != 3 || small.FirstSeq() != 10 || small.LastSeq() != 12 {
		t.Fatalf("clipped restore = len %d window [%d,%d]", small.Len(), small.FirstSeq(), small.LastSeq())
	}

	// Inconsistent state is rejected.
	bad := st
	bad.NextSeq = 99
	if err := NewLog().Restore(bad); err == nil {
		t.Fatal("inconsistent restore accepted")
	}
}

func TestHTTPCursorExpired(t *testing.T) {
	l := NewLogRetention(2)
	for i := 0; i < 5; i++ {
		l.Publish("pastebin", "u", time.Now(), nil)
	}
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events?cursor=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("status = %d, want 410", resp.StatusCode)
	}
	var buf [256]byte
	n, _ := resp.Body.Read(buf[:])
	if !strings.Contains(string(buf[:n]), "cursor=3") {
		t.Fatalf("body = %q, want resync hint at cursor=3", buf[:n])
	}
}

// TestConcurrentLongPoll hammers the log with concurrent publishers,
// long-pollers, and cancelled clients; run under -race it proves the
// waiter/ring bookkeeping is race-clean and no poller misses its wake-up.
func TestConcurrentLongPoll(t *testing.T) {
	l := NewLogRetention(64)
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	const pollers = 8
	got := make(chan int, pollers)
	for i := 0; i < pollers; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/events?cursor=0&wait=5s")
			if err != nil {
				got <- -1
				return
			}
			defer resp.Body.Close()
			n := 0
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				n++
			}
			got <- n
		}()
	}
	// A few clients give up before any event arrives.
	for i := 0; i < 4; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/events?cursor=0&wait=5s", nil)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(40 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				l.Publish("pastebin", "u", time.Now(), nil)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < pollers; i++ {
		select {
		case n := <-got:
			if n < 1 {
				t.Fatalf("poller got %d events", n)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("poller never woke")
		}
	}
	if l.LastSeq() != 32 {
		t.Fatalf("published = %d, want 32", l.LastSeq())
	}
}

func TestURLFor(t *testing.T) {
	if u := URLFor("pastebin", "k1"); !strings.Contains(u, "pastebin") || !strings.Contains(u, "k1") {
		t.Errorf("URLFor = %q", u)
	}
	if u := URLFor("4chan/b", "12"); !strings.Contains(u, "4chan") {
		t.Errorf("URLFor = %q", u)
	}
}
