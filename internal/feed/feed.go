// Package feed implements the paper's proposed threat-exchange integration
// (§7.1): a feed of detected dox URLs and the social accounts they
// reference, for OSN operators (the paper names Facebook's Threat Exchange)
// to consume — notifying victims, enabling stricter filtering, and watching
// for account compromise.
//
// The feed is an append-only log with cursor-based replay and long-poll
// subscription, exposed as JSON lines over HTTP.
package feed

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"doxmeter/internal/netid"
)

// Event is one detected dox.
type Event struct {
	Seq      int64     `json:"seq"`
	Site     string    `json:"site"`
	URL      string    `json:"url"`
	SeenAt   time.Time `json:"seen_at"`
	Accounts []string  `json:"accounts"` // network:username keys
}

// Log is the append-only event log. Safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	events []Event
	waiter chan struct{}
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{waiter: make(chan struct{})}
}

// Publish appends a detection event and wakes any long-pollers. It returns
// the assigned sequence number.
func (l *Log) Publish(site, url string, seenAt time.Time, accounts []netid.Ref) int64 {
	keys := make([]string, len(accounts))
	for i, a := range accounts {
		keys[i] = a.Key()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := int64(len(l.events) + 1)
	l.events = append(l.events, Event{Seq: seq, Site: site, URL: url, SeenAt: seenAt, Accounts: keys})
	close(l.waiter)
	l.waiter = make(chan struct{})
	return seq
}

// After returns up to limit events with Seq > cursor.
func (l *Log) After(cursor int64, limit int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= int64(len(l.events)) {
		return nil
	}
	out := l.events[cursor:]
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	cp := make([]Event, len(out))
	copy(cp, out)
	return cp
}

// Len returns the total number of published events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// wait returns a channel closed at the next publish.
func (l *Log) wait() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiter
}

// Handler exposes the feed:
//
//	GET /events?cursor=N&limit=M            — replay events after N
//	GET /events?cursor=N&wait=1s            — long-poll for new events
//
// Responses are JSON lines, one event per line.
func (l *Log) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		cursor := int64(0)
		if s := q.Get("cursor"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil || v < 0 {
				http.Error(w, "bad cursor", http.StatusBadRequest)
				return
			}
			cursor = v
		}
		limit := 1000
		if s := q.Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = v
		}
		events := l.After(cursor, limit)
		if len(events) == 0 && q.Get("wait") != "" {
			d, err := time.ParseDuration(q.Get("wait"))
			if err != nil || d <= 0 || d > time.Minute {
				http.Error(w, "bad wait", http.StatusBadRequest)
				return
			}
			select {
			case <-l.wait():
				events = l.After(cursor, limit)
			case <-time.After(d):
			case <-req.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		_ = bw.Flush()
	})
	return mux
}

// URLFor formats the canonical paste URL for a detection (what the paper
// would hand Facebook: "a feed of pastebin.com URLs").
func URLFor(site, id string) string {
	if site == "pastebin" {
		return fmt.Sprintf("https://pastebin.example/%s", id)
	}
	return fmt.Sprintf("https://%s.example/%s", site, id)
}
