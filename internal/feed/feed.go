// Package feed implements the paper's proposed threat-exchange integration
// (§7.1): a feed of detected dox URLs and the social accounts they
// reference, for OSN operators (the paper names Facebook's Threat Exchange)
// to consume — notifying victims, enabling stricter filtering, and watching
// for account compromise.
//
// The feed is a bounded, append-only log with cursor-based replay and
// long-poll subscription, exposed as JSON lines over HTTP. Retention is a
// ring: once more than Retention events have been published the oldest are
// compacted away and a replay from a cursor older than the window reports
// ErrCursorExpired instead of silently returning the wrong events.
package feed

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"doxmeter/internal/netid"
)

// DefaultRetention is how many events NewLog keeps before compacting.
const DefaultRetention = 1 << 16

// ErrCursorExpired reports a replay cursor older than the retention window;
// the consumer must resync (e.g. from FirstSeq()-1) and accept the gap.
var ErrCursorExpired = errors.New("feed: cursor expired (events compacted)")

// Event is one detected dox.
type Event struct {
	Seq      int64     `json:"seq"`
	Site     string    `json:"site"`
	URL      string    `json:"url"`
	SeenAt   time.Time `json:"seen_at"`
	Accounts []string  `json:"accounts"` // network:username keys
}

// Log is the bounded event log. Safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	retention int
	buf       []Event // ring storage; grows to retention then wraps
	start     int     // index of the oldest retained event
	n         int     // retained count
	nextSeq   int64   // next sequence number to assign (seqs start at 1)
	waiter    chan struct{}
}

// NewLog returns an empty log with DefaultRetention.
func NewLog() *Log { return NewLogRetention(DefaultRetention) }

// NewLogRetention returns an empty log retaining up to n events
// (n < 1 uses DefaultRetention).
func NewLogRetention(n int) *Log {
	if n < 1 {
		n = DefaultRetention
	}
	return &Log{retention: n, nextSeq: 1, waiter: make(chan struct{})}
}

// Publish appends a detection event and wakes any long-pollers. It returns
// the assigned sequence number. The oldest event is compacted away once the
// log exceeds its retention.
func (l *Log) Publish(site, url string, seenAt time.Time, accounts []netid.Ref) int64 {
	keys := make([]string, len(accounts))
	for i, a := range accounts {
		keys[i] = a.Key()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.nextSeq
	l.nextSeq++
	e := Event{Seq: seq, Site: site, URL: url, SeenAt: seenAt, Accounts: keys}
	switch {
	case len(l.buf) < l.retention: // still growing toward full retention
		l.buf = append(l.buf, e)
		l.n++
	case l.n < len(l.buf): // restored with slack (can't happen today; safe)
		l.buf[(l.start+l.n)%len(l.buf)] = e
		l.n++
	default: // saturated: overwrite the oldest
		l.buf[l.start] = e
		l.start = (l.start + 1) % len(l.buf)
	}
	close(l.waiter)
	l.waiter = make(chan struct{})
	return seq
}

// After returns up to limit events with Seq > cursor. If the cursor falls
// before the retention window (events it has not seen were compacted), it
// returns ErrCursorExpired.
func (l *Log) After(cursor int64, limit int) ([]Event, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	first := l.nextSeq - int64(l.n) // seq of the oldest retained event
	if cursor+1 < first {
		return nil, ErrCursorExpired
	}
	if cursor+1 >= l.nextSeq {
		return nil, nil
	}
	count := int(l.nextSeq - cursor - 1)
	if limit > 0 && count > limit {
		count = limit
	}
	out := make([]Event, count)
	off := int(cursor + 1 - first)
	for i := 0; i < count; i++ {
		out[i] = l.buf[(l.start+off+i)%len(l.buf)]
	}
	return out, nil
}

// FirstSeq returns the sequence number of the oldest retained event, or 0
// when the log is empty.
func (l *Log) FirstSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return 0
	}
	return l.nextSeq - int64(l.n)
}

// LastSeq returns the most recently assigned sequence number (0 before the
// first publish). Cursor space is never recycled, so LastSeq is also the
// total published count.
func (l *Log) LastSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Len returns the number of currently retained events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Retention returns the configured retention bound.
func (l *Log) Retention() int { return l.retention }

// State is the log's checkpoint form: the retained window plus the cursor
// space high-water mark, so a restored feed keeps issuing unique seqs.
type State struct {
	NextSeq int64   `json:"next_seq"`
	Events  []Event `json:"events"` // oldest → newest
}

// Snapshot captures the retained window for checkpointing.
func (l *Log) Snapshot() State {
	l.mu.Lock()
	defer l.mu.Unlock()
	evs := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		evs[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return State{NextSeq: l.nextSeq, Events: evs}
}

// Restore replaces the log contents from a snapshot. If the snapshot holds
// more events than this log's retention, only the newest are kept.
func (l *Log) Restore(st State) error {
	evs := st.Events
	if len(evs) > 0 {
		last := evs[len(evs)-1].Seq
		if st.NextSeq != last+1 {
			return fmt.Errorf("feed: snapshot next_seq %d does not follow last event seq %d", st.NextSeq, last)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if over := len(evs) - l.retention; over > 0 {
		evs = evs[over:]
	}
	l.buf = append([]Event(nil), evs...)
	l.start = 0
	l.n = len(evs)
	l.nextSeq = st.NextSeq
	if l.nextSeq < 1 {
		l.nextSeq = 1
	}
	close(l.waiter) // wake pollers parked across the restore
	l.waiter = make(chan struct{})
	return nil
}

// wait returns a channel closed at the next publish.
func (l *Log) wait() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiter
}

// Handler exposes the feed:
//
//	GET /events?cursor=N&limit=M            — replay events after N
//	GET /events?cursor=N&wait=1s            — long-poll for new events
//
// Responses are JSON lines, one event per line. A cursor that has fallen
// out of the retention window gets 410 Gone; the consumer should resync
// from the advertised oldest cursor.
func (l *Log) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		cursor := int64(0)
		if s := q.Get("cursor"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil || v < 0 {
				http.Error(w, "bad cursor", http.StatusBadRequest)
				return
			}
			cursor = v
		}
		limit := 1000
		if s := q.Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = v
		}
		events, err := l.After(cursor, limit)
		if err == nil && len(events) == 0 && q.Get("wait") != "" {
			d, derr := time.ParseDuration(q.Get("wait"))
			if derr != nil || d <= 0 || d > time.Minute {
				http.Error(w, "bad wait", http.StatusBadRequest)
				return
			}
			select {
			case <-l.wait():
				events, err = l.After(cursor, limit)
			case <-time.After(d):
			case <-req.Context().Done():
				return
			}
		}
		if err != nil {
			http.Error(w, fmt.Sprintf("cursor expired; resync from cursor=%d", l.FirstSeq()-1), http.StatusGone)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		_ = bw.Flush()
	})
	return mux
}

// URLFor formats the canonical paste URL for a detection (what the paper
// would hand Facebook: "a feed of pastebin.com URLs").
func URLFor(site, id string) string {
	if site == "pastebin" {
		return fmt.Sprintf("https://pastebin.example/%s", id)
	}
	return fmt.Sprintf("https://%s.example/%s", site, id)
}
