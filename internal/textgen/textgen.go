// Package textgen synthesizes the study corpus: the 1.7M-file population of
// paste-site documents (scaled by sim.Config.Scale) of which roughly 0.3%
// are dox files, plus the labeled training corpus the paper built from
// dox-for-hire "proof-of-work" archives and a hand-checked pastebin crawl.
//
// The generator is the *only* component that sees ground truth. Everything
// downstream — classifier, extractor, dedup, monitor — operates on rendered
// text exactly as the paper's pipeline did, and the benchmarks then compare
// what the pipeline measured against what the generator planted.
package textgen

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"doxmeter/internal/randutil"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
)

// Site identifies one of the paper's five collection sources.
type Site string

// The collection sources (paper Figure 1).
const (
	SitePastebin     Site = "pastebin"
	SiteFourchanB    Site = "4chan/b"
	SiteFourchanPol  Site = "4chan/pol"
	SiteEightchPol   Site = "8ch/pol"
	SiteEightchBapho Site = "8ch/baphomet"
)

// AllSites lists the sources in Figure 1 order.
func AllSites() []Site {
	return []Site{SitePastebin, SiteFourchanB, SiteFourchanPol, SiteEightchPol, SiteEightchBapho}
}

// IsBoard reports whether the site serves HTML imageboard posts rather than
// plain-text pastes.
func (s Site) IsBoard() bool { return s != SitePastebin }

// DupKind classifies a dox post's duplication status (§3.1.4).
type DupKind int

// Duplication kinds.
const (
	Original DupKind = iota
	ExactDup
	NearDup
)

// String implements fmt.Stringer.
func (d DupKind) String() string {
	switch d {
	case ExactDup:
		return "exact-dup"
	case NearDup:
		return "near-dup"
	default:
		return "original"
	}
}

// Truth is the generator-side ground truth attached to a dox document.
type Truth struct {
	Victim     *sim.Victim
	Dup        DupKind
	OriginalID string // document ID of the original, for duplicates
	Render     *DoxRender
}

// Doc is one collected document.
type Doc struct {
	ID     string
	Site   Site
	Title  string
	Body   string
	HTML   bool
	Posted time.Time
	Truth  *Truth // nil for benign documents
}

// IsDox reports ground-truth dox status.
func (d *Doc) IsDox() bool { return d.Truth != nil }

// Corpus is the full two-period document population, per site, sorted by
// post time.
type Corpus struct {
	Streams map[Site][]Doc
}

// TotalDocs counts all documents across streams.
func (c *Corpus) TotalDocs() int {
	n := 0
	for _, s := range c.Streams {
		n += len(s)
	}
	return n
}

// TotalDoxes counts ground-truth dox documents.
func (c *Corpus) TotalDoxes() int {
	n := 0
	for _, s := range c.Streams {
		for i := range s {
			if s[i].IsDox() {
				n++
			}
		}
	}
	return n
}

// Generator produces documents from a world.
type Generator struct {
	world *sim.World
	rng   *rand.Rand
}

// New returns a generator bound to the world, with its own derived RNG
// stream so corpus generation does not perturb other subsystems.
func New(w *sim.World) *Generator {
	return &Generator{
		world: w,
		rng:   randutil.New(w.Cfg.Seed ^ 0x7465787467656e), // "textgen"
	}
}

// World exposes the backing world (benchmarks need ground truth access).
func (g *Generator) World() *sim.World { return g.world }

// period-2 dox placement weights across sources. 8ch/baphomet was a
// dedicated doxing board, so its dox density is far higher than its volume
// share; pastebin still carries most doxes in absolute terms.
var p2DoxSiteWeights = map[Site]float64{
	SitePastebin:     0.60,
	SiteFourchanB:    0.10,
	SiteFourchanPol:  0.12,
	SiteEightchPol:   0.08,
	SiteEightchBapho: 0.10,
}

// Corpus generates the full two-period corpus.
func (g *Generator) Corpus() *Corpus {
	cfg := g.world.Cfg
	c := &Corpus{Streams: make(map[Site][]Doc)}

	victims := make([]*sim.Victim, len(g.world.Victims))
	copy(victims, g.world.Victims)
	randutil.Shuffle(g.rng, victims)
	nextVictim := 0

	// Posted originals eligible for duplication, per victim. Reposts skew
	// heavily toward doxes that reference social accounts (those are the
	// ones crews spread for harassment), which is what makes the paper's
	// account-set de-duplication able to catch 14.2% of dox files.
	type posted struct {
		doc    Doc
		victim *sim.Victim
	}
	var originals []posted
	var withAccounts []int // indexes into originals

	pickOriginal := func(r *rand.Rand) posted {
		if len(withAccounts) > 0 && (r.Float64() < 0.9 || len(withAccounts) == len(originals)) {
			return originals[withAccounts[r.Intn(len(withAccounts))]]
		}
		return originals[r.Intn(len(originals))]
	}

	makeDoxDoc := func(r *rand.Rand, site Site, when time.Time, seq int) Doc {
		id := g.docID(r, site, seq)
		pExact, pNear := cfg.ExactDupFraction, cfg.NearDupFraction
		x := r.Float64()
		switch {
		case len(originals) > 0 && (x < pExact || nextVictim >= len(victims)):
			src := pickOriginal(r)
			return Doc{
				ID: id, Site: site, Title: doxTitle(r, src.victim), Posted: when,
				Body: src.doc.Body, HTML: false,
				Truth: &Truth{Victim: src.victim, Dup: ExactDup, OriginalID: src.doc.ID, Render: src.doc.Truth.Render},
			}
		case len(originals) > 0 && x < pExact+pNear:
			src := pickOriginal(r)
			return Doc{
				ID: id, Site: site, Title: doxTitle(r, src.victim), Posted: when,
				Body: g.NearDuplicate(r, src.doc.Body), HTML: false,
				Truth: &Truth{Victim: src.victim, Dup: NearDup, OriginalID: src.doc.ID, Render: src.doc.Truth.Render},
			}
		default:
			v := victims[nextVictim%len(victims)]
			if nextVictim < len(victims) {
				nextVictim++
			}
			render := g.Dox(r, v)
			doc := Doc{
				ID: id, Site: site, Title: doxTitle(r, v), Posted: when,
				Body: render.Body, HTML: false,
				Truth: &Truth{Victim: v, Dup: Original, Render: render},
			}
			originals = append(originals, posted{doc: doc, victim: v})
			if len(v.OSN) > 0 {
				withAccounts = append(withAccounts, len(originals)-1)
			}
			return doc
		}
	}

	// Period 1: pastebin only.
	r1 := randutil.Derive(g.rng, "period1")
	g.fillSite(c, r1, SitePastebin, simclock.Period1, cfg.ScaledPastebinP1(), cfg.ScaledDoxesP1(), makeDoxDoc)

	// Period 2: all five sources; dox budget split by weight.
	r2 := randutil.Derive(g.rng, "period2")
	doxP2 := cfg.ScaledDoxesP2()
	volumes := map[Site]int{
		SitePastebin:     cfg.ScaledPastebinP2(),
		SiteFourchanB:    cfg.ScaledFourchanB(),
		SiteFourchanPol:  cfg.ScaledFourchanPol(),
		SiteEightchPol:   cfg.ScaledEightchPol(),
		SiteEightchBapho: cfg.ScaledEightchBapho(),
	}
	remaining := doxP2
	sites := AllSites()
	for i, site := range sites {
		var nDox int
		if i == len(sites)-1 {
			nDox = remaining
		} else {
			nDox = int(float64(doxP2)*p2DoxSiteWeights[site] + 0.5)
		}
		if nDox > remaining {
			nDox = remaining
		}
		// A board cannot carry more doxes than posts.
		if nDox > volumes[site] {
			nDox = volumes[site]
		}
		remaining -= nDox
		g.fillSite(c, randutil.Derive(r2, string(site)), site, simclock.Period2, volumes[site], nDox, makeDoxDoc)
	}
	return c
}

// fillSite generates one site-period stream: nDox dox documents and
// (volume-nDox) benign documents, uniformly timed and sorted.
func (g *Generator) fillSite(c *Corpus, r *rand.Rand, site Site, period simclock.Period,
	volume, nDox int, makeDox func(*rand.Rand, Site, time.Time, int) Doc) {
	if nDox > volume {
		nDox = volume
	}
	docs := make([]Doc, 0, volume)
	span := period.End.Sub(period.Start)
	// Dox docs first so duplicate chronology is coherent: timestamps are
	// drawn uniformly and the stream sorted afterwards; duplicates of a
	// later original are rare and harmless (the paper could not observe
	// original posting order either — "we cannot know when a dox was
	// originally publicly posted").
	for i := 0; i < nDox; i++ {
		when := period.Start.Add(time.Duration(r.Int63n(int64(span))))
		doc := makeDox(r, site, when, i)
		if site.IsBoard() {
			doc.Body = toBoardHTML(doc.Body)
			doc.HTML = true
		}
		docs = append(docs, doc)
	}
	for i := nDox; i < volume; i++ {
		when := period.Start.Add(time.Duration(r.Int63n(int64(span))))
		var doc Doc
		if site.IsBoard() {
			doc = Doc{
				ID: g.docID(r, site, i), Site: site, Posted: when,
				Body: g.BenignBoardPost(r), HTML: true,
			}
		} else {
			title, body := g.BenignPaste(r)
			doc = Doc{ID: g.docID(r, site, i), Site: site, Title: title, Posted: when, Body: body}
		}
		docs = append(docs, doc)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Posted.Before(docs[j].Posted) })
	c.Streams[site] = append(c.Streams[site], docs...)
}

// docID creates a site-appropriate unique document ID.
func (g *Generator) docID(r *rand.Rand, site Site, seq int) string {
	if site == SitePastebin {
		return randutil.HexString(r, 8)
	}
	var buf [16]byte
	b := strconv.AppendInt(buf[:0], int64(1+r.Intn(8)), 10)
	b = randutil.AppendPad(b, seq, 6)
	return string(b)
}

func doxTitle(r *rand.Rand, v *sim.Victim) string {
	switch r.Intn(4) {
	case 0:
		return v.Alias + " dox"
	case 1:
		return "doxed: " + strings.ToLower(v.Alias)
	case 2:
		return "info drop"
	default:
		return "Untitled"
	}
}

// toBoardHTML wraps plain dox text as an imageboard comment body: newlines
// become <br> and angle brackets are escaped, matching what the chan APIs
// serve and what html2text must undo. Single pass into pooled scratch;
// byte-identical to escape-then-replace because no replacement emits '\n'.
func toBoardHTML(text string) string {
	p := getBody()
	b := *p
	for i := 0; i < len(text); i++ {
		switch c := text[i]; c {
		case '&':
			b = append(b, "&amp;"...)
		case '<':
			b = append(b, "&lt;"...)
		case '>':
			b = append(b, "&gt;"...)
		case '\n':
			b = append(b, "<br>"...)
		default:
			b = append(b, c)
		}
	}
	return finishBody(p, b)
}

// TrainingExample is one labeled classifier-training document.
type TrainingExample struct {
	Body  string
	IsDox bool
	// Victim and Render carry ground truth for positive examples; they
	// back the extractor evaluation's hand-labeled sample (Table 2).
	Victim *sim.Victim
	Render *DoxRender
}

// TrainingSet renders the paper's labeled corpus: cfg.TrainPositives dox
// files from the dox-for-hire proof-of-work victims and cfg.TrainNegatives
// benign pastes from a clean crawl (§3.1.2: 749 and 4,220).
func (g *Generator) TrainingSet() []TrainingExample {
	cfg := g.world.Cfg
	r := randutil.Derive(g.rng, "training")
	out := make([]TrainingExample, 0, cfg.TrainPositives+cfg.TrainNegatives)
	for _, v := range g.world.TrainVictims {
		render := g.Dox(r, v)
		out = append(out, TrainingExample{Body: render.Body, IsDox: true, Victim: v, Render: render})
	}
	for i := 0; i < cfg.TrainNegatives; i++ {
		_, body := g.BenignTrainingPaste(r)
		out = append(out, TrainingExample{Body: body})
	}
	randutil.Shuffle(r, out)
	return out
}
