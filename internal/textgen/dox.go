package textgen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"doxmeter/internal/netid"
	"doxmeter/internal/randutil"
	"doxmeter/internal/sim"
)

// Dox files are semi-structured (paper §3.1.3): mostly key/value lines, but
// with enough format diversity that extraction is genuinely lossy. Each
// field and network renders in an "easy" machine-parseable form with a
// calibrated probability, and otherwise in a "hard" human-only form. The
// hard rates are set so the extractor's measured accuracy lands near the
// paper's Table 2 without the extractor ever seeing ground truth.

// easyRate is the probability a network reference in a full or terse dox
// renders in a form the reference extractor can recover. Form-style doxes
// (rate formRate below) always render accounts with easy labels, so these
// are calibrated as (Table2Target - formRate) / (1 - formRate).
var easyRate = map[netid.Network]float64{
	netid.Instagram:  0.944,
	netid.Twitch:     0.944,
	netid.GooglePlus: 0.887,
	netid.Twitter:    0.840,
	netid.Facebook:   0.821,
	netid.YouTube:    0.765,
	netid.Skype:      0.802,
}

// Field render rates for full/terse styles, calibrated against Table 2
// jointly with the form style (see formRate).
const (
	easyBothNames = 0.558 // "Name: John Smith" — first and last extractable
	easyFirstOnly = 0.178 // "Name: John S." — first extractable only
	easyAgeRate   = 0.783
	easyPhoneRate = 0.634
)

var banners = []string{
	"==================== D O X ====================",
	"[✖] ------------- TARGET ACQUIRED ------------- [✖]",
	"░░░░░░░░░░░░ DOX DROP ░░░░░░░░░░░░",
	"########## you got doxed ##########",
	"-----BEGIN DOX-----",
	"╔══════════════════════════════╗\n║        DOXED. OWNED.         ║\n╚══════════════════════════════╝",
}

var outros = []string{
	"have fun with this one", "you know what to do",
	"dont do anything illegal ;)", "say hi to him for me",
	"more to come", "this is what happens when you mess with us",
}

var justiceReasons = []string{
	"this guy scammed at least six people on the marketplace and kept the money",
	"he has been snitching to the mods and working with law enforcement",
	"ripped off buyers in the trading thread and laughed about it",
	"he scammed a 14 year old out of his account, someone had to do something",
}

var revengeReasons = []string{
	"this is what you get for stealing my girl",
	"he thought he could talk to me like that and get away with it",
	"been an attention whore in the chat for months, enjoy",
	"you banned me from the server so here you go buddy",
}

var competitiveReasons = []string{
	"he said he was undoxable. took me 20 minutes",
	"proof that nobody is hidden from us, this one claimed he was clean",
	"practice run, target thought his opsec was good lol",
}

var politicalReasons = []string{
	"exposing another klan member, they live among you",
	"this one trades cp in private channels, spread this everywhere",
	"works at the fur farm, animals deserve better, make him famous",
}

var familyLabels = []string{"Mother", "Father", "Brother", "Sister", "Cousin"}

// Style is the dox render style.
type Style int

// Render styles: Full carries banner/outro/credits; Terse drops the
// decoration; Form renders through the shared person-form template and is
// the classifier's hard-positive region.
const (
	StyleFull Style = iota
	StyleTerse
	StyleForm
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case StyleTerse:
		return "terse"
	case StyleForm:
		return "form"
	default:
		return "full"
	}
}

// DoxRender is one rendered dox body plus its render-time ground truth.
type DoxRender struct {
	Body    string
	Style   Style
	Credits []*sim.Doxer
	// EasyRendered records, per network, whether the reference extractor
	// is expected to recover the account (the render used an easy form).
	EasyRendered  map[netid.Network]bool
	FirstNameEasy bool
	LastNameEasy  bool
	AgeEasy       bool
	PhoneEasy     bool
}

// Style rates. Form-style doxes share a template with benign info posts
// (the false-negative band, Table 1 recall); terse doxes drop the
// decoration but keep every field.
const (
	formRate  = 0.15
	terseRate = 0.15
)

var dobLabels = []string{"DOB: ", "Date of Birth: ", "Born: "}
var emailLabels = []string{"Email: ", "E-mail: ", "email; "}
var ipLabels = []string{"IP: ", "IP Address: ", "ip-addr: "}
var hairColors = []string{"brown", "black", "blonde", "red"}
var criminalRecords = []string{"misdemeanor possession 2014", "DUI 2013", "shoplifting charge dropped"}

// Dox renders a complete dox file for the victim. Identical victims render
// with independently random cosmetics, but the substantive content (the
// fields and account set) is fixed by the victim's ground truth, matching
// the paper's observation that reposted doxes carry the same accounts.
func (g *Generator) Dox(r *rand.Rand, v *sim.Victim) *DoxRender {
	out := &DoxRender{EasyRendered: make(map[netid.Network]bool)}

	switch x := r.Float64(); {
	case x < formRate:
		return g.doxForm(r, v, out)
	case x < formRate+terseRate:
		out.Style = StyleTerse
	default:
		out.Style = StyleFull
	}
	terse := out.Style == StyleTerse

	p := getBody()
	b := *p
	if !terse {
		b = append(b, randutil.Pick(r, banners)...)
		b = append(b, "\n\n"...)
	}

	// Credits: at top ~half the time, otherwise at the bottom.
	credits := g.pickCredits(r)
	out.Credits = credits
	creditLine := renderCredits(r, credits)
	topCredits := r.Intn(2) == 0 && !terse
	if topCredits && creditLine != "" {
		b = append(b, creditLine...)
		b = append(b, "\n\n"...)
	}

	// Motivation pre-script (paper §3.2: a "why I doxed this person"
	// pre-or-postscript).
	switch v.Motive {
	case sim.MotiveJustice:
		b = append(b, "Reason: "...)
		b = append(b, randutil.Pick(r, justiceReasons)...)
		b = append(b, "\n\n"...)
	case sim.MotiveRevenge:
		b = append(b, "Reason: "...)
		b = append(b, randutil.Pick(r, revengeReasons)...)
		b = append(b, "\n\n"...)
	case sim.MotiveCompetitive:
		b = append(b, "Reason: "...)
		b = append(b, randutil.Pick(r, competitiveReasons)...)
		b = append(b, "\n\n"...)
	case sim.MotivePolitical:
		b = append(b, "Reason: "...)
		b = append(b, randutil.Pick(r, politicalReasons)...)
		b = append(b, "\n\n"...)
	}

	if terse {
		b = append(b, "aka "...)
		b = append(b, v.Alias...)
		b = append(b, '\n')
	} else {
		b = append(b, "Alias: "...)
		b = append(b, v.Alias...)
		b = append(b, '\n')
	}
	b = g.renderName(r, b, v, out)
	b = g.renderAge(r, b, v, out)
	if v.Fields.DOB {
		b = append(b, randutil.Pick(r, dobLabels)...)
		b = v.DOB.AppendFormat(b, "01/02/2006")
		b = append(b, '\n')
	}
	if v.Gender != sim.GenderUnstated {
		b = append(b, "Gender: "...)
		b = appendLowerASCII(b, v.Gender.String())
		b = append(b, '\n')
	}
	if v.Fields.Address {
		b = g.renderAddress(r, b, v)
	}
	b = g.renderPhone(r, b, v, out)
	if v.Fields.Email {
		b = append(b, randutil.Pick(r, emailLabels)...)
		b = append(b, v.Email...)
		b = append(b, '\n')
	}
	if v.Fields.IP {
		b = append(b, randutil.Pick(r, ipLabels)...)
		b = append(b, v.IP...)
		b = append(b, '\n')
	}
	if v.Fields.ISP {
		b = append(b, "ISP: "...)
		b = append(b, v.ISP...)
		b = append(b, '\n')
	}
	if v.Fields.School {
		b = append(b, "School: "...)
		b = append(b, pickSchool(r)...)
		b = append(b, '\n')
	}
	if v.Fields.Family && len(v.FamilyMembers) > 0 {
		b = append(b, "\nFamily:\n"...)
		for i, fam := range v.FamilyMembers {
			b = append(b, "  "...)
			b = append(b, familyLabels[i%len(familyLabels)]...)
			b = append(b, ": "...)
			b = append(b, fam...)
			b = append(b, '\n')
		}
	}
	if v.Fields.Usernames {
		b = append(b, "Other usernames: "...)
		b = appendLowerASCII(b, v.Alias)
		b = append(b, ", "...)
		b = appendLowerASCII(b, v.FirstName)
		b = randutil.AppendDigits(r, b, 2)
		b = append(b, '\n')
	}
	if v.Fields.Passwords {
		b = append(b, "Password (old leak): "...)
		b = randutil.AppendLowerWord(r, b, 6)
		b = randutil.AppendDigits(r, b, 3)
		b = append(b, '\n')
	}
	if v.Fields.Physical {
		b = append(b, "Height: 5'"...)
		b = strconv.AppendInt(b, int64(4+r.Intn(8)), 10)
		b = append(b, "\"  Weight: "...)
		b = strconv.AppendInt(b, int64(120+r.Intn(100)), 10)
		b = append(b, " lbs  Hair: "...)
		b = append(b, randutil.Pick(r, hairColors)...)
		b = append(b, '\n')
	}
	if v.Fields.Criminal {
		b = append(b, "Criminal record: "...)
		b = append(b, randutil.Pick(r, criminalRecords)...)
		b = append(b, '\n')
	}
	if v.Fields.SSN {
		b = append(b, "SSN: "...)
		b = randutil.AppendDigits(r, b, 3)
		b = append(b, '-')
		b = randutil.AppendDigits(r, b, 2)
		b = append(b, '-')
		b = randutil.AppendDigits(r, b, 4)
		b = append(b, '\n')
	}
	if v.Fields.CreditCard {
		b = append(b, "CC: 4"...)
		b = randutil.AppendDigits(r, b, 15)
		b = append(b, " exp "...)
		b = randutil.AppendPad(b, 1+r.Intn(12), 2)
		b = append(b, '/')
		b = strconv.AppendInt(b, int64(17+r.Intn(4)), 10)
		b = append(b, '\n')
	}
	if v.Fields.Financial {
		b = append(b, "Paypal: "...)
		b = append(b, v.Email...)
		b = append(b, "  (balance unknown)\n"...)
	}

	// OSN accounts.
	if len(v.OSN) > 0 {
		if terse {
			b = append(b, '\n')
		} else {
			b = append(b, "\nAccounts:\n"...)
		}
		for _, n := range netid.All() { // stable order
			u, ok := v.OSN[n]
			if !ok {
				continue
			}
			easy := randutil.Bool(r, easyRate[n])
			out.EasyRendered[n] = easy
			b = appendOSN(r, b, n, u, easy)
			b = append(b, '\n')
		}
	}

	// Community accounts (gamer/hacker) or celebrity note.
	if len(v.CommunityAccounts) > 0 {
		b = append(b, "\nFound on:\n"...)
		for _, acct := range v.CommunityAccounts {
			b = append(b, "  "...)
			b = append(b, acct.Site...)
			b = append(b, '/')
			b = append(b, acct.Username...)
			b = append(b, '\n')
		}
	}
	if v.CelebrityRole != "" {
		b = append(b, "\nYes, THAT "...)
		b = append(b, v.FirstName...)
		b = append(b, " — the "...)
		b = append(b, v.CelebrityRole...)
		b = append(b, ".\n"...)
	}

	if !terse {
		b = append(b, '\n')
		b = append(b, randutil.Pick(r, outros)...)
		b = append(b, '\n')
	}
	if !topCredits && creditLine != "" {
		b = append(b, '\n')
		b = append(b, creditLine...)
		b = append(b, '\n')
	}
	out.Body = finishBody(p, b)
	return out
}

// doxForm renders the victim through the shared person-form template (see
// form.go). Doxers who just fill in "the template" produce posts that are
// textually near-identical to voluntary info posts; whether any given one
// is detected depends on its field mass, which is the paper-shaped
// irreducible error. All referenced accounts render with easy labels.
func (g *Generator) doxForm(r *rand.Rand, v *sim.Victim, out *DoxRender) *DoxRender {
	out.Style = StyleForm
	out.FirstNameEasy, out.LastNameEasy, out.AgeEasy = true, true, true
	f := formFill{
		Aka:   v.Alias,
		First: v.FirstName,
		Last:  v.LastName,
		Age:   v.Age,
		Hobby: randutil.Bool(r, 0.4),
		Outro: randutil.Bool(r, 0.4),
	}
	if randutil.Bool(r, 0.75) {
		f.City = v.City
		f.State = v.Region.Name
	}
	if v.Gender != sim.GenderUnstated && randutil.Bool(r, 0.5) {
		f.Gender = strings.ToLower(v.Gender.String())
	}
	if v.Fields.Email {
		f.Email = v.Email
	}
	if v.Fields.Phone && randutil.Bool(r, 0.30) {
		f.Phone = v.Phone
		out.PhoneEasy = true
	}
	if v.Fields.Address && randutil.Bool(r, 0.25) {
		f.Address = v.Street
		if v.Fields.Zip {
			f.Address += " " + v.Zip
		}
	}
	body := renderPersonForm(r, f)

	// Every OSN account the dox references renders with an easy label so
	// the extractor's per-network accuracy calibration stays joint with
	// the full/terse styles.
	var accounts strings.Builder
	for _, n := range netid.All() {
		u, ok := v.OSN[n]
		if !ok {
			continue
		}
		out.EasyRendered[n] = true
		accounts.WriteString("  " + n.String() + ": " + u + "\n")
	}
	// IP line: doxers include it even in template posts when they have it.
	extra := ""
	if v.Fields.IP && randutil.Bool(r, 0.35) {
		extra = "IP: " + v.IP + "\n"
	}
	out.Body = body + extra + accounts.String()
	return out
}

var nameLabels = []string{"Name: ", "Full Name: ", "Real name: ", "IRL Name: "}

func (g *Generator) renderName(r *rand.Rand, b []byte, v *sim.Victim, out *DoxRender) []byte {
	switch x := r.Float64(); {
	case x < easyBothNames:
		out.FirstNameEasy, out.LastNameEasy = true, true
		b = append(b, randutil.Pick(r, nameLabels)...)
		b = append(b, v.FirstName...)
		b = append(b, ' ')
		b = append(b, v.LastName...)
		b = append(b, '\n')
	case x < easyBothNames+easyFirstOnly:
		out.FirstNameEasy = true
		switch r.Intn(2) {
		case 0:
			b = append(b, "Name: "...)
			b = append(b, v.FirstName...)
			b = append(b, ' ')
			b = append(b, v.LastName[:1]...)
			b = append(b, ".\n"...)
		default:
			b = append(b, "First name: "...)
			b = append(b, v.FirstName...)
			b = append(b, '\n')
		}
	default:
		// Prose-embedded name: the reference extractor does not attempt
		// free-text name recognition, mirroring the paper's error band.
		b = append(b, "goes by "...)
		b = append(b, v.FirstName...)
		b = append(b, ' ')
		b = append(b, v.LastName...)
		b = append(b, " irl, ask around\n"...)
	}
	return b
}

var ageWords = []string{"zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine"}
var ageLabels = []string{"Age: ", "age; ", "Age - "}

func (g *Generator) renderAge(r *rand.Rand, b []byte, v *sim.Victim, out *DoxRender) []byte {
	if randutil.Bool(r, easyAgeRate) {
		out.AgeEasy = true
		b = append(b, randutil.Pick(r, ageLabels)...)
		b = strconv.AppendInt(b, int64(v.Age), 10)
		b = append(b, '\n')
		return b
	}
	// Spelled-out age inside prose.
	tens := v.Age / 10
	ones := v.Age % 10
	b = append(b, "the kid is "...)
	b = append(b, ageWords[tens]...)
	b = append(b, "ty "...)
	b = append(b, ageWords[ones]...)
	b = append(b, " years old btw\n"...)
	return b
}

func (g *Generator) renderAddress(r *rand.Rand, b []byte, v *sim.Victim) []byte {
	zip := ""
	if v.Fields.Zip {
		zip = " " + v.Zip
	}
	switch r.Intn(3) {
	case 0:
		b = append(b, "Address: "...)
		b = append(b, v.Street...)
		b = append(b, ", "...)
		b = append(b, v.City...)
		b = append(b, ", "...)
		b = append(b, v.Region.Code...)
		b = append(b, zip...)
		b = append(b, '\n')
	case 1:
		b = append(b, "Address: "...)
		b = append(b, v.Street...)
		b = append(b, "\nCity: "...)
		b = append(b, v.City...)
		b = append(b, "\nState: "...)
		b = append(b, v.Region.Name...)
		b = append(b, '\n')
		if zip != "" {
			b = append(b, "Zip:"...)
			b = append(b, zip...)
			b = append(b, '\n')
		}
	default:
		b = append(b, "Lives at: "...)
		b = append(b, v.Street...)
		b = append(b, ' ')
		b = append(b, v.City...)
		b = append(b, ' ')
		b = append(b, v.Region.Code...)
		b = append(b, zip...)
		b = append(b, '\n')
	}
	if v.Country != "USA" {
		b = append(b, "Country: "...)
		b = append(b, v.Country...)
		b = append(b, '\n')
	} else if r.Intn(3) == 0 {
		b = append(b, "Country: USA\n"...)
	}
	return b
}

var phoneLabels = []string{"Phone: ", "Phone Number: ", "Cell: ", "phone; "}

func (g *Generator) renderPhone(r *rand.Rand, b []byte, v *sim.Victim, out *DoxRender) []byte {
	if !v.Fields.Phone {
		return b
	}
	if randutil.Bool(r, easyPhoneRate) {
		out.PhoneEasy = true
		b = append(b, randutil.Pick(r, phoneLabels)...)
		b = append(b, v.Phone...)
		b = append(b, '\n')
		return b
	}
	// Hard variants: spaced digits or prose.
	digits := digitsOnly(v.Phone)
	switch r.Intn(2) {
	case 0:
		b = append(b, "number is "...)
		for i := 0; i < len(digits); i++ {
			if i > 0 {
				b = append(b, ' ')
			}
			b = append(b, digits[i])
		}
		b = append(b, " hit him up\n"...)
	default:
		b = append(b, "text him, starts with "...)
		b = append(b, digits[:3]...)
		b = append(b, " ends "...)
		b = append(b, digits[len(digits)-2:]...)
		b = append(b, " (full in thread)\n"...)
	}
	return b
}

func digitsOnly(s string) string {
	var b strings.Builder
	for _, c := range s {
		if c >= '0' && c <= '9' {
			b.WriteRune(c)
		}
	}
	return b.String()
}

// appendOSN renders one account reference into b. Easy forms match the
// paper's examples (1) and (2); hard forms match (3) and (4), which defeat
// single-account extraction. Draw order matches the original renderOSN
// (the decoy digit draws before the format selector).
func appendOSN(r *rand.Rand, b []byte, n netid.Network, user string, easy bool) []byte {
	if easy {
		switch r.Intn(3) {
		case 0:
			if d := n.Domain(); d != "" {
				b = append(b, "  "...)
				b = append(b, n.String()...)
				b = append(b, ": https://"...)
				b = append(b, d...)
				b = append(b, '/')
				return append(b, user...)
			}
			b = append(b, "  "...)
			b = append(b, n.String()...)
			b = append(b, ": "...)
			return append(b, user...)
		case 1:
			b = append(b, "  "...)
			b = append(b, n.String()...)
			b = append(b, ": "...)
			return append(b, user...)
		default:
			b = append(b, "  "...)
			b = append(b, shortLabel(n)...)
			b = append(b, ' ')
			return append(b, user...)
		}
	}
	decoyDigit := byte('0' + r.Intn(10))
	switch r.Intn(2) {
	case 0:
		// Plural list with decoys: "fbs: a - b - c".
		b = append(b, "  "...)
		b = appendLowerASCII(b, shortLabel(n))
		b = append(b, "s: "...)
		b = append(b, user...)
		b = append(b, decoyDigit)
		b = append(b, " - "...)
		b = append(b, user...)
		b = append(b, " - old"...)
		return randutil.AppendDigits(r, b, 2)
	default:
		b = append(b, "  "...)
		b = appendLowerASCII(b, n.String())
		b = append(b, "s; "...)
		b = append(b, user...)
		b = append(b, decoyDigit)
		b = append(b, " and "...)
		return append(b, user...)
	}
}

// shortLabel is the informal label doxers use ("FB example").
func shortLabel(n netid.Network) string {
	switch n {
	case netid.Facebook:
		return "FB"
	case netid.GooglePlus:
		return "G+"
	case netid.Twitter:
		return "TW"
	case netid.Instagram:
		return "IG"
	case netid.YouTube:
		return "YT"
	case netid.Twitch:
		return "Twitch"
	case netid.Skype:
		return "Skype"
	default:
		return n.String()
	}
}

func pickSchool(r *rand.Rand) string {
	return randutil.Pick(r, schoolNamesLocal)
}

// schoolNamesLocal mirrors sim's school bank; duplicated here because the
// school string is rendered-only ground truth (the labeler detects only the
// presence of the School: line, never the value).
var schoolNamesLocal = []string{
	"Lincoln High School", "Washington High School", "Roosevelt Middle School",
	"Jefferson High School", "Central High School", "East Side High School",
	"Riverside Community College", "Kennedy High School", "Franklin Academy",
	"Northview High School", "Westfield High School", "Oakwood High School",
	"State University", "City College", "Valley Technical Institute",
}

// pickCredits selects the doxers credited on a dox: usually one or a crew
// subset, occasionally none.
func (g *Generator) pickCredits(r *rand.Rand) []*sim.Doxer {
	if randutil.Bool(r, 0.25) {
		return nil // anonymous drop
	}
	// Half of credited drops come from a crew, listing 2-4 members.
	if randutil.Bool(r, 0.5) {
		crew := r.Intn(len(g.world.Cfg.CrewSizes))
		members := g.world.CrewMembers(crew)
		if len(members) >= 2 {
			n := 2 + r.Intn(3)
			if n > len(members) {
				n = len(members)
			}
			return randutil.PickN(r, members, n)
		}
	}
	return []*sim.Doxer{randutil.Pick(r, g.world.Doxers)}
}

var creditLeads = []string{"Dropped by", "Dox by", "Credit:", "Brought to you by"}

// renderCredits renders a "dropped by" line, mixing plain aliases and
// Twitter handles exactly as the paper's example shows.
func renderCredits(r *rand.Rand, credits []*sim.Doxer) string {
	if len(credits) == 0 {
		return ""
	}
	parts := make([]string, 0, len(credits))
	for _, d := range credits {
		switch {
		case d.TwitterHandle != "" && r.Intn(3) == 0:
			parts = append(parts, "@"+d.TwitterHandle)
		case d.TwitterHandle != "" && r.Intn(4) == 0:
			parts = append(parts, fmt.Sprintf("%s (@%s)", d.Alias, d.TwitterHandle))
		default:
			parts = append(parts, d.Alias)
		}
	}
	lead := randutil.Pick(r, creditLeads)
	switch len(parts) {
	case 1:
		return lead + " " + parts[0]
	case 2:
		return lead + " " + parts[0] + " and " + parts[1]
	default:
		return lead + " " + strings.Join(parts[:len(parts)-1], ", ") +
			", thanks to " + parts[len(parts)-1]
	}
}

var updateLines = []string{
	"UPDATE: he deleted his facebook lmao",
	"UPDATE: target went private on everything within a day",
	"UPDATE: he is begging mods to take this down",
	"UPDATE: confirmed, number still works",
}

// NearDuplicate re-renders a previously posted dox with the non-substantive
// changes the paper describes (§3.1.4): a repost timestamp, cosmetic banner
// changes, or an appended "update" section. The account set is unchanged.
func (g *Generator) NearDuplicate(r *rand.Rand, orig string) string {
	switch r.Intn(3) {
	case 0:
		p := getBody()
		b := *p
		b = append(b, "REPOST 2016-"...)
		b = randutil.AppendPad(b, 1+r.Intn(12), 2)
		b = append(b, '-')
		b = randutil.AppendPad(b, 1+r.Intn(28), 2)
		b = append(b, ' ')
		b = randutil.AppendPad(b, r.Intn(24), 2)
		b = append(b, ':')
		b = randutil.AppendPad(b, r.Intn(60), 2)
		b = append(b, "\n\n"...)
		b = append(b, orig...)
		return finishBody(p, b)
	case 1:
		// Swap the first banner line for a different one (re-rolling so
		// the swap never no-ops), and stamp a repost marker so two swaps
		// of the same original never collide back into exact duplicates.
		lines := strings.SplitN(orig, "\n", 2)
		if len(lines) == 2 {
			for {
				nb := strings.SplitN(randutil.Pick(r, banners), "\n", 2)[0]
				if nb != lines[0] {
					p := getBody()
					b := *p
					b = append(b, nb...)
					b = append(b, '\n')
					b = append(b, lines[1]...)
					b = append(b, "\nmirror #"...)
					b = randutil.AppendDigits(r, b, 4)
					b = append(b, '\n')
					return finishBody(p, b)
				}
			}
		}
		return "REPOSTING THIS\n" + orig
	default:
		update := randutil.Pick(r, updateLines)
		p := getBody()
		b := *p
		b = append(b, orig...)
		b = append(b, '\n')
		b = append(b, update...)
		b = append(b, " (day "...)
		b = strconv.AppendInt(b, int64(1+r.Intn(28)), 10)
		b = append(b, ", repost "...)
		b = randutil.AppendDigits(r, b, 3)
		b = append(b, ")\n"...)
		return finishBody(p, b)
	}
}
