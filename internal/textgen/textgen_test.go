package textgen

import (
	"math"
	"strings"
	"testing"

	"doxmeter/internal/htmltext"
	"doxmeter/internal/netid"
	"doxmeter/internal/randutil"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
)

func newGen(t *testing.T, scale float64) *Generator {
	t.Helper()
	return New(sim.NewWorld(sim.Default(99, scale)))
}

func TestBenignVariety(t *testing.T) {
	g := newGen(t, 0.01)
	r := randutil.New(1)
	titles := map[string]bool{}
	for i := 0; i < 300; i++ {
		title, body := g.BenignPaste(r)
		if body == "" {
			t.Fatal("empty benign paste")
		}
		titles[title] = true
	}
	if len(titles) < 8 {
		t.Fatalf("only %d distinct benign kinds observed in 300 draws", len(titles))
	}
}

func TestBenignBoardPostIsHTML(t *testing.T) {
	g := newGen(t, 0.01)
	r := randutil.New(2)
	sawMarkup := false
	for i := 0; i < 100; i++ {
		p := g.BenignBoardPost(r)
		if p == "" {
			t.Fatal("empty board post")
		}
		if strings.Contains(p, "<br>") || strings.Contains(p, "quotelink") {
			sawMarkup = true
		}
	}
	if !sawMarkup {
		t.Error("board posts never contained HTML markup")
	}
}

func TestDoxContainsGroundTruthFields(t *testing.T) {
	g := newGen(t, 0.02)
	r := randutil.New(3)
	for _, v := range g.World().Victims[:50] {
		d := g.Dox(r, v)
		if !strings.Contains(d.Body, v.Alias) {
			t.Fatalf("dox missing alias %q", v.Alias)
		}
		// Form-style doxes intentionally omit some flagged fields (they are
		// lazy template fills); full and terse styles disclose everything.
		if d.Style != StyleForm {
			if v.Fields.Email && !strings.Contains(d.Body, v.Email) {
				t.Fatalf("dox flagged email but does not contain %q", v.Email)
			}
			if v.Fields.IP && !strings.Contains(d.Body, v.IP) {
				t.Fatalf("dox flagged IP but does not contain %q", v.IP)
			}
			if v.Fields.Address && !strings.Contains(d.Body, v.Street) {
				t.Fatalf("dox flagged address but does not contain street %q", v.Street)
			}
			if v.Fields.Zip && !strings.Contains(d.Body, v.Zip) {
				t.Fatalf("dox flagged zip but does not contain %q", v.Zip)
			}
		}
		for n, u := range v.OSN {
			if !strings.Contains(d.Body, u) {
				t.Fatalf("dox missing %v account %q", n, u)
			}
		}
	}
}

func TestDoxEasyRatesApproximateTable2(t *testing.T) {
	g := newGen(t, 0.02)
	r := randutil.New(4)
	perNet := map[netid.Network][2]int{} // easy, total
	var firstEasy, lastEasy, total int
	for i := 0; i < 4; i++ { // several passes over training victims
		for _, v := range g.World().TrainVictims {
			d := g.Dox(r, v)
			for n := range v.OSN {
				c := perNet[n]
				c[1]++
				if d.EasyRendered[n] {
					c[0]++
				}
				perNet[n] = c
			}
			total++
			if d.FirstNameEasy {
				firstEasy++
			}
			if d.LastNameEasy {
				lastEasy++
			}
		}
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 0.05 {
			t.Errorf("%s easy rate %.3f, want ~%.3f (Table 2)", name, got, want)
		}
	}
	ig := perNet[netid.Instagram]
	check("instagram", float64(ig[0])/float64(ig[1]), 0.952)
	fb := perNet[netid.Facebook]
	check("facebook", float64(fb[0])/float64(fb[1]), 0.848)
	check("first name", float64(firstEasy)/float64(total), 0.776)
	check("last name", float64(lastEasy)/float64(total), 0.624)
}

func TestDoxMotivationText(t *testing.T) {
	g := newGen(t, 0.05)
	r := randutil.New(5)
	found := map[sim.Motive]bool{}
	for _, v := range g.World().Victims {
		if v.Motive == sim.MotiveNone {
			continue
		}
		d := g.Dox(r, v)
		if d.Style == StyleForm {
			continue // template fills carry no motivation prose
		}
		if !strings.Contains(d.Body, "Reason: ") {
			t.Fatalf("motivated dox (motive=%v) missing Reason line", v.Motive)
		}
		found[v.Motive] = true
	}
	for _, m := range []sim.Motive{sim.MotiveJustice, sim.MotiveRevenge} {
		if !found[m] {
			t.Errorf("no dox rendered with motive %v", m)
		}
	}
}

func TestDoxCredits(t *testing.T) {
	g := newGen(t, 0.02)
	r := randutil.New(6)
	var withCredits, crewCredits int
	n := 400
	for i := 0; i < n; i++ {
		v := g.World().Victims[i%len(g.World().Victims)]
		d := g.Dox(r, v)
		if len(d.Credits) > 0 {
			withCredits++
			// Credited aliases must appear in the body (alias or handle).
			for _, dx := range d.Credits {
				if !strings.Contains(d.Body, dx.Alias) && (dx.TwitterHandle == "" || !strings.Contains(d.Body, dx.TwitterHandle)) {
					t.Fatalf("credited doxer %q absent from body", dx.Alias)
				}
			}
			if len(d.Credits) >= 2 {
				crewCredits++
			}
		}
	}
	if f := float64(withCredits) / float64(n); f < 0.6 || f > 0.9 {
		t.Errorf("credit rate %.2f, want ~0.75", f)
	}
	if crewCredits == 0 {
		t.Error("no multi-doxer credits generated; Figure 2 cliques impossible")
	}
}

func TestNearDuplicatePreservesAccounts(t *testing.T) {
	g := newGen(t, 0.02)
	r := randutil.New(7)
	v := g.World().Victims[0]
	orig := g.Dox(r, v)
	for i := 0; i < 20; i++ {
		dup := g.NearDuplicate(r, orig.Body)
		if dup == orig.Body {
			continue // banner swap can no-op when the same banner is drawn
		}
		for _, u := range v.OSN {
			if !strings.Contains(dup, u) {
				t.Fatalf("near duplicate lost account %q", u)
			}
		}
	}
}

func TestCorpusShape(t *testing.T) {
	g := newGen(t, 0.005)
	c := g.Corpus()
	cfg := g.World().Cfg
	if got, want := c.TotalDocs(), cfg.ScaledTotalFiles(); got != want {
		t.Fatalf("corpus size %d, want %d", got, want)
	}
	wantDox := cfg.ScaledDoxesP1() + cfg.ScaledDoxesP2()
	if got := c.TotalDoxes(); got != wantDox {
		t.Fatalf("dox count %d, want %d", got, wantDox)
	}
	// ~0.3% dox rate (paper abstract).
	rate := float64(c.TotalDoxes()) / float64(c.TotalDocs())
	if rate < 0.002 || rate > 0.005 {
		t.Errorf("dox rate %.4f, want ~0.003", rate)
	}
	for _, site := range AllSites() {
		if len(c.Streams[site]) == 0 {
			t.Errorf("site %s has no documents", site)
		}
	}
}

func TestCorpusChronologyAndPeriods(t *testing.T) {
	g := newGen(t, 0.003)
	c := g.Corpus()
	for site, docs := range c.Streams {
		for i := 1; i < len(docs); i++ {
			if docs[i].Posted.Before(docs[i-1].Posted) {
				t.Fatalf("site %s stream not sorted at %d", site, i)
			}
		}
		for i := range docs {
			in1 := simclock.Period1.Contains(docs[i].Posted)
			in2 := simclock.Period2.Contains(docs[i].Posted)
			if !in1 && !in2 {
				t.Fatalf("doc %s posted outside both periods: %v", docs[i].ID, docs[i].Posted)
			}
			if site != SitePastebin && in1 {
				t.Fatalf("board %s has a period-1 document; boards were only crawled in period 2", site)
			}
		}
	}
}

func TestCorpusDuplicateStructure(t *testing.T) {
	g := newGen(t, 0.02)
	c := g.Corpus()
	var orig, exact, near int
	ids := map[string]Doc{}
	for _, docs := range c.Streams {
		for _, d := range docs {
			if !d.IsDox() {
				continue
			}
			ids[d.ID] = d
			switch d.Truth.Dup {
			case Original:
				orig++
			case ExactDup:
				exact++
			case NearDup:
				near++
			}
		}
	}
	total := orig + exact + near
	if total == 0 {
		t.Fatal("no doxes in corpus")
	}
	dupFrac := float64(exact+near) / float64(total)
	if math.Abs(dupFrac-0.181) > 0.05 {
		t.Errorf("duplicate fraction %.3f, want ~0.181 (§3.1.4)", dupFrac)
	}
	if exact >= near {
		t.Errorf("exact (%d) should be rarer than near (%d) duplicates", exact, near)
	}
	// Duplicates must reference a real original of the same victim.
	for _, d := range ids {
		if d.Truth.Dup == Original {
			continue
		}
		o, ok := ids[d.Truth.OriginalID]
		if !ok {
			t.Fatalf("duplicate %s references unknown original %s", d.ID, d.Truth.OriginalID)
		}
		if o.Truth.Victim.ID != d.Truth.Victim.ID {
			t.Fatal("duplicate targets a different victim than its original")
		}
		if d.Truth.Dup == ExactDup {
			// Exact duplicates share the raw body (pre-HTML-wrapping).
			// Convert normalizes trailing whitespace on both sides and
			// undoes the board HTML wrapping on duplicates posted to chans.
			if htmltext.Convert(o.Body) != htmltext.Convert(d.Body) {
				t.Fatal("exact duplicate body differs from original")
			}
		}
	}
}

func TestBoardDocsAreHTML(t *testing.T) {
	g := newGen(t, 0.003)
	c := g.Corpus()
	for _, site := range AllSites() {
		for _, d := range c.Streams[site] {
			if site.IsBoard() != d.HTML {
				t.Fatalf("site %s doc %s HTML flag = %v", site, d.ID, d.HTML)
			}
			if d.HTML && d.IsDox() {
				// Round-trip: converting back to text must preserve accounts.
				text := htmltext.Convert(d.Body)
				for _, u := range d.Truth.Victim.OSN {
					if !strings.Contains(text, u) {
						t.Fatalf("html2text round trip lost account %q", u)
					}
				}
				return // one dox round-trip check is enough per run
			}
		}
	}
}

func TestCorpusDocIDsUnique(t *testing.T) {
	g := newGen(t, 0.003)
	c := g.Corpus()
	seen := map[string]bool{}
	for site, docs := range c.Streams {
		for _, d := range docs {
			key := string(site) + "/" + d.ID
			if seen[key] {
				t.Fatalf("duplicate doc ID %s", key)
			}
			seen[key] = true
		}
	}
}

func TestTrainingSet(t *testing.T) {
	g := newGen(t, 0.01)
	ts := g.TrainingSet()
	cfg := g.World().Cfg
	if len(ts) != cfg.TrainPositives+cfg.TrainNegatives {
		t.Fatalf("training set size %d, want %d", len(ts), cfg.TrainPositives+cfg.TrainNegatives)
	}
	var pos int
	for _, ex := range ts {
		if ex.IsDox {
			pos++
			if ex.Victim == nil || ex.Render == nil {
				t.Fatal("positive example missing ground truth")
			}
		} else if ex.Victim != nil {
			t.Fatal("negative example carries victim ground truth")
		}
	}
	if pos != cfg.TrainPositives {
		t.Fatalf("positive count %d, want %d (§3.1.2: 749)", pos, cfg.TrainPositives)
	}
	// Shuffled: the first 100 should not be all-positive or all-negative.
	firstPos := 0
	for _, ex := range ts[:100] {
		if ex.IsDox {
			firstPos++
		}
	}
	if firstPos == 0 || firstPos == 100 {
		t.Error("training set does not appear shuffled")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := New(sim.NewWorld(sim.Default(5, 0.003))).Corpus()
	b := New(sim.NewWorld(sim.Default(5, 0.003))).Corpus()
	for _, site := range AllSites() {
		da, db := a.Streams[site], b.Streams[site]
		if len(da) != len(db) {
			t.Fatalf("site %s sizes differ", site)
		}
		for i := range da {
			if da[i].ID != db[i].ID || da[i].Body != db[i].Body {
				t.Fatalf("site %s doc %d differs between identical seeds", site, i)
			}
		}
	}
}
