package textgen

import (
	"math/rand"
	"strconv"

	"doxmeter/internal/randutil"
)

// The shared person-form template.
//
// Two document populations in the wild use the *same* layout: voluntary
// "post your info" forms (benign) and lazy, terse doxes where the attacker
// pastes the target's basics into the thread template. The paper's
// classifier errors (Table 1: dox precision 0.81, recall 0.89 while the
// Not class sits at 0.99/0.98) come from exactly this kind of genuinely
// ambiguous content: no token reliably separates the classes, only the
// slightly different field statistics. Both generators below therefore
// render through one function, and the residual class signal is the field
// mix — which is what a Bayes-optimal classifier would be left with too.

// formFill holds the values rendered into the shared template. Empty
// strings / zero values omit the field.
type formFill struct {
	Aka     string
	First   string
	Last    string
	Age     int
	City    string
	State   string
	Gender  string
	Email   string
	Phone   string
	Address string
	IG      string
	Skype   string
	Hobby   bool
	Outro   bool
}

var formIntros = []string{
	"about me thread, post yours", "introduce yourself", "get to know me post",
	"filling out the template from last thread", "info post",
	"the template, filled out",
}

var formHobbies = []string{
	"drawing", "coding", "lifting", "music production", "speedrunning",
	"photography", "hiking",
}

var formOutros = []string{
	"add me!", "nice to meet you all", "see you around", "ask me anything",
	"thats all", "later",
}

// renderPersonForm renders the shared template.
func renderPersonForm(r *rand.Rand, f formFill) string {
	p := getBody()
	b := *p
	b = append(b, randutil.Pick(r, formIntros)...)
	b = append(b, "\n\n"...)
	if f.Aka != "" {
		b = append(b, "aka "...)
		b = append(b, f.Aka...)
		b = append(b, '\n')
	}
	b = append(b, "Name: "...)
	b = append(b, f.First...)
	b = append(b, ' ')
	b = append(b, f.Last...)
	b = append(b, '\n')
	if f.Age > 0 {
		b = append(b, "Age: "...)
		b = strconv.AppendInt(b, int64(f.Age), 10)
		b = append(b, '\n')
	}
	if f.City != "" {
		b = append(b, "City: "...)
		b = append(b, f.City...)
		b = append(b, '\n')
	}
	if f.State != "" {
		b = append(b, "State: "...)
		b = append(b, f.State...)
		b = append(b, '\n')
	}
	if f.Gender != "" {
		b = append(b, "Gender: "...)
		b = append(b, f.Gender...)
		b = append(b, '\n')
	}
	if f.Email != "" {
		b = append(b, "Email: "...)
		b = append(b, f.Email...)
		b = append(b, '\n')
	}
	if f.Phone != "" {
		b = append(b, "Phone: "...)
		b = append(b, f.Phone...)
		b = append(b, '\n')
	}
	if f.Address != "" {
		b = append(b, "Address: "...)
		b = append(b, f.Address...)
		b = append(b, '\n')
	}
	if f.IG != "" {
		b = append(b, "  Instagram: "...)
		b = append(b, f.IG...)
		b = append(b, '\n')
	}
	if f.Skype != "" {
		b = append(b, "  Skype: "...)
		b = append(b, f.Skype...)
		b = append(b, '\n')
	}
	if f.Hobby {
		b = append(b, "Hobbies: "...)
		b = append(b, randutil.Pick(r, formHobbies)...)
		b = append(b, '\n')
	}
	if f.Outro {
		b = append(b, '\n')
		b = append(b, randutil.Pick(r, formOutros)...)
		b = append(b, '\n')
	}
	return finishBody(p, b)
}
