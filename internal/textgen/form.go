package textgen

import (
	"fmt"
	"math/rand"
	"strings"

	"doxmeter/internal/randutil"
)

// The shared person-form template.
//
// Two document populations in the wild use the *same* layout: voluntary
// "post your info" forms (benign) and lazy, terse doxes where the attacker
// pastes the target's basics into the thread template. The paper's
// classifier errors (Table 1: dox precision 0.81, recall 0.89 while the
// Not class sits at 0.99/0.98) come from exactly this kind of genuinely
// ambiguous content: no token reliably separates the classes, only the
// slightly different field statistics. Both generators below therefore
// render through one function, and the residual class signal is the field
// mix — which is what a Bayes-optimal classifier would be left with too.

// formFill holds the values rendered into the shared template. Empty
// strings / zero values omit the field.
type formFill struct {
	Aka     string
	First   string
	Last    string
	Age     int
	City    string
	State   string
	Gender  string
	Email   string
	Phone   string
	Address string
	IG      string
	Skype   string
	Hobby   bool
	Outro   bool
}

var formIntros = []string{
	"about me thread, post yours", "introduce yourself", "get to know me post",
	"filling out the template from last thread", "info post",
	"the template, filled out",
}

var formHobbies = []string{
	"drawing", "coding", "lifting", "music production", "speedrunning",
	"photography", "hiking",
}

var formOutros = []string{
	"add me!", "nice to meet you all", "see you around", "ask me anything",
	"thats all", "later",
}

// renderPersonForm renders the shared template.
func renderPersonForm(r *rand.Rand, f formFill) string {
	var b strings.Builder
	b.WriteString(randutil.Pick(r, formIntros) + "\n\n")
	if f.Aka != "" {
		b.WriteString("aka " + f.Aka + "\n")
	}
	b.WriteString("Name: " + f.First + " " + f.Last + "\n")
	if f.Age > 0 {
		b.WriteString(fmt.Sprintf("Age: %d\n", f.Age))
	}
	if f.City != "" {
		b.WriteString("City: " + f.City + "\n")
	}
	if f.State != "" {
		b.WriteString("State: " + f.State + "\n")
	}
	if f.Gender != "" {
		b.WriteString("Gender: " + f.Gender + "\n")
	}
	if f.Email != "" {
		b.WriteString("Email: " + f.Email + "\n")
	}
	if f.Phone != "" {
		b.WriteString("Phone: " + f.Phone + "\n")
	}
	if f.Address != "" {
		b.WriteString("Address: " + f.Address + "\n")
	}
	if f.IG != "" {
		b.WriteString("  Instagram: " + f.IG + "\n")
	}
	if f.Skype != "" {
		b.WriteString("  Skype: " + f.Skype + "\n")
	}
	if f.Hobby {
		b.WriteString("Hobbies: " + randutil.Pick(r, formHobbies) + "\n")
	}
	if f.Outro {
		b.WriteString("\n" + randutil.Pick(r, formOutros) + "\n")
	}
	return b.String()
}
