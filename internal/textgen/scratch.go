package textgen

import (
	"math/rand"
	"sync"

	"doxmeter/internal/randutil"
)

// bodyPool recycles the byte scratch the paste/dox renderers build into.
// Renderers nest (a joke-dox paste renders a full dox inside a benign
// paste) and generators may be driven from multiple goroutines in tests,
// so this is a sync.Pool rather than per-generator state.
var bodyPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getBody() *[]byte { return bodyPool.Get().(*[]byte) }

// finishBody materializes the rendered bytes into the one string the caller
// keeps, then recycles the (possibly grown) scratch.
func finishBody(p *[]byte, b []byte) string {
	s := string(b)
	*p = b[:0]
	bodyPool.Put(p)
	return s
}

// appendTitle appends w with its first byte uppercased — strings.Title of a
// single lowercase ASCII word, which is all the word banks here contain.
func appendTitle(b []byte, w string) []byte {
	b = append(b, w...)
	b[len(b)-len(w)] -= 'a' - 'A'
	return b
}

// appendLowerASCII appends s with ASCII uppercase folded to lowercase —
// strings.ToLower for the ASCII-only strings the generators produce.
func appendLowerASCII(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	return b
}

// appendTitleLowerWord draws a random lowercase word of length n and appends
// it title-cased. Same RNG draws as strings.Title(randutil.LowerWord(r, n)).
func appendTitleLowerWord(r *rand.Rand, b []byte, n int) []byte {
	start := len(b)
	b = randutil.AppendLowerWord(r, b, n)
	b[start] -= 'a' - 'A'
	return b
}
