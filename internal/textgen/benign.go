package textgen

import (
	"math/rand"
	"strconv"
	"strings"

	"doxmeter/internal/randutil"
	"doxmeter/internal/sim"
)

// benignKind enumerates the non-dox paste populations. The mix approximates
// what a random pastebin.com crawl actually contains: mostly code, logs and
// machine output, plus a tail of lists and chatter. Several kinds share
// vocabulary with doxes on purpose (credential dumps, account lists,
// self-info forms) so that the classifier faces the paper's real precision/
// recall trade-off instead of a toy separation.
type benignKind int

const (
	kindCode benignKind = iota
	kindLog
	kindConfig
	kindChat
	kindLyrics
	kindEssay
	kindCredDump
	kindEmailList
	kindProxyList
	kindCrash
	kindBase64
	kindGameServer
	kindSelfInfoForm
	kindAdSpam
	kindCharSheet
	kindPeopleSearch
	kindJokeDox
	numBenignKinds
)

// wildBenignWeights is the kind mix for the crawled corpus. Dox-adjacent
// confusables (info forms, joke doxes) exist but are rare, keeping the
// classifier-flagged rate near the paper's ~0.3%.
var wildBenignWeights = []float64{
	kindCode:         0.26,
	kindLog:          0.12,
	kindConfig:       0.08,
	kindChat:         0.09,
	kindLyrics:       0.05,
	kindEssay:        0.08,
	kindCredDump:     0.07,
	kindEmailList:    0.04,
	kindProxyList:    0.04,
	kindCrash:        0.05,
	kindBase64:       0.03,
	kindGameServer:   0.04,
	kindSelfInfoForm: 0.006,
	kindAdSpam:       0.03,
	kindCharSheet:    0.004,
	kindPeopleSearch: 0.003,
	kindJokeDox:      0.0003,
}

// trainingBenignWeights is the kind mix for the paper's 4,220 hand-checked
// negative examples. It deliberately over-represents the dox-adjacent
// confusables relative to the wild mix: the eval-set error structure the
// paper reports (Table 1: dox P=0.81 at ~7% positive prevalence) is only
// consistent with its wild flagged rate (~0.3%) if the labeled negatives
// are harder than the average wild paste, so we encode that explicitly.
// EXPERIMENTS.md discusses this reconciliation.
var trainingBenignWeights = []float64{
	kindCode:         0.23,
	kindLog:          0.11,
	kindConfig:       0.07,
	kindChat:         0.08,
	kindLyrics:       0.05,
	kindEssay:        0.08,
	kindCredDump:     0.07,
	kindEmailList:    0.04,
	kindProxyList:    0.04,
	kindCrash:        0.05,
	kindBase64:       0.03,
	kindGameServer:   0.04,
	kindSelfInfoForm: 0.035,
	kindAdSpam:       0.03,
	kindCharSheet:    0.01,
	kindPeopleSearch: 0.008,
	kindJokeDox:      0.045,
}

// BenignPaste produces one non-dox paste body with a title, drawn from the
// wild-corpus mix.
func (g *Generator) BenignPaste(r *rand.Rand) (title, body string) {
	return g.benignPaste(r, benignKind(randutil.Weighted(r, wildBenignWeights)))
}

// BenignTrainingPaste draws from the labeled-negative mix (§3.1.2).
func (g *Generator) BenignTrainingPaste(r *rand.Rand) (title, body string) {
	return g.benignPaste(r, benignKind(randutil.Weighted(r, trainingBenignWeights)))
}

func (g *Generator) benignPaste(r *rand.Rand, kind benignKind) (title, body string) {
	switch kind {
	case kindCode:
		return g.codePaste(r)
	case kindLog:
		return "server log", g.logPaste(r)
	case kindConfig:
		return "config", g.configPaste(r)
	case kindChat:
		return "chat log", g.chatPaste(r)
	case kindLyrics:
		return "lyrics", g.lyricsPaste(r)
	case kindEssay:
		return "untitled", g.essayPaste(r)
	case kindCredDump:
		return "combo list", g.credDumpPaste(r)
	case kindEmailList:
		return "emails", g.emailListPaste(r)
	case kindProxyList:
		return "fresh proxies", g.proxyListPaste(r)
	case kindCrash:
		return "stack trace", g.crashPaste(r)
	case kindBase64:
		return "data", g.base64Paste(r)
	case kindGameServer:
		return "server list", g.gameServerPaste(r)
	case kindSelfInfoForm:
		return "about me", g.selfInfoFormPaste(r)
	case kindCharSheet:
		return "character sheet", g.charSheetPaste(r)
	case kindPeopleSearch:
		return "lookup results", g.peopleSearchPaste(r)
	case kindJokeDox:
		return "dox template", g.jokeDoxPaste(r)
	default:
		return "check this out", g.adSpamPaste(r)
	}
}

// jokeDoxPaste renders a full dox of a person who does not exist: joke
// doxes of friends, dox-for-hire advertising templates, and tutorial
// examples. These are ground-truth benign but textually indistinguishable
// from real doxes — the classifier's irreducible false-positive band, and
// the reason the paper's pipeline needs the account-verifier stage (the
// referenced accounts simply do not exist).
func (g *Generator) jokeDoxPaste(r *rand.Rand) string {
	return g.Dox(r, g.world.ExampleVictim(r)).Body
}

var codeIdents = []string{
	"result", "buffer", "client", "config", "data", "err", "handler",
	"index", "items", "key", "length", "message", "node", "offset",
	"payload", "queue", "request", "response", "session", "socket",
	"status", "stream", "token", "user", "value", "worker",
}

var codeFuncs = []string{
	"parse", "fetch", "update", "render", "connect", "validate", "encode",
	"decode", "flush", "init", "load", "save", "process", "handle",
}

func (g *Generator) codePaste(r *rand.Rand) (string, string) {
	p := getBody()
	b := *p
	switch r.Intn(3) {
	case 0: // pythonish
		b = append(b, "import os\nimport sys\nimport json\n\n"...)
		for i := 0; i < 2+r.Intn(4); i++ {
			fn := randutil.Pick(r, codeFuncs)
			arg := randutil.Pick(r, codeIdents)
			b = append(b, "def "...)
			b = append(b, fn...)
			b = append(b, '_')
			b = append(b, arg...)
			b = append(b, '(')
			b = append(b, arg...)
			b = append(b, "):\n"...)
			for j := 0; j < 2+r.Intn(5); j++ {
				b = append(b, "    "...)
				b = append(b, randutil.Pick(r, codeIdents)...)
				b = append(b, " = "...)
				b = append(b, arg...)
				b = append(b, ".get("...)
				b = strconv.AppendQuote(b, randutil.Pick(r, codeIdents))
				b = append(b, ", "...)
				b = strconv.AppendInt(b, int64(r.Intn(100)), 10)
				b = append(b, ")\n"...)
			}
			b = append(b, "    return "...)
			b = append(b, arg...)
			b = append(b, "\n\n"...)
		}
		return "main.py", finishBody(p, b)
	case 1: // javascriptish
		for i := 0; i < 2+r.Intn(4); i++ {
			b = append(b, "function "...)
			b = append(b, randutil.Pick(r, codeFuncs)...)
			b = appendTitle(b, randutil.Pick(r, codeIdents))
			b = append(b, "(cb) {\n"...)
			for j := 0; j < 2+r.Intn(4); j++ {
				b = append(b, "  var "...)
				b = append(b, randutil.Pick(r, codeIdents)...)
				b = append(b, " = "...)
				b = append(b, randutil.Pick(r, codeIdents)...)
				b = append(b, '[')
				b = strconv.AppendInt(b, int64(r.Intn(20)), 10)
				b = append(b, "];\n"...)
			}
			b = append(b, "  cb(null, result);\n}\n\n"...)
		}
		return "snippet.js", finishBody(p, b)
	default: // cish
		b = append(b, "#include <stdio.h>\n#include <stdlib.h>\n\n"...)
		for i := 0; i < 1+r.Intn(3); i++ {
			b = append(b, "int "...)
			b = append(b, randutil.Pick(r, codeFuncs)...)
			b = append(b, '_')
			b = append(b, randutil.Pick(r, codeIdents)...)
			b = append(b, "(int "...)
			b = append(b, randutil.Pick(r, codeIdents)...)
			b = append(b, ") {\n"...)
			for j := 0; j < 2+r.Intn(5); j++ {
				b = append(b, "    int "...)
				b = append(b, randutil.Pick(r, codeIdents)...)
				b = append(b, " = "...)
				b = strconv.AppendInt(b, int64(r.Intn(50)), 10)
				b = append(b, " * "...)
				b = append(b, randutil.Pick(r, codeIdents)...)
				b = append(b, ";\n"...)
			}
			b = append(b, "    return 0;\n}\n\n"...)
		}
		return "prog.c", finishBody(p, b)
	}
}

var logLevels = []string{"INFO", "WARN", "ERROR", "DEBUG"}
var logMsgs = []string{
	"connection accepted from upstream", "cache miss for key",
	"request completed in 42ms", "retrying failed operation",
	"worker pool exhausted", "TLS handshake failed", "queue depth exceeded",
	"disk usage at 91 percent", "heartbeat timeout from replica",
	"rotated log file", "config reloaded", "shutting down gracefully",
}

func (g *Generator) logPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	for i := 0; i < 20+r.Intn(60); i++ {
		b = append(b, "2016-"...)
		b = randutil.AppendPad(b, 1+r.Intn(12), 2)
		b = append(b, '-')
		b = randutil.AppendPad(b, 1+r.Intn(28), 2)
		b = append(b, ' ')
		b = randutil.AppendPad(b, r.Intn(24), 2)
		b = append(b, ':')
		b = randutil.AppendPad(b, r.Intn(60), 2)
		b = append(b, ':')
		b = randutil.AppendPad(b, r.Intn(60), 2)
		b = append(b, " ["...)
		b = append(b, randutil.Pick(r, logLevels)...)
		b = append(b, "] "...)
		b = append(b, randutil.Pick(r, logMsgs)...)
		b = append(b, " (req="...)
		b = randutil.AppendHexString(r, b, 8)
		b = append(b, ")\n"...)
	}
	return finishBody(p, b)
}

func (g *Generator) configPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	b = append(b, "[server]\nport = "...)
	b = strconv.AppendInt(b, int64(8000+r.Intn(2000)), 10)
	b = append(b, "\nworkers = "...)
	b = strconv.AppendInt(b, int64(1+r.Intn(16)), 10)
	b = append(b, "\ntimeout = "...)
	b = strconv.AppendInt(b, int64(10+r.Intn(120)), 10)
	b = append(b, "\n\n[database]\nhost = db"...)
	b = strconv.AppendInt(b, int64(r.Intn(9)), 10)
	b = append(b, ".internal\nname = app_production\npool = "...)
	b = strconv.AppendInt(b, int64(5+r.Intn(20)), 10)
	b = append(b, "\n\n[cache]\nbackend = redis\nttl = 3600\n"...)
	return finishBody(p, b)
}

var chatNicks = []string{"anon", "zerocool", "acid", "nikon", "dade", "kate", "cereal", "phreak", "razor", "blade"}
var chatLines = []string{
	"anyone around", "did you see the patch notes", "lol no way",
	"that server is down again", "can someone invite me", "brb food",
	"just pushed the fix", "works on my machine", "gg", "stream starting soon",
	"who won the match", "check pm", "this game is so broken rn",
}

func (g *Generator) chatPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	for i := 0; i < 15+r.Intn(40); i++ {
		b = append(b, '[')
		b = randutil.AppendPad(b, r.Intn(24), 2)
		b = append(b, ':')
		b = randutil.AppendPad(b, r.Intn(60), 2)
		b = append(b, "] <"...)
		b = append(b, randutil.Pick(r, chatNicks)...)
		b = append(b, "> "...)
		b = append(b, randutil.Pick(r, chatLines)...)
		b = append(b, '\n')
	}
	return finishBody(p, b)
}

var lyricWords = []string{
	"night", "fire", "heart", "road", "dream", "light", "rain", "shadow",
	"love", "time", "home", "sky", "cold", "gold", "wild", "young", "run",
	"fall", "rise", "ghost", "echo", "stone", "river", "storm",
}

func (g *Generator) lyricsPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	for v := 0; v < 3+r.Intn(3); v++ {
		for l := 0; l < 4; l++ {
			n := 4 + r.Intn(4)
			for i := 0; i < n; i++ {
				if i > 0 {
					b = append(b, ' ')
				}
				b = append(b, randutil.Pick(r, lyricWords)...)
			}
			b = append(b, '\n')
		}
		b = append(b, '\n')
	}
	return finishBody(p, b)
}

var essaySentences = []string{
	"The committee reviewed the proposal at length before reaching a decision.",
	"There are several reasons why this approach fails in practice.",
	"Historical precedent suggests a different interpretation entirely.",
	"The author argues that the evidence supports a broader conclusion.",
	"Critics have pointed out a number of methodological problems.",
	"In the following section we examine each claim in turn.",
	"The results were consistent with earlier observations.",
	"This pattern repeats across multiple independent datasets.",
	"It remains unclear whether the effect generalizes.",
	"Further work is required to settle the question.",
}

func (g *Generator) essayPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	for pg := 0; pg < 2+r.Intn(4); pg++ {
		for s := 0; s < 3+r.Intn(5); s++ {
			b = append(b, randutil.Pick(r, essaySentences)...)
			b = append(b, ' ')
		}
		b = append(b, "\n\n"...)
	}
	return finishBody(p, b)
}

var comboDomains = []string{"gmail.com", "yahoo.com", "hotmail.com", "mail.ru"}

// credDumpPaste mimics leaked email:password combo lists — a benign-class
// paste that shares "account" vocabulary with doxes.
func (g *Generator) credDumpPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	b = append(b, "=== fresh combo list "...)
	b = randutil.AppendDigits(r, b, 4)
	b = append(b, " ===\n"...)
	for i := 0; i < 30+r.Intn(80); i++ {
		b = randutil.AppendLowerWord(r, b, 4+r.Intn(5))
		b = randutil.AppendDigits(r, b, 2)
		b = append(b, '@')
		b = append(b, randutil.Pick(r, comboDomains)...)
		b = append(b, ':')
		b = randutil.AppendLowerWord(r, b, 5+r.Intn(4))
		b = randutil.AppendDigits(r, b, 2)
		b = append(b, '\n')
	}
	return finishBody(p, b)
}

var emailDomains = []string{"gmail.com", "yahoo.com", "aol.com", "outlook.com"}

func (g *Generator) emailListPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	for i := 0; i < 25+r.Intn(60); i++ {
		b = randutil.AppendLowerWord(r, b, 3+r.Intn(5))
		b = append(b, '.')
		b = randutil.AppendLowerWord(r, b, 4+r.Intn(6))
		b = append(b, '@')
		b = append(b, randutil.Pick(r, emailDomains)...)
		b = append(b, '\n')
	}
	return finishBody(p, b)
}

func (g *Generator) proxyListPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	b = append(b, "fresh socks5 checked "...)
	b = randutil.AppendDigits(r, b, 2)
	b = append(b, " minutes ago\n\n"...)
	for i := 0; i < 30+r.Intn(70); i++ {
		b = strconv.AppendInt(b, int64(1+r.Intn(222)), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(r.Intn(256)), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(r.Intn(256)), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(1+r.Intn(254)), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(1024+r.Intn(60000)), 10)
		b = append(b, '\n')
	}
	return finishBody(p, b)
}

func (g *Generator) crashPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	b = append(b, "Exception in thread \"main\" java.lang.NullPointerException\n"...)
	for i := 0; i < 8+r.Intn(20); i++ {
		b = append(b, "\tat com.example."...)
		b = append(b, randutil.Pick(r, codeIdents)...)
		b = append(b, '.')
		b = append(b, randutil.Pick(r, codeFuncs)...)
		b = append(b, '(')
		b = appendTitle(b, randutil.Pick(r, codeIdents))
		b = append(b, ".java:"...)
		b = strconv.AppendInt(b, int64(10+r.Intn(400)), 10)
		b = append(b, ")\n"...)
	}
	b = append(b, "Caused by: java.io.IOException: connection reset\n"...)
	return finishBody(p, b)
}

const base64Alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

func (g *Generator) base64Paste(r *rand.Rand) string {
	p := getBody()
	b := *p
	for i := 0; i < 15+r.Intn(30); i++ {
		for j := 0; j < 64; j++ {
			b = append(b, base64Alphabet[r.Intn(len(base64Alphabet))])
		}
		b = append(b, '\n')
	}
	b = append(b, "====\n"...)
	return finishBody(p, b)
}

var gameModes = []string{"survival", "creative", "pvp", "skyblock", "factions", "minigames"}

func (g *Generator) gameServerPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	b = append(b, "best minecraft servers "...)
	b = randutil.AppendDigits(r, b, 4)
	b = append(b, "\n\n"...)
	for i := 0; i < 10+r.Intn(20); i++ {
		b = randutil.AppendLowerWord(r, b, 4+r.Intn(4))
		b = append(b, '.')
		b = randutil.AppendLowerWord(r, b, 3+r.Intn(4))
		b = append(b, ".net:"...)
		b = strconv.AppendInt(b, int64(25000+r.Intn(2000)), 10)
		b = append(b, " - "...)
		b = append(b, randutil.Pick(r, gameModes)...)
		b = append(b, ", no lag, join now\n"...)
	}
	return finishBody(p, b)
}

var formGenders = []string{"male", "female"}

// selfInfoFormPaste is a voluntarily shared personal-info post rendered via
// the shared person-form template (see form.go). It uses the same field
// labels, name banks and address shapes as form-style doxes; only the field
// statistics differ, which is the paper-shaped source of classifier error.
func (g *Generator) selfInfoFormPaste(r *rand.Rand) string {
	first := sim.RandomFirstName(r)
	last := sim.RandomLastName(r)
	f := formFill{
		First: first,
		Last:  last,
		Hobby: randutil.Bool(r, 0.7),
		Outro: randutil.Bool(r, 0.55),
	}
	if r.Intn(3) > 0 {
		f.Aka = sim.NewAlias(r)
	}
	if randutil.Bool(r, 0.85) {
		f.Age = 16 + r.Intn(20)
	}
	if randutil.Bool(r, 0.6) {
		rg := randutil.Pick(r, g.world.Geo.USStates())
		f.City = randutil.Pick(r, rg.Cities)
		f.State = rg.Name
	}
	if randutil.Bool(r, 0.45) {
		f.Gender = randutil.Pick(r, formGenders)
	}
	if randutil.Bool(r, 0.5) {
		f.Email = strings.ToLower(first) + "." + strings.ToLower(last) + randutil.Digits(r, 2) + "@gmail.com"
	}
	if randutil.Bool(r, 0.1) {
		f.Phone = randutil.Phone(r)
	}
	if randutil.Bool(r, 0.06) {
		f.Address = sim.RandomStreet(r)
	}
	switch r.Intn(3) {
	case 0:
		f.IG = strings.ToLower(first) + randutil.Digits(r, 2)
	case 1:
		f.Skype = strings.ToLower(first) + "." + randutil.LowerWord(r, 4)
	}
	return renderPersonForm(r, f)
}

var charRaces = []string{"human", "elf", "dwarf", "orc", "tiefling"}
var charClasses = []string{"wizard", "rogue", "fighter", "cleric", "bard"}

// charSheetPaste is a tabletop-RPG character sheet: name, age, physical
// traits — another dox-shaped benign population.
func (g *Generator) charSheetPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	b = append(b, "== Character Sheet ==\n\nName: "...)
	b = appendTitleLowerWord(r, b, 5)
	b = append(b, ' ')
	b = appendTitleLowerWord(r, b, 7)
	b = append(b, "\nAge: "...)
	b = strconv.AppendInt(b, int64(18+r.Intn(300)), 10)
	b = append(b, "\nRace: "...)
	b = append(b, randutil.Pick(r, charRaces)...)
	b = append(b, "\nClass: "...)
	b = append(b, randutil.Pick(r, charClasses)...)
	b = append(b, "\nHeight: "...)
	b = strconv.AppendInt(b, int64(4+r.Intn(3)), 10)
	b = append(b, '\'')
	b = strconv.AppendInt(b, int64(r.Intn(12)), 10)
	b = append(b, "\"  Weight: "...)
	b = strconv.AppendInt(b, int64(90+r.Intn(200)), 10)
	b = append(b, " lbs\nSTR "...)
	b = strconv.AppendInt(b, int64(8+r.Intn(11)), 10)
	b = append(b, " DEX "...)
	b = strconv.AppendInt(b, int64(8+r.Intn(11)), 10)
	b = append(b, " CON "...)
	b = strconv.AppendInt(b, int64(8+r.Intn(11)), 10)
	b = append(b, " INT "...)
	b = strconv.AppendInt(b, int64(8+r.Intn(11)), 10)
	b = append(b, " WIS "...)
	b = strconv.AppendInt(b, int64(8+r.Intn(11)), 10)
	b = append(b, " CHA "...)
	b = strconv.AppendInt(b, int64(8+r.Intn(11)), 10)
	b = append(b, "\nBackstory: "...)
	b = append(b, randutil.Pick(r, essaySentences)...)
	b = append(b, '\n')
	return finishBody(p, b)
}

var pastCitiesA = []string{"Houston TX", "Miami FL", "Columbus OH", "Phoenix AZ"}
var pastCitiesB = []string{"Tulsa OK", "Reno NV", "Tampa FL", "Boise ID"}

// peopleSearchPaste mimics a copy-pasted public-records lookup result —
// name, age bracket, past cities — a benign paste that is legitimately
// near the dox boundary.
func (g *Generator) peopleSearchPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	b = append(b, "search results (public records, page 1)\n\n"...)
	for i := 0; i < 3+r.Intn(4); i++ {
		b = appendTitleLowerWord(r, b, 5)
		b = append(b, ' ')
		b = appendTitleLowerWord(r, b, 6)
		b = append(b, ", age "...)
		b = strconv.AppendInt(b, int64(20+r.Intn(60)), 10)
		b = append(b, "\n  Past cities: "...)
		b = append(b, randutil.Pick(r, pastCitiesA)...)
		b = append(b, ", "...)
		b = append(b, randutil.Pick(r, pastCitiesB)...)
		b = append(b, "\n  Possible relatives: "...)
		b = appendTitleLowerWord(r, b, 5)
		b = append(b, ", "...)
		b = appendTitleLowerWord(r, b, 6)
		b = append(b, "\n\n"...)
	}
	return finishBody(p, b)
}

var adLines = []string{
	"LIMITED TIME OFFER click the link below",
	"make 500 dollars a day working from home",
	"cheap followers and likes instant delivery",
	"unlock premium accounts free method 2016",
	"working gift card generator no survey",
	"download now before it gets taken down",
}

var adTLDs = []string{"biz", "info", "click", "top"}

func (g *Generator) adSpamPaste(r *rand.Rand) string {
	p := getBody()
	b := *p
	for i := 0; i < 4+r.Intn(8); i++ {
		b = append(b, randutil.Pick(r, adLines)...)
		b = append(b, "\nhxxp://"...)
		b = randutil.AppendLowerWord(r, b, 6)
		b = append(b, '.')
		b = append(b, randutil.Pick(r, adTLDs)...)
		b = append(b, '/')
		b = randutil.AppendHexString(r, b, 6)
		b = append(b, "\n\n"...)
	}
	return finishBody(p, b)
}

var boardTopics = []string{
	"video games", "the election", "that new movie", "crypto", "old consoles",
	"this teams chances", "the latest patch", "keyboards", "anime", "gym advice",
}

var boardLines = []string{
	"literally nobody cares about", "hot take incoming about", "daily reminder about",
	"can we talk about", "unpopular opinion on", "why is nobody discussing",
}

var boardReplies = []string{
	"this. so much this.", "bait, ignore and move on", "source?", "lurk more",
	"based", "cringe", "ok and?", "we had this thread yesterday",
	"fake and gay", "checked", "go back", "screencap this post",
}

// BenignBoardPost produces a short imageboard post in HTML, as the chan
// crawlers will receive it.
func (g *Generator) BenignBoardPost(r *rand.Rand) string {
	p := getBody()
	b := *p
	if r.Intn(3) == 0 {
		b = append(b, `<a href="#p`...)
		b = strconv.AppendInt(b, int64(100000+r.Intn(900000)), 10)
		b = append(b, `" class="quotelink">&gt;&gt;`...)
		b = strconv.AppendInt(b, int64(100000+r.Intn(900000)), 10)
		b = append(b, `</a><br>`...)
	}
	b = append(b, randutil.Pick(r, boardLines)...)
	b = append(b, ' ')
	b = append(b, randutil.Pick(r, boardTopics)...)
	for i := 0; i < r.Intn(3); i++ {
		b = append(b, "<br>"...)
		b = append(b, randutil.Pick(r, boardReplies)...)
	}
	return finishBody(p, b)
}
