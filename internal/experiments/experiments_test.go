package experiments

import (
	"context"
	"strings"
	"testing"

	"doxmeter/internal/core"
	"doxmeter/internal/netid"
)

var shared *core.Study

func study(t *testing.T) *core.Study {
	t.Helper()
	if shared != nil {
		return shared
	}
	s, err := core.NewStudy(core.StudyConfig{Seed: 3, Scale: 0.01, ControlSample: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	shared = s
	return s
}

func TestAllTablesRender(t *testing.T) {
	s := study(t)
	agg, _ := s.LabelSample(100)
	artifacts := map[string]string{
		"table1":  Table1(s).String(),
		"table2":  Table2(MeasureTable2(s, 125)).String(),
		"table3":  Table3(s).String(),
		"table4":  Table4(s).String(),
		"table5":  Table5(agg).String(),
		"table6":  Table6(agg).String(),
		"table7":  Table7(agg).String(),
		"table8":  Table8(agg).String(),
		"table9":  Table9(s).String(),
		"table10": Table10(s).String(),
		"figure1": Figure1(s).String(),
		"sec63":   Section63(s).String(),
		"sec532":  Section532(s).String(),
		"sec41":   Section41(s).String(),
	}
	for name, out := range artifacts {
		if len(out) < 40 {
			t.Errorf("%s render too short:\n%s", name, out)
		}
		if !strings.Contains(out, "\n") {
			t.Errorf("%s not multi-line", name)
		}
	}
	// Spot checks on paper annotations.
	if !strings.Contains(artifacts["table1"], "0.81") && !strings.Contains(artifacts["table1"], ".81") {
		t.Error("table1 missing paper reference values")
	}
	if !strings.Contains(artifacts["table10"], "17.2/8.1/32.2") {
		t.Error("table10 missing paper row annotations")
	}
	if !strings.Contains(artifacts["table6"], "90.1") {
		t.Error("table6 missing paper address rate")
	}
}

func TestFigure2DOT(t *testing.T) {
	s := study(t)
	tbl, dot := Figure2(s)
	if tbl.NumRows() < 5 {
		t.Fatalf("figure2 table rows = %d", tbl.NumRows())
	}
	if !strings.HasPrefix(dot, "graph ") || !strings.Contains(dot, "--") {
		t.Errorf("figure2 DOT malformed:\n%.200s", dot)
	}
}

func TestFigure3BothNetworks(t *testing.T) {
	s := study(t)
	for _, n := range []netid.Network{netid.Facebook, netid.Instagram} {
		pre, post, summary := Figure3(s, n)
		if len(pre.Days) != 15 || len(post.Days) != 15 {
			t.Fatalf("%v strips have %d/%d days", n, len(pre.Days), len(post.Days))
		}
		if summary.NumRows() != 2 {
			t.Fatalf("%v summary rows = %d", n, summary.NumRows())
		}
	}
}

func TestMeasureTable2Rows(t *testing.T) {
	s := study(t)
	rows := MeasureTable2(s, 125)
	if len(rows) != 11 {
		t.Fatalf("table2 rows = %d, want 11 (paper)", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Errorf("%s accuracy %.3f out of range", r.Label, r.Accuracy)
		}
		if r.Paper <= 0 {
			t.Errorf("%s missing paper value", r.Label)
		}
	}
	// Shape: Instagram should beat Phone, as in the paper.
	var ig, phone float64
	for _, r := range rows {
		switch r.Label {
		case "Instagram":
			ig = r.Accuracy
		case "Phone":
			phone = r.Accuracy
		}
	}
	if ig <= phone {
		t.Errorf("Instagram accuracy %.3f should exceed Phone %.3f (Table 2)", ig, phone)
	}
}

func TestSectionMirrors(t *testing.T) {
	s := study(t)
	tbl, err := SectionMirrors(s)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "Mirror files crawled") {
		t.Fatalf("mirror table malformed:\n%s", out)
	}
	if !strings.Contains(out, "copies") {
		t.Errorf("mirror table missing redundancy note:\n%s", out)
	}
}

func TestSectionActivityAndAbuse(t *testing.T) {
	s := study(t)
	act := SectionActivity(s).String()
	if !strings.Contains(act, "Instagram control") || !strings.Contains(act, "active") {
		t.Errorf("activity table malformed:\n%s", act)
	}
	ab := SectionAbuse(s).String()
	if !strings.Contains(ab, "pre-filter") || !strings.Contains(ab, "Abusive/account") {
		t.Errorf("abuse table malformed:\n%s", ab)
	}
}
