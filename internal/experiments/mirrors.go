package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"

	"doxmeter/internal/core"
	"doxmeter/internal/dedup"
	"doxmeter/internal/extract"
	"doxmeter/internal/report"
	"doxmeter/internal/sites"
)

// SectionMirrors re-derives the paper's §3.1.1 source-selection argument:
// the secondary dox venues (onion mirrors, torrent archives, small text
// hosts) "generally host copies of doxes already shared on pastebin.com,
// 4chan.org and 8ch.net". A simulated mirror is stood up against the
// study's corpus, crawled over HTTP, and its dox-classified files are
// checked — without mutation — against the study's de-duplication state.
func SectionMirrors(s *core.Study) (*report.Table, error) {
	mirror := sites.NewMirror(s.Clock, s.Corpus(), s.Gen,
		sites.DefaultMirrorConfig(s.Cfg.Scale), s.Cfg.Seed+9)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mirror.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/index.json")
	if err != nil {
		return nil, err
	}
	var index []sites.MirrorEntry
	err = json.NewDecoder(resp.Body).Decode(&index)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}

	var total, flagged, exact, accountDup, novel int
	for _, entry := range index {
		r, err := http.Get(base + "/file/" + entry.ID)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			return nil, err
		}
		total++
		text := string(body)
		if !s.Classifier.IsDox(text) {
			continue
		}
		flagged++
		ex := extract.Extract(text)
		switch v, _ := s.Deduper.Peek(text, ex.AccountSetKey()); v {
		case dedup.ExactDuplicate:
			exact++
		case dedup.AccountDuplicate:
			accountDup++
		default:
			novel++
		}
	}

	t := report.NewTable("§3.1.1: secondary-venue redundancy (the paper's justification for crawling only three sources)",
		"Statistic", "Measured")
	t.AddRowF("Mirror files crawled", fmt.Sprint(total))
	t.AddRowF("Classified as dox", fmt.Sprint(flagged))
	t.AddRowF("Already seen on primary sources", fmt.Sprint(exact+accountDup))
	t.AddRowF("  via exact body", fmt.Sprint(exact))
	t.AddRowF("  via account set", fmt.Sprint(accountDup))
	t.AddRowF("Novel to the mirror", fmt.Sprint(novel))
	if flagged > 0 {
		t.AddNote("%.0f%% of mirror doxes were copies — 'these other venues generally host copies' (§3.1.1)",
			100*float64(exact+accountDup)/float64(flagged))
	}
	return t, nil
}
