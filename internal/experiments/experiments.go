// Package experiments regenerates every table and figure in the paper's
// evaluation from a completed core.Study. Each Build function returns a
// renderable artifact annotated with the paper's reported values, so the
// benchmark harness and cmd/doxbench print paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"doxmeter/internal/abuse"
	"doxmeter/internal/core"
	"doxmeter/internal/label"
	"doxmeter/internal/metrics"
	"doxmeter/internal/monitor"
	"doxmeter/internal/netid"
	"doxmeter/internal/report"
	"doxmeter/internal/simclock"
)

// Table1 reproduces the classifier evaluation.
func Table1(s *core.Study) *report.Table {
	t := report.NewTable("Table 1: dox classifier precision/recall (paper: Dox .81/.89/.85, Not .99/.98/.99)",
		"Label", "Precision", "Recall", "F1", "# Samples")
	for _, row := range s.ClfEval.Report {
		t.AddRowF(row.Label,
			fmt.Sprintf("%.2f", row.Precision),
			fmt.Sprintf("%.2f", row.Recall),
			fmt.Sprintf("%.2f", row.F1),
			fmt.Sprint(row.Samples))
	}
	t.AddNote("split: random 2/3 train, 1/3 eval over %d labeled files", s.ClfEval.TrainSize+s.ClfEval.TestSize)
	return t
}

// ExtractorAccuracy is the per-label Table 2 measurement input: the study
// does not retain render ground truth, so Table 2 is produced by the bench
// against a fresh hand-labeled sample; this type carries the rows.
type ExtractorAccuracy struct {
	Label    string
	Included float64 // fraction of sampled doxes including the item
	Accuracy float64 // extraction accuracy over those
	Paper    float64 // paper's reported accuracy
}

// Table2 renders extractor accuracy rows.
func Table2(rows []ExtractorAccuracy) *report.Table {
	t := report.NewTable("Table 2: OSN extractor accuracy (paper accuracy in last column)",
		"Label", "% Doxes Including", "Extractor Accuracy", "Paper")
	for _, r := range rows {
		t.AddRowF(r.Label, report.Pct(r.Included), report.Pct(r.Accuracy), report.Pct(r.Paper))
	}
	t.AddNote("measured over a 125-file hand-labeled sample, as in §3.1.3")
	return t
}

// Table3 reproduces the deletion validation.
func Table3(s *core.Study) *report.Table {
	del := s.DeletionCheck()
	t := report.NewTable("Table 3: pastebin deletion one month after posting (paper: dox 12.8%, other 4.2%)",
		"Type", "# of Files", "# Deleted", "% Deleted")
	t.AddRowF("Dox", fmt.Sprint(del.Dox.N), fmt.Sprint(del.Dox.Hits), report.Pct(del.Dox.Rate()))
	t.AddRowF("Other", fmt.Sprint(del.Other.N), fmt.Sprint(del.Other.Hits), report.Pct(del.Other.Rate()))
	ratio := 0.0
	if del.Other.Rate() > 0 {
		ratio = del.Dox.Rate() / del.Other.Rate()
	}
	t.AddNote("dox/other deletion ratio = %.1fx (paper: >3x)", ratio)
	return t
}

// Table4 reproduces the collection statistics.
func Table4(s *core.Study) *report.Table {
	scale := s.Cfg.Scale
	t := report.NewTable(fmt.Sprintf("Table 4: collection statistics at scale %.3f (paper values scaled alongside)", scale),
		"Statistic", "Measured", "Paper (scaled)", "Paper (full)")
	row := func(name string, measured int, paperFull int) {
		t.AddRowF(name, fmt.Sprint(measured), fmt.Sprintf("%.0f", float64(paperFull)*scale), fmt.Sprint(paperFull))
	}
	flagged := s.FlaggedByPeriod[1] + s.FlaggedByPeriod[2]
	row("Text files recorded", s.Collected, 1737887)
	row("Classified as a dox", flagged, 5530)
	row("Doxes without duplicates", len(s.Doxes), 4528)
	agg, _ := s.LabelSample(s.Cfg.LabelSample)
	row("Doxes manually labeled", agg.N, 464)
	t.AddNote("period split: %d flagged pre-filter, %d post-filter (paper: 2,976 / 2,554)",
		s.FlaggedByPeriod[1], s.FlaggedByPeriod[2])
	return t
}

// Table5 reproduces victim demographics.
func Table5(agg label.Aggregate) *report.Table {
	t := report.NewTable("Table 5: victim demographics (paper: ages 10-74 mean 21.7; 82.2% male; 64.5% USA)",
		"Statistic", "Measured", "Paper")
	min, max, mean := agg.AgeStats()
	n := float64(agg.N)
	t.AddRowF("Min Age", fmt.Sprint(min), "10")
	t.AddRowF("Max Age", fmt.Sprint(max), "74")
	t.AddRowF("Mean Age", fmt.Sprintf("%.1f", mean), "21.7")
	t.AddRowF("Gender (Female) %", report.Pct(float64(agg.Female)/n), "16.3")
	t.AddRowF("Gender (Male) %", report.Pct(float64(agg.Male)/n), "82.2")
	t.AddRowF("Gender (Other) %", report.Pct(float64(agg.Other)/n), "0.4")
	if agg.USA+agg.Foreign > 0 {
		t.AddRowF("Located in USA %", report.Pct(float64(agg.USA)/float64(agg.USA+agg.Foreign)), "64.5")
	}
	t.AddNote("of %d labeled doxes", agg.N)
	return t
}

// Table6 reproduces the sensitive-category frequencies.
func Table6(agg label.Aggregate) *report.Table {
	t := report.NewTable("Table 6: disclosed sensitive categories (of labeled doxes)",
		"Category", "# of Doxes", "% Measured", "% Paper")
	n := float64(agg.N)
	row := func(name string, count int, paper string) {
		t.AddRowF(name, fmt.Sprint(count), report.Pct(float64(count)/n), paper)
	}
	row("Address (any)", agg.Address, "90.1")
	row("Phone Number", agg.Phone, "61.2")
	row("Family Info", agg.Family, "50.6")
	row("Email", agg.Email, "53.7")
	row("Address (zip)", agg.Zip, "48.9")
	row("Date of Birth", agg.DOB, "33.4")
	row("School", agg.School, "10.3")
	row("Usernames", agg.Usernames, "40.1")
	row("ISP", agg.ISP, "21.6")
	row("IP Address", agg.IP, "40.3")
	row("Passwords", agg.Passwords, "8.6")
	row("Physical Traits", agg.Physical, "2.6")
	row("Criminal Records", agg.Criminal, "1.3")
	row("Social Security #", agg.SSN, "2.6")
	row("Credit Card #", agg.CreditCard, "4.3")
	row("Other Financial Info", agg.Financial, "8.8")
	return t
}

// Table7 reproduces victim communities.
func Table7(agg label.Aggregate) *report.Table {
	t := report.NewTable("Table 7: victims by community (paper: gamer 11.4%, hacker 3.7%, celebrity 1.1%)",
		"Category", "# of Doxes", "% Measured", "% Paper")
	n := float64(agg.N)
	t.AddRowF("Hacker", fmt.Sprint(agg.Hacker), report.Pct(float64(agg.Hacker)/n), "3.7")
	t.AddRowF("Gamer", fmt.Sprint(agg.Gamer), report.Pct(float64(agg.Gamer)/n), "11.4")
	t.AddRowF("Celebrity", fmt.Sprint(agg.Celebrity), report.Pct(float64(agg.Celebrity)/n), "1.1")
	total := agg.Hacker + agg.Gamer + agg.Celebrity
	t.AddRowF("Total", fmt.Sprint(total), report.Pct(float64(total)/n), "16.2")
	return t
}

// Table8 reproduces doxer motivations.
func Table8(agg label.Aggregate) *report.Table {
	t := report.NewTable("Table 8: stated motivations (paper: justice 14.7%, revenge 11.2%, competitive 1.5%, political 1.1%)",
		"Motivation", "# of Doxes", "% Measured", "% Paper")
	n := float64(agg.N)
	t.AddRowF("Competitive", fmt.Sprint(agg.Competitive), report.Pct(float64(agg.Competitive)/n), "1.5")
	t.AddRowF("Revenge", fmt.Sprint(agg.Revenge), report.Pct(float64(agg.Revenge)/n), "11.2")
	t.AddRowF("Justice", fmt.Sprint(agg.Justice), report.Pct(float64(agg.Justice)/n), "14.7")
	t.AddRowF("Political", fmt.Sprint(agg.Political), report.Pct(float64(agg.Political)/n), "1.1")
	total := agg.Competitive + agg.Revenge + agg.Justice + agg.Political
	t.AddRowF("Total", fmt.Sprint(total), report.Pct(float64(total)/n), "28.4")
	return t
}

// Table9 reproduces OSN reference counts.
func Table9(s *core.Study) *report.Table {
	counts := s.OSNCounts()
	t := report.NewTable("Table 9: dox files referencing each network",
		"Social Network", "# Doxes", "% Measured", "% Paper")
	paper := map[netid.Network]string{
		netid.Facebook: "17.8", netid.GooglePlus: "7.3", netid.Twitter: "8.1",
		netid.Instagram: "7.5", netid.YouTube: "5.7", netid.Twitch: "3.3",
	}
	n := float64(len(s.Doxes))
	for _, net := range []netid.Network{netid.Facebook, netid.GooglePlus, netid.Twitter, netid.Instagram, netid.YouTube, netid.Twitch} {
		t.AddRowF(net.String(), fmt.Sprint(counts[net]), report.Pct(float64(counts[net])/n), paper[net])
	}
	return t
}

// Table10 reproduces the status-change comparison.
func Table10(s *core.Study) *report.Table {
	hist := s.Monitor.Histories()
	t := report.NewTable("Table 10: account status changes over the measurement period",
		"Account Condition", "% More Private", "% More Public", "% Any Change", "Total #", "Paper (priv/pub/any)")
	addRow := func(name string, st monitor.ChangeStats, paper string) {
		t.AddRowF(name, report.Pct(st.MorePrivateRate()), report.Pct(st.MorePublicRate()),
			report.Pct(st.AnyChangeRate()), fmt.Sprint(st.Total), paper)
	}
	addRow("Instagram Default", monitor.Changes(hist, monitor.Controls()), "0.1/0.1/0.2")
	addRow("Instagram Doxed (pre filter)", monitor.Changes(hist, monitor.DoxedDuring(simclock.Period1, netid.Instagram)), "17.2/8.1/32.2")
	addRow("Instagram Doxed (post filter)", monitor.Changes(hist, monitor.DoxedDuring(simclock.Period2, netid.Instagram)), "5.7/1.4/9.9")
	addRow("Facebook Doxed (pre filter)", monitor.Changes(hist, monitor.DoxedDuring(simclock.Period1, netid.Facebook)), "22.0/2.0/24.6")
	addRow("Facebook Doxed (post filter)", monitor.Changes(hist, monitor.DoxedDuring(simclock.Period2, netid.Facebook)), "3.0/<0.1/3.3")
	addRow("Twitter Doxed", monitor.Changes(hist, monitor.ByNetwork(netid.Twitter)), "6.9/2.6/10.5")
	addRow("YouTube Doxed", monitor.Changes(hist, monitor.ByNetwork(netid.YouTube)), "0.5/0.0/1.0")

	doxedIG := monitor.Changes(hist, monitor.ByNetwork(netid.Instagram))
	ctrl := monitor.Changes(hist, monitor.Controls())
	p := metrics.TwoProportionP(
		metrics.Proportion{Hits: doxedIG.AnyChange, N: doxedIG.Total},
		metrics.Proportion{Hits: ctrl.AnyChange, N: ctrl.Total})
	t.AddNote("doxed-vs-control two-proportion p = %.2g (paper: asymptotically zero)", p)
	return t
}

// Figure1 prints the pipeline funnel.
func Figure1(s *core.Study) *report.Table {
	t := report.NewTable("Figure 1: pipeline funnel (measured counts at this scale)",
		"Stage", "Count")
	flagged := s.FlaggedByPeriod[1] + s.FlaggedByPeriod[2]
	stats := s.Deduper.Stats()
	t.AddRowF("Collected documents", fmt.Sprint(s.Collected))
	var sites []string
	for site := range s.CollectedBySite {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		t.AddRowF("  "+site, fmt.Sprint(s.CollectedBySite[site]))
	}
	t.AddRowF("Classified as dox", fmt.Sprint(flagged))
	t.AddRowF("Duplicates removed", fmt.Sprint(stats.TotalDups()))
	t.AddRowF("  exact-body duplicates", fmt.Sprint(stats.ExactDups))
	t.AddRowF("  account-set duplicates", fmt.Sprint(stats.AccntDups))
	t.AddRowF("Unique doxes", fmt.Sprint(len(s.Doxes)))
	verified, nonexistent := monitor.VerifiedCount(s.Monitor.Histories())
	t.AddRowF("Monitored accounts (verified)", fmt.Sprint(verified))
	t.AddRowF("Dropped by verifier (nonexistent)", fmt.Sprint(nonexistent))
	return t
}

// Figure2 summarizes the doxer clique analysis and returns the DOT source.
func Figure2(s *core.Study) (*report.Table, string) {
	net := s.BuildDoxerNetwork(4)
	t := report.NewTable("Figure 2: doxer cliques (paper: 61 of 251 doxers in cliques >= 4, largest 11)",
		"Statistic", "Measured", "Paper")
	t.AddRowF("Credited doxers", fmt.Sprint(net.CreditedDoxers), "251")
	t.AddRowF("With Twitter handles", fmt.Sprint(net.WithTwitter), "213")
	t.AddRowF("Private Twitter accounts", fmt.Sprint(net.PrivateTwitter), "34")
	t.AddRowF("Cliques of >= 4", fmt.Sprint(len(net.Cliques)), "-")
	t.AddRowF("Doxers in such cliques", fmt.Sprint(net.InCliques), "61")
	t.AddRowF("Largest clique", fmt.Sprint(net.LargestClique), "11")
	var dot strings.Builder
	var keep []string
	for _, c := range net.Cliques {
		keep = append(keep, c...)
	}
	_ = net.Graph.WriteDOT(&dot, "doxer-cliques", keep)
	return t, dot.String()
}

// Figure3 builds the pre/post-filter status strips for a network.
func Figure3(s *core.Study, network netid.Network) (pre, post report.StripSeries, summary *report.Table) {
	hist := s.Monitor.Histories()
	build := func(p simclock.Period, name string) report.StripSeries {
		points := monitor.Strip(hist, monitor.DoxedDuring(p, network))
		days := make([]report.StripDay, len(points))
		for i, pt := range points {
			days[i] = report.StripDay{Day: pt.Day, Public: pt.Public, Private: pt.Private, Inactive: pt.Inactive}
		}
		return report.StripSeries{Title: fmt.Sprintf("Figure 3: %s %s (status of accounts that changed within 14 days of the dox)", network, name), Days: days}
	}
	pre = build(simclock.Period1, "pre-filtering")
	post = build(simclock.Period2, "post-filtering")

	summary = report.NewTable(fmt.Sprintf("Figure 3 summary: %s accounts changing status within 14 days", network),
		"Period", "Changed", "Tracked", "% Changed", "Paper")
	paperPre, paperPost := "43 (22.5%)", "6 (1.7%)"
	if network == netid.Instagram {
		paperPre, paperPost = "12 (13.8%)", "7 (5.0%)"
	}
	c1, t1 := monitor.ChangersWithin(hist, monitor.DoxedDuring(simclock.Period1, network), 14)
	c2, t2 := monitor.ChangersWithin(hist, monitor.DoxedDuring(simclock.Period2, network), 14)
	summary.AddRowF("pre-filter", fmt.Sprint(c1), fmt.Sprint(t1), report.Pct(safeDiv(c1, t1)), paperPre)
	summary.AddRowF("post-filter", fmt.Sprint(c2), fmt.Sprint(t2), report.Pct(safeDiv(c2, t2)), paperPost)
	return pre, post, summary
}

// Section63 reports the change-timing measurements.
func Section63(s *core.Study) *report.Table {
	tm := monitor.Timing(s.Monitor.Histories(), func(h *monitor.History) bool { return !h.Control })
	t := report.NewTable("§6.3: timing of more-private changes after the dox appears",
		"Window", "Measured", "Paper")
	if tm.TotalMorePrivate > 0 {
		t.AddRowF("within 24 hours", report.Pct(float64(tm.Within1Day)/float64(tm.TotalMorePrivate)), "35.8")
		t.AddRowF("within 7 days", report.Pct(float64(tm.Within7Days)/float64(tm.TotalMorePrivate)), "90.6")
	}
	t.AddNote("over %d observed more-private changes", tm.TotalMorePrivate)
	return t
}

// Section532 reports the commenter-network null result.
func Section532(s *core.Study) *report.Table {
	cs := monitor.Commenters(s.Monitor.Histories())
	t := report.NewTable("§5.3.2: comments on doxed accounts",
		"Statistic", "Measured", "Paper")
	t.AddRowF("Comments recorded", fmt.Sprint(cs.Comments), "33,570")
	t.AddRowF("Distinct commenters", fmt.Sprint(cs.Commenters), "9,792")
	t.AddRowF("Commenters on multiple accounts", fmt.Sprint(cs.CrossAccountUsers), "0")
	return t
}

// SectionCompromise tests the paper's §6.2.2 hypothesis for the unexpected
// "more public" transitions: account takeover. The monitor records
// defacement banners; footnote 7 reports two manually-found cases and that
// an automated detector was out of reach — here the banner heuristic makes
// the takeover share measurable.
func SectionCompromise(s *core.Study) *report.Table {
	hist := s.Monitor.Histories()
	t := report.NewTable("§6.2.2: accounts that opened up after a dox — takeover share",
		"Population", "More-public accounts", "Defaced (compromised)")
	for _, network := range netid.Monitored() {
		cs := monitor.Compromises(hist, monitor.ByNetwork(network))
		if cs.MorePublic == 0 {
			continue
		}
		t.AddRowF(network.String(), fmt.Sprint(cs.MorePublic), fmt.Sprint(cs.Defaced))
	}
	all := monitor.Compromises(hist, func(h *monitor.History) bool { return !h.Control })
	t.AddRowF("All doxed", fmt.Sprint(all.MorePublic), fmt.Sprint(all.Defaced))
	t.AddNote("paper: 'one possibility is that the increased account openness is a result of accounts being taken over by attackers' (footnote 7: two defaced accounts found manually)")
	return t
}

// SectionActivity runs the comparison the paper defers to future work
// (§6.2.1): restricting both the doxed population and the random control
// sample to *active* accounts before comparing status-change rates, to rule
// out the objection that the control sample is polluted by abandoned
// accounts that would never change status anyway.
func SectionActivity(s *core.Study) *report.Table {
	hist := s.Monitor.Histories()
	t := report.NewTable("§6.2.1 future work: status changes restricted to active accounts (>= 5 visible posts)",
		"Population", "% Any Change (all)", "% Any Change (active)", "n all", "n active")
	add := func(name string, f monitor.Filter) {
		all := monitor.Changes(hist, f)
		act := monitor.Changes(hist, monitor.Active(5, f))
		t.AddRowF(name, report.Pct(all.AnyChangeRate()), report.Pct(act.AnyChangeRate()),
			fmt.Sprint(all.Total), fmt.Sprint(act.Total))
	}
	add("Instagram control", monitor.Controls())
	add("Instagram doxed", monitor.ByNetwork(netid.Instagram))
	add("Facebook doxed", monitor.ByNetwork(netid.Facebook))
	t.AddNote("the doxed-vs-control gap must survive the activity restriction for Table 10's conclusion to hold")
	return t
}

// SectionAbuse reproduces the paper's *abandoned* §6.3 approach — counting
// abusive comments on doxed accounts before and after filter deployment —
// using the lexicon baseline in internal/abuse. On synthetic streams the
// filter effect is visible directly; the paper abandoned this on real data
// because community-norm labeling was unreliable.
func SectionAbuse(s *core.Study) *report.Table {
	t := report.NewTable("§6.3 (abandoned approach): abusive comments per doxed account, by filter era",
		"Network / era", "Accounts", "Comments", "Abusive", "Abusive/account")
	for _, network := range []netid.Network{netid.Facebook, netid.Instagram} {
		for _, p := range []simclock.Period{simclock.Period1, simclock.Period2} {
			var accounts, comments, abusive int
			for _, h := range s.Monitor.Histories() {
				if h.Control || h.Ref.Network != network || !p.Contains(h.DoxSeenAt) || !h.Verified {
					continue
				}
				var last []monitor.CommentObs
				for _, o := range h.Obs {
					if len(o.Comments) > 0 {
						last = o.Comments
					}
				}
				accounts++
				comments += len(last)
				for _, c := range last {
					if abuse.IsAbusive(c.Text) {
						abusive++
					}
				}
			}
			perAcct := 0.0
			if accounts > 0 {
				perAcct = float64(abusive) / float64(accounts)
			}
			t.AddRowF(fmt.Sprintf("%s %s", network, p.Name), fmt.Sprint(accounts),
				fmt.Sprint(comments), fmt.Sprint(abusive), fmt.Sprintf("%.2f", perAcct))
		}
	}
	t.AddNote("filters should cut the abusive volume post-deployment; status changes fall with it (Table 10)")
	return t
}

// Section41 reports the geolocation validation.
func Section41(s *core.Study) *report.Table {
	v := s.ValidateGeo(50)
	t := report.NewTable("§4.1: IP-vs-postal validation (paper: of 36, 32 close, 1 adjacent, 3 far; only 4 exact)",
		"Bucket", "Measured", "Paper")
	t.AddRowF("Sampled doxes with IP", fmt.Sprint(v.Sampled), "50")
	t.AddRowF("With postal address too", fmt.Sprint(v.Usable), "36")
	t.AddRowF("Same state/region", fmt.Sprint(v.ExactCity+v.SameState), "32")
	t.AddRowF("  of which exact city", fmt.Sprint(v.ExactCity), "4")
	t.AddRowF("Adjacent state", fmt.Sprint(v.Adjacent), "1")
	t.AddRowF("Far away", fmt.Sprint(v.Far), "3")
	return t
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
