package experiments

import (
	"doxmeter/internal/core"
	"doxmeter/internal/extract"
	"doxmeter/internal/netid"
	"doxmeter/internal/randutil"
	"doxmeter/internal/sim"
)

// MeasureTable2 reproduces the extractor evaluation (§3.1.3): randomly
// select 125 dox files from the positive-label set, hand-label them (here:
// read the generator's ground truth), run the extractor, and report
// per-label accuracy alongside how many of the sampled doxes included each
// item.
func MeasureTable2(s *core.Study, sample int) []ExtractorAccuracy {
	r := randutil.New(s.Cfg.Seed ^ 0x7462326576616c) // "tb2eval"
	victims := randutil.PickN(r, s.World.TrainVictims, sample)

	type counter struct{ included, hit int }
	perNet := map[netid.Network]*counter{}
	for _, n := range netid.All() {
		perNet[n] = &counter{}
	}
	var first, last, age, phone counter

	for _, v := range victims {
		render := s.Gen.Dox(r, v)
		ex := extract.Extract(render.Body)
		for n, user := range v.OSN {
			perNet[n].included++
			if ex.Accounts[n] == user {
				perNet[n].hit++
			}
		}
		first.included++
		if ex.FirstName == v.FirstName {
			first.hit++
		}
		last.included++
		if ex.LastName == v.LastName {
			last.hit++
		}
		age.included++
		if ex.Age == v.Age {
			age.hit++
		}
		if v.Fields.Phone {
			phone.included++
			for _, p := range ex.Phones {
				if p == v.Phone {
					phone.hit++
					break
				}
			}
		}
	}

	n := float64(len(victims))
	rate := func(c *counter) (float64, float64) {
		if c.included == 0 {
			return 0, 0
		}
		return float64(c.included) / n, float64(c.hit) / float64(c.included)
	}
	row := func(lbl string, c *counter, paper float64) ExtractorAccuracy {
		inc, acc := rate(c)
		return ExtractorAccuracy{Label: lbl, Included: inc, Accuracy: acc, Paper: paper}
	}
	return []ExtractorAccuracy{
		row("Instagram", perNet[netid.Instagram], 0.952),
		row("Twitch", perNet[netid.Twitch], 0.952),
		row("Google+", perNet[netid.GooglePlus], 0.904),
		row("Twitter", perNet[netid.Twitter], 0.864),
		row("Facebook", perNet[netid.Facebook], 0.848),
		row("YouTube", perNet[netid.YouTube], 0.800),
		row("Skype", perNet[netid.Skype], 0.832),
		row("First Name", &first, 0.776),
		row("Last Name", &last, 0.624),
		row("Age", &age, 0.816),
		row("Phone", &phone, 0.584),
	}
}

// AblationResult compares a variant configuration's Table 1 metrics against
// the paper-default configuration.
type AblationResult struct {
	Name      string
	Precision float64
	Recall    float64
	F1        float64
}

// VictimsForExample exposes a few victims for example programs without
// leaking the whole world API surface.
func VictimsForExample(s *core.Study, community sim.Community, n int) []*sim.Victim {
	var out []*sim.Victim
	for _, v := range s.World.Victims {
		if v.Community == community {
			out = append(out, v)
			if len(out) == n {
				break
			}
		}
	}
	return out
}
