package label

import (
	"math"
	"math/rand"
	"testing"

	"doxmeter/internal/randutil"
	"doxmeter/internal/sim"
	"doxmeter/internal/textgen"
)

func TestApplyExplicitMarkers(t *testing.T) {
	text := `==== DOX ====
Reason: this guy scammed at least six people on the marketplace and kept the money

Alias: shadowwolf
Name: John Smith
Age: 23
Gender: male
Address: 12 Oak St, Chicago, IL 60601
Phone: (312) 555-0142
Email: john@example.com
DOB: 01/02/1993
IP: 74.12.3.4
ISP: Comcast Cable
School: Lincoln High School
Other usernames: shadow, wolfie
Password (old leak): hunter2x99
Height: 5'10"  Weight: 180 lbs
Criminal record: DUI 2013
SSN: 123-45-6789
CC: 4111111111111111 exp 01/19
Paypal: john@example.com  (balance unknown)

Family:
  Mother: Jane Smith
`
	l := Apply(text)
	if l.Age != 23 {
		t.Errorf("age = %d", l.Age)
	}
	if l.Gender != sim.GenderMale {
		t.Errorf("gender = %v", l.Gender)
	}
	if !l.HasUSA || l.HasForeign {
		t.Errorf("location flags = %v/%v", l.HasUSA, l.HasForeign)
	}
	for name, got := range map[string]bool{
		"address": l.Address, "zip": l.Zip, "phone": l.Phone, "family": l.Family,
		"email": l.Email, "dob": l.DOB, "school": l.School, "usernames": l.Usernames,
		"isp": l.ISP, "ip": l.IP, "passwords": l.Passwords, "physical": l.Physical,
		"criminal": l.Criminal, "ssn": l.SSN, "cc": l.CreditCard, "financial": l.Financial,
	} {
		if !got {
			t.Errorf("category %s not detected", name)
		}
	}
	if l.Motive != sim.MotiveJustice {
		t.Errorf("motive = %v, want justice", l.Motive)
	}
}

func TestApplyEmptyDox(t *testing.T) {
	l := Apply("just a random paste with nothing in it")
	if l.Address || l.Phone || l.SSN || l.Age != 0 || l.Motive != sim.MotiveNone {
		t.Errorf("empty text produced labels: %+v", l)
	}
}

func TestProseAge(t *testing.T) {
	if l := Apply("the kid is twoty six years old btw"); l.Age != 26 {
		t.Errorf("prose age = %d, want 26", l.Age)
	}
	if l := Apply("she is twenty one years old"); l.Age != 21 {
		t.Errorf("prose age = %d, want 21", l.Age)
	}
}

func TestForeignCountry(t *testing.T) {
	l := Apply("Address: 5 High Street\nCity: London\nCountry: United Kingdom\n")
	if l.HasUSA || !l.HasForeign {
		t.Errorf("foreign address misclassified: usa=%v foreign=%v", l.HasUSA, l.HasForeign)
	}
	l = Apply("Lives at: 12 Oak St Chicago IL 60601\nCountry: USA\n")
	if !l.HasUSA {
		t.Error("explicit USA not detected")
	}
}

func TestCommunityRules(t *testing.T) {
	gamer := `Found on:
  steamcommunity.com/xyz
  minecraftforum.net/xyz
  speedrun.com/xyz
`
	if l := Apply(gamer); l.Community != sim.CommunityGamer {
		t.Errorf("3 gaming accounts => %v, want gamer", l.Community)
	}
	// Exactly two gaming accounts: below the "more than two" threshold.
	twoOnly := `Found on:
  steamcommunity.com/xyz
  speedrun.com/xyz
`
	if l := Apply(twoOnly); l.Community != sim.CommunityNone {
		t.Errorf("2 gaming accounts => %v, want none", l.Community)
	}
	hacker := `Found on:
  hackforums.net/xyz
  nulled.io/xyz
  exploit.in/xyz
`
	if l := Apply(hacker); l.Community != sim.CommunityHacker {
		t.Errorf("3 hacking accounts => %v, want hacker", l.Community)
	}
	celeb := "Yes, THAT Jordan — the famous youtuber.\n"
	if l := Apply(celeb); l.Community != sim.CommunityCelebrity {
		t.Errorf("celebrity marker => %v", l.Community)
	}
}

func TestMotiveKeywords(t *testing.T) {
	cases := map[string]sim.Motive{
		"Reason: he thought he could talk to me like that and get away with it":      sim.MotiveRevenge,
		"Reason: he said he was undoxable. took me 20 minutes":                       sim.MotiveCompetitive,
		"Reason: exposing another klan member, they live among you":                  sim.MotivePolitical,
		"Reason: he has been snitching to the mods and working with law enforcement": sim.MotiveJustice,
		"no reason line at all": sim.MotiveNone,
	}
	for text, want := range cases {
		if got := Apply(text).Motive; got != want {
			t.Errorf("Apply(%q).Motive = %v, want %v", text, got, want)
		}
	}
}

func TestAggregateAgainstGroundTruth(t *testing.T) {
	// Label rendered doxes and compare against the victims' ground truth:
	// the analyst must recover explicit markers essentially perfectly on
	// full/terse renders.
	w := sim.NewWorld(sim.Default(17, 0.25))
	g := textgen.New(w)
	r := rand.New(rand.NewSource(2))
	var agg Aggregate
	full := 0
	for _, v := range w.Victims {
		d := g.Dox(r, v)
		if d.Style == textgen.StyleForm {
			continue // lazy template fills omit fields by design
		}
		full++
		l := Apply(d.Body)
		if v.Fields.Address != l.Address {
			t.Fatalf("address label %v, truth %v\n%s", l.Address, v.Fields.Address, d.Body)
		}
		if v.Fields.SSN != l.SSN {
			t.Fatalf("ssn label %v, truth %v", l.SSN, v.Fields.SSN)
		}
		if v.Fields.Family != l.Family {
			t.Fatalf("family label %v, truth %v", l.Family, v.Fields.Family)
		}
		if v.Motive != l.Motive {
			t.Fatalf("motive label %v, truth %v\n%s", l.Motive, v.Motive, d.Body)
		}
		if v.Community != l.Community {
			t.Fatalf("community label %v, truth %v\n%s", l.Community, v.Community, d.Body)
		}
		if v.Gender != sim.GenderUnstated && l.Gender != v.Gender {
			t.Fatalf("gender label %v, truth %v", l.Gender, v.Gender)
		}
		agg.Add(l)
	}
	if agg.N != full {
		t.Fatalf("aggregated %d of %d", agg.N, full)
	}
	// Table 5/6 shape checks on the aggregate.
	n := float64(agg.N)
	if rate := float64(agg.Address) / n; math.Abs(rate-0.901) > 0.05 {
		t.Errorf("address rate %.3f, want ~0.901 (Table 6)", rate)
	}
	if rate := float64(agg.Male) / n; math.Abs(rate-0.822) > 0.05 {
		t.Errorf("male rate %.3f, want ~0.822 (Table 5)", rate)
	}
	min, max, mean := agg.AgeStats()
	if min < 5 || max > 80 || math.Abs(mean-21.7) > 2.5 {
		t.Errorf("age stats min=%d max=%d mean=%.1f, want ~[10,74] mean 21.7", min, max, mean)
	}
	if usaRate := float64(agg.USA) / float64(agg.USA+agg.Foreign); math.Abs(usaRate-0.645) > 0.07 {
		t.Errorf("USA rate %.3f, want ~0.645 (Table 5)", usaRate)
	}
}

func TestAggregateEmptyAgeStats(t *testing.T) {
	var a Aggregate
	min, max, mean := a.AgeStats()
	if min != 0 || max != 0 || mean != 0 {
		t.Error("empty aggregate should produce zero age stats")
	}
}

func TestLabelsOnBenignText(t *testing.T) {
	// The analyst only ever sees classifier-flagged files, but labeling a
	// benign paste must not panic and should produce near-empty labels.
	w := sim.NewWorld(sim.Default(19, 0.01))
	g := textgen.New(w)
	r := randutil.New(3)
	for i := 0; i < 100; i++ {
		_, body := g.BenignPaste(r)
		_ = Apply(body)
	}
}
