// Package label reimplements the paper's manual content labeling (§3.2) as
// a deterministic analyst: given only the text of a dox file, it records
// the victim's demographic traits (Table 5), which categories of sensitive
// information are disclosed (Table 6), the victim's web community
// (Table 7, using the paper's "more than two such accounts" rule), and the
// doxer's stated motivation (Table 8).
//
// The paper's labels were produced by humans reading explicit markers —
// "why I doxed this person" prescripts, account lists, field labels — and
// the same markers are what this labeler keys on. Unlike the extractor, it
// may use prose-level cues (a human reads "the kid is twenty six years
// old"), so its coverage is deliberately broader.
package label

import (
	"regexp"
	"strconv"
	"strings"

	"doxmeter/internal/sim"
)

// Labels is the analyst's record for one dox file.
type Labels struct {
	// Demographics (Table 5).
	Age        int // 0 when not determinable
	Gender     sim.Gender
	HasUSA     bool // address present and in the USA
	HasForeign bool // address present, outside the USA

	// Sensitive categories (Table 6).
	Address    bool
	Zip        bool
	Phone      bool
	Family     bool
	Email      bool
	DOB        bool
	School     bool
	Usernames  bool
	ISP        bool
	IP         bool
	Passwords  bool
	Physical   bool
	Criminal   bool
	SSN        bool
	CreditCard bool
	Financial  bool

	// Community (Table 7) and motivation (Table 8).
	Community sim.Community
	Motive    sim.Motive
}

var (
	ageLineRe   = regexp.MustCompile(`(?im)^\s*age\s*[:;\-]?\s*(\d{1,2})\b`)
	ageProseRe  = regexp.MustCompile(`(?i)\b([a-z]+ty)[ -]([a-z]+) years old`)
	genderRe    = regexp.MustCompile(`(?im)^\s*gender\s*[:;\-]\s*(\w+)`)
	addressRe   = regexp.MustCompile(`(?im)^\s*(address|lives at)\s*[:;\-]`)
	zipRe       = regexp.MustCompile(`(?im)(^\s*zip\s*[:;\-]?\s*\d{5}\b)|([A-Z]{2}\s+\d{5}\b)|(,\s*[A-Z]{2}\s\d{5})`)
	phoneRe     = regexp.MustCompile(`(?im)(^\s*(phone|cell|phone number)\b)|(\(?\d{3}\)?[-.\s]\d{3}[-.\s]?\d{4})|(\+1\d{10})|(number is [\d ]{15,})`)
	familyRe    = regexp.MustCompile(`(?im)^\s*(family\s*:|mother\s*:|father\s*:|brother\s*:|sister\s*:|cousin\s*:)`)
	emailRe     = regexp.MustCompile(`[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}`)
	dobRe       = regexp.MustCompile(`(?im)^\s*(dob|date of birth|born)\s*[:;\-]`)
	schoolRe    = regexp.MustCompile(`(?im)^\s*school\s*[:;\-]`)
	usernamesRe = regexp.MustCompile(`(?im)^\s*other usernames\s*[:;\-]`)
	ispRe       = regexp.MustCompile(`(?im)^\s*isp\s*[:;\-]`)
	ipRe        = regexp.MustCompile(`(?im)(^\s*ip(\s*address|-addr)?\s*[:;\-])|(\b\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}\b)`)
	passwordRe  = regexp.MustCompile(`(?i)password`)
	physicalRe  = regexp.MustCompile(`(?im)^\s*height\s*[:;\-]?\s*\d`)
	criminalRe  = regexp.MustCompile(`(?i)criminal record|misdemeanor|\bDUI\b|shoplifting`)
	ssnRe       = regexp.MustCompile(`(?im)(^\s*ssn\s*[:;\-])|(\b\d{3}-\d{2}-\d{4}\b)`)
	ccRe        = regexp.MustCompile(`(?im)(^\s*cc\s*[:;\-])|(\b4\d{15}\b)`)
	financialRe = regexp.MustCompile(`(?i)paypal|bank account|balance`)
	reasonRe    = regexp.MustCompile(`(?im)^\s*reason\s*[:;\-]\s*(.+)$`)
	countryRe   = regexp.MustCompile(`(?im)^\s*country\s*[:;\-]\s*(.+)$`)
	foundOnRe   = regexp.MustCompile(`(?m)^\s+([a-z0-9.-]+\.(?:com|net|org|io|sh|gg|to|in|tv))/\S+`)
	celebrityRe = regexp.MustCompile(`(?i)yes, that .+ — the `)
)

// spelled number words for prose ages ("twenty six" and the informal
// "twoty six" doxers type).
var tensWords = map[string]int{
	"twoty": 20, "twenty": 20, "threety": 30, "thirty": 30, "fourty": 40,
	"forty": 40, "fivety": 50, "fifty": 50, "sixty": 60, "seventy": 70,
	"onety": 10, "ten": 10,
}

var onesWords = map[string]int{
	"zero": 0, "one": 1, "two": 2, "three": 3, "four": 4,
	"five": 5, "six": 6, "seven": 7, "eight": 8, "nine": 9,
}

// Community site knowledge (§5.2.3): the analyst recognizes gaming and
// hacking/cybercrime communities by domain.
var gamingDomains = map[string]bool{
	"steamcommunity.com": true, "gamebattles.com": true, "minecraftforum.net": true,
	"speedrun.com": true, "osu.ppy.sh": true, "battlelog.battlefield.com": true,
	"op.gg": true, "xboxgamertag.com": true, "psnprofiles.com": true,
	"faceit.com": true, "esea.net": true, "smashboards.com": true,
	"curseforge.com": true, "roblox.com": true, "runescape.com": true, "twitch.tv": true,
}

var hackingDomains = map[string]bool{
	"hackforums.net": true, "nulled.io": true, "raidforums.io": true,
	"exploit.in": true, "0x00sec.org": true, "greysec.net": true,
	"cracked.to": true, "leakforums.net": true, "binrev.com": true,
	"evilzone.org": true,
}

// Motivation keyword banks (Table 8 definitions, §5.3.1).
var motiveKeywords = []struct {
	motive sim.Motive
	words  []string
}{
	{sim.MotiveJustice, []string{"scam", "snitch", "law enforcement", "ripped off", "someone had to"}},
	{sim.MotiveRevenge, []string{"my girl", "talk to me like that", "attention whore", "banned me", "what you get"}},
	{sim.MotiveCompetitive, []string{"undoxable", "opsec", "practice run", "nobody is hidden", "took me"}},
	{sim.MotivePolitical, []string{"klan", "cp ", "fur farm", "spread this everywhere", "exposing another", "animals deserve"}},
}

// Apply labels one dox body.
func Apply(text string) Labels {
	var l Labels

	// Age: labeled line first, then prose.
	if m := ageLineRe.FindStringSubmatch(text); m != nil {
		if v, err := strconv.Atoi(m[1]); err == nil && v >= 5 && v <= 99 {
			l.Age = v
		}
	}
	if l.Age == 0 {
		if m := ageProseRe.FindStringSubmatch(strings.ToLower(text)); m != nil {
			if tens, ok := tensWords[m[1]]; ok {
				if ones, ok := onesWords[m[2]]; ok {
					l.Age = tens + ones
				}
			}
		}
	}

	if m := genderRe.FindStringSubmatch(text); m != nil {
		switch strings.ToLower(m[1]) {
		case "male", "m", "man", "boy":
			l.Gender = sim.GenderMale
		case "female", "f", "woman", "girl":
			l.Gender = sim.GenderFemale
		default:
			l.Gender = sim.GenderOther
		}
	}

	l.Address = addressRe.MatchString(text)
	l.Zip = l.Address && zipRe.MatchString(text)
	l.Phone = phoneRe.MatchString(text)
	l.Family = familyRe.MatchString(text)
	l.Email = emailRe.MatchString(text)
	l.DOB = dobRe.MatchString(text)
	l.School = schoolRe.MatchString(text)
	l.Usernames = usernamesRe.MatchString(text)
	l.ISP = ispRe.MatchString(text)
	l.IP = ipRe.MatchString(text)
	l.Passwords = passwordRe.MatchString(text)
	l.Physical = physicalRe.MatchString(text)
	l.Criminal = criminalRe.MatchString(text)
	l.SSN = ssnRe.MatchString(text)
	l.CreditCard = ccRe.MatchString(text)
	l.Financial = financialRe.MatchString(text)

	// Location: a country line decides directly; otherwise a US state
	// abbreviation or name near the address implies USA.
	if l.Address {
		if m := countryRe.FindStringSubmatch(text); m != nil {
			if strings.Contains(strings.ToUpper(m[1]), "USA") {
				l.HasUSA = true
			} else {
				l.HasForeign = true
			}
		} else {
			l.HasUSA = true // state-coded addresses without a country line
		}
	}

	// Community (more than two recognized accounts, §5.2.3).
	gaming, hacking := 0, 0
	for _, m := range foundOnRe.FindAllStringSubmatch(text, -1) {
		switch {
		case gamingDomains[m[1]]:
			gaming++
		case hackingDomains[m[1]]:
			hacking++
		}
	}
	switch {
	case gaming > 2:
		l.Community = sim.CommunityGamer
	case hacking > 2:
		l.Community = sim.CommunityHacker
	case celebrityRe.MatchString(text):
		l.Community = sim.CommunityCelebrity
	}

	// Motivation from the "why I doxed this person" pre/postscript.
	if m := reasonRe.FindStringSubmatch(text); m != nil {
		reason := strings.ToLower(m[1])
		for _, mk := range motiveKeywords {
			for _, w := range mk.words {
				if strings.Contains(reason, w) {
					l.Motive = mk.motive
					break
				}
			}
			if l.Motive != sim.MotiveNone {
				break
			}
		}
	}
	return l
}

// Aggregate accumulates labels into Table 5–8 style counts.
type Aggregate struct {
	N int

	// Table 5.
	Ages    []int
	Male    int
	Female  int
	Other   int
	USA     int
	Foreign int

	// Table 6 counters.
	Address, Zip, Phone, Family, Email, DOB, School, Usernames,
	ISP, IP, Passwords, Physical, Criminal, SSN, CreditCard, Financial int

	// Table 7.
	Gamer, Hacker, Celebrity int

	// Table 8.
	Justice, Revenge, Competitive, Political int
}

// Add folds one label set into the aggregate.
func (a *Aggregate) Add(l Labels) {
	a.N++
	if l.Age > 0 {
		a.Ages = append(a.Ages, l.Age)
	}
	switch l.Gender {
	case sim.GenderMale:
		a.Male++
	case sim.GenderFemale:
		a.Female++
	case sim.GenderOther:
		a.Other++
	}
	if l.HasUSA {
		a.USA++
	}
	if l.HasForeign {
		a.Foreign++
	}
	inc := func(c *int, b bool) {
		if b {
			*c++
		}
	}
	inc(&a.Address, l.Address)
	inc(&a.Zip, l.Zip)
	inc(&a.Phone, l.Phone)
	inc(&a.Family, l.Family)
	inc(&a.Email, l.Email)
	inc(&a.DOB, l.DOB)
	inc(&a.School, l.School)
	inc(&a.Usernames, l.Usernames)
	inc(&a.ISP, l.ISP)
	inc(&a.IP, l.IP)
	inc(&a.Passwords, l.Passwords)
	inc(&a.Physical, l.Physical)
	inc(&a.Criminal, l.Criminal)
	inc(&a.SSN, l.SSN)
	inc(&a.CreditCard, l.CreditCard)
	inc(&a.Financial, l.Financial)
	switch l.Community {
	case sim.CommunityGamer:
		a.Gamer++
	case sim.CommunityHacker:
		a.Hacker++
	case sim.CommunityCelebrity:
		a.Celebrity++
	}
	switch l.Motive {
	case sim.MotiveJustice:
		a.Justice++
	case sim.MotiveRevenge:
		a.Revenge++
	case sim.MotiveCompetitive:
		a.Competitive++
	case sim.MotivePolitical:
		a.Political++
	}
}

// AgeStats returns min, max and mean of labeled ages.
func (a *Aggregate) AgeStats() (min, max int, mean float64) {
	if len(a.Ages) == 0 {
		return 0, 0, 0
	}
	min, max = a.Ages[0], a.Ages[0]
	sum := 0
	for _, v := range a.Ages {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return min, max, float64(sum) / float64(len(a.Ages))
}
