package privstore

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"doxmeter/internal/extract"
	"doxmeter/internal/label"
	"doxmeter/internal/netid"
	"doxmeter/internal/sim"
	"doxmeter/internal/textgen"
)

func TestSanitization(t *testing.T) {
	s := New("salt")
	l := label.Labels{Address: true, Phone: true, SSN: true, Age: 23, Gender: sim.GenderMale, HasUSA: true}
	rec := s.Add("pastebin", time.Date(2016, 7, 21, 13, 45, 0, 0, time.UTC), l,
		[]netid.Ref{{Network: netid.Facebook, Username: "victim.name"}})
	if rec.SeenDay != "2016-07-21" {
		t.Errorf("timestamp not coarsened: %q", rec.SeenDay)
	}
	if rec.AgeBracket != "20-29" {
		t.Errorf("age not bracketed: %q", rec.AgeBracket)
	}
	if !rec.Cats.Address || !rec.Cats.SSN {
		t.Error("category indicators lost")
	}
	if len(rec.Accounts) != 1 || strings.Contains(rec.Accounts[0], "victim") {
		t.Errorf("account not digested: %v", rec.Accounts)
	}
	if rec.USA == nil || !*rec.USA {
		t.Error("USA indicator lost")
	}
}

func TestBrackets(t *testing.T) {
	cases := map[int]string{5: "<10", 10: "10-19", 19: "10-19", 23: "20-29", 45: "40-49", 69: "60-69", 70: "70+", 74: "70+"}
	for age, want := range cases {
		if got := bracket(age); got != want {
			t.Errorf("bracket(%d) = %q, want %q", age, got, want)
		}
	}
}

// TestNoLeaks is the §3.3 guarantee: the exported store must not contain
// any of the sensitive values that appeared in the dox files it was built
// from.
func TestNoLeaks(t *testing.T) {
	w := sim.NewWorld(sim.Default(13, 0.02))
	g := textgen.New(w)
	r := rand.New(rand.NewSource(4))
	s := New("store-salt")
	victims := w.Victims[:80]
	for _, v := range victims {
		body := g.Dox(r, v).Body
		l := label.Apply(body)
		ex := extract.Extract(body)
		s.Add("pastebin", time.Date(2016, 8, 1, 9, 30, 0, 0, time.UTC), l, ex.AccountRefs())
	}
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, v := range victims {
		for name, secret := range map[string]string{
			"email":  v.Email,
			"phone":  v.Phone,
			"ip":     v.IP,
			"street": v.Street,
			"zip":    v.Zip,
			"alias":  v.Alias,
			"last":   v.LastName,
		} {
			if secret != "" && strings.Contains(dump, secret) {
				t.Fatalf("store export leaks victim %d %s %q", v.ID, name, secret)
			}
		}
		for _, u := range v.OSN {
			if strings.Contains(dump, u) {
				t.Fatalf("store export leaks account username %q", u)
			}
		}
	}
	if s.Len() != len(victims) {
		t.Fatalf("stored %d of %d", s.Len(), len(victims))
	}
}

func TestAggregateMatchesLabels(t *testing.T) {
	s := New("x")
	s.Add("a", time.Now(), label.Labels{Address: true, Phone: true}, nil)
	s.Add("a", time.Now(), label.Labels{Address: true}, nil)
	agg := s.Aggregate()
	if agg["records"] != 2 || agg["address"] != 2 || agg["phone"] != 1 || agg["ssn"] != 0 {
		t.Fatalf("aggregate = %v", agg)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := New("x")
	s.Add("pastebin", time.Date(2016, 7, 25, 0, 0, 0, 0, time.UTC),
		label.Labels{Address: true, Age: 31, Gender: sim.GenderFemale},
		[]netid.Ref{{Network: netid.Twitter, Username: "someone"}})
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Import(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("imported %d records", s2.Len())
	}
	agg := s2.Aggregate()
	if agg["address"] != 1 {
		t.Fatalf("round-trip aggregate = %v", agg)
	}
	if !s2.ContainsAccount(netid.Ref{Network: netid.Twitter, Username: "someone"}) {
		t.Error("account join lost across round trip")
	}
	if s2.ContainsAccount(netid.Ref{Network: netid.Twitter, Username: "nobody"}) {
		t.Error("phantom account matched")
	}
}

func TestImportGarbage(t *testing.T) {
	if _, err := Import(strings.NewReader("{not json"), "x"); err == nil {
		t.Error("garbage import accepted")
	}
}

func TestSaltedDigestsDiffer(t *testing.T) {
	a, b := New("salt-a"), New("salt-b")
	ref := netid.Ref{Network: netid.Facebook, Username: "same"}
	if a.DigestAccount(ref) == b.DigestAccount(ref) {
		t.Error("different salts produced identical digests")
	}
}

func TestConcurrentAdds(t *testing.T) {
	s := New("x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Add("site", time.Now(), label.Labels{Email: true}, nil)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d", s.Len())
	}
}
