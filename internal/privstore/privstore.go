// Package privstore is the study's privacy-preserving datastore, built to
// the paper's §3.3 design rule: "instead of creating a 'zipcode' column in
// our database, we only recorded whether a dox file contained a zip code",
// and "with the exception of the referenced online social networking
// accounts, we did not extract or store any information taken from the
// doxes". The goal is that a leaked research database teaches an attacker
// nothing beyond the already-public dox files themselves.
//
// A Record therefore holds only: the source site, a coarse timestamp,
// boolean category indicators, salted digests of the referenced accounts
// (needed for de-duplication and monitoring joins), and aggregate-safe
// metadata. Constructing a Record from raw pipeline output *sanitizes* it;
// the raw text never enters the store. Export produces JSON that is
// verifiably free of the sensitive values (see the tests' leak-hunt).
package privstore

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"doxmeter/internal/label"
	"doxmeter/internal/netid"
)

// Categories are the Table 6 boolean indicators — presence only, never the
// values.
type Categories struct {
	Address    bool `json:"address,omitempty"`
	Zip        bool `json:"zip,omitempty"`
	Phone      bool `json:"phone,omitempty"`
	Family     bool `json:"family,omitempty"`
	Email      bool `json:"email,omitempty"`
	DOB        bool `json:"dob,omitempty"`
	School     bool `json:"school,omitempty"`
	Usernames  bool `json:"usernames,omitempty"`
	ISP        bool `json:"isp,omitempty"`
	IP         bool `json:"ip,omitempty"`
	Passwords  bool `json:"passwords,omitempty"`
	Physical   bool `json:"physical,omitempty"`
	Criminal   bool `json:"criminal,omitempty"`
	SSN        bool `json:"ssn,omitempty"`
	CreditCard bool `json:"credit_card,omitempty"`
	Financial  bool `json:"financial,omitempty"`
}

// FromLabels converts analyst labels to stored indicators.
func FromLabels(l label.Labels) Categories {
	return Categories{
		Address: l.Address, Zip: l.Zip, Phone: l.Phone, Family: l.Family,
		Email: l.Email, DOB: l.DOB, School: l.School, Usernames: l.Usernames,
		ISP: l.ISP, IP: l.IP, Passwords: l.Passwords, Physical: l.Physical,
		Criminal: l.Criminal, SSN: l.SSN, CreditCard: l.CreditCard,
		Financial: l.Financial,
	}
}

// Record is one stored dox observation.
type Record struct {
	Site     string     `json:"site"`
	SeenDay  string     `json:"seen_day"` // day precision only
	Cats     Categories `json:"categories"`
	Accounts []string   `json:"account_digests"` // salted HMAC digests
	// AgeBracket is a 10-year bucket ("20-29"), never the exact age.
	AgeBracket string `json:"age_bracket,omitempty"`
	Gender     string `json:"gender,omitempty"`
	USA        *bool  `json:"usa,omitempty"`
}

// Store accumulates records. Safe for concurrent use.
type Store struct {
	salt []byte

	mu      sync.Mutex
	records []Record
}

// New creates a store with the given account-digest salt.
func New(salt string) *Store {
	return &Store{salt: []byte(salt)}
}

// DigestAccount produces the stored form of an account reference.
func (s *Store) DigestAccount(ref netid.Ref) string {
	return DigestIdentifier(string(s.salt), ref.Key())
}

// DigestIdentifier is the §3.3 digest primitive on its own: the salted
// HMAC-SHA256 form of an arbitrary identifier string. Any component that
// must persist an identity-bearing key (the dedup account index, for
// one) stores this instead of the raw value, so a leaked checkpoint or
// datastore only supports equality joins, never recovery.
func DigestIdentifier(salt, value string) string {
	mac := hmac.New(sha256.New, []byte(salt))
	mac.Write([]byte(value))
	return hex.EncodeToString(mac.Sum(nil))[:32]
}

// Add sanitizes one detection into the store: the labels collapse to
// booleans, the age to a bracket, the accounts to digests, the timestamp to
// a day. Raw text is read here and discarded.
func (s *Store) Add(site string, seenAt time.Time, l label.Labels, accounts []netid.Ref) Record {
	rec := Record{
		Site:    site,
		SeenDay: seenAt.Format("2006-01-02"),
		Cats:    FromLabels(l),
	}
	if l.Age > 0 {
		rec.AgeBracket = bracket(l.Age)
	}
	switch l.Gender.String() {
	case "Male", "Female", "Other":
		rec.Gender = l.Gender.String()
	}
	if l.HasUSA || l.HasForeign {
		usa := l.HasUSA
		rec.USA = &usa
	}
	for _, ref := range accounts {
		rec.Accounts = append(rec.Accounts, s.DigestAccount(ref))
	}
	sort.Strings(rec.Accounts)
	s.mu.Lock()
	s.records = append(s.records, rec)
	s.mu.Unlock()
	return rec
}

func bracket(age int) string {
	lo := age / 10 * 10
	switch {
	case lo < 10:
		return "<10"
	case lo >= 70:
		return "70+"
	default:
		return string(rune('0'+lo/10)) + "0-" + string(rune('0'+lo/10)) + "9"
	}
}

// Len returns the stored record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Export writes the store as JSON lines.
func (s *Store) Export(w io.Writer) error {
	s.mu.Lock()
	records := make([]Record, len(s.records))
	copy(records, s.records)
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// Import reads JSON lines produced by Export.
func Import(r io.Reader, salt string) (*Store, error) {
	s := New(salt)
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return s, nil
		} else if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.records = append(s.records, rec)
		s.mu.Unlock()
	}
}

// Aggregate recomputes the Table 6 aggregate from stored indicators — the
// paper's analyses never need more than this.
func (s *Store) Aggregate() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int{}
	for _, r := range s.records {
		out["records"]++
		inc := func(k string, b bool) {
			if b {
				out[k]++
			}
		}
		inc("address", r.Cats.Address)
		inc("zip", r.Cats.Zip)
		inc("phone", r.Cats.Phone)
		inc("family", r.Cats.Family)
		inc("email", r.Cats.Email)
		inc("dob", r.Cats.DOB)
		inc("school", r.Cats.School)
		inc("usernames", r.Cats.Usernames)
		inc("isp", r.Cats.ISP)
		inc("ip", r.Cats.IP)
		inc("passwords", r.Cats.Passwords)
		inc("physical", r.Cats.Physical)
		inc("criminal", r.Cats.Criminal)
		inc("ssn", r.Cats.SSN)
		inc("credit_card", r.Cats.CreditCard)
		inc("financial", r.Cats.Financial)
	}
	return out
}

// ContainsAccount reports whether an account (by digest) appears in any
// stored record — the join the monitor and notification services need.
func (s *Store) ContainsAccount(ref netid.Ref) bool {
	d := s.DigestAccount(ref)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.records {
		for _, a := range r.Accounts {
			if a == d {
				return true
			}
		}
	}
	return false
}
