// Package geo is a synthetic IP-geolocation substrate.
//
// The paper validates dox files by geolocating the victim's listed IP address
// and checking it against the listed postal address (§4.1: of 36 doxes with
// both fields, 32 geolocated to the same state/region, 1 to an adjacent
// state, 3 far away). A MaxMind-style commercial database is not available
// offline, so this package provides the closest equivalent: a deterministic
// registry of regions (US states plus a handful of countries), each with
// cities and dedicated IP space, and a reverse lookup from IP to location.
//
// The IP plan is intentionally simple and collision-free: region i owns the
// /8 whose first octet is FirstOctetBase+i, and the second octet selects the
// city. This keeps Lookup O(1) and makes the validation experiment purely
// about the join logic, exactly as in the paper.
package geo

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// FirstOctetBase is the first octet assigned to region index 0.
const FirstOctetBase = 60

// Region is a US state or a foreign country.
type Region struct {
	Code     string   // postal abbreviation ("IL") or ISO-ish country code ("UK")
	Name     string   // display name
	Country  string   // "USA" for states, country name otherwise
	Cities   []string // cities with dedicated IP space, index = second octet
	Adjacent []string // codes of bordering regions (same country)
}

// IsUSA reports whether the region is a US state.
func (rg Region) IsUSA() bool { return rg.Country == "USA" }

// Proximity classifies how close two geolocated regions are, mirroring the
// paper's three §4.1 buckets plus the exact-city case.
type Proximity int

const (
	// ProximityFar means different, non-bordering regions (or different
	// countries) — the paper's "significantly different" bucket.
	ProximityFar Proximity = iota
	// ProximityAdjacent means different but bordering regions — the paper's
	// "ambiguous" bucket (1 of 36).
	ProximityAdjacent
	// ProximitySame means the same state/province/region — the paper's
	// "close match" bucket (32 of 36).
	ProximitySame
	// ProximityExactCity is a Same match where even the city agrees — the
	// paper found only 4 of the 32 close matches were exact, and uses that
	// as evidence doxers are not deriving the postal address from the IP.
	ProximityExactCity
)

// String implements fmt.Stringer.
func (p Proximity) String() string {
	switch p {
	case ProximityExactCity:
		return "exact-city"
	case ProximitySame:
		return "same-region"
	case ProximityAdjacent:
		return "adjacent"
	default:
		return "far"
	}
}

// Location is the result of an IP lookup.
type Location struct {
	Region Region
	City   string
}

// DB is the geolocation database. It is immutable after construction and
// safe for concurrent use.
type DB struct {
	regions []Region
	byCode  map[string]int
}

// NewDB builds the default database: all 50 US states plus DC and eight
// foreign countries common in English-language paste sites.
func NewDB() *DB {
	db := &DB{byCode: make(map[string]int, len(regions))}
	db.regions = regions
	for i, rg := range regions {
		db.byCode[rg.Code] = i
	}
	return db
}

// Regions returns all regions in index order.
func (db *DB) Regions() []Region { return db.regions }

// USStates returns only the US regions.
func (db *DB) USStates() []Region {
	out := make([]Region, 0, 51)
	for _, rg := range db.regions {
		if rg.IsUSA() {
			out = append(out, rg)
		}
	}
	return out
}

// ByCode returns the region with the given code.
func (db *DB) ByCode(code string) (Region, bool) {
	i, ok := db.byCode[strings.ToUpper(code)]
	if !ok {
		return Region{}, false
	}
	return db.regions[i], true
}

// IPFor allocates a random IP inside the block owned by (regionCode, city).
// An unknown region yields an IP outside all allocated space; an unknown city
// falls back to the region's first city block.
func (db *DB) IPFor(r *rand.Rand, regionCode, city string) string {
	i, ok := db.byCode[strings.ToUpper(regionCode)]
	if !ok {
		return fmt.Sprintf("203.0.%d.%d", r.Intn(256), 1+r.Intn(254))
	}
	cityIdx := 0
	for j, c := range db.regions[i].Cities {
		if c == city {
			cityIdx = j
			break
		}
	}
	return fmt.Sprintf("%d.%d.%d.%d", FirstOctetBase+i, cityIdx, r.Intn(256), 1+r.Intn(254))
}

// Lookup geolocates an IPv4 address. It returns false for malformed
// addresses and addresses outside the allocated plan.
func (db *DB) Lookup(ip string) (Location, bool) {
	parts := strings.Split(strings.TrimSpace(ip), ".")
	if len(parts) != 4 {
		return Location{}, false
	}
	octets := make([]int, 4)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return Location{}, false
		}
		octets[i] = v
	}
	idx := octets[0] - FirstOctetBase
	if idx < 0 || idx >= len(db.regions) {
		return Location{}, false
	}
	rg := db.regions[idx]
	city := rg.Cities[octets[1]%len(rg.Cities)]
	return Location{Region: rg, City: city}, true
}

// Compare classifies the proximity of an IP-derived location to a postal
// region and city, implementing the paper's §4.1 buckets.
func (db *DB) Compare(loc Location, postalRegionCode, postalCity string) Proximity {
	postal, ok := db.ByCode(postalRegionCode)
	if !ok {
		return ProximityFar
	}
	if loc.Region.Code == postal.Code {
		if loc.City == postalCity {
			return ProximityExactCity
		}
		return ProximitySame
	}
	if loc.Region.Country != postal.Country {
		return ProximityFar
	}
	for _, adj := range loc.Region.Adjacent {
		if adj == postal.Code {
			return ProximityAdjacent
		}
	}
	return ProximityFar
}

// AdjacentTo returns a region bordering the given one, or the region itself
// when it has no neighbours (e.g. island countries).
func (db *DB) AdjacentTo(r *rand.Rand, regionCode string) Region {
	rg, ok := db.ByCode(regionCode)
	if !ok || len(rg.Adjacent) == 0 {
		return rg
	}
	code := rg.Adjacent[r.Intn(len(rg.Adjacent))]
	out, _ := db.ByCode(code)
	return out
}

// FarFrom returns a region that is neither the given region nor adjacent to
// it, preferring a different country about half the time as the paper's far
// bucket includes "a far away state or country".
func (db *DB) FarFrom(r *rand.Rand, regionCode string) Region {
	rg, _ := db.ByCode(regionCode)
	adj := make(map[string]bool, len(rg.Adjacent))
	for _, a := range rg.Adjacent {
		adj[a] = true
	}
	for tries := 0; tries < 100; tries++ {
		cand := db.regions[r.Intn(len(db.regions))]
		if cand.Code == rg.Code || adj[cand.Code] {
			continue
		}
		return cand
	}
	return rg
}

// ZipFor returns a deterministic-prefix synthetic zip code for a region: the
// first two digits identify the region, the rest are random. This gives the
// labeling pipeline a "zip-code level precision" field to detect without
// needing a real zip database.
func ZipFor(rnd *rand.Rand, db *DB, regionCode string) string {
	i, ok := db.byCode[strings.ToUpper(regionCode)]
	if !ok {
		i = 0
	}
	return fmt.Sprintf("%02d%03d", 10+i%89, rnd.Intn(1000))
}
