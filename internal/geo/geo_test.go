package geo

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryIntegrity(t *testing.T) {
	db := NewDB()
	codes := map[string]bool{}
	for _, rg := range db.Regions() {
		if rg.Code == "" || rg.Name == "" || rg.Country == "" {
			t.Fatalf("region %+v missing fields", rg)
		}
		if codes[rg.Code] {
			t.Fatalf("duplicate region code %q", rg.Code)
		}
		codes[rg.Code] = true
		if len(rg.Cities) == 0 {
			t.Fatalf("region %s has no cities", rg.Code)
		}
		for _, adj := range rg.Adjacent {
			other, ok := db.ByCode(adj)
			if !ok {
				t.Fatalf("region %s lists unknown neighbour %q", rg.Code, adj)
			}
			if other.Country != rg.Country {
				t.Fatalf("region %s lists cross-country neighbour %s", rg.Code, adj)
			}
		}
	}
	if got := len(db.USStates()); got != 51 {
		t.Fatalf("US state count = %d, want 51 (50 states + DC)", got)
	}
}

func TestAdjacencySymmetry(t *testing.T) {
	db := NewDB()
	for _, rg := range db.Regions() {
		for _, adj := range rg.Adjacent {
			other, _ := db.ByCode(adj)
			found := false
			for _, back := range other.Adjacent {
				if back == rg.Code {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("adjacency not symmetric: %s -> %s but not back", rg.Code, adj)
			}
		}
	}
}

func TestIPRoundTrip(t *testing.T) {
	db := NewDB()
	r := rand.New(rand.NewSource(1))
	for _, rg := range db.Regions() {
		for _, city := range rg.Cities {
			ip := db.IPFor(r, rg.Code, city)
			loc, ok := db.Lookup(ip)
			if !ok {
				t.Fatalf("Lookup(%s) failed for %s/%s", ip, rg.Code, city)
			}
			if loc.Region.Code != rg.Code {
				t.Fatalf("IP %s for %s resolved to %s", ip, rg.Code, loc.Region.Code)
			}
			if loc.City != city {
				t.Fatalf("IP %s for city %s resolved to %s", ip, city, loc.City)
			}
		}
	}
}

func TestIPRoundTripProperty(t *testing.T) {
	db := NewDB()
	r := rand.New(rand.NewSource(2))
	n := len(db.Regions())
	f := func(regionIdx, cityIdx uint8) bool {
		rg := db.Regions()[int(regionIdx)%n]
		city := rg.Cities[int(cityIdx)%len(rg.Cities)]
		ip := db.IPFor(r, rg.Code, city)
		loc, ok := db.Lookup(ip)
		return ok && loc.Region.Code == rg.Code && loc.City == city
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupRejectsGarbage(t *testing.T) {
	db := NewDB()
	for _, bad := range []string{
		"", "not-an-ip", "1.2.3", "1.2.3.4.5", "300.1.1.1", "-1.2.3.4",
		"10.0.0.1",      // below the allocated plan
		"250.10.10.10",  // above the allocated plan
		"60.0.0.x",      // non-numeric octet
		"60.0.0.999999", // out of octet range
	} {
		if _, ok := db.Lookup(bad); ok {
			t.Errorf("Lookup(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestLookupUnknownRegionIPFor(t *testing.T) {
	db := NewDB()
	r := rand.New(rand.NewSource(3))
	ip := db.IPFor(r, "ZZ", "Nowhere")
	if _, ok := db.Lookup(ip); ok {
		t.Errorf("unknown-region IP %s should not geolocate", ip)
	}
}

func TestCompareBuckets(t *testing.T) {
	db := NewDB()
	r := rand.New(rand.NewSource(4))
	il, _ := db.ByCode("IL")

	sameCity := db.IPFor(r, "IL", "Chicago")
	loc, _ := db.Lookup(sameCity)
	if got := db.Compare(loc, "IL", "Chicago"); got != ProximityExactCity {
		t.Errorf("same city => %v, want exact-city", got)
	}
	if got := db.Compare(loc, "IL", "Springfield"); got != ProximitySame {
		t.Errorf("same state different city => %v, want same-region", got)
	}
	// Adjacent: Wisconsin borders Illinois.
	wiIP := db.IPFor(r, "WI", "Madison")
	wiLoc, _ := db.Lookup(wiIP)
	if got := db.Compare(wiLoc, "IL", "Chicago"); got != ProximityAdjacent {
		t.Errorf("WI vs IL => %v, want adjacent", got)
	}
	// Far: California does not border Illinois.
	caIP := db.IPFor(r, "CA", "Los Angeles")
	caLoc, _ := db.Lookup(caIP)
	if got := db.Compare(caLoc, "IL", "Chicago"); got != ProximityFar {
		t.Errorf("CA vs IL => %v, want far", got)
	}
	// Cross-country is always far even if hypothetically adjacent-listed.
	ukIP := db.IPFor(r, "UK", "London")
	ukLoc, _ := db.Lookup(ukIP)
	if got := db.Compare(ukLoc, "IL", "Chicago"); got != ProximityFar {
		t.Errorf("UK vs IL => %v, want far", got)
	}
	if got := db.Compare(loc, "ZZ", "Nowhere"); got != ProximityFar {
		t.Errorf("unknown postal region => %v, want far", got)
	}
	_ = il
}

func TestAdjacentToAndFarFrom(t *testing.T) {
	db := NewDB()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		adj := db.AdjacentTo(r, "IL")
		ok := false
		for _, code := range []string{"WI", "IA", "MO", "KY", "IN"} {
			if adj.Code == code {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("AdjacentTo(IL) = %s, not a neighbour", adj.Code)
		}
		far := db.FarFrom(r, "IL")
		if far.Code == "IL" {
			t.Fatal("FarFrom(IL) returned IL")
		}
		for _, code := range []string{"WI", "IA", "MO", "KY", "IN"} {
			if far.Code == code {
				t.Fatalf("FarFrom(IL) returned adjacent %s", far.Code)
			}
		}
	}
	// Island regions fall back to themselves.
	hi := db.AdjacentTo(r, "HI")
	if hi.Code != "HI" {
		t.Fatalf("AdjacentTo(HI) = %s, want HI (no neighbours)", hi.Code)
	}
}

func TestZipFor(t *testing.T) {
	db := NewDB()
	r := rand.New(rand.NewSource(6))
	z1 := ZipFor(r, db, "IL")
	z2 := ZipFor(r, db, "IL")
	if len(z1) != 5 || len(z2) != 5 {
		t.Fatalf("zip length wrong: %q %q", z1, z2)
	}
	if z1[:2] != z2[:2] {
		t.Fatalf("zip prefix not stable for same region: %q vs %q", z1, z2)
	}
	zCA := ZipFor(r, db, "CA")
	if zCA[:2] == z1[:2] {
		t.Fatalf("different regions share zip prefix: %q vs %q", zCA, z1)
	}
}

func TestProximityString(t *testing.T) {
	cases := map[Proximity]string{
		ProximityExactCity: "exact-city",
		ProximitySame:      "same-region",
		ProximityAdjacent:  "adjacent",
		ProximityFar:       "far",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestCityIPSpaceUniqueAcrossRegions(t *testing.T) {
	db := NewDB()
	r := rand.New(rand.NewSource(7))
	firstOctets := map[string]bool{}
	for _, rg := range db.Regions() {
		ip := db.IPFor(r, rg.Code, rg.Cities[0])
		octet := strings.SplitN(ip, ".", 2)[0]
		if firstOctets[octet] {
			t.Fatalf("regions share first octet %s", octet)
		}
		firstOctets[octet] = true
	}
}
