// Package graph provides the undirected-graph machinery behind the paper's
// doxer-network analysis (§5.3.2, Figure 2): nodes are doxer aliases,
// edges come from credit co-occurrence and Twitter follow relationships,
// and the reported structure is the set of maximal cliques of size >= 4.
package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Graph is an undirected simple graph over string-labeled nodes.
type Graph struct {
	adj map[string]map[string]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[string]map[string]bool)}
}

// AddNode ensures a node exists.
func (g *Graph) AddNode(n string) {
	if g.adj[n] == nil {
		g.adj[n] = make(map[string]bool)
	}
}

// AddEdge connects a and b (no self loops).
func (g *Graph) AddEdge(a, b string) {
	if a == b {
		return
	}
	g.AddNode(a)
	g.AddNode(b)
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// HasEdge reports whether a and b are connected.
func (g *Graph) HasEdge(a, b string) bool { return g.adj[a][b] }

// Nodes returns all nodes, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.adj))
	for n := range g.adj {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Degree returns a node's degree.
func (g *Graph) Degree(n string) int { return len(g.adj[n]) }

// Components returns the connected components, each sorted, largest first.
func (g *Graph) Components() [][]string {
	seen := make(map[string]bool, len(g.adj))
	var comps [][]string
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var comp []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for nbr := range g.adj[n] {
				if !seen[nbr] {
					seen[nbr] = true
					stack = append(stack, nbr)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// MaximalCliques enumerates all maximal cliques using Bron–Kerbosch with
// pivoting. Each clique is sorted; the result is ordered largest first.
func (g *Graph) MaximalCliques() [][]string {
	if len(g.adj) == 0 {
		return nil
	}
	var cliques [][]string
	all := g.Nodes()
	p := make(map[string]bool, len(all))
	for _, n := range all {
		p[n] = true
	}
	g.bronKerbosch(nil, p, make(map[string]bool), &cliques)
	for _, c := range cliques {
		sort.Strings(c)
	}
	sort.Slice(cliques, func(i, j int) bool {
		if len(cliques[i]) != len(cliques[j]) {
			return len(cliques[i]) > len(cliques[j])
		}
		return strings.Join(cliques[i], ",") < strings.Join(cliques[j], ",")
	})
	return cliques
}

func (g *Graph) bronKerbosch(r []string, p, x map[string]bool, out *[][]string) {
	if len(p) == 0 && len(x) == 0 {
		clique := make([]string, len(r))
		copy(clique, r)
		*out = append(*out, clique)
		return
	}
	// Pivot: the vertex in P ∪ X with the most neighbours in P.
	var pivot string
	best := -1
	for _, set := range []map[string]bool{p, x} {
		for v := range set {
			cnt := 0
			for nbr := range g.adj[v] {
				if p[nbr] {
					cnt++
				}
			}
			if cnt > best {
				best, pivot = cnt, v
			}
		}
	}
	// Candidates: P \ N(pivot), iterated in sorted order for determinism.
	var cands []string
	for v := range p {
		if !g.adj[pivot][v] {
			cands = append(cands, v)
		}
	}
	sort.Strings(cands)
	for _, v := range cands {
		np := make(map[string]bool)
		nx := make(map[string]bool)
		for nbr := range g.adj[v] {
			if p[nbr] {
				np[nbr] = true
			}
			if x[nbr] {
				nx[nbr] = true
			}
		}
		g.bronKerbosch(append(r, v), np, nx, out)
		delete(p, v)
		x[v] = true
	}
}

// CliquesAtLeast returns maximal cliques with >= k nodes.
func (g *Graph) CliquesAtLeast(k int) [][]string {
	var out [][]string
	for _, c := range g.MaximalCliques() {
		if len(c) >= k {
			out = append(out, c)
		}
	}
	return out
}

// NodesInCliques returns the distinct nodes covered by the given cliques —
// the paper's "61 of 251 doxers" statistic.
func NodesInCliques(cliques [][]string) []string {
	seen := make(map[string]bool)
	for _, c := range cliques {
		for _, n := range c {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteDOT emits the graph (restricted to the given nodes; nil = all) in
// Graphviz DOT format, for regenerating the Figure 2 rendering.
func (g *Graph) WriteDOT(w io.Writer, name string, only []string) error {
	include := map[string]bool{}
	if only == nil {
		for n := range g.adj {
			include[n] = true
		}
	} else {
		for _, n := range only {
			include[n] = true
		}
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n  layout=neato;\n  node [shape=point];\n", name); err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		if !include[n] {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %q;\n", n); err != nil {
			return err
		}
	}
	for _, a := range g.Nodes() {
		if !include[a] {
			continue
		}
		nbrs := make([]string, 0, len(g.adj[a]))
		for b := range g.adj[a] {
			nbrs = append(nbrs, b)
		}
		sort.Strings(nbrs)
		for _, b := range nbrs {
			if a < b && include[b] {
				if _, err := fmt.Fprintf(w, "  %q -- %q;\n", a, b); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
