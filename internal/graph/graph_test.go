package graph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func complete(nodes ...string) *Graph {
	g := New()
	for i, a := range nodes {
		for _, b := range nodes[i+1:] {
			g.AddEdge(a, b)
		}
	}
	return g
}

func TestBasics(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "a") // self loop ignored
	g.AddNode("lonely")
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Error("edge not symmetric")
	}
	if g.HasEdge("a", "c") {
		t.Error("phantom edge")
	}
	if g.Degree("b") != 2 || g.Degree("lonely") != 0 {
		t.Error("degrees wrong")
	}
	// Duplicate edges don't double count.
	g.AddEdge("a", "b")
	if g.NumEdges() != 2 {
		t.Error("duplicate edge counted")
	}
}

func TestComponents(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("x", "y")
	g.AddNode("solo")
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != "a" {
		t.Fatalf("largest component = %v", comps[0])
	}
	if len(comps[2]) != 1 || comps[2][0] != "solo" {
		t.Fatalf("singleton = %v", comps[2])
	}
}

func TestTriangleClique(t *testing.T) {
	g := complete("a", "b", "c")
	g.AddEdge("c", "d") // pendant
	cliques := g.MaximalCliques()
	if len(cliques) != 2 {
		t.Fatalf("cliques = %v", cliques)
	}
	if strings.Join(cliques[0], ",") != "a,b,c" {
		t.Fatalf("largest clique = %v", cliques[0])
	}
	if strings.Join(cliques[1], ",") != "c,d" {
		t.Fatalf("second clique = %v", cliques[1])
	}
}

func TestKnownCliqueStructure(t *testing.T) {
	// Two overlapping K4s sharing an edge.
	g := complete("a", "b", "c", "d")
	for i, x := range []string{"c", "d", "e", "f"} {
		for _, y := range []string{"c", "d", "e", "f"}[i+1:] {
			g.AddEdge(x, y)
		}
	}
	cliques := g.CliquesAtLeast(4)
	if len(cliques) != 2 {
		t.Fatalf("K4 count = %d (%v)", len(cliques), cliques)
	}
	nodes := NodesInCliques(cliques)
	if len(nodes) != 6 {
		t.Fatalf("covered nodes = %v", nodes)
	}
}

func TestCompleteGraphSingleClique(t *testing.T) {
	nodes := make([]string, 11)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%02d", i)
	}
	g := complete(nodes...)
	cliques := g.MaximalCliques()
	if len(cliques) != 1 || len(cliques[0]) != 11 {
		t.Fatalf("K11 cliques = %d, largest %d", len(cliques), len(cliques[0]))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	g := New()
	if got := g.MaximalCliques(); len(got) != 0 {
		t.Fatalf("empty graph cliques = %v", got)
	}
	g.AddNode("a")
	cliques := g.MaximalCliques()
	if len(cliques) != 1 || len(cliques[0]) != 1 {
		t.Fatalf("singleton cliques = %v", cliques)
	}
}

func TestCliqueProperty(t *testing.T) {
	// Every reported clique is actually a clique and is maximal.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New()
		n := 12
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("v%d", i)
			g.AddNode(names[i])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.35 {
					g.AddEdge(names[i], names[j])
				}
			}
		}
		for _, c := range g.MaximalCliques() {
			for i, a := range c {
				for _, b := range c[i+1:] {
					if !g.HasEdge(a, b) {
						return false // not a clique
					}
				}
			}
			// Maximality: no vertex outside c is adjacent to all of c.
			for _, v := range names {
				in := false
				for _, m := range c {
					if m == v {
						in = true
					}
				}
				if in {
					continue
				}
				all := true
				for _, m := range c {
					if !g.HasEdge(v, m) {
						all = false
						break
					}
				}
				if all {
					return false // not maximal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueCoverageProperty(t *testing.T) {
	// Every edge appears in at least one maximal clique.
	r := rand.New(rand.NewSource(9))
	g := New()
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if r.Float64() < 0.4 {
				g.AddEdge(fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", j))
			}
		}
	}
	cliques := g.MaximalCliques()
	for _, a := range g.Nodes() {
		for _, b := range g.Nodes() {
			if a >= b || !g.HasEdge(a, b) {
				continue
			}
			covered := false
			for _, c := range cliques {
				hasA, hasB := false, false
				for _, n := range c {
					hasA = hasA || n == a
					hasB = hasB || n == b
				}
				if hasA && hasB {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("edge %s-%s in no maximal clique", a, b)
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := complete("a", "b", "c")
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "fig2", nil); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{`graph "fig2"`, `"a" -- "b"`, `"a" -- "c"`, `"b" -- "c"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Restricted output excludes other nodes.
	sb.Reset()
	if err := g.WriteDOT(&sb, "sub", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `"c"`) {
		t.Error("restricted DOT leaked excluded node")
	}
}

func TestDeterministicOutput(t *testing.T) {
	build := func() *Graph {
		g := New()
		g.AddEdge("x", "y")
		g.AddEdge("y", "z")
		g.AddEdge("x", "z")
		g.AddEdge("z", "w")
		return g
	}
	a := fmt.Sprint(build().MaximalCliques())
	b := fmt.Sprint(build().MaximalCliques())
	if a != b {
		t.Error("clique enumeration not deterministic")
	}
}
