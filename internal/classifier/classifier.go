// Package classifier assembles the paper's dox classifier (§3.1.2): a
// TF-IDF vectorizer feeding a 20-epoch SGD linear model, trained on 749
// dox-for-hire proof-of-work files and 4,220 hand-checked benign pastes,
// evaluated on a random two-thirds/one-third split (Table 1).
package classifier

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"doxmeter/internal/metrics"
	"doxmeter/internal/parallel"
	"doxmeter/internal/sgd"
	"doxmeter/internal/tfidf"
)

// Options configures training. The zero value reproduces the paper's setup.
type Options struct {
	TFIDF tfidf.Options
	SGD   sgd.Options
	// Threshold shifts the decision boundary; zero uses DefaultThreshold.
	Threshold float64
	// MinTokens is the shortest document (in tokens) that can be flagged
	// as a dox; zero uses DefaultMinTokens, negative disables the floor.
	// A dox necessarily discloses several fields, so very short documents
	// are categorically negative. Without the floor, short imageboard
	// posts whose tokens are mostly out-of-vocabulary get their few known
	// tokens amplified by L2 normalization, and whichever phrase happens
	// to share a rare token with a training dox becomes an unstable
	// false-positive bomb.
	MinTokens int
	// Parallelism bounds the worker pool used by batch classification
	// (IsDoxBatch) and the TrainEval test-split evaluation. Values <= 1
	// run sequentially; results are identical at any setting because each
	// document is classified independently.
	Parallelism int
	// ReferenceKernel forces Score/IsDox/ScoreInto through the original
	// Transform+Decision path instead of the fused tfidf.Scorer kernel.
	// The two paths are bit-identical (enforced by fuzz and whole-study
	// equivalence suites); this knob exists so those suites can run entire
	// studies on both paths and compare outputs byte for byte.
	ReferenceKernel bool
}

// DefaultThreshold is the decision boundary calibrated on the labeled
// corpus so that the evaluation lands on the paper's Table 1 error shape
// (dox precision slightly below recall, the Not class near-perfect) while
// the wild-corpus flagged rate stays near the paper's ~0.3%. The margin
// damps rare-token overfit on very short imageboard posts.
const DefaultThreshold = 0.06

// DefaultMinTokens is the default document-length floor. The shortest real
// dox renders (terse template fills) run ~30 tokens; imageboard chatter
// runs under 15.
const DefaultMinTokens = 20

// Classifier is a trained dox detector. Safe for concurrent Classify calls:
// the fused kernel's mutable scratch lives in per-call scorers drawn from an
// internal pool, never in shared state.
type Classifier struct {
	vec       *tfidf.Vectorizer
	model     *sgd.Classifier
	threshold float64
	minTokens int
	reference bool
	scorers   sync.Pool // *tfidf.Scorer scratch, one per concurrent scorer
}

// newClassifier wires the scorer pool; every construction path (Train,
// Load) funnels through it.
func newClassifier(vec *tfidf.Vectorizer, model *sgd.Classifier, threshold float64, minTokens int, reference bool) *Classifier {
	c := &Classifier{vec: vec, model: model, threshold: threshold, minTokens: minTokens, reference: reference}
	c.scorers.New = func() any { return vec.NewScorer() }
	return c
}

// Train fits the classifier on labeled documents.
func Train(r *rand.Rand, docs []string, isDox []bool, opts Options) (*Classifier, error) {
	if len(docs) == 0 || len(docs) != len(isDox) {
		return nil, fmt.Errorf("classifier: %d docs vs %d labels", len(docs), len(isDox))
	}
	vec := tfidf.NewVectorizer(opts.TFIDF)
	X := vec.FitTransform(docs)
	y := make([]int, len(isDox))
	for i, d := range isDox {
		if d {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	model := sgd.New(vec.VocabSize(), opts.SGD)
	if err := model.Fit(r, X, y); err != nil {
		return nil, err
	}
	th := opts.Threshold
	if th == 0 {
		th = DefaultThreshold
	}
	mt := opts.MinTokens
	if mt == 0 {
		mt = DefaultMinTokens
	}
	return newClassifier(vec, model, th, mt, opts.ReferenceKernel), nil
}

// Result is the output of one classification pass: everything the funnel
// needs to know about a document, computed in a single fused pass over its
// bytes. Score includes the threshold shift, so >= 0 means flagged (before
// the length floor); Tokens is the unigram count the MinTokens floor reads.
type Result struct {
	Score  float64
	Tokens int
	IsDox  bool
}

// ScoreInto classifies doc into *r without per-call heap allocation: the
// fused kernel tokenizes, accumulates TF-IDF, L2-normalizes and folds the
// dense SGD weight vector in one pass over the document bytes, reusing
// pooled scratch. Margins are bit-identical to the reference
// Transform+Decision path at any concurrency.
func (c *Classifier) ScoreInto(doc string, r *Result) {
	if c.reference {
		r.Score = c.ScoreReference(doc)
		r.Tokens = len(tfidf.Tokenize(doc))
	} else {
		s := c.scorers.Get().(*tfidf.Scorer)
		dot, tokens := s.DotNormalized(doc, c.model.Weights)
		c.scorers.Put(s)
		r.Score = c.model.DecisionFromDot(dot) - c.threshold
		r.Tokens = tokens
	}
	r.IsDox = r.Score >= 0 && !(c.minTokens > 0 && r.Tokens < c.minTokens)
}

// scoreIntoWith is ScoreInto with an explicit scorer, for batch callers
// that pin one scorer per worker instead of hitting the pool per document.
func (c *Classifier) scoreIntoWith(s *tfidf.Scorer, doc string, r *Result) {
	dot, tokens := s.DotNormalized(doc, c.model.Weights)
	r.Score = c.model.DecisionFromDot(dot) - c.threshold
	r.Tokens = tokens
	r.IsDox = r.Score >= 0 && !(c.minTokens > 0 && r.Tokens < c.minTokens)
}

// Score returns the signed decision margin for a document; positive means
// dox-like.
func (c *Classifier) Score(doc string) float64 {
	var r Result
	c.ScoreInto(doc, &r)
	return r.Score
}

// ScoreReference computes the margin through the original sparse path —
// tfidf.Transform into a materialized Vector, then sgd.Decision. It is the
// reference implementation the fused kernel is verified against, kept on
// the API so equivalence tests and ablations can always reach it.
func (c *Classifier) ScoreReference(doc string) float64 {
	return c.model.Decision(c.vec.Transform(doc)) - c.threshold
}

// IsDox classifies one document, applying the length floor.
func (c *Classifier) IsDox(doc string) bool {
	var r Result
	c.ScoreInto(doc, &r)
	return r.IsDox
}

// ScoreBatchInto classifies a batch into out (which must hold len(docs)
// entries) using at most workers concurrent goroutines, each with its own
// pinned scorer scratch. This is the API the study's PrepareBatch workers
// use. Results are identical at any worker count.
func (c *Classifier) ScoreBatchInto(docs []string, out []Result, workers int) {
	if len(out) < len(docs) {
		panic("classifier: ScoreBatchInto out slice shorter than docs")
	}
	if c.reference {
		parallel.ForEach(len(docs), workers, func(i int) {
			c.ScoreInto(docs[i], &out[i])
		})
		return
	}
	n := parallel.Workers(len(docs), workers)
	scorers := make([]*tfidf.Scorer, n)
	for w := range scorers {
		scorers[w] = c.scorers.Get().(*tfidf.Scorer)
	}
	parallel.ForEachWorker(len(docs), workers, func(w, i int) {
		c.scoreIntoWith(scorers[w], docs[i], &out[i])
	})
	for _, s := range scorers {
		c.scorers.Put(s)
	}
}

// IsDoxBatch classifies a batch of documents using at most workers
// concurrent goroutines (workers <= 1 is sequential). Because each document
// is classified independently against immutable fitted state, the result is
// identical to calling IsDox in a loop, just faster on multi-core hosts.
func (c *Classifier) IsDoxBatch(docs []string, workers int) []bool {
	res := make([]Result, len(docs))
	c.ScoreBatchInto(docs, res, workers)
	out := make([]bool, len(docs))
	for i := range res {
		out[i] = res[i].IsDox
	}
	return out
}

// ScoreBatch computes decision margins for a batch, parallelized like
// IsDoxBatch.
func (c *Classifier) ScoreBatch(docs []string, workers int) []float64 {
	res := make([]Result, len(docs))
	c.ScoreBatchInto(docs, res, workers)
	out := make([]float64, len(docs))
	for i := range res {
		out[i] = res[i].Score
	}
	return out
}

// VocabSize exposes the fitted vocabulary size.
func (c *Classifier) VocabSize() int { return c.vec.VocabSize() }

// Example is one labeled training document.
type Example struct {
	Body  string
	IsDox bool
}

// EvalResult is the outcome of a split evaluation.
type EvalResult struct {
	Confusion metrics.Confusion
	Report    []metrics.ClassReport
	TrainSize int
	TestSize  int
}

// TrainEval performs the paper's evaluation protocol: shuffle, train on a
// random two-thirds, evaluate on the remaining third, and report per-class
// precision/recall/F1 (Table 1). It returns the classifier trained on the
// training split.
func TrainEval(r *rand.Rand, examples []Example, opts Options) (*Classifier, EvalResult, error) {
	if len(examples) < 3 {
		return nil, EvalResult{}, fmt.Errorf("classifier: need at least 3 examples, have %d", len(examples))
	}
	shuffled := make([]Example, len(examples))
	copy(shuffled, examples)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	cut := len(shuffled) * 2 / 3
	train, test := shuffled[:cut], shuffled[cut:]

	docs := make([]string, len(train))
	labels := make([]bool, len(train))
	for i, ex := range train {
		docs[i], labels[i] = ex.Body, ex.IsDox
	}
	clf, err := Train(r, docs, labels, opts)
	if err != nil {
		return nil, EvalResult{}, err
	}
	testDocs := make([]string, len(test))
	for i, ex := range test {
		testDocs[i] = ex.Body
	}
	preds := clf.IsDoxBatch(testDocs, opts.Parallelism)
	var conf metrics.Confusion
	for i, ex := range test {
		conf.Add(ex.IsDox, preds[i])
	}
	return clf, EvalResult{
		Confusion: conf,
		Report:    metrics.Report(conf),
		TrainSize: len(train),
		TestSize:  len(test),
	}, nil
}

// persisted is the gob wire form of a classifier.
type persisted struct {
	Vocab     map[string]int
	IDF       []float64
	NDocs     int
	TFIDFOpts tfidf.Options
	Weights   []float64
	Intercept float64
	SGDOpts   sgd.Options
	Threshold float64
	MinTokens int
}

// Save serializes the classifier with encoding/gob.
func (c *Classifier) Save(w io.Writer) error {
	vocab, idf, nDocs, opts := c.vec.Snapshot()
	return gob.NewEncoder(w).Encode(persisted{
		Vocab:     vocab,
		IDF:       idf,
		NDocs:     nDocs,
		TFIDFOpts: opts,
		Weights:   c.model.Weights,
		Intercept: c.model.Intercept,
		SGDOpts:   c.model.Opts,
		Threshold: c.threshold,
		MinTokens: c.minTokens,
	})
}

// Load restores a classifier saved with Save.
func Load(r io.Reader) (*Classifier, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	vec := tfidf.Restore(p.Vocab, p.IDF, p.NDocs, p.TFIDFOpts)
	model := sgd.New(len(p.Weights), p.SGDOpts)
	model.Weights = p.Weights
	model.Intercept = p.Intercept
	return newClassifier(vec, model, p.Threshold, p.MinTokens, false), nil
}
