package classifier

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"doxmeter/internal/sim"
	"doxmeter/internal/textgen"
)

// paperExamples renders the paper's labeled training corpus.
func paperExamples(t *testing.T) []Example {
	t.Helper()
	g := textgen.New(sim.NewWorld(sim.Default(123, 0.01)))
	ts := g.TrainingSet()
	out := make([]Example, len(ts))
	for i, ex := range ts {
		out[i] = Example{Body: ex.Body, IsDox: ex.IsDox}
	}
	return out
}

func TestTrainEvalTable1Shape(t *testing.T) {
	exs := paperExamples(t)
	r := rand.New(rand.NewSource(1))
	clf, res, err := TrainEval(r, exs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if clf == nil {
		t.Fatal("nil classifier")
	}
	// Split sizes: 2/3 train, 1/3 eval (paper §3.1.2).
	total := len(exs)
	if res.TrainSize != total*2/3 || res.TestSize != total-total*2/3 {
		t.Errorf("split %d/%d of %d", res.TrainSize, res.TestSize, total)
	}
	dox := res.Report[0]
	not := res.Report[1]
	if dox.Label != "Dox" || not.Label != "Not" {
		t.Fatalf("report labels %q/%q", dox.Label, not.Label)
	}
	// Shape targets from Table 1: the dox class is the hard one; the
	// negative class is near-perfect; overall accuracy is high.
	if dox.Recall < 0.80 {
		t.Errorf("dox recall %.3f, want >= 0.80 (paper: 0.89)", dox.Recall)
	}
	if dox.Precision < 0.70 {
		t.Errorf("dox precision %.3f, want >= 0.70 (paper: 0.81)", dox.Precision)
	}
	if not.Precision < 0.97 || not.Recall < 0.95 {
		t.Errorf("not-class P/R %.3f/%.3f, want ~0.99/0.98", not.Precision, not.Recall)
	}
	if res.Confusion.Accuracy() < 0.95 {
		t.Errorf("accuracy %.3f, want >= 0.95 (paper: 0.98)", res.Confusion.Accuracy())
	}
}

// TestBatchMatchesSequential verifies the batch API yields exactly the
// per-document results at any worker count.
func TestBatchMatchesSequential(t *testing.T) {
	exs := paperExamples(t)
	r := rand.New(rand.NewSource(3))
	clf, _, err := TrainEval(r, exs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]string, 0, 200)
	for i := 0; i < len(exs) && i < 200; i++ {
		docs = append(docs, exs[i].Body)
	}
	want := make([]bool, len(docs))
	wantScores := make([]float64, len(docs))
	for i, d := range docs {
		want[i] = clf.IsDox(d)
		wantScores[i] = clf.Score(d)
	}
	for _, workers := range []int{0, 1, 4, 16} {
		got := clf.IsDoxBatch(docs, workers)
		scores := clf.ScoreBatch(docs, workers)
		for i := range docs {
			if got[i] != want[i] || scores[i] != wantScores[i] {
				t.Fatalf("workers=%d: doc %d batch=(%v,%g) sequential=(%v,%g)",
					workers, i, got[i], scores[i], want[i], wantScores[i])
			}
		}
	}
}

// TestTrainEvalParallelismInvariant: the evaluation result must not depend
// on the Parallelism knob.
func TestTrainEvalParallelismInvariant(t *testing.T) {
	exs := paperExamples(t)
	_, serial, err := TrainEval(rand.New(rand.NewSource(9)), exs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, par, err := TrainEval(rand.New(rand.NewSource(9)), exs, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Confusion != par.Confusion {
		t.Fatalf("confusion diverged: serial %+v parallel %+v", serial.Confusion, par.Confusion)
	}
}

func TestClassifierGeneralizesToWildDoxes(t *testing.T) {
	// Train on the rich proof-of-work corpus, then classify wild-corpus
	// doxes and benign pastes it has never seen.
	g := textgen.New(sim.NewWorld(sim.Default(7, 0.01)))
	r := rand.New(rand.NewSource(2))
	var docs []string
	var labels []bool
	for _, ex := range g.TrainingSet() {
		docs = append(docs, ex.Body)
		labels = append(labels, ex.IsDox)
	}
	clf, err := Train(r, docs, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hit, miss := 0, 0
	for _, v := range g.World().Victims[:40] {
		d := g.Dox(r, v)
		if clf.IsDox(d.Body) {
			hit++
		} else {
			miss++
		}
	}
	if float64(hit)/float64(hit+miss) < 0.75 {
		t.Errorf("wild dox recall %d/%d too low", hit, hit+miss)
	}
	fp := 0
	for i := 0; i < 200; i++ {
		_, body := g.BenignPaste(r)
		if clf.IsDox(body) {
			fp++
		}
	}
	if float64(fp)/200 > 0.05 {
		t.Errorf("benign false-positive rate %d/200 too high", fp)
	}
}

func TestTrainErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	if _, err := Train(r, nil, nil, Options{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train(r, []string{"a"}, []bool{true, false}, Options{}); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, _, err := TrainEval(r, []Example{{Body: "x"}}, Options{}); err == nil {
		t.Error("tiny eval set accepted")
	}
}

func TestScoreMonotoneWithThreshold(t *testing.T) {
	exs := paperExamples(t)[:800]
	r := rand.New(rand.NewSource(4))
	var docs []string
	var labels []bool
	for _, ex := range exs {
		docs = append(docs, ex.Body)
		labels = append(labels, ex.IsDox)
	}
	strict, err := Train(rand.New(rand.NewSource(5)), docs, labels, Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Train(rand.New(rand.NewSource(5)), docs, labels, Options{Threshold: -0.5})
	if err != nil {
		t.Fatal(err)
	}
	strictPos, loosePos := 0, 0
	for _, ex := range exs {
		if strict.IsDox(ex.Body) {
			strictPos++
		}
		if loose.IsDox(ex.Body) {
			loosePos++
		}
	}
	if strictPos > loosePos {
		t.Errorf("stricter threshold flagged more documents (%d > %d)", strictPos, loosePos)
	}
	_ = r
}

func TestSaveLoadRoundTrip(t *testing.T) {
	exs := paperExamples(t)[:1500]
	r := rand.New(rand.NewSource(6))
	var docs []string
	var labels []bool
	for _, ex := range exs {
		docs = append(docs, ex.Body)
		labels = append(labels, ex.IsDox)
	}
	orig, err := Train(r, docs, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.VocabSize() != orig.VocabSize() {
		t.Fatalf("vocab size %d != %d after round trip", loaded.VocabSize(), orig.VocabSize())
	}
	for _, ex := range exs[:200] {
		if orig.IsDox(ex.Body) != loaded.IsDox(ex.Body) {
			t.Fatal("loaded classifier disagrees with original")
		}
		if orig.Score(ex.Body) != loaded.Score(ex.Body) {
			t.Fatal("loaded classifier scores differ")
		}
	}
}

func TestMinTokensFloor(t *testing.T) {
	exs := paperExamples(t)[:1200]
	var docs []string
	var labels []bool
	for _, ex := range exs {
		docs = append(docs, ex.Body)
		labels = append(labels, ex.IsDox)
	}
	clf, err := Train(rand.New(rand.NewSource(7)), docs, labels, Options{Threshold: -5})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold -5 flags everything long enough; short posts still fall
	// below the length floor.
	if clf.IsDox("short post lol") {
		t.Error("short document flagged despite length floor")
	}
	long := strings.Repeat("name address phone email account ", 10)
	if !clf.IsDox(long) {
		t.Error("long document not flagged at threshold -5")
	}
	// Disabling the floor flags the short post too.
	clf2, err := Train(rand.New(rand.NewSource(7)), docs, labels, Options{Threshold: -5, MinTokens: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !clf2.IsDox("short post lol") {
		t.Error("floor-disabled classifier did not flag the short post")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestDeterministicTraining(t *testing.T) {
	exs := paperExamples(t)[:600]
	run := func() *Classifier {
		var docs []string
		var labels []bool
		for _, ex := range exs {
			docs = append(docs, ex.Body)
			labels = append(labels, ex.IsDox)
		}
		clf, err := Train(rand.New(rand.NewSource(9)), docs, labels, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return clf
	}
	a, b := run(), run()
	for _, ex := range exs[:100] {
		if a.Score(ex.Body) != b.Score(ex.Body) {
			t.Fatal("identical seeds produced different classifiers")
		}
	}
}
