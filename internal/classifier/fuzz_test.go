package classifier

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"doxmeter/internal/sgd"
	"doxmeter/internal/tfidf"
)

// fuzzClassifiers trains small classifiers (one per vectorizer config) on a
// fixed corpus; the fuzz target compares the fused kernel against the
// reference path on each.
func fuzzClassifiers(f *testing.F) []*Classifier {
	f.Helper()
	docs := []string{
		"name john smith address 12 main st phone 555 0100 email j@x.com",
		"dropped by anon dox name age city state zip paypal skype",
		"the quick brown fox jumps over the lazy dog",
		"lol nice thread bump pic related",
		"café 東京 résumé naïve wörld user_99 mixed123",
		strings.Repeat("victim info leak account password ", 6),
	}
	labels := []bool{true, true, false, false, false, true}
	var out []*Classifier
	for _, topts := range []tfidf.Options{
		{},
		{Bigrams: true, SublinearTF: true},
	} {
		clf, err := Train(rand.New(rand.NewSource(42)), docs, labels, Options{
			TFIDF: topts,
			SGD:   sgd.Options{Epochs: 5},
		})
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, clf)
	}
	return out
}

// FuzzScorerEquivalence is the differential fuzz target for the fused
// inference kernel: for arbitrary UTF-8 (and invalid-UTF-8) input, the
// fused tokenize→TF-IDF→margin pass must produce a margin bit-identical to
// the reference Decision(Transform(doc)) path, the same token count, and
// the same flagged verdict.
func FuzzScorerEquivalence(f *testing.F) {
	clfs := fuzzClassifiers(f)
	for _, s := range []string{
		"",
		"name address phone",
		"é",  // one multibyte rune: below the 2-rune token floor
		"éé", // length-2 token made of multibyte runes
		"日本 東京 café",
		"Éé ÉÉ éÉ",
		"ſtreet Kelvin K", // runes whose case-fold crosses into ASCII
		"user_99 mixed123 __ 99",
		"\xff\xfe broken \xc3 utf8",
		strings.Repeat("name age city ", 30),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		wantTokens := len(tfidf.Tokenize(doc))
		for ci, clf := range clfs {
			var r Result
			clf.ScoreInto(doc, &r)
			ref := clf.ScoreReference(doc)
			if math.Float64bits(r.Score) != math.Float64bits(ref) {
				t.Fatalf("clf %d doc %q: fused margin %v (bits %x) != reference %v (bits %x)",
					ci, doc, r.Score, math.Float64bits(r.Score), ref, math.Float64bits(ref))
			}
			if r.Tokens != wantTokens {
				t.Fatalf("clf %d doc %q: fused tokens %d != %d", ci, doc, r.Tokens, wantTokens)
			}
			wantDox := ref >= 0 && !(clf.minTokens > 0 && wantTokens < clf.minTokens)
			if r.IsDox != wantDox {
				t.Fatalf("clf %d doc %q: fused verdict %v != reference %v", ci, doc, r.IsDox, wantDox)
			}
		}
	})
}

// TestReferenceKernelOption pins the ReferenceKernel escape hatch: both
// kernels agree bit for bit through the public API, single and batch.
func TestReferenceKernelOption(t *testing.T) {
	exs := paperExamples(t)[:900]
	var docs []string
	var labels []bool
	for _, ex := range exs {
		docs = append(docs, ex.Body)
		labels = append(labels, ex.IsDox)
	}
	fused, err := Train(rand.New(rand.NewSource(11)), docs, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Train(rand.New(rand.NewSource(11)), docs, labels, Options{ReferenceKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.reference || fused.reference {
		t.Fatal("ReferenceKernel option not wired through Train")
	}
	probe := docs[:300]
	fusedRes := make([]Result, len(probe))
	refRes := make([]Result, len(probe))
	fused.ScoreBatchInto(probe, fusedRes, 4)
	ref.ScoreBatchInto(probe, refRes, 4)
	for i := range probe {
		if math.Float64bits(fusedRes[i].Score) != math.Float64bits(refRes[i].Score) ||
			fusedRes[i].Tokens != refRes[i].Tokens ||
			fusedRes[i].IsDox != refRes[i].IsDox {
			t.Fatalf("doc %d: fused %+v != reference %+v", i, fusedRes[i], refRes[i])
		}
	}
}

// TestScoreBatchIntoShortOut guards the out-slice length contract.
func TestScoreBatchIntoShortOut(t *testing.T) {
	exs := paperExamples(t)[:600]
	var docs []string
	var labels []bool
	for _, ex := range exs {
		docs = append(docs, ex.Body)
		labels = append(labels, ex.IsDox)
	}
	clf, err := Train(rand.New(rand.NewSource(12)), docs, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short out slice accepted")
		}
	}()
	clf.ScoreBatchInto([]string{"a", "b"}, make([]Result, 1), 1)
}
