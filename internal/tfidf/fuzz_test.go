package tfidf

import (
	"math"
	"testing"
)

// FuzzTransform checks vectorizer invariants on arbitrary input: no panic,
// sorted indices, unit (or zero) norm — and that the fused Scorer.Vector
// path (what TransformAll/FitTransform use) is bit-identical to the
// map-based reference Transform.
func FuzzTransform(f *testing.F) {
	vz := NewVectorizer(Options{})
	vz.Fit([]string{
		"the quick brown fox", "jumps over the lazy dog",
		"name address phone email", "pack my box with five dozen jugs",
	})
	sc := vz.NewScorer()
	for _, s := range []string{"", "the fox", "unknown terms only", "name name name"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v := vz.Transform(s)
		for i := 1; i < len(v); i++ {
			if v[i].Index <= v[i-1].Index {
				t.Fatal("indices not strictly increasing")
			}
		}
		if n := v.Norm(); len(v) > 0 && math.Abs(n-1) > 1e-9 {
			t.Fatalf("norm = %f", n)
		}
		fused := sc.Vector(s)
		if len(fused) != len(v) {
			t.Fatalf("fused vector has %d features, reference %d", len(fused), len(v))
		}
		for i := range v {
			if fused[i].Index != v[i].Index ||
				math.Float64bits(fused[i].Value) != math.Float64bits(v[i].Value) {
				t.Fatalf("fused[%d] = %+v, reference %+v", i, fused[i], v[i])
			}
		}
	})
}
