package tfidf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// refDot mirrors sgd.rawMargin: ascending-index accumulation over a sparse
// vector against a dense weight slice, skipping out-of-range indices.
func refDot(v Vector, weights []float64) float64 {
	var sum float64
	for _, f := range v {
		if f.Index < len(weights) {
			sum += weights[f.Index] * f.Value
		}
	}
	return sum
}

// scorerFixture fits a vectorizer over a corpus that exercises repeats,
// unicode, digits and underscores, plus a deterministic weight vector.
func scorerFixture(opts Options) (*Vectorizer, []float64) {
	vz := NewVectorizer(opts)
	vz.Fit([]string{
		"the quick brown fox jumps over the lazy dog",
		"name address phone email email email",
		"café 東京 héllo wörld naïve résumé",
		"user_99 snake_case user_99 mixed123 mixed123 mixed123",
		"dox drop name age city state zip paypal skype",
	})
	weights := make([]float64, vz.VocabSize())
	for i := range weights {
		weights[i] = math.Sin(float64(i)*1.7) * 0.3
	}
	return vz, weights
}

var scorerDocs = []string{
	"",
	"the quick brown fox",
	"unknown terms only here",
	"name: John Smith, age: 44, email a@b.com",
	"NAME NAME name the the THE fox",
	"é",      // single multibyte rune: not a token
	"日本 東京", // multibyte tokens
	"Éé café CAFÉ",
	"a b c d ee",
	"user_99 и кириллица mixed123",
	"\xff\xfe broken utf8 the fox \xc3",
	strings.Repeat("phone email name dox ", 50),
	"ſ Kelvin K the fox", // case-fold oddballs
}

// TestScorerMatchesTransform is the kernel's equivalence bar at the tfidf
// layer: DotNormalized must be bit-identical to dotting the reference
// Transform output, and the token count must equal len(Tokenize), for every
// vectorizer option combination.
func TestScorerMatchesTransform(t *testing.T) {
	for _, opts := range []Options{
		{},
		{SublinearTF: true},
		{Bigrams: true},
		{SublinearTF: true, Bigrams: true},
		{MinDF: 2},
	} {
		vz, weights := scorerFixture(opts)
		s := vz.NewScorer()
		for _, doc := range scorerDocs {
			want := refDot(vz.Transform(doc), weights)
			got, tokens := s.DotNormalized(doc, weights)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("opts %+v doc %q: fused dot %v (bits %x) != reference %v (bits %x)",
					opts, doc, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			if wantTok := len(Tokenize(doc)); tokens != wantTok {
				t.Errorf("opts %+v doc %q: tokens %d != len(Tokenize) %d", opts, doc, tokens, wantTok)
			}
		}
	}
}

// TestScorerReuse runs the same scorer over many documents in sequence and
// interleaves repeats, proving the touch-list reset leaves no residue.
func TestScorerReuse(t *testing.T) {
	vz, weights := scorerFixture(Options{Bigrams: true})
	s := vz.NewScorer()
	for round := 0; round < 3; round++ {
		for _, doc := range scorerDocs {
			want := refDot(vz.Transform(doc), weights)
			got, _ := s.DotNormalized(doc, weights)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("round %d doc %q: scorer state leaked across calls", round, doc)
			}
		}
	}
}

// TestScorerShortWeights covers the rawMargin guard: vocabulary indices at
// or beyond len(weights) contribute to the norm but not the dot.
func TestScorerShortWeights(t *testing.T) {
	vz, weights := scorerFixture(Options{})
	short := weights[:vz.VocabSize()/2]
	s := vz.NewScorer()
	for _, doc := range scorerDocs {
		want := refDot(vz.Transform(doc), short)
		got, _ := s.DotNormalized(doc, short)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("doc %q: short-weights dot diverged", doc)
		}
	}
}

func TestScorerTokenCount(t *testing.T) {
	vz, _ := scorerFixture(Options{})
	s := vz.NewScorer()
	for _, doc := range scorerDocs {
		if got, want := s.TokenCount(doc), len(Tokenize(doc)); got != want {
			t.Errorf("TokenCount(%q) = %d, want %d", doc, got, want)
		}
	}
}

// TestScorerEquivalenceProperty drives random strings through both paths.
func TestScorerEquivalenceProperty(t *testing.T) {
	vz, weights := scorerFixture(Options{Bigrams: true})
	s := vz.NewScorer()
	f := func(x string) bool {
		want := refDot(vz.Transform(x), weights)
		got, tokens := s.DotNormalized(x, weights)
		return math.Float64bits(got) == math.Float64bits(want) && tokens == len(Tokenize(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestScorerZeroAlloc pins the headline property: the fused pass allocates
// nothing at steady state.
func TestScorerZeroAlloc(t *testing.T) {
	vz, weights := scorerFixture(Options{})
	s := vz.NewScorer()
	doc := strings.Repeat("name address phone email dox city state ", 20)
	s.DotNormalized(doc, weights) // warm the scratch buffers
	if avg := testing.AllocsPerRun(100, func() {
		s.DotNormalized(doc, weights)
	}); avg != 0 {
		t.Errorf("DotNormalized allocates %.1f per op at steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		s.TokenCount(doc)
	}); avg != 0 {
		t.Errorf("TokenCount allocates %.1f per op at steady state, want 0", avg)
	}
}

// TestSnapshotAliasing is the regression test for the Snapshot aliasing
// bug: mutating a snapshot (or the inputs handed to Restore) must not
// perturb the fitted vectorizer.
func TestSnapshotAliasing(t *testing.T) {
	vz := NewVectorizer(Options{})
	vz.Fit([]string{"alpha beta gamma", "beta gamma delta", "alpha delta"})
	doc := "alpha beta beta gamma"
	before := vz.Transform(doc)

	vocab, idf, nDocs, opts := vz.Snapshot()
	for t2 := range vocab {
		vocab[t2] = 9999
	}
	vocab["injected"] = 0
	for i := range idf {
		idf[i] = -1
	}
	after := vz.Transform(doc)
	if len(before) != len(after) {
		t.Fatalf("snapshot mutation changed Transform: %v vs %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("snapshot mutation leaked into vectorizer: %v vs %v", before, after)
		}
	}

	// Restore must also defend against later mutation of its inputs.
	vocab2, idf2, _, _ := vz.Snapshot()
	restored := Restore(vocab2, idf2, nDocs, opts)
	want := restored.Transform(doc)
	for t2 := range vocab2 {
		vocab2[t2] = 0
	}
	for i := range idf2 {
		idf2[i] = 0
	}
	got := restored.Transform(doc)
	if len(got) != len(want) {
		t.Fatalf("Restore aliased its inputs: %v vs %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Restore aliased its inputs: %v vs %v", got, want)
		}
	}
}
