// Package tfidf implements a TF-IDF text vectorizer equivalent to
// scikit-learn's TfidfVectorizer with default parameters, which is exactly
// what the paper's dox classifier uses (§3.1.2: "transformed each labeled
// training example into a TF-IDF vector (using the system's TfidfVectorizer
// class)" with defaults, no stop-word removal).
//
// Matching sklearn 0.17 defaults:
//   - token pattern (?u)\b\w\w+\b — word characters, length >= 2
//   - lowercase = true
//   - smooth_idf = true: idf(t) = ln((1+n)/(1+df(t))) + 1
//   - sublinear_tf = false: raw term counts
//   - norm = 'l2': vectors are L2-normalized
//
// Vectors are sparse: documents average a few hundred distinct terms against
// vocabularies of tens of thousands.
package tfidf

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Feature is one nonzero vector component.
type Feature struct {
	Index int
	Value float64
}

// Vector is a sparse document vector, sorted by Index.
type Vector []Feature

// Dot computes the inner product of two sparse vectors.
func (v Vector) Dot(o Vector) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(v) && j < len(o) {
		switch {
		case v[i].Index == o[j].Index:
			sum += v[i].Value * o[j].Value
			i++
			j++
		case v[i].Index < o[j].Index:
			i++
		default:
			j++
		}
	}
	return sum
}

// Norm returns the L2 norm.
func (v Vector) Norm() float64 {
	var sum float64
	for _, f := range v {
		sum += f.Value * f.Value
	}
	return math.Sqrt(sum)
}

// Tokenize splits text per the sklearn default token pattern: maximal runs
// of Unicode word characters (letters, digits, underscore) of length >= 2,
// lowercased. Length is measured in runes, matching sklearn's \w\w+ which
// requires two *characters* — a single multibyte rune ("é", one CJK
// character) is not a token even though it spans several bytes. Exported so
// the extractor's statistical scorer can share the exact tokenization.
func Tokenize(text string) []string {
	out := make([]string, 0, len(text)/6)
	start, runes := -1, 0
	flush := func(end int, src string) {
		if start >= 0 && runes >= 2 {
			out = append(out, strings.ToLower(src[start:end]))
		}
		start, runes = -1, 0
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			if start < 0 {
				start = i
			}
			runes++
		} else {
			flush(i, text)
		}
	}
	flush(len(text), text)
	return out
}

// Options configures the vectorizer. The zero value gives sklearn defaults.
type Options struct {
	// SublinearTF replaces raw term counts with 1+ln(tf); an ablation knob
	// (sklearn sublinear_tf).
	SublinearTF bool
	// Bigrams adds adjacent-token bigrams to the vocabulary (sklearn
	// ngram_range=(1,2)); an ablation knob.
	Bigrams bool
	// MinDF drops terms appearing in fewer than MinDF documents (default
	// 1, i.e. keep everything).
	MinDF int
}

// Vectorizer maps documents to TF-IDF vectors. Fit it once on a training
// corpus, then Transform any document. A Vectorizer is immutable after Fit
// and safe for concurrent Transform calls.
type Vectorizer struct {
	opts  Options
	vocab map[string]int
	idf   []float64
	nDocs int
}

// NewVectorizer returns an unfitted vectorizer.
func NewVectorizer(opts Options) *Vectorizer {
	if opts.MinDF < 1 {
		opts.MinDF = 1
	}
	return &Vectorizer{opts: opts}
}

// VocabSize returns the fitted vocabulary size.
func (vz *Vectorizer) VocabSize() int { return len(vz.vocab) }

// NumDocs returns the size of the fitting corpus.
func (vz *Vectorizer) NumDocs() int { return vz.nDocs }

func (vz *Vectorizer) terms(text string) []string {
	toks := Tokenize(text)
	if !vz.opts.Bigrams {
		return toks
	}
	out := make([]string, 0, 2*len(toks))
	out = append(out, toks...)
	for i := 0; i+1 < len(toks); i++ {
		out = append(out, toks[i]+" "+toks[i+1])
	}
	return out
}

// Fit learns the vocabulary and IDF weights from the corpus. The pass runs
// through the byte-level scanner shared with the fused scorer, so no
// per-token []string or ToLower copies are materialized: the only string
// allocations are the one canonical key per distinct term. Document
// frequency is tracked with a last-seen document index instead of a
// per-document seen set, which counts each term at most once per document
// exactly as the reference two-map formulation did.
func (vz *Vectorizer) Fit(docs []string) {
	// df is per-term document frequency, last the last-seen document index
	// (int32: corpora are far below 2^31 documents). Stats live in one
	// 8-byte-entry slab indexed through the map, so a first-seen term costs
	// its canonical string plus amortized slab growth rather than a separate
	// heap node per term.
	type dfStat struct{ df, last int32 }
	idx := make(map[string]int32)
	slab := make([]dfStat, 0, 1024)
	tok := make([]byte, 0, 64)
	var prev, bigram []byte
	for di, d := range docs {
		di32 := int32(di)
		prev = prev[:0]
		note := func(key []byte) {
			if i, ok := idx[string(key)]; ok {
				if e := &slab[i]; e.last != di32 {
					e.last = di32
					e.df++
				}
				return
			}
			idx[string(key)] = int32(len(slab))
			slab = append(slab, dfStat{df: 1, last: di32})
		}
		tok = eachToken(d, tok, func(t []byte) {
			note(t)
			if vz.opts.Bigrams {
				if len(prev) > 0 {
					bigram = append(append(append(bigram[:0], prev...), ' '), t...)
					note(bigram)
				}
				prev = append(prev[:0], t...)
			}
		})
	}
	terms := make([]string, 0, len(idx))
	for t, i := range idx {
		if int(slab[i].df) >= vz.opts.MinDF {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms) // deterministic index assignment
	vz.vocab = make(map[string]int, len(terms))
	vz.idf = make([]float64, len(terms))
	vz.nDocs = len(docs)
	for i, t := range terms {
		vz.vocab[t] = i
		// Smoothed IDF, sklearn formula.
		vz.idf[i] = math.Log(float64(1+vz.nDocs)/float64(1+slab[idx[t]].df)) + 1
	}
}

// Transform converts one document to a normalized TF-IDF vector. Terms not
// in the fitted vocabulary are ignored.
func (vz *Vectorizer) Transform(doc string) Vector {
	counts := make(map[int]float64)
	for _, t := range vz.terms(doc) {
		if idx, ok := vz.vocab[t]; ok {
			counts[idx]++
		}
	}
	vec := make(Vector, 0, len(counts))
	for idx, tf := range counts {
		if vz.opts.SublinearTF {
			tf = 1 + math.Log(tf)
		}
		vec = append(vec, Feature{Index: idx, Value: tf * vz.idf[idx]})
	}
	sort.Slice(vec, func(i, j int) bool { return vec[i].Index < vec[j].Index })
	// L2 normalize.
	if n := vec.Norm(); n > 0 {
		for i := range vec {
			vec[i].Value /= n
		}
	}
	return vec
}

// TransformAll vectorizes a batch. One fused scratch (see Scorer.Vector,
// bit-identical to Transform) is reused across the whole batch, so the
// per-document cost is the retained Vector plus nothing.
func (vz *Vectorizer) TransformAll(docs []string) []Vector {
	out := make([]Vector, len(docs))
	s := vz.NewScorer()
	for i, d := range docs {
		out[i] = s.Vector(d)
	}
	return out
}

// FitTransform fits on docs and returns their vectors.
func (vz *Vectorizer) FitTransform(docs []string) []Vector {
	vz.Fit(docs)
	return vz.TransformAll(docs)
}

// Snapshot exports the fitted state for persistence. The returned map and
// slice are deep copies: a Vectorizer is immutable after Fit, and handing
// out the live vocab/idf would let a caller's mutation corrupt every
// concurrent Transform.
func (vz *Vectorizer) Snapshot() (vocab map[string]int, idf []float64, nDocs int, opts Options) {
	vocab = make(map[string]int, len(vz.vocab))
	for t, i := range vz.vocab {
		vocab[t] = i
	}
	idf = make([]float64, len(vz.idf))
	copy(idf, vz.idf)
	return vocab, idf, vz.nDocs, vz.opts
}

// Restore rebuilds a fitted vectorizer from a Snapshot. It copies its
// inputs for the same immutability reason Snapshot does.
func Restore(vocab map[string]int, idf []float64, nDocs int, opts Options) *Vectorizer {
	v := make(map[string]int, len(vocab))
	for t, i := range vocab {
		v[t] = i
	}
	f := make([]float64, len(idf))
	copy(f, idf)
	return &Vectorizer{opts: opts, vocab: v, idf: f, nDocs: nDocs}
}
