// Fused zero-allocation inference kernel. A Scorer runs the whole
// per-document funnel — tokenize → TF accumulation → IDF weighting → L2
// normalization → dense weight-vector dot product — in a single pass over
// the input bytes, without materializing per-token strings, a term-count
// map, or a sparse Vector. It is the hot path behind classifier.ScoreInto;
// the Transform/Decision pair stays as the reference implementation, and
// the two are bit-identical as float64 (enforced by unit, property, fuzz
// and whole-study equivalence tests).
//
// Equivalence contract, operation by operation:
//
//   - Tokens are maximal runs of Unicode word characters with rune length
//     >= 2, lowercased rune-wise — exactly Tokenize's semantics, including
//     the multibyte rune-vs-byte length rule. The ASCII fast path lowers
//     bytes in place; the rune fallback applies unicode.ToLower, which is
//     what strings.ToLower does per rune.
//   - Term frequencies accumulate in a dense scratch array indexed by
//     vocabulary position, with a touched-index list replacing the
//     map[int]float64; counts are order-independent, so totals match.
//   - The touched list is sorted ascending before any float math, so the
//     norm and dot accumulate in exactly the index order the reference
//     path uses after its sort.Slice.
//   - Every float64 expression mirrors the reference: value = tf*idf
//     (or (1+ln tf)*idf), normSq += value*value, norm = Sqrt(normSq),
//     contribution = weights[idx] * (value/norm). Same operands, same
//     order, same rounding.
//
// A Scorer owns reusable scratch and is NOT safe for concurrent use; hand
// one to each worker (classifier.Classifier keeps a sync.Pool).
package tfidf

import (
	"math"
	"slices"
	"unicode"
	"unicode/utf8"
)

// asciiWordLower maps an ASCII byte to its lowercased form if it is a word
// character ([0-9A-Za-z_]), else 0.
var asciiWordLower [128]byte

func init() {
	for b := byte('0'); b <= '9'; b++ {
		asciiWordLower[b] = b
	}
	for b := byte('a'); b <= 'z'; b++ {
		asciiWordLower[b] = b
	}
	for b := byte('A'); b <= 'Z'; b++ {
		asciiWordLower[b] = b + ('a' - 'A')
	}
	asciiWordLower['_'] = '_'
}

// Scorer is a reusable fused-inference kernel bound to a fitted
// Vectorizer. Create one per worker with NewScorer.
type Scorer struct {
	vz *Vectorizer

	tf      []float64 // dense term frequencies, indexed by vocab position
	touched []int     // vocab indices with tf > 0, reset by walking this list
	tok     []byte    // current token, lowercased, reused across tokens
	prev    []byte    // previous emitted token (bigram mode)
	bigram  []byte    // bigram key scratch ("prev cur")
	tokens  int       // unigram tokens seen by the last scan
}

// NewScorer returns a fused-inference kernel over the fitted vocabulary.
// The scorer holds a dense float64 scratch of VocabSize entries; share the
// Vectorizer, not the Scorer, across goroutines.
func (vz *Vectorizer) NewScorer() *Scorer {
	return &Scorer{
		vz:      vz,
		tf:      make([]float64, len(vz.idf)),
		touched: make([]int, 0, 256),
		tok:     make([]byte, 0, 64),
		prev:    make([]byte, 0, 64),
		bigram:  make([]byte, 0, 128),
	}
}

// reset clears the dense scratch by walking the touched list, so cost is
// proportional to the previous document, not the vocabulary.
func (s *Scorer) reset() {
	if len(s.tf) != len(s.vz.idf) {
		// The vectorizer was fitted after this scorer was built (a pooled
		// pre-fit scorer): resize the dense scratch to the live vocabulary.
		s.tf = make([]float64, len(s.vz.idf))
		s.touched = s.touched[:0]
	}
	for _, idx := range s.touched {
		s.tf[idx] = 0
	}
	s.touched = s.touched[:0]
	s.prev = s.prev[:0]
	s.tokens = 0
}

// addTerm folds a token (already lowercased) into the TF scratch, plus the
// adjacent bigram when the vectorizer was fitted with Bigrams. The vocab
// lookups convert the scratch buffer with string(...) directly in the map
// index expression, which the compiler performs without allocating.
func (s *Scorer) addTerm(tok []byte) {
	if idx, ok := s.vz.vocab[string(tok)]; ok {
		if s.tf[idx] == 0 {
			s.touched = append(s.touched, idx)
		}
		s.tf[idx]++
	}
	if s.vz.opts.Bigrams {
		if len(s.prev) > 0 {
			s.bigram = append(s.bigram[:0], s.prev...)
			s.bigram = append(s.bigram, ' ')
			s.bigram = append(s.bigram, tok...)
			if idx, ok := s.vz.vocab[string(s.bigram)]; ok {
				if s.tf[idx] == 0 {
					s.touched = append(s.touched, idx)
				}
				s.tf[idx]++
			}
		}
		s.prev = append(s.prev[:0], tok...)
	}
}

// eachToken is the single-pass byte-level tokenizer shared by the scorer's
// hot path and Fit's vocabulary pass. ASCII word bytes take the table fast
// path; anything else falls back to rune decoding so the \w\w+ rune-length
// semantics match Tokenize exactly, including the multibyte rune-vs-byte
// length rule (invalid UTF-8 decodes to RuneError, which is not a word
// character — the same separator behaviour a range loop gives the reference
// tokenizer). fn receives each token's lowercased bytes in a scratch slice
// valid only for the duration of the call; buf is the reusable scratch,
// returned (possibly grown) for the caller to keep. fn must not retain or
// let its argument escape, or the whole pass allocates.
func eachToken(doc string, buf []byte, fn func(tok []byte)) []byte {
	tokRunes := 0
	tok := buf[:0]
	flush := func() {
		if tokRunes >= 2 {
			fn(tok)
		}
		tokRunes = 0
		tok = tok[:0]
	}
	for i := 0; i < len(doc); {
		if b := doc[i]; b < utf8.RuneSelf {
			if c := asciiWordLower[b]; c != 0 {
				tok = append(tok, c)
				tokRunes++
			} else if tokRunes > 0 {
				flush()
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(doc[i:])
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			tok = utf8.AppendRune(tok, unicode.ToLower(r))
			tokRunes++
		} else if tokRunes > 0 {
			flush()
		}
		i += size
	}
	flush()
	return tok
}

// scan walks doc's tokens. When collect is true each token is folded into
// the TF scratch; either way s.tokens counts the unigram tokens.
func (s *Scorer) scan(doc string, collect bool) {
	s.tok = eachToken(doc, s.tok, func(tok []byte) {
		s.tokens++
		if collect {
			s.addTerm(tok)
		}
	})
}

// TokenCount returns the document's unigram token count — identical to
// len(Tokenize(doc)) — without allocating.
func (s *Scorer) TokenCount(doc string) int {
	s.reset()
	s.scan(doc, false)
	return s.tokens
}

// DotNormalized computes the inner product of the document's L2-normalized
// TF-IDF vector with the dense weight vector, plus the document's unigram
// token count, in one fused pass and with zero steady-state allocations.
// The result is bit-identical to weightsDot(vz.Transform(doc)): same token
// set, same accumulation order, same float64 operations.
func (s *Scorer) DotNormalized(doc string, weights []float64) (dot float64, tokens int) {
	s.reset()
	s.scan(doc, true)
	slices.Sort(s.touched)
	var normSq float64
	for _, idx := range s.touched {
		v := s.value(idx)
		normSq += v * v
	}
	// Mirror the reference exactly: Transform normalizes only when the
	// norm is positive (an empty vector keeps norm 0 and dot 0).
	norm := math.Sqrt(normSq)
	for _, idx := range s.touched {
		v := s.value(idx)
		if norm > 0 {
			v /= norm
		}
		if idx < len(weights) {
			dot += weights[idx] * v
		}
	}
	return dot, s.tokens
}

// Vector materializes the document's normalized TF-IDF vector through the
// fused scratch. The result is bit-identical to vz.Transform(doc): same
// token set, same per-feature value expression, and the norm accumulates in
// ascending index order exactly as the reference does after its sort. Only
// the returned Vector allocates.
func (s *Scorer) Vector(doc string) Vector {
	s.reset()
	s.scan(doc, true)
	slices.Sort(s.touched)
	vec := make(Vector, 0, len(s.touched))
	for _, idx := range s.touched {
		vec = append(vec, Feature{Index: idx, Value: s.value(idx)})
	}
	if n := vec.Norm(); n > 0 {
		for i := range vec {
			vec[i].Value /= n
		}
	}
	return vec
}

// value reproduces Transform's per-feature weight for a touched index.
func (s *Scorer) value(idx int) float64 {
	tf := s.tf[idx]
	if s.vz.opts.SublinearTF {
		tf = 1 + math.Log(tf)
	}
	return tf * s.vz.idf[idx]
}
