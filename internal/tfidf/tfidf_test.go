package tfidf

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello World", []string{"hello", "world"}},
		{"a bb ccc", []string{"bb", "ccc"}}, // single chars dropped
		{"Name: John.Smith_99", []string{"name", "john", "smith_99"}},
		{"", nil},
		{"!!!", nil},
		{"IP 60.1.2.3", []string{"ip", "60"}},
		{"foo\nbar\tbaz", []string{"foo", "bar", "baz"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("héllo wörld 日本語")
	if len(got) != 3 {
		t.Fatalf("unicode tokenization = %v", got)
	}
}

// TestTokenizeRuneLength is the regression test for the byte-vs-rune length
// bug: sklearn's \w\w+ requires at least two characters, so one multibyte
// rune (2+ bytes) must not become a token.
func TestTokenizeRuneLength(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"é", nil},            // 2 bytes, 1 rune: not a token
		{"日", nil},            // 3 bytes, 1 rune: not a token
		{"éé", []string{"éé"}},
		{"日本", []string{"日本"}},
		{"é a 日 b", nil},      // all single-rune/char fragments dropped
		{"café 東京 x", []string{"café", "東京"}},
		{"É", nil},            // uppercase single rune, still dropped
		{"Éé", []string{"éé"}}, // lowercased multibyte token
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVectorDot(t *testing.T) {
	a := Vector{{0, 1}, {2, 2}, {5, 3}}
	b := Vector{{1, 10}, {2, 4}, {5, 1}}
	if got := a.Dot(b); got != 11 {
		t.Errorf("Dot = %f, want 11", got)
	}
	if got := a.Dot(Vector{}); got != 0 {
		t.Errorf("Dot with empty = %f", got)
	}
	if a.Dot(b) != b.Dot(a) {
		t.Error("Dot not symmetric")
	}
}

func TestFitTransformBasics(t *testing.T) {
	docs := []string{
		"the cat sat on the mat",
		"the dog sat on the log",
		"cats and dogs living together",
	}
	vz := NewVectorizer(Options{})
	vecs := vz.FitTransform(docs)
	if vz.VocabSize() == 0 {
		t.Fatal("empty vocabulary")
	}
	if vz.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", vz.NumDocs())
	}
	for i, v := range vecs {
		if len(v) == 0 {
			t.Fatalf("doc %d has empty vector", i)
		}
		if math.Abs(v.Norm()-1) > 1e-9 {
			t.Fatalf("doc %d norm = %f, want 1 (L2 normalized)", i, v.Norm())
		}
		for j := 1; j < len(v); j++ {
			if v[j].Index <= v[j-1].Index {
				t.Fatal("vector indices not strictly increasing")
			}
		}
	}
}

func TestIDFWeighting(t *testing.T) {
	// "common" appears in every doc, "rare" in one; rare must out-weigh
	// common in the doc containing both once each.
	docs := []string{
		"common rare", "common filler1", "common filler2", "common filler3",
	}
	vz := NewVectorizer(Options{})
	vecs := vz.FitTransform(docs)
	v := vecs[0]
	var commonW, rareW float64
	commonIdx := vz.vocab["common"]
	rareIdx := vz.vocab["rare"]
	for _, f := range v {
		if f.Index == commonIdx {
			commonW = f.Value
		}
		if f.Index == rareIdx {
			rareW = f.Value
		}
	}
	if rareW <= commonW {
		t.Errorf("rare weight %f <= common weight %f", rareW, commonW)
	}
}

func TestSmoothedIDFFormula(t *testing.T) {
	docs := []string{"aa bb", "aa cc", "aa dd", "bb cc"}
	vz := NewVectorizer(Options{})
	vz.Fit(docs)
	// df(aa)=3, n=4 => idf = ln(5/4)+1
	want := math.Log(5.0/4.0) + 1
	if got := vz.idf[vz.vocab["aa"]]; math.Abs(got-want) > 1e-12 {
		t.Errorf("idf(aa) = %f, want %f", got, want)
	}
	// df(dd)=1 => ln(5/2)+1
	want = math.Log(5.0/2.0) + 1
	if got := vz.idf[vz.vocab["dd"]]; math.Abs(got-want) > 1e-12 {
		t.Errorf("idf(dd) = %f, want %f", got, want)
	}
}

func TestTransformUnknownTerms(t *testing.T) {
	vz := NewVectorizer(Options{})
	vz.Fit([]string{"alpha beta", "beta gamma"})
	v := vz.Transform("delta epsilon zeta")
	if len(v) != 0 {
		t.Errorf("all-unknown doc should vectorize empty, got %v", v)
	}
	v = vz.Transform("alpha delta")
	if len(v) != 1 {
		t.Errorf("expected exactly the known term, got %v", v)
	}
}

func TestBigramsOption(t *testing.T) {
	docs := []string{"new york city", "york new pizza"}
	uni := NewVectorizer(Options{})
	uni.Fit(docs)
	bi := NewVectorizer(Options{Bigrams: true})
	bi.Fit(docs)
	if bi.VocabSize() <= uni.VocabSize() {
		t.Errorf("bigram vocab %d should exceed unigram %d", bi.VocabSize(), uni.VocabSize())
	}
	if _, ok := bi.vocab["new york"]; !ok {
		t.Error("bigram 'new york' missing from vocabulary")
	}
	if _, ok := uni.vocab["new york"]; ok {
		t.Error("unigram vectorizer learned a bigram")
	}
}

func TestSublinearTF(t *testing.T) {
	docs := []string{"word word word word other", "other thing"}
	raw := NewVectorizer(Options{})
	rawVecs := raw.FitTransform(docs)
	sub := NewVectorizer(Options{SublinearTF: true})
	subVecs := sub.FitTransform(docs)
	// With sublinear TF the repeated word's relative dominance shrinks.
	ratio := func(v Vector, vz *Vectorizer) float64 {
		var w, o float64
		for _, f := range v {
			if f.Index == vz.vocab["word"] {
				w = f.Value
			}
			if f.Index == vz.vocab["other"] {
				o = f.Value
			}
		}
		return w / o
	}
	if ratio(subVecs[0], sub) >= ratio(rawVecs[0], raw) {
		t.Error("sublinear TF did not damp repeated-term weight")
	}
}

func TestMinDF(t *testing.T) {
	docs := []string{"keep drop1", "keep drop2", "keep drop3"}
	vz := NewVectorizer(Options{MinDF: 2})
	vz.Fit(docs)
	if _, ok := vz.vocab["keep"]; !ok {
		t.Error("term above MinDF was dropped")
	}
	if _, ok := vz.vocab["drop1"]; ok {
		t.Error("term below MinDF was kept")
	}
}

func TestDeterministicIndexing(t *testing.T) {
	docs := []string{"zebra apple mango", "apple banana"}
	a := NewVectorizer(Options{})
	a.Fit(docs)
	b := NewVectorizer(Options{})
	b.Fit(docs)
	if !reflect.DeepEqual(a.vocab, b.vocab) {
		t.Error("vocabulary indexing not deterministic")
	}
	// Sorted assignment: apple < banana < mango < zebra.
	if a.vocab["apple"] != 0 || a.vocab["zebra"] != 3 {
		t.Errorf("vocab not sorted: %v", a.vocab)
	}
}

func TestDotOrderInvariantProperty(t *testing.T) {
	vz := NewVectorizer(Options{})
	vz.Fit([]string{"aa bb cc dd ee ff gg hh", "bb dd ff hh", "aa cc ee gg"})
	f := func(x, y string) bool {
		a, b := vz.Transform(x), vz.Transform(y)
		return math.Abs(a.Dot(b)-b.Dot(a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedProperty(t *testing.T) {
	vz := NewVectorizer(Options{})
	vz.Fit([]string{"alpha beta gamma delta", "beta gamma", "alpha delta epsilon"})
	f := func(s string) bool {
		v := vz.Transform(s + " alpha") // guarantee at least one known term
		n := v.Norm()
		return len(v) == 0 || math.Abs(n-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
