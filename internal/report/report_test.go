package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1: Classifier", "Label", "Precision", "Recall")
	tb.AddRow("Dox", 0.81, 0.89)
	tb.AddRow("Not", 0.99, 0.98)
	tb.AddNote("split: 2/3 train, 1/3 eval")
	out := tb.String()
	for _, want := range []string{"Table 1: Classifier", "Label", "Dox", "Not", "note: split"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Columns align: header row and data rows have the same prefix width
	// before the second column.
	lines := strings.Split(out, "\n")
	hdrIdx := strings.Index(lines[1], "Precision")
	rowIdx := strings.Index(lines[3], "0.8")
	if hdrIdx < 0 || rowIdx < 0 {
		t.Fatalf("layout unexpected:\n%s", out)
	}
}

func TestTableSmallFloats(t *testing.T) {
	tb := NewTable("", "k", "v")
	tb.AddRow("tiny", 0.002)
	if !strings.Contains(tb.String(), "0.002") {
		t.Errorf("small float lost precision:\n%s", tb.String())
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRowF("plain", `has "quotes", and commas`)
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, `"has ""quotes"", and commas"`) {
		t.Errorf("csv escaping wrong: %q", csv)
	}
}

func TestPct(t *testing.T) {
	cases := map[float64]string{
		0:      "0.0",
		0.0005: "<0.1",
		0.128:  "12.8",
		0.9:    "90.0",
	}
	for in, want := range cases {
		if got := Pct(in); got != want {
			t.Errorf("Pct(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestStripSeries(t *testing.T) {
	s := StripSeries{
		Title: "Facebook pre-filter",
		Days: []StripDay{
			{Day: 0, Public: 40, Private: 2, Inactive: 1},
			{Day: 14, Public: 20, Private: 15, Inactive: 8},
		},
	}
	out := s.String()
	for _, want := range []string{"Facebook pre-filter", "day  0", "day 14", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("strip missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "~") || !strings.Contains(out, "x") {
		t.Errorf("strip missing bar glyphs:\n%s", out)
	}
	empty := StripSeries{Days: []StripDay{{Day: 0}}}
	if !strings.Contains(empty.String(), "no accounts") {
		t.Error("empty strip should say so")
	}
}

func TestIsNumericAlignment(t *testing.T) {
	if !isNumeric("12.8") || !isNumeric("-3") || !isNumeric("90.1%") {
		t.Error("numeric cells misdetected")
	}
	if isNumeric("Dox") || isNumeric("") || isNumeric("-") {
		t.Error("text cells misdetected as numeric")
	}
}

func TestUnicodeWidths(t *testing.T) {
	tb := NewTable("", "metric", "value")
	tb.AddRowF("flagged", "0.36±0.06")
	tb.AddRowF("longer-name", "12.3")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// All data lines align: the value column starts at the same rune
	// offset regardless of the ± rune.
	if len(lines) < 4 {
		t.Fatalf("unexpected layout:\n%s", out)
	}
	if !strings.Contains(out, "0.36±0.06") {
		t.Fatalf("value lost:\n%s", out)
	}
	if !isNumeric("0.36±0.06") || !isNumeric("<0.1") {
		t.Error("numeric detection misses ± or < cells")
	}
}
