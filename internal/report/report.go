// Package report renders the study's tables and figures as aligned text,
// CSV, and ASCII strip charts — the output layer for cmd/doxbench and the
// benchmark harness, mirroring the tables and figures in the paper's
// evaluation section.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of rows.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
			if v != 0 && (v < 0.1 && v > -0.1) {
				row[i] = fmt.Sprintf("%.3f", v)
			}
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddRowF appends a row of preformatted cells.
func (t *Table) AddRowF(cells ...string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// AddNote appends a footnote line rendered under the table.
func (t *Table) AddNote(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the aligned table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if w := utf8.RuneCountInString(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			// Right-align numeric-looking cells, left-align text.
			if isNumeric(cell) {
				b.WriteString(pad(cell, widths[i], true))
			} else {
				b.WriteString(pad(cell, widths[i], false))
			}
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := cols - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		b.WriteString("  note: " + n + "\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func pad(s string, w int, right bool) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	fill := strings.Repeat(" ", w-n)
	if right {
		return fill + s
	}
	return s + fill
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	digits := 0
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c == '.' || c == '-' || c == '%' || c == ',' || c == '+' || c == '<' || c == '±':
		default:
			return false
		}
	}
	return digits > 0
}

// Pct formats a fraction as a percentage string.
func Pct(frac float64) string {
	switch {
	case frac == 0:
		return "0.0"
	case frac > 0 && frac < 0.001:
		return "<0.1"
	default:
		return fmt.Sprintf("%.1f", frac*100)
	}
}

// StripSeries renders a Figure 3 style status strip: one row per day, with
// proportional bars of public (#), private (~) and inactive (x) accounts.
type StripSeries struct {
	Title string
	Days  []StripDay
}

// StripDay is one day of counts.
type StripDay struct {
	Day      int
	Public   int
	Private  int
	Inactive int
}

// String renders the strip with a fixed bar width.
func (s StripSeries) String() string {
	const width = 60
	var b strings.Builder
	if s.Title != "" {
		b.WriteString(s.Title + "\n")
	}
	max := 0
	for _, d := range s.Days {
		if t := d.Public + d.Private + d.Inactive; t > max {
			max = t
		}
	}
	if max == 0 {
		b.WriteString("  (no accounts changed status in this window)\n")
		return b.String()
	}
	for _, d := range s.Days {
		total := d.Public + d.Private + d.Inactive
		pw := d.Public * width / max
		prw := d.Private * width / max
		iw := d.Inactive * width / max
		fmt.Fprintf(&b, "  day %2d |%s%s%s| pub=%d priv=%d inact=%d\n",
			d.Day,
			strings.Repeat("#", pw), strings.Repeat("~", prw), strings.Repeat("x", iw),
			d.Public, d.Private, d.Inactive)
		_ = total
	}
	b.WriteString("  legend: # public   ~ private   x inactive/deleted\n")
	return b.String()
}
