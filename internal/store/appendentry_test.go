package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestAppendEntryBytesIdentical pins the pooled-encoder append path to the
// exact on-disk bytes the json.Marshal-per-entry formulation produced:
// one compact JSON object per line, Marshal's HTML escaping, trailing
// newline. Resume parses this log, so the encoding is a compatibility
// surface, not an implementation detail.
func TestAppendEntryBytesIdentical(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := []Entry{
		{Kind: KindDay, Period: 1, Day: 3, VTime: time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
			Collected: 120, Flagged: 7, Doxes: 5, Digest: "ab12"},
		{Kind: KindSnapshot, Seq: 9, VTime: time.Date(2016, 5, 2, 12, 30, 0, 0, time.UTC), Bytes: 4096},
		{Kind: KindDelta, Seq: 10, Base: 9, VTime: time.Date(2016, 5, 3, 0, 0, 0, 0, time.UTC)},
		// Escaping-sensitive content: Marshal HTML-escapes <, > and &.
		{Kind: KindLease, Key: "board/<b>&co", Worker: 2, VTime: time.Date(2016, 5, 4, 0, 0, 0, 0, time.UTC)},
	}
	var want []byte
	for _, e := range entries {
		if err := f.AppendEntry(e); err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, b...)
		want = append(want, '\n')
	}
	got, err := os.ReadFile(filepath.Join(dir, commitLogName))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("commit log bytes diverge from reference encoding:\ngot  %q\nwant %q", got, want)
	}

	// And the log still round-trips through Entries.
	back, err := f.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("Entries returned %d entries, want %d", len(back), len(entries))
	}
	for i := range back {
		if back[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, back[i], entries[i])
		}
	}
}
