package store

import "sync"

// memBlob is one encoded checkpoint image held by Mem.
type memBlob struct {
	seq uint64
	b   []byte
}

// Mem is an in-memory Store. It round-trips snapshots and deltas through
// the same codec as the file backend, so anything that works against Mem
// (tests, examples, the resume suite) exercises the exact encode/decode
// path a production state dir would. Retention mirrors File: the latest
// two full snapshots, plus every delta above the oldest retained full.
type Mem struct {
	mu      sync.Mutex
	snaps   []memBlob // encoded full snapshots, oldest first
	deltas  []memBlob // encoded deltas, oldest first
	entries []Entry
	closed  bool
	codec   Codec
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// SetCompress selects flate body encoding for subsequent writes.
func (m *Mem) SetCompress(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.codec.Compress = on
}

// SaveSnapshot implements Store.
func (m *Mem) SaveSnapshot(snap *Snapshot) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.codec.EncodeSnapshot(snap)
	if err != nil {
		return 0, err
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	m.snaps = append(m.snaps, memBlob{seq: snap.Seq, b: cp})
	// Mirror the file backend's retention: latest two fulls, and only
	// the deltas an anchored chain can still reach.
	if len(m.snaps) > keepSnapshots {
		m.snaps = m.snaps[len(m.snaps)-keepSnapshots:]
	}
	oldestKept := m.snaps[0].seq
	kept := m.deltas[:0]
	for _, d := range m.deltas {
		if d.seq > oldestKept {
			kept = append(kept, d)
		}
	}
	m.deltas = kept
	return len(cp), nil
}

// SaveDelta implements DeltaStore.
func (m *Mem) SaveDelta(d *Delta) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.codec.EncodeDelta(d)
	if err != nil {
		return 0, err
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	m.deltas = append(m.deltas, memBlob{seq: d.Seq, b: cp})
	return len(cp), nil
}

// LoadSnapshot implements Store.
func (m *Mem) LoadSnapshot() (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.snaps) == 0 {
		return nil, ErrNoSnapshot
	}
	return Decode(m.snaps[len(m.snaps)-1].b)
}

// LoadChain implements DeltaStore, with the same chain-walk semantics as
// the file backend: newest decodable full, then contiguous linked deltas
// until the first gap or mislink.
func (m *Mem) LoadChain() (*Snapshot, []*Delta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.snaps) == 0 {
		return nil, nil, ErrNoSnapshot
	}
	bySeq := make(map[uint64][]byte, len(m.deltas))
	for _, d := range m.deltas {
		bySeq[d.seq] = d.b
	}
	snap, err := Decode(m.snaps[len(m.snaps)-1].b)
	if err != nil {
		return nil, nil, err
	}
	var chain []*Delta
	for seq := snap.Seq + 1; ; seq++ {
		b, ok := bySeq[seq]
		if !ok {
			return snap, chain, nil
		}
		d, err := DecodeDelta(b)
		if err != nil {
			return nil, nil, err
		}
		if d.BaseSeq != seq-1 {
			return snap, chain, nil
		}
		chain = append(chain, d)
	}
}

// AppendEntry implements Store.
func (m *Mem) AppendEntry(e Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = append(m.entries, e)
	return nil
}

// Entries implements Store.
func (m *Mem) Entries() ([]Entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Entry, len(m.entries))
	copy(out, m.entries)
	return out, nil
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
