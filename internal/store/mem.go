package store

import "sync"

// Mem is an in-memory Store. It round-trips snapshots through the same
// codec as the file backend, so anything that works against Mem (tests,
// examples, the resume suite) exercises the exact encode/decode path a
// production state dir would.
type Mem struct {
	mu      sync.Mutex
	snaps   [][]byte // encoded snapshots, oldest first
	entries []Entry
	closed  bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// SaveSnapshot implements Store.
func (m *Mem) SaveSnapshot(snap *Snapshot) (int, error) {
	b, err := Encode(snap)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snaps = append(m.snaps, b)
	// Mirror the file backend's retention: latest two only.
	if len(m.snaps) > 2 {
		m.snaps = m.snaps[len(m.snaps)-2:]
	}
	return len(b), nil
}

// LoadSnapshot implements Store.
func (m *Mem) LoadSnapshot() (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.snaps) == 0 {
		return nil, ErrNoSnapshot
	}
	return Decode(m.snaps[len(m.snaps)-1])
}

// AppendEntry implements Store.
func (m *Mem) AppendEntry(e Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = append(m.entries, e)
	return nil
}

// Entries implements Store.
func (m *Mem) Entries() ([]Entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Entry, len(m.entries))
	copy(out, m.entries)
	return out, nil
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
