package store

import (
	"encoding/json"
	"fmt"
)

// Component is one named unit of checkpointable pipeline state: a
// crawler cursor set, the dedup index, the monitor schedule, the core
// funnel, a mitigation service. A study registers every component in a
// Registry once, and the snapshot, restore, and delta-cut paths iterate
// that one table instead of special-casing each layer.
//
// Snapshot and Restore speak JSON payloads verbatim — the Snapshot type
// stores them untouched, so Decode→Encode round-trips byte-identically.
type Component interface {
	// Name is the component's key in Snapshot.Components
	// ("core", "dedup", "crawler/<site>", "service/notify", ...).
	Name() string
	// Snapshot returns the component's full state as JSON.
	Snapshot() (json.RawMessage, error)
	// Restore replaces the component's state from a payload previously
	// produced by Snapshot.
	Restore(raw json.RawMessage) error
	// DeltaJournal returns the component's dirty-tracking journal, or
	// nil if the component does not journal — a nil-journal component
	// travels as a full payload in every delta cut.
	DeltaJournal() Journal
}

// Journal is a component's incremental-checkpoint surface: dirty
// tracking between cuts plus the pure patch-application function used
// when a delta chain is replayed on restore.
type Journal interface {
	// SetJournal turns dirty tracking on or off. With journaling off,
	// Cut reports dirty for any state change since the last cut is
	// undetectable — callers only enable delta mode up front.
	SetJournal(on bool)
	// Cut drains the journal: it returns the patch since the previous
	// cut and whether anything changed. A clean component returns
	// (nil, false, nil) and travels as a reference in the delta.
	Cut() (patch json.RawMessage, dirty bool, err error)
	// Apply applies patch to a full base payload and returns the new
	// full payload. It must be a pure function — chain replay runs it
	// without touching live component state.
	Apply(base, patch json.RawMessage) (json.RawMessage, error)
}

// Registry is the ordered table of a study's components. Registration
// order is iteration order, which fixes the (already deterministic)
// layout of snapshots and delta cuts.
type Registry struct {
	names    []string
	byName   map[string]Component
	optional map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Component{}, optional: map[string]bool{}}
}

// Register adds a required component: restore fails if a snapshot lacks
// its payload. Duplicate names are rejected.
func (r *Registry) Register(c Component) error {
	return r.add(c, false)
}

// RegisterOptional adds a component whose payload may be absent from a
// snapshot (services added after old checkpoints were cut, or the lease
// queue of a sharded run restored as a plain one). Restore skips it
// when the snapshot has no payload under its name.
func (r *Registry) RegisterOptional(c Component) error {
	return r.add(c, true)
}

func (r *Registry) add(c Component, optional bool) error {
	name := c.Name()
	if name == "" {
		return fmt.Errorf("store: component with empty name")
	}
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("store: component %q registered twice", name)
	}
	r.names = append(r.names, name)
	r.byName[name] = c
	r.optional[name] = optional
	return nil
}

// Len returns the number of registered components.
func (r *Registry) Len() int { return len(r.names) }

// Each invokes fn for every component in registration order, stopping
// at the first error.
func (r *Registry) Each(fn func(c Component, optional bool) error) error {
	for _, name := range r.names {
		if err := fn(r.byName[name], r.optional[name]); err != nil {
			return err
		}
	}
	return nil
}

// Lookup returns the component registered under name.
func (r *Registry) Lookup(name string) (Component, bool) {
	c, ok := r.byName[name]
	return c, ok
}
