package store

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

const (
	// DeltaMagic is the first token of every encoded delta.
	DeltaMagic = "doxmeter-delta"
	// DeltaVersion is the delta codec version understood by this build.
	// DecodeDelta rejects any other version with ErrVersionSkew.
	DeltaVersion = 1
)

// Component delta operations. A delta carries one op per component:
// unchanged components are stored as a reference to the base snapshot's
// payload, changed ones as a compact patch, and (for forward
// compatibility) a component may also be replaced wholesale.
const (
	// OpRef marks a component unchanged since the base snapshot: the
	// payload is empty and apply carries the base payload forward.
	OpRef = "ref"
	// OpPatch carries a component-specific patch applied to the base
	// payload by the component's delta Apply.
	OpPatch = "patch"
	// OpFull replaces the component payload wholesale.
	OpFull = "full"
)

// ComponentDelta is one component's entry in a Delta.
type ComponentDelta struct {
	Op      string          `json:"op"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Delta encodes one checkpoint cut as a diff against the previous cut.
// Seq numbers are shared with full snapshots: a delta with Seq n applies
// to the state at cut n-1 (BaseSeq), whether that cut was persisted as a
// full snapshot or as another delta. Meta describes the study position at
// this cut, exactly as a full snapshot's Meta would.
type Delta struct {
	Version    int                       `json:"version"`
	Seq        uint64                    `json:"seq"`
	BaseSeq    uint64                    `json:"base_seq"`
	Meta       Meta                      `json:"meta"`
	Components map[string]ComponentDelta `json:"components"`
}

// Body encodings named in the header line. The absence of an encoding
// token means encodingJSON, which keeps v1 full-snapshot headers valid.
const (
	encodingJSON  = "json"
	encodingFlate = "flate"
)

// parseHeader validates a codec header line ("<magic> v<N>" or
// "<magic> v<N> <encoding>") and returns the body encoding. An unknown
// encoding token maps to ErrVersionSkew: only a newer writer would emit
// one, and falling back to an older file would hide that from the
// operator.
func parseHeader(header, magic string, version int) (string, error) {
	fields := strings.Fields(header)
	if len(fields) < 2 || len(fields) > 3 || fields[0] != magic ||
		len(fields[1]) < 2 || fields[1][0] != 'v' {
		return "", fmt.Errorf("store: bad header %q", header)
	}
	got, err := strconv.Atoi(fields[1][1:])
	if err != nil {
		return "", fmt.Errorf("store: bad header %q", header)
	}
	if got != version {
		return "", fmt.Errorf("%w: file is v%d, this build reads v%d", ErrVersionSkew, got, version)
	}
	enc := encodingJSON
	if len(fields) == 3 {
		enc = fields[2]
	}
	switch enc {
	case encodingJSON, encodingFlate:
		return enc, nil
	default:
		return "", fmt.Errorf("%w: unknown body encoding %q", ErrVersionSkew, enc)
	}
}

// countingWriter tracks bytes written through it, so streaming encoders
// can report the on-disk size without buffering the whole payload.
type countingWriter struct {
	w io.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

// encodeStream writes the header line and the JSON body of v to w,
// optionally through flate. fw, when non-nil, is reused via Reset so
// steady-state compression allocates nothing. Returns bytes written.
func encodeStream(w io.Writer, fw *flate.Writer, magic string, version int, v any, compress bool) (int, error) {
	cw := &countingWriter{w: w}
	header := fmt.Sprintf("%s v%d\n", magic, version)
	if compress {
		header = fmt.Sprintf("%s v%d %s\n", magic, version, encodingFlate)
	}
	if _, err := io.WriteString(cw, header); err != nil {
		return cw.n, err
	}
	body := io.Writer(cw)
	if compress {
		if fw == nil {
			var err error
			fw, err = flate.NewWriter(cw, flate.BestSpeed)
			if err != nil {
				return cw.n, err
			}
		} else {
			fw.Reset(cw)
		}
		body = fw
	}
	if err := json.NewEncoder(body).Encode(v); err != nil {
		return cw.n, err
	}
	if compress {
		if err := fw.Close(); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// decodeStream reads a header line from r, validates it against magic
// and version, and JSON-decodes the body (inflating if the header names
// the flate encoding) into v.
func decodeStream(r io.Reader, magic string, version int, v any) error {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("store: truncated before header end")
	}
	enc, err := parseHeader(strings.TrimSuffix(header, "\n"), magic, version)
	if err != nil {
		return err
	}
	body := io.Reader(br)
	if enc == encodingFlate {
		fr := flate.NewReader(br)
		defer fr.Close()
		body = fr
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		return fmt.Errorf("store: decode body: %w", err)
	}
	return nil
}

// encodeSnapshotStream is EncodeSnapshotTo with a caller-owned flate
// writer for reuse across cuts (nil allocates one per call).
func encodeSnapshotStream(w io.Writer, fw *flate.Writer, snap *Snapshot, compress bool) (int, error) {
	if snap == nil {
		return 0, errors.New("store: cannot encode nil snapshot")
	}
	cp := *snap
	cp.Version = Version
	n, err := encodeStream(w, fw, Magic, Version, &cp, compress)
	if err != nil {
		return n, fmt.Errorf("store: encode snapshot: %w", err)
	}
	return n, nil
}

// EncodeSnapshotTo streams snap to w — header line, then the JSON body,
// optionally flate-compressed — without buffering the whole payload.
// Returns the number of bytes written.
func EncodeSnapshotTo(w io.Writer, snap *Snapshot, compress bool) (int, error) {
	return encodeSnapshotStream(w, nil, snap, compress)
}

// DecodeSnapshotFrom parses a snapshot stream produced by Encode or
// EncodeSnapshotTo, in either body encoding.
func DecodeSnapshotFrom(r io.Reader) (*Snapshot, error) {
	var snap Snapshot
	if err := decodeStream(r, Magic, Version, &snap); err != nil {
		return nil, err
	}
	if snap.Version != Version {
		return nil, fmt.Errorf("%w: snapshot body is v%d, this build reads v%d", ErrVersionSkew, snap.Version, Version)
	}
	return &snap, nil
}

// encodeDeltaStream is EncodeDeltaTo with a caller-owned flate writer
// for reuse across cuts (nil allocates one per call).
func encodeDeltaStream(w io.Writer, fw *flate.Writer, d *Delta, compress bool) (int, error) {
	if d == nil {
		return 0, errors.New("store: cannot encode nil delta")
	}
	cp := *d
	cp.Version = DeltaVersion
	n, err := encodeStream(w, fw, DeltaMagic, DeltaVersion, &cp, compress)
	if err != nil {
		return n, fmt.Errorf("store: encode delta: %w", err)
	}
	return n, nil
}

// EncodeDeltaTo streams d to w: a one-line header (magic, codec version,
// optional body encoding), then the JSON body. Returns bytes written.
func EncodeDeltaTo(w io.Writer, d *Delta, compress bool) (int, error) {
	return encodeDeltaStream(w, nil, d, compress)
}

// EncodeDelta serializes a delta into a fresh byte slice. The write path
// proper streams via EncodeDeltaTo (File) or a reusable Codec (Mem);
// this form exists for tests and tooling.
func EncodeDelta(d *Delta) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := EncodeDeltaTo(&buf, d, false); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeDeltaFrom parses a delta stream produced by EncodeDeltaTo,
// rejecting unknown magic and returning ErrVersionSkew for any codec
// version other than DeltaVersion.
func DecodeDeltaFrom(r io.Reader) (*Delta, error) {
	var d Delta
	if err := decodeStream(r, DeltaMagic, DeltaVersion, &d); err != nil {
		return nil, err
	}
	if d.Version != DeltaVersion {
		return nil, fmt.Errorf("%w: delta body is v%d, this build reads v%d", ErrVersionSkew, d.Version, DeltaVersion)
	}
	for name, cd := range d.Components {
		switch cd.Op {
		case OpRef, OpPatch, OpFull:
		default:
			return nil, fmt.Errorf("store: component %q has unknown delta op %q", name, cd.Op)
		}
	}
	return &d, nil
}

// DecodeDelta parses bytes produced by EncodeDelta/EncodeDeltaTo.
func DecodeDelta(b []byte) (*Delta, error) {
	return DecodeDeltaFrom(bytes.NewReader(b))
}

// Codec encodes snapshots and deltas into a reusable internal buffer,
// amortizing buffer and flate-state allocations across checkpoint cuts.
// The returned slice aliases the internal buffer and is valid only until
// the next Encode* call on the same Codec. Not safe for concurrent use.
type Codec struct {
	// Compress selects flate body encoding for subsequent Encode* calls.
	Compress bool

	buf bytes.Buffer
	fw  *flate.Writer
}

func (c *Codec) encode(magic string, version int, v any) ([]byte, error) {
	c.buf.Reset()
	if c.Compress && c.fw == nil {
		c.fw, _ = flate.NewWriter(io.Discard, flate.BestSpeed)
	}
	var fw *flate.Writer
	if c.Compress {
		fw = c.fw
	}
	if _, err := encodeStream(&c.buf, fw, magic, version, v, c.Compress); err != nil {
		return nil, err
	}
	return c.buf.Bytes(), nil
}

// EncodeSnapshot encodes snap into the codec's buffer.
func (c *Codec) EncodeSnapshot(snap *Snapshot) ([]byte, error) {
	if snap == nil {
		return nil, errors.New("store: cannot encode nil snapshot")
	}
	cp := *snap
	cp.Version = Version
	b, err := c.encode(Magic, Version, &cp)
	if err != nil {
		return nil, fmt.Errorf("store: encode snapshot: %w", err)
	}
	return b, nil
}

// EncodeDelta encodes d into the codec's buffer.
func (c *Codec) EncodeDelta(d *Delta) ([]byte, error) {
	if d == nil {
		return nil, errors.New("store: cannot encode nil delta")
	}
	cp := *d
	cp.Version = DeltaVersion
	b, err := c.encode(DeltaMagic, DeltaVersion, &cp)
	if err != nil {
		return nil, fmt.Errorf("store: encode delta: %w", err)
	}
	return b, nil
}

// DeltaStore is the optional capability a Store may implement to persist
// incremental checkpoints. Both shipped backends (Mem, File) implement
// it; a Store that does not cannot be used with the study's delta
// checkpoint mode.
type DeltaStore interface {
	Store

	// SaveDelta durably stores one delta cut, returning the encoded size
	// in bytes. Deltas are never pruned by this call; retention is
	// anchored to full snapshots (see SaveSnapshot).
	SaveDelta(d *Delta) (int, error)

	// LoadChain returns the newest decodable full snapshot plus the
	// contiguous run of deltas extending it (possibly empty), newest
	// chain first truncated at the first gap, undecodable file, or
	// base-sequence mismatch — a torn chain tip costs at most re-running
	// the days since the last decodable cut. ErrNoSnapshot when the
	// store holds no full snapshot; ErrVersionSkew (terminal) when a
	// snapshot or chain delta was written by a different codec version.
	LoadChain() (*Snapshot, []*Delta, error)
}
