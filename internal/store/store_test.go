package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testSnapshot(seq uint64) *Snapshot {
	return &Snapshot{
		Seq: seq,
		Meta: Meta{
			Seed:        23,
			Scale:       0.004,
			VirtualTime: time.Date(2016, 7, 30, 0, 0, 0, 0, time.UTC),
			Period:      1,
			Day:         10,
		},
		Components: map[string]json.RawMessage{
			"core":  json.RawMessage(`{"collected":120,"doxes":3}`),
			"dedup": json.RawMessage(`{"bodies":{"ab12":"pastebin/x1"}}`),
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	snap := testSnapshot(7)
	b, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != snap.Seq || got.Meta != snap.Meta {
		t.Fatalf("round trip changed snapshot: %+v vs %+v", got, snap)
	}
	// Encode(Decode(b)) must be byte-identical: RawMessage components are
	// preserved verbatim and map keys marshal sorted.
	b2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("re-encode not byte-identical:\n%q\nvs\n%q", b, b2)
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	snap := testSnapshot(1)
	b, _ := Encode(snap)
	skewed := bytes.Replace(b, []byte(" v1\n"), []byte(" v99\n"), 1)
	if _, err := Decode(skewed); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("header skew: got %v, want ErrVersionSkew", err)
	}
	// Body version disagreeing with the header is also skew.
	bodySkew := bytes.Replace(b, []byte(`"version":1`), []byte(`"version":2`), 1)
	if _, err := Decode(bodySkew); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("body skew: got %v, want ErrVersionSkew", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("no newline"), []byte("wrong-magic v1\n{}")} {
		if _, err := Decode(b); err == nil {
			t.Fatalf("Decode(%q) succeeded, want error", b)
		}
	}
}

func TestMemStore(t *testing.T) {
	m := NewMem()
	if _, err := m.LoadSnapshot(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty store: got %v, want ErrNoSnapshot", err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := m.SaveSnapshot(testSnapshot(seq)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 {
		t.Fatalf("latest seq = %d, want 3", got.Seq)
	}
	if err := m.AppendEntry(Entry{Kind: "day", Period: 1, Day: 0}); err != nil {
		t.Fatal(err)
	}
	es, err := m.Entries()
	if err != nil || len(es) != 1 || es[0].Kind != "day" {
		t.Fatalf("entries = %v, %v", es, err)
	}
}

func TestFileStoreRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for seq := uint64(1); seq <= 4; seq++ {
		n, err := f.SaveSnapshot(testSnapshot(seq))
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatalf("snapshot size = %d", n)
		}
	}
	got, err := f.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 4 {
		t.Fatalf("latest seq = %d, want 4", got.Seq)
	}
	seqs, err := f.snapshotSeqs()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != keepSnapshots {
		t.Fatalf("kept %d snapshots (%v), want %d", len(seqs), seqs, keepSnapshots)
	}
}

func TestFileStoreFallsBackPastCorruptLatest(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for seq := uint64(1); seq <= 2; seq++ {
		if _, err := f.SaveSnapshot(testSnapshot(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash that tore the newest snapshot mid-write.
	latest := filepath.Join(dir, snapshotName(2))
	if err := os.WriteFile(latest, []byte(Magic+" v1\n{\"trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := f.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 {
		t.Fatalf("fallback seq = %d, want 1", got.Seq)
	}
}

func TestFileStoreVersionSkewIsTerminal(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.SaveSnapshot(testSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	b, _ := Encode(testSnapshot(2))
	skewed := bytes.Replace(b, []byte(" v1\n"), []byte(" v99\n"), 1)
	if err := os.WriteFile(filepath.Join(dir, snapshotName(2)), skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadSnapshot(); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("got %v, want ErrVersionSkew (no silent fallback across versions)", err)
	}
}

func TestFileStoreCommitLogToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 3; day++ {
		if err := f.AppendEntry(Entry{Kind: "day", Period: 1, Day: day, Digest: "aa"}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	// Tear the final line as a crash mid-append would.
	logPath := filepath.Join(dir, commitLogName)
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(b), "\n"), "\n")
	torn := strings.Join(lines[:len(lines)-1], "") + lines[len(lines)-1][:5]
	if err := os.WriteFile(logPath, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	es, err := f2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 || es[1].Day != 1 {
		t.Fatalf("readable prefix = %v, want the 2 intact entries", es)
	}
	// And the log accepts appends again after reopening.
	if err := f2.AppendEntry(Entry{Kind: "stop", Period: 1, Day: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreEmptyDir(t *testing.T) {
	f, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.LoadSnapshot(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("got %v, want ErrNoSnapshot", err)
	}
	es, err := f.Entries()
	if err != nil || es != nil {
		t.Fatalf("entries on empty dir = %v, %v", es, err)
	}
}
