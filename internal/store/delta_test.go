package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Compile-time capability checks: both shipped backends speak deltas.
var (
	_ DeltaStore = (*Mem)(nil)
	_ DeltaStore = (*File)(nil)
)

func testDelta(seq uint64) *Delta {
	snap := testSnapshot(seq)
	return &Delta{
		Seq:     seq,
		BaseSeq: seq - 1,
		Meta:    snap.Meta,
		Components: map[string]ComponentDelta{
			"core":  {Op: OpPatch, Payload: json.RawMessage(`{"collected":5}`)},
			"dedup": {Op: OpRef},
		},
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	d := testDelta(8)
	b, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != d.Seq || got.BaseSeq != d.BaseSeq || got.Meta != d.Meta {
		t.Fatalf("round trip changed delta: %+v vs %+v", got, d)
	}
	if got.Components["dedup"].Op != OpRef || got.Components["core"].Op != OpPatch {
		t.Fatalf("round trip changed component ops: %+v", got.Components)
	}
	b2, err := EncodeDelta(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("re-encode not byte-identical:\n%q\nvs\n%q", b, b2)
	}
}

func TestDeltaCodecCompressedRoundTrip(t *testing.T) {
	var c Codec
	c.Compress = true
	d := testDelta(8)
	cb, err := c.EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := EncodeDelta(d)
	if bytes.Equal(cb, plain) {
		t.Fatal("compressed encoding identical to plain")
	}
	got, err := DecodeDelta(cb)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encoding the decoded delta uncompressed must match the plain
	// encoding byte for byte: compression is transparent to content.
	b2, _ := EncodeDelta(got)
	if !bytes.Equal(plain, b2) {
		t.Fatalf("compressed round trip changed content:\n%q\nvs\n%q", plain, b2)
	}

	snap := testSnapshot(9)
	csb, err := c.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, err := Decode(csb)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := Encode(snap)
	sb2, _ := Encode(gotSnap)
	if !bytes.Equal(sb, sb2) {
		t.Fatalf("compressed snapshot round trip changed content")
	}
}

func TestDecodeDeltaRejectsSkewAndGarbage(t *testing.T) {
	d := testDelta(3)
	b, _ := EncodeDelta(d)

	skewed := bytes.Replace(b, []byte(" v1\n"), []byte(" v99\n"), 1)
	if _, err := DecodeDelta(skewed); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("header skew: got %v, want ErrVersionSkew", err)
	}
	unknownEnc := bytes.Replace(b, []byte(" v1\n"), []byte(" v1 zstd\n"), 1)
	if _, err := DecodeDelta(unknownEnc); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("unknown encoding: got %v, want ErrVersionSkew", err)
	}
	if _, err := DecodeDelta([]byte("not a delta at all")); err == nil {
		t.Fatal("garbage decoded without error")
	}
	if _, err := DecodeDelta(b[:len(b)/2]); err == nil {
		t.Fatal("truncated delta decoded without error")
	}
	badOp := bytes.Replace(b, []byte(`"op":"ref"`), []byte(`"op":"zap"`), 1)
	if _, err := DecodeDelta(badOp); err == nil {
		t.Fatal("unknown component op decoded without error")
	}
}

// chainStore builds full snapshot seq 1, deltas 2..4, full 5, deltas
// 6..7 in st — the shape a delta-mode study with CompactEvery≈4 leaves
// behind.
func chainStore(t *testing.T, st DeltaStore) {
	t.Helper()
	if _, err := st.SaveSnapshot(testSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(2); seq <= 4; seq++ {
		if _, err := st.SaveDelta(testDelta(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.SaveSnapshot(testSnapshot(5)); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(6); seq <= 7; seq++ {
		if _, err := st.SaveDelta(testDelta(seq)); err != nil {
			t.Fatal(err)
		}
	}
}

func checkChain(t *testing.T, st DeltaStore, wantBase uint64, wantDeltas ...uint64) {
	t.Helper()
	snap, chain, err := st.LoadChain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != wantBase {
		t.Fatalf("chain base seq = %d, want %d", snap.Seq, wantBase)
	}
	var got []uint64
	for _, d := range chain {
		got = append(got, d.Seq)
	}
	if len(got) != len(wantDeltas) {
		t.Fatalf("chain deltas = %v, want %v", got, wantDeltas)
	}
	for i := range got {
		if got[i] != wantDeltas[i] {
			t.Fatalf("chain deltas = %v, want %v", got, wantDeltas)
		}
	}
}

func TestLoadChainWalksNewestFull(t *testing.T) {
	for _, st := range []DeltaStore{NewMem(), mustOpenFile(t)} {
		chainStore(t, st)
		checkChain(t, st, 5, 6, 7)
	}
}

func mustOpenFile(t *testing.T) *File {
	t.Helper()
	f, err := OpenFile(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestLoadChainEmptyStore(t *testing.T) {
	for _, st := range []DeltaStore{NewMem(), mustOpenFile(t)} {
		if _, _, err := st.LoadChain(); !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("empty store: got %v, want ErrNoSnapshot", err)
		}
	}
}

func TestFileLoadChainTornTip(t *testing.T) {
	f := mustOpenFile(t)
	chainStore(t, f)
	// Truncate the newest delta mid-body: the chain must stop at 6.
	path := filepath.Join(f.Dir(), deltaName(7))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	checkChain(t, f, 5, 6)
}

func TestFileLoadChainGap(t *testing.T) {
	f := mustOpenFile(t)
	chainStore(t, f)
	if err := os.Remove(filepath.Join(f.Dir(), deltaName(6))); err != nil {
		t.Fatal(err)
	}
	// Delta 7 still exists but is unreachable across the gap.
	checkChain(t, f, 5)
}

func TestFileLoadChainFallsBackAcrossCorruptFull(t *testing.T) {
	f := mustOpenFile(t)
	chainStore(t, f)
	// Corrupt the newest full (seq 5). The walk falls back to full 1 and
	// bridges deltas 2..4; the chain stops at the corrupt full's seq
	// because no delta occupies it, so at worst that cut's days re-run.
	path := filepath.Join(f.Dir(), snapshotName(5))
	if err := os.WriteFile(path, []byte("doxmeter-checkpoint v1\n{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	checkChain(t, f, 1, 2, 3, 4)
}

func TestFileLoadChainSkewedDeltaTerminal(t *testing.T) {
	f := mustOpenFile(t)
	chainStore(t, f)
	path := filepath.Join(f.Dir(), deltaName(6))
	b, _ := os.ReadFile(path)
	b = bytes.Replace(b, []byte(" v1\n"), []byte(" v99\n"), 1)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.LoadChain(); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("skewed delta in chain: got %v, want ErrVersionSkew", err)
	}
}

func TestDeltaRetentionAnchoredToFulls(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   DeltaStore
	}{{"mem", NewMem()}, {"file", mustOpenFile(t)}} {
		t.Run(tc.name, func(t *testing.T) {
			chainStore(t, tc.st)
			// A third full at 8 retires full 1; deltas ≤ 5 go with it.
			if _, err := tc.st.SaveSnapshot(testSnapshot(8)); err != nil {
				t.Fatal(err)
			}
			if _, err := tc.st.SaveDelta(testDelta(9)); err != nil {
				t.Fatal(err)
			}
			checkChain(t, tc.st, 8, 9)
			if f, ok := tc.st.(*File); ok {
				for _, seq := range []uint64{2, 3, 4} {
					if _, err := os.Stat(filepath.Join(f.Dir(), deltaName(seq))); !os.IsNotExist(err) {
						t.Fatalf("delta %d not pruned after compaction", seq)
					}
				}
				if _, err := os.Stat(filepath.Join(f.Dir(), snapshotName(1))); !os.IsNotExist(err) {
					t.Fatal("full 1 not pruned")
				}
				// Deltas 6..7 above the oldest kept full (5) survive so the
				// fallback chain from 5 stays complete.
				for _, seq := range []uint64{6, 7} {
					if _, err := os.Stat(filepath.Join(f.Dir(), deltaName(seq))); err != nil {
						t.Fatalf("delta %d pruned but still anchored: %v", seq, err)
					}
				}
			}
		})
	}
}

func TestFileCompressedStateDirResumes(t *testing.T) {
	f := mustOpenFile(t)
	f.SetCompress(true)
	chainStore(t, f)
	checkChain(t, f, 5, 6, 7)
	// Mixed encodings in one dir: a plain delta appended after
	// compressed ones still chains.
	f.SetCompress(false)
	if _, err := f.SaveDelta(testDelta(8)); err != nil {
		t.Fatal(err)
	}
	checkChain(t, f, 5, 6, 7, 8)
}
