package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	snapshotPrefix = "snapshot-"
	snapshotSuffix = ".ckpt"
	commitLogName  = "commits.log"
	keepSnapshots  = 2
)

// File is the file-backed Store. Snapshots are written crash-safely
// (temp file in the same dir, fsync, atomic rename, dir fsync) under
// names like snapshot-00000042.ckpt, keeping the latest two so a torn
// latest file still leaves a usable predecessor. The commit log is a
// JSON-lines file, fsynced per append; Entries tolerates a truncated
// final line.
type File struct {
	dir string

	mu   sync.Mutex
	logF *os.File
}

// OpenFile opens (creating if needed) a state directory.
func OpenFile(dir string) (*File, error) {
	if dir == "" {
		return nil, errors.New("store: empty state dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create state dir: %w", err)
	}
	return &File{dir: dir}, nil
}

// Dir returns the state directory this store writes to.
func (f *File) Dir() string { return f.dir }

func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", snapshotPrefix, seq, snapshotSuffix)
}

// snapshotSeqs lists the sequence numbers of snapshot files on disk,
// ascending.
func (f *File) snapshotSeqs() ([]uint64, error) {
	names, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: read state dir: %w", err)
	}
	var seqs []uint64
	for _, de := range names {
		name := de.Name()
		if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		var seq uint64
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix)
		if _, err := fmt.Sscanf(numeric, "%d", &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// SaveSnapshot implements Store.
func (f *File) SaveSnapshot(snap *Snapshot) (int, error) {
	b, err := Encode(snap)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	final := filepath.Join(f.dir, snapshotName(snap.Seq))
	tmp, err := os.CreateTemp(f.dir, snapshotPrefix+"*.tmp")
	if err != nil {
		return 0, fmt.Errorf("store: create snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(b); err != nil {
		cleanup()
		return 0, fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: close snapshot temp: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: publish snapshot: %w", err)
	}
	f.syncDir()
	f.pruneLocked()
	return len(b), nil
}

// syncDir fsyncs the state directory so the rename is durable. Failure
// is non-fatal: the data file itself is already synced.
func (f *File) syncDir() {
	if d, err := os.Open(f.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// pruneLocked removes all but the newest keepSnapshots snapshot files.
func (f *File) pruneLocked() {
	seqs, err := f.snapshotSeqs()
	if err != nil || len(seqs) <= keepSnapshots {
		return
	}
	for _, seq := range seqs[:len(seqs)-keepSnapshots] {
		os.Remove(filepath.Join(f.dir, snapshotName(seq)))
	}
}

// LoadSnapshot implements Store. It walks snapshots newest-first and
// returns the first that decodes; a corrupt or truncated newest file
// falls back to its predecessor, but a version-skewed snapshot aborts
// the walk — silently resuming from an older-format predecessor would
// hide the skew from the operator.
func (f *File) LoadSnapshot() (*Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	seqs, err := f.snapshotSeqs()
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return nil, ErrNoSnapshot
	}
	var lastErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		b, err := os.ReadFile(filepath.Join(f.dir, snapshotName(seqs[i])))
		if err != nil {
			lastErr = err
			continue
		}
		snap, err := Decode(b)
		if err != nil {
			if errors.Is(err, ErrVersionSkew) {
				return nil, err
			}
			lastErr = err
			continue
		}
		return snap, nil
	}
	return nil, fmt.Errorf("%w (no decodable snapshot file: %v)", ErrNoSnapshot, lastErr)
}

// AppendEntry implements Store.
func (f *File) AppendEntry(e Entry) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.logF == nil {
		lf, err := os.OpenFile(filepath.Join(f.dir, commitLogName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: open commit log: %w", err)
		}
		f.logF = lf
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encode log entry: %w", err)
	}
	b = append(b, '\n')
	if _, err := f.logF.Write(b); err != nil {
		return fmt.Errorf("store: append log entry: %w", err)
	}
	if err := f.logF.Sync(); err != nil {
		return fmt.Errorf("store: sync commit log: %w", err)
	}
	return nil
}

// Entries implements Store. The readable prefix of the log is returned;
// parsing stops at the first malformed line (a crash can tear at most
// the final one, so everything before it is trustworthy).
func (f *File) Entries() ([]Entry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, err := os.ReadFile(filepath.Join(f.dir, commitLogName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: read commit log: %w", err)
	}
	var out []Entry
	for _, line := range strings.Split(string(b), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			break
		}
		out = append(out, e)
	}
	return out, nil
}

// Close implements Store.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.logF != nil {
		err := f.logF.Close()
		f.logF = nil
		return err
	}
	return nil
}
