package store

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	snapshotPrefix = "snapshot-"
	deltaPrefix    = "delta-"
	snapshotSuffix = ".ckpt"
	commitLogName  = "commits.log"
	keepSnapshots  = 2
)

// File is the file-backed Store. Full snapshots are written crash-safely
// (temp file in the same dir, fsync, atomic rename, dir fsync) under
// names like snapshot-00000042.ckpt, keeping the latest two so a torn
// latest file still leaves a usable predecessor. Delta cuts follow the
// same write discipline under delta-00000043.ckpt and share the
// snapshot sequence space; deltas older than the oldest retained full
// snapshot are pruned when a new full snapshot lands, so every retained
// full snapshot anchors a complete chain to the newest cut. The commit
// log is a JSON-lines file, fsynced per append; Entries tolerates a
// truncated final line.
//
// Both snapshot and delta writes stream through the codec directly into
// the temp file — the encoded image is never buffered in memory.
type File struct {
	dir string

	mu       sync.Mutex
	logF     *os.File
	compress bool
	fw       *flate.Writer // reused across compressed writes

	// Commit-log encoder scratch, reused across appends under mu: one
	// buffer and one encoder instead of a fresh json.Marshal slice per
	// entry.
	logBuf bytes.Buffer
	logEnc *json.Encoder
}

// OpenFile opens (creating if needed) a state directory.
func OpenFile(dir string) (*File, error) {
	if dir == "" {
		return nil, errors.New("store: empty state dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create state dir: %w", err)
	}
	return &File{dir: dir}, nil
}

// Dir returns the state directory this store writes to.
func (f *File) Dir() string { return f.dir }

// SetCompress selects flate body encoding for subsequent snapshot and
// delta writes. Reads auto-detect the encoding from the file header, so
// mixed-encoding state dirs resume fine.
func (f *File) SetCompress(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.compress = on
	if on && f.fw == nil {
		f.fw, _ = flate.NewWriter(io.Discard, flate.BestSpeed)
	}
}

func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", snapshotPrefix, seq, snapshotSuffix)
}

func deltaName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", deltaPrefix, seq, snapshotSuffix)
}

// seqsWithPrefix lists the sequence numbers of checkpoint files carrying
// the given name prefix, ascending.
func (f *File) seqsWithPrefix(prefix string) ([]uint64, error) {
	names, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: read state dir: %w", err)
	}
	var seqs []uint64
	for _, de := range names {
		name := de.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		var seq uint64
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, prefix), snapshotSuffix)
		if _, err := fmt.Sscanf(numeric, "%d", &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// snapshotSeqs lists the sequence numbers of full-snapshot files on
// disk, ascending.
func (f *File) snapshotSeqs() ([]uint64, error) {
	return f.seqsWithPrefix(snapshotPrefix)
}

// writeAtomicLocked streams a checkpoint file crash-safely: temp file in
// the state dir, buffered encode, fsync, atomic rename to final, then a
// directory fsync so the new entry survives a power cut. Returns the
// encoded size.
func (f *File) writeAtomicLocked(final string, encode func(io.Writer) (int, error)) (int, error) {
	tmp, err := os.CreateTemp(f.dir, snapshotPrefix+"*.tmp")
	if err != nil {
		return 0, fmt.Errorf("store: create checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	bw := bufio.NewWriterSize(tmp, 1<<20)
	n, err := encode(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		cleanup()
		return 0, fmt.Errorf("store: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, fmt.Errorf("store: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: close checkpoint temp: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(f.dir, final)); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: publish checkpoint: %w", err)
	}
	if err := f.syncDir(); err != nil {
		return 0, err
	}
	return n, nil
}

// SaveSnapshot implements Store.
func (f *File) SaveSnapshot(snap *Snapshot) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.writeAtomicLocked(snapshotName(snap.Seq), func(w io.Writer) (int, error) {
		return encodeSnapshotStream(w, f.fw, snap, f.compress)
	})
	if err != nil {
		return 0, err
	}
	f.pruneLocked()
	return n, nil
}

// SaveDelta implements DeltaStore. The delta file is published with the
// same temp + fsync + rename + dir-fsync discipline as full snapshots;
// retention stays anchored to full snapshots, so this never prunes.
func (f *File) SaveDelta(d *Delta) (int, error) {
	if d == nil {
		return 0, errors.New("store: cannot encode nil delta")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeAtomicLocked(deltaName(d.Seq), func(w io.Writer) (int, error) {
		return encodeDeltaStream(w, f.fw, d, f.compress)
	})
}

// syncDir fsyncs the state directory so renames and file creations are
// durable: without it a crash can roll back the directory entry even
// though the file's own bytes were synced.
func (f *File) syncDir() error {
	d, err := os.Open(f.dir)
	if err != nil {
		return fmt.Errorf("store: open state dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync state dir: %w", err)
	}
	return nil
}

// pruneLocked removes all but the newest keepSnapshots full-snapshot
// files, plus every delta at or below the oldest retained full snapshot
// (those days are already covered by it, so no retained chain can need
// them). Pruning is best-effort: a leftover file is re-pruned on the
// next full cut.
func (f *File) pruneLocked() {
	seqs, err := f.snapshotSeqs()
	if err != nil || len(seqs) <= keepSnapshots {
		return
	}
	for _, seq := range seqs[:len(seqs)-keepSnapshots] {
		os.Remove(filepath.Join(f.dir, snapshotName(seq)))
	}
	oldestKept := seqs[len(seqs)-keepSnapshots]
	deltaSeqs, err := f.seqsWithPrefix(deltaPrefix)
	if err != nil {
		return
	}
	for _, seq := range deltaSeqs {
		if seq <= oldestKept {
			os.Remove(filepath.Join(f.dir, deltaName(seq)))
		}
	}
}

// LoadSnapshot implements Store. It walks snapshots newest-first and
// returns the first that decodes; a corrupt or truncated newest file
// falls back to its predecessor, but a version-skewed snapshot aborts
// the walk — silently resuming from an older-format predecessor would
// hide the skew from the operator.
func (f *File) LoadSnapshot() (*Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	snap, _, err := f.loadChainLocked(false)
	return snap, err
}

// LoadChain implements DeltaStore.
func (f *File) LoadChain() (*Snapshot, []*Delta, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.loadChainLocked(true)
}

func (f *File) loadChainLocked(withDeltas bool) (*Snapshot, []*Delta, error) {
	seqs, err := f.snapshotSeqs()
	if err != nil {
		return nil, nil, err
	}
	if len(seqs) == 0 {
		return nil, nil, ErrNoSnapshot
	}
	var lastErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		snap, err := f.readSnapshot(seqs[i])
		if err != nil {
			if errors.Is(err, ErrVersionSkew) {
				return nil, nil, err
			}
			lastErr = err
			continue
		}
		if !withDeltas {
			return snap, nil, nil
		}
		chain, err := f.readDeltaChain(snap.Seq)
		if err != nil {
			return nil, nil, err
		}
		return snap, chain, nil
	}
	return nil, nil, fmt.Errorf("%w (no decodable snapshot file: %v)", ErrNoSnapshot, lastErr)
}

func (f *File) readSnapshot(seq uint64) (*Snapshot, error) {
	b, err := os.ReadFile(filepath.Join(f.dir, snapshotName(seq)))
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// readDeltaChain collects the contiguous run of deltas extending the
// full snapshot at base: seq base+1, base+2, … while each file exists,
// decodes, and links to its predecessor. A missing, torn, or mislinked
// delta ends the chain there — at worst the tip cut is re-run — but a
// version-skewed delta is terminal, mirroring snapshot skew handling.
func (f *File) readDeltaChain(base uint64) ([]*Delta, error) {
	var chain []*Delta
	for seq := base + 1; ; seq++ {
		b, err := os.ReadFile(filepath.Join(f.dir, deltaName(seq)))
		if err != nil {
			return chain, nil
		}
		d, err := DecodeDelta(b)
		if err != nil {
			if errors.Is(err, ErrVersionSkew) {
				return nil, err
			}
			return chain, nil
		}
		if d.Seq != seq || d.BaseSeq != seq-1 {
			return chain, nil
		}
		chain = append(chain, d)
	}
}

// AppendEntry implements Store.
func (f *File) AppendEntry(e Entry) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.logF == nil {
		path := filepath.Join(f.dir, commitLogName)
		_, statErr := os.Stat(path)
		lf, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: open commit log: %w", err)
		}
		f.logF = lf
		// A freshly created log needs its directory entry persisted too,
		// or a crash after the first synced append could lose the whole
		// log while the snapshot it describes survives.
		if os.IsNotExist(statErr) {
			if err := f.syncDir(); err != nil {
				return err
			}
		}
	}
	// Encode into the reused buffer. json.Encoder produces exactly
	// json.Marshal's bytes plus the trailing '\n' the log format wants
	// (same compact form, same HTML escaping), so the on-disk encoding
	// is unchanged — only the per-entry allocation is gone.
	f.logBuf.Reset()
	if f.logEnc == nil {
		f.logEnc = json.NewEncoder(&f.logBuf)
	}
	if err := f.logEnc.Encode(e); err != nil {
		return fmt.Errorf("store: encode log entry: %w", err)
	}
	if _, err := f.logF.Write(f.logBuf.Bytes()); err != nil {
		return fmt.Errorf("store: append log entry: %w", err)
	}
	if err := f.logF.Sync(); err != nil {
		return fmt.Errorf("store: sync commit log: %w", err)
	}
	return nil
}

// Entries implements Store. The readable prefix of the log is returned;
// parsing stops at the first malformed line (a crash can tear at most
// the final one, so everything before it is trustworthy).
func (f *File) Entries() ([]Entry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, err := os.ReadFile(filepath.Join(f.dir, commitLogName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: read commit log: %w", err)
	}
	var out []Entry
	for _, line := range strings.Split(string(b), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			break
		}
		out = append(out, e)
	}
	return out, nil
}

// Close implements Store.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.logF != nil {
		err := f.logF.Close()
		f.logF = nil
		return err
	}
	return nil
}
