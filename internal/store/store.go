// Package store is the pluggable persistence layer behind durable studies.
//
// A Store holds two things for a running study:
//
//   - Snapshots: full, versioned images of every stateful pipeline
//     component (crawler cursors and seen sets, dedup indexes, monitor
//     histories, core funnel state), written at study-day boundaries.
//   - An append-only commit log of small Entry records (one per study
//     day plus run lifecycle events), carrying a rolling digest of the
//     committed document stream so a resumed run can be cross-checked
//     against the log it claims to continue.
//
// Two backends ship with the package: Mem (tests, examples) and File
// (crash-safe snapshots via temp-file + fsync + rename, plus a JSONL
// commit log that tolerates a torn final line). Both speak the same
// codec, so bytes written by one decode under the other.
//
// Privacy: snapshot payloads are produced by the components' snapshot
// APIs, which follow the §3.3 discipline — salted digests and category
// booleans persist, raw dox text / phone numbers / emails / IP addresses
// never do. The store itself treats payloads as opaque.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"time"
)

const (
	// Magic is the first token of every encoded snapshot.
	Magic = "doxmeter-checkpoint"
	// Version is the snapshot codec version understood by this build.
	// Decode rejects any other version with ErrVersionSkew.
	Version = 1
)

var (
	// ErrNoSnapshot is returned by LoadSnapshot when the store holds no
	// decodable snapshot (a fresh state dir, or an empty Mem store).
	ErrNoSnapshot = errors.New("store: no snapshot available")
	// ErrVersionSkew is returned when a snapshot was written by a
	// different codec version than this build understands.
	ErrVersionSkew = errors.New("store: snapshot codec version mismatch")
)

// Meta identifies the study a snapshot belongs to and where in the
// virtual timeline it was taken. Restore refuses a snapshot whose Seed
// or Scale disagree with the configured study.
type Meta struct {
	Seed        int64     `json:"seed"`
	Scale       float64   `json:"scale"`
	VirtualTime time.Time `json:"virtual_time"`
	Period      int       `json:"period"` // 1 or 2
	Day         int       `json:"day"`    // day index within the period, 0-based
}

// Snapshot is a full image of a study's mutable state at one day
// boundary. Components is keyed by component name ("core", "dedup",
// "monitor", "crawler/<site>") with each component's own JSON payload
// stored verbatim, so Decode→Encode round-trips byte-identically.
type Snapshot struct {
	Version    int                        `json:"version"`
	Seq        uint64                     `json:"seq"`
	Meta       Meta                       `json:"meta"`
	Components map[string]json.RawMessage `json:"components"`
}

// Commit-log entry kinds.
const (
	KindRunStart = "run-start" // a fresh study began
	KindResume   = "resume"    // a study resumed from a snapshot
	KindDay      = "day"       // one study day committed
	KindSnapshot = "snapshot"  // a full snapshot was persisted
	KindDelta    = "delta"     // an incremental delta cut was persisted
	KindStop     = "stop"      // the study stopped on request after a checkpoint
	KindLease    = "lease"     // a work-item lease was stolen from an expired holder
)

// Entry is one record in the append-only commit log.
type Entry struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Seq is the checkpoint sequence number ("snapshot"/"delta" entries).
	Seq uint64 `json:"seq,omitempty"`
	// Base is the sequence the cut applies to ("delta" entries only).
	Base   uint64    `json:"base,omitempty"`
	Period int       `json:"period,omitempty"`
	Day    int       `json:"day,omitempty"`
	VTime  time.Time `json:"vtime"`
	// Funnel counters at the end of the day, for quick inspection.
	Collected int `json:"collected,omitempty"`
	Flagged   int `json:"flagged,omitempty"`
	Doxes     int `json:"doxes,omitempty"`
	// Digest is the rolling run digest (hex) over the ordered committed
	// document stream up to and including this day.
	Digest string `json:"digest,omitempty"`
	// Bytes is the encoded snapshot size ("snapshot" entries only).
	Bytes int `json:"bytes,omitempty"`
	// Key is the work item a lease event concerns ("lease" entries only).
	Key string `json:"key,omitempty"`
	// Worker is the worker index that took the lease ("lease" entries only).
	Worker int `json:"worker,omitempty"`
}

// Store is the persistence interface a durable study writes through.
// Implementations must be safe for use from a single study goroutine;
// they are not required to support concurrent writers.
type Store interface {
	// SaveSnapshot encodes and durably stores snap, returning the
	// encoded size in bytes. Older snapshots may be pruned.
	SaveSnapshot(snap *Snapshot) (int, error)
	// LoadSnapshot returns the most recent decodable snapshot, or
	// ErrNoSnapshot if none exists. A latest-but-corrupt snapshot falls
	// back to the previous one; a version-skewed snapshot is terminal
	// and surfaces ErrVersionSkew.
	LoadSnapshot() (*Snapshot, error)
	// AppendEntry appends one record to the commit log.
	AppendEntry(e Entry) error
	// Entries returns the readable prefix of the commit log. A torn
	// final record (e.g. from a crash mid-write) is dropped silently.
	Entries() ([]Entry, error)
	// Close releases backend resources. The Store is unusable after.
	Close() error
}

// Encode serializes a snapshot: a one-line header carrying the magic and
// codec version, then the JSON body. The header is checked before the
// body is parsed, so skew is detected even across incompatible layouts.
// The write paths proper stream instead of buffering (EncodeSnapshotTo,
// Codec); this form exists for tests and tooling.
func Encode(snap *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := EncodeSnapshotTo(&buf, snap, false); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses bytes produced by Encode or EncodeSnapshotTo, rejecting
// unknown magic and returning ErrVersionSkew for any codec version other
// than Version.
func Decode(b []byte) (*Snapshot, error) {
	return DecodeSnapshotFrom(bytes.NewReader(b))
}
