package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"doxmeter/internal/dedup"
)

// FuzzDeltaCodecRoundTrip is the differential fuzz harness for the
// incremental-checkpoint codec. Two properties, both checked on every
// input:
//
//  1. Codec robustness: DecodeDelta never panics on arbitrary bytes
//     (torn tails, truncated flate streams, skewed headers), and any
//     input it accepts re-encodes to a stable fixpoint — encode∘decode
//     is the identity on encoded bytes.
//
//  2. Delta ≡ full, byte for byte: the input drives a live journaling
//     provider (the deduper — pure, in-memory, every mutation class:
//     index adds, stats-only duplicate hits) through checks and cuts.
//     Each cut's delta crosses the real codec — buffered and streaming
//     encoders must agree, compressed and plain must decode to the same
//     delta — and applying it to the previous cut's state must marshal
//     byte-identically to the full snapshot at that cut.
func FuzzDeltaCodecRoundTrip(f *testing.F) {
	seed := testDelta(7)
	plain, err := EncodeDelta(seed)
	if err != nil {
		f.Fatal(err)
	}
	var cc Codec
	cc.Compress = true
	comp, err := cc.EncodeDelta(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(plain)
	f.Add(plain[:len(plain)/2]) // torn tail: body cut mid-JSON
	f.Add(plain[:len(plain)-1]) // torn tail: final byte lost
	f.Add(append([]byte(nil), comp...))
	f.Add(append([]byte(nil), comp[:len(comp)*2/3]...)) // torn flate stream
	f.Add([]byte("doxmeter-delta v1\n"))                // header only
	f.Add([]byte("doxmeter-delta v99\n{}"))             // version skew
	f.Add([]byte("doxmeter-delta v1 zstd\n{}"))         // unknown encoding
	f.Add([]byte{})

	f.Fuzz(deltaCodecRoundTripBody)
}

func deltaCodecRoundTripBody(t *testing.T, data []byte) {
	prop1(t, data)
	// Bound the differential op budget tightly: every cut marshals the
	// whole snapshot, and a multi-millisecond exec makes the engine's
	// coverage-minimization passes (60s budget each) eat the whole
	// smoke run. 64 ops still cover adds, duplicates, and plain and
	// compressed cuts.
	if len(data) > 64 {
		data = data[:64]
	}
	prop2(t, data)
}

// prop1: decode anything without panicking; accepted inputs re-encode
// to a fixpoint.
func prop1(t *testing.T, data []byte) {
	if d, err := DecodeDelta(data); err == nil {
		b1, err := EncodeDelta(d)
		if err != nil {
			t.Fatalf("re-encode of accepted input: %v", err)
		}
		d2, err := DecodeDelta(b1)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		b2, err := EncodeDelta(d2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("encode∘decode is not a fixpoint")
		}
	}
}

func prop2(t *testing.T, data []byte) {
	{
		// Property 2: delta-encode → decode → apply equals the full
		// snapshot, byte for byte, under an input-derived op sequence.
		marshal := func(v any) []byte {
			b, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		dd := dedup.New()
		dd.SetDeltaJournal(true)
		var base dedup.State
		if err := json.Unmarshal(marshal(dd.Snapshot()), &base); err != nil {
			t.Fatal(err)
		}
		var seq uint64 = 1
		var enc Codec
		cut := func(compress bool) {
			seq++
			delta, _ := dd.CutDelta()
			want := marshal(dd.Snapshot())
			sd := &Delta{
				Seq: seq, BaseSeq: seq - 1,
				Components: map[string]ComponentDelta{
					"dedup": {Op: OpPatch, Payload: marshal(delta)},
				},
			}
			enc.Compress = compress
			b, err := enc.EncodeDelta(sd)
			if err != nil {
				t.Fatal(err)
			}
			if !compress {
				// The buffered and streaming encoders must agree bytewise.
				sb, err := EncodeDelta(sd)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(b, sb) {
					t.Fatal("Codec.EncodeDelta and EncodeDelta disagree")
				}
			}
			dec, err := DecodeDelta(b)
			if err != nil {
				t.Fatalf("decode of live delta (compress=%v): %v", compress, err)
			}
			if dec.Seq != seq || dec.BaseSeq != seq-1 {
				t.Fatalf("chain linkage lost: %d←%d", dec.Seq, dec.BaseSeq)
			}
			var applied dedup.Delta
			if err := json.Unmarshal(dec.Components["dedup"].Payload, &applied); err != nil {
				t.Fatal(err)
			}
			applied.Apply(&base)
			if got := marshal(base); !bytes.Equal(got, want) {
				t.Fatalf("delta-applied state diverged from full snapshot:\n%s\nvs\n%s", got, want)
			}
			if err := json.Unmarshal(want, &base); err != nil {
				t.Fatal(err)
			}
		}
		var bodies []string
		for i, b := range data {
			switch b % 8 {
			case 7:
				cut(b%16 >= 8)
			case 6:
				if len(bodies) > 0 {
					// Exact duplicate: stats move, no index adds.
					dd.Check(fmt.Sprintf("s/dup%d", i), bodies[int(b)%len(bodies)], "")
					continue
				}
				fallthrough
			default:
				body := fmt.Sprintf("body %d %d", b, i)
				bodies = append(bodies, body)
				dd.Check(fmt.Sprintf("s/%d", i), body, fmt.Sprintf("k%d", b%5))
			}
		}
		cut(false)
	}
}
