package stream

import (
	"strings"
	"time"

	"doxmeter/internal/extract"
	"doxmeter/internal/feed"
	"doxmeter/internal/notify"
	"doxmeter/internal/watchlist"
)

// Detection is one committed, de-duplicated dox as handed to the alert
// fan-out: exactly what the §7 mitigation services consume, and nothing
// the §3.3 discipline forbids them to hold (the address line is passed
// through to the watchlist, which stores only its hash).
type Detection struct {
	Site        string
	DocID       string
	SeenAt      time.Time // virtual observation time (the commit day)
	Extraction  *extract.Extraction
	AddressLine string // first street-address line, "" when none labeled
}

// Fanout wires committed detections into the paper's three proposed
// mitigation services (§7.1–7.2). Any field may be nil. It is the
// Pipeline's Deliver target in service mode and is also usable directly
// for batch seeding.
type Fanout struct {
	Notify    *notify.Service
	Watchlist *watchlist.Watchlist
	Feed      *feed.Log
}

// Deliver ingests one detection into every attached service: the
// notification registry (§7.1), the threat-exchange feed (§7.1), and the
// anti-SWATing watchlist (§7.2).
func (f *Fanout) Deliver(d Detection) {
	if f.Notify != nil {
		f.Notify.Ingest(d.Site, d.SeenAt, d.Extraction)
	}
	if f.Feed != nil {
		f.Feed.Publish(d.Site, feed.URLFor(d.Site, d.DocID), d.SeenAt, d.Extraction.AccountRefs())
	}
	if f.Watchlist != nil {
		if d.AddressLine != "" {
			f.Watchlist.AddAddress(d.AddressLine, d.Site)
		}
		for _, p := range d.Extraction.Phones {
			f.Watchlist.AddPhone(p, d.Site)
		}
	}
}

// Janitor runs the periodic maintenance pass: purging expired watchlist
// entries. In service mode the study calls it once per virtual day, after
// the epoch's alerts have drained, so the purge is deterministic.
func (f *Fanout) Janitor() int {
	if f.Watchlist == nil {
		return 0
	}
	return f.Watchlist.Purge()
}

// AddressLine pulls the "Address:"/"Lives at:" line value from dox text
// for watchlisting.
func AddressLine(text string) string {
	for _, prefix := range []string{"Address: ", "Lives at: "} {
		if i := strings.Index(text, prefix); i >= 0 {
			rest := text[i+len(prefix):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return rest[:j]
			}
			return rest
		}
	}
	return ""
}
