// Package stream runs the paper's detection funnel (§3) as an always-on
// streaming pipeline: poll → prepare (shard workers) → sequencer → commit
// → alert fan-out, connected by bounded channels with backpressure. It is
// the service-shaped engine behind the batch study in internal/core.
//
// Determinism model. All virtual time comes from the study clock, and all
// state mutation stays on the caller's goroutine: RunEpoch fans polls and
// the CPU-hot prepare stage out across goroutines, but seals the epoch,
// sorts by (Posted, Site, ID) — the batch study's commit comparator — and
// then invokes the commit callback in that order on the calling goroutine.
// Alert fan-out runs on a single worker consuming commits in order, and
// RunEpoch does not return until every emitted alert is delivered, so
// virtual-time stamps in downstream services (watchlist windows, feed
// seqs) are a pure function of the document schedule. A streaming run is
// therefore bit-identical to the sequential batch study on the same
// world/seed/schedule — the keystone test in internal/core enforces it.
//
// Backpressure model. Every stage channel is bounded by Config.Buffer. A
// full channel blocks the sender — a slow prepare shard throttles the
// pollers and a slow alert consumer throttles commits; nothing is dropped
// or reordered. Each blocking send increments a per-stage backpressure
// counter and feeds a stall-seconds histogram, and per-stage queue-depth
// gauges expose the live backlog, so saturation is visible on /metrics
// before it becomes latency.
package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"doxmeter/internal/crawler"
	"doxmeter/internal/lease"
	"doxmeter/internal/parallel"
	"doxmeter/internal/telemetry"
)

// ErrClosed is returned by operations on a closed pipeline.
var ErrClosed = errors.New("stream: pipeline closed")

// Source is one pollable document feed (a crawler). Poll returns every
// document that became available since the previous poll; it may return
// documents alongside an error (a partial poll under faults).
type Source struct {
	Name string
	Poll func(ctx context.Context) ([]crawler.Doc, error)
}

// Config parameterizes a pipeline. P is the prepared-document payload
// carried from the prepare stage to the commit callback.
type Config[P any] struct {
	// Shards is the number of persistent prepare workers. Documents are
	// routed by an FNV hash of site/id, so a given document key always
	// lands on the same worker. 0 means runtime.GOMAXPROCS(0).
	Shards int
	// Buffer bounds every stage channel; 0 means 64.
	Buffer int
	// PollParallelism bounds concurrent source polls per epoch; <= 1
	// polls sequentially in source order.
	PollParallelism int
	// Prepare runs the stateless CPU stages for one document. It must be
	// safe for concurrent use and must not touch mutable study state.
	Prepare func(doc *crawler.Doc) P
	// Deliver, when non-nil, receives the alert fan-out events emitted by
	// the commit callback via EmitAlert, in emit (= commit) order, on a
	// dedicated worker goroutine.
	Deliver func(d Detection)
	// Telemetry, when non-nil, receives the pipeline's queue/backpressure/
	// latency series. Metrics only observe; results are identical with
	// telemetry on or off.
	Telemetry *telemetry.Registry
}

// SourceError records one failed poll within an epoch.
type SourceError struct {
	Name string
	Err  error
}

// EpochStats summarizes one RunEpoch call.
type EpochStats struct {
	Committed int           // documents committed this epoch
	Failures  []SourceError // polls that failed (their delivered docs still committed)
}

type item struct {
	doc      crawler.Doc
	seenWall time.Time // wall time the poller handed the doc to the pipeline
}

type result[P any] struct {
	it  item
	pre P
}

type alertEnv struct {
	d    Detection
	seen time.Time
}

// Pipeline is the streaming engine. Stage goroutines (prepare shards and
// the alert worker) persist across epochs; RunEpoch drives one virtual-
// clock tick through them. Not safe for concurrent RunEpoch calls — the
// study driver owns it.
//
// Transport is chunked: documents move between stages in pooled slices of
// up to chunkLen items rather than one channel operation per document, so
// the per-document synchronization cost amortizes away at high rates. The
// chunk length and channel capacities are derived from Config.Buffer such
// that the number of buffered documents per stage stays the documented
// bound: chunkLen = min(64, Buffer) and capacity = Buffer/chunkLen chunks.
type Pipeline[P any] struct {
	cfg      Config[P]
	chunkLen int
	in       []chan *[]item // per-shard prepare inputs
	out      chan *[]result[P]
	alerts   chan alertEnv

	itemChunks sync.Pool // *[]item
	resChunks  sync.Pool // *[]result[P]

	alertWG   sync.WaitGroup
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once

	// curSeen is the poll-ingest wall time of the document currently being
	// committed; EmitAlert reads it to stamp paste-seen→alert latency.
	// Written and read only on the RunEpoch caller's goroutine.
	curSeen time.Time

	// lb, when non-nil, binds the prepare shards to leased ownership keys
	// (AttachLeases). Touched only on the RunEpoch caller's goroutine.
	lb *leaseBinding

	m *metrics
}

// leaseBinding holds a pipeline's shard-ownership leases: shard i holds
// ShardLeaseKey(i) in the bound queue, renewed at every epoch tick.
type leaseBinding struct {
	q      *lease.Queue
	now    func() time.Time
	leases []lease.Lease
}

// New builds the pipeline and starts its persistent stage goroutines.
// Callers must Close it when done.
func New[P any](cfg Config[P]) *Pipeline[P] {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	chunkLen := cfg.Buffer
	if chunkLen > 64 {
		chunkLen = 64
	}
	chanCap := cfg.Buffer / chunkLen
	if chanCap < 1 {
		chanCap = 1
	}
	p := &Pipeline[P]{
		cfg:      cfg,
		chunkLen: chunkLen,
		in:       make([]chan *[]item, cfg.Shards),
		out:      make(chan *[]result[P], chanCap),
		alerts:   make(chan alertEnv, cfg.Buffer),
		done:     make(chan struct{}),
		m:        newMetrics(cfg.Telemetry),
	}
	p.itemChunks.New = func() any { s := make([]item, 0, chunkLen); return &s }
	p.resChunks.New = func() any { s := make([]result[P], 0, chunkLen); return &s }
	for i := range p.in {
		p.in[i] = make(chan *[]item, chanCap)
	}
	p.wg.Add(cfg.Shards + 1)
	for i := range p.in {
		go p.shardLoop(i)
	}
	go p.alertLoop()
	return p
}

// Close stops the stage goroutines. Idempotent. Must not be called
// concurrently with RunEpoch; after a cancelled epoch the pipeline may
// hold in-flight items and must be closed, not reused.
func (p *Pipeline[P]) Close() {
	p.closeOnce.Do(func() {
		close(p.done)
		p.wg.Wait()
	})
}

// ShardLeaseKey is the ownership key prepare shard i holds when the
// pipeline is bound to a lease queue (AttachLeases).
func ShardLeaseKey(i int) string { return "prepare/" + strconv.Itoa(i) }

// AttachLeases registers this pipeline's prepare shards as the lease
// holders of their ownership keys in q: a queue epoch is begun with one
// key per shard (ShardLeaseKey(i)), shard i acquires its key at now(),
// and every subsequent RunEpoch renews the leases at now() before
// polling. A pipeline that stops — crash or Close — simply stops
// renewing, so its keys lapse after the queue TTL and a successor
// pipeline can attach under a new epoch and take over; that is the same
// crash model the sharded study driver uses. Returns an error if a key
// is validly held by another live pipeline bound to the same queue.
// Must be called before the first RunEpoch, on the owning goroutine.
//
// Attaching under a new epoch number claims a fresh item set; attaching
// under the queue's current epoch joins the existing one — each key is
// granted only if pending or lapsed (a crashed predecessor's lease is
// stolen, a live one refuses the claim). BeginEpoch would wipe live
// leases, so it runs only for a genuinely new epoch.
func (p *Pipeline[P]) AttachLeases(q *lease.Queue, epoch int, now func() time.Time) error {
	t := now()
	keys := make([]string, len(p.in))
	for i := range keys {
		keys[i] = ShardLeaseKey(i)
	}
	if q.Epoch() != epoch || len(q.Snapshot().Keys) == 0 {
		q.BeginEpoch(epoch, keys)
	}
	lb := &leaseBinding{q: q, now: now}
	for i, k := range keys {
		l, ok := q.AcquireKey(k, i, t)
		if !ok {
			return fmt.Errorf("stream: shard lease %q is held by another pipeline", k)
		}
		lb.leases = append(lb.leases, l)
	}
	p.lb = lb
	return nil
}

// renewLeases extends the shard-ownership leases at the current virtual
// time. A lapsed-but-unstolen lease (the clock jumped past the TTL, e.g.
// across a resume gap) is re-acquired; a stolen one means another live
// pipeline owns the shards, which is fatal.
func (p *Pipeline[P]) renewLeases() error {
	if p.lb == nil {
		return nil
	}
	t := p.lb.now()
	for i, l := range p.lb.leases {
		if err := p.lb.q.Renew(l, t); err == nil {
			continue
		}
		nl, ok := p.lb.q.AcquireKey(l.Key, i, t)
		if !ok {
			return fmt.Errorf("stream: shard lease %q lost to another pipeline", l.Key)
		}
		p.lb.leases[i] = nl
	}
	return nil
}

// ReleaseLeases marks the shard-ownership keys done in the bound queue —
// the clean-shutdown handoff (a successor attaches under a new epoch, so
// done keys do not block it). A no-op without AttachLeases.
func (p *Pipeline[P]) ReleaseLeases() {
	if p.lb == nil {
		return
	}
	t := p.lb.now()
	for _, l := range p.lb.leases {
		// Best-effort: a lapsed lease is already someone else's problem.
		_ = p.lb.q.Release(l, t)
	}
	p.lb = nil
}

// fnv-1a constants, inlined so shardOf hashes without constructing a
// hash.Hash32 or copying the key strings to []byte.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// shardOf routes a document to its prepare worker by key hash (FNV-1a over
// "site/id", identical to hash/fnv's sum over the same bytes).
func (p *Pipeline[P]) shardOf(doc *crawler.Doc) int {
	h := uint32(fnvOffset32)
	for i := 0; i < len(doc.Site); i++ {
		h ^= uint32(doc.Site[i])
		h *= fnvPrime32
	}
	h ^= uint32('/')
	h *= fnvPrime32
	for i := 0; i < len(doc.ID); i++ {
		h ^= uint32(doc.ID[i])
		h *= fnvPrime32
	}
	return int(h % uint32(len(p.in)))
}

// sendChunk pushes one chunk of polled documents into a shard, blocking
// (and counting the stall) when the shard is saturated. The queue gauge
// counts documents before the send so the increment happens-before the
// consumer's decrement; the gauge covers queued + in-flight and can never
// dip below zero.
func (p *Pipeline[P]) sendChunk(ctx context.Context, shard int, c *[]item) error {
	ch := p.in[shard]
	n := float64(len(*c))
	p.m.queuePrepare.Add(n)
	select {
	case ch <- c:
		return nil
	default:
	}
	p.m.bpPoll.Inc()
	start := time.Now()
	select {
	case ch <- c:
		p.m.stallPoll.Observe(time.Since(start).Seconds())
		return nil
	case <-ctx.Done():
		p.m.queuePrepare.Add(-n)
		return ctx.Err()
	case <-p.done:
		p.m.queuePrepare.Add(-n)
		return ErrClosed
	}
}

// shardLoop is one persistent prepare worker: it prepares a whole input
// chunk into a pooled result chunk, recycling the input chunk before the
// downstream send.
func (p *Pipeline[P]) shardLoop(w int) {
	defer p.wg.Done()
	for {
		select {
		case ic := <-p.in[w]:
			p.m.queuePrepare.Add(-float64(len(*ic)))
			rp := p.resChunks.Get().(*[]result[P])
			rc := (*rp)[:0]
			for k := range *ic {
				it := (*ic)[k]
				rc = append(rc, result[P]{it: it, pre: p.cfg.Prepare(&it.doc)})
			}
			*rp = rc
			*ic = (*ic)[:0]
			p.itemChunks.Put(ic)
			p.m.queueSequencer.Add(float64(len(rc)))
			select {
			case p.out <- rp:
			default:
				p.m.bpPrepare.Inc()
				start := time.Now()
				select {
				case p.out <- rp:
					p.m.stallPrepare.Observe(time.Since(start).Seconds())
				case <-p.done:
					p.m.queueSequencer.Add(-float64(len(rc)))
					return
				}
			}
		case <-p.done:
			return
		}
	}
}

// alertLoop is the single fan-out worker: it preserves commit order and
// stamps end-to-end paste-seen→alert-delivered latency.
func (p *Pipeline[P]) alertLoop() {
	defer p.wg.Done()
	for {
		select {
		case a := <-p.alerts:
			p.m.queueAlert.Add(-1)
			if p.cfg.Deliver != nil {
				p.cfg.Deliver(a.d)
			}
			if !a.seen.IsZero() {
				p.m.alertLatency.Observe(time.Since(a.seen).Seconds())
			}
			p.alertWG.Done()
		case <-p.done:
			return
		}
	}
}

// EmitAlert queues one fan-out event. Called by the commit callback (on
// the RunEpoch caller's goroutine); delivery happens on the alert worker,
// in emit order, before RunEpoch returns.
func (p *Pipeline[P]) EmitAlert(d Detection) {
	env := alertEnv{d: d, seen: p.curSeen}
	p.alertWG.Add(1)
	p.m.queueAlert.Add(1)
	select {
	case p.alerts <- env:
		return
	default:
	}
	p.m.bpCommit.Inc()
	start := time.Now()
	select {
	case p.alerts <- env:
		p.m.stallCommit.Observe(time.Since(start).Seconds())
	case <-p.done:
		p.m.queueAlert.Add(-1)
		p.alertWG.Done()
	}
}

// RunEpoch drives one virtual-clock tick: it polls every source (fanned
// out up to PollParallelism), streams the delivered documents through the
// prepare shards while later polls are still fetching, seals the epoch,
// sorts by (Posted, Site, ID), and invokes commit in that order on the
// calling goroutine. It returns after every alert emitted by the commits
// has been delivered, so downstream service state is deterministic at the
// epoch boundary (checkpoints cut between epochs see a quiesced pipeline).
//
// A poll that fails degrades the epoch instead of aborting it: the
// failure is reported in EpochStats.Failures and the documents it did
// deliver are still committed. Only context cancellation returns an
// error; after that the pipeline must be closed, not reused.
func (p *Pipeline[P]) RunEpoch(ctx context.Context, sources []Source, commit func(doc *crawler.Doc, pre P)) (EpochStats, error) {
	var stats EpochStats
	if err := p.renewLeases(); err != nil {
		return stats, err
	}
	var pushed atomic.Int64
	errs := make([]error, len(sources))
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		parallel.ForEach(len(sources), p.cfg.PollParallelism, func(i int) {
			docs, err := sources[i].Poll(ctx)
			errs[i] = err
			// Batch this source's documents into per-shard chunks; each
			// chunk send covers chunkLen documents' worth of channel
			// synchronization.
			pending := make([]*[]item, len(p.in))
			for j := range docs {
				it := item{doc: docs[j], seenWall: time.Now()}
				sh := p.shardOf(&it.doc)
				c := pending[sh]
				if c == nil {
					c = p.itemChunks.Get().(*[]item)
					pending[sh] = c
				}
				*c = append(*c, it)
				if n := len(*c); n >= p.chunkLen {
					// Capture the length first: a sent chunk belongs to the
					// consumer, which may recycle it immediately.
					if p.sendChunk(ctx, sh, c) != nil {
						return // epoch cancelled; the run is aborting
					}
					pushed.Add(int64(n))
					pending[sh] = nil
				}
			}
			for sh, c := range pending {
				if c == nil {
					continue
				}
				n := len(*c)
				if p.sendChunk(ctx, sh, c) != nil {
					return
				}
				pushed.Add(int64(n))
			}
		})
	}()

	// Sequencer: buffer prepared documents until the epoch seals (all
	// polls returned and every pushed document came back prepared).
	var buf []result[P]
	sealed := pollDone
	polling := true
	for polling || int64(len(buf)) < pushed.Load() {
		select {
		case rp := <-p.out:
			p.m.queueSequencer.Add(-float64(len(*rp)))
			buf = append(buf, *rp...)
			*rp = (*rp)[:0]
			p.resChunks.Put(rp)
		case <-sealed:
			polling = false
			sealed = nil // a nil channel never fires again
		case <-ctx.Done():
			<-pollDone // let pollers unwind before the caller tears down
			return stats, ctx.Err()
		case <-p.done:
			return stats, ErrClosed
		}
	}

	// A cancelled epoch never commits: the batch study aborts between
	// poll and process on cancellation, and bit-identity with it demands
	// the same here (a partially-polled day must not fold into the digest).
	if err := ctx.Err(); err != nil {
		return stats, err
	}

	// Commit stage: the exact batch-study order. sort.Slice is unstable,
	// but (Posted, Site, ID) is a total order over unique documents.
	sort.Slice(buf, func(i, j int) bool {
		a, b := &buf[i].it.doc, &buf[j].it.doc
		if !a.Posted.Equal(b.Posted) {
			return a.Posted.Before(b.Posted)
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.ID < b.ID
	})
	for i := range buf {
		p.curSeen = buf[i].it.seenWall
		commit(&buf[i].it.doc, buf[i].pre)
	}
	p.curSeen = time.Time{}
	stats.Committed = len(buf)

	// Alert drain barrier: every EmitAlert from the commits above is
	// delivered before the epoch ends.
	p.alertWG.Wait()

	for i, err := range errs {
		if err != nil {
			stats.Failures = append(stats.Failures, SourceError{Name: sources[i].Name, Err: err})
		}
	}
	p.m.epochs.Inc()
	p.m.docs.Add(float64(len(buf)))
	return stats, nil
}
