package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"doxmeter/internal/crawler"
	"doxmeter/internal/extract"
	"doxmeter/internal/feed"
	"doxmeter/internal/lease"
	"doxmeter/internal/notify"
	"doxmeter/internal/telemetry"
	"doxmeter/internal/watchlist"
)

func doc(site, id string, posted time.Time) crawler.Doc {
	return crawler.Doc{Site: site, ID: id, Body: "body " + id, Posted: posted}
}

func commitOrderKey(d *crawler.Doc) string {
	return d.Posted.Format(time.RFC3339) + "/" + d.Site + "/" + d.ID
}

// TestEpochOrderAndCompleteness: documents arrive from racing polls in
// arbitrary order, yet commit in exactly the batch comparator order, with
// nothing dropped or duplicated.
func TestEpochOrderAndCompleteness(t *testing.T) {
	p := New(Config[int]{
		Shards:          4,
		Buffer:          8,
		PollParallelism: 3,
		Prepare:         func(d *crawler.Doc) int { return len(d.Body) },
	})
	defer p.Close()

	base := time.Unix(1_000_000, 0).UTC()
	var want []string
	mkSource := func(site string, n int) Source {
		docs := make([]crawler.Doc, n)
		for i := 0; i < n; i++ {
			// Deliberately descending times so the sequencer must reorder.
			docs[i] = doc(site, fmt.Sprintf("d%03d", i), base.Add(time.Duration(n-i)*time.Minute))
			want = append(want, commitOrderKey(&docs[i]))
		}
		return Source{Name: site, Poll: func(ctx context.Context) ([]crawler.Doc, error) {
			return docs, nil
		}}
	}
	sources := []Source{mkSource("pastebin", 40), mkSource("4chan/b", 25), mkSource("8ch/pol", 13)}

	var got []string
	stats, err := p.RunEpoch(context.Background(), sources, func(d *crawler.Doc, pre int) {
		if pre != len(d.Body) {
			t.Errorf("prepared payload mismatch for %s/%s", d.Site, d.ID)
		}
		got = append(got, commitOrderKey(d))
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != len(want) || len(stats.Failures) != 0 {
		t.Fatalf("stats = %+v, want %d committed", stats, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("committed %d docs, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("commit order violated at %d: %q then %q", i, got[i-1], got[i])
		}
	}
	seen := make(map[string]bool, len(got))
	for _, k := range got {
		if seen[k] {
			t.Fatalf("duplicate commit %q", k)
		}
		seen[k] = true
	}
	for _, k := range want {
		if !seen[k] {
			t.Fatalf("missing commit %q", k)
		}
	}
}

// TestBackpressure throttles the prepare stage behind a gate far smaller
// than the document count: the bounded channels must block pollers (visible
// in the backpressure counters), never drop a document, and still commit
// everything in order once the gate opens.
func TestBackpressure(t *testing.T) {
	const total = 200
	reg := telemetry.NewRegistry()
	gate := make(chan struct{})
	var prepared sync.WaitGroup
	prepared.Add(1)
	var once sync.Once
	p := New(Config[int]{
		Shards: 2,
		Buffer: 4,
		Prepare: func(d *crawler.Doc) int {
			once.Do(prepared.Done) // first doc reached prepare: queues are filling
			<-gate
			return 1
		},
		Telemetry: reg,
	})
	defer p.Close()

	base := time.Unix(2_000_000, 0).UTC()
	docs := make([]crawler.Doc, total)
	for i := range docs {
		docs[i] = doc("pastebin", fmt.Sprintf("d%04d", i), base.Add(time.Duration(i)*time.Second))
	}
	src := Source{Name: "pastebin", Poll: func(ctx context.Context) ([]crawler.Doc, error) {
		return docs, nil
	}}

	go func() {
		prepared.Wait()
		// Give the poller time to saturate every bounded stage, then check
		// the queues really are bounded while the pipe is jammed.
		time.Sleep(100 * time.Millisecond)
		depth := reg.Sum("doxmeter_stream_queue_depth")
		if depth <= 0 || depth >= total {
			panic(fmt.Sprintf("jammed queue depth = %v, want bounded in (0,%d)", depth, total))
		}
		close(gate)
	}()

	commits := 0
	last := ""
	stats, err := p.RunEpoch(context.Background(), []Source{src}, func(d *crawler.Doc, pre int) {
		k := commitOrderKey(d)
		if k <= last {
			t.Errorf("order violated: %q after %q", k, last)
		}
		last = k
		commits++
	})
	if err != nil {
		t.Fatal(err)
	}
	if commits != total || stats.Committed != total {
		t.Fatalf("committed %d/%d docs", commits, total)
	}
	if bp := reg.Sum("doxmeter_stream_backpressure_total"); bp == 0 {
		t.Fatal("no backpressure recorded despite a jammed prepare stage")
	}
	if depth := reg.Sum("doxmeter_stream_queue_depth"); depth != 0 {
		t.Fatalf("post-epoch queue depth = %v, want 0", depth)
	}
	if reg.Sum("doxmeter_stream_docs_total") != total {
		t.Fatalf("docs counter = %v", reg.Sum("doxmeter_stream_docs_total"))
	}
}

// TestPollFailureDegrades: a failing source reports in Failures while its
// delivered documents and the healthy sources' documents still commit.
func TestPollFailureDegrades(t *testing.T) {
	p := New(Config[struct{}]{
		Shards:  1,
		Prepare: func(d *crawler.Doc) struct{} { return struct{}{} },
	})
	defer p.Close()
	base := time.Unix(3_000_000, 0).UTC()
	bad := errors.New("fetch: boom")
	sources := []Source{
		{Name: "pastebin", Poll: func(ctx context.Context) ([]crawler.Doc, error) {
			return []crawler.Doc{doc("pastebin", "ok", base)}, nil
		}},
		{Name: "4chan/b", Poll: func(ctx context.Context) ([]crawler.Doc, error) {
			// Partial poll: one doc delivered, then the crawl died.
			return []crawler.Doc{doc("4chan/b", "partial", base)}, bad
		}},
	}
	n := 0
	stats, err := p.RunEpoch(context.Background(), sources, func(d *crawler.Doc, _ struct{}) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || stats.Committed != 2 {
		t.Fatalf("committed %d, want 2 (partial polls still commit)", n)
	}
	if len(stats.Failures) != 1 || stats.Failures[0].Name != "4chan/b" || !errors.Is(stats.Failures[0].Err, bad) {
		t.Fatalf("failures = %+v", stats.Failures)
	}
}

// TestCancelledEpochNeverCommits: cancellation mid-poll must abort without
// invoking commit — a partially-polled day must not fold into the digest.
func TestCancelledEpochNeverCommits(t *testing.T) {
	p := New(Config[struct{}]{
		Shards:  1,
		Prepare: func(d *crawler.Doc) struct{} { return struct{}{} },
	})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	src := Source{Name: "pastebin", Poll: func(ctx context.Context) ([]crawler.Doc, error) {
		cancel()
		return []crawler.Doc{doc("pastebin", "x", time.Unix(0, 0))}, nil
	}}
	_, err := p.RunEpoch(ctx, []Source{src}, func(d *crawler.Doc, _ struct{}) {
		t.Error("cancelled epoch committed a document")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAlertFanoutOrderAndDrain: alerts emitted from commits are delivered
// in commit order, all before RunEpoch returns.
func TestAlertFanoutOrderAndDrain(t *testing.T) {
	var delivered []string
	var p *Pipeline[struct{}]
	p = New(Config[struct{}]{
		Shards:  3,
		Buffer:  2,
		Prepare: func(d *crawler.Doc) struct{} { return struct{}{} },
		Deliver: func(d Detection) {
			time.Sleep(time.Millisecond) // slow consumer: exercises the commit-stage backpressure path
			delivered = append(delivered, d.DocID)
		},
	})
	defer p.Close()
	base := time.Unix(4_000_000, 0).UTC()
	docs := make([]crawler.Doc, 30)
	for i := range docs {
		docs[i] = doc("pastebin", fmt.Sprintf("d%02d", i), base)
	}
	src := Source{Name: "pastebin", Poll: func(ctx context.Context) ([]crawler.Doc, error) {
		return docs, nil
	}}
	_, err := p.RunEpoch(context.Background(), []Source{src}, func(d *crawler.Doc, _ struct{}) {
		p.EmitAlert(Detection{Site: d.Site, DocID: d.ID, SeenAt: d.Posted})
	})
	if err != nil {
		t.Fatal(err)
	}
	// RunEpoch returned, so the drain barrier guarantees `delivered` is
	// complete and no goroutine touches it anymore.
	if len(delivered) != len(docs) {
		t.Fatalf("delivered %d alerts, want %d", len(delivered), len(docs))
	}
	for i := range delivered {
		if want := fmt.Sprintf("d%02d", i); delivered[i] != want {
			t.Fatalf("alert %d = %q, want %q (commit order)", i, delivered[i], want)
		}
	}
}

func TestFanoutDeliver(t *testing.T) {
	svc := notify.NewService("salt")
	svc.Subscribe("victim", notify.KindEmail, "victim@mail.com")
	now := time.Unix(5_000_000, 0).UTC()
	wl := watchlist.New(0, func() time.Time { return now })
	log := feed.NewLog()
	f := &Fanout{Notify: svc, Watchlist: wl, Feed: log}

	text := "Name: Jane Doe\nEmail: victim@mail.com\nPhone: 312-555-0142\nAddress: 42 Elm St, Chicago IL\nTwitter: janed"
	ex := extract.Extract(text)
	f.Deliver(Detection{
		Site: "pastebin", DocID: "abc", SeenAt: now,
		Extraction: ex, AddressLine: AddressLine(text),
	})

	if svc.Pending("victim") != 1 {
		t.Errorf("notify pending = %d", svc.Pending("victim"))
	}
	if _, listed := wl.CheckAddress("42 Elm St, Chicago IL"); !listed {
		t.Error("address not watchlisted")
	}
	if _, listed := wl.CheckPhone("312-555-0142"); !listed {
		t.Error("phone not watchlisted")
	}
	evs, err := log.After(0, 0)
	if err != nil || len(evs) != 1 || evs[0].Site != "pastebin" {
		t.Errorf("feed events = %v, err %v", evs, err)
	}
	if !strings.Contains(evs[0].URL, "abc") {
		t.Errorf("feed URL = %q", evs[0].URL)
	}

	// All-nil fanout is a no-op, not a panic.
	(&Fanout{}).Deliver(Detection{Extraction: ex})
	if (&Fanout{}).Janitor() != 0 {
		t.Error("nil-watchlist janitor purged something")
	}
}

func TestAddressLine(t *testing.T) {
	cases := []struct{ text, want string }{
		{"Name: X\nAddress: 42 Elm St\nPhone: 1", "42 Elm St"},
		{"Lives at: 9 Oak Ave", "9 Oak Ave"},
		{"no address here", ""},
		{"Address: trailing line", "trailing line"},
	}
	for _, c := range cases {
		if got := AddressLine(c.text); got != c.want {
			t.Errorf("AddressLine(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}

// TestPipelineReuseAcrossEpochs: stage goroutines persist; consecutive
// epochs on one pipeline stay ordered and complete.
func TestPipelineReuseAcrossEpochs(t *testing.T) {
	p := New(Config[struct{}]{
		Shards:  2,
		Prepare: func(d *crawler.Doc) struct{} { return struct{}{} },
	})
	defer p.Close()
	base := time.Unix(6_000_000, 0).UTC()
	for epoch := 0; epoch < 5; epoch++ {
		docs := make([]crawler.Doc, 17)
		for i := range docs {
			docs[i] = doc("pastebin", fmt.Sprintf("e%dd%02d", epoch, i), base.Add(time.Duration(i)*time.Second))
		}
		src := Source{Name: "pastebin", Poll: func(ctx context.Context) ([]crawler.Doc, error) {
			return docs, nil
		}}
		n := 0
		stats, err := p.RunEpoch(context.Background(), []Source{src}, func(d *crawler.Doc, _ struct{}) { n++ })
		if err != nil || n != len(docs) || stats.Committed != len(docs) {
			t.Fatalf("epoch %d: committed %d err %v", epoch, n, err)
		}
	}
}

// TestClosedPipeline: RunEpoch on a closed pipeline errors cleanly.
func TestClosedPipeline(t *testing.T) {
	p := New(Config[struct{}]{Shards: 1, Prepare: func(d *crawler.Doc) struct{} { return struct{}{} }})
	p.Close()
	p.Close() // idempotent
	src := Source{Name: "s", Poll: func(ctx context.Context) ([]crawler.Doc, error) {
		return []crawler.Doc{doc("s", "x", time.Unix(0, 0))}, nil
	}}
	if _, err := p.RunEpoch(context.Background(), []Source{src}, func(*crawler.Doc, struct{}) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestShardLeases: prepare shards hold their ownership keys across
// epochs, a second live pipeline is refused, and a successor takes over
// once the first stops renewing (crash) or releases (clean shutdown).
func TestShardLeases(t *testing.T) {
	q, err := lease.New(48 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(7_000_000, 0).UTC()
	now := func() time.Time { return clock }
	newPipe := func() *Pipeline[struct{}] {
		return New(Config[struct{}]{
			Shards:  3,
			Prepare: func(d *crawler.Doc) struct{} { return struct{}{} },
		})
	}
	p := newPipe()
	if err := p.AttachLeases(q, 1, now); err != nil {
		t.Fatal(err)
	}
	st := q.Snapshot()
	if len(st.Keys) != 3 || st.Keys[0] != ShardLeaseKey(0) {
		t.Fatalf("lease keys = %v", st.Keys)
	}

	// A second live pipeline on the same queue epoch must be refused.
	rival := newPipe()
	if err := rival.AttachLeases(q, 1, now); err == nil {
		t.Fatal("rival pipeline acquired live shard leases")
	}
	rival.Close()

	// Epochs renew the leases: advance the clock a day at a time, well past
	// the original TTL in total; the renewals keep ownership.
	src := Source{Name: "s", Poll: func(ctx context.Context) ([]crawler.Doc, error) {
		return []crawler.Doc{doc("s", "x", clock)}, nil
	}}
	for i := 0; i < 5; i++ {
		clock = clock.Add(24 * time.Hour)
		if _, err := p.RunEpoch(context.Background(), []Source{src}, func(*crawler.Doc, struct{}) {}); err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
	}
	if err := rivalAttach(q, now); err == nil {
		t.Fatal("renewed leases were stealable")
	}

	// Crash: the pipeline stops renewing. After the TTL its keys lapse and
	// a successor (new epoch) takes over.
	p.Close() // no release — simulated crash
	clock = clock.Add(72 * time.Hour)
	succ := newPipe()
	defer succ.Close()
	if err := succ.AttachLeases(q, 2, now); err != nil {
		t.Fatalf("successor after crash: %v", err)
	}

	// Clean shutdown: release marks the keys done.
	succ.ReleaseLeases()
	st = q.Snapshot()
	if len(st.Done) != 3 {
		t.Fatalf("released leases: done = %v", st.Done)
	}
}

// rivalAttach tries to attach a throwaway pipeline to q's current epoch.
func rivalAttach(q *lease.Queue, now func() time.Time) error {
	r := New(Config[struct{}]{Shards: 3, Prepare: func(d *crawler.Doc) struct{} { return struct{}{} }})
	defer r.Close()
	return r.AttachLeases(q, q.Epoch(), now)
}
