package stream

import "doxmeter/internal/telemetry"

// metrics holds the pipeline's pre-resolved instruments. Every field is
// nil-safe (a nil registry yields nil instruments whose methods are
// no-ops), keeping the hot paths branch-free.
type metrics struct {
	queuePrepare   *telemetry.Gauge // documents waiting in shard inputs
	queueSequencer *telemetry.Gauge // prepared documents awaiting the sequencer
	queueAlert     *telemetry.Gauge // alerts awaiting the fan-out worker

	bpPoll    *telemetry.Counter // poller blocked on a full shard
	bpPrepare *telemetry.Counter // shard blocked on a full sequencer queue
	bpCommit  *telemetry.Counter // commit blocked on a full alert queue

	stallPoll    *telemetry.Histogram
	stallPrepare *telemetry.Histogram
	stallCommit  *telemetry.Histogram

	alertLatency *telemetry.Histogram // paste-seen → alert-delivered, wall time
	epochs       *telemetry.Counter
	docs         *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	m := &metrics{}
	if reg == nil {
		return m
	}
	queue := reg.NewGauge("doxmeter_stream_queue_depth",
		"Documents or alerts queued per pipeline stage.", "stage")
	m.queuePrepare = queue.With("prepare")
	m.queueSequencer = queue.With("sequencer")
	m.queueAlert = queue.With("alert")
	bp := reg.NewCounter("doxmeter_stream_backpressure_total",
		"Blocking sends into a saturated downstream stage, by the stage that blocked.", "stage")
	m.bpPoll = bp.With("poll")
	m.bpPrepare = bp.With("prepare")
	m.bpCommit = bp.With("commit")
	stall := reg.NewHistogram("doxmeter_stream_stall_seconds",
		"Time spent blocked on a saturated downstream stage.", nil, "stage")
	m.stallPoll = stall.With("poll")
	m.stallPrepare = stall.With("prepare")
	m.stallCommit = stall.With("commit")
	m.alertLatency = reg.NewHistogram("doxmeter_alert_latency_seconds",
		"End-to-end wall latency from a document entering the pipeline to its alert being delivered.",
		nil).With()
	m.epochs = reg.NewCounter("doxmeter_stream_epochs_total",
		"Pipeline epochs (virtual-clock ticks) completed.").With()
	m.docs = reg.NewCounter("doxmeter_stream_docs_total",
		"Documents committed through the streaming pipeline.").With()
	return m
}
