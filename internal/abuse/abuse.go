// Package abuse is a lexicon-based abusive-comment detector.
//
// The paper's initial plan for measuring filter effectiveness was to count
// abusive comments on doxed accounts (§6.3); the authors abandoned it
// because community norms made labeling unreliable, and fell back to
// account-status changes. We reproduce the abandoned approach as a simple,
// transparent baseline: a harassment lexicon with phrase weights and a
// threshold. On the simulated comment streams — where harassment is
// explicit — it performs well, which is exactly the gap the paper calls
// out: real community-specific abuse is far subtler than lexicons capture.
package abuse

import (
	"strings"
)

// phrase weights: higher means stronger harassment signal. Phrases are
// matched case-insensitively on whole substrings.
var lexicon = map[string]float64{
	// Dox-contextual threats.
	"we know where you live": 3,
	"cant hide":              2.5,
	"can't hide":             2.5,
	"check pastebin":         3,
	"your number is":         2.5,
	"kept your mouth shut":   2,
	"new fame":               1.5,
	"kicking in":             1.5,
	// Generic harassment.
	"delete your account": 2,
	"kill yourself":       3,
	"nobody likes you":    2,
	"watch your back":     3,
	"you deserve":         1.5,
	"everyone knows":      1.5,
	// Mild pile-on signals.
	"lol":   0.3,
	"loser": 1,
}

// DefaultThreshold is the abusive/benign decision boundary.
const DefaultThreshold = 1.5

// Score sums lexicon weights present in the comment.
func Score(comment string) float64 {
	lower := strings.ToLower(comment)
	var total float64
	for phrase, w := range lexicon {
		if strings.Contains(lower, phrase) {
			total += w
		}
	}
	return total
}

// IsAbusive applies the default threshold.
func IsAbusive(comment string) bool {
	return Score(comment) >= DefaultThreshold
}

// Stats aggregates abuse measurements over a comment set.
type Stats struct {
	Total   int
	Abusive int
}

// Rate returns the abusive fraction.
func (s Stats) Rate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Abusive) / float64(s.Total)
}

// Measure classifies a batch of comments.
func Measure(comments []string) Stats {
	var s Stats
	for _, c := range comments {
		s.Total++
		if IsAbusive(c) {
			s.Abusive++
		}
	}
	return s
}
