package abuse

import (
	"testing"

	"doxmeter/internal/netid"
	"doxmeter/internal/osn"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
)

func TestObviousHarassment(t *testing.T) {
	abusive := []string{
		"we know where you live now",
		"you cant hide anymore",
		"check pastebin everyone knows",
		"your number is everywhere now, delete your account",
		"watch your back loser",
	}
	for _, c := range abusive {
		if !IsAbusive(c) {
			t.Errorf("harassment not detected: %q (score %.1f)", c, Score(c))
		}
	}
}

func TestBenignComments(t *testing.T) {
	benign := []string{
		"nice shot", "love this", "where is this?", "happy birthday!!",
		"what camera do you use", "goals", "first", "sick edit",
	}
	for _, c := range benign {
		if IsAbusive(c) {
			t.Errorf("benign comment flagged: %q (score %.1f)", c, Score(c))
		}
	}
}

func TestMildSignalsBelowThreshold(t *testing.T) {
	if IsAbusive("lol") {
		t.Error("single mild signal should stay below threshold")
	}
}

func TestCaseInsensitive(t *testing.T) {
	if !IsAbusive("WE KNOW WHERE YOU LIVE") {
		t.Error("uppercase harassment missed")
	}
}

func TestMeasure(t *testing.T) {
	s := Measure([]string{"nice shot", "we know where you live", "love this"})
	if s.Total != 3 || s.Abusive != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Rate() < 0.3 || s.Rate() > 0.34 {
		t.Fatalf("rate = %f", s.Rate())
	}
	if (Stats{}).Rate() != 0 {
		t.Error("empty rate should be 0")
	}
}

// TestAgainstUniverseGroundTruth checks the detector against the simulated
// comment streams: abusive comments (planted post-dox) must score far
// higher than organic ones.
func TestAgainstUniverseGroundTruth(t *testing.T) {
	w := sim.NewWorld(sim.Default(91, 0.2))
	clock := simclock.NewClock(simclock.Period1.Start)
	u := osn.NewUniverse(clock, w, 91)
	doxAt := simclock.Period1.Start.Add(simclock.Day)
	var tp, fn, fp, tn int
	for _, v := range w.Victims {
		user, ok := v.OSN[netid.Facebook]
		if !ok {
			continue
		}
		ref := netid.Ref{Network: netid.Facebook, Username: user}
		u.TriggerAbuse(ref, doxAt)
		a, _ := u.Lookup(ref)
		for _, c := range a.CommentsAt(simclock.Period2.End) {
			pred := IsAbusive(c.Text)
			switch {
			case c.Abusive && pred:
				tp++
			case c.Abusive && !pred:
				fn++
			case !c.Abusive && pred:
				fp++
			default:
				tn++
			}
		}
	}
	if tp+fn < 100 {
		t.Fatalf("too few abusive comments generated: %d", tp+fn)
	}
	recall := float64(tp) / float64(tp+fn)
	if recall < 0.7 {
		t.Errorf("abuse recall %.3f on explicit harassment", recall)
	}
	if fp > 0 {
		precision := float64(tp) / float64(tp+fp)
		if precision < 0.9 {
			t.Errorf("abuse precision %.3f", precision)
		}
	}
}
