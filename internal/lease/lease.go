// Package lease is the work-queue layer that lets N pipeline worker
// groups partition one logical study without overlap.
//
// A Queue holds a set of keyed work items (one per source poll, prepare
// shard, or monitor shard) and hands each out under a lease: a worker
// Acquires an item, optionally Renews it while working, and Releases it
// when the result is committed. Leases expire — a worker that crashes
// while holding one simply stops renewing, and after the TTL the item
// becomes stealable. Steal order is deterministic: Acquire always grants
// the lowest available key, so given the same sequence of (worker, now)
// calls, every run distributes work identically.
//
// The queue never reads a wall clock. Every operation takes an explicit
// `now`, which in studies is a round counter layered on the frozen
// intra-day virtual clock — expiry is therefore a pure function of the
// call sequence, which is what keeps sharded runs bit-identical across
// worker kills (see DESIGN.md, "Sharded execution").
//
// State is checkpointable: Snapshot captures the epoch and which items
// are done; in-flight leases are deliberately NOT persisted — a lease is
// a claim by a live worker, and no worker survives a process restart.
package lease

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

var (
	// ErrLeaseLost is returned by Renew and Release when the presented
	// lease is no longer valid: it expired, or the item was stolen by
	// another worker (which bumps the generation).
	ErrLeaseLost = errors.New("lease: lease lost")
	// ErrUnknownKey is returned when a lease references a key the queue
	// does not hold in the current epoch.
	ErrUnknownKey = errors.New("lease: unknown key")
)

// Status is the lifecycle state of one work item.
type Status int

const (
	// Pending items are available for Acquire.
	Pending Status = iota
	// Leased items are held by a worker; they become stealable once the
	// lease expires.
	Leased
	// Done items have been released successfully and will not be granted
	// again this epoch.
	Done
)

func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Leased:
		return "leased"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Lease is a worker's claim on one item. The zero value is invalid.
// Leases are value types: a stale copy (after expiry or steal) fails
// Renew/Release with ErrLeaseLost.
type Lease struct {
	// Key is the work item this lease covers.
	Key string
	// Holder is the worker index the lease was granted to.
	Holder int
	gen uint64
}

// Event describes one lease-state transition worth auditing (currently
// steals). The study driver appends these to the store commit log.
type Event struct {
	Key  string // work item
	From int    // worker that lost the lease
	To   int    // worker that took it
	Gen  uint64 // new generation after the steal
}

type record struct {
	status Status
	holder int
	gen    uint64
	expiry time.Time
}

// Queue is a deterministic lease/work queue. All methods are safe for
// concurrent use; determinism additionally requires that Acquire calls
// happen in a deterministic order (the study driver acquires on one
// goroutine, in worker order, per scheduling round).
type Queue struct {
	mu       sync.Mutex
	ttl      time.Duration
	epoch    int
	items    map[string]*record
	order    []string // sorted keys of items
	steals   int64
	expiries int64
	recorder func(Event)
}

// New returns an empty queue whose leases expire ttl after the `now` they
// were granted or last renewed at. ttl must be positive.
func New(ttl time.Duration) (*Queue, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("lease: ttl must be positive, got %v", ttl)
	}
	return &Queue{ttl: ttl, items: map[string]*record{}}, nil
}

// SetRecorder installs a callback invoked (synchronously, under the queue
// lock) for every audit-worthy lease event. Pass nil to disable.
func (q *Queue) SetRecorder(fn func(Event)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.recorder = fn
}

// BeginEpoch replaces the queue's work items. Keys are deduplicated and
// held in sorted order regardless of argument order. If epoch equals the
// queue's current epoch (the restore path), items already marked done
// keep that status; any other epoch starts every item pending.
func (q *Queue) BeginEpoch(epoch int, keys []string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	keepDone := map[string]bool{}
	if epoch == q.epoch {
		for k, r := range q.items {
			if r.status == Done {
				keepDone[k] = true
			}
		}
	}
	q.epoch = epoch
	q.items = make(map[string]*record, len(keys))
	q.order = q.order[:0]
	for _, k := range keys {
		if _, dup := q.items[k]; dup {
			continue
		}
		r := &record{status: Pending}
		if keepDone[k] {
			r.status = Done
		}
		q.items[k] = r
		q.order = append(q.order, k)
	}
	sort.Strings(q.order)
}

// Acquire grants the lowest-keyed available item to holder: a pending
// item, or a leased item whose lease has expired (a steal, which bumps
// the generation so the previous holder's lease handle dies). It returns
// false when nothing is available at now.
func (q *Queue) Acquire(holder int, now time.Time) (Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, k := range q.order {
		r := q.items[k]
		if l, ok := q.grant(k, r, holder, now); ok {
			return l, true
		}
	}
	return Lease{}, false
}

// AcquireKey grants one specific item to holder, under the same rules as
// Acquire (pending, or expired-lease steal). Stream prepare shards use
// this: shard i owns exactly the item "prepare/<i>".
func (q *Queue) AcquireKey(key string, holder int, now time.Time) (Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	r, ok := q.items[key]
	if !ok {
		return Lease{}, false
	}
	return q.grant(key, r, holder, now)
}

// grant is the common Acquire/AcquireKey body. Caller holds q.mu.
func (q *Queue) grant(key string, r *record, holder int, now time.Time) (Lease, bool) {
	switch r.status {
	case Pending:
	case Leased:
		if now.Before(r.expiry) {
			return Lease{}, false // validly held: double-acquire rejected
		}
		// Expired: steal. Bump the generation so the old handle dies.
		q.steals++
		q.expiries++
		if q.recorder != nil {
			q.recorder(Event{Key: key, From: r.holder, To: holder, Gen: r.gen + 1})
		}
	default: // Done
		return Lease{}, false
	}
	r.status = Leased
	r.holder = holder
	r.gen++
	r.expiry = now.Add(q.ttl)
	return Lease{Key: key, Holder: holder, gen: r.gen}, true
}

// Renew extends l's expiry to now+ttl. It fails with ErrLeaseLost if the
// lease expired (even if nobody stole it yet) or was stolen.
func (q *Queue) Renew(l Lease, now time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	r, err := q.validate(l, now)
	if err != nil {
		return err
	}
	r.expiry = now.Add(q.ttl)
	return nil
}

// Release marks l's item done. A release after expiry fails with
// ErrLeaseLost and the item stays stealable: once a lease has lapsed the
// worker must assume another worker owns (or will own) the item, and its
// result must be discarded.
func (q *Queue) Release(l Lease, now time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	r, err := q.validate(l, now)
	if err != nil {
		return err
	}
	r.status = Done
	return nil
}

// validate resolves l to its live record. Caller holds q.mu.
func (q *Queue) validate(l Lease, now time.Time) (*record, error) {
	r, ok := q.items[l.Key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKey, l.Key)
	}
	if r.status != Leased || r.gen != l.gen || r.holder != l.Holder {
		return nil, fmt.Errorf("%w: %q (stolen or already released)", ErrLeaseLost, l.Key)
	}
	if !now.Before(r.expiry) {
		// Lapsed but not yet stolen: return it to the pool.
		r.status = Pending
		q.expiries++
		return nil, fmt.Errorf("%w: %q (expired)", ErrLeaseLost, l.Key)
	}
	return r, nil
}

// AllDone reports whether every item in the current epoch is done.
func (q *Queue) AllDone() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, r := range q.items {
		if r.status != Done {
			return false
		}
	}
	return true
}

// Remaining returns how many items are not yet done.
func (q *Queue) Remaining() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, r := range q.items {
		if r.status != Done {
			n++
		}
	}
	return n
}

// Steals returns how many leases have been stolen from expired holders
// over the queue's lifetime.
func (q *Queue) Steals() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.steals
}

// Expiries returns how many leases have lapsed (stolen or returned to
// the pool at a failed Release/Renew) over the queue's lifetime.
func (q *Queue) Expiries() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.expiries
}

// Epoch returns the current epoch number.
func (q *Queue) Epoch() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.epoch
}

// State is the checkpointable image of a queue: the epoch, the item
// keys, and which of them are done. Leases are not persisted — they are
// claims by live workers, and no worker survives a restart; on restore
// every non-done item is pending again.
type State struct {
	Epoch  int      `json:"epoch"`
	Keys   []string `json:"keys,omitempty"`
	Done   []string `json:"done,omitempty"`
	Steals int64    `json:"steals,omitempty"`
}

// Snapshot captures the queue state for a checkpoint.
func (q *Queue) Snapshot() State {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := State{Epoch: q.epoch, Steals: q.steals}
	for _, k := range q.order {
		st.Keys = append(st.Keys, k)
		if q.items[k].status == Done {
			st.Done = append(st.Done, k)
		}
	}
	return st
}

// Restore replaces the queue state with a snapshot: items in st.Done are
// done, every other key is pending, and no leases are outstanding.
func (q *Queue) Restore(st State) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.epoch = st.Epoch
	q.steals = st.Steals
	q.items = make(map[string]*record, len(st.Keys))
	q.order = q.order[:0]
	done := make(map[string]bool, len(st.Done))
	for _, k := range st.Done {
		done[k] = true
	}
	for _, k := range st.Keys {
		if _, dup := q.items[k]; dup {
			continue
		}
		r := &record{status: Pending}
		if done[k] {
			r.status = Done
		}
		q.items[k] = r
		q.order = append(q.order, k)
	}
	sort.Strings(q.order)
}
