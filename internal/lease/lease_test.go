package lease

import (
	"errors"
	"testing"
	"time"
)

var t0 = time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

func newQueue(t *testing.T, ttl time.Duration, keys ...string) *Queue {
	t.Helper()
	q, err := New(ttl)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q.BeginEpoch(1, keys)
	return q
}

func TestNewRejectsBadTTL(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) should fail")
	}
	if _, err := New(-time.Second); err == nil {
		t.Fatal("New(<0) should fail")
	}
}

// Acquire grants the lowest available key, so work distribution is a
// pure function of the (worker, now) call sequence.
func TestAcquireGrantsLowestKey(t *testing.T) {
	q := newQueue(t, 3*time.Second, "c", "a", "b")
	order := []string{}
	for w := 0; w < 3; w++ {
		l, ok := q.Acquire(w, at(0))
		if !ok {
			t.Fatalf("worker %d: no grant", w)
		}
		if l.Holder != w {
			t.Fatalf("holder = %d, want %d", l.Holder, w)
		}
		order = append(order, l.Key)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("grant order = %v, want [a b c]", order)
	}
	if _, ok := q.Acquire(3, at(0)); ok {
		t.Fatal("acquire with all items leased should fail")
	}
}

// A validly held item cannot be acquired again — by anyone — until the
// lease expires.
func TestDoubleAcquireRejected(t *testing.T) {
	q := newQueue(t, 3*time.Second, "only")
	if _, ok := q.Acquire(0, at(0)); !ok {
		t.Fatal("first acquire failed")
	}
	for _, w := range []int{0, 1} {
		if _, ok := q.Acquire(w, at(2)); ok {
			t.Fatalf("worker %d acquired a validly leased item", w)
		}
	}
	if got := q.Steals(); got != 0 {
		t.Fatalf("steals = %d, want 0", got)
	}
}

// Expiry is driven entirely by the `now` arguments: a virtual-clock skip
// past the TTL makes the item stealable, and steals are deterministic —
// lowest key first, generation bumped so the old handle dies.
func TestExpiryUnderClockSkipsAndStealOrder(t *testing.T) {
	q := newQueue(t, 3*time.Second, "a", "b")
	la, _ := q.Acquire(0, at(0))
	lb, _ := q.Acquire(0, at(0))
	if la.Key != "a" || lb.Key != "b" {
		t.Fatalf("setup grants = %q,%q", la.Key, lb.Key)
	}

	// Not yet expired at +2s.
	if _, ok := q.Acquire(1, at(2)); ok {
		t.Fatal("stole before expiry")
	}
	// The clock skips straight past both expiries (virtual clocks jump
	// day gaps); both items become stealable, lowest key first.
	var events []Event
	q.SetRecorder(func(e Event) { events = append(events, e) })
	s1, ok := q.Acquire(1, at(60))
	if !ok || s1.Key != "a" {
		t.Fatalf("first steal = %q (ok=%v), want a", s1.Key, ok)
	}
	s2, ok := q.Acquire(2, at(60))
	if !ok || s2.Key != "b" {
		t.Fatalf("second steal = %q (ok=%v), want b", s2.Key, ok)
	}
	if q.Steals() != 2 {
		t.Fatalf("steals = %d, want 2", q.Steals())
	}
	if len(events) != 2 || events[0] != (Event{Key: "a", From: 0, To: 1, Gen: 2}) {
		t.Fatalf("events = %+v", events)
	}

	// The original handles are dead.
	if err := q.Renew(la, at(61)); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renew of stolen lease: %v, want ErrLeaseLost", err)
	}
	if err := q.Release(lb, at(61)); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("release of stolen lease: %v, want ErrLeaseLost", err)
	}
	// The thieves' handles work.
	if err := q.Release(s1, at(61)); err != nil {
		t.Fatalf("thief release: %v", err)
	}
	if err := q.Release(s2, at(61)); err != nil {
		t.Fatalf("thief release: %v", err)
	}
	if !q.AllDone() {
		t.Fatal("queue should be done")
	}
}

// Renewing keeps a lease alive past its original expiry.
func TestRenewExtends(t *testing.T) {
	q := newQueue(t, 3*time.Second, "k")
	l, _ := q.Acquire(0, at(0))
	if err := q.Renew(l, at(2)); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if _, ok := q.Acquire(1, at(4)); ok {
		t.Fatal("stole a renewed lease before its extended expiry")
	}
	if err := q.Release(l, at(4)); err != nil {
		t.Fatalf("release after renew: %v", err)
	}
}

// A release after expiry fails — the worker must discard its result —
// and the item returns to the pool.
func TestReleaseAfterExpiry(t *testing.T) {
	q := newQueue(t, 3*time.Second, "k")
	l, _ := q.Acquire(0, at(0))
	if err := q.Release(l, at(3)); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("release at expiry: %v, want ErrLeaseLost", err)
	}
	if q.AllDone() {
		t.Fatal("item must not be done after failed release")
	}
	// Back in the pool as pending — next acquire is a grant, not a steal.
	l2, ok := q.Acquire(1, at(3))
	if !ok {
		t.Fatal("item should be acquirable after lapsed release")
	}
	if q.Steals() != 0 {
		t.Fatalf("steals = %d, want 0 (lapse is not a steal)", q.Steals())
	}
	if err := q.Release(l2, at(4)); err != nil {
		t.Fatalf("second release: %v", err)
	}
	if q.Expiries() != 1 {
		t.Fatalf("expiries = %d, want 1", q.Expiries())
	}
}

// A done item is never granted again within its epoch, and a stale
// handle for it fails.
func TestDoneStaysDone(t *testing.T) {
	q := newQueue(t, 3*time.Second, "k")
	l, _ := q.Acquire(0, at(0))
	if err := q.Release(l, at(1)); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, ok := q.Acquire(1, at(100)); ok {
		t.Fatal("acquired a done item")
	}
	if err := q.Release(l, at(1)); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("double release: %v, want ErrLeaseLost", err)
	}
}

func TestAcquireKey(t *testing.T) {
	q := newQueue(t, 3*time.Second, "prepare/0", "prepare/1")
	l1, ok := q.AcquireKey("prepare/1", 1, at(0))
	if !ok || l1.Key != "prepare/1" {
		t.Fatalf("AcquireKey(prepare/1) = %q, ok=%v", l1.Key, ok)
	}
	if _, ok := q.AcquireKey("prepare/1", 2, at(1)); ok {
		t.Fatal("AcquireKey double-acquire should fail")
	}
	if _, ok := q.AcquireKey("nope", 0, at(0)); ok {
		t.Fatal("AcquireKey of unknown key should fail")
	}
	// Lowest-key Acquire skips the held key and grants prepare/0.
	l0, ok := q.Acquire(0, at(1))
	if !ok || l0.Key != "prepare/0" {
		t.Fatalf("Acquire = %q, ok=%v", l0.Key, ok)
	}
}

func TestUnknownKeyError(t *testing.T) {
	q := newQueue(t, time.Second, "a")
	l, _ := q.Acquire(0, at(0))
	q.BeginEpoch(2, []string{"b"})
	if err := q.Release(l, at(0)); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("release across epochs: %v, want ErrUnknownKey", err)
	}
}

// BeginEpoch with the same epoch (the restore path) keeps done statuses;
// a new epoch resets everything to pending.
func TestEpochsAndSnapshotRestore(t *testing.T) {
	q := newQueue(t, 3*time.Second, "a", "b", "c")
	la, _ := q.Acquire(0, at(0))
	if err := q.Release(la, at(1)); err != nil {
		t.Fatalf("release: %v", err)
	}
	lb, _ := q.Acquire(1, at(1)) // leased, never released

	st := q.Snapshot()
	if st.Epoch != 1 || len(st.Keys) != 3 || len(st.Done) != 1 || st.Done[0] != "a" {
		t.Fatalf("snapshot = %+v", st)
	}

	q2, err := New(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	q2.Restore(st)
	// The in-flight lease on b did not survive: b is pending again.
	if err := q2.Release(lb, at(2)); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale lease after restore: %v, want ErrLeaseLost", err)
	}
	if got, ok := q2.Acquire(0, at(2)); !ok || got.Key != "b" {
		t.Fatalf("post-restore acquire = %q, ok=%v, want b", got.Key, ok)
	}
	// Same-epoch BeginEpoch keeps a done.
	q2.BeginEpoch(st.Epoch, []string{"a", "b", "c"})
	if got, ok := q2.Acquire(0, at(3)); !ok || got.Key != "b" {
		t.Fatalf("same-epoch acquire = %q, ok=%v, want b (a is done)", got.Key, ok)
	}
	// New epoch resets all.
	q2.BeginEpoch(st.Epoch+1, []string{"a", "b"})
	if got, ok := q2.Acquire(0, at(4)); !ok || got.Key != "a" {
		t.Fatalf("new-epoch acquire = %q, ok=%v, want a", got.Key, ok)
	}
	if q2.Remaining() != 2 {
		t.Fatalf("remaining = %d, want 2", q2.Remaining())
	}
}

func TestShardOf(t *testing.T) {
	if ShardOf("anything", 1) != 0 || ShardOf("x", 0) != 0 {
		t.Fatal("n<=1 must route to shard 0")
	}
	// Stable routing: same key, same shard, every time.
	for _, n := range []int{2, 4, 8} {
		a := ShardOf("pastebin/abc123", n)
		if a < 0 || a >= n {
			t.Fatalf("ShardOf out of range: %d of %d", a, n)
		}
		if b := ShardOf("pastebin/abc123", n); b != a {
			t.Fatalf("unstable routing: %d then %d", a, b)
		}
	}
	// Spot-check the FNV-1a value against an independent computation so
	// the routing function can't drift silently.
	if got := ShardOf("a", 4); got != int(uint32(0xe40c292c)%4) {
		t.Fatalf("ShardOf(a,4) = %d", got)
	}
}
