package lease

import "hash/fnv"

// ShardOf routes key to one of n shards by FNV-1a hash — the same
// key-hash the streaming pipeline uses for its prepare shards (a
// document's key there is site+"/"+id). Dedup indexes, monitor
// schedules, and the sharded study's prepare partition all route through
// this one function so a key always lives in exactly one shard for a
// given n, independent of worker count or timing.
func ShardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}
