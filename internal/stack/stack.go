// Package stack assembles the full simulated serving stack — world, corpus,
// virtual clock, the text-sharing sites, the OSN profile service, optional
// per-service fault injectors and the admin endpoints — behind a single
// http.Handler. cmd/doxsites serves it on a port for interactive
// exploration; cmd/doxload embeds it in-process for self-hosted load runs.
// Both therefore expose byte-identical route layouts and fault behaviour.
package stack

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"doxmeter/internal/faults"
	"doxmeter/internal/osn"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
	"doxmeter/internal/sites"
	"doxmeter/internal/telemetry"
	"doxmeter/internal/textgen"
)

// Config parameterizes one stack.
type Config struct {
	Seed  int64
	Scale float64 // corpus scale factor; <= 0 means 0.01
	// Faults, when non-nil, wraps every service in a deterministic fault
	// injector (independently seeded per service, like the pipeline's
	// chaos runs).
	Faults *faults.Profile
	// Telemetry, when non-nil, instruments every service with per-route
	// doxmeter_http_* series and the injectors with doxmeter_fault_*.
	Telemetry *telemetry.Hub
}

// Stack is one assembled serving stack.
type Stack struct {
	Clock    *simclock.Clock
	World    *sim.World
	Corpus   *textgen.Corpus
	Universe *osn.Universe
	Pastebin *sites.Pastebin
	Fourchan *sites.BoardSite
	Eightch  *sites.BoardSite
	// Injectors maps service name (pastebin, fourchan, eightch, osn) to
	// its fault injector; empty without Config.Faults.
	Injectors map[string]*faults.Injector
	// Mux serves every site under its prefix plus the admin endpoints:
	//
	//	/pastebin/api_scraping.php?since=0&limit=50
	//	/pastebin/api_scrape_item.php?i=<key>
	//	/4chan/{b,pol}/catalog.json        /4chan/{b,pol}/thread/<no>.json
	//	/8ch/{pol,baphomet}/...
	//	/osn/{network}/{username}          /osn/instagram/id/<n>
	//	/admin/clock                       — current virtual time
	//	/admin/advance?days=7              — move the clock forward
	//	/admin/faults                      — injection counters per service
	//	/admin/accounts?limit=500          — "network/username" lines for
	//	                                     load-generator target harvesting
	Mux *http.ServeMux
}

// New builds the world and wires every service into Mux. Deterministic for
// a fixed (Seed, Scale): the same corpus, thread numbers and account
// population every time.
func New(cfg Config) *Stack {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.01
	}
	st := &Stack{
		Clock:     simclock.NewClock(simclock.Period1.Start),
		Injectors: map[string]*faults.Injector{},
	}
	st.World = sim.NewWorld(sim.Default(cfg.Seed, cfg.Scale))
	gen := textgen.New(st.World)
	st.Corpus = gen.Corpus()

	st.Pastebin = sites.NewPastebin(st.Clock, st.Corpus.Streams[textgen.SitePastebin], sites.DefaultDeletionModel(), cfg.Seed+1)
	st.Fourchan = sites.NewBoardSite(st.Clock, map[string][]textgen.Doc{
		"b":   st.Corpus.Streams[textgen.SiteFourchanB],
		"pol": st.Corpus.Streams[textgen.SiteFourchanPol],
	}, cfg.Seed+2)
	st.Eightch = sites.NewBoardSite(st.Clock, map[string][]textgen.Doc{
		"pol":      st.Corpus.Streams[textgen.SiteEightchPol],
		"baphomet": st.Corpus.Streams[textgen.SiteEightchBapho],
	}, cfg.Seed+3)
	st.Universe = osn.NewUniverse(st.Clock, st.World, cfg.Seed+4)

	reg := cfg.Telemetry.Reg()
	wrap := func(name string, h http.Handler, routeOf func(*http.Request) string) http.Handler {
		if cfg.Faults != nil {
			in := faults.NewInjector(cfg.Faults.ForService(name), st.Clock, h)
			in.Instrument(reg, name)
			st.Injectors[name] = in
			h = in
		}
		return telemetry.HTTPMetrics(reg, name, routeOf, h)
	}

	mux := http.NewServeMux()
	mux.Handle("/pastebin/", http.StripPrefix("/pastebin", wrap("pastebin", st.Pastebin.Handler(), nil)))
	mux.Handle("/4chan/", http.StripPrefix("/4chan", wrap("fourchan", st.Fourchan.Handler(), nil)))
	mux.Handle("/8ch/", http.StripPrefix("/8ch", wrap("eightch", st.Eightch.Handler(), nil)))
	mux.Handle("/osn/", http.StripPrefix("/osn", wrap("osn", st.Universe.Handler(), osn.RouteLabel)))
	mux.HandleFunc("/admin/clock", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, st.Clock.Now().Format(time.RFC3339))
	})
	mux.HandleFunc("/admin/advance", func(w http.ResponseWriter, req *http.Request) {
		days := 1
		if s := req.URL.Query().Get("days"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 || v > 3650 {
				http.Error(w, "bad days", http.StatusBadRequest)
				return
			}
			days = v
		}
		now := st.Clock.Advance(time.Duration(days) * simclock.Day)
		fmt.Fprintln(w, now.Format(time.RFC3339))
	})
	mux.HandleFunc("/admin/faults", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Faults == nil {
			fmt.Fprintln(w, "fault injection off (start with -faults mild|heavy|outage)")
			return
		}
		for _, name := range []string{"pastebin", "fourchan", "eightch", "osn"} {
			fmt.Fprintf(w, "%-8s %+v\n", name, st.Injectors[name].Counters())
		}
	})
	mux.HandleFunc("/admin/accounts", func(w http.ResponseWriter, req *http.Request) {
		limit := 500
		if s := req.URL.Query().Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = v
		}
		for i, a := range st.Universe.Accounts() {
			if i >= limit {
				break
			}
			fmt.Fprintf(w, "%s/%s\n", a.Ref.Network.Slug(), a.Ref.Username)
		}
	})
	st.Mux = mux
	return st
}

// ServeLocal binds the stack to an ephemeral loopback port and serves it in
// the background, returning the base URL and a shutdown func. Used by
// cmd/doxload's self-host mode and by tests.
func (st *Stack) ServeLocal() (baseURL string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("stack: listen: %w", err)
	}
	srv := &http.Server{Handler: st.Mux}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}
