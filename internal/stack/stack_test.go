package stack

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"doxmeter/internal/faults"
	"doxmeter/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestStackServesEveryPrefix(t *testing.T) {
	hub := telemetry.NewHub(0, nil)
	st := New(Config{Seed: 7, Scale: 0.004, Telemetry: hub})
	base, shutdown, err := st.ServeLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	// Content only exists once the virtual clock has moved into the study
	// period.
	if code, _ := get(t, base+"/admin/advance?days=30"); code != 200 {
		t.Fatalf("advance: status %d", code)
	}
	for _, path := range []string{
		"/pastebin/api_scraping.php?since=0&limit=10",
		"/4chan/b/catalog.json",
		"/8ch/pol/catalog.json",
		"/admin/clock",
		"/admin/faults",
	} {
		if code, _ := get(t, base+path); code != 200 {
			t.Errorf("GET %s: status %d", path, code)
		}
	}

	code, body := get(t, base+"/admin/accounts?limit=5")
	if code != 200 {
		t.Fatalf("accounts: status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 || len(lines) > 5 {
		t.Fatalf("accounts returned %d lines, want 1..5", len(lines))
	}
	network, user, ok := strings.Cut(lines[0], "/")
	if !ok || network == "" || user == "" {
		t.Fatalf("accounts line %q is not network/username", lines[0])
	}
	if code, _ := get(t, fmt.Sprintf("%s/osn/%s/%s", base, network, user)); code != 200 {
		t.Errorf("GET /osn/%s/%s: status %d", network, user, code)
	}

	// Every route above went through HTTPMetrics, so the hub's registry
	// must have counted them.
	if hub.Registry.Sum("doxmeter_http_requests_total") == 0 {
		t.Error("no http requests counted on the hub")
	}
}

func TestStackDeterministicAcrossBuilds(t *testing.T) {
	a := New(Config{Seed: 7, Scale: 0.004})
	b := New(Config{Seed: 7, Scale: 0.004})
	if a.Corpus.TotalDocs() != b.Corpus.TotalDocs() {
		t.Errorf("corpus size diverged: %d vs %d", a.Corpus.TotalDocs(), b.Corpus.TotalDocs())
	}
	aAcc, bAcc := a.Universe.Accounts(), b.Universe.Accounts()
	if len(aAcc) != len(bAcc) {
		t.Fatalf("account count diverged: %d vs %d", len(aAcc), len(bAcc))
	}
	for i := range aAcc {
		if aAcc[i].Ref != bAcc[i].Ref {
			t.Fatalf("account %d diverged: %v vs %v", i, aAcc[i].Ref, bAcc[i].Ref)
		}
	}
}

func TestStackFaultInjectorsCount(t *testing.T) {
	profile, err := faults.Preset("heavy", 99)
	if err != nil {
		t.Fatal(err)
	}
	st := New(Config{Seed: 7, Scale: 0.004, Faults: profile})
	base, shutdown, err := st.ServeLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get(t, base+"/admin/advance?days=30")
	for i := 0; i < 50; i++ {
		resp, err := http.Get(base + "/pastebin/api_scraping.php?since=0&limit=10")
		if err != nil {
			continue // injected resets/stalls surface as transport errors
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	c := st.Injectors["pastebin"].Counters()
	if c.Requests == 0 {
		t.Fatal("injector saw no requests")
	}
	if c.Injected() == 0 {
		t.Error("heavy profile injected nothing over 50 requests")
	}
}
