package stack

import (
	"flag"
	"path/filepath"
	"testing"

	"doxmeter/internal/core"
)

func parse(t *testing.T, full bool, args ...string) (*Durability, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var d Durability
	d.RegisterFlags(fs, full)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return &d, d.Validate()
}

func TestRegisterAndValidate(t *testing.T) {
	// Defaults: non-durable, valid.
	d, err := parse(t, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Durable() || d.DeltaMode() || d.Every != 1 {
		t.Fatalf("defaults = %+v", d)
	}

	// The full surface round-trips every flag.
	d, err = parse(t, true, "-state-dir", "x", "-checkpoint-every", "3",
		"-checkpoint-mode", "delta", "-compact-every", "5", "-checkpoint-compress", "-resume")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Durable() || !d.DeltaMode() || d.Every != 3 || d.CompactEvery != 5 || !d.Compress || !d.Resume {
		t.Fatalf("full surface = %+v", d)
	}

	// The subset surface still validates and keeps full-mode defaults.
	d, err = parse(t, false, "-state-dir", "x", "-checkpoint-every", "2")
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != string(core.CheckpointFull) || d.DeltaMode() {
		t.Fatalf("subset mode = %q", d.Mode)
	}

	// The subset surface must not expose the full-only flags.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var sub Durability
	sub.RegisterFlags(fs, false)
	for _, name := range []string{"checkpoint-mode", "compact-every", "checkpoint-compress"} {
		if fs.Lookup(name) != nil {
			t.Errorf("subset surface exposes -%s", name)
		}
	}

	for _, args := range [][]string{
		{"-resume"}, // -resume requires -state-dir
		{"-state-dir", "x", "-checkpoint-mode", "bogus"},
		{"-checkpoint-every", "-1"},
		{"-compact-every", "-2"},
	} {
		if _, err := parse(t, true, args...); err == nil {
			t.Errorf("Validate accepted %v", args)
		}
	}
}

func TestOpen(t *testing.T) {
	// Non-durable: everything nil, no error.
	d, err := parse(t, true)
	if err != nil {
		t.Fatal(err)
	}
	if st, ck, err := d.Open(); st != nil || ck != nil || err != nil {
		t.Fatalf("non-durable Open = %v %v %v", st, ck, err)
	}

	dir := filepath.Join(t.TempDir(), "state")
	d, err = parse(t, true, "-state-dir", dir, "-checkpoint-every", "4",
		"-checkpoint-mode", "delta", "-compact-every", "6")
	if err != nil {
		t.Fatal(err)
	}
	st, ck, err := d.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if ck.Store != st || ck.EveryDays != 4 || ck.Mode != core.CheckpointDelta || ck.CompactEvery != 6 {
		t.Fatalf("checkpoint config = %+v", ck)
	}
}
