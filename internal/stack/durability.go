// Package stack wires the command-line front ends to the study engine.
// It holds the flag surfaces every binary would otherwise duplicate —
// currently the durability block (-state-dir, -checkpoint-every,
// -checkpoint-mode, -compact-every, -checkpoint-compress, -resume) that
// doxpipeline and doxnotify both expose — so flag names, defaults, help
// strings and the validation rules stay identical across commands.
package stack

import (
	"errors"
	"flag"
	"fmt"

	"doxmeter/internal/core"
	"doxmeter/internal/store"
)

// Durability is the shared durable-run flag block. Zero value = the
// defaults every command ships; call RegisterFlags to expose it, then
// Validate once flags are parsed, then Open to build the checkpoint
// config.
type Durability struct {
	// StateDir is -state-dir: the checkpoint directory. Empty means a
	// non-durable run (every other field is then inert).
	StateDir string
	// Every is -checkpoint-every, the snapshot cadence in study days.
	Every int
	// Mode is -checkpoint-mode: "full" or "delta".
	Mode string
	// CompactEvery is -compact-every: in delta mode, the full-compaction
	// cadence in deltas (0 = the engine default).
	CompactEvery int
	// Compress is -checkpoint-compress.
	Compress bool
	// Resume is -resume: continue from the latest checkpoint in StateDir.
	Resume bool
}

// RegisterFlags installs the durability block on fs. full exposes the
// whole surface; false registers only the core subset (-state-dir,
// -checkpoint-every, -resume) for commands that keep the full-snapshot
// default, leaving Mode/CompactEvery/Compress at their zero-cost
// defaults.
func (d *Durability) RegisterFlags(fs *flag.FlagSet, full bool) {
	fs.StringVar(&d.StateDir, "state-dir", "", "directory for durable checkpoints (snapshots + commit log); empty = non-durable run")
	fs.IntVar(&d.Every, "checkpoint-every", 1, "snapshot cadence in study days (period ends and stops always snapshot)")
	fs.BoolVar(&d.Resume, "resume", false, "resume from the latest checkpoint in -state-dir")
	d.Mode = string(core.CheckpointFull)
	if !full {
		return
	}
	fs.StringVar(&d.Mode, "checkpoint-mode", string(core.CheckpointFull), "checkpoint strategy: full (every cut is a complete snapshot) or delta (incremental diffs with periodic compaction)")
	fs.IntVar(&d.CompactEvery, "compact-every", 0, "in delta mode, write a full compaction snapshot after this many deltas (0 = default)")
	fs.BoolVar(&d.Compress, "checkpoint-compress", false, "flate-compress checkpoint files in -state-dir")
}

// Validate checks the parsed block for the cross-flag rules shared by
// every command. Call it after flag.Parse and before Open.
func (d *Durability) Validate() error {
	if d.Resume && d.StateDir == "" {
		return errors.New("-resume requires -state-dir")
	}
	switch core.CheckpointMode(d.Mode) {
	case core.CheckpointFull, core.CheckpointDelta:
	default:
		return fmt.Errorf("-checkpoint-mode must be %q or %q, got %q", core.CheckpointFull, core.CheckpointDelta, d.Mode)
	}
	if d.Every < 0 {
		return fmt.Errorf("-checkpoint-every must be non-negative, got %d", d.Every)
	}
	if d.CompactEvery < 0 {
		return fmt.Errorf("-compact-every must be non-negative, got %d", d.CompactEvery)
	}
	return nil
}

// Durable reports whether a state dir was given.
func (d *Durability) Durable() bool { return d.StateDir != "" }

// DeltaMode reports whether the delta checkpoint strategy is selected.
func (d *Durability) DeltaMode() bool { return core.CheckpointMode(d.Mode) == core.CheckpointDelta }

// Open opens the state dir and builds the study's checkpoint config.
// Without -state-dir it returns (nil, nil, nil): the run is non-durable.
// The caller owns the returned store and must Close it.
func (d *Durability) Open() (*store.File, *core.CheckpointConfig, error) {
	if d.StateDir == "" {
		return nil, nil, nil
	}
	fileStore, err := store.OpenFile(d.StateDir)
	if err != nil {
		return nil, nil, err
	}
	fileStore.SetCompress(d.Compress)
	return fileStore, &core.CheckpointConfig{
		Store:        fileStore,
		EveryDays:    d.Every,
		Mode:         core.CheckpointMode(d.Mode),
		CompactEvery: d.CompactEvery,
	}, nil
}
