// Package notify implements the paper's proposed dox-notification service
// (§7.1): a "Have I Been Pwned"-style registry where users register
// identifiers (social accounts, emails, phone numbers) and are notified
// when one appears in a detected dox file. As the paper specifies, the
// service never stores or reveals *what* was shared — only that something
// was, and where it was seen.
//
// Identifiers are stored as salted SHA-256 digests, so the registry itself
// is not a new centralized source of sensitive data (§3.3's design rule).
package notify

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"time"

	"doxmeter/internal/extract"
	"doxmeter/internal/netid"
	"doxmeter/internal/telemetry"
)

// Kind is the identifier type a subscriber registers.
type Kind string

// Identifier kinds.
const (
	KindAccount Kind = "account" // network:username
	KindEmail   Kind = "email"
	KindPhone   Kind = "phone"
)

// Notification tells a subscriber that one of their identifiers appeared.
type Notification struct {
	SubscriberID string
	Kind         Kind
	Site         string // where the dox was observed
	SeenAt       time.Time
}

// DefaultPendingCap bounds each subscriber's undelivered queue. In service
// mode a subscriber that never drains must not grow memory without bound;
// once full, the oldest notifications are dropped (and counted).
const DefaultPendingCap = 4096

// Service is the notification registry. Safe for concurrent use.
type Service struct {
	salt []byte

	mu          sync.RWMutex
	subscribers map[string]map[string]Kind // digest -> subscriberID -> kind
	pending     map[string][]Notification  // subscriberID -> queue
	pendingCap  int
	notified    int
	ingested    int
	dropped     int

	droppedC *telemetry.Counter // nil until Instrument
}

// NewService creates a registry with the given salt (required: an unsalted
// registry of hashes over a small identifier space invites brute force).
func NewService(salt string) *Service {
	return &Service{
		salt:        []byte(salt),
		subscribers: make(map[string]map[string]Kind),
		pending:     make(map[string][]Notification),
		pendingCap:  DefaultPendingCap,
	}
}

// SetPendingCap bounds each subscriber's pending queue to n notifications
// (drop-oldest on overflow). n <= 0 removes the bound.
func (s *Service) SetPendingCap(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pendingCap = n
}

// Instrument registers the service's counters on reg
// (doxmeter_notify_dropped_total). A nil registry is a no-op.
func (s *Service) Instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.droppedC = reg.NewCounter("doxmeter_notify_dropped_total",
		"Notifications dropped from full per-subscriber pending queues.").With()
	s.droppedC.Add(float64(s.dropped))
}

// digest computes the salted identifier digest.
func (s *Service) digest(kind Kind, value string) string {
	mac := hmac.New(sha256.New, s.salt)
	mac.Write([]byte(string(kind) + "\x00" + normalize(kind, value)))
	return hex.EncodeToString(mac.Sum(nil))
}

// normalize canonicalizes identifiers: emails and usernames lowercase,
// phones digits-only.
func normalize(kind Kind, v string) string {
	v = strings.TrimSpace(v)
	switch kind {
	case KindPhone:
		var b strings.Builder
		for _, c := range v {
			if c >= '0' && c <= '9' {
				b.WriteRune(c)
			}
		}
		d := b.String()
		// NANP numbers with a leading country code normalize to 10 digits.
		if len(d) == 11 && d[0] == '1' {
			d = d[1:]
		}
		return d
	default:
		return strings.ToLower(v)
	}
}

// Subscribe registers an identifier for a subscriber.
func (s *Service) Subscribe(subscriberID string, kind Kind, value string) {
	d := s.digest(kind, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subscribers[d] == nil {
		s.subscribers[d] = make(map[string]Kind)
	}
	s.subscribers[d][subscriberID] = kind
}

// SubscribeAccount registers a social account.
func (s *Service) SubscribeAccount(subscriberID string, ref netid.Ref) {
	s.Subscribe(subscriberID, KindAccount, ref.Key())
}

// Unsubscribe removes one identifier registration.
func (s *Service) Unsubscribe(subscriberID string, kind Kind, value string) {
	d := s.digest(kind, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subscribers[d], subscriberID)
	if len(s.subscribers[d]) == 0 {
		delete(s.subscribers, d)
	}
}

// Ingest processes one detected dox's extraction: every registered
// identifier that appears is queued as a notification. It returns how many
// notifications were generated.
func (s *Service) Ingest(site string, seenAt time.Time, ex *extract.Extraction) int {
	type hit struct {
		digest string
		kind   Kind
	}
	var hits []hit
	for _, ref := range ex.AccountRefs() {
		hits = append(hits, hit{s.digest(KindAccount, ref.Key()), KindAccount})
	}
	for _, e := range ex.Emails {
		hits = append(hits, hit{s.digest(KindEmail, e), KindEmail})
	}
	for _, p := range ex.Phones {
		hits = append(hits, hit{s.digest(KindPhone, p), KindPhone})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ingested++
	n := 0
	for _, h := range hits {
		for sub := range s.subscribers[h.digest] {
			s.enqueue(sub, Notification{
				SubscriberID: sub,
				Kind:         h.kind,
				Site:         site,
				SeenAt:       seenAt,
			})
			n++
		}
	}
	s.notified += n
	return n
}

// enqueue appends one notification, dropping the oldest entries when the
// subscriber's queue exceeds the cap. Callers hold s.mu.
func (s *Service) enqueue(sub string, note Notification) {
	q := append(s.pending[sub], note)
	if s.pendingCap > 0 && len(q) > s.pendingCap {
		over := len(q) - s.pendingCap
		// Shift in place instead of re-slicing the head off: the backing
		// array stays bounded at ~cap instead of leaking dropped entries.
		copy(q, q[over:])
		q = q[:s.pendingCap]
		s.dropped += over
		s.droppedC.Add(float64(over))
	}
	s.pending[sub] = q
}

// Drain returns and clears a subscriber's pending notifications.
func (s *Service) Drain(subscriberID string) []Notification {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending[subscriberID]
	delete(s.pending, subscriberID)
	return out
}

// Pending returns the number of undelivered notifications for a subscriber.
func (s *Service) Pending(subscriberID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pending[subscriberID])
}

// Stats reports service counters.
func (s *Service) Stats() (identifiers, ingested, notified int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.subscribers), s.ingested, s.notified
}

// Dropped reports how many notifications were dropped from full queues.
func (s *Service) Dropped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dropped
}

// Subscribers lists subscriber IDs with pending notifications, sorted.
func (s *Service) Subscribers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pending))
	for id := range s.pending {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// State is the registry's checkpoint form. It holds only what the registry
// itself holds — salted digests and opaque subscriber IDs, never raw
// identifiers (§3.3) — and the salt is deliberately NOT persisted: a
// restored service must be constructed with the same salt or digests from
// new subscriptions simply won't match the restored ones.
type State struct {
	Subscribers map[string]map[string]Kind `json:"subscribers"`
	Pending     map[string][]Notification  `json:"pending"`
	Ingested    int                        `json:"ingested"`
	Notified    int                        `json:"notified"`
	Dropped     int                        `json:"dropped"`
}

// Snapshot captures the registry for checkpointing (deep copy).
func (s *Service) Snapshot() State {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := State{
		Subscribers: make(map[string]map[string]Kind, len(s.subscribers)),
		Pending:     make(map[string][]Notification, len(s.pending)),
		Ingested:    s.ingested,
		Notified:    s.notified,
		Dropped:     s.dropped,
	}
	for d, subs := range s.subscribers {
		cp := make(map[string]Kind, len(subs))
		for id, k := range subs {
			cp[id] = k
		}
		st.Subscribers[d] = cp
	}
	for id, q := range s.pending {
		st.Pending[id] = append([]Notification(nil), q...)
	}
	return st
}

// Restore replaces the registry contents from a snapshot (deep copy). The
// pending cap is re-applied to restored queues.
func (s *Service) Restore(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subscribers = make(map[string]map[string]Kind, len(st.Subscribers))
	for d, subs := range st.Subscribers {
		cp := make(map[string]Kind, len(subs))
		for id, k := range subs {
			cp[id] = k
		}
		s.subscribers[d] = cp
	}
	s.pending = make(map[string][]Notification, len(st.Pending))
	for id, q := range st.Pending {
		if s.pendingCap > 0 && len(q) > s.pendingCap {
			q = q[len(q)-s.pendingCap:]
		}
		s.pending[id] = append([]Notification(nil), q...)
	}
	s.ingested = st.Ingested
	s.notified = st.Notified
	if diff := st.Dropped - s.dropped; diff > 0 {
		s.droppedC.Add(float64(diff)) // reseed the exported counter
	}
	s.dropped = st.Dropped
	return nil
}
