// Package notify implements the paper's proposed dox-notification service
// (§7.1): a "Have I Been Pwned"-style registry where users register
// identifiers (social accounts, emails, phone numbers) and are notified
// when one appears in a detected dox file. As the paper specifies, the
// service never stores or reveals *what* was shared — only that something
// was, and where it was seen.
//
// Identifiers are stored as salted SHA-256 digests, so the registry itself
// is not a new centralized source of sensitive data (§3.3's design rule).
package notify

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"time"

	"doxmeter/internal/extract"
	"doxmeter/internal/netid"
)

// Kind is the identifier type a subscriber registers.
type Kind string

// Identifier kinds.
const (
	KindAccount Kind = "account" // network:username
	KindEmail   Kind = "email"
	KindPhone   Kind = "phone"
)

// Notification tells a subscriber that one of their identifiers appeared.
type Notification struct {
	SubscriberID string
	Kind         Kind
	Site         string // where the dox was observed
	SeenAt       time.Time
}

// Service is the notification registry. Safe for concurrent use.
type Service struct {
	salt []byte

	mu          sync.RWMutex
	subscribers map[string]map[string]Kind // digest -> subscriberID -> kind
	pending     map[string][]Notification  // subscriberID -> queue
	notified    int
	ingested    int
}

// NewService creates a registry with the given salt (required: an unsalted
// registry of hashes over a small identifier space invites brute force).
func NewService(salt string) *Service {
	return &Service{
		salt:        []byte(salt),
		subscribers: make(map[string]map[string]Kind),
		pending:     make(map[string][]Notification),
	}
}

// digest computes the salted identifier digest.
func (s *Service) digest(kind Kind, value string) string {
	mac := hmac.New(sha256.New, s.salt)
	mac.Write([]byte(string(kind) + "\x00" + normalize(kind, value)))
	return hex.EncodeToString(mac.Sum(nil))
}

// normalize canonicalizes identifiers: emails and usernames lowercase,
// phones digits-only.
func normalize(kind Kind, v string) string {
	v = strings.TrimSpace(v)
	switch kind {
	case KindPhone:
		var b strings.Builder
		for _, c := range v {
			if c >= '0' && c <= '9' {
				b.WriteRune(c)
			}
		}
		d := b.String()
		// NANP numbers with a leading country code normalize to 10 digits.
		if len(d) == 11 && d[0] == '1' {
			d = d[1:]
		}
		return d
	default:
		return strings.ToLower(v)
	}
}

// Subscribe registers an identifier for a subscriber.
func (s *Service) Subscribe(subscriberID string, kind Kind, value string) {
	d := s.digest(kind, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subscribers[d] == nil {
		s.subscribers[d] = make(map[string]Kind)
	}
	s.subscribers[d][subscriberID] = kind
}

// SubscribeAccount registers a social account.
func (s *Service) SubscribeAccount(subscriberID string, ref netid.Ref) {
	s.Subscribe(subscriberID, KindAccount, ref.Key())
}

// Unsubscribe removes one identifier registration.
func (s *Service) Unsubscribe(subscriberID string, kind Kind, value string) {
	d := s.digest(kind, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subscribers[d], subscriberID)
	if len(s.subscribers[d]) == 0 {
		delete(s.subscribers, d)
	}
}

// Ingest processes one detected dox's extraction: every registered
// identifier that appears is queued as a notification. It returns how many
// notifications were generated.
func (s *Service) Ingest(site string, seenAt time.Time, ex *extract.Extraction) int {
	type hit struct {
		digest string
		kind   Kind
	}
	var hits []hit
	for _, ref := range ex.AccountRefs() {
		hits = append(hits, hit{s.digest(KindAccount, ref.Key()), KindAccount})
	}
	for _, e := range ex.Emails {
		hits = append(hits, hit{s.digest(KindEmail, e), KindEmail})
	}
	for _, p := range ex.Phones {
		hits = append(hits, hit{s.digest(KindPhone, p), KindPhone})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ingested++
	n := 0
	for _, h := range hits {
		for sub := range s.subscribers[h.digest] {
			s.pending[sub] = append(s.pending[sub], Notification{
				SubscriberID: sub,
				Kind:         h.kind,
				Site:         site,
				SeenAt:       seenAt,
			})
			n++
		}
	}
	s.notified += n
	return n
}

// Drain returns and clears a subscriber's pending notifications.
func (s *Service) Drain(subscriberID string) []Notification {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending[subscriberID]
	delete(s.pending, subscriberID)
	return out
}

// Pending returns the number of undelivered notifications for a subscriber.
func (s *Service) Pending(subscriberID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pending[subscriberID])
}

// Stats reports service counters.
func (s *Service) Stats() (identifiers, ingested, notified int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.subscribers), s.ingested, s.notified
}

// Subscribers lists subscriber IDs with pending notifications, sorted.
func (s *Service) Subscribers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pending))
	for id := range s.pending {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
