package notify

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"doxmeter/internal/extract"
	"doxmeter/internal/netid"
	"doxmeter/internal/telemetry"
)

func exFromText(text string) *extract.Extraction { return extract.Extract(text) }

func TestSubscribeAndIngest(t *testing.T) {
	s := NewService("test-salt")
	s.SubscribeAccount("alice", netid.Ref{Network: netid.Twitter, Username: "alicetw"})
	s.Subscribe("alice", KindEmail, "Alice@Example.com")
	s.Subscribe("bob", KindPhone, "(312) 555-0142")

	ex := exFromText("Twitter: alicetw\nEmail: alice@example.com\nPhone: 312-555-0142")
	n := s.Ingest("pastebin", time.Now(), ex)
	if n != 3 {
		t.Fatalf("notifications = %d, want 3 (account+email hit alice, phone hit bob)", n)
	}
	alice := s.Drain("alice")
	if len(alice) != 2 {
		t.Fatalf("alice queue = %d", len(alice))
	}
	bob := s.Drain("bob")
	if len(bob) != 1 || bob[0].Kind != KindPhone {
		t.Fatalf("bob queue = %v", bob)
	}
	// Drain empties.
	if s.Pending("alice") != 0 || len(s.Drain("alice")) != 0 {
		t.Error("drain did not clear the queue")
	}
}

func TestNormalization(t *testing.T) {
	s := NewService("x")
	s.Subscribe("u", KindEmail, "USER@MAIL.COM")
	s.Subscribe("u", KindPhone, "+1 (312) 555-0142")
	ex := exFromText("Email: user@mail.com\nPhone: 312.555.0142")
	if n := s.Ingest("site", time.Now(), ex); n != 2 {
		t.Fatalf("normalized identifiers missed: %d hits", n)
	}
}

func TestNoFalseNotifications(t *testing.T) {
	s := NewService("x")
	s.Subscribe("u", KindEmail, "someone@else.com")
	ex := exFromText("Email: victim@mail.com\nTwitter: randomuser")
	if n := s.Ingest("site", time.Now(), ex); n != 0 {
		t.Fatalf("unrelated dox produced %d notifications", n)
	}
}

func TestUnsubscribe(t *testing.T) {
	s := NewService("x")
	s.Subscribe("u", KindEmail, "a@b.com")
	s.Unsubscribe("u", KindEmail, "a@b.com")
	if n := s.Ingest("site", time.Now(), exFromText("Email: a@b.com")); n != 0 {
		t.Fatalf("unsubscribed identifier still notified: %d", n)
	}
}

func TestSaltSeparatesRegistries(t *testing.T) {
	a, b := NewService("salt-a"), NewService("salt-b")
	if a.digest(KindEmail, "x@y.com") == b.digest(KindEmail, "x@y.com") {
		t.Error("different salts produced identical digests")
	}
}

func TestNoPlaintextStored(t *testing.T) {
	s := NewService("x")
	s.Subscribe("u", KindEmail, "secret-address@mail.com")
	for d := range s.subscribers {
		if bytes.Contains([]byte(d), []byte("secret")) {
			t.Fatal("registry stores plaintext identifiers")
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	s := NewService("x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Subscribe("sub", KindEmail, "a@b.com")
				s.Ingest("site", time.Now(), exFromText("Email: a@b.com"))
				s.Drain("sub")
			}
		}(i)
	}
	wg.Wait()
}

func TestHTTPAPI(t *testing.T) {
	s := NewService("x")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path, body string) int {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/subscribe", `{"subscriber":"s1","kind":"email","value":"a@b.com"}`); code != http.StatusNoContent {
		t.Fatalf("subscribe = %d", code)
	}
	if code := post("/subscribe", `{"subscriber":"s1","kind":"bogus","value":"x"}`); code != http.StatusBadRequest {
		t.Fatalf("bogus kind = %d", code)
	}
	if code := post("/subscribe", `not json`); code != http.StatusBadRequest {
		t.Fatalf("bad json = %d", code)
	}
	if code := post("/subscribe", `{"subscriber":"","kind":"email","value":"x"}`); code != http.StatusBadRequest {
		t.Fatalf("missing subscriber = %d", code)
	}

	s.Ingest("pastebin", time.Now(), exFromText("Email: a@b.com"))
	resp, err := http.Get(srv.URL + "/notifications?subscriber=s1")
	if err != nil {
		t.Fatal(err)
	}
	var notes []Notification
	if err := json.NewDecoder(resp.Body).Decode(&notes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(notes) != 1 || notes[0].Site != "pastebin" {
		t.Fatalf("notes = %v", notes)
	}
	// GET without subscriber: 400.
	resp, _ = http.Get(srv.URL + "/notifications")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing subscriber query = %d", resp.StatusCode)
	}
	// Stats endpoint.
	resp, _ = http.Get(srv.URL + "/stats")
	var stats map[string]int
	_ = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats["ingested"] != 1 || stats["notified"] != 1 {
		t.Fatalf("stats = %v", stats)
	}
	// Method check.
	resp, _ = http.Get(srv.URL + "/subscribe")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET subscribe = %d", resp.StatusCode)
	}
}

func TestPendingCapDropOldest(t *testing.T) {
	s := NewService("x")
	s.SetPendingCap(3)
	s.Subscribe("u", KindEmail, "user@mail.com")
	ex := exFromText("Email: user@mail.com")
	for i := 0; i < 5; i++ {
		s.Ingest("site", time.Unix(int64(i), 0).UTC(), ex)
	}
	if got := s.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	notes := s.Drain("u")
	if len(notes) != 3 {
		t.Fatalf("pending = %d, want 3", len(notes))
	}
	// Oldest two were evicted: the survivors are ingests 2, 3, 4.
	for i, n := range notes {
		if want := time.Unix(int64(i+2), 0).UTC(); !n.SeenAt.Equal(want) {
			t.Fatalf("note %d seen at %v, want %v", i, n.SeenAt, want)
		}
	}
	// Counter surfaces through the telemetry registry.
	s2 := NewService("x")
	s2.SetPendingCap(1)
	reg := telemetry.NewRegistry()
	s2.Instrument(reg)
	s2.Subscribe("u", KindEmail, "user@mail.com")
	s2.Ingest("site", time.Now(), ex)
	s2.Ingest("site", time.Now(), ex)
	if got := reg.Sum("doxmeter_notify_dropped_total"); got != 1 {
		t.Fatalf("doxmeter_notify_dropped_total = %v, want 1", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewService("shared-salt")
	s.Subscribe("alice", KindEmail, "alice@example.com")
	s.SubscribeAccount("alice", netid.Ref{Network: netid.Twitter, Username: "alicetw"})
	s.Subscribe("bob", KindPhone, "312-555-0142")
	s.Ingest("pastebin", time.Unix(100, 0).UTC(), exFromText("Email: alice@example.com"))

	st := s.Snapshot()

	// Restore must land in a service constructed with the SAME salt:
	// digests are salted, and the salt itself is never persisted.
	fresh := NewService("shared-salt")
	if err := fresh.Restore(st); err != nil {
		t.Fatal(err)
	}
	if fresh.Pending("alice") != 1 {
		t.Fatalf("restored pending = %d", fresh.Pending("alice"))
	}
	ids, ingested, notified := fresh.Stats()
	if ids != 3 || ingested != 1 || notified != 1 {
		t.Fatalf("restored stats = %d/%d/%d", ids, ingested, notified)
	}
	// Subscriptions survive: the same dox still notifies.
	if n := fresh.Ingest("pastebin", time.Now(), exFromText("Twitter: alicetw\nPhone: 312.555.0142")); n != 2 {
		t.Fatalf("post-restore ingest = %d, want 2", n)
	}
	// Snapshot is a deep copy — mutating the restored service must not
	// bleed into the original.
	fresh.Drain("alice")
	if s.Pending("alice") != 1 {
		t.Fatal("restore aliased the snapshot's queues")
	}
}
