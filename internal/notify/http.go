package notify

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler exposes the registry over HTTP:
//
//	POST /subscribe   {"subscriber":"s1","kind":"email","value":"a@b.com"}
//	POST /unsubscribe {"subscriber":"s1","kind":"email","value":"a@b.com"}
//	GET  /notifications?subscriber=s1   — drains and returns the queue
//	GET  /stats
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/subscribe", s.handleSubscribe(true))
	mux.HandleFunc("/unsubscribe", s.handleSubscribe(false))
	mux.HandleFunc("/notifications", s.handleNotifications)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

type subscribeReq struct {
	Subscriber string `json:"subscriber"`
	Kind       string `json:"kind"`
	Value      string `json:"value"`
}

func (s *Service) handleSubscribe(add bool) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var body subscribeReq
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			http.Error(w, "bad json", http.StatusBadRequest)
			return
		}
		kind := Kind(strings.ToLower(body.Kind))
		switch kind {
		case KindAccount, KindEmail, KindPhone:
		default:
			http.Error(w, "unknown kind", http.StatusBadRequest)
			return
		}
		if body.Subscriber == "" || body.Value == "" {
			http.Error(w, "subscriber and value required", http.StatusBadRequest)
			return
		}
		if add {
			s.Subscribe(body.Subscriber, kind, body.Value)
		} else {
			s.Unsubscribe(body.Subscriber, kind, body.Value)
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *Service) handleNotifications(w http.ResponseWriter, req *http.Request) {
	sub := req.URL.Query().Get("subscriber")
	if sub == "" {
		http.Error(w, "subscriber required", http.StatusBadRequest)
		return
	}
	notes := s.Drain(sub)
	if notes == nil {
		notes = []Notification{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(notes)
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	ids, ingested, notified := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int{
		"identifiers": ids, "ingested": ingested, "notified": notified,
		"dropped": s.Dropped(),
	})
}
