package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
	"doxmeter/internal/sites"
	"doxmeter/internal/textgen"
)

func smallCorpus(t *testing.T) *textgen.Corpus {
	t.Helper()
	return textgen.New(sim.NewWorld(sim.Default(41, 0.001))).Corpus()
}

func TestPastebinIncrementalCrawl(t *testing.T) {
	corpus := smallCorpus(t)
	docs := corpus.Streams[textgen.SitePastebin]
	clock := simclock.NewClock(simclock.Period1.Start)
	pb := sites.NewPastebin(clock, docs, sites.DeletionModel{}, 1)
	srv := httptest.NewServer(pb.Handler())
	defer srv.Close()

	c := NewPastebin(srv.URL, Options{})
	ctx := context.Background()

	collected := map[string]string{}
	// Advance week by week through both periods, polling at each step,
	// with a final poll at the very end of collection.
	poll := func() {
		got, err := c.Poll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range got {
			if _, dup := collected[d.ID]; dup {
				t.Fatalf("document %s collected twice", d.ID)
			}
			collected[d.ID] = d.Body
			if d.Posted.After(clock.Now()) {
				t.Fatal("collected a future document")
			}
		}
	}
	for day := simclock.Period1.Start; day.Before(simclock.Period2.End); day = day.Add(7 * simclock.Day) {
		clock.Set(day)
		poll()
	}
	clock.Set(simclock.Period2.End)
	poll()
	if len(collected) != len(docs) {
		t.Fatalf("collected %d of %d pastes", len(collected), len(docs))
	}
	for _, d := range docs {
		if body, ok := collected[d.ID]; !ok || body != d.Body {
			t.Fatalf("paste %s missing or corrupted", d.ID)
		}
	}
}

func TestPastebinSkipsDeleted(t *testing.T) {
	corpus := smallCorpus(t)
	docs := corpus.Streams[textgen.SitePastebin]
	clock := simclock.NewClock(simclock.Period2.End.Add(90 * simclock.Day))
	// Everything deleted long ago: listing still shows them (metadata),
	// bodies 404; the crawler must skip, not fail.
	pb := sites.NewPastebin(clock, docs, sites.DeletionModel{DoxRate: 1, OtherRate: 1}, 2)
	srv := httptest.NewServer(pb.Handler())
	defer srv.Close()
	c := NewPastebin(srv.URL, Options{})
	got, err := c.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("collected %d bodies from fully deleted site", len(got))
	}
}

func TestBoardIncrementalCrawl(t *testing.T) {
	corpus := smallCorpus(t)
	docs := corpus.Streams[textgen.SiteFourchanB]
	clock := simclock.NewClock(simclock.Period2.Start)
	site := sites.NewBoardSite(clock, map[string][]textgen.Doc{"b": docs}, 3)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	c := NewBoard(srv.URL, "b", "4chan/b", Options{})
	ctx := context.Background()
	seen := map[string]bool{}
	total := 0
	for day := simclock.Period2.Start; !day.After(simclock.Period2.End); day = day.Add(7 * simclock.Day) {
		clock.Set(day)
		got, err := c.Poll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range got {
			if seen[d.ID] {
				t.Fatalf("post %s collected twice", d.ID)
			}
			seen[d.ID] = true
			if !d.HTML {
				t.Fatal("board post not marked HTML")
			}
			total++
		}
	}
	if total != len(docs) {
		t.Fatalf("collected %d of %d posts", total, len(docs))
	}
}

func TestBoardCatalogCaching(t *testing.T) {
	corpus := smallCorpus(t)
	docs := corpus.Streams[textgen.SiteEightchPol]
	clock := simclock.NewClock(simclock.Period2.End) // all visible
	site := sites.NewBoardSite(clock, map[string][]textgen.Doc{"pol": docs}, 4)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	c := NewBoard(srv.URL, "pol", "8ch/pol", Options{})
	ctx := context.Background()
	if _, err := c.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	afterFirst := c.Stats().Requests
	// Second poll with no new content: only the catalog should be fetched.
	got, err := c.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("idle poll returned %d posts", len(got))
	}
	if c.Stats().Requests != afterFirst+1 {
		t.Fatalf("idle poll used %d requests, want 1 (catalog only)", c.Stats().Requests-afterFirst)
	}
}

func TestRetryOnTransientErrors(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`[]`))
	}))
	defer srv.Close()
	c := NewPastebin(srv.URL, Options{Retries: 3, Backoff: time.Millisecond})
	if _, err := c.Poll(context.Background()); err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	if atomic.LoadInt32(&calls) != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestGivesUpAfterRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewPastebin(srv.URL, Options{Retries: 2, Backoff: time.Millisecond})
	if _, err := c.Poll(context.Background()); err == nil {
		t.Fatal("permanent failure not reported")
	}
}

func TestContextCancellation(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := NewPastebin(srv.URL, Options{})
	start := time.Now()
	_, err := c.Poll(ctx)
	if err == nil {
		t.Fatal("cancelled poll succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation not honored promptly")
	}
}

func TestRateLimiting(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		w.Write([]byte(`[]`))
	}))
	defer srv.Close()
	c := NewPastebin(srv.URL, Options{MinInterval: 30 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := c.Poll(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("4 rate-limited polls took only %v", elapsed)
	}
}

// flakyProxy forwards to a backend handler but fails the nth request whose
// URL contains substr (once) with a 500 — injecting the transient mid-page
// failure of a live crawl.
type flakyProxy struct {
	backend http.Handler
	substr  string
	failN   int32 // fail the nth matching request (1-based)
	count   int32
	failed  int32
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.URL.String(), p.substr) {
		n := atomic.AddInt32(&p.count, 1)
		if n == p.failN && atomic.CompareAndSwapInt32(&p.failed, 0, 1) {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
	}
	p.backend.ServeHTTP(w, r)
}

// TestPastebinNoLossOnMidPageFailure is the regression test for the crawler
// data-loss bug: a transient failure fetching one paste body mid-page must
// not commit that paste as seen — the next Poll has to deliver it.
func TestPastebinNoLossOnMidPageFailure(t *testing.T) {
	corpus := smallCorpus(t)
	docs := corpus.Streams[textgen.SitePastebin]
	clock := simclock.NewClock(simclock.Period2.End) // everything visible
	pb := sites.NewPastebin(clock, docs, sites.DeletionModel{}, 5)
	proxy := &flakyProxy{backend: pb.Handler(), substr: "api_scrape_item", failN: 3}
	srv := httptest.NewServer(proxy)
	defer srv.Close()

	// Retries disabled so the injected failure surfaces instead of being
	// absorbed by the retry loop.
	c := NewPastebin(srv.URL, Options{Retries: -1})
	ctx := context.Background()

	first, err := c.Poll(ctx)
	if err == nil {
		t.Fatal("transient failure not surfaced")
	}
	second, err := c.Poll(ctx)
	if err != nil {
		t.Fatalf("re-poll failed: %v", err)
	}
	collected := map[string]bool{}
	for _, d := range append(first, second...) {
		if collected[d.ID] {
			t.Fatalf("paste %s delivered twice", d.ID)
		}
		collected[d.ID] = true
	}
	for _, d := range docs {
		if !collected[d.ID] {
			t.Fatalf("paste %s lost after transient failure (got %d of %d)", d.ID, len(collected), len(docs))
		}
	}
}

// TestBoardNoLossOnTransientFailure mirrors the pastebin regression for the
// board crawler: a failed thread fetch must leave the thread uncommitted so
// the next Poll retries it.
func TestBoardNoLossOnTransientFailure(t *testing.T) {
	corpus := smallCorpus(t)
	docs := corpus.Streams[textgen.SiteFourchanB]
	clock := simclock.NewClock(simclock.Period2.End)
	site := sites.NewBoardSite(clock, map[string][]textgen.Doc{"b": docs}, 6)
	proxy := &flakyProxy{backend: site.Handler(), substr: "/thread/", failN: 2}
	srv := httptest.NewServer(proxy)
	defer srv.Close()

	c := NewBoard(srv.URL, "b", "4chan/b", Options{Retries: -1})
	ctx := context.Background()

	first, err := c.Poll(ctx)
	if err == nil {
		t.Fatal("transient failure not surfaced")
	}
	second, err := c.Poll(ctx)
	if err != nil {
		t.Fatalf("re-poll failed: %v", err)
	}
	collected := map[string]bool{}
	for _, d := range append(first, second...) {
		if collected[d.ID] {
			t.Fatalf("post %s delivered twice", d.ID)
		}
		collected[d.ID] = true
	}
	if len(collected) != len(docs) {
		t.Fatalf("collected %d of %d posts across failure + re-poll", len(collected), len(docs))
	}
}

// TestRetriesDisabled verifies the Retries zero-value fix: negative
// disables retries entirely (zero still means the default of 2).
func TestRetriesDisabled(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewPastebin(srv.URL, Options{Retries: -1, Backoff: time.Millisecond})
	if _, err := c.Poll(context.Background()); err == nil {
		t.Fatal("failure not reported")
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("retries-disabled crawler made %d attempts, want 1", got)
	}
}

// TestRequestAndErrorAccounting verifies failed attempts are counted: every
// attempt shows up in Stats().Requests and every failure in Stats().Errors.
func TestRequestAndErrorAccounting(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewPastebin(srv.URL, Options{Retries: 2, Backoff: time.Millisecond})
	_, _ = c.Poll(context.Background())
	if got := c.Stats().Requests; got != 3 {
		t.Errorf("Stats().Requests = %d, want 3 (1 + 2 retries)", got)
	}
	if got := c.Stats().Errors; got != 3 {
		t.Errorf("Stats().Errors = %d, want 3", got)
	}

	// A dead host (dial failure, no HTTP response at all) must count too.
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv2.Close() // nothing listening anymore
	c2 := NewPastebin(srv2.URL, Options{Retries: -1})
	_, _ = c2.Poll(context.Background())
	if s := c2.Stats(); s.Requests != 1 || s.Errors != 1 {
		t.Errorf("dead host: Stats() Requests=%d Errors=%d, want 1/1", s.Requests, s.Errors)
	}
}

// TestConcurrentPollMatchesSerial checks that Options.Concurrency changes
// neither the set nor the order of delivered documents.
func TestConcurrentPollMatchesSerial(t *testing.T) {
	corpus := smallCorpus(t)
	pbDocs := corpus.Streams[textgen.SitePastebin]
	boardDocs := corpus.Streams[textgen.SiteEightchPol]
	clock := simclock.NewClock(simclock.Period2.End)
	pb := sites.NewPastebin(clock, pbDocs, sites.DeletionModel{}, 7)
	board := sites.NewBoardSite(clock, map[string][]textgen.Doc{"pol": boardDocs}, 8)
	pbSrv := httptest.NewServer(pb.Handler())
	defer pbSrv.Close()
	boardSrv := httptest.NewServer(board.Handler())
	defer boardSrv.Close()
	ctx := context.Background()

	serialPB, err := NewPastebin(pbSrv.URL, Options{}).Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	parallelPB, err := NewPastebin(pbSrv.URL, Options{Concurrency: 8}).Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialPB, parallelPB) {
		t.Fatalf("pastebin: parallel poll diverged (serial %d docs, parallel %d)", len(serialPB), len(parallelPB))
	}

	serialBoard, err := NewBoard(boardSrv.URL, "pol", "8ch/pol", Options{}).Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	parallelBoard, err := NewBoard(boardSrv.URL, "pol", "8ch/pol", Options{Concurrency: 8}).Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialBoard, parallelBoard) {
		t.Fatalf("board: parallel poll diverged (serial %d docs, parallel %d)", len(serialBoard), len(parallelBoard))
	}
}

func TestBadJSONSurfaced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{not json`))
	}))
	defer srv.Close()
	if _, err := NewPastebin(srv.URL, Options{}).Poll(context.Background()); err == nil {
		t.Error("bad listing JSON accepted")
	}
	if _, err := NewBoard(srv.URL, "b", "x", Options{}).Poll(context.Background()); err == nil {
		t.Error("bad catalog JSON accepted")
	}
}
