package crawler

// Chaos-hardening tests: each failure mode a live crawl meets, driven
// against the crawler's retry/backoff/breaker/quarantine machinery. The
// end-to-end invariant (faulted study == fault-free study, bit for bit)
// lives in internal/faults/chaos_test.go; these tests pin the per-mechanism
// contracts that invariant is built from.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"doxmeter/internal/faults"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
	"doxmeter/internal/sites"
	"doxmeter/internal/textgen"
)

// TestRetryAfterHonored is the 429 regression test: a pastebin-style
// listing answering 429 + Retry-After must delay the next request by the
// advertised interval. The pre-hardening crawler treated 429 like any 500
// and retried after its ~millisecond backoff, finishing in well under the
// advertised 300ms — which is exactly how crawlers get banned.
func TestRetryAfterHonored(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "0.3")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`[]`))
	}))
	defer srv.Close()

	c := NewPastebin(srv.URL, Options{Retries: 2, Backoff: time.Millisecond})
	start := time.Now()
	if _, err := c.Poll(context.Background()); err != nil {
		t.Fatalf("poll did not recover from 429: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("retry after 429 came after %v, want >= ~300ms (Retry-After ignored)", elapsed)
	}
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
	if s := c.Stats(); s.RateLimited != 1 || s.Retries != 1 {
		t.Fatalf("stats = %+v, want RateLimited=1 Retries=1", s)
	}
}

// TestRetryAfterCapped bounds the damage of a hostile Retry-After header.
func TestRetryAfterCapped(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, "go away", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`[]`))
	}))
	defer srv.Close()
	c := NewPastebin(srv.URL, Options{Retries: 2, Backoff: time.Millisecond, MaxRetryAfter: 50 * time.Millisecond})
	start := time.Now()
	if _, err := c.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hour-long Retry-After not capped: waited %v", elapsed)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"3", 3 * time.Second, true},
		{"0", 0, true},
		{"0.25", 250 * time.Millisecond, true},
		{"-5", 0, false},
		{"soon", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	// HTTP-date form: a date ~2s out parses to roughly that delay.
	date := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	got, ok := parseRetryAfter(date)
	if !ok || got <= 0 || got > 3*time.Second {
		t.Errorf("parseRetryAfter(%q) = (%v, %v)", date, got, ok)
	}
	// A date in the past is not a usable delay.
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if _, ok := parseRetryAfter(past); ok {
		t.Errorf("past HTTP-date accepted")
	}
}

// TestTruncatedBodyTypedError: a response carrying fewer body bytes than
// its Content-Length must surface errors.Is(err, ErrTruncatedBody), not a
// generic read error.
func TestTruncatedBodyTypedError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "100")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("0123456789"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}))
	defer srv.Close()

	c := NewPastebin(srv.URL, Options{Retries: -1})
	_, err := c.Poll(context.Background())
	if !errors.Is(err, ErrTruncatedBody) {
		t.Fatalf("truncated transfer surfaced as %v, want ErrTruncatedBody", err)
	}
	if s := c.Stats(); s.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", s.Truncated)
	}
}

// TestTruncatedBodyRetried: truncation is transient — the retry loop must
// absorb it when the next attempt delivers the full body.
func TestTruncatedBodyRetried(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Content-Length", "100")
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("012345"))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		w.Write([]byte(`[]`))
	}))
	defer srv.Close()
	c := NewPastebin(srv.URL, Options{Retries: 2, Backoff: time.Millisecond})
	if _, err := c.Poll(context.Background()); err != nil {
		t.Fatalf("truncation not absorbed by retry: %v", err)
	}
	if s := c.Stats(); s.Truncated != 1 || s.Retries != 1 {
		t.Fatalf("stats = %+v, want Truncated=1 Retries=1", s)
	}
}

// TestRequestTimeoutBoundsStall: a stalled body read must end in a timeout
// after RequestTimeout instead of hanging the poll, and the next attempt
// recovers.
func TestRequestTimeoutBoundsStall(t *testing.T) {
	var calls int32
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Content-Length", "100")
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("01234"))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			select { // stall until the test ends
			case <-release:
			case <-r.Context().Done():
			}
			panic(http.ErrAbortHandler)
		}
		w.Write([]byte(`[]`))
	}))
	defer srv.Close()

	c := NewPastebin(srv.URL, Options{Retries: 2, Backoff: time.Millisecond, RequestTimeout: 80 * time.Millisecond})
	start := time.Now()
	if _, err := c.Poll(context.Background()); err != nil {
		t.Fatalf("stall not recovered: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stalled body hung the poll for %v", elapsed)
	}
}

// TestCircuitBreakerOpensAndProbes: consecutive failures open the breaker;
// it then admits one probe per cooldown until a probe succeeds and closes
// it. The poll as a whole still completes — the breaker shapes traffic, it
// does not abandon the crawl.
func TestCircuitBreakerOpensAndProbes(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 6 {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`[]`))
	}))
	defer srv.Close()

	c := NewPastebin(srv.URL, Options{
		Retries: 10, Backoff: time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond, BreakerMaxWait: 2 * time.Second,
	})
	start := time.Now()
	if _, err := c.Poll(context.Background()); err != nil {
		t.Fatalf("breaker-guarded poll failed: %v", err)
	}
	elapsed := time.Since(start)
	if got := atomic.LoadInt32(&calls); got != 7 {
		t.Fatalf("calls = %d, want 7 (3 to open + 3 failed probes + 1 success)", got)
	}
	// Requests 4..7 each waited out a ~20ms cooldown before probing.
	if elapsed < 40*time.Millisecond {
		t.Fatalf("probes not paced by cooldown: elapsed %v", elapsed)
	}
	s := c.Stats()
	if s.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1 (probe failures keep it open, not reopen it)", s.BreakerOpens)
	}
}

// TestBreakerGiveUp: when the host stays down past BreakerMaxWait, the
// attempt is abandoned with ErrCircuitOpen instead of blocking forever.
func TestBreakerGiveUp(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := NewPastebin(srv.URL, Options{
		Retries: 6, Backoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: time.Hour, BreakerMaxWait: 30 * time.Millisecond,
	})
	_, err := c.Poll(context.Background())
	if err == nil {
		t.Fatal("dead host poll succeeded")
	}
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("final error = %v, want ErrCircuitOpen", err)
	}
	// Only the 2 opening failures reach the wire; the rest give up at the
	// breaker without hammering the host.
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Fatalf("dead host received %d requests, want 2", got)
	}
	if s := c.Stats(); s.BreakerGiveUps != 5 || s.BreakerOpens != 1 {
		t.Fatalf("stats = %+v, want BreakerGiveUps=5 BreakerOpens=1", s)
	}
}

// corruptBoard serves a minimal board API whose thread 2 returns unparseable
// JSON until healed.
type corruptBoard struct {
	healed atomic.Bool
}

func (b *corruptBoard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch r.URL.Path {
	case "/b/catalog.json":
		w.Write([]byte(`[{"page":0,"threads":[{"no":1,"last_modified":10},{"no":2,"last_modified":10}]}]`))
	case "/b/thread/1.json":
		w.Write([]byte(`{"posts":[{"no":101,"time":5,"com":"first"}]}`))
	case "/b/thread/2.json":
		if b.healed.Load() {
			w.Write([]byte(`{"posts":[{"no":201,"time":6,"com":"second"}]}`))
			return
		}
		w.Write([]byte(`{"posts": [{"no": 201, garbage`))
	default:
		http.NotFound(w, r)
	}
}

// TestCorruptThreadQuarantine: a thread whose JSON stays corrupt through
// every retry is quarantined — counted, skipped, its lastMod uncommitted —
// and the poll carries on. Once the payload heals, the next poll collects
// the thread: corruption delays collection but never loses it, and never
// crashes the crawler.
func TestCorruptThreadQuarantine(t *testing.T) {
	backend := &corruptBoard{}
	srv := httptest.NewServer(backend)
	defer srv.Close()

	c := NewBoard(srv.URL, "b", "4chan/b", Options{Retries: 2, Backoff: time.Millisecond})
	first, err := c.Poll(context.Background())
	if err != nil {
		t.Fatalf("poll with corrupt thread failed hard: %v", err)
	}
	if len(first) != 1 || first[0].ID != "b-101" {
		t.Fatalf("first poll = %v, want just thread 1's post", first)
	}
	s := c.Stats()
	if s.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", s.Quarantined)
	}
	if s.Corrupt != 3 {
		t.Fatalf("Corrupt = %d, want 3 (initial attempt + 2 retries)", s.Corrupt)
	}

	backend.healed.Store(true)
	second, err := c.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 1 || second[0].ID != "b-201" {
		t.Fatalf("healed poll = %v, want thread 2's post (quarantine must not commit lastMod)", second)
	}
}

// TestFaultInjectedCrawlCompletes is the crawler-level integration test:
// a full sweep of the simulated pastebin and a board through a healing
// all-modes fault injector must deliver documents bit-identical to a
// fault-free sweep, with the injector provably having fired.
func TestFaultInjectedCrawlCompletes(t *testing.T) {
	corpus := textgen.New(sim.NewWorld(sim.Default(41, 0.001))).Corpus()
	clock := simclock.NewClock(simclock.Period2.End) // everything visible
	profile := faults.Profile{
		Seed: 11,
		P500: 0.06, P503: 0.03, P429: 0.04, PReset: 0.04,
		PStall: 0.02, PTruncate: 0.05, PCorrupt: 0.05,
		RetryAfter: 5 * time.Millisecond, StallFor: 5 * time.Millisecond,
		MaxFaultsPerURL: 2,
	}
	opts := Options{
		Retries: 6, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 2 * time.Millisecond,
		RequestTimeout: 5 * time.Second, Concurrency: 4,
	}

	// Pastebin: plain vs injected.
	pbDocs := corpus.Streams[textgen.SitePastebin]
	plainSrv := httptest.NewServer(sites.NewPastebin(clock, pbDocs, sites.DeletionModel{}, 9).Handler())
	defer plainSrv.Close()
	inj := faults.NewInjector(profile.ForService("pastebin"), clock, sites.NewPastebin(clock, pbDocs, sites.DeletionModel{}, 9).Handler())
	faultSrv := httptest.NewServer(inj)
	defer faultSrv.Close()

	want, err := NewPastebin(plainSrv.URL, Options{Concurrency: 4}).Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	faulted := NewPastebin(faultSrv.URL, opts)
	got, err := faulted.Poll(context.Background())
	if err != nil {
		t.Fatalf("faulted pastebin sweep failed: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("faulted pastebin sweep diverged: %d vs %d docs", len(want), len(got))
	}
	if c := inj.Counters(); c.Injected() == 0 {
		t.Fatal("pastebin injector never fired")
	} else if s := faulted.Stats(); s.Retries == 0 {
		t.Fatalf("faulted crawl took no retries: %+v", s)
	}

	// Board: plain vs injected.
	bDocs := corpus.Streams[textgen.SiteFourchanB]
	streams := map[string][]textgen.Doc{"b": bDocs}
	plainB := httptest.NewServer(sites.NewBoardSite(clock, streams, 10).Handler())
	defer plainB.Close()
	injB := faults.NewInjector(profile.ForService("board"), clock, sites.NewBoardSite(clock, streams, 10).Handler())
	faultB := httptest.NewServer(injB)
	defer faultB.Close()

	wantB, err := NewBoard(plainB.URL, "b", "4chan/b", Options{Concurrency: 4}).Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := NewBoard(faultB.URL, "b", "4chan/b", opts).Poll(context.Background())
	if err != nil {
		t.Fatalf("faulted board sweep failed: %v", err)
	}
	if !reflect.DeepEqual(wantB, gotB) {
		t.Fatalf("faulted board sweep diverged: %d vs %d docs", len(wantB), len(gotB))
	}
	if injB.Counters().Injected() == 0 {
		t.Fatal("board injector never fired")
	}
}
