package crawler

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"doxmeter/internal/simclock"
	"doxmeter/internal/sites"
	"doxmeter/internal/textgen"
)

// mustJSON marshals v or fails the test.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// roundTrip pushes a state through JSON once, the way a delta apply sees
// its base (decoded from the previous checkpoint, not live).
func roundTrip[T any](t *testing.T, v T) T {
	t.Helper()
	var out T
	if err := json.Unmarshal(mustJSON(t, v), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPastebinDeltaMatchesSnapshot live-drives the crawler week by week,
// cutting a delta at each step and applying it to the previous cut's
// state. Every reconstructed state must marshal byte-identically to the
// full Snapshot taken at the same cut.
func TestPastebinDeltaMatchesSnapshot(t *testing.T) {
	corpus := smallCorpus(t)
	docs := corpus.Streams[textgen.SitePastebin]
	clock := simclock.NewClock(simclock.Period1.Start)
	pb := sites.NewPastebin(clock, docs, sites.DeletionModel{}, 1)
	srv := httptest.NewServer(pb.Handler())
	defer srv.Close()

	c := NewPastebin(srv.URL, Options{})
	c.SetDeltaJournal(true)
	ctx := context.Background()

	base := roundTrip(t, c.Snapshot())
	sawDirty := false
	for day := simclock.Period1.Start; day.Before(simclock.Period2.End); day = day.Add(7 * simclock.Day) {
		clock.Set(day)
		if _, err := c.Poll(ctx); err != nil {
			t.Fatal(err)
		}
		d, dirty := c.CutDelta()
		want := mustJSON(t, c.Snapshot())
		d2 := roundTrip(t, d) // deltas also cross the codec before apply
		d2.Apply(&base)
		if got := mustJSON(t, base); string(got) != string(want) {
			t.Fatalf("delta-applied state diverged at %s:\n%s\nvs\n%s", day, got, want)
		}
		if dirty {
			sawDirty = true
		} else if len(d.Added) > 0 || d.Cursor != base.Cursor {
			t.Fatal("dirty=false but delta non-empty")
		}
		base = roundTrip(t, base)
	}
	if !sawDirty {
		t.Fatal("no cut ever reported dirty; harness drove no traffic")
	}
	// A cut with no traffic in between must be clean.
	if _, dirty := c.CutDelta(); dirty {
		t.Fatal("quiescent cut reported dirty")
	}
}

// TestBoardDeltaMatchesSnapshot is the board-crawler analogue, covering
// watermark-only updates (threads with activity but no new posts) as
// well as post adds.
func TestBoardDeltaMatchesSnapshot(t *testing.T) {
	corpus := smallCorpus(t)
	docs := corpus.Streams[textgen.SiteFourchanB]
	clock := simclock.NewClock(simclock.Period2.Start)
	site := sites.NewBoardSite(clock, map[string][]textgen.Doc{"b": docs}, 3)
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	c := NewBoard(srv.URL, "b", "4chan/b", Options{})
	c.SetDeltaJournal(true)
	ctx := context.Background()

	base := roundTrip(t, c.Snapshot())
	sawDirty := false
	for day := simclock.Period2.Start; !day.After(simclock.Period2.End); day = day.Add(7 * simclock.Day) {
		clock.Set(day)
		if _, err := c.Poll(ctx); err != nil {
			t.Fatal(err)
		}
		d, dirty := c.CutDelta()
		want := mustJSON(t, c.Snapshot())
		d2 := roundTrip(t, d)
		d2.Apply(&base)
		if got := mustJSON(t, base); string(got) != string(want) {
			t.Fatalf("delta-applied state diverged at %s:\n%s\nvs\n%s", day, got, want)
		}
		if dirty {
			sawDirty = true
		}
		base = roundTrip(t, base)
	}
	if !sawDirty {
		t.Fatal("no cut ever reported dirty; harness drove no traffic")
	}
	if _, dirty := c.CutDelta(); dirty {
		t.Fatal("quiescent cut reported dirty")
	}
}

// TestDeltaJournalSurvivesRestore: a restore mid-run resets the journal
// so the next cut diffs against the restored state, not the pre-crash
// one.
func TestDeltaJournalSurvivesRestore(t *testing.T) {
	corpus := smallCorpus(t)
	docs := corpus.Streams[textgen.SitePastebin]
	clock := simclock.NewClock(simclock.Period1.Start)
	pb := sites.NewPastebin(clock, docs, sites.DeletionModel{}, 1)
	srv := httptest.NewServer(pb.Handler())
	defer srv.Close()

	c := NewPastebin(srv.URL, Options{})
	c.SetDeltaJournal(true)
	ctx := context.Background()

	clock.Set(simclock.Period1.Start.Add(14 * simclock.Day))
	if _, err := c.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	saved := c.Snapshot()
	c.CutDelta() // align the journal with the saved state

	clock.Set(simclock.Period1.Start.Add(28 * simclock.Day))
	if _, err := c.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	// Crash: roll back to the saved state. The journaled post-save adds
	// must vanish with it.
	c.Restore(saved)
	if d, dirty := c.CutDelta(); dirty || len(d.Added) > 0 {
		t.Fatalf("journal leaked across Restore: dirty=%v added=%d", dirty, len(d.Added))
	}
	clock.Set(simclock.Period1.Start.Add(28 * simclock.Day))
	if _, err := c.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	d, dirty := c.CutDelta()
	if !dirty {
		t.Fatal("post-restore poll produced no delta")
	}
	base := roundTrip(t, saved)
	d.Apply(&base)
	if got, want := string(mustJSON(t, base)), string(mustJSON(t, c.Snapshot())); got != want {
		t.Fatalf("post-restore delta diverged:\n%s\nvs\n%s", got, want)
	}
}
