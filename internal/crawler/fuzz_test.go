package crawler

import (
	"errors"
	"reflect"
	"testing"
)

// Fuzz targets for the crawler's three byte-level parsers. A live crawl
// feeds these functions whatever a faulting, truncating, corrupting
// network delivers, so the contract under fuzzing is total safety: no
// panic on any input, errors always wrap ErrCorruptPayload, and parsing is
// deterministic (same bytes, same result).

func fuzzSeeds(f *testing.F, seeds ...string) {
	f.Helper()
	for _, s := range seeds {
		f.Add([]byte(s))
	}
}

func FuzzParseListing(f *testing.F) {
	fuzzSeeds(f,
		`[]`,
		`[{"key":"abc123","title":"dox","date":1468800000}]`,
		`[{"key":"abc123","title":"dox","date":`, // truncated mid-value
		`[{"key":"abc123"},{`,                    // truncated mid-object
		"\x00\x1finjected-corruption 00000000 {{{",
		`{"key":"not-an-array"}`,
		`[{"key":1,"date":"backwards-types"}]`,
	)
	f.Fuzz(func(t *testing.T, raw []byte) {
		page, err := parseListing(raw)
		if err != nil && !errors.Is(err, ErrCorruptPayload) {
			t.Fatalf("parse error does not wrap ErrCorruptPayload: %v", err)
		}
		if err != nil && page != nil {
			t.Fatal("failed parse returned a partial listing")
		}
		again, err2 := parseListing(raw)
		if (err == nil) != (err2 == nil) || !reflect.DeepEqual(page, again) {
			t.Fatal("parseListing not deterministic")
		}
	})
}

func FuzzParseCatalog(f *testing.F) {
	fuzzSeeds(f,
		`[]`,
		`[{"page":0,"threads":[{"no":1,"last_modified":10}]}]`,
		`[{"page":0,"threads":[{"no":1,"last_mod`, // truncated mid-key
		`[{"page":"zero"}]`,
		"\xff\xfe\xfd",
		`[[[[[[`,
	)
	f.Fuzz(func(t *testing.T, raw []byte) {
		pages, err := parseCatalog(raw)
		if err != nil && !errors.Is(err, ErrCorruptPayload) {
			t.Fatalf("parse error does not wrap ErrCorruptPayload: %v", err)
		}
		again, err2 := parseCatalog(raw)
		if (err == nil) != (err2 == nil) || !reflect.DeepEqual(pages, again) {
			t.Fatal("parseCatalog not deterministic")
		}
	})
}

func FuzzParseThread(f *testing.F) {
	fuzzSeeds(f,
		`{"posts":[]}`,
		`{"posts":[{"no":101,"time":5,"com":"<b>hi</b>"}]}`,
		`{"posts":[{"no":101,"time":5,"com":"tru`, // truncated mid-string
		`{"posts":{"no":101}}`,
		`null`,
		"{",
	)
	f.Fuzz(func(t *testing.T, raw []byte) {
		tj, err := parseThread(raw)
		if err != nil && !errors.Is(err, ErrCorruptPayload) {
			t.Fatalf("parse error does not wrap ErrCorruptPayload: %v", err)
		}
		if err != nil && len(tj.Posts) != 0 {
			t.Fatal("failed parse returned partial posts")
		}
		again, err2 := parseThread(raw)
		if (err == nil) != (err2 == nil) || !reflect.DeepEqual(tj, again) {
			t.Fatal("parseThread not deterministic")
		}
		// The validator view must agree with the parser.
		if verr := validThread(raw); (verr == nil) != (err == nil) {
			t.Fatal("validThread disagrees with parseThread")
		}
	})
}

// FuzzParseRetryAfter hardens the header parser: arbitrary header bytes
// must never panic or produce a negative delay.
func FuzzParseRetryAfter(f *testing.F) {
	for _, s := range []string{"3", "0.25", "-1", "NaN", "Inf", "1e99", "Wed, 21 Oct 2015 07:28:00 GMT", "garbage", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, v string) {
		d, ok := parseRetryAfter(v)
		if d < 0 {
			t.Fatalf("parseRetryAfter(%q) returned negative delay %v", v, d)
		}
		if !ok && d != 0 {
			t.Fatalf("parseRetryAfter(%q) = (%v, false), want zero delay when not ok", v, d)
		}
	})
}
