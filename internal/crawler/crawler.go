// Package crawler implements the collection stage of the paper's pipeline
// (§3.1.1): incremental HTTP crawlers for a pastebin-style scraping API and
// for 4chan/8ch-style board JSON APIs.
//
// Each crawler is a poller: Poll performs one incremental sweep, returning
// only documents not seen in previous sweeps. The study driver interleaves
// clock advancement with polling, exactly as the paper's collection
// infrastructure tailed the live sites for thirteen weeks. Transient HTTP
// failures are retried with backoff; a configurable minimum request
// interval provides the polite rate limiting a real deployment needs.
package crawler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"doxmeter/internal/parallel"
)

// Doc is one collected document, normalized across sources.
type Doc struct {
	Site   string
	ID     string
	Title  string
	Body   string
	HTML   bool
	Posted time.Time
}

// Options configures shared crawler behaviour.
type Options struct {
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// MinInterval is the minimum spacing between requests (0 = none).
	MinInterval time.Duration
	// Retries is how many times a failed request is retried. Zero means
	// the default of 2; negative disables retries entirely (mirroring the
	// classifier's MinTokens convention, since "0 retries" is otherwise
	// indistinguishable from "unset").
	Retries int
	// Backoff is the base retry backoff (default 50ms, doubled per retry).
	Backoff time.Duration
	// Concurrency bounds how many paste-body or thread fetches one Poll
	// issues in parallel. Values <= 1 mean serial, the default, so
	// existing single-threaded behaviour (and request ordering) is
	// preserved unless a caller opts in. Returned document order is
	// identical at any concurrency: fetches fan out, but results are
	// committed in listing/catalog order.
	Concurrency int
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	switch {
	case o.Retries == 0:
		o.Retries = 2
	case o.Retries < 0:
		o.Retries = 0
	}
	if o.Backoff == 0 {
		o.Backoff = 50 * time.Millisecond
	}
	return o
}

// fetcher performs rate-limited, retrying GETs.
type fetcher struct {
	opts     Options
	mu       sync.Mutex
	lastReq  time.Time
	requests int64
	errors   int64
}

func newFetcher(opts Options) *fetcher {
	return &fetcher{opts: opts.withDefaults()}
}

// errNotFound marks 404s, which are terminal (no retry).
var errNotFound = errors.New("not found")

// get fetches a URL, honoring rate limits and retrying transient errors.
func (f *fetcher) get(ctx context.Context, url string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= f.opts.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(f.opts.Backoff << (attempt - 1)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if err := f.throttle(ctx); err != nil {
			return nil, err
		}
		body, err := f.once(ctx, url)
		if err == nil {
			return body, nil
		}
		if errors.Is(err, errNotFound) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("crawler: %s failed after %d attempts: %w", url, f.opts.Retries+1, lastErr)
}

func (f *fetcher) once(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	// Count the attempt before Do so failed dials and timeouts are visible
	// in Requests(); previously only completed round-trips were counted and
	// retry storms against a dead host looked like zero traffic.
	f.mu.Lock()
	f.requests++
	f.mu.Unlock()
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		f.bumpErrors()
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		// 404 is an expected outcome (deletion/prune races), not an error.
		return nil, errNotFound
	case resp.StatusCode != http.StatusOK:
		f.bumpErrors()
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		f.bumpErrors()
	}
	return body, err
}

func (f *fetcher) bumpErrors() {
	f.mu.Lock()
	f.errors++
	f.mu.Unlock()
}

// throttle enforces the minimum request interval.
func (f *fetcher) throttle(ctx context.Context) error {
	if f.opts.MinInterval <= 0 {
		return nil
	}
	f.mu.Lock()
	now := time.Now()
	next := f.lastReq.Add(f.opts.MinInterval)
	if next.Before(now) {
		next = now
	}
	f.lastReq = next // reserve the slot
	wait := next.Sub(now)
	f.mu.Unlock()
	if wait <= 0 {
		return nil
	}
	select {
	case <-time.After(wait):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Requests returns the number of HTTP request attempts issued so far,
// including attempts that failed before a response arrived.
func (f *fetcher) Requests() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests
}

// Errors returns how many request attempts failed (transport errors,
// non-2xx statuses other than 404, and body-read failures) — the signal a
// deployment watches for retry storms.
func (f *fetcher) Errors() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.errors
}

// Pastebin incrementally crawls a pastebin-style scraping API.
type Pastebin struct {
	BaseURL  string
	SiteName string
	PageSize int

	f      *fetcher
	mu     sync.Mutex
	cursor int64
	seen   map[string]bool
}

// NewPastebin builds the crawler; baseURL has no trailing slash.
func NewPastebin(baseURL string, opts Options) *Pastebin {
	return &Pastebin{
		BaseURL:  baseURL,
		SiteName: "pastebin",
		PageSize: 250,
		f:        newFetcher(opts),
		seen:     make(map[string]bool),
	}
}

type pasteMeta struct {
	Key   string `json:"key"`
	Title string `json:"title"`
	Date  int64  `json:"date"`
}

// Poll sweeps the listing from the current cursor, fetching every new paste
// body. Pastes that vanish between listing and fetch (deletions) are
// skipped, matching a live crawler's race.
//
// Crash/error consistency: seen/cursor state is committed per paste only
// after its body fetch definitively resolved (success, or a 404 meaning the
// paste is gone) and the document has been appended to the result.
// On a transient failure Poll returns the documents collected so far — all
// of which are committed — together with the error; the failed paste and
// everything after it in the listing stay uncommitted, so the next Poll
// re-lists and re-fetches them instead of silently skipping them forever.
//
// With Options.Concurrency > 1 the body fetches of one page fan out in
// parallel, but commits happen in listing order on the calling goroutine,
// so the returned documents are identical to a serial poll.
func (c *Pastebin) Poll(ctx context.Context) ([]Doc, error) {
	var out []Doc
	for {
		c.mu.Lock()
		cursor := c.cursor
		c.mu.Unlock()
		raw, err := c.f.get(ctx, fmt.Sprintf("%s/api_scraping.php?since=%d&limit=%d", c.BaseURL, cursor, c.PageSize))
		if err != nil {
			return out, err
		}
		var page []pasteMeta
		if err := json.Unmarshal(raw, &page); err != nil {
			return out, fmt.Errorf("crawler: bad listing: %w", err)
		}
		if len(page) == 0 {
			return out, nil
		}

		// Pick out the pastes not yet committed (read-only check; nothing
		// is marked seen until its body is in hand).
		fetchIdx := make([]int, 0, len(page))
		c.mu.Lock()
		for i, m := range page {
			if !c.seen[m.Key] {
				fetchIdx = append(fetchIdx, i)
			}
		}
		c.mu.Unlock()

		type fetchResult struct {
			body    []byte
			err     error
			fetched bool
		}
		results := make([]fetchResult, len(page))
		parallel.ForEach(len(fetchIdx), c.f.opts.Concurrency, func(j int) {
			i := fetchIdx[j]
			body, err := c.f.get(ctx, fmt.Sprintf("%s/api_scrape_item.php?i=%s", c.BaseURL, page[i].Key))
			results[i] = fetchResult{body: body, err: err, fetched: true}
		})

		// Commit in listing order. The cursor only ever advances across the
		// prefix of handled pastes: hitting a transient failure abandons the
		// rest of the page (successfully fetched or not) uncommitted.
		progressed := false
		for i, m := range page {
			res := results[i]
			if res.fetched {
				if res.err != nil && !errors.Is(res.err, errNotFound) {
					return out, res.err
				}
				if res.err == nil {
					out = append(out, Doc{
						Site: c.SiteName, ID: m.Key, Title: m.Title,
						Body: string(res.body), Posted: time.Unix(m.Date, 0).UTC(),
					})
				}
				// A 404 means the paste was deleted between listing and
				// fetch — definitively handled, so it commits too.
				progressed = true
			}
			c.mu.Lock()
			if res.fetched {
				c.seen[m.Key] = true
			}
			if m.Date > c.cursor {
				c.cursor = m.Date
			}
			c.mu.Unlock()
		}
		// A page of only boundary-second duplicates means the stream is
		// exhausted; avoid spinning.
		if !progressed {
			return out, nil
		}
	}
}

// Requests exposes the underlying request-attempt count.
func (c *Pastebin) Requests() int64 { return c.f.Requests() }

// Errors exposes the underlying failed-attempt count.
func (c *Pastebin) Errors() int64 { return c.f.Errors() }

// Board incrementally crawls one board of a chan-style JSON API.
type Board struct {
	BaseURL  string
	Board    string
	SiteName string

	f        *fetcher
	mu       sync.Mutex
	lastMod  map[int64]int64 // thread no -> last_modified handled
	seenPost map[int64]bool
}

// NewBoard builds a board crawler. siteName labels collected docs (e.g.
// "4chan/b").
func NewBoard(baseURL, board, siteName string, opts Options) *Board {
	return &Board{
		BaseURL:  baseURL,
		Board:    board,
		SiteName: siteName,
		f:        newFetcher(opts),
		lastMod:  make(map[int64]int64),
		seenPost: make(map[int64]bool),
	}
}

type catalogPage struct {
	Page    int `json:"page"`
	Threads []struct {
		No           int64 `json:"no"`
		LastModified int64 `json:"last_modified"`
	} `json:"threads"`
}

type threadJSON struct {
	Posts []struct {
		No   int64  `json:"no"`
		Time int64  `json:"time"`
		Com  string `json:"com"`
	} `json:"posts"`
}

// Poll fetches the catalog and re-reads every thread with new activity,
// returning posts not seen before.
//
// Like Pastebin.Poll, per-thread seenPost/lastMod state commits only after
// the thread JSON arrived and its new posts were appended to the result —
// a transient mid-poll failure leaves the failed thread (and every thread
// after it in catalog order) uncommitted for the next Poll to retry, and
// the documents returned alongside the error are all committed. With
// Options.Concurrency > 1, thread fetches fan out in parallel while commits
// stay in catalog order.
func (c *Board) Poll(ctx context.Context) ([]Doc, error) {
	raw, err := c.f.get(ctx, fmt.Sprintf("%s/%s/catalog.json", c.BaseURL, c.Board))
	if err != nil {
		return nil, err
	}
	var pages []catalogPage
	if err := json.Unmarshal(raw, &pages); err != nil {
		return nil, fmt.Errorf("crawler: bad catalog: %w", err)
	}
	// Threads with new activity, in catalog order.
	type candidate struct {
		no, lastMod int64
	}
	var cands []candidate
	c.mu.Lock()
	for _, page := range pages {
		for _, th := range page.Threads {
			if th.LastModified > c.lastMod[th.No] {
				cands = append(cands, candidate{no: th.No, lastMod: th.LastModified})
			}
		}
	}
	c.mu.Unlock()

	type fetchResult struct {
		tj  threadJSON
		err error
	}
	results := make([]fetchResult, len(cands))
	parallel.ForEach(len(cands), c.f.opts.Concurrency, func(i int) {
		results[i].tj, results[i].err = c.fetchThread(ctx, cands[i].no)
	})

	var out []Doc
	for i, cd := range cands {
		res := results[i]
		if errors.Is(res.err, errNotFound) {
			continue // thread pruned between catalog and fetch
		}
		if res.err != nil {
			return out, res.err
		}
		c.mu.Lock()
		for _, p := range res.tj.Posts {
			if c.seenPost[p.No] {
				continue
			}
			c.seenPost[p.No] = true
			out = append(out, Doc{
				Site: c.SiteName, ID: fmt.Sprintf("%s-%d", c.Board, p.No),
				Body: p.Com, HTML: true, Posted: time.Unix(p.Time, 0).UTC(),
			})
		}
		c.lastMod[cd.no] = cd.lastMod
		c.mu.Unlock()
	}
	return out, nil
}

// fetchThread retrieves and parses one thread's JSON without touching any
// crawler state; Poll commits the outcome.
func (c *Board) fetchThread(ctx context.Context, no int64) (threadJSON, error) {
	raw, err := c.f.get(ctx, fmt.Sprintf("%s/%s/thread/%d.json", c.BaseURL, c.Board, no))
	if err != nil {
		return threadJSON{}, err
	}
	var tj threadJSON
	if err := json.Unmarshal(raw, &tj); err != nil {
		return threadJSON{}, fmt.Errorf("crawler: bad thread %d: %w", no, err)
	}
	return tj, nil
}

// Requests exposes the underlying request-attempt count.
func (c *Board) Requests() int64 { return c.f.Requests() }

// Errors exposes the underlying failed-attempt count.
func (c *Board) Errors() int64 { return c.f.Errors() }
