// Package crawler implements the collection stage of the paper's pipeline
// (§3.1.1): incremental HTTP crawlers for a pastebin-style scraping API and
// for 4chan/8ch-style board JSON APIs.
//
// Each crawler is a poller: Poll performs one incremental sweep, returning
// only documents not seen in previous sweeps. The study driver interleaves
// clock advancement with polling, exactly as the paper's collection
// infrastructure tailed the live sites for thirteen weeks. The shared
// Fetcher underneath survives the failure modes of a live crawl: transient
// errors retry with seeded-jitter exponential backoff, 429/503 Retry-After
// hints are honored, truncated transfers surface as ErrTruncatedBody and
// retry, corrupt payloads surface as ErrCorruptPayload (and board threads
// carrying them are quarantined rather than committed), and a per-host
// circuit breaker with half-open probing sheds load from a down host
// instead of hammering it. A configurable minimum request interval provides
// the polite rate limiting a real deployment needs.
//
// Failure consistency is the invariant everything above relies on: per-
// document seen/cursor state commits only after a document's body is
// definitively in hand, so no fault — however ill-timed — can make a Poll
// skip a document forever. The chaos suite in internal/faults exercises
// every mode against this contract.
package crawler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"doxmeter/internal/parallel"
	"doxmeter/internal/randutil"
	"doxmeter/internal/telemetry"
)

// Doc is one collected document, normalized across sources.
type Doc struct {
	Site   string
	ID     string
	Title  string
	Body   string
	HTML   bool
	Posted time.Time
}

// Typed fetch failures. Callers distinguish these with errors.Is; everything
// else coming out of a Fetcher is a generic transport or status error.
var (
	// ErrNotFound marks 404s, which are terminal (no retry): deletions and
	// prune races are expected outcomes of a live crawl, not faults.
	ErrNotFound = errors.New("not found")
	// ErrTruncatedBody marks a response whose body carried fewer bytes
	// than its Content-Length advertised (or ended mid-transfer). It is
	// retryable: the document itself is fine, the transfer was not.
	ErrTruncatedBody = errors.New("truncated body")
	// ErrCorruptPayload marks a 200 response whose body failed structural
	// validation (unparseable JSON, markerless HTML). Retryable; a caller
	// seeing it persist must quarantine the document — count and skip —
	// rather than commit garbage or advance state past it.
	ErrCorruptPayload = errors.New("corrupt payload")
	// ErrCircuitOpen reports that the per-host circuit breaker stayed open
	// longer than Options.BreakerMaxWait. It consumes one retry attempt.
	ErrCircuitOpen = errors.New("circuit open")
)

// retryAfterError carries a server's explicit back-pressure signal (429 or
// 503 with a Retry-After header). The retry loop sleeps the advertised
// delay instead of its own backoff. The breaker treats it as a healthy
// response: the host is up and talking, just asking for room.
type retryAfterError struct {
	status int
	delay  time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("status %d (retry after %v)", e.status, e.delay)
}

// Options configures shared crawler behaviour.
type Options struct {
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// MinInterval is the minimum spacing between requests (0 = none).
	MinInterval time.Duration
	// Retries is how many times a failed request is retried. Zero means
	// the default of 2; negative disables retries entirely (mirroring the
	// classifier's MinTokens convention, since "0 retries" is otherwise
	// indistinguishable from "unset").
	Retries int
	// Backoff is the base retry backoff (default 50ms). The delay before
	// retry n is drawn from [base/2, base) with base = Backoff·2^(n-1)
	// capped at MaxBackoff; the jitter is seeded (see Seed) so runs stay
	// reproducible while concurrent retries still decorrelate.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff (default 5s).
	MaxBackoff time.Duration
	// Seed seeds the backoff jitter RNG. Same seed, same jitter sequence.
	Seed int64
	// RequestTimeout bounds one attempt end to end — dial, headers, and
	// the full body read — so a stalled transfer cannot hang a poll.
	// Zero disables the per-attempt deadline (the caller's context still
	// applies).
	RequestTimeout time.Duration
	// MaxRetryAfter caps how long a server-advertised Retry-After is
	// honored (default 30s), bounding the damage of a hostile or broken
	// header.
	MaxRetryAfter time.Duration
	// BreakerThreshold is how many consecutive failures open the per-host
	// circuit breaker. Zero means the default of 5; negative disables the
	// breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a single half-open probe (default 250ms).
	BreakerCooldown time.Duration
	// BreakerMaxWait bounds how long one attempt blocks waiting for an
	// open breaker before giving up with ErrCircuitOpen (default 15s).
	BreakerMaxWait time.Duration
	// Concurrency bounds how many paste-body or thread fetches one Poll
	// issues in parallel. Values <= 1 mean serial, the default, so
	// existing single-threaded behaviour (and request ordering) is
	// preserved unless a caller opts in. Returned document order is
	// identical at any concurrency: fetches fan out, but results are
	// committed in listing/catalog order.
	Concurrency int
	// Telemetry, when non-nil, is the shared registry the fetcher's
	// doxmeter_fetch_* series are declared on, labeled by TelemetrySite.
	// When nil the fetcher keeps its counters on a private registry: the
	// code path (lock-free atomics) is identical either way, Stats() still
	// works, and nothing is exported.
	Telemetry *telemetry.Registry
	// TelemetrySite labels this fetcher's metric series (the crawler
	// constructors default it to their site name; "" falls back to
	// "unknown").
	TelemetrySite string
}

// ErrInvalidOptions is the sentinel every Options.Validate failure wraps,
// part of the uniform Validate() + withDefaults() contract shared with
// core.StudyConfig and faults.Profile.
var ErrInvalidOptions = errors.New("crawler: invalid Options")

// Validate rejects option values that withDefaults would otherwise turn
// into surprising behaviour mid-crawl. Zero values are always valid (they
// mean "use the default"); only actively contradictory settings fail.
func (o Options) Validate() error {
	bad := func(field string, v any) error {
		return fmt.Errorf("%w: %s = %v", ErrInvalidOptions, field, v)
	}
	if o.MinInterval < 0 {
		return bad("MinInterval", o.MinInterval)
	}
	if o.Backoff < 0 {
		return bad("Backoff", o.Backoff)
	}
	if o.MaxBackoff < 0 {
		return bad("MaxBackoff", o.MaxBackoff)
	}
	if o.MaxBackoff > 0 && o.Backoff > o.MaxBackoff {
		return fmt.Errorf("%w: Backoff %v exceeds MaxBackoff %v", ErrInvalidOptions, o.Backoff, o.MaxBackoff)
	}
	if o.RequestTimeout < 0 {
		return bad("RequestTimeout", o.RequestTimeout)
	}
	if o.MaxRetryAfter < 0 {
		return bad("MaxRetryAfter", o.MaxRetryAfter)
	}
	if o.BreakerCooldown < 0 {
		return bad("BreakerCooldown", o.BreakerCooldown)
	}
	if o.BreakerMaxWait < 0 {
		return bad("BreakerMaxWait", o.BreakerMaxWait)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	switch {
	case o.Retries == 0:
		o.Retries = 2
	case o.Retries < 0:
		o.Retries = 0
	}
	if o.Backoff == 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.MaxRetryAfter <= 0 {
		o.MaxRetryAfter = 30 * time.Second
	}
	switch {
	case o.BreakerThreshold == 0:
		o.BreakerThreshold = 5
	case o.BreakerThreshold < 0:
		o.BreakerThreshold = 0 // disabled
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 250 * time.Millisecond
	}
	if o.BreakerMaxWait <= 0 {
		o.BreakerMaxWait = 15 * time.Second
	}
	return o
}

// FetchStats is a snapshot of a Fetcher's operational counters — the
// signals a deployment watches for retry storms, rate-limit pressure and
// flapping hosts.
type FetchStats struct {
	Requests       int64 // HTTP attempts issued, including failed dials
	Errors         int64 // failed attempts (transport, non-2xx except 404, bad body)
	Retries        int64 // retry iterations taken after a failed attempt
	RateLimited    int64 // 429/503 responses carrying Retry-After
	Truncated      int64 // bodies shorter than their Content-Length
	Corrupt        int64 // 200 payloads that failed structural validation
	Quarantined    int64 // documents skipped after persistent corruption
	BreakerOpens   int64 // closed→open transitions of the circuit breaker
	BreakerGiveUps int64 // attempts abandoned after BreakerMaxWait
}

// Plus returns the field-wise sum of two snapshots.
func (s FetchStats) Plus(o FetchStats) FetchStats {
	s.Requests += o.Requests
	s.Errors += o.Errors
	s.Retries += o.Retries
	s.RateLimited += o.RateLimited
	s.Truncated += o.Truncated
	s.Corrupt += o.Corrupt
	s.Quarantined += o.Quarantined
	s.BreakerOpens += o.BreakerOpens
	s.BreakerGiveUps += o.BreakerGiveUps
	return s
}

// fetchMetrics are the Fetcher's registry-backed instruments. They are the
// single source of truth for its operational counters: Stats(), the exit
// summaries and /metrics all read these same atomics, so they can never
// disagree. Instruments are resolved once at construction; the hot path
// only touches lock-free atomics (cheaper than the mutex the pre-telemetry
// counters took).
type fetchMetrics struct {
	requests, errors, retries, rateLimited *telemetry.Counter
	truncated, corrupt, quarantined        *telemetry.Counter
	breakerOpens, breakerGiveUps           *telemetry.Counter
	backoffSeconds, retryAfterSeconds      *telemetry.Counter
	bytes                                  *telemetry.Counter
	breakerState                           *telemetry.Gauge
	attemptSeconds                         *telemetry.Histogram
}

func newFetchMetrics(reg *telemetry.Registry, site string) *fetchMetrics {
	if reg == nil {
		// Private registry: same instruments, same code path, no export.
		reg = telemetry.NewRegistry()
	}
	if site == "" {
		site = "unknown"
	}
	c := func(name, help string) *telemetry.Counter {
		return reg.NewCounter(name, help, "site").With(site)
	}
	return &fetchMetrics{
		requests:          c("doxmeter_fetch_requests_total", "HTTP attempts issued, including failed dials."),
		errors:            c("doxmeter_fetch_errors_total", "Failed attempts (transport, non-2xx except 404, bad body)."),
		retries:           c("doxmeter_fetch_retries_total", "Retry iterations taken after a failed attempt."),
		rateLimited:       c("doxmeter_fetch_rate_limited_total", "429/503 responses carrying Retry-After."),
		truncated:         c("doxmeter_fetch_truncated_total", "Bodies shorter than their Content-Length."),
		corrupt:           c("doxmeter_fetch_corrupt_total", "200 payloads that failed structural validation."),
		quarantined:       c("doxmeter_fetch_quarantined_total", "Documents skipped after persistent corruption."),
		breakerOpens:      c("doxmeter_fetch_breaker_opens_total", "Closed-to-open transitions of the circuit breaker."),
		breakerGiveUps:    c("doxmeter_fetch_breaker_giveups_total", "Attempts abandoned after BreakerMaxWait."),
		backoffSeconds:    c("doxmeter_fetch_backoff_sleep_seconds_total", "Wall seconds slept in exponential backoff."),
		retryAfterSeconds: c("doxmeter_fetch_retry_after_wait_seconds_total", "Wall seconds slept honoring Retry-After hints."),
		bytes:             c("doxmeter_fetch_bytes_total", "Response body bytes fetched successfully."),
		breakerState: reg.NewGauge("doxmeter_fetch_breaker_state",
			"Circuit breaker state: 0 closed, 1 open.", "site").With(site),
		attemptSeconds: reg.NewHistogram("doxmeter_fetch_attempt_seconds",
			"Latency of individual HTTP attempts in seconds.", nil, "site").With(site),
	}
}

// Fetcher performs rate-limited, retrying, breaker-guarded GETs. One
// Fetcher serves one host (its breaker state is host-wide); it is safe for
// concurrent use.
type Fetcher struct {
	opts    Options
	breaker breaker
	m       *fetchMetrics

	mu      sync.Mutex
	rng     *rand.Rand
	lastReq time.Time
}

// NewFetcher builds a Fetcher with the given options.
func NewFetcher(opts Options) *Fetcher {
	opts = opts.withDefaults()
	return &Fetcher{
		opts: opts,
		rng:  randutil.New(opts.Seed),
		m:    newFetchMetrics(opts.Telemetry, opts.TelemetrySite),
		breaker: breaker{
			threshold: opts.BreakerThreshold,
			cooldown:  opts.BreakerCooldown,
		},
	}
}

// Stats returns a snapshot of the operational counters, read from the same
// registry instruments /metrics exports. Counters are independent atomics,
// so a snapshot taken mid-flight may be skewed by in-progress attempts —
// exactly like scraping /metrics.
func (f *Fetcher) Stats() FetchStats {
	return FetchStats{
		Requests:       int64(f.m.requests.Value()),
		Errors:         int64(f.m.errors.Value()),
		Retries:        int64(f.m.retries.Value()),
		RateLimited:    int64(f.m.rateLimited.Value()),
		Truncated:      int64(f.m.truncated.Value()),
		Corrupt:        int64(f.m.corrupt.Value()),
		Quarantined:    int64(f.m.quarantined.Value()),
		BreakerOpens:   int64(f.m.breakerOpens.Value()),
		BreakerGiveUps: int64(f.m.breakerGiveUps.Value()),
	}
}

// Get fetches a URL, honoring rate limits, Retry-After back-pressure and
// the circuit breaker, retrying transient errors with jittered backoff.
func (f *Fetcher) Get(ctx context.Context, url string) ([]byte, error) {
	return f.GetValidated(ctx, url, nil)
}

// GetValidated is Get plus a structural payload check: a 200 body that
// fails validate counts as ErrCorruptPayload and is retried like any other
// transient failure, because live corruption (mid-path mangling, half-
// written upstream caches) usually clears on refetch. If every attempt
// yields garbage the final error wraps ErrCorruptPayload so the caller can
// quarantine.
func (f *Fetcher) GetValidated(ctx context.Context, url string, validate func([]byte) error) ([]byte, error) {
	var out []byte
	err := f.fetch(ctx, url, validate, func(body []byte) {
		out = make([]byte, len(body))
		copy(out, body)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GetFunc is the zero-copy fetch: validate (may be nil) structurally
// checks the body exactly as in GetValidated, then consume sees the
// pooled bytes before they are recycled. consume must copy out anything
// it retains — the slice is invalid once GetFunc returns.
func (f *Fetcher) GetFunc(ctx context.Context, url string, validate func([]byte) error, consume func(body []byte)) error {
	return f.fetch(ctx, url, validate, consume)
}

// GetText fetches a URL and returns the body as a string, materialized
// straight from the pooled read buffer (one allocation, no intermediate
// []byte copy).
func (f *Fetcher) GetText(ctx context.Context, url string) (string, error) {
	var out string
	err := f.fetch(ctx, url, nil, func(body []byte) { out = string(body) })
	return out, err
}

// fetch is the retrying core behind Get/GetValidated/GetText. The response
// body lives in a pooled buffer for the duration of one attempt: validate
// (the structural check, which may parse-and-capture) and then consume (the
// materialization hook) see the pooled bytes, which are recycled before
// fetch returns — neither callback may retain the slice. Callers that parse
// inside validate and need no raw bytes pass consume=nil and pay zero
// copies.
func (f *Fetcher) fetch(ctx context.Context, url string, validate func([]byte) error, consume func([]byte)) error {
	var lastErr error
	for attempt := 0; attempt <= f.opts.Retries; attempt++ {
		if attempt > 0 {
			f.m.retries.Inc()
			delay, fromRetryAfter := f.retryDelay(attempt, lastErr)
			select {
			case <-time.After(delay):
				if fromRetryAfter {
					f.m.retryAfterSeconds.Add(delay.Seconds())
				} else {
					f.m.backoffSeconds.Add(delay.Seconds())
				}
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := f.throttle(ctx); err != nil {
			return err
		}
		if err := f.breaker.acquire(ctx, f.opts.BreakerMaxWait); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			f.m.breakerGiveUps.Inc()
			lastErr = fmt.Errorf("%w after %v", ErrCircuitOpen, f.opts.BreakerMaxWait)
			continue
		}
		bp, err := f.once(ctx, url)
		if f.breaker.record(breakerHealthy(err)) {
			f.m.breakerOpens.Inc()
		}
		f.m.breakerState.Set(breakerStateValue(f.breaker.isOpen()))
		if err == nil && validate != nil {
			if verr := validate(*bp); verr != nil {
				f.m.corrupt.Inc()
				f.m.errors.Inc()
				if !errors.Is(verr, ErrCorruptPayload) {
					verr = fmt.Errorf("%w: %v", ErrCorruptPayload, verr)
				}
				err = verr
			}
		}
		if err == nil {
			if consume != nil {
				consume(*bp)
			}
			putReadBuf(bp)
			return nil
		}
		if bp != nil {
			putReadBuf(bp)
		}
		if errors.Is(err, ErrNotFound) {
			return err
		}
		if ctx.Err() != nil {
			// The caller's context expired mid-attempt; whatever error the
			// transport dressed it in, it is terminal.
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("crawler: %s failed after %d attempts: %w", url, f.opts.Retries+1, lastErr)
}

// breakerHealthy decides whether a response outcome counts for or against
// the circuit breaker. 404 and Retry-After responses prove the host is up;
// transport failures, truncation and bare 5xx count as failures. Payload
// corruption is judged after this point and never reaches the breaker —
// the host answered, its content pipeline is what's broken.
func breakerHealthy(err error) bool {
	if err == nil || errors.Is(err, ErrNotFound) {
		return true
	}
	var ra *retryAfterError
	return errors.As(err, &ra)
}

// retryDelay computes the sleep before retry #attempt: the server's capped
// Retry-After when one was advertised (fromRetryAfter=true), otherwise
// seeded-jitter exponential backoff in [base/2, base).
func (f *Fetcher) retryDelay(attempt int, lastErr error) (delay time.Duration, fromRetryAfter bool) {
	var ra *retryAfterError
	if errors.As(lastErr, &ra) && ra.delay > 0 {
		if ra.delay > f.opts.MaxRetryAfter {
			return f.opts.MaxRetryAfter, true
		}
		return ra.delay, true
	}
	shift := attempt - 1
	if shift > 20 {
		shift = 20
	}
	base := f.opts.Backoff << shift
	if base <= 0 || base > f.opts.MaxBackoff {
		base = f.opts.MaxBackoff
	}
	f.mu.Lock()
	jitter := f.rng.Float64()
	f.mu.Unlock()
	return base/2 + time.Duration(jitter*float64(base/2)), false
}

// breakerStateValue maps the breaker's open flag to the gauge encoding.
func breakerStateValue(open bool) float64 {
	if open {
		return 1
	}
	return 0
}

// readBufPool recycles response-body read buffers across fetches. io.ReadAll
// re-grows a fresh buffer through the whole append chain on every call; the
// pooled buffer amortizes that to zero once warm.
var readBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 32<<10); return &b }}

func putReadBuf(bp *[]byte) {
	*bp = (*bp)[:0]
	readBufPool.Put(bp)
}

// appendAll is io.ReadAll into a caller-owned buffer: appends r's bytes to
// buf, growing as needed, with io.EOF mapped to success and every other
// error (including io.ErrUnexpectedEOF) passed through.
func appendAll(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			if err == io.EOF {
				return buf, nil
			}
			return buf, err
		}
	}
}

// once runs a single fetch attempt. On success the body is returned in a
// pooled buffer which the caller must release via putReadBuf.
func (f *Fetcher) once(ctx context.Context, url string) (*[]byte, error) {
	if f.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.opts.RequestTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	// Count the attempt before Do so failed dials and timeouts are visible
	// in Requests(); previously only completed round-trips were counted and
	// retry storms against a dead host looked like zero traffic.
	f.m.requests.Inc()
	start := time.Now()
	defer func() { f.m.attemptSeconds.Observe(time.Since(start).Seconds()) }()
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		f.m.errors.Inc()
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		// 404 is an expected outcome (deletion/prune races), not an error.
		return nil, ErrNotFound
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
		delay, _ := parseRetryAfter(resp.Header.Get("Retry-After"))
		f.m.errors.Inc()
		f.m.rateLimited.Inc()
		return nil, &retryAfterError{status: resp.StatusCode, delay: delay}
	case resp.StatusCode != http.StatusOK:
		f.m.errors.Inc()
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	// The body read runs under the same per-attempt deadline as the dial,
	// so a stalled transfer ends in a timeout, not a hung poll.
	bp := readBufPool.Get().(*[]byte)
	body, err := appendAll(io.LimitReader(resp.Body, 16<<20), (*bp)[:0])
	*bp = body[:0] // keep the grown capacity pooled whatever happens below
	switch {
	case err != nil && errors.Is(err, io.ErrUnexpectedEOF):
		f.m.errors.Inc()
		f.m.truncated.Inc()
		n := len(body)
		putReadBuf(bp)
		return nil, fmt.Errorf("%w: connection closed after %d of %d bytes", ErrTruncatedBody, n, resp.ContentLength)
	case err != nil:
		f.m.errors.Inc()
		putReadBuf(bp)
		return nil, err
	case resp.ContentLength > 0 && int64(len(body)) < resp.ContentLength:
		f.m.errors.Inc()
		f.m.truncated.Inc()
		n := len(body)
		putReadBuf(bp)
		return nil, fmt.Errorf("%w: got %d of %d bytes", ErrTruncatedBody, n, resp.ContentLength)
	}
	f.m.bytes.Add(float64(len(body)))
	*bp = body
	return bp, nil
}

// parseRetryAfter reads a Retry-After value: delta seconds (leniently
// including fractional seconds, which real servers emit despite RFC 7231's
// integer grammar) or an HTTP-date. Negative and unparseable values report
// ok=false with a zero delay.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		// NaN fails both comparisons and huge values (1e99, +Inf) would
		// overflow the Duration conversion to negative — treat anything
		// outside a sane range as unusable.
		const maxSecs = float64(1<<62) / float64(time.Second)
		if !(secs >= 0) {
			return 0, false
		}
		if secs > maxSecs {
			secs = maxSecs
		}
		return time.Duration(secs * float64(time.Second)), true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d < 0 {
			return 0, false
		}
		return d, true
	}
	return 0, false
}

// throttle enforces the minimum request interval.
func (f *Fetcher) throttle(ctx context.Context) error {
	if f.opts.MinInterval <= 0 {
		return nil
	}
	f.mu.Lock()
	now := time.Now()
	next := f.lastReq.Add(f.opts.MinInterval)
	if next.Before(now) {
		next = now
	}
	f.lastReq = next // reserve the slot
	wait := next.Sub(now)
	f.mu.Unlock()
	if wait <= 0 {
		return nil
	}
	select {
	case <-time.After(wait):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// breaker is a consecutive-failure circuit breaker with half-open probing.
// Open, it admits one probe per cooldown; a healthy probe closes it, a
// failed probe restarts the cooldown. acquire blocks (bounded) rather than
// failing fast: the crawl's priority is completeness, so callers wait for
// the host to come back and only abandon an attempt after BreakerMaxWait.
type breaker struct {
	threshold int // <= 0 disables
	cooldown  time.Duration

	mu          sync.Mutex
	consecutive int
	open        bool
	probing     bool
	openedAt    time.Time
}

// acquire blocks until the breaker admits a request: immediately when
// closed, as the single half-open probe once the cooldown elapses, or not
// at all — ErrCircuitOpen — after maxWait.
func (b *breaker) acquire(ctx context.Context, maxWait time.Duration) error {
	if b.threshold <= 0 {
		return nil
	}
	deadline := time.Now().Add(maxWait)
	for {
		b.mu.Lock()
		if !b.open {
			b.mu.Unlock()
			return nil
		}
		if !b.probing && time.Since(b.openedAt) >= b.cooldown {
			b.probing = true // this caller carries the half-open probe
			b.mu.Unlock()
			return nil
		}
		b.mu.Unlock()
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return ErrCircuitOpen
		}
		wait := b.cooldown / 4
		if wait > remaining {
			wait = remaining
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// isOpen reports the breaker's current state (for the state gauge).
func (b *breaker) isOpen() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// record feeds an outcome back and reports whether this outcome opened the
// breaker (a closed→open transition, for stats).
func (b *breaker) record(healthy bool) bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if healthy {
		b.consecutive = 0
		b.open = false
		b.probing = false
		return false
	}
	b.consecutive++
	if b.open {
		// Failed probe (or a straggler failing while open): restart the
		// cooldown, keep the breaker open.
		b.openedAt = time.Now()
		b.probing = false
		return false
	}
	if b.consecutive >= b.threshold {
		b.open = true
		b.probing = false
		b.openedAt = time.Now()
		return true
	}
	return false
}

// Parse helpers. These are the only paths from raw bytes to structured
// crawl data, shared by Poll and the fuzz targets; every parse failure
// wraps ErrCorruptPayload so fetch-level validation and quarantine logic
// key off one sentinel.

// The Into variants decode into caller-owned storage so the pollers can
// reuse one decode target across pages and threads (json.Unmarshal reuses a
// slice's backing array when the capacity suffices). The value-returning
// wrappers remain the fuzz-target entry points.

func parseListingInto(raw []byte, dst []pasteMeta) ([]pasteMeta, error) {
	dst = dst[:0]
	if err := json.Unmarshal(raw, &dst); err != nil {
		return dst[:0], fmt.Errorf("bad listing: %w (%v)", ErrCorruptPayload, err)
	}
	return dst, nil
}

func parseCatalogInto(raw []byte, dst []catalogPage) ([]catalogPage, error) {
	dst = dst[:0]
	if err := json.Unmarshal(raw, &dst); err != nil {
		return dst[:0], fmt.Errorf("bad catalog: %w (%v)", ErrCorruptPayload, err)
	}
	return dst, nil
}

func parseThreadInto(raw []byte, tj *threadJSON) error {
	tj.Posts = tj.Posts[:0]
	if err := json.Unmarshal(raw, tj); err != nil {
		tj.Posts = tj.Posts[:0]
		return fmt.Errorf("bad thread: %w (%v)", ErrCorruptPayload, err)
	}
	return nil
}

func parseListing(raw []byte) ([]pasteMeta, error) {
	page, err := parseListingInto(raw, nil)
	if err != nil {
		return nil, err
	}
	return page, nil
}

func parseCatalog(raw []byte) ([]catalogPage, error) {
	pages, err := parseCatalogInto(raw, nil)
	if err != nil {
		return nil, err
	}
	return pages, nil
}

func parseThread(raw []byte) (threadJSON, error) {
	var tj threadJSON
	if err := parseThreadInto(raw, &tj); err != nil {
		return threadJSON{}, err
	}
	return tj, nil
}

func validListing(raw []byte) error { _, err := parseListing(raw); return err }
func validCatalog(raw []byte) error { _, err := parseCatalog(raw); return err }
func validThread(raw []byte) error  { _, err := parseThread(raw); return err }

// Pastebin incrementally crawls a pastebin-style scraping API.
type Pastebin struct {
	BaseURL  string
	SiteName string
	PageSize int

	f      *Fetcher
	mu     sync.Mutex
	cursor int64
	seen   map[string]bool

	// Poll-local scratch (Poll is serial per crawler — the cursor protocol
	// already assumes that): reused listing decode target and URL buffer.
	pageScratch []pasteMeta
	urlScratch  []byte

	// Delta-checkpoint journal: paste keys committed since the last cut,
	// kept only while journaling is enabled. The seen set is add-only, so
	// new keys plus the cursor fully describe one cut's worth of change.
	journalOn     bool
	jSeen         []string
	lastCutCursor int64
}

// NewPastebin builds the crawler; baseURL has no trailing slash.
func NewPastebin(baseURL string, opts Options) *Pastebin {
	if opts.TelemetrySite == "" {
		opts.TelemetrySite = "pastebin"
	}
	return &Pastebin{
		BaseURL:  baseURL,
		SiteName: "pastebin",
		PageSize: 250,
		f:        NewFetcher(opts),
		seen:     make(map[string]bool),
	}
}

type pasteMeta struct {
	Key   string `json:"key"`
	Title string `json:"title"`
	Date  int64  `json:"date"`
}

// Poll sweeps the listing from the current cursor, fetching every new paste
// body. Pastes that vanish between listing and fetch (deletions) are
// skipped, matching a live crawler's race.
//
// Crash/error consistency: seen/cursor state is committed per paste only
// after its body fetch definitively resolved (success, or a 404 meaning the
// paste is gone) and the document has been appended to the result.
// On a transient failure Poll returns the documents collected so far — all
// of which are committed — together with the error; the failed paste and
// everything after it in the listing stay uncommitted, so the next Poll
// re-lists and re-fetches them instead of silently skipping them forever.
// A corrupt listing likewise fails the poll without advancing the cursor.
//
// With Options.Concurrency > 1 the body fetches of one page fan out in
// parallel, but commits happen in listing order on the calling goroutine,
// so the returned documents are identical to a serial poll.
func (c *Pastebin) Poll(ctx context.Context) ([]Doc, error) {
	var out []Doc
	itemPrefix := c.BaseURL + "/api_scrape_item.php?i="
	for {
		c.mu.Lock()
		cursor := c.cursor
		c.mu.Unlock()
		u := append(c.urlScratch[:0], c.BaseURL...)
		u = append(u, "/api_scraping.php?since="...)
		u = strconv.AppendInt(u, cursor, 10)
		u = append(u, "&limit="...)
		u = strconv.AppendInt(u, int64(c.PageSize), 10)
		c.urlScratch = u
		// The validate callback parses into the reused decode target, so the
		// listing is decoded exactly once and the raw bytes never leave the
		// fetcher's pooled buffer.
		page := c.pageScratch
		err := c.f.fetch(ctx, string(u), func(raw []byte) error {
			var perr error
			page, perr = parseListingInto(raw, page)
			return perr
		}, nil)
		c.pageScratch = page
		if err != nil {
			return out, fmt.Errorf("crawler: %w", err)
		}
		if len(page) == 0 {
			return out, nil
		}

		// Pick out the pastes not yet committed (read-only check; nothing
		// is marked seen until its body is in hand).
		fetchIdx := make([]int, 0, len(page))
		c.mu.Lock()
		for i, m := range page {
			if !c.seen[m.Key] {
				fetchIdx = append(fetchIdx, i)
			}
		}
		c.mu.Unlock()

		type fetchResult struct {
			body    string
			err     error
			fetched bool
		}
		results := make([]fetchResult, len(page))
		parallel.ForEach(len(fetchIdx), c.f.opts.Concurrency, func(j int) {
			i := fetchIdx[j]
			// Paste bodies are raw text: no structural validation is
			// possible (any bytes are a legal paste).
			body, err := c.f.GetText(ctx, itemPrefix+page[i].Key)
			results[i] = fetchResult{body: body, err: err, fetched: true}
		})

		// Commit in listing order. The cursor only ever advances across the
		// prefix of handled pastes: hitting a transient failure abandons the
		// rest of the page (successfully fetched or not) uncommitted.
		progressed := false
		for i, m := range page {
			res := results[i]
			if res.fetched {
				if res.err != nil && !errors.Is(res.err, ErrNotFound) {
					return out, res.err
				}
				if res.err == nil {
					out = append(out, Doc{
						Site: c.SiteName, ID: m.Key, Title: m.Title,
						Body: res.body, Posted: time.Unix(m.Date, 0).UTC(),
					})
				}
				// A 404 means the paste was deleted between listing and
				// fetch — definitively handled, so it commits too.
				progressed = true
			}
			c.mu.Lock()
			if res.fetched && !c.seen[m.Key] {
				c.seen[m.Key] = true
				if c.journalOn {
					c.jSeen = append(c.jSeen, m.Key)
				}
			}
			if m.Date > c.cursor {
				c.cursor = m.Date
			}
			c.mu.Unlock()
		}
		// A page of only boundary-second duplicates means the stream is
		// exhausted; avoid spinning.
		if !progressed {
			return out, nil
		}
	}
}

// Stats exposes the underlying fetcher's full counter snapshot.
func (c *Pastebin) Stats() FetchStats { return c.f.Stats() }

// PastebinState is the Pastebin crawler's versioned snapshot payload:
// the listing cursor and the committed seen set. Paste keys are opaque
// site-assigned IDs, so the state is persistence-safe.
type PastebinState struct {
	Cursor int64    `json:"cursor"`
	Seen   []string `json:"seen"` // sorted
}

// Snapshot captures the crawler's commit state for checkpointing.
func (c *Pastebin) Snapshot() PastebinState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := PastebinState{Cursor: c.cursor, Seen: make([]string, 0, len(c.seen))}
	for k := range c.seen {
		st.Seen = append(st.Seen, k)
	}
	sort.Strings(st.Seen)
	return st
}

// Restore replaces the crawler's commit state with a snapshot. The next
// Poll resumes from the restored cursor exactly as if the process had
// never died; any documents listed-but-uncommitted at snapshot time are
// re-fetched, preserving the no-skipped-documents invariant.
func (c *Pastebin) Restore(st PastebinState) {
	seen := make(map[string]bool, len(st.Seen))
	for _, k := range st.Seen {
		seen[k] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cursor = st.Cursor
	c.seen = seen
	c.jSeen = nil
	c.lastCutCursor = st.Cursor
}

// PastebinDelta is the Pastebin crawler's incremental checkpoint
// payload: the cursor wholesale plus the paste keys committed since the
// previous cut. Applying it to the previous cut's PastebinState
// reproduces the next PastebinState exactly.
type PastebinDelta struct {
	Cursor int64    `json:"cursor"`
	Added  []string `json:"added,omitempty"` // sorted
}

// SetDeltaJournal enables (or disables) mutation journaling for delta
// checkpoints. Enabling starts an empty journal; the non-durable path
// keeps journaling off and pays nothing per commit.
func (c *Pastebin) SetDeltaJournal(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journalOn = on
	c.jSeen = nil
	c.lastCutCursor = c.cursor
}

// CutDelta drains the journal into a delta covering every mutation since
// the previous cut, and reports whether anything changed. Full-snapshot
// cuts call it too (discarding the result) so the next delta's base is
// the snapshot just written.
func (c *Pastebin) CutDelta() (PastebinDelta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dirty := len(c.jSeen) > 0 || c.cursor != c.lastCutCursor
	d := PastebinDelta{Cursor: c.cursor}
	if len(c.jSeen) > 0 {
		d.Added = make([]string, len(c.jSeen))
		copy(d.Added, c.jSeen)
		sort.Strings(d.Added)
	}
	c.jSeen = nil
	c.lastCutCursor = c.cursor
	return d, dirty
}

// Apply folds a delta into a prior PastebinState in place, producing the
// state the delta was cut from, byte-identical under JSON marshaling to
// a Snapshot taken at the cut (both keep Seen sorted).
func (d PastebinDelta) Apply(st *PastebinState) {
	st.Cursor = d.Cursor
	st.Seen = mergeSortedStrings(st.Seen, d.Added)
}

// mergeSortedStrings merges two sorted, mutually disjoint string slices
// into one sorted slice, preserving the non-nil-ness of a (an empty
// committed state marshals as [], not null).
func mergeSortedStrings(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// mergeSortedInt64 is mergeSortedStrings for post numbers.
func mergeSortedInt64(a, b []int64) []int64 {
	if len(b) == 0 {
		return a
	}
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Board incrementally crawls one board of a chan-style JSON API.
type Board struct {
	BaseURL  string
	Board    string
	SiteName string

	f        *Fetcher
	mu       sync.Mutex
	lastMod  map[int64]int64 // thread no -> last_modified handled
	seenPost map[int64]bool

	// Poll-local scratch (Poll is serial per crawler): reused catalog decode
	// target, candidate list and doc-ID build buffer.
	catScratch  []catalogPage
	candScratch []boardCandidate
	idScratch   []byte

	// Delta-checkpoint journal: threads whose watermark moved and posts
	// committed since the last cut. seenPost is add-only and lastMod
	// entries are never removed, so these two sets fully describe one
	// cut's worth of change.
	journalOn bool
	jThreads  map[int64]bool
	jPosts    []int64
}

// NewBoard builds a board crawler. siteName labels collected docs (e.g.
// "4chan/b").
func NewBoard(baseURL, board, siteName string, opts Options) *Board {
	if opts.TelemetrySite == "" {
		opts.TelemetrySite = siteName
	}
	return &Board{
		BaseURL:  baseURL,
		Board:    board,
		SiteName: siteName,
		f:        NewFetcher(opts),
		lastMod:  make(map[int64]int64),
		seenPost: make(map[int64]bool),
	}
}

type catalogPage struct {
	Page    int `json:"page"`
	Threads []struct {
		No           int64 `json:"no"`
		LastModified int64 `json:"last_modified"`
	} `json:"threads"`
}

type threadJSON struct {
	Posts []struct {
		No   int64  `json:"no"`
		Time int64  `json:"time"`
		Com  string `json:"com"`
	} `json:"posts"`
}

type boardCandidate struct {
	no, lastMod int64
}

// threadPool recycles thread decode targets across the parallel thread
// fetches; json.Unmarshal reuses the pooled Posts backing array, so a warm
// poll allocates only the post strings that actually escape into Docs.
var threadPool = sync.Pool{New: func() any { return new(threadJSON) }}

// Poll fetches the catalog and re-reads every thread with new activity,
// returning posts not seen before.
//
// Like Pastebin.Poll, per-thread seenPost/lastMod state commits only after
// the thread JSON arrived and its new posts were appended to the result —
// a transient mid-poll failure leaves the failed thread (and every thread
// after it in catalog order) uncommitted for the next Poll to retry, and
// the documents returned alongside the error are all committed. A thread
// whose JSON stays corrupt through every retry is quarantined: counted in
// Stats().Quarantined and skipped for this poll without committing its
// lastMod, so the next poll tries it again — the cursor never advances
// past an unfetched document. With Options.Concurrency > 1, thread fetches
// fan out in parallel while commits stay in catalog order.
func (c *Board) Poll(ctx context.Context) ([]Doc, error) {
	// The validate callback parses into the reused decode target, so the
	// catalog is decoded exactly once straight from the pooled read buffer.
	pages := c.catScratch
	err := c.f.fetch(ctx, c.BaseURL+"/"+c.Board+"/catalog.json", func(raw []byte) error {
		var perr error
		pages, perr = parseCatalogInto(raw, pages)
		return perr
	}, nil)
	c.catScratch = pages
	if err != nil {
		return nil, fmt.Errorf("crawler: %w", err)
	}
	// Threads with new activity, in catalog order.
	cands := c.candScratch[:0]
	c.mu.Lock()
	for _, page := range pages {
		for _, th := range page.Threads {
			if th.LastModified > c.lastMod[th.No] {
				cands = append(cands, boardCandidate{no: th.No, lastMod: th.LastModified})
			}
		}
	}
	c.mu.Unlock()
	c.candScratch = cands

	type fetchResult struct {
		tj  *threadJSON
		err error
	}
	threadPrefix := c.BaseURL + "/" + c.Board + "/thread/"
	results := make([]fetchResult, len(cands))
	parallel.ForEach(len(cands), c.f.opts.Concurrency, func(i int) {
		tj := threadPool.Get().(*threadJSON)
		err := c.fetchThread(ctx, threadPrefix, cands[i].no, tj)
		if err != nil {
			threadPool.Put(tj)
			results[i].err = err
			return
		}
		results[i].tj = tj
	})

	var out []Doc
	idPrefixLen := len(c.Board) + 1
	c.idScratch = append(append(c.idScratch[:0], c.Board...), '-')
	for i, cd := range cands {
		res := results[i]
		switch {
		case errors.Is(res.err, ErrNotFound):
			continue // thread pruned between catalog and fetch
		case errors.Is(res.err, ErrCorruptPayload):
			// Persistent corruption: quarantine the thread — count it,
			// skip it, leave lastMod uncommitted for the next poll.
			c.f.m.quarantined.Inc()
			continue
		case res.err != nil:
			return out, res.err
		}
		c.mu.Lock()
		for _, p := range res.tj.Posts {
			if c.seenPost[p.No] {
				continue
			}
			c.seenPost[p.No] = true
			if c.journalOn {
				c.jPosts = append(c.jPosts, p.No)
			}
			c.idScratch = strconv.AppendInt(c.idScratch[:idPrefixLen], p.No, 10)
			out = append(out, Doc{
				Site: c.SiteName, ID: string(c.idScratch),
				Body: p.Com, HTML: true, Posted: time.Unix(p.Time, 0).UTC(),
			})
		}
		c.lastMod[cd.no] = cd.lastMod
		if c.journalOn {
			c.jThreads[cd.no] = true
		}
		c.mu.Unlock()
		threadPool.Put(res.tj)
	}
	return out, nil
}

// fetchThread retrieves one thread's JSON into the pooled decode target
// without touching any crawler state; Poll commits the outcome. The parse
// happens inside the fetch's validate hook, straight off the pooled read
// buffer, so corrupt payloads still count and retry exactly as before.
func (c *Board) fetchThread(ctx context.Context, threadPrefix string, no int64, tj *threadJSON) error {
	var nb [24]byte
	u := threadPrefix + string(strconv.AppendInt(nb[:0], no, 10)) + ".json"
	return c.f.fetch(ctx, u, func(raw []byte) error { return parseThreadInto(raw, tj) }, nil)
}

// Stats exposes the underlying fetcher's full counter snapshot.
func (c *Board) Stats() FetchStats { return c.f.Stats() }

// BoardState is the Board crawler's versioned snapshot payload: per-
// thread last-modified watermarks and the committed post set. Thread and
// post numbers are site-assigned integers, so the state is
// persistence-safe.
type BoardState struct {
	LastMod   map[int64]int64 `json:"last_mod"`
	SeenPosts []int64         `json:"seen_posts"` // sorted
}

// Snapshot captures the crawler's commit state for checkpointing.
func (c *Board) Snapshot() BoardState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := BoardState{
		LastMod:   make(map[int64]int64, len(c.lastMod)),
		SeenPosts: make([]int64, 0, len(c.seenPost)),
	}
	for no, lm := range c.lastMod {
		st.LastMod[no] = lm
	}
	for no := range c.seenPost {
		st.SeenPosts = append(st.SeenPosts, no)
	}
	sort.Slice(st.SeenPosts, func(i, j int) bool { return st.SeenPosts[i] < st.SeenPosts[j] })
	return st
}

// Restore replaces the crawler's commit state with a snapshot. Threads
// whose lastMod was uncommitted at snapshot time are re-read on the next
// Poll; already-seen posts within them are filtered by seenPost, so the
// resumed document stream is identical to an uninterrupted one.
func (c *Board) Restore(st BoardState) {
	lastMod := make(map[int64]int64, len(st.LastMod))
	for no, lm := range st.LastMod {
		lastMod[no] = lm
	}
	seenPost := make(map[int64]bool, len(st.SeenPosts))
	for _, no := range st.SeenPosts {
		seenPost[no] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastMod = lastMod
	c.seenPost = seenPost
	if c.journalOn {
		c.jThreads = make(map[int64]bool)
	}
	c.jPosts = nil
}

// BoardDelta is the Board crawler's incremental checkpoint payload: the
// watermarks of threads touched since the previous cut and the posts
// committed since it. Applying it to the previous cut's BoardState
// reproduces the next BoardState exactly.
type BoardDelta struct {
	LastMod    map[int64]int64 `json:"last_mod,omitempty"`
	AddedPosts []int64         `json:"added_posts,omitempty"` // sorted
}

// SetDeltaJournal enables (or disables) mutation journaling for delta
// checkpoints. Enabling starts an empty journal; the non-durable path
// keeps journaling off and pays nothing per commit.
func (c *Board) SetDeltaJournal(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journalOn = on
	if on {
		c.jThreads = make(map[int64]bool)
	} else {
		c.jThreads = nil
	}
	c.jPosts = nil
}

// CutDelta drains the journal into a delta covering every mutation since
// the previous cut, and reports whether anything changed. Full-snapshot
// cuts call it too (discarding the result) so the next delta's base is
// the snapshot just written.
func (c *Board) CutDelta() (BoardDelta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dirty := len(c.jThreads) > 0 || len(c.jPosts) > 0
	var d BoardDelta
	if len(c.jThreads) > 0 {
		d.LastMod = make(map[int64]int64, len(c.jThreads))
		for no := range c.jThreads {
			d.LastMod[no] = c.lastMod[no]
		}
		c.jThreads = make(map[int64]bool)
	}
	if len(c.jPosts) > 0 {
		d.AddedPosts = make([]int64, len(c.jPosts))
		copy(d.AddedPosts, c.jPosts)
		sort.Slice(d.AddedPosts, func(i, j int) bool { return d.AddedPosts[i] < d.AddedPosts[j] })
		c.jPosts = nil
	}
	return d, dirty
}

// Apply folds a delta into a prior BoardState in place, producing the
// state the delta was cut from, byte-identical under JSON marshaling to
// a Snapshot taken at the cut (JSON object keys marshal sorted; both
// keep SeenPosts sorted).
func (d BoardDelta) Apply(st *BoardState) {
	if st.LastMod == nil && len(d.LastMod) > 0 {
		st.LastMod = make(map[int64]int64, len(d.LastMod))
	}
	for no, lm := range d.LastMod {
		st.LastMod[no] = lm
	}
	st.SeenPosts = mergeSortedInt64(st.SeenPosts, d.AddedPosts)
}
