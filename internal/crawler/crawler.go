// Package crawler implements the collection stage of the paper's pipeline
// (§3.1.1): incremental HTTP crawlers for a pastebin-style scraping API and
// for 4chan/8ch-style board JSON APIs.
//
// Each crawler is a poller: Poll performs one incremental sweep, returning
// only documents not seen in previous sweeps. The study driver interleaves
// clock advancement with polling, exactly as the paper's collection
// infrastructure tailed the live sites for thirteen weeks. Transient HTTP
// failures are retried with backoff; a configurable minimum request
// interval provides the polite rate limiting a real deployment needs.
package crawler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Doc is one collected document, normalized across sources.
type Doc struct {
	Site   string
	ID     string
	Title  string
	Body   string
	HTML   bool
	Posted time.Time
}

// Options configures shared crawler behaviour.
type Options struct {
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// MinInterval is the minimum spacing between requests (0 = none).
	MinInterval time.Duration
	// Retries is how many times a failed request is retried (default 2).
	Retries int
	// Backoff is the base retry backoff (default 50ms, doubled per retry).
	Backoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff == 0 {
		o.Backoff = 50 * time.Millisecond
	}
	return o
}

// fetcher performs rate-limited, retrying GETs.
type fetcher struct {
	opts     Options
	mu       sync.Mutex
	lastReq  time.Time
	requests int64
}

func newFetcher(opts Options) *fetcher {
	return &fetcher{opts: opts.withDefaults()}
}

// errNotFound marks 404s, which are terminal (no retry).
var errNotFound = errors.New("not found")

// get fetches a URL, honoring rate limits and retrying transient errors.
func (f *fetcher) get(ctx context.Context, url string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= f.opts.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(f.opts.Backoff << (attempt - 1)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if err := f.throttle(ctx); err != nil {
			return nil, err
		}
		body, err := f.once(ctx, url)
		if err == nil {
			return body, nil
		}
		if errors.Is(err, errNotFound) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("crawler: %s failed after %d attempts: %w", url, f.opts.Retries+1, lastErr)
}

func (f *fetcher) once(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	f.mu.Lock()
	f.requests++
	f.mu.Unlock()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, errNotFound
	case resp.StatusCode != http.StatusOK:
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

// throttle enforces the minimum request interval.
func (f *fetcher) throttle(ctx context.Context) error {
	if f.opts.MinInterval <= 0 {
		return nil
	}
	f.mu.Lock()
	now := time.Now()
	next := f.lastReq.Add(f.opts.MinInterval)
	if next.Before(now) {
		next = now
	}
	f.lastReq = next // reserve the slot
	wait := next.Sub(now)
	f.mu.Unlock()
	if wait <= 0 {
		return nil
	}
	select {
	case <-time.After(wait):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Requests returns the number of HTTP requests issued so far.
func (f *fetcher) Requests() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests
}

// Pastebin incrementally crawls a pastebin-style scraping API.
type Pastebin struct {
	BaseURL  string
	SiteName string
	PageSize int

	f      *fetcher
	mu     sync.Mutex
	cursor int64
	seen   map[string]bool
}

// NewPastebin builds the crawler; baseURL has no trailing slash.
func NewPastebin(baseURL string, opts Options) *Pastebin {
	return &Pastebin{
		BaseURL:  baseURL,
		SiteName: "pastebin",
		PageSize: 250,
		f:        newFetcher(opts),
		seen:     make(map[string]bool),
	}
}

type pasteMeta struct {
	Key   string `json:"key"`
	Title string `json:"title"`
	Date  int64  `json:"date"`
}

// Poll sweeps the listing from the current cursor, fetching every new paste
// body. Pastes that vanish between listing and fetch (deletions) are
// skipped, matching a live crawler's race.
func (c *Pastebin) Poll(ctx context.Context) ([]Doc, error) {
	var out []Doc
	for {
		c.mu.Lock()
		cursor := c.cursor
		c.mu.Unlock()
		raw, err := c.f.get(ctx, fmt.Sprintf("%s/api_scraping.php?since=%d&limit=%d", c.BaseURL, cursor, c.PageSize))
		if err != nil {
			return out, err
		}
		var page []pasteMeta
		if err := json.Unmarshal(raw, &page); err != nil {
			return out, fmt.Errorf("crawler: bad listing: %w", err)
		}
		if len(page) == 0 {
			return out, nil
		}
		progressed := false
		for _, m := range page {
			c.mu.Lock()
			dup := c.seen[m.Key]
			if !dup {
				c.seen[m.Key] = true
				progressed = true
			}
			if m.Date > c.cursor {
				c.cursor = m.Date
			}
			c.mu.Unlock()
			if dup {
				continue
			}
			body, err := c.f.get(ctx, fmt.Sprintf("%s/api_scrape_item.php?i=%s", c.BaseURL, m.Key))
			if errors.Is(err, errNotFound) {
				continue // deleted between listing and fetch
			}
			if err != nil {
				return out, err
			}
			out = append(out, Doc{
				Site: c.SiteName, ID: m.Key, Title: m.Title,
				Body: string(body), Posted: time.Unix(m.Date, 0).UTC(),
			})
		}
		// A page of only boundary-second duplicates means the stream is
		// exhausted; avoid spinning.
		if !progressed && len(page) < c.PageSize {
			return out, nil
		}
		if !progressed {
			return out, nil
		}
	}
}

// Requests exposes the underlying request count.
func (c *Pastebin) Requests() int64 { return c.f.Requests() }

// Board incrementally crawls one board of a chan-style JSON API.
type Board struct {
	BaseURL  string
	Board    string
	SiteName string

	f        *fetcher
	mu       sync.Mutex
	lastMod  map[int64]int64 // thread no -> last_modified handled
	seenPost map[int64]bool
}

// NewBoard builds a board crawler. siteName labels collected docs (e.g.
// "4chan/b").
func NewBoard(baseURL, board, siteName string, opts Options) *Board {
	return &Board{
		BaseURL:  baseURL,
		Board:    board,
		SiteName: siteName,
		f:        newFetcher(opts),
		lastMod:  make(map[int64]int64),
		seenPost: make(map[int64]bool),
	}
}

type catalogPage struct {
	Page    int `json:"page"`
	Threads []struct {
		No           int64 `json:"no"`
		LastModified int64 `json:"last_modified"`
	} `json:"threads"`
}

type threadJSON struct {
	Posts []struct {
		No   int64  `json:"no"`
		Time int64  `json:"time"`
		Com  string `json:"com"`
	} `json:"posts"`
}

// Poll fetches the catalog and re-reads every thread with new activity,
// returning posts not seen before.
func (c *Board) Poll(ctx context.Context) ([]Doc, error) {
	raw, err := c.f.get(ctx, fmt.Sprintf("%s/%s/catalog.json", c.BaseURL, c.Board))
	if err != nil {
		return nil, err
	}
	var pages []catalogPage
	if err := json.Unmarshal(raw, &pages); err != nil {
		return nil, fmt.Errorf("crawler: bad catalog: %w", err)
	}
	var out []Doc
	for _, page := range pages {
		for _, th := range page.Threads {
			c.mu.Lock()
			handled := c.lastMod[th.No]
			c.mu.Unlock()
			if th.LastModified <= handled {
				continue
			}
			docs, err := c.pollThread(ctx, th.No)
			if err != nil {
				if errors.Is(err, errNotFound) {
					continue // thread pruned between catalog and fetch
				}
				return out, err
			}
			out = append(out, docs...)
			c.mu.Lock()
			c.lastMod[th.No] = th.LastModified
			c.mu.Unlock()
		}
	}
	return out, nil
}

func (c *Board) pollThread(ctx context.Context, no int64) ([]Doc, error) {
	raw, err := c.f.get(ctx, fmt.Sprintf("%s/%s/thread/%d.json", c.BaseURL, c.Board, no))
	if err != nil {
		return nil, err
	}
	var tj threadJSON
	if err := json.Unmarshal(raw, &tj); err != nil {
		return nil, fmt.Errorf("crawler: bad thread %d: %w", no, err)
	}
	var out []Doc
	for _, p := range tj.Posts {
		c.mu.Lock()
		dup := c.seenPost[p.No]
		if !dup {
			c.seenPost[p.No] = true
		}
		c.mu.Unlock()
		if dup {
			continue
		}
		out = append(out, Doc{
			Site: c.SiteName, ID: fmt.Sprintf("%s-%d", c.Board, p.No),
			Body: p.Com, HTML: true, Posted: time.Unix(p.Time, 0).UTC(),
		})
	}
	return out, nil
}

// Requests exposes the underlying request count.
func (c *Board) Requests() int64 { return c.f.Requests() }
