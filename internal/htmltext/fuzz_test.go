package htmltext

import (
	"strings"
	"testing"
)

// FuzzConvert hardens the converter against adversarial imageboard HTML:
// it must never panic, and simple well-formed wrappers must round-trip
// their text content.
func FuzzConvert(f *testing.F) {
	seeds := []string{
		"",
		"plain text",
		"<p>para</p>",
		"<ul><li>a</li><li>b</li></ul>",
		"<ol><li>1</li></ol>",
		"a<br>b<br/>c",
		"<script>evil()</script>ok",
		"<blockquote>&gt;implying</blockquote>",
		"unterminated <tag",
		"</" + strings.Repeat("ul>", 50),
		"<li>" + strings.Repeat("<ul>", 100),
		"&amp;&lt;&gt;&#39;&quot;",
		"<span class=\"quote\">&gt;&gt;123</span><br>reply",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := Convert(s)
		// Output never grows more than entity expansion allows.
		if len(out) > 2*len(s)+16 {
			t.Fatalf("output ballooned: %d -> %d", len(s), len(out))
		}
	})
}
