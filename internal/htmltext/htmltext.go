// Package htmltext converts HTML fragments to semantically equivalent plain
// text, mirroring the role html2text plays in the paper's pipeline (§3.1.2):
// postings scraped from 4chan.org and 8ch.net arrive as HTML and must be
// normalized before TF-IDF vectorization so that markup tokens do not leak
// into the vocabulary.
//
// The converter implements the transformations the paper calls out — list
// tags become indented, newline-separated items — plus the handful of
// block/inline rules needed for imageboard HTML: <br> and block elements
// break lines, <blockquote> is prefixed with "> ", scripts and styles are
// dropped wholesale, and entities are decoded. It is a single-pass scanner
// with no allocation proportional to tag depth; malformed HTML degrades to
// text rather than erroring, which is what a crawler needs.
//
// Conversion state (the output buffer, list counters) is pooled: one call
// allocates only the returned string plus whatever html.UnescapeString
// needs for entity-bearing text runs.
package htmltext

import (
	"html"
	"strings"
	"sync"
)

// convState is one conversion's reusable scratch.
type convState struct {
	buf        []byte
	ordinal    []int // per-depth ordered-list counters; 0 = unordered
	atLineHead bool
}

var convPool = sync.Pool{New: func() any { return &convState{buf: make([]byte, 0, 4096)} }}

func (st *convState) writeText(s string) {
	if s == "" {
		return
	}
	st.buf = append(st.buf, s...)
	st.atLineHead = strings.HasSuffix(s, "\n")
}

func (st *convState) newline() {
	if !st.atLineHead {
		st.buf = append(st.buf, '\n')
		st.atLineHead = true
	}
}

// Convert renders an HTML fragment as plain text.
func Convert(src string) string {
	st := convPool.Get().(*convState)
	st.buf = st.buf[:0]
	st.ordinal = st.ordinal[:0]
	st.atLineHead = true
	var (
		i         int
		listDepth int
		skipUntil string
	)
	for i < len(src) {
		c := src[i]
		if c != '<' {
			j := strings.IndexByte(src[i:], '<')
			var text string
			if j < 0 {
				text = src[i:]
				i = len(src)
			} else {
				text = src[i : i+j]
				i += j
			}
			if skipUntil == "" {
				st.writeText(html.UnescapeString(text))
			}
			continue
		}
		end := strings.IndexByte(src[i:], '>')
		if end < 0 {
			// Unterminated tag: treat the rest as text.
			if skipUntil == "" {
				st.writeText(html.UnescapeString(src[i:]))
			}
			break
		}
		tag := src[i+1 : i+end]
		i += end + 1
		name, closing := parseTag(tag)
		if skipUntil != "" {
			if closing && name == skipUntil {
				skipUntil = ""
			}
			continue
		}
		switch name {
		case "script", "style":
			if !closing {
				skipUntil = name
			}
		case "br":
			st.buf = append(st.buf, '\n')
			st.atLineHead = true
		case "p", "div", "tr", "h1", "h2", "h3", "h4", "h5", "h6", "table":
			st.newline()
		case "blockquote":
			st.newline()
			if !closing {
				st.writeText("> ")
			}
		case "ul":
			if closing {
				if listDepth > 0 {
					listDepth--
					st.ordinal = st.ordinal[:listDepth]
				}
			} else {
				listDepth++
				st.ordinal = append(st.ordinal, 0)
			}
			st.newline()
		case "ol":
			if closing {
				if listDepth > 0 {
					listDepth--
					st.ordinal = st.ordinal[:listDepth]
				}
			} else {
				listDepth++
				st.ordinal = append(st.ordinal, 1)
			}
			st.newline()
		case "li":
			if closing {
				st.newline()
				continue
			}
			st.newline()
			indent := listDepth
			if indent < 1 {
				indent = 1
			}
			for k := 0; k < indent; k++ {
				st.buf = append(st.buf, ' ', ' ')
			}
			if listDepth > 0 && st.ordinal[listDepth-1] > 0 {
				st.buf = appendItoa(st.buf, st.ordinal[listDepth-1])
				st.buf = append(st.buf, '.', ' ')
				st.ordinal[listDepth-1]++
			} else {
				st.buf = append(st.buf, '*', ' ')
			}
			st.atLineHead = false
		}
	}
	out := string(collapseInPlace(st.buf))
	convPool.Put(st)
	return out
}

// parseTag extracts the lowercase tag name and whether it is a closing tag.
// Attributes and self-closing slashes are ignored.
func parseTag(tag string) (name string, closing bool) {
	tag = strings.TrimSpace(tag)
	if strings.HasPrefix(tag, "/") {
		closing = true
		tag = tag[1:]
	}
	tag = strings.TrimSuffix(tag, "/")
	for j := 0; j < len(tag); j++ {
		if tag[j] == ' ' || tag[j] == '\t' || tag[j] == '\n' {
			tag = tag[:j]
			break
		}
	}
	return strings.ToLower(strings.TrimSpace(tag)), closing
}

// collapseInPlace trims trailing spaces per line, folds runs of 2+ blank
// lines to one, and drops leading/trailing blank lines — compacting the
// buffer in place (the write cursor never passes the read cursor) instead
// of splitting into a line slice and re-joining.
func collapseInPlace(b []byte) []byte {
	w := 0
	wrote := false        // some non-blank line has been written
	pendingBlank := false // one collapsed blank line awaits between content
	for ls := 0; ls <= len(b); {
		le := ls
		for le < len(b) && b[le] != '\n' {
			le++
		}
		te := le
		for te > ls && (b[te-1] == ' ' || b[te-1] == '\t') {
			te--
		}
		if te == ls {
			if wrote {
				pendingBlank = true
			}
		} else {
			if wrote {
				b[w] = '\n'
				w++
				if pendingBlank {
					b[w] = '\n'
					w++
				}
			}
			pendingBlank = false
			w += copy(b[w:], b[ls:te])
			wrote = true
		}
		ls = le + 1
	}
	return b[:w]
}

func appendItoa(b []byte, n int) []byte {
	if n == 0 {
		return append(b, '0')
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return append(b, buf[i:]...)
}

// htmlMarkers are the tag probes IsProbablyHTML counts, ASCII-lowercase.
var htmlMarkers = [...]string{"<br", "<p", "<div", "<span", "<a ", "<ul", "<li", "</"}

// IsProbablyHTML reports whether a document looks like HTML rather than
// plain text, so the pipeline can decide whether conversion is needed.
// Marker counting is ASCII-case-insensitive over the raw sample — no
// lowercased copy is materialized, so the probe allocates nothing.
func IsProbablyHTML(s string) bool {
	sample := s
	if len(sample) > 2048 {
		sample = sample[:2048]
	}
	tags := 0
	for _, marker := range htmlMarkers {
		tags += countFoldASCII(sample, marker)
	}
	return tags >= 2
}

// countFoldASCII counts non-overlapping occurrences of the ASCII-lowercase
// needle in s, folding A-Z in s on the fly.
func countFoldASCII(s, needle string) int {
	count := 0
	for i := 0; i+len(needle) <= len(s); {
		match := true
		for j := 0; j < len(needle); j++ {
			c := s[i+j]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != needle[j] {
				match = false
				break
			}
		}
		if match {
			count++
			i += len(needle)
		} else {
			i++
		}
	}
	return count
}
