// Package htmltext converts HTML fragments to semantically equivalent plain
// text, mirroring the role html2text plays in the paper's pipeline (§3.1.2):
// postings scraped from 4chan.org and 8ch.net arrive as HTML and must be
// normalized before TF-IDF vectorization so that markup tokens do not leak
// into the vocabulary.
//
// The converter implements the transformations the paper calls out — list
// tags become indented, newline-separated items — plus the handful of
// block/inline rules needed for imageboard HTML: <br> and block elements
// break lines, <blockquote> is prefixed with "> ", scripts and styles are
// dropped wholesale, and entities are decoded. It is a single-pass scanner
// with no allocation proportional to tag depth; malformed HTML degrades to
// text rather than erroring, which is what a crawler needs.
package htmltext

import (
	"html"
	"strings"
)

// Convert renders an HTML fragment as plain text.
func Convert(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	var (
		i          int
		listDepth  int
		ordinal    []int // per-depth ordered-list counters; 0 = unordered
		skipUntil  string
		atLineHead = true
	)
	writeText := func(s string) {
		if s == "" {
			return
		}
		b.WriteString(s)
		atLineHead = strings.HasSuffix(s, "\n")
	}
	newline := func() {
		if !atLineHead {
			b.WriteByte('\n')
			atLineHead = true
		}
	}
	for i < len(src) {
		c := src[i]
		if c != '<' {
			j := strings.IndexByte(src[i:], '<')
			var text string
			if j < 0 {
				text = src[i:]
				i = len(src)
			} else {
				text = src[i : i+j]
				i += j
			}
			if skipUntil == "" {
				writeText(html.UnescapeString(text))
			}
			continue
		}
		end := strings.IndexByte(src[i:], '>')
		if end < 0 {
			// Unterminated tag: treat the rest as text.
			if skipUntil == "" {
				writeText(html.UnescapeString(src[i:]))
			}
			break
		}
		tag := src[i+1 : i+end]
		i += end + 1
		name, closing := parseTag(tag)
		if skipUntil != "" {
			if closing && name == skipUntil {
				skipUntil = ""
			}
			continue
		}
		switch name {
		case "script", "style":
			if !closing {
				skipUntil = name
			}
		case "br":
			b.WriteByte('\n')
			atLineHead = true
		case "p", "div", "tr", "h1", "h2", "h3", "h4", "h5", "h6", "table":
			newline()
		case "blockquote":
			newline()
			if !closing {
				writeText("> ")
			}
		case "ul":
			if closing {
				if listDepth > 0 {
					listDepth--
					ordinal = ordinal[:listDepth]
				}
			} else {
				listDepth++
				ordinal = append(ordinal, 0)
			}
			newline()
		case "ol":
			if closing {
				if listDepth > 0 {
					listDepth--
					ordinal = ordinal[:listDepth]
				}
			} else {
				listDepth++
				ordinal = append(ordinal, 1)
			}
			newline()
		case "li":
			if closing {
				newline()
				continue
			}
			newline()
			indent := listDepth
			if indent < 1 {
				indent = 1
			}
			writeText(strings.Repeat("  ", indent))
			if listDepth > 0 && ordinal[listDepth-1] > 0 {
				writeText(itoa(ordinal[listDepth-1]) + ". ")
				ordinal[listDepth-1]++
			} else {
				writeText("* ")
			}
		}
	}
	return collapse(b.String())
}

// parseTag extracts the lowercase tag name and whether it is a closing tag.
// Attributes and self-closing slashes are ignored.
func parseTag(tag string) (name string, closing bool) {
	tag = strings.TrimSpace(tag)
	if strings.HasPrefix(tag, "/") {
		closing = true
		tag = tag[1:]
	}
	tag = strings.TrimSuffix(tag, "/")
	for j := 0; j < len(tag); j++ {
		if tag[j] == ' ' || tag[j] == '\t' || tag[j] == '\n' {
			tag = tag[:j]
			break
		}
	}
	return strings.ToLower(strings.TrimSpace(tag)), closing
}

// collapse trims trailing spaces and folds runs of 3+ newlines to 2.
func collapse(s string) string {
	lines := strings.Split(s, "\n")
	out := make([]string, 0, len(lines))
	blank := 0
	for _, ln := range lines {
		ln = strings.TrimRight(ln, " \t")
		if ln == "" {
			blank++
			if blank > 1 {
				continue
			}
		} else {
			blank = 0
		}
		out = append(out, ln)
	}
	// Trim leading/trailing blank lines.
	for len(out) > 0 && out[0] == "" {
		out = out[1:]
	}
	for len(out) > 0 && out[len(out)-1] == "" {
		out = out[:len(out)-1]
	}
	return strings.Join(out, "\n")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// IsProbablyHTML reports whether a document looks like HTML rather than
// plain text, so the pipeline can decide whether conversion is needed.
func IsProbablyHTML(s string) bool {
	sample := s
	if len(sample) > 2048 {
		sample = sample[:2048]
	}
	tags := 0
	for _, marker := range []string{"<br", "<p", "<div", "<span", "<a ", "<ul", "<li", "</"} {
		tags += strings.Count(strings.ToLower(sample), marker)
	}
	return tags >= 2
}
