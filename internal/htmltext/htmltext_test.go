package htmltext

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPlainTextPassthrough(t *testing.T) {
	in := "just some plain text\nwith two lines"
	if got := Convert(in); got != in {
		t.Errorf("plain text altered: %q", got)
	}
}

func TestBreaksAndParagraphs(t *testing.T) {
	got := Convert("line one<br>line two<br/>line three")
	want := "line one\nline two\nline three"
	if got != want {
		t.Errorf("br handling:\ngot  %q\nwant %q", got, want)
	}
	got = Convert("<p>alpha</p><p>beta</p>")
	if !strings.Contains(got, "alpha") || !strings.Contains(got, "beta") {
		t.Fatalf("paragraph content lost: %q", got)
	}
	if !strings.Contains(got, "\n") {
		t.Errorf("paragraphs not separated: %q", got)
	}
}

func TestUnorderedList(t *testing.T) {
	// The paper's example transformation: ul/ol/li tags become indented,
	// newline separated text strings.
	got := Convert("<ul><li>first</li><li>second</li></ul>")
	want := "  * first\n  * second"
	if got != want {
		t.Errorf("ul conversion:\ngot  %q\nwant %q", got, want)
	}
}

func TestOrderedList(t *testing.T) {
	got := Convert("<ol><li>alpha</li><li>beta</li><li>gamma</li></ol>")
	want := "  1. alpha\n  2. beta\n  3. gamma"
	if got != want {
		t.Errorf("ol conversion:\ngot  %q\nwant %q", got, want)
	}
}

func TestNestedLists(t *testing.T) {
	got := Convert("<ul><li>outer</li><ul><li>inner</li></ul><li>outer2</li></ul>")
	if !strings.Contains(got, "  * outer") {
		t.Errorf("missing outer item: %q", got)
	}
	if !strings.Contains(got, "    * inner") {
		t.Errorf("inner item not double-indented: %q", got)
	}
}

func TestEntityDecoding(t *testing.T) {
	got := Convert("Tom &amp; Jerry &gt;&gt;123 &quot;quoted&quot; &#39;x&#39;")
	want := `Tom & Jerry >>123 "quoted" 'x'`
	if got != want {
		t.Errorf("entities:\ngot  %q\nwant %q", got, want)
	}
}

func TestScriptAndStyleDropped(t *testing.T) {
	got := Convert("before<script>alert('evil')</script>after<style>.x{color:red}</style>end")
	if strings.Contains(got, "alert") || strings.Contains(got, "color") {
		t.Errorf("script/style leaked: %q", got)
	}
	if !strings.Contains(got, "before") || !strings.Contains(got, "after") || !strings.Contains(got, "end") {
		t.Errorf("surrounding text lost: %q", got)
	}
}

func TestAttributesIgnored(t *testing.T) {
	got := Convert(`<a href="https://example.com" class="link">click</a> here`)
	if got != "click here" {
		t.Errorf("attribute handling: %q", got)
	}
}

func TestBlockquote(t *testing.T) {
	got := Convert("<blockquote>implying</blockquote>reply")
	if !strings.Contains(got, "> implying") {
		t.Errorf("blockquote prefix missing: %q", got)
	}
}

func TestFourchanStylePost(t *testing.T) {
	// Shape of a real 4chan "com" field.
	in := `<a href="#p123" class="quotelink">&gt;&gt;123</a><br>check this guy out<br><br>Name: John Smith<br>Address: 42 Elm St`
	got := Convert(in)
	if !strings.Contains(got, ">>123") {
		t.Errorf("quotelink lost: %q", got)
	}
	if !strings.Contains(got, "Name: John Smith\nAddress: 42 Elm St") {
		t.Errorf("dox lines not preserved on own lines: %q", got)
	}
}

func TestMalformedHTML(t *testing.T) {
	cases := []string{
		"unterminated <tag",
		"stray > bracket",
		"<>empty tag<>",
		"<li>item outside list",
		"</ul></ul></ul>over-closed",
		"<script>never closed",
	}
	for _, in := range cases {
		// Must not panic, must return something.
		_ = Convert(in)
	}
	if got := Convert("unterminated <tag"); !strings.Contains(got, "unterminated") {
		t.Errorf("text before unterminated tag lost: %q", got)
	}
}

func TestConvertNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		_ = Convert(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNoTagsLeakProperty(t *testing.T) {
	// For inputs made only of well-formed simple tags and safe text, the
	// output contains no '<'.
	f := func(words []string) bool {
		var b strings.Builder
		for _, w := range words {
			clean := strings.Map(func(r rune) rune {
				if r == '<' || r == '>' || r == '&' {
					return ' '
				}
				return r
			}, w)
			b.WriteString("<p>" + clean + "</p>")
		}
		return !strings.Contains(Convert(b.String()), "<")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseBlankRuns(t *testing.T) {
	got := Convert("a<br><br><br><br>b")
	if strings.Contains(got, "\n\n\n") {
		t.Errorf("blank runs not collapsed: %q", got)
	}
}

func TestIsProbablyHTML(t *testing.T) {
	if !IsProbablyHTML("<p>hello</p><br><div>x</div>") {
		t.Error("obvious HTML not detected")
	}
	if IsProbablyHTML("Name: John\nAddress: 12 Oak St\nPhone: 555-1234") {
		t.Error("plain dox text misdetected as HTML")
	}
	if IsProbablyHTML("x < y and y > z") {
		t.Error("math text misdetected as HTML")
	}
}

func TestLargeInput(t *testing.T) {
	in := strings.Repeat("<p>paragraph with some words</p>", 5000)
	got := Convert(in)
	if !strings.HasPrefix(got, "paragraph") {
		t.Errorf("large input mangled: %.60q", got)
	}
}
