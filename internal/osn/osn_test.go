package osn

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"doxmeter/internal/netid"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
)

func testUniverse(t *testing.T, scale float64) (*Universe, *sim.World, *simclock.Clock) {
	t.Helper()
	w := sim.NewWorld(sim.Default(71, scale))
	clock := simclock.NewClock(simclock.Period1.Start)
	return NewUniverse(clock, w, 71), w, clock
}

func TestUniverseRegistersVictimAccounts(t *testing.T) {
	u, w, _ := testUniverse(t, 0.05)
	want := 0
	for _, v := range w.Victims {
		want += len(v.OSN)
	}
	if got := len(u.Accounts()); got != want {
		t.Fatalf("registered %d accounts, want %d", got, want)
	}
	for _, v := range w.Victims {
		for n, user := range v.OSN {
			a, ok := u.Lookup(netid.Ref{Network: n, Username: user})
			if !ok {
				t.Fatalf("account %v/%s not registered", n, user)
			}
			if a.VictimID != v.ID {
				t.Fatalf("account owner %d, want %d", a.VictimID, v.ID)
			}
		}
	}
}

func TestEraBoundaries(t *testing.T) {
	if EraAt(netid.Facebook, simclock.Period1.Start) != PreFilter {
		t.Error("FB period 1 should be pre-filter")
	}
	if EraAt(netid.Facebook, simclock.Period2.Start) != PostFilter {
		t.Error("FB period 2 should be post-filter")
	}
	if EraAt(netid.Instagram, simclock.Period2.Start) != PostFilter {
		t.Error("IG period 2 should be post-filter")
	}
	// Twitter never deploys (behaviour unchanged across eras, §6.3.3).
	if EraAt(netid.Twitter, simclock.Period2.End) != PreFilter {
		t.Error("Twitter should never flip eras")
	}
	if PreFilter.String() != "pre-filter" || PostFilter.String() != "post-filter" {
		t.Error("era strings wrong")
	}
}

func TestRecordDoxReactionRates(t *testing.T) {
	u, w, _ := testUniverse(t, 0.5)
	// Dox every Facebook account in period 1 and measure end-state
	// changes over a ~6-week window, like Table 10's pre-filter row.
	doxAt := simclock.Period1.Start.Add(2 * simclock.Day)
	endAt := simclock.Period1.End
	var total, morePrivate, morePublic, any int
	for _, v := range w.Victims {
		user, ok := v.OSN[netid.Facebook]
		if !ok {
			continue
		}
		ref := netid.Ref{Network: netid.Facebook, Username: user}
		u.RecordDox(ref, doxAt)
		a, _ := u.Lookup(ref)
		start := a.StatusAt(doxAt)
		if start == Inactive {
			continue // verifier would drop these
		}
		total++
		end := a.StatusAt(endAt)
		if end > start {
			morePrivate++
		}
		if end < start {
			morePublic++
		}
		if len(a.transitions) > 0 && a.transitions[0].at.Before(endAt) {
			any++
		}
	}
	if total < 300 {
		t.Fatalf("only %d Facebook accounts; scale too small for calibration check", total)
	}
	mp := float64(morePrivate) / float64(total)
	if math.Abs(mp-0.22) > 0.05 {
		t.Errorf("FB pre-filter more-private rate %.3f, want ~0.22 (Table 10)", mp)
	}
	mu := float64(morePublic) / float64(total)
	if mu <= 0 || mu > 0.07 {
		t.Errorf("FB pre-filter more-public rate %.3f, want ~0.02", mu)
	}
	if any < morePrivate {
		t.Error("any-change must be at least more-private")
	}
}

func TestPostFilterReactionsLower(t *testing.T) {
	u, w, _ := testUniverse(t, 0.5)
	pre := simclock.Period1.Start.Add(simclock.Day)
	post := simclock.Period2.Start.Add(simclock.Day)
	rate := func(doxAt time.Time, window time.Duration) float64 {
		// Fresh universe per measurement so RecordDox first-wins doesn't
		// interfere.
		u2 := NewUniverse(simclock.NewClock(simclock.Period1.Start), w, 99)
		var total, changed int
		for _, v := range w.Victims {
			user, ok := v.OSN[netid.Instagram]
			if !ok {
				continue
			}
			ref := netid.Ref{Network: netid.Instagram, Username: user}
			u2.RecordDox(ref, doxAt)
			a, _ := u2.Lookup(ref)
			if a.StatusAt(doxAt) == Inactive {
				continue
			}
			total++
			for _, tr := range a.transitions {
				if tr.at.After(doxAt) && tr.at.Before(doxAt.Add(window)) {
					changed++
					break
				}
			}
		}
		return float64(changed) / float64(total)
	}
	window := 40 * simclock.Day
	preRate, postRate := rate(pre, window), rate(post, window)
	if preRate <= 2*postRate {
		t.Errorf("IG pre-filter change rate %.3f should be >2x post-filter %.3f (Table 10)", preRate, postRate)
	}
	_ = u
}

func TestReactionTiming(t *testing.T) {
	u, w, _ := testUniverse(t, 0.5)
	doxAt := simclock.Period1.Start
	var within1, within7, total int
	for _, v := range w.Victims {
		for _, n := range []netid.Network{netid.Facebook, netid.Instagram, netid.Twitter} {
			user, ok := v.OSN[n]
			if !ok {
				continue
			}
			ref := netid.Ref{Network: n, Username: user}
			u.RecordDox(ref, doxAt)
			a, _ := u.Lookup(ref)
			for _, tr := range a.transitions {
				if tr.to == Private || tr.to == Inactive {
					total++
					d := tr.at.Sub(doxAt)
					if d < 24*time.Hour { // day-0 draws land within the first day
						within1++
					}
					if d < 8*simclock.Day {
						within7++
					}
					break
				}
			}
		}
	}
	if total < 50 {
		t.Fatalf("only %d lockdowns observed", total)
	}
	f1 := float64(within1) / float64(total)
	f7 := float64(within7) / float64(total)
	if math.Abs(f1-0.36) > 0.12 {
		t.Errorf("within-24h fraction %.3f, want ~0.358 (§6.3)", f1)
	}
	if f7 < 0.82 {
		t.Errorf("within-7d fraction %.3f, want ~0.906 (§6.3)", f7)
	}
}

func TestRepeatDoxIgnored(t *testing.T) {
	u, w, _ := testUniverse(t, 0.05)
	var ref netid.Ref
	for _, v := range w.Victims {
		if user, ok := v.OSN[netid.Facebook]; ok {
			ref = netid.Ref{Network: netid.Facebook, Username: user}
			break
		}
	}
	t1 := simclock.Period1.Start.Add(simclock.Day)
	u.RecordDox(ref, t1)
	a, _ := u.Lookup(ref)
	trans1 := len(a.transitions)
	first := a.DoxedAt()
	u.RecordDox(ref, t1.Add(10*simclock.Day))
	if len(a.transitions) != trans1 || !a.DoxedAt().Equal(first) {
		t.Error("repeat dox re-drew the reaction")
	}
	// Unknown refs are silently ignored.
	u.RecordDox(netid.Ref{Network: netid.Facebook, Username: "ghost-user"}, t1)
}

func TestControlAccountsDeterministic(t *testing.T) {
	u, _, _ := testUniverse(t, 0.02)
	a1, ok1 := u.ControlAccount(123456)
	a2, ok2 := u.ControlAccount(123456)
	if !ok1 || !ok2 {
		t.Fatal("control lookup failed")
	}
	if a1.initial != a2.initial || len(a1.transitions) != len(a2.transitions) {
		t.Fatal("control account not deterministic")
	}
	if _, ok := u.ControlAccount(0); ok {
		t.Error("ID 0 should not resolve")
	}
	if _, ok := u.ControlAccount(u.MaxInstagramID() + 1); ok {
		t.Error("ID beyond space should not resolve")
	}
}

func TestControlChurnRate(t *testing.T) {
	u, _, _ := testUniverse(t, 0.02)
	n := 20000
	changed := 0
	for i := 0; i < n; i++ {
		a, ok := u.ControlAccount(int64(1000 + i*17))
		if !ok {
			t.Fatal("lookup failed")
		}
		if a.StatusAt(simclock.Period2.End) != a.StatusAt(simclock.Period1.Start) {
			changed++
		}
	}
	rate := float64(changed) / float64(n)
	if rate > 0.006 || rate == 0 {
		t.Errorf("control churn %.4f, want ~0.002 (Table 10 Default)", rate)
	}
}

func TestCommentersNeverCrossAccounts(t *testing.T) {
	u, _, _ := testUniverse(t, 0.2)
	seen := map[string]string{} // author -> account key
	for _, a := range u.Accounts() {
		for _, c := range a.CommentsAt(simclock.Period2.End) {
			if prev, ok := seen[c.Author]; ok && prev != a.Ref.Key() {
				t.Fatalf("commenter %s appears on %s and %s", c.Author, prev, a.Ref.Key())
			}
			seen[c.Author] = a.Ref.Key()
		}
	}
	if len(seen) == 0 {
		t.Fatal("no comments generated")
	}
}

func TestAbuseCommentsEraSensitive(t *testing.T) {
	u, w, _ := testUniverse(t, 0.3)
	preTotal, postTotal := 0, 0
	preN, postN := 0, 0
	for _, v := range w.Victims {
		user, ok := v.OSN[netid.Instagram]
		if !ok {
			continue
		}
		ref := netid.Ref{Network: netid.Instagram, Username: user}
		a, _ := u.Lookup(ref)
		if preN <= postN {
			u.TriggerAbuse(ref, simclock.Period1.Start.Add(simclock.Day))
			preN++
			for _, c := range a.CommentsAt(simclock.Period2.End) {
				if c.Abusive {
					preTotal++
				}
			}
		} else {
			u.TriggerAbuse(ref, simclock.Period2.Start.Add(simclock.Day))
			postN++
			for _, c := range a.CommentsAt(simclock.Period2.End) {
				if c.Abusive {
					postTotal++
				}
			}
		}
	}
	if preN < 20 || postN < 20 {
		t.Skip("not enough Instagram accounts at this scale")
	}
	preMean := float64(preTotal) / float64(preN)
	postMean := float64(postTotal) / float64(postN)
	if preMean <= postMean {
		t.Errorf("abusive comments pre-filter %.2f should exceed post-filter %.2f", preMean, postMean)
	}
}

func TestCompromisedAccountsDefaced(t *testing.T) {
	u, w, clock := testUniverse(t, 0.5)
	doxAt := simclock.Period1.Start.Add(simclock.Day)
	var compromised *Account
	for _, v := range w.Victims {
		user, ok := v.OSN[netid.Instagram]
		if !ok {
			continue
		}
		ref := netid.Ref{Network: netid.Instagram, Username: user}
		u.RecordDox(ref, doxAt)
		a, _ := u.Lookup(ref)
		if !a.CompromisedAt().IsZero() {
			compromised = a
			break
		}
	}
	if compromised == nil {
		t.Skip("no compromise drawn at this seed/scale")
	}
	// Compromise implies the account opened up at that time.
	if compromised.StatusAt(compromised.CompromisedAt()) != Public {
		t.Error("compromised account not public at takeover time")
	}
	// The profile page carries the defacement banner after takeover.
	srv := httptest.NewServer(u.Handler())
	defer srv.Close()
	clock.Set(compromised.CompromisedAt().Add(simclock.Day))
	resp, err := http.Get(srv.URL + "/instagram/" + compromised.Ref.Username)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "OWNED") {
		t.Errorf("defacement banner missing from compromised profile")
	}
}

func TestHTTPProfilePages(t *testing.T) {
	u, w, clock := testUniverse(t, 0.05)
	srv := httptest.NewServer(u.Handler())
	defer srv.Close()
	clock.Set(simclock.Period1.Start.Add(simclock.Day))

	var pub *Account
	for _, a := range u.Accounts() {
		if a.StatusAt(clock.Now()) == Public {
			pub = a
			break
		}
	}
	if pub == nil {
		t.Fatal("no public account")
	}
	resp, err := http.Get(srv.URL + "/" + pub.Ref.Network.Slug() + "/" + pub.Ref.Username)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("public profile status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), pub.Ref.Username) {
		t.Error("profile missing username")
	}
	if strings.Contains(string(body), markerPrivate) {
		t.Error("public profile carries privacy marker")
	}

	// Unknown account: 404.
	resp, _ = http.Get(srv.URL + "/facebook/no-such-user-xyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown account status %d", resp.StatusCode)
	}
	// Unknown network: 404.
	resp, _ = http.Get(srv.URL + "/myspace/whoever")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown network status %d", resp.StatusCode)
	}
	// Numeric Instagram lookup.
	resp, _ = http.Get(srv.URL + "/instagram/id/55555")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		t.Errorf("control lookup status %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/instagram/id/notanumber")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", resp.StatusCode)
	}
	_ = w
}

func TestPrivateProfileMarker(t *testing.T) {
	u, _, clock := testUniverse(t, 0.1)
	srv := httptest.NewServer(u.Handler())
	defer srv.Close()
	clock.Set(simclock.Period1.Start)
	for _, a := range u.Accounts() {
		switch a.StatusAt(clock.Now()) {
		case Private:
			resp, err := http.Get(srv.URL + "/" + a.Ref.Network.Slug() + "/" + a.Ref.Username)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), markerPrivate) {
				t.Fatalf("private profile wrong: status=%d", resp.StatusCode)
			}
			return
		case Inactive:
			resp, _ := http.Get(srv.URL + "/" + a.Ref.Network.Slug() + "/" + a.Ref.Username)
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("inactive profile status %d, want 404", resp.StatusCode)
			}
		}
	}
	t.Skip("no private account at this scale/seed")
}

func TestStatusOrdering(t *testing.T) {
	if !(Public < Private && Private < Inactive) {
		t.Fatal("status ordering must be public < private < inactive for more/less-open comparisons")
	}
	if Public.String() != "public" || Private.String() != "private" || Inactive.String() != "inactive" {
		t.Error("status strings wrong")
	}
}
