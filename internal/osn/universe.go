// Package osn simulates the online social networks whose accounts the
// paper monitors: account existence, public/private/inactive status over
// time, comment streams, and — for Instagram — a monotonically increasing
// numeric ID space that permits uniform random sampling of "typical"
// accounts (§6.2.1).
//
// Account behaviour is generative and causal: when a dox first appears on a
// text-sharing site, the universe draws the victim's reaction (lockdown,
// opening, reversal, timing) from hazards calibrated to Table 10 and §6.3.
// The monitor then *measures* those reactions through the same HTTP-scrape
// interface a live study would use; no reported number is copied through.
package osn

import (
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"doxmeter/internal/netid"
	"doxmeter/internal/randutil"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
)

// Status is an account's visibility state.
type Status int

// Statuses, ordered from most to least open.
const (
	Public Status = iota
	Private
	Inactive
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Private:
		return "private"
	case Inactive:
		return "inactive"
	default:
		return "public"
	}
}

// transition is one scheduled status change.
type transition struct {
	at time.Time
	to Status
}

// Account is one simulated social-network account.
type Account struct {
	Ref       netid.Ref
	NumericID int64 // Instagram-style numeric ID; 0 elsewhere
	VictimID  int   // owning victim, -1 for control accounts
	// Activity is the account's visible post count — the "activity
	// metric" the paper names as future work (§6.2.1). Victim accounts
	// derive it from their comment stream; control accounts draw it
	// deterministically (many are abandoned, with zero activity).
	Activity int

	initial     Status
	transitions []transition // sorted by time
	doxedAt     time.Time    // zero until doxed
	// compromisedAt marks an attacker takeover: the account flips public
	// and its profile is defaced (paper footnote 7: "we manually found
	// two victims' accounts that had clearly been compromised and
	// defaced"). Zero when never compromised.
	compromisedAt time.Time
	comments      []Comment
}

// CompromisedAt returns when the account was taken over (zero if never).
func (a *Account) CompromisedAt() time.Time { return a.compromisedAt }

// Comment is one public comment on an account's posts.
type Comment struct {
	Author  string
	Text    string
	Posted  time.Time
	Abusive bool
}

// StatusAt returns the account's status at an instant.
func (a *Account) StatusAt(t time.Time) Status {
	st := a.initial
	for _, tr := range a.transitions {
		if tr.at.After(t) {
			break
		}
		st = tr.to
	}
	return st
}

// DoxedAt returns when the account's owner was first doxed (zero if never).
func (a *Account) DoxedAt() time.Time { return a.doxedAt }

// Universe is the collection of simulated networks. Safe for concurrent
// reads; RecordDox serializes internally.
type Universe struct {
	clock *simclock.Clock

	mu       sync.RWMutex
	accounts map[string]*Account // netid.Ref.Key() -> account
	igByID   map[int64]*Account
	igMaxID  int64
	rng      *rand.Rand
	seed     int64
}

// NewUniverse registers every victim OSN account from the world. Initial
// statuses are drawn here; reactions are drawn when doxes appear.
func NewUniverse(clock *simclock.Clock, w *sim.World, seed int64) *Universe {
	u := &Universe{
		clock:    clock,
		accounts: make(map[string]*Account),
		igByID:   make(map[int64]*Account),
		igMaxID:  600_000_000, // "Instagram claims over 600 million active users"
		rng:      randutil.New(seed),
		seed:     seed,
	}
	// Victims in deterministic order.
	victims := make([]*sim.Victim, len(w.Victims))
	copy(victims, w.Victims)
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	nextIG := int64(1_000_000)
	for _, v := range victims {
		for _, n := range netid.All() {
			user, ok := v.OSN[n]
			if !ok {
				continue
			}
			a := &Account{Ref: netid.Ref{Network: n, Username: user}, VictimID: v.ID}
			switch x := u.rng.Float64(); {
			case x < initialInactiveRate:
				a.initial = Inactive
			case x < initialInactiveRate+initialPrivateRate:
				a.initial = Private
			default:
				a.initial = Public
			}
			if n == netid.Instagram {
				nextIG += int64(1 + u.rng.Intn(5000))
				a.NumericID = nextIG
				u.igByID[a.NumericID] = a
			}
			u.generateComments(a, v)
			u.accounts[a.Ref.Key()] = a
		}
	}
	return u
}

// Lookup finds a registered account.
func (u *Universe) Lookup(ref netid.Ref) (*Account, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	a, ok := u.accounts[ref.Key()]
	return a, ok
}

// Accounts returns all registered accounts (stable order).
func (u *Universe) Accounts() []*Account {
	u.mu.RLock()
	defer u.mu.RUnlock()
	keys := make([]string, 0, len(u.accounts))
	for k := range u.accounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Account, len(keys))
	for i, k := range keys {
		out[i] = u.accounts[k]
	}
	return out
}

// RecordDox informs the universe that an account reference appeared in a
// publicly posted dox at time t. The first report for each account draws
// the owner's reaction; later reports are ignored (reposts). Unknown
// references (fabricated accounts in joke doxes, extraction noise) are
// ignored — they simply do not exist.
func (u *Universe) RecordDox(ref netid.Ref, t time.Time) {
	u.mu.Lock()
	defer u.mu.Unlock()
	a, ok := u.accounts[ref.Key()]
	if !ok || !a.doxedAt.IsZero() {
		return
	}
	a.doxedAt = t
	u.planReaction(a, t)
}

// planReaction draws and schedules the owner's response to being doxed.
func (u *Universe) planReaction(a *Account, t time.Time) {
	params, ok := reactions[a.Ref.Network]
	if !ok {
		return // Skype/Google+/Twitch are not monitored or modeled
	}
	p := params[EraAt(a.Ref.Network, t)]
	r := u.rng
	delay := sampleDelay(r, delayDays)
	switch a.StatusAt(t) {
	case Public:
		if randutil.Bool(r, p.Down) {
			to := Private
			if randutil.Bool(r, 0.35) {
				to = Inactive // delete outright
			}
			lockAt := t.Add(time.Duration(delay) * simclock.Day).Add(time.Duration(r.Intn(24)) * time.Hour)
			a.transitions = append(a.transitions, transition{at: lockAt, to: to})
			if to == Private && randutil.Bool(r, p.Revert) {
				back := lockAt.Add(time.Duration(sampleDelay(r, revertDelayDays)) * simclock.Day)
				a.transitions = append(a.transitions, transition{at: back, to: Public})
			}
		}
	case Private:
		switch {
		case randutil.Bool(r, p.Up):
			// Opens up — compromise, or reopening after a lockdown that
			// predates our first observation of a reposted dox (§6.2.2).
			openAt := t.Add(time.Duration(delay) * simclock.Day).Add(time.Duration(r.Intn(24)) * time.Hour)
			a.transitions = append(a.transitions, transition{at: openAt, to: Public})
			if randutil.Bool(r, 0.3) {
				// Attacker takeover: the dox disclosed enough (email,
				// password reuse) to seize the account; the profile is
				// defaced from openAt (footnote 7).
				a.compromisedAt = openAt
			}
		case randutil.Bool(r, p.Down):
			lockAt := t.Add(time.Duration(delay) * simclock.Day)
			a.transitions = append(a.transitions, transition{at: lockAt, to: Inactive})
		}
	case Inactive:
		// Dead accounts stay dead.
	}
	sort.Slice(a.transitions, func(i, j int) bool { return a.transitions[i].at.Before(a.transitions[j].at) })
}

func sampleDelay(r *rand.Rand, table []struct {
	day    int
	weight float64
}) int {
	weights := make([]float64, len(table))
	for i, e := range table {
		weights[i] = e.weight
	}
	return table[randutil.Weighted(r, weights)].day
}

// generateComments fills the account's public comment stream. Each account
// has a small pool of recurring commenters (the account's friends), so
// commenters average several comments each — as the paper measured (33,570
// comments from 9,792 commenters). Commenter handles are derived from the
// account key, so no commenter ever appears on two accounts, reproducing
// the §5.3.2 null result honestly at the generator level.
func (u *Universe) generateComments(a *Account, v *sim.Victim) {
	r := randutil.Derive(u.rng, "comments:"+a.Ref.Key())
	n := randutil.Poisson(r, 18)
	poolSize := 1 + n/3
	pool := make([]string, poolSize)
	var hb [16]byte
	for i := range pool {
		pool[i] = string(appendCommenter(hb[:0], r, a.Ref.Key(), i))
	}
	base := simclock.Period1.Start.Add(-time.Duration(r.Intn(60)) * simclock.Day)
	for i := 0; i < n; i++ {
		a.comments = append(a.comments, Comment{
			Author: randutil.Pick(r, pool),
			Text:   randutil.Pick(r, benignComments),
			Posted: base.Add(time.Duration(r.Intn(200*24)) * time.Hour),
		})
	}
	sort.Slice(a.comments, func(i, j int) bool { return a.comments[i].Posted.Before(a.comments[j].Posted) })
	// Doxed-population accounts skew low-to-no activity (§6.2.1: "many of
	// the Instagram accounts referenced in the dox files appeared to have
	// low-to-no activity").
	if randutil.Bool(r, 0.35) {
		a.Activity = 0
	} else {
		a.Activity = n + r.Intn(20)
	}
}

// addAbuseComments appends harassment comments arriving after a dox; the
// volume depends on the network's filtering era.
func (u *Universe) addAbuseComments(a *Account, doxAt time.Time) {
	r := randutil.Derive(u.rng, "abuse:"+a.Ref.Key())
	mean := 6.0
	if EraAt(a.Ref.Network, doxAt) == PostFilter {
		mean = 1.5 // filters suppress most abusive comments
	}
	n := randutil.Poisson(r, mean)
	var hb [16]byte
	for i := 0; i < n; i++ {
		a.comments = append(a.comments, Comment{
			Author:  string(appendCommenter(hb[:0], r, a.Ref.Key(), 1000+i)),
			Text:    randutil.Pick(r, abusiveComments),
			Posted:  doxAt.Add(time.Duration(r.Intn(10*24)) * time.Hour),
			Abusive: true,
		})
	}
	sort.Slice(a.comments, func(i, j int) bool { return a.comments[i].Posted.Before(a.comments[j].Posted) })
}

// CommentsAt returns the comments visible at an instant (public accounts
// only; the scraper enforces that).
func (a *Account) CommentsAt(t time.Time) []Comment {
	var out []Comment
	for _, c := range a.comments {
		if !c.Posted.After(t) {
			out = append(out, c)
		}
	}
	return out
}

// appendCommenter appends one derived commenter handle ("word_hhhhhhh") to
// dst: a 5-letter word from r followed by a 7-hex-digit FNV-1a tag of
// key/i. Byte stream and draw sequence match the former
// Sprintf("%s_%s", LowerWord(r,5), shortHash(key,i)) formulation exactly;
// the hash folds the "%s/%d" Fprintf bytes inline.
func appendCommenter(dst []byte, r *rand.Rand, key string, i int) []byte {
	dst = randutil.AppendLowerWord(r, dst, 5)
	dst = append(dst, '_')
	h := uint32(2166136261)
	for j := 0; j < len(key); j++ {
		h = (h ^ uint32(key[j])) * 16777619
	}
	h = (h ^ '/') * 16777619
	var ib [20]byte
	for _, c := range strconv.AppendInt(ib[:0], int64(i), 10) {
		h = (h ^ uint32(c)) * 16777619
	}
	h &= 0xfffffff
	const hexdig = "0123456789abcdef"
	for s := 24; s >= 0; s -= 4 {
		dst = append(dst, hexdig[h>>uint(s)&0xf])
	}
	return dst
}

var benignComments = []string{
	"nice shot", "love this", "where is this?", "so cool", "miss you man",
	"haha classic", "first", "this is great", "goals", "sick edit",
	"what camera do you use", "happy birthday!!", "clean", "W", "fire",
}

var abusiveComments = []string{
	"we know where you live now", "nice house on maple street lol",
	"check pastebin everyone knows", "you cant hide anymore",
	"hope you like your new fame", "should have kept your mouth shut",
	"your number is everywhere now", "delete your account",
}

// ControlAccount resolves an Instagram numeric ID to an account for random
// sampling. Victim accounts resolve to themselves; any other ID in range
// resolves to a deterministic synthetic "typical" account whose behaviour
// carries only background churn. The bool is false for IDs beyond the
// registered space (unallocated).
func (u *Universe) ControlAccount(id int64) (*Account, bool) {
	if id <= 0 || id > u.igMaxID {
		return nil, false
	}
	u.mu.RLock()
	if a, ok := u.igByID[id]; ok {
		u.mu.RUnlock()
		return a, true
	}
	u.mu.RUnlock()
	// Deterministic synthetic account derived from the ID: no state is
	// stored, so the 13k-account control sample costs nothing. The seed is
	// FNV-1a over "ig-control-<id>-<seed>", computed inline so repeated
	// derivations allocate neither a hasher nor a 5KB rand source.
	var kb [48]byte
	key := strconv.AppendInt(append(kb[:0], "ig-control-"...), id, 10)
	key = strconv.AppendInt(append(key, '-'), u.seed, 10)
	hv := uint64(14695981039346656037)
	for _, c := range key {
		hv ^= uint64(c)
		hv *= 1099511628211
	}
	r := randutil.Get(int64(hv))
	defer randutil.Put(r)
	a := &Account{
		Ref: netid.Ref{
			Network:  netid.Instagram,
			Username: string(strconv.AppendInt(append(kb[:0], "user"...), id, 10)),
		},
		NumericID: id,
		VictimID:  -1,
	}
	switch x := r.Float64(); {
	case x < 0.06:
		a.initial = Inactive // abandoned/banned long ago
	case x < 0.06+0.30:
		a.initial = Private // Instagram's large private population
	default:
		a.initial = Public
	}
	// Random-ID sampling hits many abandoned accounts (the paper's stated
	// limitation of the control sample).
	if randutil.Bool(r, 0.45) {
		a.Activity = 0
	} else {
		a.Activity = 1 + r.Intn(80)
	}
	// Background churn over the study window (Table 10 "Default" row).
	start := simclock.Period1.Start
	span := int(simclock.Period2.End.Sub(start) / simclock.Day)
	if a.initial == Public && randutil.Bool(r, backgroundDownRate) {
		a.transitions = append(a.transitions, transition{
			at: start.Add(time.Duration(r.Intn(span)) * simclock.Day), to: Private,
		})
	} else if a.initial == Private && randutil.Bool(r, backgroundUpRate/0.30) {
		a.transitions = append(a.transitions, transition{
			at: start.Add(time.Duration(r.Intn(span)) * simclock.Day), to: Public,
		})
	}
	return a, true
}

// MaxInstagramID exposes the top of the Instagram ID space for samplers.
func (u *Universe) MaxInstagramID() int64 { return u.igMaxID }

// TriggerAbuse adds post-dox harassment comments to a doxed account; the
// pipeline calls it alongside RecordDox (kept separate so ablations can
// disable it).
func (u *Universe) TriggerAbuse(ref netid.Ref, t time.Time) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if a, ok := u.accounts[ref.Key()]; ok {
		u.addAbuseComments(a, t)
	}
}
