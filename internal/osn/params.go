package osn

import (
	"time"

	"doxmeter/internal/netid"
)

// Era distinguishes account behaviour before and after a network deployed
// anti-abuse filtering (paper §6.3). Facebook changed its feed algorithms
// in August 2016; Instagram shipped comment filtering in early September
// 2016 — both between the paper's two collection periods.
type Era int

// Eras.
const (
	PreFilter Era = iota
	PostFilter
)

// String implements fmt.Stringer.
func (e Era) String() string {
	if e == PostFilter {
		return "post-filter"
	}
	return "pre-filter"
}

// filterDeployedAt returns when each network's anti-abuse filtering went
// live. Twitter's and YouTube's measured behaviour did not change between
// periods (§6.3.3), so their deploy time is effectively "never" for
// modeling purposes.
func filterDeployedAt(n netid.Network) (time.Time, bool) {
	switch n {
	case netid.Facebook:
		return time.Date(2016, time.September, 1, 0, 0, 0, 0, time.UTC), true
	case netid.Instagram:
		return time.Date(2016, time.September, 12, 0, 0, 0, 0, time.UTC), true
	default:
		return time.Time{}, false
	}
}

// EraAt returns the filtering era for a network at an instant.
func EraAt(n netid.Network, t time.Time) Era {
	deploy, ok := filterDeployedAt(n)
	if ok && !t.Before(deploy) {
		return PostFilter
	}
	return PreFilter
}

// Reaction hazards for a doxed account, calibrated so the *measured*
// Table 10 rows emerge from the monitor. Down is the probability the
// account holder locks down (more private); Up is the probability an
// initially-private account opens up (account compromise and dox reposts
// predating first observation both present as "more public", §6.2.2);
// Revert is the probability a locked-down account later returns to public.
type reactionParams struct {
	Down   float64
	Up     float64
	Revert float64
}

// reactions holds the per-network, per-era behaviour table. Sources:
// Table 10 (% more private / % more public / % any change) and §6.3.3
// (Twitter ~4% both eras; YouTube ~1% then 0).
var reactions = map[netid.Network]map[Era]reactionParams{
	netid.Facebook: {
		PreFilter:  {Down: 0.24, Up: 0.12, Revert: 0.12},
		PostFilter: {Down: 0.032, Up: 0.004, Revert: 0.10},
	},
	netid.Instagram: {
		// Down is set above the Table 10 end-state target (17.2%) because
		// reverts pull a share of lockdowns back to public before the
		// period ends.
		PreFilter:  {Down: 0.24, Up: 0.45, Revert: 0.45},
		PostFilter: {Down: 0.062, Up: 0.08, Revert: 0.35},
	},
	netid.Twitter: {
		PreFilter:  {Down: 0.075, Up: 0.15, Revert: 0.30},
		PostFilter: {Down: 0.075, Up: 0.15, Revert: 0.30},
	},
	netid.YouTube: {
		PreFilter:  {Down: 0.0075, Up: 0.01, Revert: 0.30},
		PostFilter: {Down: 0.0075, Up: 0.01, Revert: 0.30},
	},
}

// Background churn for non-doxed accounts: the paper's 13,392-account
// Instagram control sample changed status at 0.1%/0.1% over the study
// (Table 10 "Instagram Default").
const (
	backgroundDownRate = 0.001
	backgroundUpRate   = 0.001
)

// Initial status mix for accounts referenced in dox files. Most are public
// (that is how doxers found them); a slice are already private; a few are
// dead by the time the dox is posted.
const (
	initialPrivateRate  = 0.18
	initialInactiveRate = 0.02
)

// Reaction delay distribution in days after the dox appears, calibrated to
// §6.3: 35.8% of more-private changes within 24 hours, 90.6% within the
// first seven days, tail out to eight weeks.
var delayDays = []struct {
	day    int
	weight float64
}{
	{0, 0.36}, {1, 0.18}, {2, 0.13}, {3, 0.10}, {4, 0.07}, {5, 0.04},
	{6, 0.03}, {8, 0.02}, {10, 0.02}, {12, 0.02}, {17, 0.01},
	{24, 0.01}, {38, 0.01},
}

// revertDelayDays is how long after the lockdown a reverting account
// reopens.
var revertDelayDays = []struct {
	day    int
	weight float64
}{
	{3, 0.2}, {7, 0.3}, {14, 0.25}, {21, 0.15}, {35, 0.1},
}
