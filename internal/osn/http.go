package osn

import (
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"

	"doxmeter/internal/netid"
)

// Profile page markers. The monitor's scraper classifies account status
// from these, the same way the paper's scraper read profile pages.
const (
	markerPrivate = "This account is private."
)

// Handler serves profile pages:
//
//	GET /{network}/{username}       — profile page. 200 with posts and
//	    comments when public; 200 with a privacy notice when private;
//	    404 when the account is inactive or does not exist.
//	GET /instagram/id/{numeric}     — Instagram lookup by numeric ID
//	    (random-sample support, §6.2.1). Same status semantics.
//
// Pages reflect the account's status at the universe's current virtual
// time.
func (u *Universe) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		parts := strings.Split(strings.Trim(req.URL.Path, "/"), "/")
		switch {
		case len(parts) == 3 && parts[0] == "instagram" && parts[1] == "id":
			id, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				http.Error(w, "bad id", http.StatusBadRequest)
				return
			}
			a, ok := u.ControlAccount(id)
			if !ok {
				http.NotFound(w, req)
				return
			}
			u.renderProfile(w, req, a)
		case len(parts) == 2:
			n, ok := netid.FromSlug(parts[0])
			if !ok {
				http.NotFound(w, req)
				return
			}
			a, ok := u.Lookup(netid.Ref{Network: n, Username: parts[1]})
			if !ok {
				http.NotFound(w, req)
				return
			}
			u.renderProfile(w, req, a)
		default:
			http.NotFound(w, req)
		}
	})
}

// RouteLabel maps a profile-service request to a bounded-cardinality route
// label for the HTTP metrics middleware: usernames and numeric IDs collapse
// to placeholders so the label set stays at one route per network.
func RouteLabel(r *http.Request) string {
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	switch {
	case len(parts) == 3 && parts[0] == "instagram" && parts[1] == "id":
		return "/instagram/id/:id"
	case len(parts) == 2:
		if _, ok := netid.FromSlug(parts[0]); ok {
			return "/" + parts[0] + "/:user"
		}
	}
	return "/other"
}

func (u *Universe) renderProfile(w http.ResponseWriter, req *http.Request, a *Account) {
	now := u.clock.Now()
	switch a.StatusAt(now) {
	case Inactive:
		http.NotFound(w, req)
		return
	case Private:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<html><body><h1>%s</h1><p>%s</p></body></html>",
			html.EscapeString(a.Ref.Username), markerPrivate)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "<html><body><h1>%s</h1>\n<div class=\"activity\" data-posts=\"%d\"></div>\n",
		html.EscapeString(a.Ref.Username), a.Activity)
	if c := a.CompromisedAt(); !c.IsZero() && !now.Before(c) {
		// Defaced profile (footnote 7): the takeover is visible to any
		// scraper, though automating its detection reliably is hard.
		b.WriteString("<div class=\"banner\">OWNED. this account belongs to us now.</div>\n")
	}
	b.WriteString("<div class=\"posts\">\n")
	for i, c := range a.CommentsAt(now) {
		fmt.Fprintf(&b, "<div class=\"comment\" data-author=\"%s\">%s</div>\n",
			html.EscapeString(c.Author), html.EscapeString(c.Text))
		_ = i
	}
	b.WriteString("</div></body></html>")
	fmt.Fprint(w, b.String())
}
