package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestPaperPeriods(t *testing.T) {
	// Paper §3.1.1: "six week period from 7/20/2016 to 8/31/2016" and
	// "seven week period of 12/19/2016 to 2/6/2017".
	if d := Period1.Days(); d != 42 {
		t.Errorf("Period1 days = %d, want 42 (six weeks)", d)
	}
	if d := Period2.Days(); d != 49 {
		t.Errorf("Period2 days = %d, want 49 (seven weeks)", d)
	}
	if !Period2.Start.After(Period1.End) {
		t.Error("Period2 must start after Period1 ends")
	}
}

func TestPeriodContains(t *testing.T) {
	if !Period1.Contains(Period1.Start) {
		t.Error("period should contain its start")
	}
	if Period1.Contains(Period1.End) {
		t.Error("period should not contain its end (half-open)")
	}
	mid := Period1.Start.Add(10 * Day)
	if !Period1.Contains(mid) {
		t.Error("period should contain interior point")
	}
	if Period1.Contains(Period2.Start) {
		t.Error("Period1 should not contain Period2's start")
	}
}

func TestPeriodDayStart(t *testing.T) {
	d0 := Period1.DayStart(0)
	if !d0.Equal(Period1.Start) {
		t.Errorf("DayStart(0) = %v, want period start", d0)
	}
	d7 := Period1.DayStart(7)
	if got := d7.Sub(Period1.Start); got != 7*Day {
		t.Errorf("DayStart(7) offset = %v, want 7 days", got)
	}
}

func TestPeriodString(t *testing.T) {
	s := Period1.String()
	if s == "" {
		t.Fatal("empty period string")
	}
	for _, want := range []string{"pre-filter", "2016-07-20", "2016-08-31", "42"} {
		if !contains(s, want) {
			t.Errorf("Period1.String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(Period1.Start)
	if !c.Now().Equal(Period1.Start) {
		t.Fatal("clock not initialized to start")
	}
	c.Advance(3 * Day)
	if got := c.DaysSince(Period1.Start); got != 3 {
		t.Fatalf("DaysSince = %d, want 3", got)
	}
	c.Advance(12 * time.Hour)
	if got := c.DaysSince(Period1.Start); got != 3 {
		t.Fatalf("DaysSince after half day = %d, want 3 (whole days)", got)
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	c := NewClock(Period1.Start)
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestClockSetBackwardsPanics(t *testing.T) {
	c := NewClock(Period1.Start.Add(Day))
	defer func() {
		if recover() == nil {
			t.Fatal("Set(backwards) did not panic")
		}
	}()
	c.Set(Period1.Start)
}

func TestClockConcurrentReads(t *testing.T) {
	c := NewClock(Period1.Start)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = c.Now()
				}
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		c.Advance(time.Minute)
	}
	close(stop)
	wg.Wait()
	if got := c.Now().Sub(Period1.Start); got != 1000*time.Minute {
		t.Fatalf("advanced %v, want 1000m", got)
	}
}
