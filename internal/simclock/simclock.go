// Package simclock provides the virtual time substrate for the doxing study.
//
// The paper's measurement spans two wall-clock collection periods: a six-week
// period in the summer of 2016 (before Facebook and Instagram deployed
// anti-abuse filters) and a seven-week period over the winter of 2016-17
// (after deployment). Everything in this repository that cares about time —
// post arrival, monitor schedules, account behaviour, deletion horizons —
// reads a Clock rather than time.Now, so studies replay identically.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Day is the granularity of the study: the paper's monitor schedule and all
// of its reported timing results are expressed in days.
const Day = 24 * time.Hour

// Period is a half-open interval [Start, End) of study time.
type Period struct {
	Name  string
	Start time.Time
	End   time.Time
}

// Paper collection periods (paper §3.1.1 / Table 4).
var (
	// Period1 is 7/20/2016 – 8/31/2016: pastebin.com only, pre-filter.
	Period1 = Period{
		Name:  "pre-filter",
		Start: date(2016, time.July, 20),
		End:   date(2016, time.August, 31),
	}
	// Period2 is 12/19/2016 – 2/6/2017: pastebin + 4chan + 8ch, post-filter.
	Period2 = Period{
		Name:  "post-filter",
		Start: date(2016, time.December, 19),
		End:   date(2017, time.February, 6),
	}
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// Days returns the number of whole days in the period.
func (p Period) Days() int {
	return int(p.End.Sub(p.Start) / Day)
}

// Contains reports whether t falls inside the period.
func (p Period) Contains(t time.Time) bool {
	return !t.Before(p.Start) && t.Before(p.End)
}

// DayStart returns the start of the period's nth day (0-based).
func (p Period) DayStart(n int) time.Time {
	return p.Start.Add(time.Duration(n) * Day)
}

// String implements fmt.Stringer.
func (p Period) String() string {
	return fmt.Sprintf("%s (%s – %s, %d days)", p.Name,
		p.Start.Format("2006-01-02"), p.End.Format("2006-01-02"), p.Days())
}

// Clock is a monotonic virtual clock. It is safe for concurrent use: the
// crawler, the site simulators and the account monitor all read it from
// separate goroutines while the study driver advances it.
type Clock struct {
	mu  sync.RWMutex
	now time.Time
}

// NewClock returns a clock set to start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Advance moves the clock forward by d. Attempting to move backwards is a
// programming error and panics: study code relies on monotonicity.
func (c *Clock) Advance(d time.Duration) time.Time {
	if d < 0 {
		panic("simclock: cannot advance backwards")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Set jumps the clock to t, which must not be before the current time.
func (c *Clock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		panic("simclock: cannot set clock backwards")
	}
	c.now = t
}

// DaysSince returns the whole number of days elapsed from t to the clock's
// current time; negative when t is in the future.
func (c *Clock) DaysSince(t time.Time) int {
	return int(c.Now().Sub(t) / Day)
}
