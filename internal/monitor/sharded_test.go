package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"doxmeter/internal/netid"
	"doxmeter/internal/osn"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
)

// shardedRig wires one universe served over HTTP with a single monitor
// and a sharded monitor on separate (identically advanced) clocks, so
// both scrape the same simulated accounts on the same schedule.
type shardedRig struct {
	world  *sim.World
	uni    *osn.Universe
	clock  *simclock.Clock
	single *Monitor
	sh     *Sharded
	srv    *httptest.Server
}

func newShardedRig(t *testing.T, shards int, parallelism int) *shardedRig {
	t.Helper()
	w := sim.NewWorld(sim.Default(81, 0.05))
	clock := simclock.NewClock(simclock.Period1.Start)
	uni := osn.NewUniverse(clock, w, 81)
	srv := httptest.NewServer(uni.Handler())
	t.Cleanup(srv.Close)
	cfg := Config{Clock: clock, BaseURL: srv.URL, EndAt: simclock.Period2.End, Parallelism: parallelism}
	return &shardedRig{
		world:  w,
		uni:    uni,
		clock:  clock,
		single: New(cfg),
		sh:     NewSharded(cfg, shards),
		srv:    srv,
	}
}

// track mirrors every tracking call onto both monitors.
func (r *shardedRig) track(t *testing.T, at time.Time) {
	t.Helper()
	count := 0
	for _, v := range r.world.Victims {
		for _, n := range netid.Monitored() {
			user, ok := v.OSN[n]
			if !ok {
				continue
			}
			ref := netid.Ref{Network: n, Username: user}
			r.uni.RecordDox(ref, at)
			r.single.TrackUntil(ref, at, simclock.Period1.End)
			r.sh.TrackUntil(ref, at, simclock.Period1.End)
			count++
		}
		if count >= 40 {
			break
		}
	}
	for id := int64(1); id <= 10; id++ {
		r.single.TrackControl(id*7, at)
		r.sh.TrackControl(id*7, at)
	}
}

func snapJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// The sharded monitor must produce byte-identical snapshots, identical
// delta cuts, and the same request totals as a single monitor fed the
// same tracking calls and swept on the same schedule.
func TestShardedMonitorEquivalence(t *testing.T) {
	for _, tc := range []struct{ shards, parallelism int }{
		{1, 1}, {4, 1}, {4, 4}, {8, 4},
	} {
		t.Run(fmt.Sprintf("shards=%d,par=%d", tc.shards, tc.parallelism), func(t *testing.T) {
			r := newShardedRig(t, tc.shards, tc.parallelism)
			r.single.SetDeltaJournal(true)
			r.sh.SetDeltaJournal(true)
			r.track(t, r.clock.Now())
			ctx := context.Background()
			for day := 0; day < 30; day++ {
				if err := r.single.ProcessDue(ctx); err != nil {
					t.Fatalf("day %d single: %v", day, err)
				}
				if err := r.sh.ProcessDue(ctx); err != nil {
					t.Fatalf("day %d sharded: %v", day, err)
				}
				if day == 10 {
					d1, dirty1 := r.single.CutDelta()
					d2, dirty2 := r.sh.CutDelta()
					if dirty1 != dirty2 {
						t.Fatalf("delta dirty: %v vs %v", dirty1, dirty2)
					}
					if a, b := snapJSON(t, d1), snapJSON(t, d2); a != b {
						t.Fatalf("delta cut differs:\n%.300s\n%.300s", a, b)
					}
				}
				r.clock.Advance(simclock.Day)
			}
			if r.single.Requests() != r.sh.Requests() {
				t.Fatalf("requests: single=%d sharded=%d", r.single.Requests(), r.sh.Requests())
			}
			a, b := snapJSON(t, r.single.Snapshot()), snapJSON(t, r.sh.Snapshot())
			if a != b {
				t.Fatalf("snapshots differ (%d vs %d bytes)", len(a), len(b))
			}
			v1, n1 := VerifiedCount(r.single.Histories())
			v2, n2 := VerifiedCount(r.sh.Histories())
			if v1 != v2 || n1 != n2 {
				t.Fatalf("verified counts: (%d,%d) vs (%d,%d)", v1, n1, v2, n2)
			}

			// Restore the merged snapshot at a different shard count, finish
			// the schedule on both, and compare again.
			re := NewSharded(Config{Clock: r.clock, BaseURL: r.srv.URL, EndAt: simclock.Period2.End,
				Parallelism: tc.parallelism}, tc.shards+3)
			if err := re.Restore(r.single.Snapshot()); err != nil {
				t.Fatalf("restore: %v", err)
			}
			for day := 0; day < 15; day++ {
				if err := r.single.ProcessDue(ctx); err != nil {
					t.Fatal(err)
				}
				if err := re.ProcessDue(ctx); err != nil {
					t.Fatal(err)
				}
				r.clock.Advance(simclock.Day)
			}
			if a, b := snapJSON(t, r.single.Snapshot()), snapJSON(t, re.Snapshot()); a != b {
				t.Fatal("post-restore snapshots differ")
			}
		})
	}
}

// The lease-driven sweep split (FetchShard per shard, then one merged
// CommitSweeps) must land exactly where ProcessDue does.
func TestFetchShardCommitSweepsMatchesProcessDue(t *testing.T) {
	r := newShardedRig(t, 4, 4)
	r.track(t, r.clock.Now())
	ctx := context.Background()
	for day := 0; day < 30; day++ {
		if err := r.single.ProcessDue(ctx); err != nil {
			t.Fatal(err)
		}
		now := r.clock.Now()
		sweeps := make([]ShardSweep, r.sh.NumShards())
		for i := range sweeps {
			sweeps[i] = r.sh.FetchShard(ctx, i, now, 2)
		}
		if err := r.sh.CommitSweeps(now, sweeps); err != nil {
			t.Fatal(err)
		}
		r.clock.Advance(simclock.Day)
	}
	if a, b := snapJSON(t, r.single.Snapshot()), snapJSON(t, r.sh.Snapshot()); a != b {
		t.Fatal("lease-driven sweep diverged from ProcessDue")
	}
}
