package monitor

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"doxmeter/internal/netid"
	"doxmeter/internal/osn"
	"doxmeter/internal/sim"
	"doxmeter/internal/simclock"
)

// rig wires a universe, its HTTP service, and a monitor on a shared clock.
type rig struct {
	world *sim.World
	uni   *osn.Universe
	clock *simclock.Clock
	mon   *Monitor
	srv   *httptest.Server
}

func newRig(t *testing.T, scale float64) *rig {
	t.Helper()
	w := sim.NewWorld(sim.Default(81, scale))
	clock := simclock.NewClock(simclock.Period1.Start)
	uni := osn.NewUniverse(clock, w, 81)
	srv := httptest.NewServer(uni.Handler())
	t.Cleanup(srv.Close)
	mon := New(Config{Clock: clock, BaseURL: srv.URL, EndAt: simclock.Period2.End})
	return &rig{world: w, uni: uni, clock: clock, mon: mon, srv: srv}
}

// runStudy advances the clock daily to end, processing due checks.
func (r *rig) runStudy(t *testing.T, end time.Time) {
	t.Helper()
	ctx := context.Background()
	for !r.clock.Now().After(end) {
		if err := r.mon.ProcessDue(ctx); err != nil {
			t.Fatal(err)
		}
		r.clock.Advance(simclock.Day)
	}
}

func (r *rig) doxAndTrack(n netid.Network, max int, at time.Time) int {
	count := 0
	for _, v := range r.world.Victims {
		user, ok := v.OSN[n]
		if !ok {
			continue
		}
		ref := netid.Ref{Network: n, Username: user}
		r.uni.RecordDox(ref, at)
		r.mon.Track(ref, at)
		count++
		if count >= max {
			break
		}
	}
	return count
}

func TestScheduleFollowsPaper(t *testing.T) {
	r := newRig(t, 0.05)
	at := simclock.Period1.Start
	r.doxAndTrack(netid.Facebook, 5, at)
	r.runStudy(t, at.Add(30*simclock.Day))

	for _, h := range r.mon.Histories() {
		if !h.Verified {
			continue
		}
		// Expected check days: 0,1,2,3,7,14,21,28.
		wantDays := []int{0, 1, 2, 3, 7, 14, 21, 28}
		if len(h.Obs) != len(wantDays) {
			t.Fatalf("account %v observed %d times, want %d", h.Ref, len(h.Obs), len(wantDays))
		}
		for i, o := range h.Obs {
			day := int(o.Time.Sub(h.DoxSeenAt) / simclock.Day)
			if day != wantDays[i] {
				t.Fatalf("observation %d on day %d, want %d", i, day, wantDays[i])
			}
		}
	}
}

func TestVerifierDropsNonexistent(t *testing.T) {
	r := newRig(t, 0.02)
	at := simclock.Period1.Start
	// A fabricated account (joke dox extraction) does not exist.
	r.mon.Track(netid.Ref{Network: netid.Facebook, Username: "fabricated-person-99"}, at)
	real := r.doxAndTrack(netid.Facebook, 3, at)
	r.runStudy(t, at.Add(10*simclock.Day))

	// Initially-inactive real accounts also 404 on first visit and are
	// indistinguishable from fabricated ones — the verifier drops both.
	wantNonexistent := 1
	for _, h := range r.mon.Histories() {
		if h.Ref.Username == "fabricated-person-99" {
			continue
		}
		if a, ok := r.uni.Lookup(h.Ref); ok && a.StatusAt(at) == osn.Inactive {
			wantNonexistent++
		}
	}
	verified, nonexistent := VerifiedCount(r.mon.Histories())
	if nonexistent != wantNonexistent {
		t.Errorf("nonexistent = %d, want %d", nonexistent, wantNonexistent)
	}
	// Some real accounts may be initially inactive (not verifiable).
	if verified == 0 || verified > real {
		t.Errorf("verified = %d of %d tracked real", verified, real)
	}
	for _, h := range r.mon.Histories() {
		if h.Ref.Username == "fabricated-person-99" && len(h.Obs) != 0 {
			t.Error("nonexistent account kept being scraped")
		}
	}
}

func TestTrackIdempotent(t *testing.T) {
	r := newRig(t, 0.02)
	ref := netid.Ref{Network: netid.Twitter, Username: "someone"}
	r.mon.Track(ref, simclock.Period1.Start)
	r.mon.Track(ref, simclock.Period1.Start.Add(5*simclock.Day))
	if got := len(r.mon.Histories()); got != 1 {
		t.Fatalf("histories = %d, want 1", got)
	}
	if !r.mon.Histories()[0].DoxSeenAt.Equal(simclock.Period1.Start) {
		t.Error("re-track overwrote first-seen time")
	}
}

func TestChangeStatsAgainstGroundTruth(t *testing.T) {
	r := newRig(t, 0.3)
	at := simclock.Period1.Start.Add(simclock.Day)
	n := r.doxAndTrack(netid.Facebook, 10000, at)
	if n < 150 {
		t.Fatalf("only %d Facebook accounts", n)
	}
	end := simclock.Period1.End
	r.runStudy(t, end)

	stats := Changes(r.mon.Histories(), ByNetwork(netid.Facebook))
	if stats.Total < 100 {
		t.Fatalf("stats over %d accounts", stats.Total)
	}
	// Pre-filter Facebook: ~22% more private, ~2% more public (Table 10).
	if mp := stats.MorePrivateRate(); mp < 0.15 || mp > 0.30 {
		t.Errorf("more-private rate %.3f, want ~0.22", mp)
	}
	if any := stats.AnyChangeRate(); any < stats.MorePrivateRate() {
		t.Errorf("any-change %.3f below more-private %.3f", any, stats.MorePrivateRate())
	}
	// Cross-check against universe ground truth: every account the monitor
	// says ended more private must actually be more closed in the universe.
	for _, h := range r.mon.Histories() {
		if !h.Verified || len(h.Obs) < 2 {
			continue
		}
		first, _ := h.FirstStatus()
		last, _ := h.LastStatus()
		a, ok := r.uni.Lookup(h.Ref)
		if !ok {
			t.Fatalf("monitored unknown account %v", h.Ref)
		}
		truthFirst := a.StatusAt(h.Obs[0].Time)
		truthLast := a.StatusAt(h.Obs[len(h.Obs)-1].Time)
		if first != truthFirst || last != truthLast {
			t.Fatalf("observed %v->%v but truth %v->%v", first, last, truthFirst, truthLast)
		}
	}
}

func TestControlSampleStats(t *testing.T) {
	r := newRig(t, 0.02)
	at := simclock.Period1.Start
	for i := int64(0); i < 2000; i++ {
		r.mon.TrackControl(1000+i*31337, at)
	}
	r.runStudy(t, at.Add(42*simclock.Day))
	stats := Changes(r.mon.Histories(), Controls())
	if stats.Total < 1500 {
		t.Fatalf("control sample only %d verified", stats.Total)
	}
	if any := stats.AnyChangeRate(); any > 0.01 {
		t.Errorf("control any-change rate %.4f, want ~0.002 (Table 10 Default)", any)
	}
}

func TestTimingAnalysis(t *testing.T) {
	r := newRig(t, 0.3)
	at := simclock.Period1.Start.Add(simclock.Day)
	r.doxAndTrack(netid.Facebook, 10000, at)
	r.doxAndTrack(netid.Instagram, 10000, at)
	r.runStudy(t, simclock.Period1.End)
	tm := Timing(r.mon.Histories(), func(h *History) bool { return !h.Control })
	if tm.TotalMorePrivate < 30 {
		t.Fatalf("only %d more-private transitions", tm.TotalMorePrivate)
	}
	f1 := float64(tm.Within1Day) / float64(tm.TotalMorePrivate)
	f7 := float64(tm.Within7Days) / float64(tm.TotalMorePrivate)
	if f1 < 0.2 || f1 > 0.55 {
		t.Errorf("within-24h %.3f, want ~0.358 (§6.3)", f1)
	}
	if f7 < 0.8 {
		t.Errorf("within-7d %.3f, want ~0.906 (§6.3)", f7)
	}
	if tm.Within7Days < tm.Within1Day {
		t.Error("7-day count below 1-day count")
	}
}

func TestStripShape(t *testing.T) {
	r := newRig(t, 0.3)
	at := simclock.Period1.Start.Add(simclock.Day)
	r.doxAndTrack(netid.Facebook, 10000, at)
	r.runStudy(t, at.Add(20*simclock.Day))
	f := ByNetwork(netid.Facebook)
	strip := Strip(r.mon.Histories(), f)
	if len(strip) != 15 {
		t.Fatalf("strip has %d points, want 15", len(strip))
	}
	changed, total := ChangersWithin(r.mon.Histories(), f, 14)
	if changed == 0 || changed > total {
		t.Fatalf("changers = %d of %d", changed, total)
	}
	day0 := strip[0]
	day14 := strip[14]
	if day0.Public+day0.Private+day0.Inactive != changed {
		t.Errorf("day-0 population %d != changers %d", day0.Public+day0.Private+day0.Inactive, changed)
	}
	// Lockdowns dominate: fewer public at day 14 than day 0.
	if day14.Public >= day0.Public {
		t.Errorf("public count did not fall: day0=%d day14=%d", day0.Public, day14.Public)
	}
	if day14.Private+day14.Inactive <= day0.Private+day0.Inactive {
		t.Errorf("closed count did not rise")
	}
}

func TestCommenterAnalysis(t *testing.T) {
	r := newRig(t, 0.3)
	at := simclock.Period1.Start.Add(simclock.Day)
	// Trigger abuse so comment streams are non-trivial.
	count := 0
	for _, v := range r.world.Victims {
		user, ok := v.OSN[netid.Facebook]
		if !ok {
			continue
		}
		ref := netid.Ref{Network: netid.Facebook, Username: user}
		r.uni.RecordDox(ref, at)
		r.uni.TriggerAbuse(ref, at)
		r.mon.Track(ref, at)
		count++
	}
	if count < 100 {
		t.Fatalf("only %d accounts", count)
	}
	r.runStudy(t, at.Add(21*simclock.Day))
	cs := Commenters(r.mon.Histories())
	if cs.Comments == 0 || cs.Commenters == 0 {
		t.Fatal("no comments observed")
	}
	if cs.CrossAccountUsers != 0 {
		t.Errorf("found %d cross-account commenters, paper found none (§5.3.2)", cs.CrossAccountUsers)
	}
	if cs.Comments < cs.Commenters {
		t.Error("more commenters than comments")
	}
}

func TestCompromiseObservation(t *testing.T) {
	r := newRig(t, 0.5)
	at := simclock.Period1.Start.Add(simclock.Day)
	r.doxAndTrack(netid.Instagram, 10000, at)
	r.runStudy(t, simclock.Period1.End)
	cs := Compromises(r.mon.Histories(), ByNetwork(netid.Instagram))
	if cs.MorePublic == 0 {
		t.Skip("no more-public transitions at this seed")
	}
	if cs.Defaced > cs.MorePublic {
		t.Fatalf("defaced (%d) exceeds more-public (%d)", cs.Defaced, cs.MorePublic)
	}
	// Ground truth: every observed defacement corresponds to a universe
	// compromise.
	for _, h := range r.mon.Histories() {
		sawDefaced := false
		for _, o := range h.Obs {
			if o.Defaced {
				sawDefaced = true
			}
		}
		if !sawDefaced {
			continue
		}
		a, ok := r.uni.Lookup(h.Ref)
		if !ok || a.CompromisedAt().IsZero() {
			t.Fatalf("observed defacement on uncompromised account %v", h.Ref)
		}
	}
}

func TestHistoryHelpers(t *testing.T) {
	h := &History{DoxSeenAt: simclock.Period1.Start}
	if _, ok := h.FirstStatus(); ok {
		t.Error("empty history has a first status")
	}
	if changed, _ := h.ChangedWithin(14); changed {
		t.Error("empty history changed")
	}
	h.Obs = []Observation{
		{Time: h.DoxSeenAt, Status: osn.Public},
		{Time: h.DoxSeenAt.Add(2 * simclock.Day), Status: osn.Private},
		{Time: h.DoxSeenAt.Add(20 * simclock.Day), Status: osn.Inactive},
	}
	if st, _ := h.StatusOnDay(1); st != osn.Public {
		t.Errorf("day 1 status %v", st)
	}
	if st, _ := h.StatusOnDay(3); st != osn.Private {
		t.Errorf("day 3 status %v", st)
	}
	if changed, when := h.ChangedWithin(14); !changed || !when.Equal(h.DoxSeenAt.Add(2*simclock.Day)) {
		t.Error("change within 14 days not detected")
	}
	if changed, _ := h.ChangedWithin(1); changed {
		t.Error("change detected too early")
	}
}

func TestScheduleCatchUpAcrossGap(t *testing.T) {
	// The study stops polling between collection periods; when the clock
	// jumps the gap, due checks must catch up without duplicate or
	// out-of-order observations.
	r := newRig(t, 0.05)
	// Track with a horizon beyond the gap.
	at := simclock.Period1.End.Add(-3 * simclock.Day)
	r.clock.Set(at)
	n := 0
	for _, v := range r.world.Victims {
		user, ok := v.OSN[netid.Facebook]
		if !ok {
			continue
		}
		ref := netid.Ref{Network: netid.Facebook, Username: user}
		r.uni.RecordDox(ref, at)
		r.mon.TrackUntil(ref, at, simclock.Period2.End)
		n++
		if n == 5 {
			break
		}
	}
	ctx := context.Background()
	for !r.clock.Now().After(simclock.Period1.End) {
		if err := r.mon.ProcessDue(ctx); err != nil {
			t.Fatal(err)
		}
		r.clock.Advance(simclock.Day)
	}
	// Jump the gap.
	r.clock.Set(simclock.Period2.Start)
	for i := 0; i < 20; i++ {
		if err := r.mon.ProcessDue(ctx); err != nil {
			t.Fatal(err)
		}
		r.clock.Advance(simclock.Day)
	}
	for _, h := range r.mon.Histories() {
		if !h.Verified {
			continue
		}
		for i := 1; i < len(h.Obs); i++ {
			if !h.Obs[i].Time.After(h.Obs[i-1].Time) {
				t.Fatalf("observations out of order or duplicated at %d", i)
			}
			gapStart, gapEnd := simclock.Period1.End, simclock.Period2.Start
			if h.Obs[i].Time.After(gapStart) && h.Obs[i].Time.Before(gapEnd) {
				t.Fatalf("observation inside the inter-period gap: %v", h.Obs[i].Time)
			}
		}
		if len(h.Obs) < 6 {
			t.Fatalf("monitoring did not resume after the gap: %d observations", len(h.Obs))
		}
	}
}

// TestParallelSweepMatchesSerial runs the same study twice — serial and
// with a parallel due-account sweep — and requires bit-identical histories.
func TestParallelSweepMatchesSerial(t *testing.T) {
	run := func(parallelism int) []*History {
		w := sim.NewWorld(sim.Default(81, 0.02))
		clock := simclock.NewClock(simclock.Period1.Start)
		uni := osn.NewUniverse(clock, w, 81)
		srv := httptest.NewServer(uni.Handler())
		defer srv.Close()
		mon := New(Config{Clock: clock, BaseURL: srv.URL, EndAt: simclock.Period2.End, Parallelism: parallelism})
		at := simclock.Period1.Start
		n := 0
		for _, v := range w.Victims {
			user, ok := v.OSN[netid.Facebook]
			if !ok {
				continue
			}
			ref := netid.Ref{Network: netid.Facebook, Username: user}
			uni.RecordDox(ref, at)
			mon.Track(ref, at)
			if n++; n >= 40 {
				break
			}
		}
		ctx := context.Background()
		for !clock.Now().After(at.Add(30 * simclock.Day)) {
			if err := mon.ProcessDue(ctx); err != nil {
				t.Fatal(err)
			}
			clock.Advance(simclock.Day)
		}
		return mon.Histories()
	}

	serial := run(1)
	par := run(8)
	if len(serial) != len(par) {
		t.Fatalf("history count diverged: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		a, b := serial[i], par[i]
		if a.Ref != b.Ref || a.Verified != b.Verified || a.Activity != b.Activity || len(a.Obs) != len(b.Obs) {
			t.Fatalf("history %v diverged: %+v vs %+v", a.Ref, a, b)
		}
		for j := range a.Obs {
			if !a.Obs[j].Time.Equal(b.Obs[j].Time) || a.Obs[j].Status != b.Obs[j].Status ||
				a.Obs[j].Defaced != b.Obs[j].Defaced || len(a.Obs[j].Comments) != len(b.Obs[j].Comments) {
				t.Fatalf("history %v observation %d diverged", a.Ref, j)
			}
		}
	}
}
