package monitor

import (
	"context"
	"sort"
	"time"

	"doxmeter/internal/crawler"
	"doxmeter/internal/lease"
	"doxmeter/internal/netid"
	"doxmeter/internal/parallel"
)

// Sharded partitions the monitoring schedule across N Monitors by
// key-hash of the account key (lease.ShardOf over the same history key
// the snapshot and journal use), so each shard owns a disjoint set of
// accounts and a sharded study can sweep shards as independent leased
// work items.
//
// All shards share one hardened crawler.Fetcher — retry, backoff, and
// circuit-breaker state is global exactly as in a single monitor — and,
// when Config.Telemetry is set, one set of metric cells (the registry
// deduplicates by name). Commits stay in global sorted account-key
// order, so histories, request counts, and sweep outcomes are identical
// to a single monitor's at any shard count.
//
// The checkpoint surface stays canonical: Snapshot merges shards into
// one State byte-identical to a single monitor holding the same
// accounts, Restore re-splits by hash (a run may checkpoint at N shards
// and resume at M), and CutDelta merges the per-shard journals.
type Sharded struct {
	shards      []*Monitor
	parallelism int
}

// NewSharded builds n key-hash monitor shards from one Config (n < 1 is
// treated as 1). NewSharded(cfg, 1) behaves exactly like New(cfg).
func NewSharded(cfg Config, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	m := &Sharded{shards: make([]*Monitor, n), parallelism: cfg.Parallelism}
	for i := range m.shards {
		m.shards[i] = New(cfg)
		if i > 0 {
			// One fetcher across all shards: breaker and retry state must
			// not depend on how accounts happen to be partitioned.
			m.shards[i].f = m.shards[0].f
		}
	}
	return m
}

// NumShards returns the shard count.
func (m *Sharded) NumShards() int { return len(m.shards) }

func (m *Sharded) shardFor(key string) *Monitor {
	return m.shards[lease.ShardOf(key, len(m.shards))]
}

// Track begins monitoring an account first seen in a dox at seenAt.
func (m *Sharded) Track(ref netid.Ref, seenAt time.Time) {
	m.TrackUntil(ref, seenAt, time.Time{})
}

// TrackUntil tracks an account with an explicit monitoring horizon on
// its owning shard.
func (m *Sharded) TrackUntil(ref netid.Ref, seenAt, endAt time.Time) {
	m.shardFor(historyKey(false, 0, ref)).TrackUntil(ref, seenAt, endAt)
}

// TrackControl begins monitoring a control-sample Instagram account by
// numeric ID on its owning shard.
func (m *Sharded) TrackControl(id int64, seenAt time.Time) {
	m.shardFor(historyKey(true, id, netid.Ref{})).TrackControl(id, seenAt)
}

// Histories returns all tracked histories across shards, sorted by
// account key — the same order a single monitor returns.
func (m *Sharded) Histories() []*History {
	if len(m.shards) == 1 {
		return m.shards[0].Histories()
	}
	var all []*History
	for _, s := range m.shards {
		all = append(all, s.Histories()...)
	}
	sort.Slice(all, func(i, j int) bool { return historyKeyOf(all[i]) < historyKeyOf(all[j]) })
	return all
}

// Requests returns the total number of profile fetches across shards.
func (m *Sharded) Requests() int64 {
	var n int64
	for _, s := range m.shards {
		n += s.Requests()
	}
	return n
}

// FetchStats exposes the shared fetcher's operational counters.
func (m *Sharded) FetchStats() crawler.FetchStats {
	return m.shards[0].FetchStats()
}

// Snapshot merges the shards into one canonical State: total requests,
// histories sorted by account key. Byte-identical to a single monitor's
// Snapshot over the same accounts.
func (m *Sharded) Snapshot() State {
	if len(m.shards) == 1 {
		return m.shards[0].Snapshot()
	}
	st := State{}
	for _, s := range m.shards {
		part := s.Snapshot()
		st.Requests += part.Requests
		st.Histories = append(st.Histories, part.Histories...)
	}
	sort.Slice(st.Histories, func(i, j int) bool {
		return historyStateKey(st.Histories[i]) < historyStateKey(st.Histories[j])
	})
	return st
}

// Restore replaces the sharded state from a canonical State, re-routing
// every history to its owning shard. The request total is carried on
// shard 0; only the sum is ever observed.
func (m *Sharded) Restore(st State) error {
	n := len(m.shards)
	parts := make([]State, n)
	for _, hs := range st.Histories {
		i := lease.ShardOf(historyStateKey(hs), n)
		parts[i].Histories = append(parts[i].Histories, hs)
	}
	parts[0].Requests = st.Requests
	for i, s := range m.shards {
		if err := s.Restore(parts[i]); err != nil {
			return err
		}
	}
	return nil
}

// SetDeltaJournal enables (or disables) mutation journaling on every
// shard.
func (m *Sharded) SetDeltaJournal(on bool) {
	for _, s := range m.shards {
		s.SetDeltaJournal(on)
	}
}

// CutDelta merges the per-shard journals into one canonical Delta:
// total requests, upserts sorted by account key.
func (m *Sharded) CutDelta() (Delta, bool) {
	if len(m.shards) == 1 {
		return m.shards[0].CutDelta()
	}
	d := Delta{}
	dirty := false
	for _, s := range m.shards {
		part, partDirty := s.CutDelta()
		dirty = dirty || partDirty
		d.Requests += part.Requests
		d.Upserts = append(d.Upserts, part.Upserts...)
	}
	sort.Slice(d.Upserts, func(i, j int) bool {
		return historyStateKey(d.Upserts[i]) < historyStateKey(d.Upserts[j])
	})
	return d, dirty
}

// dueItem pairs a due history with the shard that owns it.
type dueItem struct {
	h     *History
	owner *Monitor
}

// dueSorted gathers the due histories across shards at now, in the
// global sorted order a single monitor would visit them.
func (m *Sharded) dueSorted(now time.Time) []dueItem {
	var due []dueItem
	for _, s := range m.shards {
		for _, h := range s.dueNow(now) {
			due = append(due, dueItem{h: h, owner: s})
		}
	}
	sort.Slice(due, func(i, j int) bool {
		a, b := due[i].h, due[j].h
		if ak, bk := a.Ref.Key(), b.Ref.Key(); ak != bk {
			return ak < bk
		}
		return historyKeyOf(a) < historyKeyOf(b)
	})
	return due
}

func (m *Sharded) trackedTotal() int {
	n := 0
	for _, s := range m.shards {
		n += s.trackedCount()
	}
	return n
}

// ProcessDue visits every due account across all shards, with the exact
// semantics of a single monitor's sweep: serial interleaved
// scrape-and-commit when parallelism <= 1, otherwise a bounded parallel
// fetch phase followed by ordered commits, stopping at the first
// failure either way.
func (m *Sharded) ProcessDue(ctx context.Context) error {
	if len(m.shards) == 1 {
		return m.shards[0].ProcessDue(ctx)
	}
	now := m.shards[0].clock.Now()
	due := m.dueSorted(now)
	m.shards[0].sweepMetrics(len(due), m.trackedTotal())

	if m.parallelism <= 1 {
		for _, d := range due {
			if err := ctx.Err(); err != nil {
				return err
			}
			res := d.owner.scrapeOne(ctx, d.h)
			if err := d.owner.commit(d.h, res, now); err != nil {
				return err
			}
		}
		return nil
	}

	results := make([]scrapeResult, len(due))
	parallel.ForEach(len(due), m.parallelism, func(i int) {
		if err := ctx.Err(); err != nil {
			results[i] = scrapeResult{err: err}
			return
		}
		results[i] = due[i].owner.scrapeOne(ctx, due[i].h)
	})
	for i, d := range due {
		if err := d.owner.commit(d.h, results[i], now); err != nil {
			return err
		}
	}
	return nil
}

// ShardSweep is the fetch half of one shard's monitor sweep: due
// histories scraped (read-only) but not yet committed. The sharded
// study driver runs FetchShard for each shard as a leased work item,
// then folds every sweep through CommitSweeps on the driver goroutine.
type ShardSweep struct {
	owner   *Monitor
	due     []*History
	results []scrapeResult
}

// Due returns how many accounts the sweep scraped.
func (sw ShardSweep) Due() int { return len(sw.due) }

// FetchShard scrapes shard i's due accounts at now, fanning out across
// at most workers concurrent fetches, without mutating any history.
func (m *Sharded) FetchShard(ctx context.Context, i int, now time.Time, workers int) ShardSweep {
	s := m.shards[i]
	due := s.dueNow(now)
	sort.Slice(due, func(a, b int) bool {
		if ak, bk := due[a].Ref.Key(), due[b].Ref.Key(); ak != bk {
			return ak < bk
		}
		return historyKeyOf(due[a]) < historyKeyOf(due[b])
	})
	sw := ShardSweep{owner: s, due: due, results: make([]scrapeResult, len(due))}
	if workers < 1 {
		workers = 1
	}
	parallel.ForEach(len(due), workers, func(j int) {
		if err := ctx.Err(); err != nil {
			sw.results[j] = scrapeResult{err: err}
			return
		}
		sw.results[j] = s.scrapeOne(ctx, due[j])
	})
	return sw
}

// CommitSweeps merges per-shard sweeps and commits their observations
// in global sorted account-key order, stopping at the first failure —
// the same outcome a single monitor's parallel sweep produces.
func (m *Sharded) CommitSweeps(now time.Time, sweeps []ShardSweep) error {
	type item struct {
		d   dueItem
		res scrapeResult
	}
	var all []item
	for _, sw := range sweeps {
		for j, h := range sw.due {
			all = append(all, item{d: dueItem{h: h, owner: sw.owner}, res: sw.results[j]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].d.h, all[j].d.h
		if ak, bk := a.Ref.Key(), b.Ref.Key(); ak != bk {
			return ak < bk
		}
		return historyKeyOf(a) < historyKeyOf(b)
	})
	m.shards[0].sweepMetrics(len(all), m.trackedTotal())
	for _, it := range all {
		if err := it.d.owner.commit(it.d.h, it.res, now); err != nil {
			return err
		}
	}
	return nil
}
