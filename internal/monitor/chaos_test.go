package monitor

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"doxmeter/internal/crawler"
	"doxmeter/internal/faults"
	"doxmeter/internal/netid"
	"doxmeter/internal/simclock"
)

// TestMonitorChaosIdentical runs the same monitoring study twice — once
// against the OSN service directly and once through a healing all-modes
// fault injector — and requires bit-identical histories. Observation times
// come from the virtual clock and fault healing happens inside each day's
// retry budget, so injected chaos may slow a sweep down but must never
// change what it records.
func TestMonitorChaosIdentical(t *testing.T) {
	// Probabilities are high because the faultable population is small:
	// MaxFaultsPerURL=2 means only the first two requests per profile URL
	// can fault, and the study tracks 20 accounts. The seed is chosen so
	// every mode (including corruption) fires at least once.
	profile := faults.Profile{
		Seed: 29,
		P500: 0.10, P503: 0.05, P429: 0.08, PReset: 0.06,
		PStall: 0.02, PTruncate: 0.08, PCorrupt: 0.12,
		RetryAfter: 5 * time.Millisecond, StallFor: 5 * time.Millisecond,
		MaxFaultsPerURL: 2,
	}
	hardened := crawler.Options{
		Retries: 6, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 2 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	}

	run := func(inject bool) []*History {
		r := newRig(t, 0.02)
		if inject {
			inner := r.srv.Config.Handler
			inj := faults.NewInjector(profile, r.clock, inner)
			srv := httptest.NewServer(inj)
			t.Cleanup(srv.Close)
			r.mon = New(Config{Clock: r.clock, BaseURL: srv.URL, EndAt: simclock.Period2.End, Fetch: &hardened})
			t.Cleanup(func() {
				c := inj.Counters()
				if c.Injected() == 0 {
					t.Error("monitor injector never fired")
				}
				s := r.mon.FetchStats()
				if s.Retries == 0 {
					t.Errorf("faulted monitor stats = %+v, want nonzero Retries", s)
				}
			})
		}
		at := simclock.Period1.Start
		r.doxAndTrack(netid.Facebook, 10, at)
		r.doxAndTrack(netid.Instagram, 10, at)
		r.runStudy(t, at.Add(21*simclock.Day))
		return r.mon.Histories()
	}

	plain := run(false)
	faulted := run(true)
	if len(plain) != len(faulted) {
		t.Fatalf("history counts diverged: %d vs %d", len(plain), len(faulted))
	}
	for i := range plain {
		a, b := plain[i], faulted[i]
		if a.Ref != b.Ref || a.Verified != b.Verified || a.Activity != b.Activity ||
			!a.DoxSeenAt.Equal(b.DoxSeenAt) || !reflect.DeepEqual(a.Obs, b.Obs) {
			t.Fatalf("history %v diverged under faults:\nplain:   %+v\nfaulted: %+v", a.Ref, a, b)
		}
	}
}

// TestMonitorSurvivesPersistentCorruption: when profile pages stay corrupt
// past the whole retry budget, the sweep reports an error, no garbage is
// committed, the accounts stay due — and once the corruption clears, the
// next sweep records real observations. Late, never lost, never garbage.
func TestMonitorSurvivesPersistentCorruption(t *testing.T) {
	r := newRig(t, 0.02)
	var healed atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if healed.Load() {
			r.srv.Config.Handler.ServeHTTP(w, req)
			return
		}
		w.Write([]byte("\x00\x1fmangled cache entry {{{")) // no <html> marker
	}))
	t.Cleanup(srv.Close)

	mon := New(Config{Clock: r.clock, BaseURL: srv.URL, EndAt: simclock.Period2.End,
		Fetch: &crawler.Options{Retries: 2, Backoff: time.Millisecond}})
	at := simclock.Period1.Start
	n := 0
	for _, v := range r.world.Victims {
		if user, ok := v.OSN[netid.Facebook]; ok {
			mon.Track(netid.Ref{Network: netid.Facebook, Username: user}, at)
			if n++; n >= 3 {
				break
			}
		}
	}

	err := mon.ProcessDue(context.Background())
	if err == nil {
		t.Fatal("sweep against fully corrupt service reported success")
	}
	if !errors.Is(err, crawler.ErrCorruptPayload) {
		t.Fatalf("sweep error = %v, want ErrCorruptPayload", err)
	}
	for _, h := range mon.Histories() {
		if len(h.Obs) != 0 {
			t.Fatalf("corrupt page committed an observation: %+v", h.Obs)
		}
	}
	if s := mon.FetchStats(); s.Corrupt == 0 {
		t.Fatalf("stats = %+v, want nonzero Corrupt", s)
	}

	healed.Store(true)
	if err := mon.ProcessDue(context.Background()); err != nil {
		t.Fatal(err)
	}
	obs := 0
	for _, h := range mon.Histories() {
		obs += len(h.Obs)
	}
	if obs == 0 {
		t.Fatal("no observations after the corruption cleared")
	}
}
