// Package monitor implements the final stage of the paper's pipeline
// (§3.1.5): verifying and repeatedly scraping the online-social-network
// accounts referenced in dox files.
//
// Each tracked account is visited on the paper's schedule — immediately
// when the dox is observed, then one, two, three and seven days later, then
// every seven days — and classified as public, private or inactive from its
// profile page. First-visit 404s mark the account nonexistent (the
// "Account Verifier" box in the paper's Figure 1): fabricated accounts in
// joke doxes and extraction noise fall out here. For public accounts the
// scraper also records the text and authors of visible comments, which
// feeds the §5.3.2 commenter-network analysis.
package monitor

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"doxmeter/internal/crawler"
	"doxmeter/internal/netid"
	"doxmeter/internal/osn"
	"doxmeter/internal/parallel"
	"doxmeter/internal/simclock"
	"doxmeter/internal/telemetry"
)

// scheduleOffsets is the paper's revisit schedule in days; after the last
// fixed offset, visits continue every seven days.
var scheduleOffsets = []int{0, 1, 2, 3, 7}

// Observation is one scrape result.
type Observation struct {
	Time     time.Time
	Status   osn.Status
	Defaced  bool         // profile carried a takeover banner (footnote 7)
	Comments []CommentObs // populated only for public accounts
}

// CommentObs is a comment visible on a public account.
type CommentObs struct {
	Author string
	Text   string
}

// History is the full observation record for one tracked account.
type History struct {
	Ref       netid.Ref
	NumericID int64 // Instagram control sample tracking, 0 otherwise
	Control   bool  // true for random-sample accounts
	DoxSeenAt time.Time
	Verified  bool // first visit found the account (even if private)
	// Activity is the visible post count from the first public
	// observation, or -1 when the account was never seen public — the
	// §6.2.1 "activity metric" the paper proposes as future work.
	Activity int
	Obs      []Observation

	nextIdx  int
	nextDue  time.Time
	endAt    time.Time // zero means the monitor-wide end
	finished bool
	url      string // profile URL, cached on first sweep (Ref/NumericID never change)
}

// FirstStatus returns the initial observed status.
func (h *History) FirstStatus() (osn.Status, bool) {
	if len(h.Obs) == 0 {
		return 0, false
	}
	return h.Obs[0].Status, true
}

// LastStatus returns the most recent observed status.
func (h *History) LastStatus() (osn.Status, bool) {
	if len(h.Obs) == 0 {
		return 0, false
	}
	return h.Obs[len(h.Obs)-1].Status, true
}

// StatusOnDay returns the last observed status on or before the given
// day offset from DoxSeenAt, carrying earlier observations forward.
func (h *History) StatusOnDay(day int) (osn.Status, bool) {
	cutoff := h.DoxSeenAt.Add(time.Duration(day)*simclock.Day + 12*time.Hour)
	var st osn.Status
	found := false
	for _, o := range h.Obs {
		if o.Time.After(cutoff) {
			break
		}
		st = o.Status
		found = true
	}
	return st, found
}

// ChangedWithin reports whether the observed status changed at least once
// within the first `days` days, and when the first change was observed.
func (h *History) ChangedWithin(days int) (bool, time.Time) {
	if len(h.Obs) < 2 {
		return false, time.Time{}
	}
	cutoff := h.DoxSeenAt.Add(time.Duration(days) * simclock.Day)
	prev := h.Obs[0].Status
	for _, o := range h.Obs[1:] {
		if o.Time.After(cutoff) {
			break
		}
		if o.Status != prev {
			return true, o.Time
		}
		prev = o.Status
	}
	return false, time.Time{}
}

// Monitor tracks accounts and scrapes them on schedule. Safe for concurrent
// use. ProcessDue fetches due profiles with a bounded worker pool (see
// Config.Parallelism) but commits observations in deterministic
// account-key order, so histories are identical at any parallelism.
type Monitor struct {
	clock   *simclock.Clock
	baseURL string
	client  *http.Client
	endAt   time.Time
	f       *crawler.Fetcher

	mu          sync.Mutex
	histories   map[string]*History
	requests    int64
	parallelism int

	// Delta-checkpoint journal: account keys whose history was created or
	// mutated since the last cut, kept only while journaling is enabled.
	// Histories are never removed, so upserting the journaled keys onto
	// the previous cut's state reproduces the current one.
	journalOn       bool
	journal         map[string]bool
	lastCutRequests int64

	// Sweep instruments; nil (no-op) until Instrument is called.
	sweepsC  *telemetry.Counter
	scrapesC *telemetry.Counter
	dueG     *telemetry.Gauge
	trackedG *telemetry.Gauge
}

// Config gathers everything New needs to build a monitor, replacing the
// old positional constructor plus post-construction setter sprawl:
// construct once, fully configured.
type Config struct {
	// Clock is the study's virtual clock (required).
	Clock *simclock.Clock
	// BaseURL is the OSN service root, no trailing slash (required).
	BaseURL string
	// EndAt is the monitor-wide horizon after which no account is
	// revisited (required).
	EndAt time.Time
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// Fetch, when non-nil, is the hardened fetch policy (retries,
	// backoff, circuit breaker, timeouts) — the same knobs the document
	// crawlers take. A nil Fetch uses crawler defaults; a Fetch with a
	// nil Client inherits Config.Client.
	Fetch *crawler.Options
	// Parallelism bounds how many profile fetches one ProcessDue sweep
	// issues concurrently; <= 1 scrapes serially. Any setting yields
	// identical histories (ordered commits).
	Parallelism int
	// Telemetry, when non-nil, declares the doxmeter_monitor_* sweep
	// metrics on this registry.
	Telemetry *telemetry.Registry
}

// New builds a monitor from a Config.
func New(cfg Config) *Monitor {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	fopts := crawler.Options{Client: client}
	if cfg.Fetch != nil {
		fopts = *cfg.Fetch
		if fopts.Client == nil {
			fopts.Client = client
		}
	}
	m := &Monitor{
		clock:       cfg.Clock,
		baseURL:     cfg.BaseURL,
		client:      client,
		endAt:       cfg.EndAt,
		f:           crawler.NewFetcher(fopts),
		histories:   make(map[string]*History),
		parallelism: cfg.Parallelism,
	}
	m.instrument(cfg.Telemetry)
	return m
}

// instrument declares the monitor's sweep metrics on reg:
// doxmeter_monitor_sweeps_total, doxmeter_monitor_scrapes_total,
// doxmeter_monitor_due_accounts and doxmeter_monitor_tracked_accounts.
// A nil registry leaves the monitor uninstrumented (every update a no-op).
func (m *Monitor) instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepsC = reg.NewCounter("doxmeter_monitor_sweeps_total",
		"ProcessDue sweeps started.").With()
	m.scrapesC = reg.NewCounter("doxmeter_monitor_scrapes_total",
		"Profile scrapes committed to a history.").With()
	m.dueG = reg.NewGauge("doxmeter_monitor_due_accounts",
		"Accounts due at the start of the latest sweep.").With()
	m.trackedG = reg.NewGauge("doxmeter_monitor_tracked_accounts",
		"Accounts currently tracked (finished ones included).").With()
}

// FetchStats exposes the underlying fetcher's operational counters.
func (m *Monitor) FetchStats() crawler.FetchStats {
	m.mu.Lock()
	f := m.f
	m.mu.Unlock()
	return f.Stats()
}

// Track begins monitoring an account first seen in a dox at seenAt. Already
// tracked accounts are ignored (dox reposts).
func (m *Monitor) Track(ref netid.Ref, seenAt time.Time) {
	m.TrackUntil(ref, seenAt, time.Time{})
}

// TrackUntil tracks an account with an explicit monitoring horizon — the
// study stops revisiting accounts when their collection period ends. A zero
// endAt uses the monitor-wide horizon.
func (m *Monitor) TrackUntil(ref netid.Ref, seenAt, endAt time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := ref.Key()
	if _, ok := m.histories[key]; ok {
		return
	}
	m.histories[key] = &History{Ref: ref, DoxSeenAt: seenAt, nextDue: seenAt, endAt: endAt, Activity: -1}
	if m.journalOn {
		m.journal[key] = true
	}
}

// TrackControl begins monitoring an Instagram account by numeric ID as part
// of the random control sample (§6.2.1).
func (m *Monitor) TrackControl(id int64, seenAt time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := fmt.Sprintf("igid:%d", id)
	if _, ok := m.histories[key]; ok {
		return
	}
	m.histories[key] = &History{
		Ref:       netid.Ref{Network: netid.Instagram, Username: fmt.Sprintf("id-%d", id)},
		NumericID: id,
		Control:   true,
		DoxSeenAt: seenAt,
		nextDue:   seenAt,
		Activity:  -1,
	}
	if m.journalOn {
		m.journal[key] = true
	}
}

// historyKey is the histories-map key for a history: control accounts
// tracked by numeric ID key as "igid:<id>", everything else by the
// account reference. Snapshot ordering, Restore, and the delta journal
// all derive keys through here so they cannot disagree.
func historyKey(control bool, numericID int64, ref netid.Ref) string {
	if control && numericID > 0 {
		return fmt.Sprintf("igid:%d", numericID)
	}
	return ref.Key()
}

// historyKeyOf is historyKey for a live history.
func historyKeyOf(h *History) string {
	return historyKey(h.Control, h.NumericID, h.Ref)
}

// dueNow returns the histories due at now, unsorted. The sharded
// monitor's sweep paths collect due sets per shard and order them
// globally.
func (m *Monitor) dueNow(now time.Time) []*History {
	m.mu.Lock()
	defer m.mu.Unlock()
	var due []*History
	for _, h := range m.histories {
		if !h.finished && !h.nextDue.After(now) {
			due = append(due, h)
		}
	}
	return due
}

// trackedCount returns how many accounts the monitor tracks.
func (m *Monitor) trackedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.histories)
}

// sweepMetrics records one sweep's instrumentation. The sharded monitor
// calls it once per global sweep with cross-shard totals (every shard
// shares the same metric cells via the registry).
func (m *Monitor) sweepMetrics(due, tracked int) {
	m.sweepsC.Inc()
	m.dueG.Set(float64(due))
	m.trackedG.Set(float64(tracked))
}

// Histories returns all tracked histories, sorted by account key.
func (m *Monitor) Histories() []*History {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.histories))
	for k := range m.histories {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*History, len(keys))
	for i, k := range keys {
		out[i] = m.histories[k]
	}
	return out
}

// Requests returns the number of profile fetches performed.
func (m *Monitor) Requests() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests
}

// HistoryState is one tracked account in a monitor snapshot. Account
// references serialize as (network slug, username) — OSN usernames are
// the paper's explicit §3.3 storage exception, since the monitor cannot
// keep scraping an account it no longer knows the name of. Comment text
// and authors come from public OSN profiles, the same exception.
type HistoryState struct {
	Network   string        `json:"network"`
	Username  string        `json:"username"`
	NumericID int64         `json:"numeric_id,omitempty"`
	Control   bool          `json:"control,omitempty"`
	DoxSeenAt time.Time     `json:"dox_seen_at"`
	Verified  bool          `json:"verified"`
	Activity  int           `json:"activity"`
	Obs       []Observation `json:"obs,omitempty"`
	NextIdx   int           `json:"next_idx"`
	NextDue   time.Time     `json:"next_due"`
	EndAt     time.Time     `json:"end_at,omitempty"`
	Finished  bool          `json:"finished,omitempty"`
}

// State is the monitor's versioned snapshot payload.
type State struct {
	Requests  int64          `json:"requests"`
	Histories []HistoryState `json:"histories"` // sorted by account key
}

// Snapshot captures every tracked account — schedule position included —
// for checkpointing.
func (m *Monitor) Snapshot() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.histories))
	for k := range m.histories {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	st := State{Requests: m.requests, Histories: make([]HistoryState, 0, len(keys))}
	for _, k := range keys {
		st.Histories = append(st.Histories, historyState(m.histories[k]))
	}
	return st
}

// historyState converts one live history to its snapshot form, copying
// the observation slice so later commits cannot alias it.
func historyState(h *History) HistoryState {
	obs := make([]Observation, len(h.Obs))
	copy(obs, h.Obs)
	return HistoryState{
		Network:   h.Ref.Network.Slug(),
		Username:  h.Ref.Username,
		NumericID: h.NumericID,
		Control:   h.Control,
		DoxSeenAt: h.DoxSeenAt,
		Verified:  h.Verified,
		Activity:  h.Activity,
		Obs:       obs,
		NextIdx:   h.nextIdx,
		NextDue:   h.nextDue,
		EndAt:     h.endAt,
		Finished:  h.finished,
	}
}

// Restore replaces the monitor's tracked accounts with a snapshot taken
// by Snapshot. Track/TrackUntil stay idempotent afterwards, so replayed
// tracking calls from a resumed study are no-ops.
func (m *Monitor) Restore(st State) error {
	histories := make(map[string]*History, len(st.Histories))
	for _, hs := range st.Histories {
		network, ok := netid.FromSlug(hs.Network)
		if !ok {
			return fmt.Errorf("monitor: restore: unknown network slug %q", hs.Network)
		}
		h := &History{
			Ref:       netid.Ref{Network: network, Username: hs.Username},
			NumericID: hs.NumericID,
			Control:   hs.Control,
			DoxSeenAt: hs.DoxSeenAt,
			Verified:  hs.Verified,
			Activity:  hs.Activity,
			Obs:       hs.Obs,
			nextIdx:   hs.NextIdx,
			nextDue:   hs.NextDue,
			endAt:     hs.EndAt,
			finished:  hs.Finished,
		}
		histories[historyKey(h.Control, h.NumericID, h.Ref)] = h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.histories = histories
	m.requests = st.Requests
	if m.journalOn {
		m.journal = make(map[string]bool)
	}
	m.lastCutRequests = st.Requests
	return nil
}

// Delta is the monitor's incremental checkpoint payload: the request
// counter wholesale plus the full current state of every history touched
// since the previous cut. Histories are never removed and the per-day
// touched set is small (the revisit schedule is exponential), so
// upserting reproduces the next State exactly.
type Delta struct {
	Requests int64          `json:"requests"`
	Upserts  []HistoryState `json:"upserts,omitempty"` // sorted by account key
}

// historyStateKey reproduces the histories-map key from a history's
// snapshot form (Network already holds the slug Ref.Key would use).
func historyStateKey(hs HistoryState) string {
	if hs.Control && hs.NumericID > 0 {
		return fmt.Sprintf("igid:%d", hs.NumericID)
	}
	return hs.Network + ":" + hs.Username
}

// SetDeltaJournal enables (or disables) mutation journaling for delta
// checkpoints. Enabling starts an empty journal; the non-durable path
// keeps journaling off and pays nothing per track or commit.
func (m *Monitor) SetDeltaJournal(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalOn = on
	if on {
		m.journal = make(map[string]bool)
	} else {
		m.journal = nil
	}
	m.lastCutRequests = m.requests
}

// CutDelta drains the journal into a delta covering every mutation since
// the previous cut, and reports whether anything changed. Full-snapshot
// cuts call it too (discarding the result) so the next delta's base is
// the snapshot just written.
func (m *Monitor) CutDelta() (Delta, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dirty := len(m.journal) > 0 || m.requests != m.lastCutRequests
	d := Delta{Requests: m.requests}
	if len(m.journal) > 0 {
		keys := make([]string, 0, len(m.journal))
		for k := range m.journal {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		d.Upserts = make([]HistoryState, 0, len(keys))
		for _, k := range keys {
			d.Upserts = append(d.Upserts, historyState(m.histories[k]))
		}
		m.journal = make(map[string]bool)
	}
	m.lastCutRequests = m.requests
	return d, dirty
}

// Apply folds a delta into a prior State in place, producing the state
// the delta was cut from, byte-identical under JSON marshaling to a
// Snapshot taken at the cut (both keep Histories sorted by account key).
func (d Delta) Apply(st *State) {
	st.Requests = d.Requests
	for _, hs := range d.Upserts {
		key := historyStateKey(hs)
		i := sort.Search(len(st.Histories), func(i int) bool {
			return historyStateKey(st.Histories[i]) >= key
		})
		if i < len(st.Histories) && historyStateKey(st.Histories[i]) == key {
			st.Histories[i] = hs
			continue
		}
		st.Histories = append(st.Histories, HistoryState{})
		copy(st.Histories[i+1:], st.Histories[i:])
		st.Histories[i] = hs
	}
}

// ProcessDue visits every account whose next scheduled check is due at the
// current virtual time. Call it after each clock advance.
//
// With Config.Parallelism > 1 the profile fetches fan out across a bounded
// worker pool; observations are then committed on the calling goroutine in
// sorted account-key order, so the resulting histories (and Requests count
// on the error-free path) are identical to a serial sweep.
func (m *Monitor) ProcessDue(ctx context.Context) error {
	now := m.clock.Now()
	m.mu.Lock()
	workers := m.parallelism
	var due []*History
	for _, h := range m.histories {
		if !h.finished && !h.nextDue.After(now) {
			due = append(due, h)
		}
	}
	m.sweepsC.Inc()
	m.dueG.Set(float64(len(due)))
	m.trackedG.Set(float64(len(m.histories)))
	m.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].Ref.Key() < due[j].Ref.Key() })

	if workers <= 1 {
		for _, h := range due {
			if err := ctx.Err(); err != nil {
				return err
			}
			res := m.scrapeOne(ctx, h)
			if err := m.commit(h, res, now); err != nil {
				return err
			}
		}
		return nil
	}

	// Fetch phase: workers only read history state (scrape inspects
	// h.Obs/h.NumericID); nothing mutates until every fetch has finished.
	results := make([]scrapeResult, len(due))
	parallel.ForEach(len(due), workers, func(i int) {
		if err := ctx.Err(); err != nil {
			results[i] = scrapeResult{err: err}
			return
		}
		results[i] = m.scrapeOne(ctx, due[i])
	})
	// Ordered commit: stop at the first failure, leaving later accounts
	// uncommitted exactly as a serial sweep would.
	for i, h := range due {
		if err := m.commit(h, results[i], now); err != nil {
			return err
		}
	}
	return nil
}

// scrapeResult carries one profile fetch from the worker pool to the
// ordered commit.
type scrapeResult struct {
	status   osn.Status
	comments []CommentObs
	activity int
	defaced  bool
	found    bool
	err      error
}

func (m *Monitor) scrapeOne(ctx context.Context, h *History) scrapeResult {
	var r scrapeResult
	r.status, r.comments, r.activity, r.defaced, r.found, r.err = m.scrape(ctx, h)
	return r
}

// commit applies one scrape result to its history under the lock.
func (m *Monitor) commit(h *History, res scrapeResult, now time.Time) error {
	if res.err != nil {
		return res.err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	m.scrapesC.Inc()
	if m.journalOn {
		m.journal[historyKey(h.Control, h.NumericID, h.Ref)] = true
	}
	if len(h.Obs) == 0 {
		h.Verified = res.found
		if !res.found {
			// Nonexistent account: drop from further monitoring.
			h.finished = true
			return nil
		}
	}
	if h.Activity < 0 && res.activity >= 0 {
		h.Activity = res.activity
	}
	h.Obs = append(h.Obs, Observation{Time: now, Status: res.status, Defaced: res.defaced, Comments: res.comments})
	m.advance(h, now)
	return nil
}

// advance computes the next due time per the paper's schedule.
func (m *Monitor) advance(h *History, now time.Time) {
	h.nextIdx++
	var next time.Time
	if h.nextIdx < len(scheduleOffsets) {
		next = h.DoxSeenAt.Add(time.Duration(scheduleOffsets[h.nextIdx]) * simclock.Day)
	} else {
		weekly := scheduleOffsets[len(scheduleOffsets)-1] + 7*(h.nextIdx-len(scheduleOffsets)+1)
		next = h.DoxSeenAt.Add(time.Duration(weekly) * simclock.Day)
	}
	// Queuing delays in the paper's pipeline occasionally pushed checks a
	// little late; if the schedule slipped behind the clock, catch up.
	for !next.After(now) {
		h.nextIdx++
		next = next.Add(7 * simclock.Day)
	}
	end := m.endAt
	if !h.endAt.IsZero() && h.endAt.Before(end) {
		end = h.endAt
	}
	if next.After(end) {
		h.finished = true
		return
	}
	h.nextDue = next
}

var (
	commentRe  = regexp.MustCompile(`<div class="comment" data-author="([^"]+)">([^<]*)</div>`)
	activityRe = regexp.MustCompile(`<div class="activity" data-posts="(\d+)">`)
)

// validProfile is the structural check a genuine profile page always
// passes (every OSN page opens with an <html> tag): a 200 body without the
// marker is a corrupted transfer, which GetValidated retries and, if
// persistent, surfaces as crawler.ErrCorruptPayload.
func validProfile(body []byte) error {
	if !bytes.Contains(body, []byte("<html")) {
		return errors.New("profile page missing <html> marker")
	}
	return nil
}

// scrape fetches one profile and classifies it. found=false means 404;
// activity is -1 when not visible (private/inactive pages). Fetching runs
// through the shared hardened Fetcher, so retries, Retry-After back-
// pressure, truncation detection and the circuit breaker all apply here
// exactly as they do to the document crawlers.
func (m *Monitor) scrape(ctx context.Context, h *History) (status osn.Status, comments []CommentObs, activity int, defaced, found bool, err error) {
	if h.url == "" {
		// Safe to fill lazily: a handle appears at most once per sweep, so
		// no two scrapes of the same history ever run concurrently, and the
		// sweep barriers order this write before any later read.
		if h.NumericID > 0 {
			h.url = m.baseURL + "/instagram/id/" + strconv.FormatInt(h.NumericID, 10)
		} else {
			h.url = m.baseURL + "/" + h.Ref.Network.Slug() + "/" + h.Ref.Username
		}
	}
	url := h.url
	m.mu.Lock()
	f := m.f
	m.mu.Unlock()
	// Parse straight out of the fetcher's pooled buffer: the page is
	// classified and its retained captures (comment strings) copied out
	// before the buffer is recycled, so no whole-body copy is ever made.
	err = f.GetFunc(ctx, url, validProfile, func(body []byte) {
		status, comments, activity, defaced = parseProfileBytes(body)
	})
	switch {
	case errors.Is(err, crawler.ErrNotFound):
		return osn.Inactive, nil, -1, false, len(h.Obs) > 0, nil
	case err != nil:
		return 0, nil, -1, false, false, fmt.Errorf("monitor: %s: %w", url, err)
	}
	return status, comments, activity, defaced, true, nil
}

// parseProfile classifies a fetched profile page and extracts its visible
// activity count and comments. It is total: any input yields a
// classification without panicking, which the fuzz target enforces.
func parseProfile(page string) (status osn.Status, comments []CommentObs, activity int, defaced bool) {
	return parseProfileBytes([]byte(page))
}

// parseProfileBytes is parseProfile over a transient byte buffer: every
// retained capture is copied into a fresh string, so the input may be
// recycled as soon as the call returns.
func parseProfileBytes(page []byte) (status osn.Status, comments []CommentObs, activity int, defaced bool) {
	if bytes.Contains(page, []byte("This account is private.")) {
		return osn.Private, nil, -1, false
	}
	activity = -1
	if mch := activityRe.FindSubmatch(page); mch != nil {
		if v, err := strconv.Atoi(string(mch[1])); err == nil {
			activity = v
		}
	}
	defaced = bytes.Contains(page, []byte(`class="banner"`))
	for _, mch := range commentRe.FindAllSubmatch(page, -1) {
		comments = append(comments, CommentObs{Author: string(mch[1]), Text: string(mch[2])})
	}
	return osn.Public, comments, activity, defaced
}
