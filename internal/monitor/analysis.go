package monitor

import (
	"sort"
	"time"

	"doxmeter/internal/netid"
	"doxmeter/internal/osn"
	"doxmeter/internal/simclock"
)

// ChangeStats aggregates Table 10 style status-change measurements over a
// set of histories: whether accounts ended more private or more public than
// first observed, and whether they changed at all.
type ChangeStats struct {
	Total       int // verified accounts with >= 2 observations
	MorePrivate int // last observed status more closed than first
	MorePublic  int // last observed status more open than first
	AnyChange   int // status differed between any two consecutive checks
}

// Rate helpers for table rendering.
func (s ChangeStats) MorePrivateRate() float64 { return rate(s.MorePrivate, s.Total) }

// MorePublicRate is the fraction ending more open than first observed.
func (s ChangeStats) MorePublicRate() float64 { return rate(s.MorePublic, s.Total) }

// AnyChangeRate is the fraction that changed status at least once.
func (s ChangeStats) AnyChangeRate() float64 { return rate(s.AnyChange, s.Total) }

func rate(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Filter selects histories.
type Filter func(*History) bool

// ByNetwork filters to one network's non-control accounts.
func ByNetwork(n netid.Network) Filter {
	return func(h *History) bool { return !h.Control && h.Ref.Network == n }
}

// Controls filters to the random control sample.
func Controls() Filter {
	return func(h *History) bool { return h.Control }
}

// DoxedDuring filters non-control accounts whose dox appeared in the given
// period.
func DoxedDuring(p simclock.Period, n netid.Network) Filter {
	return func(h *History) bool {
		return !h.Control && h.Ref.Network == n && p.Contains(h.DoxSeenAt)
	}
}

// Active restricts a filter to accounts whose first public observation
// showed at least minPosts of visible activity — the comparison the paper
// names as future work (§6.2.1: comparing only active doxed accounts
// against active typical accounts).
func Active(minPosts int, inner Filter) Filter {
	return func(h *History) bool {
		return inner(h) && h.Activity >= minPosts
	}
}

// Changes computes ChangeStats over the histories passing the filter.
func Changes(histories []*History, f Filter) ChangeStats {
	var s ChangeStats
	for _, h := range histories {
		if !f(h) || !h.Verified || len(h.Obs) < 2 {
			continue
		}
		s.Total++
		first, _ := h.FirstStatus()
		last, _ := h.LastStatus()
		if last > first {
			s.MorePrivate++
		}
		if last < first {
			s.MorePublic++
		}
		prev := h.Obs[0].Status
		for _, o := range h.Obs[1:] {
			if o.Status != prev {
				s.AnyChange++
				break
			}
			prev = o.Status
		}
	}
	return s
}

// ChangeTiming measures how quickly accounts locked down after appearing in
// a dox (§6.3: 35.8% of more-private changes within 24 hours, 90.6% within
// seven days).
type ChangeTiming struct {
	TotalMorePrivate int
	Within1Day       int
	Within7Days      int
}

// Timing computes ChangeTiming over histories passing the filter.
func Timing(histories []*History, f Filter) ChangeTiming {
	var t ChangeTiming
	for _, h := range histories {
		if !f(h) || !h.Verified || len(h.Obs) < 2 {
			continue
		}
		prev := h.Obs[0].Status
		for _, o := range h.Obs[1:] {
			if o.Status > prev {
				t.TotalMorePrivate++
				d := o.Time.Sub(h.DoxSeenAt)
				if d <= 24*time.Hour+time.Minute {
					t.Within1Day++
				}
				if d <= 7*simclock.Day+time.Minute {
					t.Within7Days++
				}
				break
			}
			prev = o.Status
		}
	}
	return t
}

// StripPoint is one day of a Figure 3 status strip.
type StripPoint struct {
	Day      int
	Public   int
	Private  int
	Inactive int
}

// Strip builds the Figure 3 data: for accounts that changed status within
// the first 14 days, the daily status counts from the dox appearance
// (day 0) through day 14.
func Strip(histories []*History, f Filter) []StripPoint {
	var changers []*History
	for _, h := range histories {
		if !f(h) || !h.Verified || len(h.Obs) < 2 {
			continue
		}
		if changed, _ := h.ChangedWithin(14); changed {
			changers = append(changers, h)
		}
	}
	out := make([]StripPoint, 15)
	for day := 0; day <= 14; day++ {
		out[day].Day = day
		for _, h := range changers {
			st, ok := h.StatusOnDay(day)
			if !ok {
				continue
			}
			switch st {
			case osn.Public:
				out[day].Public++
			case osn.Private:
				out[day].Private++
			case osn.Inactive:
				out[day].Inactive++
			}
		}
	}
	return out
}

// ChangersWithin counts accounts that changed status within the given
// number of days of the dox appearing (the Figure 3 population).
func ChangersWithin(histories []*History, f Filter, days int) (changed, total int) {
	for _, h := range histories {
		if !f(h) || !h.Verified || len(h.Obs) < 2 {
			continue
		}
		total++
		if ok, _ := h.ChangedWithin(days); ok {
			changed++
		}
	}
	return changed, total
}

// CompromiseStats explains the "more public" column: of the accounts whose
// observed status ever moved toward public, how many showed defacement
// (attacker takeover, paper footnote 7 / §6.2.2's first hypothesis).
type CompromiseStats struct {
	MorePublic int // accounts observed moving private -> public
	Defaced    int // of those, profiles carrying a takeover banner
}

// Compromises computes CompromiseStats over histories passing the filter.
func Compromises(histories []*History, f Filter) CompromiseStats {
	var s CompromiseStats
	for _, h := range histories {
		if !f(h) || !h.Verified || len(h.Obs) < 2 {
			continue
		}
		opened, defaced := false, false
		prev := h.Obs[0].Status
		for _, o := range h.Obs[1:] {
			if o.Status < prev {
				opened = true
			}
			if o.Defaced {
				defaced = true
			}
			prev = o.Status
		}
		if opened {
			s.MorePublic++
			if defaced {
				s.Defaced++
			}
		}
	}
	return s
}

// CommenterStats summarizes the §5.3.2 comment analysis: total comments
// observed, distinct commenters, and commenters seen on more than one
// account.
type CommenterStats struct {
	Comments          int
	Commenters        int
	CrossAccountUsers int
}

// Commenters analyzes all observed comments across doxed accounts.
func Commenters(histories []*History) CommenterStats {
	type seenOn map[string]bool
	byAuthor := map[string]seenOn{}
	comments := 0
	for _, h := range histories {
		if h.Control {
			continue
		}
		// Use the final observation's comment snapshot per account: it is
		// cumulative, so earlier snapshots are subsets.
		var last []CommentObs
		for _, o := range h.Obs {
			if len(o.Comments) > 0 {
				last = o.Comments
			}
		}
		comments += len(last)
		for _, c := range last {
			if byAuthor[c.Author] == nil {
				byAuthor[c.Author] = seenOn{}
			}
			byAuthor[c.Author][h.Ref.Key()] = true
		}
	}
	stats := CommenterStats{Comments: comments, Commenters: len(byAuthor)}
	for _, accounts := range byAuthor {
		if len(accounts) > 1 {
			stats.CrossAccountUsers++
		}
	}
	return stats
}

// VerifiedCount reports how many tracked accounts passed verification and
// how many were dropped as nonexistent.
func VerifiedCount(histories []*History) (verified, nonexistent int) {
	for _, h := range histories {
		if h.Control {
			continue
		}
		if h.Verified {
			verified++
		} else if len(h.Obs) == 0 && h.finished {
			nonexistent++
		}
	}
	return verified, nonexistent
}

// SortByDoxTime orders histories chronologically (stable helper for
// reports).
func SortByDoxTime(histories []*History) {
	sort.Slice(histories, func(i, j int) bool { return histories[i].DoxSeenAt.Before(histories[j].DoxSeenAt) })
}
