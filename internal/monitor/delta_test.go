package monitor

import (
	"context"
	"encoding/json"
	"testing"

	"doxmeter/internal/netid"
	"doxmeter/internal/simclock"
)

// TestDeltaMatchesSnapshot live-drives a monitor day by day — tracked
// accounts (regular and control) plus scheduled sweeps — cutting a delta
// each day and applying it to the previous cut's state. Every
// reconstructed state must marshal byte-identically to the full Snapshot
// taken at the same cut.
func TestDeltaMatchesSnapshot(t *testing.T) {
	r := newRig(t, 0.05)
	r.mon.SetDeltaJournal(true)
	ctx := context.Background()

	marshal := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	var base State
	if err := json.Unmarshal([]byte(marshal(r.mon.Snapshot())), &base); err != nil {
		t.Fatal(err)
	}

	at := simclock.Period1.Start
	r.doxAndTrack(netid.Facebook, 4, at)
	r.doxAndTrack(netid.Instagram, 3, at)
	r.mon.TrackControl(31337, at)
	r.mon.TrackControl(1234, at)

	end := at.Add(45 * simclock.Day)
	day := 0
	sawUpserts := false
	for !r.clock.Now().After(end) {
		if err := r.mon.ProcessDue(ctx); err != nil {
			t.Fatal(err)
		}
		// Mid-run tracking, like dox commits during a study day.
		if day == 10 {
			r.doxAndTrack(netid.Twitter, 2, r.clock.Now())
		}
		d, dirty := r.mon.CutDelta()
		want := marshal(r.mon.Snapshot())
		var d2 Delta // deltas cross the codec before apply
		if err := json.Unmarshal([]byte(marshal(d)), &d2); err != nil {
			t.Fatal(err)
		}
		d2.Apply(&base)
		if got := marshal(base); got != want {
			t.Fatalf("day %d: delta-applied state diverged:\n%s\nvs\n%s", day, got, want)
		}
		if len(d.Upserts) > 0 {
			sawUpserts = true
			if !dirty {
				t.Fatalf("day %d: upserts present but dirty=false", day)
			}
		}
		if err := json.Unmarshal([]byte(marshal(base)), &base); err != nil {
			t.Fatal(err)
		}
		r.clock.Advance(simclock.Day)
		day++
	}
	if !sawUpserts {
		t.Fatal("no delta ever carried upserts; harness tracked nothing")
	}
	if _, dirty := r.mon.CutDelta(); dirty {
		t.Fatal("quiescent cut reported dirty")
	}

	// Restore resets the journal: a post-restore cut is clean and the
	// next mutation diffs against the restored state.
	saved := r.mon.Snapshot()
	if err := r.mon.Restore(saved); err != nil {
		t.Fatal(err)
	}
	if d, dirty := r.mon.CutDelta(); dirty || len(d.Upserts) > 0 {
		t.Fatalf("journal leaked across Restore: dirty=%v upserts=%d", dirty, len(d.Upserts))
	}
	r.mon.TrackControl(999999, r.clock.Now())
	d, dirty := r.mon.CutDelta()
	if !dirty || len(d.Upserts) != 1 {
		t.Fatalf("post-restore track not journaled: dirty=%v upserts=%d", dirty, len(d.Upserts))
	}
	var st State
	if err := json.Unmarshal([]byte(marshal(saved)), &st); err != nil {
		t.Fatal(err)
	}
	d.Apply(&st)
	if got, want := marshal(st), marshal(r.mon.Snapshot()); got != want {
		t.Fatalf("post-restore delta diverged:\n%s\nvs\n%s", got, want)
	}
}
