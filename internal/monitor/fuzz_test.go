package monitor

import (
	"reflect"
	"testing"

	"doxmeter/internal/osn"
)

// FuzzParseProfile feeds arbitrary (truncated, corrupted, adversarial)
// profile HTML into the monitor's page classifier. The contract: never
// panic, always produce a definite classification, activity >= -1,
// deterministic on identical input — a scraper that crashes or wobbles on
// mangled HTML loses observations.
func FuzzParseProfile(f *testing.F) {
	seeds := []string{
		"",
		"<html><body></body></html>",
		`<html><body><h1>user</h1><div class="activity" data-posts="42"></div></body></html>`,
		`<html><body>This account is private.</body></html>`,
		`<html><body><div class="banner">pwned</div></body></html>`,
		`<html><body><div class="comment" data-author="a">hi</div><div class="comment" data-author="b">yo</div></body></html>`,
		`<html><body><div class="activity" data-posts="`,                 // truncated mid-attribute
		`<html><div class="activity" data-posts="99999999999999999999">`, // overflows int
		"\x00\x1finjected-corruption 00000000 {{{",
		`<html>This account is private.<div class="activity" data-posts="7">`, // private wins
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, page string) {
		status, comments, activity, defaced := parseProfile(page)
		if status != osn.Public && status != osn.Private && status != osn.Inactive {
			t.Fatalf("parseProfile produced unknown status %v", status)
		}
		if activity < -1 {
			t.Fatalf("activity = %d, want >= -1", activity)
		}
		if status == osn.Private && (len(comments) != 0 || activity != -1 || defaced) {
			t.Fatal("private classification leaked page details")
		}
		for _, c := range comments {
			if c.Author == "" {
				t.Fatal("comment with empty author extracted")
			}
		}
		s2, c2, a2, d2 := parseProfile(page)
		if s2 != status || a2 != activity || d2 != defaced || !reflect.DeepEqual(comments, c2) {
			t.Fatal("parseProfile not deterministic")
		}
	})
}
