package dedup

import (
	"encoding/json"
	"fmt"
	"testing"
)

// TestDeltaMatchesSnapshot live-drives a Deduper through batches of
// checks — uniques, exact duplicates, account duplicates — cutting a
// delta after each batch and applying it to the previous cut's state.
// Every reconstructed state must marshal byte-identically to the full
// Snapshot taken at the same cut.
func TestDeltaMatchesSnapshot(t *testing.T) {
	d := New()
	d.SetDeltaJournal(true)

	marshal := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	var base State
	if err := json.Unmarshal([]byte(marshal(d.Snapshot())), &base); err != nil {
		t.Fatal(err)
	}

	for batch := 0; batch < 8; batch++ {
		for i := 0; i < 5; i++ {
			id := fmt.Sprintf("pastebin/b%d-%d", batch, i)
			body := fmt.Sprintf("dox body %d %d", batch, i)
			key := fmt.Sprintf("accounts-%d-%d", batch, i%3)
			d.Check(id, body, key)
		}
		// Re-check the batch's first doc: an exact duplicate mutates only
		// Stats, which must still mark the cut dirty.
		d.Check("pastebin/dup", fmt.Sprintf("dox body %d 0", batch), "")

		delta, dirty := d.CutDelta()
		if !dirty {
			t.Fatalf("batch %d: mutations not marked dirty", batch)
		}
		want := marshal(d.Snapshot())
		var d2 Delta // deltas cross the codec before apply
		if err := json.Unmarshal([]byte(marshal(delta)), &d2); err != nil {
			t.Fatal(err)
		}
		d2.Apply(&base)
		if got := marshal(base); got != want {
			t.Fatalf("batch %d: delta-applied state diverged:\n%s\nvs\n%s", batch, got, want)
		}
		if err := json.Unmarshal([]byte(want), &base); err != nil {
			t.Fatal(err)
		}
	}
	if _, dirty := d.CutDelta(); dirty {
		t.Fatal("quiescent cut reported dirty")
	}

	// A duplicate-only batch: no index adds, stats moved — still dirty.
	d.Check("pastebin/dup2", "dox body 0 0", "")
	delta, dirty := d.CutDelta()
	if !dirty {
		t.Fatal("stats-only change not marked dirty")
	}
	if len(delta.AddedBodies) != 0 || len(delta.AddedAccounts) != 0 {
		t.Fatalf("duplicate check added index entries: %+v", delta)
	}

	// Restore resets the journal and the stats watermark.
	saved := d.Snapshot()
	if err := d.Restore(saved); err != nil {
		t.Fatal(err)
	}
	if delta, dirty := d.CutDelta(); dirty || len(delta.AddedBodies) > 0 {
		t.Fatalf("journal leaked across Restore: dirty=%v", dirty)
	}
}
